#include "serve/service.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <set>

#include "analysis/io.h"
#include "kernel/build.h"
#include "profile/profile.h"
#include "serve/bundle.h"
#include "support/fsio.h"
#include "support/serial.h"
#include "support/strings.h"

namespace kfi::serve {
namespace {

constexpr std::uint32_t kManifestMagic = 0x4B46494D;  // "KFIM"
// v2: each campaign slot's config echo carries its fault-model byte,
// so a resume against a directory whose manifest was produced under a
// different fault model (or a tampered campaign/model pairing) fails
// the config-hash comparison instead of silently mixing models.
constexpr std::uint32_t kManifestVersion = 2;

std::string manifest_path(const std::string& dir) {
  return dir + "/manifest.kfim";
}
std::string shards_dir(const std::string& dir) { return dir + "/shards"; }
std::string claims_dir(const std::string& dir) { return dir + "/claims"; }
std::string claim_path(const std::string& dir, std::uint64_t shard) {
  return format("%s/shard_%06llu.claim", claims_dir(dir).c_str(),
                static_cast<unsigned long long>(shard));
}

// The config echo: every input the campaign's results are a function
// of.  Its FNV-1a is the config hash that ties manifest, shard
// artifacts, and workers to one campaign identity.
void write_config_echo(ByteWriter& writer, const Manifest& manifest) {
  writer.u32(static_cast<std::uint32_t>(manifest.options.checkpoints));
  writer.u8(manifest.options.full_restore ? 1 : 0);
  writer.u32(static_cast<std::uint32_t>(manifest.options.exec_engine));
  writer.f64(manifest.options.budget_factor);
  writer.u64(manifest.options.budget_slack);
  writer.u64(manifest.kernel_fp);
  writer.u32(static_cast<std::uint32_t>(manifest.campaigns.size()));
  for (const inject::CampaignConfig& config : manifest.campaigns) {
    writer.u32(static_cast<std::uint32_t>(config.campaign));
    writer.u8(static_cast<std::uint8_t>(
        inject::campaign_fault_model(config.campaign)));
    writer.u64(config.seed);
    writer.u32(static_cast<std::uint32_t>(config.repeats));
    writer.f64(config.profile_coverage);
    writer.u32(static_cast<std::uint32_t>(config.functions.size()));
    for (const std::string& fn : config.functions) writer.str(fn);
  }
}

bool read_config_echo(ByteReader& reader, Manifest& manifest) {
  manifest.options.checkpoints = static_cast<int>(reader.u32());
  manifest.options.full_restore = reader.u8() != 0;
  manifest.options.exec_engine =
      static_cast<machine::ExecEngine>(reader.u32());
  manifest.options.budget_factor = reader.f64();
  manifest.options.budget_slack = reader.u64();
  manifest.kernel_fp = reader.u64();
  const std::uint32_t campaigns = reader.u32();
  if (!reader.ok() || campaigns > 256) return false;
  manifest.campaigns.resize(campaigns);
  for (inject::CampaignConfig& config : manifest.campaigns) {
    config.campaign = static_cast<inject::Campaign>(reader.u32());
    const std::uint8_t model = reader.u8();
    // The model byte is derived state; a mismatch means the manifest
    // was written by a build with a different campaign→model mapping
    // (or tampered with) — results would not be comparable.
    if (model != static_cast<std::uint8_t>(
                     inject::campaign_fault_model(config.campaign))) {
      return false;
    }
    config.seed = reader.u64();
    config.repeats = static_cast<int>(reader.u32());
    config.profile_coverage = reader.f64();
    const std::uint32_t functions = reader.u32();
    if (!reader.ok() || functions > 100'000) return false;
    config.functions.resize(functions);
    for (std::string& fn : config.functions) fn = reader.str();
  }
  return reader.ok();
}

bool write_manifest(const std::string& dir, const std::string& bundle_dir,
                    const Manifest& manifest) {
  ByteWriter echo;
  write_config_echo(echo, manifest);

  ByteWriter writer;
  writer.u32(kManifestMagic);
  writer.u32(kManifestVersion);
  writer.str(bundle_dir);
  writer.u64(manifest.config_hash);
  writer.u64(echo.size());
  writer.bytes(echo.buffer().data(), echo.size());
  for (std::size_t i = 0; i < manifest.campaigns.size(); ++i) {
    writer.u64(manifest.functions_targeted[i]);
    writer.u64(manifest.target_counts[i]);
  }
  writer.u32(static_cast<std::uint32_t>(manifest.workloads.size()));
  for (std::size_t i = 0; i < manifest.workloads.size(); ++i) {
    writer.str(manifest.workloads[i]);
    writer.u64(manifest.bundle_hashes[i]);
  }
  writer.u64(manifest.shard_ranges.size());
  for (const auto& [begin, end] : manifest.shard_ranges) {
    writer.u64(begin);
    writer.u64(end);
  }
  return atomic_write_file(manifest_path(dir), writer.buffer());
}

// The manifest plus the bundle directory recorded inside it.
std::optional<std::pair<Manifest, std::string>> load_manifest_full(
    const std::string& dir) {
  const std::optional<std::string> data =
      read_file_bytes(manifest_path(dir));
  if (!data.has_value()) return std::nullopt;
  ByteReader reader(*data);
  if (reader.u32() != kManifestMagic || reader.u32() != kManifestVersion) {
    return std::nullopt;
  }
  const std::string bundle_dir = reader.str();
  Manifest manifest;
  manifest.config_hash = reader.u64();
  const std::uint64_t echo_size = reader.u64();
  const std::uint8_t* echo = reader.bytes(echo_size);
  if (echo == nullptr) return std::nullopt;
  // The stored hash must be the hash of the stored echo — a manifest
  // whose identity field was tampered with (or torn) is rejected here.
  if (fnv1a_bytes(echo, echo_size) != manifest.config_hash) {
    return std::nullopt;
  }
  ByteReader echo_reader(echo, static_cast<std::size_t>(echo_size));
  if (!read_config_echo(echo_reader, manifest)) return std::nullopt;

  manifest.functions_targeted.resize(manifest.campaigns.size());
  manifest.target_counts.resize(manifest.campaigns.size());
  for (std::size_t i = 0; i < manifest.campaigns.size(); ++i) {
    manifest.functions_targeted[i] =
        static_cast<std::size_t>(reader.u64());
    manifest.target_counts[i] = reader.u64();
  }
  const std::uint32_t workloads = reader.u32();
  if (!reader.ok() || workloads > 10'000) return std::nullopt;
  manifest.workloads.resize(workloads);
  manifest.bundle_hashes.resize(workloads);
  for (std::uint32_t i = 0; i < workloads; ++i) {
    manifest.workloads[i] = reader.str();
    manifest.bundle_hashes[i] = reader.u64();
  }
  const std::uint64_t shard_count = reader.u64();
  if (!reader.ok() || shard_count > 1'000'000) return std::nullopt;
  manifest.shard_ranges.resize(static_cast<std::size_t>(shard_count));
  for (auto& [begin, end] : manifest.shard_ranges) {
    begin = reader.u64();
    end = reader.u64();
  }
  if (!reader.ok()) return std::nullopt;
  return std::make_pair(std::move(manifest), bundle_dir);
}

// The per-slot target lists and locality orders, regenerated
// deterministically from the manifest's config echo — workers never
// ship target lists around, they re-derive them.
struct CampaignPlan {
  std::vector<std::vector<inject::InjectionSpec>> targets;  // per slot
  std::vector<std::vector<std::size_t>> orders;             // per slot
  std::vector<std::uint64_t> bases;  // global index of slot start
  std::uint64_t total = 0;
};

CampaignPlan build_plan(inject::Injector& injector,
                        const std::vector<inject::CampaignConfig>& campaigns) {
  CampaignPlan plan;
  const profile::ProfileResult& prof = profile::default_profile();
  for (const inject::CampaignConfig& config : campaigns) {
    plan.bases.push_back(plan.total);
    plan.targets.push_back(
        inject::campaign_targets(prof, config, nullptr));
    plan.orders.push_back(
        inject::campaign_order(injector, plan.targets.back()));
    plan.total += plan.targets.back().size();
  }
  return plan;
}

// Installs every manifest workload into the cache from its bundle
// (mmap, zero-copy).  A bundle that is missing or fails verification
// is rebuilt locally — slower, never wrong, since golden artifacts are
// a pure function of (kernel, workload, options).
std::uint64_t adopt_bundles(inject::GoldenCache& cache,
                            const Manifest& manifest,
                            const std::string& bundle_dir, bool verbose) {
  std::uint64_t adopted = 0;
  for (std::size_t i = 0; i < manifest.workloads.size(); ++i) {
    const std::string& workload = manifest.workloads[i];
    const std::string path = bundle_path(bundle_dir, workload,
                                         manifest.options,
                                         manifest.kernel_fp);
    std::optional<LoadedBundle> loaded =
        load_bundle(path, workload, manifest.options, manifest.kernel_fp,
                    manifest.bundle_hashes[i]);
    if (!loaded.has_value()) {
      if (verbose) {
        std::fprintf(stderr,
                     "[kfi-serve] bundle %s invalid; rebuilding locally\n",
                     path.c_str());
      }
      continue;
    }
    if (cache.adopt_workload(workload, std::move(loaded->artifact),
                             std::move(loaded->keepalive))) {
      ++adopted;
    }
  }
  return adopted;
}

// Executes order positions [begin, end) and returns the shard's
// records (global spec index + result).
std::vector<analysis::ShardRecord> execute_range(
    inject::Injector& injector, const CampaignPlan& plan,
    std::uint64_t begin, std::uint64_t end) {
  std::vector<analysis::ShardRecord> records;
  records.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t pos = begin; pos < end; ++pos) {
    std::size_t slot = plan.bases.size() - 1;
    while (slot > 0 && pos < plan.bases[slot]) --slot;
    const std::size_t j = static_cast<std::size_t>(pos - plan.bases[slot]);
    const std::size_t spec = plan.orders[slot][j];
    analysis::ShardRecord record;
    record.spec_index = plan.bases[slot] + spec;
    record.result = injector.run_one(plan.targets[slot][spec]);
    records.push_back(std::move(record));
  }
  return records;
}

// O_CREAT|O_EXCL claim: exactly one process wins a shard, kernel-
// arbitrated, shared-filesystem-visible.
bool try_claim(const std::string& dir, std::uint64_t shard,
               unsigned worker_id) {
  const std::string path = claim_path(dir, shard);
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;
  const std::string body = format("worker %u\n", worker_id);
  (void)!::write(fd, body.data(), body.size());
  ::close(fd);
  return true;
}

// The claimer recorded in a claim file, or nullopt.
std::optional<unsigned> claim_owner(const std::string& dir,
                                    std::uint64_t shard) {
  const std::optional<std::string> body =
      read_file_bytes(claim_path(dir, shard));
  if (!body.has_value()) return std::nullopt;
  unsigned worker = 0;
  if (std::sscanf(body->c_str(), "worker %u", &worker) != 1) {
    return std::nullopt;
  }
  return worker;
}

bool shard_done(const analysis::ShardStore& store, std::uint64_t shard) {
  const std::optional<std::string> path = store.find_shard(shard);
  return path.has_value() && analysis::ShardStore::verify_shard(*path);
}

}  // namespace

std::optional<Manifest> load_manifest(const std::string& dir) {
  auto full = load_manifest_full(dir);
  if (!full.has_value()) return std::nullopt;
  return std::move(full->first);
}

std::optional<Manifest> prepare_campaign(const ServiceConfig& config,
                                         ServiceResult* result) {
  const std::string bundle_dir =
      config.bundle_dir.empty() ? config.dir + "/bundles"
                                : config.bundle_dir;
  std::error_code ec;
  std::filesystem::create_directories(shards_dir(config.dir), ec);
  std::filesystem::create_directories(claims_dir(config.dir), ec);
  std::filesystem::create_directories(bundle_dir, ec);

  Manifest manifest;
  manifest.campaigns = config.campaigns;
  manifest.options = config.options;
  manifest.options.trace_capacity = 0;  // never part of campaign identity
  manifest.kernel_fp = analysis::kernel_fingerprint(kernel::built_kernel());
  {
    ByteWriter echo;
    write_config_echo(echo, manifest);
    manifest.config_hash = fnv1a_bytes(echo.buffer().data(), echo.size());
  }

  // An existing manifest for the same config is the resume case: keep
  // it (and every completed shard).  A different config, or --fresh,
  // wipes shards and claims; bundles are keyed and content-verified,
  // so they always survive.
  if (auto existing = load_manifest_full(config.dir)) {
    if (!config.fresh &&
        existing->first.config_hash == manifest.config_hash) {
      return std::move(existing->first);
    }
  }
  if (std::filesystem::exists(manifest_path(config.dir), ec) ||
      config.fresh) {
    for (const auto& sub : {shards_dir(config.dir), claims_dir(config.dir)}) {
      for (const auto& entry : std::filesystem::directory_iterator(sub, ec)) {
        std::filesystem::remove(entry.path(), ec);
      }
    }
    std::filesystem::remove(manifest_path(config.dir), ec);
  }

  auto cache = std::make_shared<inject::GoldenCache>(manifest.options);
  inject::Injector injector(cache);

  const profile::ProfileResult& prof = profile::default_profile();
  std::set<std::string> workloads;
  std::vector<std::vector<inject::InjectionSpec>> targets;
  for (const inject::CampaignConfig& campaign : manifest.campaigns) {
    std::size_t functions_targeted = 0;
    targets.push_back(
        inject::campaign_targets(prof, campaign, &functions_targeted));
    manifest.functions_targeted.push_back(functions_targeted);
    manifest.target_counts.push_back(targets.back().size());
    for (const inject::InjectionSpec& spec : targets.back()) {
      workloads.insert(spec.workload);
    }
  }

  // Bundle each workload: adopt an existing valid bundle, otherwise
  // build the artifacts once and serialize them for every worker.
  for (const std::string& workload : workloads) {
    const std::string path =
        bundle_path(bundle_dir, workload, manifest.options,
                    manifest.kernel_fp);
    std::uint64_t hash = 0;
    if (auto loaded = load_bundle(path, workload, manifest.options,
                                  manifest.kernel_fp)) {
      hash = loaded->content_hash;
      cache->adopt_workload(workload, std::move(loaded->artifact),
                            std::move(loaded->keepalive));
      if (result != nullptr) ++result->bundles_adopted;
    } else {
      const inject::WorkloadGolden& artifact = cache->workload(workload);
      const auto written = write_bundle(path, workload, artifact,
                                        manifest.options,
                                        manifest.kernel_fp);
      if (!written.has_value()) {
        std::fprintf(stderr, "[kfi-serve] cannot write bundle %s\n",
                     path.c_str());
        return std::nullopt;
      }
      hash = *written;
      if (result != nullptr) ++result->bundles_built;
    }
    manifest.workloads.push_back(workload);
    manifest.bundle_hashes.push_back(hash);
  }

  // Shard table over the concatenated locality orders.  The orders are
  // computed here only to pin down `total`; workers re-derive them.
  std::uint64_t total = 0;
  for (const std::uint64_t count : manifest.target_counts) total += count;
  std::uint64_t shard_count =
      config.shards != 0
          ? config.shards
          : std::max<std::uint64_t>(4ULL * std::max(config.workers, 1u), 1);
  shard_count = std::min(shard_count, std::max<std::uint64_t>(total, 1));
  if (total == 0) shard_count = 0;
  for (std::uint64_t s = 0; s < shard_count; ++s) {
    manifest.shard_ranges.emplace_back(total * s / shard_count,
                                       total * (s + 1) / shard_count);
  }

  if (!write_manifest(config.dir, bundle_dir, manifest)) {
    std::fprintf(stderr, "[kfi-serve] cannot write manifest in %s\n",
                 config.dir.c_str());
    return std::nullopt;
  }
  return manifest;
}

WorkerReport run_worker(const std::string& dir, unsigned worker_id,
                        unsigned workers, std::uint64_t max_shards,
                        bool verbose) {
  WorkerReport report;
  auto full = load_manifest_full(dir);
  if (!full.has_value()) {
    std::fprintf(stderr, "[kfi-serve] worker %u: no manifest in %s\n",
                 worker_id, dir.c_str());
    return report;
  }
  const Manifest& manifest = full->first;
  const std::string& bundle_dir = full->second;
  if (workers == 0) workers = 1;

  auto cache = std::make_shared<inject::GoldenCache>(manifest.options);
  report.bundle_adoptions =
      adopt_bundles(*cache, manifest, bundle_dir, verbose);
  inject::Injector injector(cache);
  const CampaignPlan plan = build_plan(injector, manifest.campaigns);
  const analysis::ShardStore store(shards_dir(dir));

  // Owned shards first (index % workers), then steal whatever lagging
  // or dead peers left unclaimed.
  const std::uint64_t shard_count = manifest.shard_ranges.size();
  for (const int pass : {0, 1}) {
    for (std::uint64_t shard = 0; shard < shard_count; ++shard) {
      if (max_shards != 0 && report.shards_completed >= max_shards) {
        report.ok = true;
        return report;
      }
      const bool owned = shard % workers == worker_id;
      if ((pass == 0) != owned) continue;
      if (shard_done(store, shard)) continue;
      if (!try_claim(dir, shard, worker_id)) continue;
      const auto [begin, end] = manifest.shard_ranges[shard];
      std::vector<analysis::ShardRecord> records =
          execute_range(injector, plan, begin, end);
      report.runs += records.size();
      const std::string path = store.write_shard(
          shard, manifest.config_hash, std::move(records));
      if (path.empty()) {
        std::fprintf(stderr,
                     "[kfi-serve] worker %u: cannot write shard %llu\n",
                     worker_id, static_cast<unsigned long long>(shard));
        return report;
      }
      ++report.shards_completed;
      if (!owned) ++report.shards_stolen;
      if (verbose) {
        std::fprintf(stderr,
                     "[kfi-serve] worker %u: shard %llu done (%s)\n",
                     worker_id, static_cast<unsigned long long>(shard),
                     owned ? "owned" : "stolen");
      }
    }
  }
  report.ok = true;
  return report;
}

bool aggregate_campaign(const std::string& dir, bool materialize,
                        ServiceResult& result) {
  auto full = load_manifest_full(dir);
  if (!full.has_value()) {
    result.error = "no manifest in " + dir;
    return false;
  }
  const Manifest& manifest = full->first;
  const analysis::ShardStore store(shards_dir(dir));
  result.shard_count = manifest.shard_ranges.size();

  // Verification pass: every shard must have an artifact whose bytes
  // still hash to its name.  Corrupt ones are discarded so the next
  // wave re-runs them instead of feeding poison into the merge.
  std::vector<std::string> paths;
  for (std::uint64_t shard = 0; shard < result.shard_count; ++shard) {
    const std::optional<std::string> path = store.find_shard(shard);
    if (!path.has_value()) {
      result.error = format("shard %llu missing",
                            static_cast<unsigned long long>(shard));
      return false;
    }
    if (!analysis::ShardStore::verify_shard(*path)) {
      store.discard_shard(shard);
      ++result.corrupt_discarded;
      result.error = format("shard %llu failed content verification",
                            static_cast<unsigned long long>(shard));
      return false;
    }
    paths.push_back(*path);
  }

  std::vector<analysis::ShardCursor> cursors;
  for (std::uint64_t shard = 0; shard < result.shard_count; ++shard) {
    auto cursor = analysis::ShardCursor::open(paths[shard], shard,
                                              manifest.config_hash);
    if (!cursor.has_value()) {
      store.discard_shard(shard);
      ++result.corrupt_discarded;
      result.error = format("shard %llu unreadable",
                            static_cast<unsigned long long>(shard));
      return false;
    }
    cursors.push_back(std::move(*cursor));
  }

  analysis::StreamingFold fold(manifest.target_counts, materialize);
  const bool merged = analysis::merge_shards(
      cursors, [&](const analysis::ShardRecord& record) {
        return fold.add(record);
      });
  if (!merged || !fold.complete()) {
    result.error = "shard merge did not tile the spec space";
    return false;
  }

  result.digest = fold.digest();
  result.total_runs = fold.total();
  if (materialize) {
    result.runs.clear();
    for (std::size_t i = 0; i < manifest.campaigns.size(); ++i) {
      inject::CampaignRun run;
      run.campaign = manifest.campaigns[i].campaign;
      run.functions_targeted = manifest.functions_targeted[i];
      run.results = std::move(fold.slots()[i]);
      result.runs.push_back(std::move(run));
    }
  }
  result.error.clear();
  return true;
}

ServiceResult run_service(const ServiceConfig& config, bool materialize) {
  ServiceResult result;
  const std::optional<Manifest> manifest =
      prepare_campaign(config, &result);
  if (!manifest.has_value()) {
    result.error = "prepare failed";
    return result;
  }
  const analysis::ShardStore store(shards_dir(config.dir));
  const std::uint64_t shard_count = manifest->shard_ranges.size();
  const unsigned workers = std::max(config.workers, 1u);

  for (std::uint64_t shard = 0; shard < shard_count; ++shard) {
    if (shard_done(store, shard)) ++result.shards_resumed;
  }

  for (int attempt = 1; attempt <= std::max(config.max_attempts, 1);
       ++attempt) {
    result.attempts = attempt;
    std::vector<std::uint64_t> pending;
    for (std::uint64_t shard = 0; shard < shard_count; ++shard) {
      if (!shard_done(store, shard)) pending.push_back(shard);
    }
    if (!pending.empty()) {
      // A claim without an artifact marks a worker that died (or was
      // kill-simulated) mid-shard; clear it so this wave can re-claim.
      std::error_code ec;
      for (const std::uint64_t shard : pending) {
        std::filesystem::remove(claim_path(config.dir, shard), ec);
      }
      const unsigned wave =
          static_cast<unsigned>(std::min<std::uint64_t>(workers,
                                                        pending.size()));
      std::vector<pid_t> children;
      bool fork_failed = false;
      for (unsigned w = 0; w < wave; ++w) {
        const pid_t pid = ::fork();
        if (pid == 0) {
          const WorkerReport report =
              run_worker(config.dir, w, workers,
                         config.max_shards_per_worker, config.verbose);
          if (config.worker_death == ServiceConfig::WorkerDeath::Signal) {
            ::raise(SIGKILL);
          }
          if (config.worker_death == ServiceConfig::WorkerDeath::Fail) {
            ::_exit(9);
          }
          ::_exit(report.ok ? 0 : 1);
        }
        if (pid < 0) {
          // Do not leave the already-spawned part of the wave running:
          // kill and reap every child before reporting the failure, or
          // they become orphans still writing into the campaign
          // directory after run_service returned.
          fork_failed = true;
          for (const pid_t child : children) ::kill(child, SIGKILL);
          break;
        }
        children.push_back(pid);
      }
      for (const pid_t pid : children) {
        int status = 0;
        pid_t got;
        do {
          got = ::waitpid(pid, &status, 0);
        } while (got < 0 && errno == EINTR);
        if (got != pid) continue;
        if (WIFSIGNALED(status)) {
          ++result.workers_signaled;
          if (config.verbose) {
            std::fprintf(stderr,
                         "[kfi-serve] worker pid %d killed by signal %d\n",
                         static_cast<int>(pid), WTERMSIG(status));
          }
        } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
          ++result.workers_failed;
          if (config.verbose) {
            std::fprintf(stderr,
                         "[kfi-serve] worker pid %d exited with status %d\n",
                         static_cast<int>(pid), WEXITSTATUS(status));
          }
        }
      }
      if (fork_failed) {
        result.error = "fork failed";
        return result;
      }
    }
    if (aggregate_campaign(config.dir, materialize, result)) {
      result.ok = true;
      break;
    }
    if (config.verbose) {
      std::fprintf(stderr, "[kfi-serve] attempt %d: %s\n", attempt,
                   result.error.c_str());
    }
  }
  if (!result.ok) return result;

  result.shards_executed = shard_count - result.shards_resumed;
  for (std::uint64_t shard = 0; shard < shard_count; ++shard) {
    const std::optional<unsigned> owner = claim_owner(config.dir, shard);
    if (owner.has_value() && *owner != shard % workers) ++result.steals;
  }
  return result;
}

}  // namespace kfi::serve
