// Golden-bundle files: one workload's complete golden artifact set —
// GoldenRun, coverage, first-touch map, post-boot BootState, checkpoint
// ladder — serialized once by the campaign controller and adopted
// zero-copy by every worker process.
//
// The controller pays for boot + golden run + ladder capture exactly
// once per workload, writes the bundle crash-safely (temp + fsync +
// atomic rename), and each worker mmaps the file read-only: the
// multi-megabyte RAM/disk snapshot payloads become ChunkedSnapshot
// *views* into the mapping (vm/snapshot from_parts, copy=false), so N
// workers restoring the same workload share one set of physical pages
// through the kernel page cache instead of holding N private copies.
// The mapping's lifetime is carried by the keepalive shared_ptr that
// GoldenCache::adopt_workload() retains next to the artifact.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "inject/golden.h"

namespace kfi::serve {

// Serializes `artifact` for `workload` and writes it crash-safely to
// `path`.  `kernel_fp` and the ladder geometry from `options` are baked
// into the header so a stale bundle (different kernel build, different
// checkpoint count) is rejected at load instead of silently adopted.
// Returns the bundle's content hash (FNV-1a over the file bytes), or
// nullopt on I/O failure.
std::optional<std::uint64_t> write_bundle(
    const std::string& path, const std::string& workload,
    const inject::WorkloadGolden& artifact,
    const inject::InjectorOptions& options, std::uint64_t kernel_fp);

struct LoadedBundle {
  inject::WorkloadGolden artifact;
  // Owner of the mmap the artifact's snapshots point into; hand to
  // GoldenCache::adopt_workload().
  std::shared_ptr<const void> keepalive;
  std::uint64_t content_hash = 0;
};

// Maps and validates the bundle at `path`.  Rejects wrong magic or
// version, a workload/kernel/options mismatch, a truncated or corrupt
// payload, and — when `expect_hash` is non-zero — file bytes whose
// FNV-1a differs from it (the manifest's recorded hash, so a worker
// never adopts a bundle the controller didn't write).
std::optional<LoadedBundle> load_bundle(
    const std::string& path, const std::string& workload,
    const inject::InjectorOptions& options, std::uint64_t kernel_fp,
    std::uint64_t expect_hash = 0);

// Canonical bundle file name:
// "<dir>/bundle_<workload>_k<fp8>_c<checkpoints>[_fr]_e<engine>.kfib".
// Everything the artifact bytes can depend on is in the name, so
// option changes never alias onto a stale file.
std::string bundle_path(const std::string& dir, const std::string& workload,
                        const inject::InjectorOptions& options,
                        std::uint64_t kernel_fp);

}  // namespace kfi::serve
