#include "serve/bundle.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "machine/state_io.h"
#include "support/fsio.h"
#include "support/serial.h"
#include "support/strings.h"

namespace kfi::serve {
namespace {

constexpr std::uint32_t kBundleMagic = 0x4B464942;  // "KFIB"
// v2: appends the written-data footprint and the golden syscall-exit
// list (campaign E/F golden inputs) after the checkpoint ladder.
constexpr std::uint32_t kBundleVersion = 2;

// The option fields golden artifacts can depend on.  budget_* and
// trace_capacity are run-time knobs applied by the Injector, never
// baked into artifacts, so they stay out of the bundle identity.
void write_options_echo(ByteWriter& writer,
                        const inject::InjectorOptions& options) {
  writer.u32(static_cast<std::uint32_t>(options.checkpoints));
  writer.u8(options.full_restore ? 1 : 0);
  writer.u32(static_cast<std::uint32_t>(options.exec_engine));
}

bool options_echo_matches(ByteReader& reader,
                          const inject::InjectorOptions& options) {
  const std::uint32_t checkpoints = reader.u32();
  const bool full_restore = reader.u8() != 0;
  const std::uint32_t engine = reader.u32();
  return reader.ok() &&
         checkpoints == static_cast<std::uint32_t>(options.checkpoints) &&
         full_restore == options.full_restore &&
         engine == static_cast<std::uint32_t>(options.exec_engine);
}

}  // namespace

std::optional<std::uint64_t> write_bundle(
    const std::string& path, const std::string& workload,
    const inject::WorkloadGolden& artifact,
    const inject::InjectorOptions& options, std::uint64_t kernel_fp) {
  ByteWriter writer;
  writer.u32(kBundleMagic);
  writer.u32(kBundleVersion);
  writer.str(workload);
  writer.u64(kernel_fp);
  write_options_echo(writer, options);

  const inject::GoldenRun& golden = artifact.golden;
  writer.u8(golden.ok ? 1 : 0);
  writer.str(golden.console);
  writer.u32(golden.exit_code);
  writer.u64(golden.fs_digest);
  writer.u64(golden.cycles);
  writer.u8(golden.bootable ? 1 : 0);
  writer.u8(golden.fs_damaged ? 1 : 0);
  writer.u8(golden.fsck_unrepairable ? 1 : 0);
  writer.u8(golden.repair_verified ? 1 : 0);

  // Coverage and first-touch are serialized address-sorted so the
  // bundle bytes (and therefore the content hash the manifest records)
  // are a pure function of the artifact, not of hash-table iteration
  // order.
  {
    std::vector<std::uint32_t> coverage(artifact.coverage.begin(),
                                        artifact.coverage.end());
    std::sort(coverage.begin(), coverage.end());
    writer.u64(coverage.size());
    for (const std::uint32_t addr : coverage) writer.u32(addr);
  }
  {
    std::vector<std::pair<std::uint32_t, machine::TouchWindow>> touch(
        artifact.first_touch.begin(), artifact.first_touch.end());
    std::sort(touch.begin(), touch.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    writer.u64(touch.size());
    for (const auto& [addr, window] : touch) {
      writer.u32(addr);
      writer.u64(window.first);
      writer.u64(window.last);
    }
  }

  machine::write_boot_state(writer, *artifact.boot);
  writer.u32(static_cast<std::uint32_t>(artifact.ladder.size()));
  for (const machine::Checkpoint& rung : artifact.ladder) {
    machine::write_checkpoint(writer, rung);
  }

  // v2 tail: the write footprint is already address-sorted (a build
  // invariant), so bundle bytes stay a pure function of the artifact.
  writer.u64(artifact.write_footprint.size());
  for (const std::uint32_t addr : artifact.write_footprint) writer.u32(addr);
  writer.u64(artifact.syscalls.size());
  for (const inject::SyscallExit& exit : artifact.syscalls) {
    writer.u64(exit.cycle);
    writer.u32(exit.eax);
  }

  const std::string& payload = writer.buffer();
  if (!atomic_write_file(path, payload)) return std::nullopt;
  return fnv1a_bytes(payload.data(), payload.size());
}

std::optional<LoadedBundle> load_bundle(const std::string& path,
                                        const std::string& workload,
                                        const inject::InjectorOptions& options,
                                        std::uint64_t kernel_fp,
                                        std::uint64_t expect_hash) {
  std::shared_ptr<const MappedFile> file = MappedFile::map(path);
  if (file == nullptr) return std::nullopt;
  if (expect_hash != 0 &&
      fnv1a_bytes(file->data(), file->size()) != expect_hash) {
    return std::nullopt;
  }

  ByteReader reader(file->data(), file->size());
  if (reader.u32() != kBundleMagic || reader.u32() != kBundleVersion) {
    return std::nullopt;
  }
  if (reader.str() != workload || reader.u64() != kernel_fp ||
      !options_echo_matches(reader, options)) {
    return std::nullopt;
  }

  LoadedBundle loaded;
  inject::WorkloadGolden& artifact = loaded.artifact;
  inject::GoldenRun& golden = artifact.golden;
  golden.ok = reader.u8() != 0;
  golden.console = reader.str();
  golden.exit_code = reader.u32();
  golden.fs_digest = reader.u64();
  golden.cycles = reader.u64();
  golden.bootable = reader.u8() != 0;
  golden.fs_damaged = reader.u8() != 0;
  golden.fsck_unrepairable = reader.u8() != 0;
  golden.repair_verified = reader.u8() != 0;

  const std::uint64_t coverage_count = reader.u64();
  if (!reader.ok() || coverage_count > reader.remaining() / 4) {
    return std::nullopt;
  }
  artifact.coverage.reserve(static_cast<std::size_t>(coverage_count));
  for (std::uint64_t i = 0; i < coverage_count; ++i) {
    artifact.coverage.insert(reader.u32());
  }
  const std::uint64_t touch_count = reader.u64();
  if (!reader.ok() || touch_count > reader.remaining() / 20) {
    return std::nullopt;
  }
  artifact.first_touch.reserve(static_cast<std::size_t>(touch_count));
  for (std::uint64_t i = 0; i < touch_count; ++i) {
    const std::uint32_t addr = reader.u32();
    machine::TouchWindow window;
    window.first = reader.u64();
    window.last = reader.u64();
    artifact.first_touch.emplace(addr, window);
  }

  // view = true: the snapshots borrow their payloads straight from the
  // mapping — the zero-copy adoption path.  The shared BootState must
  // exist before its ladder, whose deltas re-base onto it.
  std::shared_ptr<machine::BootState> boot =
      machine::read_boot_state(reader, /*view=*/true);
  if (boot == nullptr) return std::nullopt;
  artifact.boot = boot;
  const std::uint32_t ladder_count = reader.u32();
  if (!reader.ok() || ladder_count > 4096) return std::nullopt;
  artifact.ladder.reserve(ladder_count);
  for (std::uint32_t i = 0; i < ladder_count; ++i) {
    bool ok = false;
    artifact.ladder.push_back(
        machine::read_checkpoint(reader, *boot, /*view=*/true, ok));
    if (!ok) return std::nullopt;
  }
  const std::uint64_t footprint_count = reader.u64();
  if (!reader.ok() || footprint_count > reader.remaining() / 4) {
    return std::nullopt;
  }
  artifact.write_footprint.reserve(
      static_cast<std::size_t>(footprint_count));
  for (std::uint64_t i = 0; i < footprint_count; ++i) {
    artifact.write_footprint.push_back(reader.u32());
  }
  const std::uint64_t syscall_count = reader.u64();
  if (!reader.ok() || syscall_count > reader.remaining() / 12) {
    return std::nullopt;
  }
  artifact.syscalls.reserve(static_cast<std::size_t>(syscall_count));
  for (std::uint64_t i = 0; i < syscall_count; ++i) {
    inject::SyscallExit exit;
    exit.cycle = reader.u64();
    exit.eax = reader.u32();
    artifact.syscalls.push_back(exit);
  }
  if (!reader.ok()) return std::nullopt;

  loaded.content_hash = fnv1a_bytes(file->data(), file->size());
  loaded.keepalive = std::move(file);
  return loaded;
}

std::string bundle_path(const std::string& dir, const std::string& workload,
                        const inject::InjectorOptions& options,
                        std::uint64_t kernel_fp) {
  return format("%s/bundle_%s_k%08x_c%d%s_e%d.kfib", dir.c_str(),
                workload.c_str(), static_cast<std::uint32_t>(kernel_fp),
                options.checkpoints, options.full_restore ? "_fr" : "",
                static_cast<int>(options.exec_engine));
}

}  // namespace kfi::serve
