// Process-sharded campaign service.
//
// A campaign sequence (e.g. the smoke A/B/C triple) is split into a
// manifest of contiguous shards over the locality-sorted execution
// order, golden bundles are serialized once (serve/bundle), and N
// worker processes — forked by run_service() or spawned independently
// via `kfi_campaignd worker` — drain the shard list, each streaming
// its finished shards into the content-addressed artifact store
// (analysis/store).  Aggregation k-way merges the shard artifacts back
// into spec order and folds the campaign digest, which is required to
// be bit-identical to the in-process run_campaign() path at every
// worker count.
//
// Crash/kill recovery is structural, not transactional: an artifact
// exists iff its shard completed (atomic rename), a claim file exists
// iff some worker took the shard, and a claim without an artifact is
// stale — cleared by the controller between waves so the shard is
// re-run.  A killed campaign therefore resumes from exactly its
// completed shards; a corrupted artifact fails content-hash
// verification, is discarded, and is re-run the same way.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/store.h"
#include "inject/campaign.h"

namespace kfi::serve {

struct ServiceConfig {
  // Campaign slots in digest order (the global spec index space is
  // their concatenation).  `threads` and `progress` are ignored —
  // parallelism is processes here.
  std::vector<inject::CampaignConfig> campaigns;
  inject::InjectorOptions options;

  // Campaign directory: manifest.kfim, shards/, claims/.  Bundles
  // default to "<dir>/bundles" so repeated campaigns against the same
  // kernel+options reuse them.
  std::string dir;
  std::string bundle_dir;

  unsigned workers = 1;
  // Shard count; 0 = auto (4 per worker, capped by the target count —
  // enough slack for stealing without drowning in tiny artifacts).
  std::uint64_t shards = 0;

  // Wipe shards/claims/manifest before starting (bundles survive; they
  // are content-verified anyway).
  bool fresh = false;

  // Test hook: each worker exits after completing this many shards,
  // simulating a worker killed mid-campaign.  0 = unlimited.
  std::uint64_t max_shards_per_worker = 0;

  // Test hook: how a forked worker terminates after its drain loop
  // returns — exercises the controller's exit-status accounting.
  enum class WorkerDeath : std::uint8_t {
    Clean,   // _exit(0/1) from the worker report (production behavior)
    Fail,    // _exit(9): a worker that hit an internal error
    Signal,  // raise(SIGKILL): a worker killed mid-campaign
  };
  WorkerDeath worker_death = WorkerDeath::Clean;

  // Controller wave retries before giving up (stale claims are cleared
  // and missing shards re-dispatched each wave).
  int max_attempts = 8;

  bool verbose = false;
};

// What prepare_campaign() wrote: everything a worker or aggregator
// needs to reconstruct the campaign deterministically.
struct Manifest {
  std::uint64_t config_hash = 0;  // FNV over the serialized config echo
  std::vector<inject::CampaignConfig> campaigns;
  inject::InjectorOptions options;
  std::uint64_t kernel_fp = 0;
  std::vector<std::size_t> functions_targeted;   // per campaign slot
  std::vector<std::uint64_t> target_counts;      // per campaign slot
  std::vector<std::string> workloads;            // every workload used
  std::vector<std::uint64_t> bundle_hashes;      // parallel to workloads
  // Shard table: [begin, end) positions over the concatenated
  // locality-sorted execution order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> shard_ranges;

  std::uint64_t total_targets() const {
    std::uint64_t n = 0;
    for (const std::uint64_t c : target_counts) n += c;
    return n;
  }
};

struct WorkerReport {
  bool ok = false;
  std::uint64_t shards_completed = 0;
  std::uint64_t shards_stolen = 0;  // completed shards this worker did
                                    // not statically own
  std::uint64_t runs = 0;
  std::uint64_t bundle_adoptions = 0;
};

struct ServiceResult {
  bool ok = false;
  std::string error;
  std::uint64_t digest = 0;
  std::uint64_t total_runs = 0;
  std::uint64_t shard_count = 0;
  std::uint64_t shards_executed = 0;  // run by this invocation
  std::uint64_t shards_resumed = 0;   // adopted from a prior (killed) run
  std::uint64_t steals = 0;           // shards completed by a
                                      // non-preferred worker
  std::uint64_t corrupt_discarded = 0;
  // Worker-process exit accounting, summed over every wave: children
  // that exited non-zero and children killed by a signal.  Non-zero
  // values mean waves lost workers mid-shard (their shards were
  // re-claimed later); the campaign can still converge, but the caller
  // can see the attrition instead of it vanishing into a discarded
  // waitpid status.
  std::uint64_t workers_failed = 0;
  std::uint64_t workers_signaled = 0;
  int attempts = 0;
  std::uint64_t bundles_built = 0;
  std::uint64_t bundles_adopted = 0;
  // Materialized per-campaign runs (results only; stats stay with the
  // worker processes).  Filled when aggregate runs with materialize.
  std::vector<inject::CampaignRun> runs;
};

// Serializes golden bundles (building only the ones missing or
// invalid), computes the shard table over the deterministic execution
// order, and writes "<dir>/manifest.kfim" crash-safely.  When a
// manifest for a *different* config already exists in `dir`, stale
// shards and claims are wiped first; a matching manifest is reused
// as-is so completed shards resume.  Returns nullopt on failure
// (message on stderr).
std::optional<Manifest> prepare_campaign(const ServiceConfig& config,
                                         ServiceResult* result = nullptr);

// Loads "<dir>/manifest.kfim" (nullopt when absent or corrupt).
std::optional<Manifest> load_manifest(const std::string& dir);

// One worker's drain loop: adopts the manifest's bundles (mmap,
// zero-copy), then claims and executes pending shards — its statically
// owned ones (index % workers == worker_id) first, then steals — and
// streams each into the artifact store.  Runs in-process; run_service
// calls it from forked children, `kfi_campaignd worker` from a spawned
// process.  `max_shards` 0 = unlimited.
WorkerReport run_worker(const std::string& dir, unsigned worker_id,
                        unsigned workers, std::uint64_t max_shards = 0,
                        bool verbose = false);

// Streams every shard artifact through content-hash verification and
// the k-way spec-order merge, folding the digest (and the materialized
// runs when `materialize`).  Corrupt artifacts are discarded (counted
// in result.corrupt_discarded) and reported as failure so the caller
// re-runs those shards.  On success fills result.digest/total_runs/
// runs and returns true.
bool aggregate_campaign(const std::string& dir, bool materialize,
                        ServiceResult& result);

// The full controller: prepare, fork worker waves until every shard
// has a verified artifact (clearing stale claims between waves),
// aggregate, and fill the structural counters.  Bit-identity contract:
// result.digest equals results_digest() of the in-process path for the
// same campaign configs, at any worker count, including after resume.
ServiceResult run_service(const ServiceConfig& config,
                          bool materialize = false);

}  // namespace kfi::serve
