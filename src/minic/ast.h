// MiniC abstract syntax tree.
//
// Everything is a 32-bit word; memory is accessed explicitly through
// mem[addr] (word) and memb[addr] (byte), which keeps the language tiny
// while still letting kernel code walk real data structures.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace kfi::minic {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : std::uint8_t {
    Number,
    Ident,     // const / local / param / global / extern / array name
    Unary,     // op in `op`: - ~ !
    Binary,    // op in `op`
    Call,      // name(args...)
    MemWord,   // mem[addr]
    MemByte,   // memb[addr]
    String,    // literal -> address of NUL-terminated data
    AddrOf,    // &ident
  };

  Kind kind = Kind::Number;
  int line = 0;
  std::int64_t number = 0;
  std::string name;  // Ident / Call / AddrOf
  std::string op;    // Unary / Binary
  std::string str;   // String
  ExprPtr lhs;
  ExprPtr rhs;
  std::vector<ExprPtr> args;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : std::uint8_t {
    VarDecl,    // var name (= expr)?
    Assign,     // name = expr
    MemAssign,  // mem[addr] = expr  (byte_access for memb)
    If,
    While,
    Return,     // value optional
    Goto,
    Label,
    Break,
    Continue,
    ExprStmt,
    Asm,        // raw kasm line
    Assert,     // BUG() analog: !cond -> ud2
  };

  Kind kind = Kind::ExprStmt;
  int line = 0;
  std::string name;  // VarDecl/Assign target, Goto/Label name, Asm text
  bool byte_access = false;
  ExprPtr addr;      // MemAssign
  ExprPtr value;     // VarDecl init / Assign / MemAssign / Return / cond
  std::vector<StmtPtr> body;       // If-then / While body
  std::vector<StmtPtr> else_body;  // If-else
};

struct Function {
  std::string name;
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  int line = 0;
};

struct Global {
  std::string name;
  std::int64_t init = 0;
  int line = 0;
};

struct Array {
  std::string name;
  std::uint32_t count = 0;  // words
  int line = 0;
};

struct Program {
  std::vector<std::pair<std::string, std::int64_t>> consts;
  std::vector<Global> globals;
  std::vector<Array> arrays;
  std::vector<std::string> externs;  // symbols defined in another unit
  std::vector<Function> functions;
};

}  // namespace kfi::minic
