#include "minic/parser.h"

#include <map>

#include "minic/lexer.h"

namespace kfi::minic {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ParseResult run() {
    ParseResult result;
    while (!at_end() && errors_.empty()) {
      parse_item();
    }
    result.errors = std::move(errors_);
    result.ok = result.errors.empty();
    result.program = std::move(program_);
    return result;
  }

 private:
  const Token& peek(int ahead = 0) const {
    const std::size_t at = pos_ + static_cast<std::size_t>(ahead);
    return at < tokens_.size() ? tokens_[at] : tokens_.back();
  }
  const Token& advance() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool at_end() const { return peek().kind == TokKind::End; }

  bool check_punct(std::string_view text) const {
    return peek().kind == TokKind::Punct && peek().text == text;
  }
  bool check_ident(std::string_view text) const {
    return peek().kind == TokKind::Ident && peek().text == text;
  }
  bool match_punct(std::string_view text) {
    if (!check_punct(text)) return false;
    advance();
    return true;
  }
  bool match_ident(std::string_view text) {
    if (!check_ident(text)) return false;
    advance();
    return true;
  }

  void error(const std::string& message) {
    errors_.push_back("line " + std::to_string(peek().line) + ": " + message);
    // Recovery: skip to next ';' or '}' to avoid error cascades.
    while (!at_end() && !check_punct(";") && !check_punct("}")) advance();
    if (!at_end()) advance();
  }

  bool expect_punct(std::string_view text) {
    if (match_punct(text)) return true;
    error("expected '" + std::string(text) + "', found '" + peek().text + "'");
    return false;
  }

  std::string expect_name(const char* what) {
    if (peek().kind == TokKind::Ident) return advance().text;
    error(std::string("expected ") + what);
    return "";
  }

  // ---- constant expressions (folded at parse time) ----
  bool eval_const(const Expr& e, std::int64_t& out) {
    switch (e.kind) {
      case Expr::Kind::Number:
        out = e.number;
        return true;
      case Expr::Kind::Ident: {
        const auto it = const_values_.find(e.name);
        if (it == const_values_.end()) return false;
        out = it->second;
        return true;
      }
      case Expr::Kind::Unary: {
        std::int64_t v = 0;
        if (!eval_const(*e.lhs, v)) return false;
        if (e.op == "-") out = -v;
        else if (e.op == "~") out = ~v;
        else if (e.op == "!") out = v == 0 ? 1 : 0;
        else return false;
        return true;
      }
      case Expr::Kind::Binary: {
        std::int64_t a = 0;
        std::int64_t b = 0;
        if (!eval_const(*e.lhs, a) || !eval_const(*e.rhs, b)) return false;
        if (e.op == "+") out = a + b;
        else if (e.op == "-") out = a - b;
        else if (e.op == "*") out = a * b;
        else if (e.op == "/") { if (b == 0) return false; out = a / b; }
        else if (e.op == "%") { if (b == 0) return false; out = a % b; }
        else if (e.op == "<<") out = a << (b & 31);
        else if (e.op == ">>") out = static_cast<std::int64_t>(
                 static_cast<std::uint32_t>(a) >> (b & 31));
        else if (e.op == "&") out = a & b;
        else if (e.op == "|") out = a | b;
        else if (e.op == "^") out = a ^ b;
        else return false;
        return true;
      }
      default:
        return false;
    }
  }

  // ---- top level ----
  void parse_item() {
    if (match_ident("const")) {
      const std::string name = expect_name("const name");
      if (name.empty()) return;
      if (!expect_punct("=")) return;
      ExprPtr e = parse_expr();
      if (!e) return;
      std::int64_t value = 0;
      if (!eval_const(*e, value)) {
        error("const initializer must be a constant expression");
        return;
      }
      expect_punct(";");
      const_values_[name] = value;
      program_.consts.emplace_back(name, value);
      return;
    }
    if (match_ident("global")) {
      Global g;
      g.line = peek().line;
      g.name = expect_name("global name");
      if (g.name.empty()) return;
      if (match_punct("=")) {
        ExprPtr e = parse_expr();
        if (!e) return;
        if (!eval_const(*e, g.init)) {
          error("global initializer must be constant");
          return;
        }
      }
      expect_punct(";");
      program_.globals.push_back(std::move(g));
      return;
    }
    if (match_ident("array")) {
      Array a;
      a.line = peek().line;
      a.name = expect_name("array name");
      if (a.name.empty()) return;
      if (!expect_punct("[")) return;
      ExprPtr e = parse_expr();
      if (!e) return;
      std::int64_t count = 0;
      if (!eval_const(*e, count) || count <= 0) {
        error("array size must be a positive constant");
        return;
      }
      a.count = static_cast<std::uint32_t>(count);
      expect_punct("]");
      expect_punct(";");
      program_.arrays.push_back(std::move(a));
      return;
    }
    if (match_ident("extern")) {
      const std::string name = expect_name("extern name");
      if (name.empty()) return;
      expect_punct(";");
      program_.externs.push_back(name);
      return;
    }
    if (match_ident("func")) {
      Function fn;
      fn.line = peek().line;
      fn.name = expect_name("function name");
      if (fn.name.empty()) return;
      if (!expect_punct("(")) return;
      if (!check_punct(")")) {
        while (true) {
          const std::string p = expect_name("parameter name");
          if (p.empty()) return;
          fn.params.push_back(p);
          if (!match_punct(",")) break;
        }
      }
      if (!expect_punct(")")) return;
      if (!parse_block(fn.body)) return;
      program_.functions.push_back(std::move(fn));
      return;
    }
    error("expected top-level item (const/global/array/extern/func)");
  }

  bool parse_block(std::vector<StmtPtr>& out) {
    if (!expect_punct("{")) return false;
    while (!check_punct("}") && !at_end() && errors_.empty()) {
      StmtPtr s = parse_stmt();
      if (s) out.push_back(std::move(s));
      if (!errors_.empty()) return false;
    }
    return expect_punct("}");
  }

  StmtPtr parse_stmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = peek().line;

    if (match_ident("var")) {
      stmt->kind = Stmt::Kind::VarDecl;
      stmt->name = expect_name("variable name");
      if (stmt->name.empty()) return nullptr;
      if (match_punct("=")) {
        stmt->value = parse_expr();
        if (!stmt->value) return nullptr;
      }
      expect_punct(";");
      return stmt;
    }
    if (match_ident("if")) {
      stmt->kind = Stmt::Kind::If;
      if (!expect_punct("(")) return nullptr;
      stmt->value = parse_expr();
      if (!stmt->value) return nullptr;
      if (!expect_punct(")")) return nullptr;
      if (!parse_block(stmt->body)) return nullptr;
      if (match_ident("else")) {
        if (check_ident("if")) {
          StmtPtr nested = parse_stmt();
          if (!nested) return nullptr;
          stmt->else_body.push_back(std::move(nested));
        } else if (!parse_block(stmt->else_body)) {
          return nullptr;
        }
      }
      return stmt;
    }
    if (match_ident("while")) {
      stmt->kind = Stmt::Kind::While;
      if (!expect_punct("(")) return nullptr;
      stmt->value = parse_expr();
      if (!stmt->value) return nullptr;
      if (!expect_punct(")")) return nullptr;
      if (!parse_block(stmt->body)) return nullptr;
      return stmt;
    }
    if (match_ident("return")) {
      stmt->kind = Stmt::Kind::Return;
      if (!check_punct(";")) {
        stmt->value = parse_expr();
        if (!stmt->value) return nullptr;
      }
      expect_punct(";");
      return stmt;
    }
    if (match_ident("goto")) {
      stmt->kind = Stmt::Kind::Goto;
      stmt->name = expect_name("label");
      expect_punct(";");
      return stmt;
    }
    if (match_ident("break")) {
      stmt->kind = Stmt::Kind::Break;
      expect_punct(";");
      return stmt;
    }
    if (match_ident("continue")) {
      stmt->kind = Stmt::Kind::Continue;
      expect_punct(";");
      return stmt;
    }
    if (match_ident("asm")) {
      stmt->kind = Stmt::Kind::Asm;
      if (!expect_punct("(")) return nullptr;
      if (peek().kind != TokKind::String) {
        error("asm requires a string literal");
        return nullptr;
      }
      stmt->name = advance().text;
      expect_punct(")");
      expect_punct(";");
      return stmt;
    }
    if (match_ident("assert")) {
      stmt->kind = Stmt::Kind::Assert;
      if (!expect_punct("(")) return nullptr;
      stmt->value = parse_expr();
      if (!stmt->value) return nullptr;
      expect_punct(")");
      expect_punct(";");
      return stmt;
    }
    if ((check_ident("mem") || check_ident("memb")) &&
        peek(1).kind == TokKind::Punct && peek(1).text == "[") {
      stmt->byte_access = peek().text == "memb";
      advance();  // mem/memb
      advance();  // [
      stmt->addr = parse_expr();
      if (!stmt->addr) return nullptr;
      if (!expect_punct("]")) return nullptr;
      if (match_punct("=")) {
        stmt->kind = Stmt::Kind::MemAssign;
        stmt->value = parse_expr();
        if (!stmt->value) return nullptr;
        expect_punct(";");
        return stmt;
      }
      error("expected '=' after memory reference");
      return nullptr;
    }
    // label:  |  name = expr;  |  expression;
    if (peek().kind == TokKind::Ident && peek(1).kind == TokKind::Punct) {
      if (peek(1).text == ":") {
        stmt->kind = Stmt::Kind::Label;
        stmt->name = advance().text;
        advance();  // :
        return stmt;
      }
      if (peek(1).text == "=") {
        stmt->kind = Stmt::Kind::Assign;
        stmt->name = advance().text;
        advance();  // =
        stmt->value = parse_expr();
        if (!stmt->value) return nullptr;
        expect_punct(";");
        return stmt;
      }
    }
    stmt->kind = Stmt::Kind::ExprStmt;
    stmt->value = parse_expr();
    if (!stmt->value) return nullptr;
    expect_punct(";");
    return stmt;
  }

  // ---- expressions ----
  ExprPtr parse_expr() { return parse_lor(); }

  ExprPtr make_binary(const std::string& op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Binary;
    e->op = op;
    e->line = lhs ? lhs->line : 0;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  template <typename Next>
  ExprPtr parse_left_assoc(Next next,
                           std::initializer_list<std::string_view> ops) {
    ExprPtr lhs = (this->*next)();
    if (!lhs) return nullptr;
    while (true) {
      bool matched = false;
      for (const auto op : ops) {
        if (check_punct(op)) {
          advance();
          ExprPtr rhs = (this->*next)();
          if (!rhs) return nullptr;
          lhs = make_binary(std::string(op), std::move(lhs), std::move(rhs));
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  ExprPtr parse_lor() {
    return parse_left_assoc(&Parser::parse_land, {"||"});
  }
  ExprPtr parse_land() {
    return parse_left_assoc(&Parser::parse_bor, {"&&"});
  }
  ExprPtr parse_bor() {
    return parse_left_assoc(&Parser::parse_bxor, {"|"});
  }
  ExprPtr parse_bxor() {
    return parse_left_assoc(&Parser::parse_band, {"^"});
  }
  ExprPtr parse_band() {
    return parse_left_assoc(&Parser::parse_eq, {"&"});
  }
  ExprPtr parse_eq() {
    return parse_left_assoc(&Parser::parse_rel, {"==", "!="});
  }
  ExprPtr parse_rel() {
    return parse_left_assoc(&Parser::parse_shift,
                            {"<=u", ">=u", "<u", ">u", "<=", ">=", "<", ">"});
  }
  ExprPtr parse_shift() {
    return parse_left_assoc(&Parser::parse_add, {"<<", ">>"});
  }
  ExprPtr parse_add() {
    return parse_left_assoc(&Parser::parse_mul, {"+", "-"});
  }
  ExprPtr parse_mul() {
    return parse_left_assoc(&Parser::parse_unary, {"*", "/", "%"});
  }

  ExprPtr parse_unary() {
    for (const std::string_view op : {"-", "~", "!"}) {
      if (check_punct(op)) {
        const int line = peek().line;
        advance();
        ExprPtr operand = parse_unary();
        if (!operand) return nullptr;
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::Unary;
        e->op = std::string(op);
        e->line = line;
        e->lhs = std::move(operand);
        return e;
      }
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    auto e = std::make_unique<Expr>();
    e->line = peek().line;

    if (peek().kind == TokKind::Number) {
      e->kind = Expr::Kind::Number;
      e->number = advance().number;
      return e;
    }
    if (peek().kind == TokKind::String) {
      e->kind = Expr::Kind::String;
      e->str = advance().text;
      return e;
    }
    if (match_punct("(")) {
      ExprPtr inner = parse_expr();
      if (!inner) return nullptr;
      if (!expect_punct(")")) return nullptr;
      return inner;
    }
    if (match_punct("&")) {
      e->kind = Expr::Kind::AddrOf;
      e->name = expect_name("symbol after '&'");
      if (e->name.empty()) return nullptr;
      return e;
    }
    if ((check_ident("mem") || check_ident("memb")) &&
        peek(1).kind == TokKind::Punct && peek(1).text == "[") {
      e->kind = peek().text == "mem" ? Expr::Kind::MemWord
                                     : Expr::Kind::MemByte;
      advance();
      advance();
      e->lhs = parse_expr();
      if (!e->lhs) return nullptr;
      if (!expect_punct("]")) return nullptr;
      return e;
    }
    if (peek().kind == TokKind::Ident) {
      e->name = advance().text;
      if (match_punct("(")) {
        e->kind = Expr::Kind::Call;
        if (!check_punct(")")) {
          while (true) {
            ExprPtr arg = parse_expr();
            if (!arg) return nullptr;
            e->args.push_back(std::move(arg));
            if (!match_punct(",")) break;
          }
        }
        if (!expect_punct(")")) return nullptr;
        return e;
      }
      e->kind = Expr::Kind::Ident;
      return e;
    }
    error("expected expression, found '" + peek().text + "'");
    return nullptr;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<std::string> errors_;
  Program program_;
  std::map<std::string, std::int64_t> const_values_;
};

}  // namespace

ParseResult parse(std::string_view source) {
  LexResult lexed = lex(source);
  if (!lexed.ok) {
    ParseResult result;
    result.errors = std::move(lexed.errors);
    return result;
  }
  Parser parser(std::move(lexed.tokens));
  return parser.run();
}

}  // namespace kfi::minic
