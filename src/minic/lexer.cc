#include "minic/lexer.h"

#include <cctype>

namespace kfi::minic {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

LexResult lex(std::string_view src) {
  LexResult result;
  int line = 1;
  std::size_t i = 0;

  auto error = [&](const std::string& message) {
    result.errors.push_back("line " + std::to_string(line) + ": " + message);
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    // Comments: // to end of line, /* ... */
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= src.size()) {
        error("unterminated block comment");
        return result;
      }
      i += 2;
      continue;
    }

    Token tok;
    tok.line = line;

    if (ident_start(c)) {
      std::size_t start = i;
      while (i < src.size() && ident_char(src[i])) ++i;
      tok.kind = TokKind::Ident;
      tok.text = std::string(src.substr(start, i - start));
      result.tokens.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      int base = 10;
      if (c == '0' && i + 1 < src.size() &&
          (src[i + 1] == 'x' || src[i + 1] == 'X')) {
        base = 16;
        i += 2;
      }
      std::int64_t value = 0;
      bool any = base == 10;  // "0" alone is fine
      while (i < src.size()) {
        const char d = src[i];
        int digit = -1;
        if (d >= '0' && d <= '9') digit = d - '0';
        else if (base == 16 && d >= 'a' && d <= 'f') digit = d - 'a' + 10;
        else if (base == 16 && d >= 'A' && d <= 'F') digit = d - 'A' + 10;
        else break;
        value = value * base + digit;
        any = true;
        ++i;
      }
      if (!any) {
        error("malformed number");
        return result;
      }
      if (i < src.size() && ident_char(src[i])) {
        error("malformed number suffix");
        return result;
      }
      tok.kind = TokKind::Number;
      tok.number = value;
      tok.text = std::string(src.substr(start, i - start));
      result.tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '"') {
      ++i;
      tok.kind = TokKind::String;
      while (i < src.size() && src[i] != '"') {
        char ch = src[i];
        if (ch == '\n') {
          error("newline in string literal");
          return result;
        }
        if (ch == '\\' && i + 1 < src.size()) {
          ++i;
          switch (src[i]) {
            case 'n': ch = '\n'; break;
            case 't': ch = '\t'; break;
            case '0': ch = '\0'; break;
            case '\\': ch = '\\'; break;
            case '"': ch = '"'; break;
            default: ch = src[i]; break;
          }
        }
        tok.text.push_back(ch);
        ++i;
      }
      if (i >= src.size()) {
        error("unterminated string literal");
        return result;
      }
      ++i;  // closing quote
      result.tokens.push_back(std::move(tok));
      continue;
    }

    // Punctuation / operators, longest match first.
    static constexpr std::string_view multi[] = {
        "<=u", ">=u", "<<", ">>", "<=", ">=", "==", "!=",
        "&&",  "||",  "<u", ">u",
    };
    tok.kind = TokKind::Punct;
    bool matched = false;
    for (const auto& m : multi) {
      if (src.substr(i, m.size()) == m) {
        tok.text = std::string(m);
        i += m.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      static constexpr std::string_view single = "+-*/%&|^~!<>=(){}[],;:";
      if (single.find(c) == std::string_view::npos) {
        error(std::string("unexpected character '") + c + "'");
        return result;
      }
      tok.text = std::string(1, c);
      ++i;
    }
    result.tokens.push_back(std::move(tok));
  }

  Token end;
  end.kind = TokKind::End;
  end.line = line;
  result.tokens.push_back(std::move(end));
  result.ok = result.errors.empty();
  return result;
}

}  // namespace kfi::minic
