// MiniC lexer.
//
// MiniC is the small C-like language the simulated kernel and the
// UnixBench-like workloads are written in.  Tokens:
//   identifiers, integer literals (decimal / 0x hex), string literals,
//   keywords (func, var, global, array, const, extern, if, else, while,
//   return, goto, break, continue, asm, assert, mem, memb),
//   operators incl. unsigned comparisons <u <=u >u >=u (must be written
//   without a space between '<' and 'u').
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kfi::minic {

enum class TokKind : std::uint8_t {
  End,
  Ident,
  Number,
  String,
  Punct,  // operator or punctuation, text in `text`
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  std::int64_t number = 0;
  int line = 1;
};

struct LexResult {
  bool ok = false;
  std::vector<Token> tokens;  // terminated by an End token
  std::vector<std::string> errors;
};

LexResult lex(std::string_view source);

}  // namespace kfi::minic
