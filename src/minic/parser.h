// MiniC recursive-descent parser.
#pragma once

#include <string_view>
#include <vector>

#include "minic/ast.h"

namespace kfi::minic {

struct ParseResult {
  bool ok = false;
  Program program;
  std::vector<std::string> errors;
};

ParseResult parse(std::string_view source);

}  // namespace kfi::minic
