// MiniC code generator: AST -> kasm text (one text stream for the code
// section, one for the data section; they are assembled at different
// base addresses by the kernel builder).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "minic/ast.h"

namespace kfi::minic {

struct CompileResult {
  bool ok = false;
  std::string text_asm;
  std::string data_asm;
  std::vector<std::string> errors;
};

// `unit_name` disambiguates generated data labels across units.
CompileResult generate(const Program& program, std::string_view unit_name);

// Convenience: parse + generate.
CompileResult compile(std::string_view source, std::string_view unit_name);

}  // namespace kfi::minic
