#include "minic/codegen.h"

#include <map>
#include <set>

#include "minic/parser.h"
#include "support/strings.h"

namespace kfi::minic {
namespace {

// Symbol classes visible to expressions.
enum class SymKind : std::uint8_t { Const, Global, Array, Extern };

class Codegen {
 public:
  Codegen(const Program& program, std::string_view unit_name)
      : program_(program), unit_(unit_name) {}

  CompileResult run() {
    CompileResult result;

    for (const auto& [name, value] : program_.consts) {
      consts_[name] = value;
      declare(name, SymKind::Const);
    }
    for (const Global& g : program_.globals) declare(g.name, SymKind::Global);
    for (const Array& a : program_.arrays) declare(a.name, SymKind::Array);
    for (const std::string& e : program_.externs) declare(e, SymKind::Extern);
    for (const Function& f : program_.functions) function_names_.insert(f.name);

    for (const Global& g : program_.globals) {
      data(g.name + ":");
      data("  .word " + std::to_string(static_cast<std::uint32_t>(g.init)));
    }
    for (const Array& a : program_.arrays) {
      data(a.name + ":");
      data("  .space " + std::to_string(a.count * 4));
    }

    for (const Function& fn : program_.functions) gen_function(fn);

    result.errors = std::move(errors_);
    result.ok = result.errors.empty();
    result.text_asm = std::move(text_);
    result.data_asm = std::move(data_);
    return result;
  }

 private:
  void emit(const std::string& line) { text_ += "  " + line + "\n"; }
  void emit_label(const std::string& label) { text_ += label + ":\n"; }
  void raw(const std::string& line) { text_ += line + "\n"; }
  void data(const std::string& line) { data_ += line + "\n"; }

  void error(int line, const std::string& message) {
    errors_.push_back("line " + std::to_string(line) + ": " + message);
  }

  void declare(const std::string& name, SymKind kind) {
    if (!symbols_.emplace(name, kind).second) {
      errors_.push_back("duplicate symbol '" + name + "'");
    }
  }

  std::string fresh_label() {
    return fn_->name + "__L" + std::to_string(label_counter_++);
  }
  std::string user_label(const std::string& name) {
    return fn_->name + "__u_" + name;
  }
  std::string epilogue_label() { return fn_->name + "__epilogue"; }

  // ---- function frame ----
  void collect_locals(const std::vector<StmtPtr>& stmts) {
    for (const StmtPtr& s : stmts) {
      if (s->kind == Stmt::Kind::VarDecl) {
        if (locals_.count(s->name) != 0 || params_.count(s->name) != 0) {
          error(s->line, "duplicate variable '" + s->name + "'");
        } else {
          const int offset = -4 * (static_cast<int>(locals_.size()) + 1);
          locals_[s->name] = offset;
        }
      }
      collect_locals(s->body);
      collect_locals(s->else_body);
    }
  }

  void gen_function(const Function& fn) {
    fn_ = &fn;
    locals_.clear();
    params_.clear();
    label_counter_ = 0;
    loop_stack_.clear();

    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      params_[fn.params[i]] = 8 + 4 * static_cast<int>(i);
    }
    collect_locals(fn.body);

    raw(".func " + fn.name);
    emit_label(fn.name);
    emit("push %ebp");
    emit("mov %esp, %ebp");
    if (!locals_.empty()) {
      emit("sub $" + std::to_string(4 * locals_.size()) + ", %esp");
    }
    gen_stmts(fn.body);
    emit_label(epilogue_label());
    emit("leave");
    emit("ret");
    raw(".endfunc");
    raw("");
    fn_ = nullptr;
  }

  void gen_stmts(const std::vector<StmtPtr>& stmts) {
    for (const StmtPtr& s : stmts) gen_stmt(*s);
  }

  void gen_stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::VarDecl:
        if (s.value) {
          gen_expr(*s.value);
          emit(kfi::format("mov %%eax, %d(%%ebp)", locals_.at(s.name)));
        }
        break;
      case Stmt::Kind::Assign: {
        gen_expr(*s.value);
        if (const auto local = locals_.find(s.name); local != locals_.end()) {
          emit(kfi::format("mov %%eax, %d(%%ebp)", local->second));
          break;
        }
        if (const auto param = params_.find(s.name); param != params_.end()) {
          emit(kfi::format("mov %%eax, %d(%%ebp)", param->second));
          break;
        }
        const auto sym = symbols_.find(s.name);
        if (sym != symbols_.end() && (sym->second == SymKind::Global ||
                                      sym->second == SymKind::Extern)) {
          emit("mov %eax, " + s.name);
          break;
        }
        error(s.line, "cannot assign to '" + s.name + "'");
        break;
      }
      case Stmt::Kind::MemAssign: {
        gen_expr(*s.addr);
        emit("push %eax");
        gen_expr(*s.value);
        emit("pop %ecx");
        emit(s.byte_access ? "movb %al, (%ecx)" : "mov %eax, (%ecx)");
        break;
      }
      case Stmt::Kind::If: {
        const std::string else_label = fresh_label();
        gen_expr(*s.value);
        emit("test %eax, %eax");
        emit("je " + else_label);
        gen_stmts(s.body);
        if (s.else_body.empty()) {
          emit_label(else_label);
        } else {
          const std::string end_label = fresh_label();
          emit("jmp " + end_label);
          emit_label(else_label);
          gen_stmts(s.else_body);
          emit_label(end_label);
        }
        break;
      }
      case Stmt::Kind::While: {
        const std::string head = fresh_label();
        const std::string end = fresh_label();
        emit_label(head);
        gen_expr(*s.value);
        emit("test %eax, %eax");
        emit("je " + end);
        loop_stack_.push_back({head, end});
        gen_stmts(s.body);
        loop_stack_.pop_back();
        emit("jmp " + head);
        emit_label(end);
        break;
      }
      case Stmt::Kind::Return:
        if (s.value) gen_expr(*s.value);
        emit("jmp " + epilogue_label());
        break;
      case Stmt::Kind::Goto:
        emit("jmp " + user_label(s.name));
        break;
      case Stmt::Kind::Label:
        emit_label(user_label(s.name));
        break;
      case Stmt::Kind::Break:
        if (loop_stack_.empty()) {
          error(s.line, "break outside loop");
        } else {
          emit("jmp " + loop_stack_.back().second);
        }
        break;
      case Stmt::Kind::Continue:
        if (loop_stack_.empty()) {
          error(s.line, "continue outside loop");
        } else {
          emit("jmp " + loop_stack_.back().first);
        }
        break;
      case Stmt::Kind::ExprStmt:
        gen_expr(*s.value);
        break;
      case Stmt::Kind::Asm:
        emit(s.name);
        break;
      case Stmt::Kind::Assert: {
        // BUG(): if the condition fails, execute ud2 — the kernel's
        // assertion idiom the paper highlights (Table 7, example 4).
        const std::string ok = fresh_label();
        gen_expr(*s.value);
        emit("test %eax, %eax");
        emit("jne " + ok);
        emit("ud2a");
        emit_label(ok);
        break;
      }
    }
  }

  // ---- expressions: result in %eax ----
  void gen_expr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Number:
        emit(kfi::format("mov $%d, %%eax",
                         static_cast<std::int32_t>(e.number)));
        break;
      case Expr::Kind::Ident: {
        if (const auto local = locals_.find(e.name); local != locals_.end()) {
          emit(kfi::format("mov %d(%%ebp), %%eax", local->second));
          return;
        }
        if (const auto param = params_.find(e.name); param != params_.end()) {
          emit(kfi::format("mov %d(%%ebp), %%eax", param->second));
          return;
        }
        const auto sym = symbols_.find(e.name);
        if (sym == symbols_.end()) {
          error(e.line, "undeclared identifier '" + e.name + "'");
          return;
        }
        switch (sym->second) {
          case SymKind::Const:
            emit(kfi::format("mov $%d, %%eax",
                             static_cast<std::int32_t>(consts_.at(e.name))));
            break;
          case SymKind::Global:
          case SymKind::Extern:
            emit("mov " + e.name + ", %eax");
            break;
          case SymKind::Array:
            emit("mov $" + e.name + ", %eax");
            break;
        }
        break;
      }
      case Expr::Kind::AddrOf: {
        const auto sym = symbols_.find(e.name);
        if (sym == symbols_.end() ||
            (sym->second != SymKind::Global && sym->second != SymKind::Array &&
             sym->second != SymKind::Extern)) {
          error(e.line, "'&' requires a global, array, or extern");
          return;
        }
        emit("mov $" + e.name + ", %eax");
        break;
      }
      case Expr::Kind::String: {
        const std::string label =
            "str_" + std::string(unit_) + "_" + std::to_string(string_counter_++);
        std::string escaped;
        for (const char c : e.str) {
          switch (c) {
            case '\n': escaped += "\\n"; break;
            case '\t': escaped += "\\t"; break;
            case '"': escaped += "\\\""; break;
            case '\\': escaped += "\\\\"; break;
            case '\0': escaped += "\\0"; break;
            default: escaped.push_back(c); break;
          }
        }
        data(label + ":");
        data("  .ascii \"" + escaped + "\\0\"");
        emit("mov $" + label + ", %eax");
        break;
      }
      case Expr::Kind::MemWord:
        gen_expr(*e.lhs);
        emit("mov (%eax), %eax");
        break;
      case Expr::Kind::MemByte:
        gen_expr(*e.lhs);
        emit("movzbl (%eax), %eax");
        break;
      case Expr::Kind::Unary:
        gen_expr(*e.lhs);
        if (e.op == "-") {
          emit("neg %eax");
        } else if (e.op == "~") {
          emit("not %eax");
        } else {  // !
          emit("test %eax, %eax");
          emit("sete %al");
          emit("movzbl %al, %eax");
        }
        break;
      case Expr::Kind::Binary:
        gen_binary(e);
        break;
      case Expr::Kind::Call: {
        if (locals_.count(e.name) != 0 || params_.count(e.name) != 0) {
          error(e.line, "'" + e.name + "' is not callable");
          return;
        }
        for (auto it = e.args.rbegin(); it != e.args.rend(); ++it) {
          gen_expr(**it);
          emit("push %eax");
        }
        emit("call " + e.name);
        if (!e.args.empty()) {
          emit(kfi::format("add $%zu, %%esp", 4 * e.args.size()));
        }
        break;
      }
    }
  }

  void gen_binary(const Expr& e) {
    // Short-circuit logicals.
    if (e.op == "&&" || e.op == "||") {
      const std::string out = fresh_label();
      const std::string rhs = fresh_label();
      gen_expr(*e.lhs);
      emit("test %eax, %eax");
      if (e.op == "&&") {
        emit("jne " + rhs);
        emit("mov $0, %eax");
        emit("jmp " + out);
      } else {
        emit("je " + rhs);
        emit("mov $1, %eax");
        emit("jmp " + out);
      }
      emit_label(rhs);
      gen_expr(*e.rhs);
      emit("test %eax, %eax");
      emit("setne %al");
      emit("movzbl %al, %eax");
      emit_label(out);
      return;
    }

    gen_expr(*e.lhs);
    emit("push %eax");
    gen_expr(*e.rhs);
    emit("mov %eax, %ecx");
    emit("pop %eax");

    static const std::map<std::string_view, std::string_view> setcc = {
        {"==", "sete"},  {"!=", "setne"}, {"<", "setl"},   {"<=", "setle"},
        {">", "setg"},   {">=", "setge"}, {"<u", "setb"},  {"<=u", "setbe"},
        {">u", "seta"},  {">=u", "setae"},
    };

    if (e.op == "+") {
      emit("add %ecx, %eax");
    } else if (e.op == "-") {
      emit("sub %ecx, %eax");
    } else if (e.op == "*") {
      emit("imul %ecx, %eax");
    } else if (e.op == "/") {
      emit("mov $0, %edx");
      emit("div %ecx");
    } else if (e.op == "%") {
      emit("mov $0, %edx");
      emit("div %ecx");
      emit("mov %edx, %eax");
    } else if (e.op == "&") {
      emit("and %ecx, %eax");
    } else if (e.op == "|") {
      emit("or %ecx, %eax");
    } else if (e.op == "^") {
      emit("xor %ecx, %eax");
    } else if (e.op == "<<") {
      emit("shl %cl, %eax");
    } else if (e.op == ">>") {
      emit("shr %cl, %eax");
    } else if (const auto it = setcc.find(e.op); it != setcc.end()) {
      emit("cmp %ecx, %eax");
      emit(std::string(it->second) + " %al");
      emit("movzbl %al, %eax");
    } else {
      error(e.line, "unsupported operator '" + e.op + "'");
    }
  }

  const Program& program_;
  std::string_view unit_;
  std::string text_;
  std::string data_;
  std::vector<std::string> errors_;

  std::map<std::string, SymKind> symbols_;
  std::map<std::string, std::int64_t> consts_;
  std::set<std::string> function_names_;

  const Function* fn_ = nullptr;
  std::map<std::string, int> locals_;
  std::map<std::string, int> params_;
  std::vector<std::pair<std::string, std::string>> loop_stack_;
  int label_counter_ = 0;
  int string_counter_ = 0;
};

}  // namespace

CompileResult generate(const Program& program, std::string_view unit_name) {
  return Codegen(program, unit_name).run();
}

CompileResult compile(std::string_view source, std::string_view unit_name) {
  ParseResult parsed = parse(source);
  if (!parsed.ok) {
    CompileResult result;
    result.errors = std::move(parsed.errors);
    return result;
  }
  return generate(parsed.program, unit_name);
}

}  // namespace kfi::minic
