#include "trace/trace.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "support/strings.h"

namespace kfi::trace {

std::string_view event_name(EventKind kind) {
  switch (kind) {
    case EventKind::RunBegin: return "run_begin";
    case EventKind::RunEnd: return "run_end";
    case EventKind::TrapEntry: return "trap_entry";
    case EventKind::TrapExit: return "trap_exit";
    case EventKind::MemFault: return "mem_fault";
    case EventKind::TimerIrq: return "timer_irq";
    case EventKind::InjectTrigger: return "inject_trigger";
    case EventKind::InjectFlip: return "inject_flip";
    case EventKind::SnapshotRestore: return "snapshot_restore";
    case EventKind::CheckpointRestore: return "checkpoint_restore";
    case EventKind::Reconverged: return "reconverged";
    case EventKind::BlockInvalidate: return "block_invalidate";
    case EventKind::CrashReport: return "crash_report";
    case EventKind::ChunkRun: return "chunk_run";
    case EventKind::ChunkSteal: return "chunk_steal";
  }
  return "unknown";
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_ < 64 ? capacity_ : 64);
}

void TraceBuffer::record(EventKind kind, std::uint64_t cycle, std::uint32_t a,
                         std::uint32_t b, std::uint32_t c, std::uint32_t d) {
  const Event event{kind, cycle, a, b, c, d};
  const std::lock_guard<std::mutex> lock(mutex_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  // Full: overwrite the oldest slot; head_ points at it.
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void TraceBuffer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
}

std::vector<Event> TraceBuffer::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t TraceBuffer::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t TraceBuffer::total_recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::uint64_t TraceBuffer::total_dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

namespace {

// The payload word that holds an instruction address worth symbolizing,
// or 0 when the event has none.
std::uint32_t symbol_addr(const Event& event) {
  switch (event.kind) {
    case EventKind::TrapEntry:
    case EventKind::MemFault:
    case EventKind::CrashReport: return event.c;
    case EventKind::TrapExit: return event.a;
    case EventKind::InjectTrigger:
    case EventKind::InjectFlip: return event.a;
    default: return 0;
  }
}

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char ch : text) {
    if (ch == '"' || ch == '\\') {
      out.push_back('\\');
      out.push_back(ch);
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out += format("\\u%04x", static_cast<unsigned>(ch));
    } else {
      out.push_back(ch);
    }
  }
}

}  // namespace

std::string to_jsonl(const std::vector<Event>& events,
                     const SymbolResolver& resolve) {
  std::string out;
  std::size_t seq = 0;
  for (const Event& event : events) {
    out += format("{\"seq\":%zu,\"cycle\":%llu,\"event\":\"%s\","
                  "\"a\":%u,\"b\":%u,\"c\":%u,\"d\":%u",
                  seq++, static_cast<unsigned long long>(event.cycle),
                  std::string(event_name(event.kind)).c_str(), event.a,
                  event.b, event.c, event.d);
    const std::uint32_t addr = symbol_addr(event);
    if (resolve != nullptr && addr != 0) {
      const std::string sym = resolve(addr);
      if (!sym.empty()) {
        out += ",\"sym\":\"";
        append_json_escaped(out, sym);
        out.push_back('"');
      }
    }
    out += "}\n";
  }
  return out;
}

bool write_jsonl(const std::vector<Event>& events, const std::string& path,
                 const SymbolResolver& resolve) {
  const std::string text = to_jsonl(events, resolve);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  file.flush();
  if (!file.good()) {
    file.close();
    std::error_code ec;
    std::filesystem::remove(path, ec);  // never cache a truncated trace
    return false;
  }
  return true;
}

namespace {

std::string label_addr(std::uint32_t addr, const SymbolResolver& resolve) {
  if (resolve != nullptr) {
    const std::string sym = resolve(addr);
    if (!sym.empty()) return sym + " (" + hex32(addr) + ")";
  }
  return hex32(addr);
}

std::string describe(const Event& event, const SymbolResolver& resolve) {
  switch (event.kind) {
    case EventKind::RunBegin: return "run begins";
    case EventKind::RunEnd:
      return format("run ends (exit %u, code %u)", event.a, event.b);
    case EventKind::TrapEntry:
      return format("trap %u at eip ", event.a) + label_addr(event.c, resolve);
    case EventKind::TrapExit:
      return "trap returns to " + label_addr(event.a, resolve) +
             format(" (cpl %u)", event.b);
    case EventKind::MemFault:
      return format("memory fault (trap %u, err %u) at address ", event.a,
                    event.b) +
             hex32(event.d) + ", eip " + label_addr(event.c, resolve);
    case EventKind::TimerIrq: return "timer interrupt delivered";
    case EventKind::InjectTrigger:
      return "TRIGGER: breakpoint on target " + label_addr(event.a, resolve);
    case EventKind::InjectFlip:
      return "FLIP: byte " + std::to_string(event.b >> 8) + " bit " +
             std::to_string(event.b & 0xFF) +
             format(": %02x -> %02x at ", event.c, event.d) +
             label_addr(event.a, resolve);
    case EventKind::SnapshotRestore: return "post-boot snapshot restored";
    case EventKind::CheckpointRestore:
      return format("checkpoint rung restored (rung cycle %u)", event.a);
    case EventKind::Reconverged:
      return format("reconverged onto golden rung %u", event.a);
    case EventKind::BlockInvalidate:
      return format("superblock cache invalidated (%u blocks) at paddr ",
                    event.b) +
             hex32(event.a);
    case EventKind::CrashReport:
      return format("OOPS: crash dump (cause %u) fault addr ", event.a) +
             hex32(event.b) + ", eip " + label_addr(event.c, resolve);
    case EventKind::ChunkRun:
      return format("worker %u runs chunk [%u, %u)", event.a, event.b,
                    event.c);
    case EventKind::ChunkSteal:
      return format("worker %u steals chunk [%u, %u) from worker %u",
                    event.a, event.c, event.d, event.b);
  }
  return "?";
}

}  // namespace

std::string render_timeline(const std::vector<Event>& events,
                            const SymbolResolver& resolve) {
  std::string out;
  out += format("%-14s %-12s event\n", "cycle", "+trigger");
  bool have_trigger = false;
  std::uint64_t trigger_cycle = 0;
  for (const Event& event : events) {
    if (event.kind == EventKind::InjectTrigger) {
      have_trigger = true;
      trigger_cycle = event.cycle;
    }
    std::string delta = "-";
    if (have_trigger && event.cycle >= trigger_cycle) {
      delta = "+" + with_commas(event.cycle - trigger_cycle);
    }
    out += format("%-14s %-12s ", with_commas(event.cycle).c_str(),
                  delta.c_str());
    out += describe(event, resolve);
    out.push_back('\n');
  }
  return out;
}

}  // namespace kfi::trace
