// Cycle-stamped crash-forensics trace layer.
//
// A TraceBuffer is a bounded ring of machine events — trap entry/exit
// with the frame essentials, memory faults, injection trigger and
// flip, checkpoint-rung restores, block-cache invalidations, scheduler
// chunk grants and steals — recorded by the substrate (Machine, Cpu,
// Injector, ChunkScheduler) whenever a sink is attached.  It is the
// machine-checkable replacement for reading LKCD crash dumps by hand:
// the paper's Figure 7 latencies, Figure 8 propagation graphs, and the
// Table 5/7 case-study timelines all fall out of one recorded run.
//
// Design contract: recording is strictly observational.  No guest
// cycle, register, RAM byte, or run-visible outcome may depend on
// whether a sink is attached — the campaign result digest is required
// (and CI-gated) to be bit-identical with tracing on and off.  To keep
// that property trivially auditable, events carry the guest cycle they
// were observed at plus four opaque payload words; nothing in the
// buffer is ever read back by execution code.
//
// The ring is bounded: when full, the *oldest* event is overwritten
// (and counted as dropped), because forensics cares about the end of
// the story — the window leading up to the trap.  Lifetime counters
// (total recorded / dropped) survive clear(), so per-injection reuse
// of one buffer still aggregates into campaign-wide telemetry.
//
// Thread safety: all members are internally locked.  One buffer may be
// shared between a worker's machines and the campaign scheduler; the
// lock is uncontended in the common single-owner case.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace kfi::trace {

enum class EventKind : std::uint8_t {
  RunBegin,           // a=resumable flag
  RunEnd,             // a=RunExit, b=exit code / breakpoint index
  TrapEntry,          // a=trap, b=error code, c=faulting eip, d=fault addr
  TrapExit,           // a=return eip, b=return cpl
  MemFault,           // a=trap (#PF/#GP), b=error code, c=eip, d=fault addr
  TimerIrq,           // a=vector
  InjectTrigger,      // a=target instruction address
  InjectFlip,         // a=addr, b=byte<<8|bit, c=byte before, d=byte after
  SnapshotRestore,    // post-boot snapshot restore ("reboot")
  CheckpointRestore,  // a=rung cycle (low 32); cycle = rung cycle
  Reconverged,        // a=rung index, post-trigger state proven golden
  BlockInvalidate,    // a=paddr, b=blocks dropped from the trace cache
  CrashReport,        // a=cause code, b=fault addr, c=eip (the oops)
  ChunkRun,           // a=worker, b=order begin, c=order end
  ChunkSteal,         // a=thief, b=victim, c=order begin, d=order end
};

std::string_view event_name(EventKind kind);

struct Event {
  EventKind kind = EventKind::RunBegin;
  std::uint64_t cycle = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::uint32_t d = 0;
};

class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  void record(EventKind kind, std::uint64_t cycle, std::uint32_t a = 0,
              std::uint32_t b = 0, std::uint32_t c = 0, std::uint32_t d = 0);

  // Drops the ring contents (a new per-injection window) but keeps the
  // lifetime recorded/dropped totals.
  void clear();

  // Oldest-first copy of the current window.
  std::vector<Event> events() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;

  // Lifetime totals across every clear(): events recorded, and events
  // lost to ring overwrite.
  std::uint64_t total_recorded() const;
  std::uint64_t total_dropped() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Event> ring_;   // capacity_ slots once full
  std::size_t head_ = 0;      // next write position (when ring_ is full)
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

// Maps an instruction address to a human label ("kfs_read_inode+0x12
// (fs)"); empty result = print the bare hex address.  Supplied by the
// caller so the trace layer stays below the kernel-image layer.
using SymbolResolver = std::function<std::string(std::uint32_t addr)>;

// One JSON object per line, schema:
//   {"seq":N,"cycle":C,"event":"trap_entry","a":..,"b":..,"c":..,"d":..,
//    "sym":"function+0x12 (fs)"}       (sym only when a resolver hits)
std::string to_jsonl(const std::vector<Event>& events,
                     const SymbolResolver& resolve = nullptr);

// Writes to_jsonl() to `path`, checking every stream operation; on any
// failure the partial file is removed and false returned.
bool write_jsonl(const std::vector<Event>& events, const std::string& path,
                 const SymbolResolver& resolve = nullptr);

// Table 5-style forensics timeline: one line per event with the cycle,
// the delta since the injection trigger (once seen), and a rendered
// description.  `resolve` labels instruction addresses.
std::string render_timeline(const std::vector<Event>& events,
                            const SymbolResolver& resolve = nullptr);

}  // namespace kfi::trace
