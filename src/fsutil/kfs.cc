#include "fsutil/kfs.h"

#include <cstring>
#include <set>

#include "fsutil/kfs_format.h"
#include "support/strings.h"

namespace kfi::fsutil {
namespace {

using disk::DiskImage;

std::uint32_t sb_field(const DiskImage& image, std::uint32_t offset) {
  return image.read32(offset);
}

std::uint32_t inode_offset(std::uint32_t ino) {
  return kInodeTableBlock * kBlockSize + ino * kInodeSize;
}

// Corrupted superblocks can claim absurd geometry; every access must be
// bounded by the image itself, not by on-disk metadata.
bool inode_in_image(const DiskImage& image, std::uint32_t ino) {
  const std::uint64_t end =
      static_cast<std::uint64_t>(inode_offset(ino)) + kInodeSize;
  return end <= image.bytes().size();
}

bool block_in_image(const DiskImage& image, std::uint32_t block) {
  return block < image.block_count();
}

struct Inode {
  std::uint32_t mode = 0;
  std::uint32_t size = 0;
  std::uint32_t nlinks = 0;
  std::uint32_t blocks[kDirectBlocks] = {};
};

Inode read_inode(const DiskImage& image, std::uint32_t ino) {
  Inode node;
  if (!inode_in_image(image, ino)) return node;  // reads as a free inode
  const std::uint32_t at = inode_offset(ino);
  node.mode = image.read32(at + kInodeMode);
  node.size = image.read32(at + kInodeSizeOff);
  node.nlinks = image.read32(at + kInodeNlinks);
  for (std::uint32_t i = 0; i < kDirectBlocks; ++i) {
    node.blocks[i] = image.read32(at + kInodeBlock0 + 4 * i);
  }
  return node;
}

void write_inode(DiskImage& image, std::uint32_t ino, const Inode& node) {
  if (!inode_in_image(image, ino)) return;
  const std::uint32_t at = inode_offset(ino);
  image.write32(at + kInodeMode, node.mode);
  image.write32(at + kInodeSizeOff, node.size);
  image.write32(at + kInodeNlinks, node.nlinks);
  for (std::uint32_t i = 0; i < kDirectBlocks; ++i) {
    image.write32(at + kInodeBlock0 + 4 * i, node.blocks[i]);
  }
}

bool bitmap_get(const DiskImage& image, std::uint32_t block) {
  const std::uint8_t byte =
      image.bytes()[kBitmapBlock * kBlockSize + block / 8];
  return (byte >> (block % 8)) & 1;
}

void bitmap_set(DiskImage& image, std::uint32_t block, bool used) {
  std::uint8_t& byte = image.bytes()[kBitmapBlock * kBlockSize + block / 8];
  if (used) {
    byte = static_cast<std::uint8_t>(byte | (1u << (block % 8)));
  } else {
    byte = static_cast<std::uint8_t>(byte & ~(1u << (block % 8)));
  }
}

std::uint32_t alloc_block(DiskImage& image) {
  const std::uint32_t data_start = sb_field(image, kSbDataStart);
  const std::uint32_t nblocks = sb_field(image, kSbBlocks);
  for (std::uint32_t b = data_start; b < nblocks; ++b) {
    if (!bitmap_get(image, b)) {
      bitmap_set(image, b, true);
      std::memset(image.block(b), 0, kBlockSize);
      return b;
    }
  }
  return 0;
}

std::uint32_t alloc_inode(DiskImage& image) {
  const std::uint32_t ninodes = sb_field(image, kSbInodes);
  for (std::uint32_t i = 1; i < ninodes; ++i) {
    if (read_inode(image, i).mode == kModeFree) return i;
  }
  return 0;
}

// Finds `name` in directory `dir_ino`; 0 if absent.
std::uint32_t dir_lookup(const DiskImage& image, std::uint32_t dir_ino,
                         std::string_view name) {
  const Inode dir = read_inode(image, dir_ino);
  if (dir.mode != kModeDir) return 0;
  for (std::uint32_t i = 0; i < kDirectBlocks; ++i) {
    const std::uint32_t block = dir.blocks[i];
    if (block == 0 || !block_in_image(image, block)) continue;
    const std::uint8_t* data = image.block(block);
    for (std::uint32_t e = 0; e < kBlockSize / kDirentSize; ++e) {
      const std::uint8_t* entry = data + e * kDirentSize;
      std::uint32_t ino = 0;
      std::memcpy(&ino, entry, 4);
      if (ino == 0) continue;
      const char* entry_name = reinterpret_cast<const char*>(entry + 4);
      const std::size_t len = strnlen(entry_name, kNameLen);
      if (std::string_view(entry_name, len) == name) return ino;
    }
  }
  return 0;
}

bool dir_insert(DiskImage& image, std::uint32_t dir_ino,
                std::string_view name, std::uint32_t ino) {
  if (name.empty() || name.size() >= kNameLen) return false;
  Inode dir = read_inode(image, dir_ino);
  if (dir.mode != kModeDir) return false;
  for (std::uint32_t i = 0; i < kDirectBlocks; ++i) {
    if (dir.blocks[i] == 0) {
      const std::uint32_t block = alloc_block(image);
      if (block == 0) return false;
      dir.blocks[i] = block;
      dir.size = (i + 1) * kBlockSize;
      write_inode(image, dir_ino, dir);
    }
    std::uint8_t* data = image.block(dir.blocks[i]);
    for (std::uint32_t e = 0; e < kBlockSize / kDirentSize; ++e) {
      std::uint8_t* entry = data + e * kDirentSize;
      std::uint32_t existing = 0;
      std::memcpy(&existing, entry, 4);
      if (existing != 0) continue;
      std::memcpy(entry, &ino, 4);
      std::memset(entry + 4, 0, kNameLen);
      std::memcpy(entry + 4, name.data(), name.size());
      return true;
    }
  }
  return false;
}

// Resolves the parent directory of `path` (creating nothing).  On
// success, `leaf` receives the final component.
std::uint32_t resolve_parent(const DiskImage& image, std::string_view path,
                             std::string& leaf) {
  if (path.empty() || path[0] != '/') return 0;
  std::vector<std::string> parts;
  for (const std::string& part : split(path.substr(1), '/')) {
    if (!part.empty()) parts.push_back(part);
  }
  if (parts.empty()) return 0;
  std::uint32_t dir = sb_field(image, kSbRootIno);
  if (!inode_in_image(image, dir)) return 0;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    dir = dir_lookup(image, dir, parts[i]);
    if (dir == 0) return 0;
  }
  leaf = parts.back();
  return dir;
}

}  // namespace

void mkfs(disk::DiskImage& image) {
  std::memset(image.bytes().data(), 0, image.bytes().size());
  const std::uint32_t nblocks = image.block_count();

  image.write32(kSbMagic, kKfsMagic);
  image.write32(kSbBlocks, nblocks);
  image.write32(kSbInodes, kDefaultInodes);
  image.write32(kSbInodeBlocks, kDefaultInodeBlocks);
  image.write32(kSbDataStart, kDefaultDataStart);
  image.write32(kSbRootIno, kRootIno);

  // Metadata blocks are permanently "used".
  for (std::uint32_t b = 0; b < kDefaultDataStart; ++b) {
    bitmap_set(image, b, true);
  }

  Inode root;
  root.mode = kModeDir;
  root.size = 0;
  root.nlinks = 1;
  write_inode(image, kRootIno, root);
}

std::uint32_t add_dir(disk::DiskImage& image, std::string_view path) {
  if (path == "/") return sb_field(image, kSbRootIno);
  std::string leaf;
  // Create parents recursively.
  const std::size_t slash = path.rfind('/');
  if (slash != std::string_view::npos && slash > 0) {
    if (add_dir(image, path.substr(0, slash)) == 0) return 0;
  }
  const std::uint32_t parent = resolve_parent(image, path, leaf);
  if (parent == 0) return 0;
  if (const std::uint32_t existing = dir_lookup(image, parent, leaf)) {
    return existing;
  }
  const std::uint32_t ino = alloc_inode(image);
  if (ino == 0) return 0;
  Inode node;
  node.mode = kModeDir;
  node.nlinks = 1;
  write_inode(image, ino, node);
  if (!dir_insert(image, parent, leaf, ino)) return 0;
  return ino;
}

std::uint32_t add_file(disk::DiskImage& image, std::string_view path,
                       std::string_view contents) {
  if (contents.size() > kMaxFileSize) return 0;
  std::string leaf;
  const std::uint32_t parent = resolve_parent(image, path, leaf);
  if (parent == 0) return 0;
  if (dir_lookup(image, parent, leaf) != 0) return 0;  // exists
  const std::uint32_t ino = alloc_inode(image);
  if (ino == 0) return 0;

  Inode node;
  node.mode = kModeFile;
  node.size = static_cast<std::uint32_t>(contents.size());
  node.nlinks = 1;
  std::size_t written = 0;
  for (std::uint32_t i = 0; i < kDirectBlocks && written < contents.size();
       ++i) {
    const std::uint32_t block = alloc_block(image);
    if (block == 0) return 0;
    node.blocks[i] = block;
    const std::size_t chunk =
        std::min<std::size_t>(kBlockSize, contents.size() - written);
    std::memcpy(image.block(block), contents.data() + written, chunk);
    written += chunk;
  }
  write_inode(image, ino, node);
  if (!dir_insert(image, parent, leaf, ino)) return 0;
  return ino;
}

std::uint32_t lookup(const disk::DiskImage& image, std::string_view path) {
  if (path == "/") return sb_field(image, kSbRootIno);
  std::string leaf;
  const std::uint32_t parent = resolve_parent(image, path, leaf);
  if (parent == 0) return 0;
  return dir_lookup(image, parent, leaf);
}

std::optional<std::vector<std::uint8_t>> read_file(
    const disk::DiskImage& image, std::string_view path) {
  const std::uint32_t ino = lookup(image, path);
  if (ino == 0 || ino >= sb_field(image, kSbInodes) ||
      !inode_in_image(image, ino)) {
    return std::nullopt;
  }
  const Inode node = read_inode(image, ino);
  if (node.mode != kModeFile) return std::nullopt;
  if (node.size > kMaxFileSize) return std::nullopt;

  std::vector<std::uint8_t> out;
  out.reserve(node.size);
  std::uint32_t remaining = node.size;
  for (std::uint32_t i = 0; i < kDirectBlocks && remaining > 0; ++i) {
    const std::uint32_t block = node.blocks[i];
    if (block == 0 || !block_in_image(image, block)) return std::nullopt;
    const std::uint32_t chunk = std::min(kBlockSize, remaining);
    const std::uint8_t* data = image.block(block);
    out.insert(out.end(), data, data + chunk);
    remaining -= chunk;
  }
  return out;
}

FsckReport fsck(const disk::DiskImage& image) {
  FsckReport report;
  auto issue = [&report](FsckVerdict severity, const std::string& text) {
    report.issues.push_back(text);
    if (static_cast<int>(severity) > static_cast<int>(report.verdict)) {
      report.verdict = severity;
    }
  };

  // Superblock sanity.
  if (image.read32(kSbMagic) != kKfsMagic) {
    issue(FsckVerdict::Unrepairable, "bad superblock magic");
    return report;
  }
  const std::uint32_t nblocks = image.read32(kSbBlocks);
  const std::uint32_t ninodes = image.read32(kSbInodes);
  const std::uint32_t data_start = image.read32(kSbDataStart);
  const std::uint32_t inode_capacity =
      (image.block_count() > kInodeTableBlock
           ? (image.block_count() - kInodeTableBlock) * kInodesPerBlock
           : 0);
  if (nblocks != image.block_count() || ninodes == 0 ||
      ninodes > kDefaultInodes * 4 || ninodes > inode_capacity ||
      data_start >= nblocks) {
    issue(FsckVerdict::Unrepairable, "superblock geometry corrupt");
    return report;
  }
  const std::uint32_t root = image.read32(kSbRootIno);
  if (root == 0 || root >= ninodes || !inode_in_image(image, root) ||
      read_inode(image, root).mode != kModeDir) {
    issue(FsckVerdict::Unrepairable, "root inode destroyed");
    return report;
  }

  // Walk the tree, collecting referenced blocks and inodes.
  std::set<std::uint32_t> seen_inodes;
  std::set<std::uint32_t> used_blocks;
  std::vector<std::uint32_t> stack{root};
  seen_inodes.insert(root);
  int guard = 0;
  while (!stack.empty()) {
    if (++guard > 100000) {
      issue(FsckVerdict::Unrepairable, "directory graph does not terminate");
      return report;
    }
    const std::uint32_t ino = stack.back();
    stack.pop_back();
    const Inode node = read_inode(image, ino);

    if (node.size > kMaxFileSize) {
      issue(FsckVerdict::Repairable,
            format("inode %u size %u exceeds maximum", ino, node.size));
    }
    const std::uint32_t covered =
        std::min<std::uint32_t>(node.size, kMaxFileSize);
    const std::uint32_t needed = (covered + kBlockSize - 1) / kBlockSize;
    for (std::uint32_t i = 0; i < kDirectBlocks; ++i) {
      const std::uint32_t block = node.blocks[i];
      if (block == 0) {
        if (i < needed) {
          issue(FsckVerdict::Repairable,
                format("inode %u: missing block %u for its size", ino, i));
        }
        continue;
      }
      if (block < data_start || block >= nblocks) {
        issue(FsckVerdict::Repairable,
              format("inode %u: block pointer %u out of range", ino, block));
        continue;
      }
      if (!used_blocks.insert(block).second) {
        issue(FsckVerdict::Repairable,
              format("block %u cross-linked", block));
      }
      if (!bitmap_get(image, block)) {
        issue(FsckVerdict::Repairable,
              format("block %u in use but marked free", block));
      }
    }

    if (node.mode != kModeDir) continue;
    for (std::uint32_t i = 0; i < kDirectBlocks; ++i) {
      const std::uint32_t block = node.blocks[i];
      if (block == 0 || block < data_start ||
          !block_in_image(image, block)) {
        continue;
      }
      const std::uint8_t* data = image.block(block);
      for (std::uint32_t e = 0; e < kBlockSize / kDirentSize; ++e) {
        std::uint32_t child = 0;
        std::memcpy(&child, data + e * kDirentSize, 4);
        if (child == 0) continue;
        if (child >= ninodes) {
          issue(FsckVerdict::Repairable,
                format("dirent points at invalid inode %u", child));
          continue;
        }
        const Inode child_node = read_inode(image, child);
        if (child_node.mode == kModeFree) {
          issue(FsckVerdict::Repairable,
                format("dirent points at free inode %u", child));
          continue;
        }
        if (child_node.mode != kModeFile && child_node.mode != kModeDir) {
          issue(FsckVerdict::Repairable,
                format("inode %u has invalid mode %u", child,
                       child_node.mode));
          continue;
        }
        if (!seen_inodes.insert(child).second) {
          if (child_node.mode == kModeDir) {
            issue(FsckVerdict::Unrepairable,
                  format("directory inode %u linked twice (cycle risk)",
                         child));
            return report;
          }
          continue;
        }
        stack.push_back(child);
      }
    }
  }

  // Bitmap leak check: blocks marked used but not referenced.
  for (std::uint32_t b = data_start; b < nblocks; ++b) {
    if (bitmap_get(image, b) && used_blocks.count(b) == 0) {
      issue(FsckVerdict::Repairable, format("block %u leaked", b));
    }
  }

  return report;
}

std::size_t fsck_repair(disk::DiskImage& image) {
  if (fsck(image).verdict == FsckVerdict::Unrepairable) return 0;

  std::size_t repairs = 0;
  const std::uint32_t nblocks = image.read32(kSbBlocks);
  const std::uint32_t ninodes = image.read32(kSbInodes);
  const std::uint32_t data_start = image.read32(kSbDataStart);
  const std::uint32_t root = image.read32(kSbRootIno);

  // Pass 1: walk the tree, clamping inode damage and dropping dangling
  // directory entries; collect each block's first owner.
  std::set<std::uint32_t> owned;
  std::set<std::uint32_t> seen;
  std::vector<std::uint32_t> stack{root};
  seen.insert(root);
  while (!stack.empty()) {
    const std::uint32_t ino = stack.back();
    stack.pop_back();
    Inode node = read_inode(image, ino);
    bool dirty = false;

    for (std::uint32_t i = 0; i < kDirectBlocks; ++i) {
      const std::uint32_t block = node.blocks[i];
      if (block == 0) continue;
      const bool bad_range =
          block < data_start || !block_in_image(image, block);
      const bool cross_linked = !bad_range && owned.count(block) != 0;
      if (bad_range || cross_linked) {
        node.blocks[i] = 0;
        dirty = true;
        ++repairs;
        continue;
      }
      owned.insert(block);
    }
    // Clamp the size to what the surviving block prefix can back.
    std::uint32_t backed = 0;
    while (backed < kDirectBlocks && node.blocks[backed] != 0) ++backed;
    const std::uint32_t max_size = backed * kBlockSize;
    if (node.size > max_size) {
      node.size = max_size;
      dirty = true;
      ++repairs;
    }
    if (dirty) write_inode(image, ino, node);

    if (node.mode != kModeDir) continue;
    for (std::uint32_t i = 0; i < kDirectBlocks; ++i) {
      const std::uint32_t block = node.blocks[i];
      if (block == 0 || !block_in_image(image, block)) continue;
      std::uint8_t* data = image.block(block);
      for (std::uint32_t e = 0; e < kBlockSize / kDirentSize; ++e) {
        std::uint32_t child = 0;
        std::memcpy(&child, data + e * kDirentSize, 4);
        if (child == 0) continue;
        const bool bad_ino = child >= ninodes || !inode_in_image(image, child);
        const Inode child_node =
            bad_ino ? Inode{} : read_inode(image, child);
        const bool bad_mode = child_node.mode != kModeFile &&
                              child_node.mode != kModeDir;
        const bool duplicate_dir = child_node.mode == kModeDir &&
                                   seen.count(child) != 0;
        if (bad_ino || bad_mode || duplicate_dir) {
          std::memset(data + e * kDirentSize, 0, kDirentSize);
          ++repairs;
          continue;
        }
        if (seen.insert(child).second) stack.push_back(child);
      }
    }
  }

  // Pass 2: rebuild the allocation bitmap from the reachable set
  // (fixes both leaked and wrongly-free blocks in one sweep).
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    const bool should_be_used = b < data_start || owned.count(b) != 0;
    if (bitmap_get(image, b) != should_be_used) {
      bitmap_set(image, b, should_be_used);
      ++repairs;
    }
  }
  return repairs;
}

std::uint64_t tree_digest(const disk::DiskImage& image) {
  // FNV-1a over a deterministic tree walk.  A broken filesystem hashes
  // to a sentinel so it never collides with a healthy digest.
  std::uint64_t hash = 1469598103934665603ULL;
  auto mix_byte = [&hash](std::uint8_t byte) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  };
  auto mix = [&](std::string_view text) {
    for (const char c : text) mix_byte(static_cast<std::uint8_t>(c));
  };

  if (image.read32(kSbMagic) != kKfsMagic) return 0;
  const std::uint32_t ninodes = image.read32(kSbInodes);
  const std::uint32_t root = image.read32(kSbRootIno);
  if (root == 0 || root >= ninodes || !inode_in_image(image, root)) return 0;

  // Recursive walk with an explicit stack of (ino, path).
  std::vector<std::pair<std::uint32_t, std::string>> stack{{root, "/"}};
  std::set<std::uint32_t> visited;
  while (!stack.empty()) {
    const auto [ino, path] = stack.back();
    stack.pop_back();
    if (!visited.insert(ino).second) return 0;
    if (!inode_in_image(image, ino)) return 0;
    const Inode node = read_inode(image, ino);
    mix(path);
    mix_byte(static_cast<std::uint8_t>(node.mode));
    if (node.mode == kModeFile) {
      if (node.size > kMaxFileSize) return 0;
      std::uint32_t remaining = node.size;
      for (std::uint32_t i = 0; i < kDirectBlocks && remaining > 0; ++i) {
        const std::uint32_t block = node.blocks[i];
        if (block == 0 || !block_in_image(image, block)) return 0;
        const std::uint32_t chunk = std::min(kBlockSize, remaining);
        const std::uint8_t* data = image.block(block);
        for (std::uint32_t k = 0; k < chunk; ++k) mix_byte(data[k]);
        remaining -= chunk;
      }
    } else if (node.mode == kModeDir) {
      for (std::uint32_t i = 0; i < kDirectBlocks; ++i) {
        const std::uint32_t block = node.blocks[i];
        if (block == 0 || !block_in_image(image, block)) continue;
        const std::uint8_t* data = image.block(block);
        for (std::uint32_t e = 0; e < kBlockSize / kDirentSize; ++e) {
          std::uint32_t child = 0;
          std::memcpy(&child, data + e * kDirentSize, 4);
          if (child == 0 || child >= ninodes ||
              !inode_in_image(image, child)) {
            continue;
          }
          const char* name =
              reinterpret_cast<const char*>(data + e * kDirentSize + 4);
          const std::size_t len = strnlen(name, kNameLen);
          stack.emplace_back(child,
                             path + std::string(name, len) + "/");
        }
      }
    }
  }
  return hash;
}

}  // namespace kfi::fsutil
