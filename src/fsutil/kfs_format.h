// kfs — the ext2-like on-disk format shared by the simulated kernel's fs
// code and the host-side mkfs/fsck tools.
//
// Layout (1 KiB blocks):
//   block 0                superblock
//   block 1                block allocation bitmap (1 bit per block)
//   blocks 2..2+IB-1       inode table (16 inodes per block)
//   blocks data_start..    file/directory data
//
// Inode (64 bytes): mode, size, nlinks, 10 direct block pointers.
// Directory entries (32 bytes): inode number + 28-byte name.
//
// The kernel manipulates these structures with simulated instructions,
// so an injected error can corrupt any of them — which is exactly how
// the paper's nine "most severe" crashes damaged ext2.
#pragma once

#include <cstdint>

namespace kfi::fsutil {

inline constexpr std::uint32_t kKfsMagic = 0x6B667331;  // "kfs1"
inline constexpr std::uint32_t kBlockSize = 1024;
inline constexpr std::uint32_t kInodeSize = 64;
inline constexpr std::uint32_t kInodesPerBlock = kBlockSize / kInodeSize;
inline constexpr std::uint32_t kDirectBlocks = 10;
inline constexpr std::uint32_t kMaxFileSize = kDirectBlocks * kBlockSize;
inline constexpr std::uint32_t kDirentSize = 32;
inline constexpr std::uint32_t kNameLen = 28;

inline constexpr std::uint32_t kBitmapBlock = 1;
inline constexpr std::uint32_t kInodeTableBlock = 2;

// Inode modes.
inline constexpr std::uint32_t kModeFree = 0;
inline constexpr std::uint32_t kModeFile = 1;
inline constexpr std::uint32_t kModeDir = 2;

inline constexpr std::uint32_t kRootIno = 1;

// Superblock field offsets (bytes within block 0).
inline constexpr std::uint32_t kSbMagic = 0;
inline constexpr std::uint32_t kSbBlocks = 4;
inline constexpr std::uint32_t kSbInodes = 8;
inline constexpr std::uint32_t kSbInodeBlocks = 12;
inline constexpr std::uint32_t kSbDataStart = 16;
inline constexpr std::uint32_t kSbRootIno = 20;

// Inode field offsets (bytes within the 64-byte inode).
inline constexpr std::uint32_t kInodeMode = 0;
inline constexpr std::uint32_t kInodeSizeOff = 4;
inline constexpr std::uint32_t kInodeNlinks = 8;
inline constexpr std::uint32_t kInodeBlock0 = 12;  // 10 words

// Default geometry used by the machine's root disk.
inline constexpr std::uint32_t kDefaultBlocks = 4096;   // 4 MiB
inline constexpr std::uint32_t kDefaultInodes = 256;
inline constexpr std::uint32_t kDefaultInodeBlocks =
    kDefaultInodes / kInodesPerBlock;
inline constexpr std::uint32_t kDefaultDataStart =
    kInodeTableBlock + kDefaultInodeBlocks;

}  // namespace kfi::fsutil
