// Host-side kfs tools: mkfs, tree building, reading, fsck, digesting.
//
// These play the role of the user-space e2fsprogs in the paper's setup:
// mkfs prepares the root disk before "power-on", fsck classifies damage
// after a crash (the crash-severity taxonomy of §7.1), and the digest
// feeds fail-silence-violation detection (silent on-disk corruption).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "disk/disk.h"

namespace kfi::fsutil {

// Formats `image` with an empty kfs (root directory only).
void mkfs(disk::DiskImage& image);

// Creates a directory, creating parents as needed.  Returns the inode
// number, or 0 on failure (no space / bad path).
std::uint32_t add_dir(disk::DiskImage& image, std::string_view path);

// Creates a file with the given contents.  Returns inode or 0.
std::uint32_t add_file(disk::DiskImage& image, std::string_view path,
                       std::string_view contents);

// Reads a file's contents; nullopt when the path cannot be resolved or
// the metadata is too damaged to follow.
std::optional<std::vector<std::uint8_t>> read_file(
    const disk::DiskImage& image, std::string_view path);

// Looks up a path; returns the inode number or 0.
std::uint32_t lookup(const disk::DiskImage& image, std::string_view path);

// ---- fsck ----

enum class FsckVerdict : std::uint8_t {
  Clean,         // no inconsistency: normal automatic reboot
  Repairable,    // inconsistencies a manual fsck run could fix: "severe"
  Unrepairable,  // superblock/root destroyed: reformat, "most severe"
};

struct FsckReport {
  FsckVerdict verdict = FsckVerdict::Clean;
  std::vector<std::string> issues;
};

FsckReport fsck(const disk::DiskImage& image);

// The interactive-fsck repair pass the "severe" recovery implies:
// fixes every Repairable inconsistency in place (clamps oversized
// inodes, clears out-of-range and cross-linked block pointers, removes
// dangling directory entries, rebuilds the allocation bitmap from the
// reachable tree).  Returns the number of repairs applied.  After a
// successful repair, fsck() reports Clean; Unrepairable images are
// left untouched (reformat is the only option, as in §7.1).
std::size_t fsck_repair(disk::DiskImage& image);

// Hash of the complete file tree (paths, sizes, contents).  Two images
// with the same digest hold the same logical file system state.
std::uint64_t tree_digest(const disk::DiskImage& image);

}  // namespace kfi::fsutil
