#include "kasm/assembler.h"

#include <cctype>
#include <cstdlib>
#include <optional>

#include "isa/encode.h"
#include "isa/instruction.h"
#include "support/strings.h"

namespace kfi::kasm {

using isa::Cond;
using isa::Instruction;
using isa::MemRef;
using isa::Op;
using isa::Operand;
using isa::OperandKind;
using isa::Reg;

namespace {

// Placeholder values for relocated fields.  They do not fit in 8 bits,
// so the encoder always chooses the wide (32-bit) form, which the
// linker then patches.  Reserved: guest code must not use them as
// literal constants (the compiler never emits them).
constexpr std::int32_t kImmMagic = 0x7A7B7C7D;
constexpr std::int32_t kDispMagic = 0x7A7B7C7E;

struct Item {
  enum class Kind : std::uint8_t {
    Label,
    Instr,
    Word,
    Byte,
    Space,
    Ascii,
    FuncStart,
    FuncEnd,
  };
  Kind kind = Kind::Instr;
  int line = 0;
  std::string name;      // label / func name / reloc symbol for Word
  Instruction instr;
  std::string target;      // branch target label
  bool target_external = false;
  bool forced_long = false;  // sticky relaxation state
  std::string imm_symbol;    // reloc landing in the immediate field
  std::string disp_symbol;   // reloc landing in the displacement field
  std::uint32_t value = 0;   // Word/Byte value, Space length
  std::string text;          // Ascii payload
  std::uint32_t offset = 0;
  std::uint32_t size = 0;
};

struct Parser {
  std::vector<Item> items;
  std::vector<std::string> errors;
  int line = 0;

  void error(const std::string& message) {
    errors.push_back("line " + std::to_string(line) + ": " + message);
  }

  static std::optional<Reg> parse_reg32(std::string_view t) {
    static constexpr std::string_view names[] = {"eax", "ecx", "edx", "ebx",
                                                 "esp", "ebp", "esi", "edi"};
    for (int i = 0; i < 8; ++i) {
      if (t == names[i]) return static_cast<Reg>(i);
    }
    return std::nullopt;
  }

  static std::optional<Reg> parse_reg8(std::string_view t) {
    static constexpr std::string_view names[] = {"al",  "cl",  "dl",  "bl",
                                                 "spl", "bpl", "sil", "dil"};
    for (int i = 0; i < 8; ++i) {
      if (t == names[i]) return static_cast<Reg>(i);
    }
    return std::nullopt;
  }

  static bool parse_number(std::string_view t, std::int64_t& out) {
    if (t.empty()) return false;
    const std::string s(t);
    char* end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 0);
    if (end == nullptr || *end != '\0') return false;
    out = v;
    return true;
  }

  static bool is_identifier(std::string_view t) {
    if (t.empty()) return false;
    if (!(std::isalpha(static_cast<unsigned char>(t[0])) || t[0] == '_')) {
      return false;
    }
    for (const char c : t) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
        return false;
      }
    }
    return true;
  }

  struct ParsedOperand {
    enum class Kind : std::uint8_t {
      Reg,
      Reg8,
      Imm,        // $n
      ImmSym,     // $symbol
      Mem,        // disp(%base) or (%base)
      AbsMem,     // 0xADDR or bare number as memory
      AbsMemSym,  // symbol as memory
      LabelRef,   // bare identifier in branch position
      StarReg,    // *%reg
      StarMem,    // *disp(%reg)
    };
    Kind kind = Kind::Imm;
    Reg reg = Reg::Eax;
    std::int32_t value = 0;
    MemRef mem;
    std::string symbol;
  };

  bool parse_operand(std::string_view t, ParsedOperand& out) {
    t = kfi::trim(t);
    if (t.empty()) {
      error("empty operand");
      return false;
    }
    if (t[0] == '%') {
      const auto rest = t.substr(1);
      if (const auto r32 = parse_reg32(rest)) {
        out.kind = ParsedOperand::Kind::Reg;
        out.reg = *r32;
        return true;
      }
      if (const auto r8 = parse_reg8(rest)) {
        out.kind = ParsedOperand::Kind::Reg8;
        out.reg = *r8;
        return true;
      }
      error("unknown register '" + std::string(t) + "'");
      return false;
    }
    if (t[0] == '$') {
      const auto rest = t.substr(1);
      std::int64_t v = 0;
      if (parse_number(rest, v)) {
        out.kind = ParsedOperand::Kind::Imm;
        out.value = static_cast<std::int32_t>(v);
        return true;
      }
      if (is_identifier(rest)) {
        out.kind = ParsedOperand::Kind::ImmSym;
        out.symbol = std::string(rest);
        return true;
      }
      error("bad immediate '" + std::string(t) + "'");
      return false;
    }
    if (t[0] == '*') {
      ParsedOperand inner;
      if (!parse_operand(t.substr(1), inner)) return false;
      if (inner.kind == ParsedOperand::Kind::Reg) {
        out.kind = ParsedOperand::Kind::StarReg;
        out.reg = inner.reg;
        return true;
      }
      if (inner.kind == ParsedOperand::Kind::Mem ||
          inner.kind == ParsedOperand::Kind::AbsMem ||
          inner.kind == ParsedOperand::Kind::AbsMemSym) {
        out = inner;
        out.kind = inner.kind == ParsedOperand::Kind::Mem
                       ? ParsedOperand::Kind::StarMem
                       : inner.kind;
        if (inner.kind != ParsedOperand::Kind::Mem) {
          out.kind = ParsedOperand::Kind::StarMem;
          out.mem = inner.mem;
          if (inner.kind == ParsedOperand::Kind::AbsMem) {
            out.mem.has_base = false;
            out.mem.disp = inner.value;
          }
          out.symbol = inner.symbol;
        }
        return true;
      }
      error("bad indirect operand '" + std::string(t) + "'");
      return false;
    }
    const std::size_t paren = t.find('(');
    if (paren != std::string_view::npos) {
      if (t.back() != ')') {
        error("unterminated memory operand '" + std::string(t) + "'");
        return false;
      }
      const auto disp_text = t.substr(0, paren);
      const auto base_text = t.substr(paren + 1, t.size() - paren - 2);
      std::int64_t disp = 0;
      if (!disp_text.empty() && !parse_number(disp_text, disp)) {
        error("bad displacement '" + std::string(disp_text) + "'");
        return false;
      }
      if (base_text.empty() || base_text[0] != '%') {
        error("bad base register in '" + std::string(t) + "'");
        return false;
      }
      const auto base = parse_reg32(base_text.substr(1));
      if (!base) {
        error("bad base register '" + std::string(base_text) + "'");
        return false;
      }
      out.kind = ParsedOperand::Kind::Mem;
      out.mem.has_base = true;
      out.mem.base = *base;
      out.mem.disp = static_cast<std::int32_t>(disp);
      return true;
    }
    std::int64_t v = 0;
    if (parse_number(t, v)) {
      out.kind = ParsedOperand::Kind::AbsMem;
      out.value = static_cast<std::int32_t>(v);
      return true;
    }
    if (is_identifier(t)) {
      out.kind = ParsedOperand::Kind::AbsMemSym;  // or LabelRef in branches
      out.symbol = std::string(t);
      return true;
    }
    error("unparseable operand '" + std::string(t) + "'");
    return false;
  }

  // Converts a parsed operand to an isa::Operand for a given width.
  // Returns false (with error) on invalid combination.  Fills the item's
  // reloc slots for symbolic values.
  bool to_operand(const ParsedOperand& p, bool byte_width, Item& item,
                  Operand& out) {
    switch (p.kind) {
      case ParsedOperand::Kind::Reg:
        if (byte_width) {
          error("expected byte register");
          return false;
        }
        out = Operand::make_reg(p.reg);
        return true;
      case ParsedOperand::Kind::Reg8:
        if (!byte_width) {
          error("byte register in 32-bit context");
          return false;
        }
        out = Operand::make_reg8(p.reg);
        return true;
      case ParsedOperand::Kind::Imm:
        out = Operand::make_imm(p.value);
        return true;
      case ParsedOperand::Kind::ImmSym:
        out = Operand::make_imm(kImmMagic);
        item.imm_symbol = p.symbol;
        return true;
      case ParsedOperand::Kind::Mem:
        out = Operand::make_mem(p.mem, byte_width);
        return true;
      case ParsedOperand::Kind::AbsMem: {
        MemRef m;
        m.has_base = false;
        m.disp = p.value;
        out = Operand::make_mem(m, byte_width);
        return true;
      }
      case ParsedOperand::Kind::AbsMemSym: {
        MemRef m;
        m.has_base = false;
        m.disp = kDispMagic;
        out = Operand::make_mem(m, byte_width);
        item.disp_symbol = p.symbol;
        return true;
      }
      default:
        error("operand kind not allowed here");
        return false;
    }
  }

  static std::optional<Cond> parse_cond(std::string_view suffix) {
    static const std::pair<std::string_view, Cond> table[] = {
        {"o", Cond::O},   {"no", Cond::No}, {"b", Cond::B},
        {"ae", Cond::Ae}, {"e", Cond::E},   {"z", Cond::E},
        {"ne", Cond::Ne}, {"nz", Cond::Ne}, {"be", Cond::Be},
        {"a", Cond::A},   {"s", Cond::S},   {"ns", Cond::Ns},
        {"p", Cond::P},   {"np", Cond::Np}, {"l", Cond::L},
        {"ge", Cond::Ge}, {"le", Cond::Le}, {"g", Cond::G},
        {"c", Cond::B},   {"nc", Cond::Ae},
    };
    for (const auto& [name, cond] : table) {
      if (suffix == name) return cond;
    }
    return std::nullopt;
  }

  void parse_line(std::string_view raw) {
    std::string_view text = raw;
    // .ascii needs its string intact; strip comments carefully.
    bool in_string = false;
    std::size_t cut = text.size();
    for (std::size_t i = 0; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '"') in_string = !in_string;
      if (!in_string &&
          (c == ';' ||
           (c == '/' && i + 1 < text.size() && text[i + 1] == '/'))) {
        cut = i;
        break;
      }
    }
    text = kfi::trim(text.substr(0, cut));
    if (text.empty()) return;

    // Leading label.
    while (true) {
      const std::size_t colon = text.find(':');
      if (colon == std::string_view::npos) break;
      const auto head = kfi::trim(text.substr(0, colon));
      if (!is_identifier(head)) break;
      Item label;
      label.kind = Item::Kind::Label;
      label.line = line;
      label.name = std::string(head);
      items.push_back(label);
      text = kfi::trim(text.substr(colon + 1));
      if (text.empty()) return;
    }

    // Mnemonic.
    std::size_t sp = text.find_first_of(" \t");
    const std::string mnem(text.substr(0, sp));
    std::string_view rest =
        sp == std::string_view::npos ? std::string_view{} : kfi::trim(text.substr(sp));

    Item item;
    item.kind = Item::Kind::Instr;
    item.line = line;

    if (mnem == ".func" || mnem == ".endfunc") {
      item.kind = mnem == ".func" ? Item::Kind::FuncStart : Item::Kind::FuncEnd;
      item.name = std::string(rest);
      if (item.kind == Item::Kind::FuncStart && !is_identifier(rest)) {
        error(".func requires a name");
        return;
      }
      items.push_back(item);
      return;
    }
    if (mnem == ".word") {
      item.kind = Item::Kind::Word;
      std::int64_t v = 0;
      if (parse_number(rest, v)) {
        item.value = static_cast<std::uint32_t>(v);
      } else if (is_identifier(rest)) {
        item.name = std::string(rest);
      } else {
        error(".word requires a number or symbol");
        return;
      }
      items.push_back(item);
      return;
    }
    if (mnem == ".byte") {
      item.kind = Item::Kind::Byte;
      std::int64_t v = 0;
      if (!parse_number(rest, v)) {
        error(".byte requires a number");
        return;
      }
      item.value = static_cast<std::uint32_t>(v) & 0xFF;
      items.push_back(item);
      return;
    }
    if (mnem == ".space") {
      item.kind = Item::Kind::Space;
      std::int64_t v = 0;
      if (!parse_number(rest, v) || v < 0) {
        error(".space requires a non-negative count");
        return;
      }
      item.value = static_cast<std::uint32_t>(v);
      items.push_back(item);
      return;
    }
    if (mnem == ".ascii") {
      item.kind = Item::Kind::Ascii;
      if (rest.size() < 2 || rest.front() != '"' || rest.back() != '"') {
        error(".ascii requires a quoted string");
        return;
      }
      const auto body = rest.substr(1, rest.size() - 2);
      for (std::size_t i = 0; i < body.size(); ++i) {
        char c = body[i];
        if (c == '\\' && i + 1 < body.size()) {
          ++i;
          switch (body[i]) {
            case 'n': c = '\n'; break;
            case '0': c = '\0'; break;
            case 't': c = '\t'; break;
            case '\\': c = '\\'; break;
            case '"': c = '"'; break;
            default: c = body[i]; break;
          }
        }
        item.text.push_back(c);
      }
      items.push_back(item);
      return;
    }

    // Split operands on top-level commas.
    std::vector<std::string> operand_text;
    if (!rest.empty()) {
      std::size_t start = 0;
      for (std::size_t i = 0; i <= rest.size(); ++i) {
        if (i == rest.size() || rest[i] == ',') {
          operand_text.emplace_back(kfi::trim(rest.substr(start, i - start)));
          start = i + 1;
        }
      }
    }

    if (!build_instruction(mnem, operand_text, item)) return;
    items.push_back(item);
  }

  bool build_instruction(const std::string& mnem,
                         const std::vector<std::string>& ops, Item& item) {
    Instruction& in = item.instr;

    auto need = [&](std::size_t n) {
      if (ops.size() != n) {
        error(mnem + " expects " + std::to_string(n) + " operand(s)");
        return false;
      }
      return true;
    };

    // --- zero-operand ---
    static const std::pair<std::string_view, Op> nullary[] = {
        {"ret", Op::Ret},   {"leave", Op::Leave}, {"nop", Op::Nop},
        {"cdq", Op::Cdq},   {"ud2", Op::Ud2},     {"ud2a", Op::Ud2},
        {"int3", Op::Int3}, {"iret", Op::Iret},   {"hlt", Op::Hlt},
        {"cli", Op::Cli},   {"sti", Op::Sti},     {"lret", Op::Lret},
    };
    for (const auto& [name, op] : nullary) {
      if (mnem == name) {
        if (!need(0)) return false;
        in.op = op;
        return true;
      }
    }

    // --- conditional branches / setcc ---
    if (mnem.size() >= 2 && mnem[0] == 'j' && mnem != "jmp") {
      const auto cond = parse_cond(std::string_view(mnem).substr(1));
      if (!cond) {
        error("unknown branch '" + mnem + "'");
        return false;
      }
      if (!need(1)) return false;
      if (!is_identifier(ops[0])) {
        error("branch target must be a label");
        return false;
      }
      in.op = Op::Jcc;
      in.cond = *cond;
      item.target = ops[0];
      return true;
    }
    if (kfi::starts_with(mnem, "set")) {
      const auto cond = parse_cond(std::string_view(mnem).substr(3));
      if (!cond) {
        error("unknown setcc '" + mnem + "'");
        return false;
      }
      if (!need(1)) return false;
      ParsedOperand p;
      if (!parse_operand(ops[0], p)) return false;
      in.op = Op::Setcc;
      in.cond = *cond;
      return to_operand(p, /*byte_width=*/true, item, in.dst);
    }

    if (mnem == "jmp" || mnem == "call") {
      if (!need(1)) return false;
      ParsedOperand p;
      if (!parse_operand(ops[0], p)) return false;
      if (p.kind == ParsedOperand::Kind::AbsMemSym) {
        in.op = mnem == "jmp" ? Op::Jmp : Op::Call;
        item.target = p.symbol;
        return true;
      }
      if (p.kind == ParsedOperand::Kind::StarReg) {
        in.op = mnem == "jmp" ? Op::JmpInd : Op::CallInd;
        in.src = Operand::make_reg(p.reg);
        return true;
      }
      if (p.kind == ParsedOperand::Kind::StarMem) {
        in.op = mnem == "jmp" ? Op::JmpInd : Op::CallInd;
        in.src = Operand::make_mem(p.mem);
        if (!p.symbol.empty()) {
          in.src.mem.disp = kDispMagic;
          item.disp_symbol = p.symbol;
        }
        return true;
      }
      error(mnem + " target must be a label or *indirect");
      return false;
    }

    if (mnem == "int") {
      if (!need(1)) return false;
      ParsedOperand p;
      if (!parse_operand(ops[0], p) || p.kind != ParsedOperand::Kind::Imm) {
        error("int requires $imm");
        return false;
      }
      in.op = Op::Int;
      in.imm8 = static_cast<std::uint8_t>(p.value);
      return true;
    }

    // --- single-operand r/m ---
    static const std::pair<std::string_view, Op> unary[] = {
        {"inc", Op::Inc},   {"dec", Op::Dec}, {"not", Op::Not},
        {"neg", Op::Neg},   {"mul", Op::Mul}, {"div", Op::Div},
        {"idiv", Op::Idiv}, {"pop", Op::Pop}, {"push", Op::Push},
    };
    for (const auto& [name, op] : unary) {
      if (mnem != name) continue;
      if (!need(1)) return false;
      ParsedOperand p;
      if (!parse_operand(ops[0], p)) return false;
      in.op = op;
      Operand operand;
      if (op == Op::Push) {
        if (p.kind == ParsedOperand::Kind::Imm ||
            p.kind == ParsedOperand::Kind::ImmSym) {
          if (!to_operand(p, false, item, in.src)) return false;
          return true;
        }
        if (p.kind == ParsedOperand::Kind::AbsMemSym ||
            p.kind == ParsedOperand::Kind::AbsMem ||
            p.kind == ParsedOperand::Kind::Mem ||
            p.kind == ParsedOperand::Kind::Reg) {
          return to_operand(p, false, item, in.src);
        }
        error("bad push operand");
        return false;
      }
      if (!to_operand(p, false, item, operand)) return false;
      if (op == Op::Mul || op == Op::Div || op == Op::Idiv) {
        in.src = operand;
      } else {
        in.dst = operand;
      }
      return true;
    }

    // --- two-operand ---
    const bool is_byte = mnem == "movb";
    static const std::pair<std::string_view, Op> binary[] = {
        {"mov", Op::Mov},   {"movb", Op::Mov},     {"movzbl", Op::Movzx8},
        {"add", Op::Add},   {"sub", Op::Sub},      {"and", Op::And},
        {"or", Op::Or},     {"xor", Op::Xor},      {"cmp", Op::Cmp},
        {"test", Op::Test}, {"lea", Op::Lea},      {"imul", Op::Imul},
        {"shl", Op::Shl},   {"shr", Op::Shr},      {"sar", Op::Sar},
    };
    for (const auto& [name, op] : binary) {
      if (mnem != name) continue;
      if (!need(2)) return false;
      ParsedOperand src_p;
      ParsedOperand dst_p;
      if (!parse_operand(ops[0], src_p)) return false;  // AT&T: src first
      if (!parse_operand(ops[1], dst_p)) return false;
      in.op = op;

      if (op == Op::Shl || op == Op::Shr || op == Op::Sar) {
        if (!to_operand(dst_p, false, item, in.dst)) return false;
        if (src_p.kind == ParsedOperand::Kind::Imm) {
          in.src = Operand::make_imm(src_p.value);
          return true;
        }
        if (src_p.kind == ParsedOperand::Kind::Reg8 &&
            src_p.reg == Reg::Ecx) {
          in.src = Operand::make_reg8(Reg::Ecx);
          return true;
        }
        error("shift count must be $imm or %cl");
        return false;
      }

      if (op == Op::Movzx8) {
        if (!to_operand(src_p, /*byte_width=*/true, item, in.src)) return false;
        return to_operand(dst_p, false, item, in.dst);
      }

      if (is_byte) {
        // movb: immediate source stays an Imm; memory/regs are byte-width.
        if (src_p.kind == ParsedOperand::Kind::Imm) {
          in.src = Operand::make_imm(src_p.value & 0xFF);
        } else if (!to_operand(src_p, /*byte_width=*/true, item, in.src)) {
          return false;
        }
        return to_operand(dst_p, /*byte_width=*/true, item, in.dst);
      }

      const bool src_is_imm = src_p.kind == ParsedOperand::Kind::Imm ||
                              src_p.kind == ParsedOperand::Kind::ImmSym;
      if (!src_is_imm && src_p.kind != ParsedOperand::Kind::Reg &&
          op != Op::Lea && dst_p.kind != ParsedOperand::Kind::Reg) {
        error("memory-to-memory forms do not exist");
        return false;
      }
      if (!to_operand(src_p, false, item, in.src)) return false;
      return to_operand(dst_p, false, item, in.dst);
    }

    error("unknown mnemonic '" + mnem + "'");
    return false;
  }
};

// Computes the encoded size of an item's instruction given the current
// relaxation state.  Branch rel values are placeholders; only size
// matters here.
std::size_t instr_size(const Item& item) {
  Instruction copy = item.instr;
  if (!item.target.empty()) {
    if (copy.op == Op::Call) {
      copy.rel = 0;
      return isa::encoded_length(copy, /*force_long_branch=*/true);
    }
    copy.rel = item.forced_long ? 0x1000 : 0;
    return isa::encoded_length(copy, item.forced_long);
  }
  return isa::encoded_length(copy);
}

}  // namespace

AsmResult assemble(std::string_view source, std::uint32_t base) {
  AsmResult result;
  result.unit.base = base;

  Parser parser;
  std::size_t start = 0;
  while (start <= source.size()) {
    std::size_t end = source.find('\n', start);
    if (end == std::string_view::npos) end = source.size();
    ++parser.line;
    parser.parse_line(source.substr(start, end - start));
    start = end + 1;
  }
  if (!parser.errors.empty()) {
    result.errors = std::move(parser.errors);
    return result;
  }

  std::vector<Item>& items = parser.items;

  // Collect local label names.
  std::map<std::string, std::uint32_t> local_offsets;
  for (const Item& item : items) {
    if (item.kind == Item::Kind::Label) local_offsets[item.name] = 0;
  }
  for (Item& item : items) {
    if (item.kind == Item::Kind::Instr && !item.target.empty()) {
      item.target_external = local_offsets.find(item.target) == local_offsets.end();
      if (item.target_external && item.instr.op == Op::Jcc) {
        result.errors.push_back("line " + std::to_string(item.line) +
                                ": conditional branch to external symbol '" +
                                item.target + "'");
      }
      if (item.target_external && item.instr.op != Op::Call &&
          item.instr.op != Op::Jmp) {
        result.errors.push_back("line " + std::to_string(item.line) +
                                ": unresolved branch target '" + item.target +
                                "'");
      }
    }
  }
  if (!result.errors.empty()) return result;

  // Relaxation fixpoint: sizes only grow, so this terminates.
  for (int round = 0; round < 64; ++round) {
    std::uint32_t off = 0;
    for (Item& item : items) {
      item.offset = off;
      switch (item.kind) {
        case Item::Kind::Label:
          local_offsets[item.name] = off;
          item.size = 0;
          break;
        case Item::Kind::FuncStart:
        case Item::Kind::FuncEnd:
          item.size = 0;
          break;
        case Item::Kind::Word: item.size = 4; break;
        case Item::Kind::Byte: item.size = 1; break;
        case Item::Kind::Space: item.size = item.value; break;
        case Item::Kind::Ascii:
          item.size = static_cast<std::uint32_t>(item.text.size());
          break;
        case Item::Kind::Instr:
          item.size = static_cast<std::uint32_t>(instr_size(item));
          break;
      }
      off += item.size;
    }

    bool grew = false;
    for (Item& item : items) {
      if (item.kind != Item::Kind::Instr || item.target.empty() ||
          item.forced_long || item.target_external) {
        continue;
      }
      if (item.instr.op == Op::Call) continue;  // always rel32
      const std::int64_t target = local_offsets[item.target];
      const std::int64_t rel =
          target - (static_cast<std::int64_t>(item.offset) + item.size);
      if (rel < -128 || rel > 127) {
        item.forced_long = true;
        grew = true;
      }
    }
    if (!grew) break;
  }

  // Emit.
  AsmUnit& unit = result.unit;
  std::string current_func;
  std::uint32_t func_start = 0;
  for (Item& item : items) {
    const std::uint32_t off = static_cast<std::uint32_t>(unit.bytes.size());
    switch (item.kind) {
      case Item::Kind::Label:
        if (unit.symbols.count(item.name) != 0) {
          result.errors.push_back("line " + std::to_string(item.line) +
                                  ": duplicate label '" + item.name + "'");
          return result;
        }
        unit.symbols[item.name] = base + off;
        break;
      case Item::Kind::FuncStart:
        current_func = item.name;
        func_start = off;
        break;
      case Item::Kind::FuncEnd:
        if (current_func.empty()) {
          result.errors.push_back("line " + std::to_string(item.line) +
                                  ": .endfunc without .func");
          return result;
        }
        unit.functions.push_back({current_func, func_start, off});
        current_func.clear();
        break;
      case Item::Kind::Word:
        if (!item.name.empty()) {
          unit.relocs.push_back({off, item.name, RelocKind::Abs32, 0});
          item.value = 0;
        }
        for (int i = 0; i < 4; ++i) {
          unit.bytes.push_back(
              static_cast<std::uint8_t>(item.value >> (8 * i)));
        }
        break;
      case Item::Kind::Byte:
        unit.bytes.push_back(static_cast<std::uint8_t>(item.value));
        break;
      case Item::Kind::Space:
        unit.bytes.insert(unit.bytes.end(), item.value, 0);
        break;
      case Item::Kind::Ascii:
        unit.bytes.insert(unit.bytes.end(), item.text.begin(),
                          item.text.end());
        break;
      case Item::Kind::Instr: {
        Instruction instr = item.instr;
        bool force_long = item.forced_long;
        if (!item.target.empty()) {
          if (item.target_external) {
            instr.rel = 0;
            force_long = true;
          } else {
            const std::int64_t target = local_offsets[item.target];
            instr.rel = static_cast<std::int32_t>(
                target - (static_cast<std::int64_t>(item.offset) + item.size));
            if (instr.op == Op::Call) force_long = true;
          }
        }
        std::vector<std::uint8_t> bytes;
        if (!isa::encode(instr, bytes, force_long)) {
          result.errors.push_back("line " + std::to_string(item.line) +
                                  ": unencodable instruction");
          return result;
        }
        if (bytes.size() != item.size) {
          result.errors.push_back("line " + std::to_string(item.line) +
                                  ": size mismatch (assembler bug)");
          return result;
        }
        // Locate relocated fields by their magic payloads.
        auto find_magic = [&](std::int32_t magic) -> std::size_t {
          const std::uint8_t pattern[4] = {
              static_cast<std::uint8_t>(magic),
              static_cast<std::uint8_t>(magic >> 8),
              static_cast<std::uint8_t>(magic >> 16),
              static_cast<std::uint8_t>(magic >> 24)};
          for (std::size_t i = 0; i + 4 <= bytes.size(); ++i) {
            if (bytes[i] == pattern[0] && bytes[i + 1] == pattern[1] &&
                bytes[i + 2] == pattern[2] && bytes[i + 3] == pattern[3]) {
              return i;
            }
          }
          return bytes.size();
        };
        if (!item.imm_symbol.empty()) {
          const std::size_t at = find_magic(kImmMagic);
          if (at == bytes.size()) {
            result.errors.push_back("line " + std::to_string(item.line) +
                                    ": cannot relocate immediate");
            return result;
          }
          for (int i = 0; i < 4; ++i) bytes[at + i] = 0;
          unit.relocs.push_back({off + static_cast<std::uint32_t>(at),
                                 item.imm_symbol, RelocKind::Abs32, 0});
        }
        if (!item.disp_symbol.empty()) {
          const std::size_t at = find_magic(kDispMagic);
          if (at == bytes.size()) {
            result.errors.push_back("line " + std::to_string(item.line) +
                                    ": cannot relocate displacement");
            return result;
          }
          for (int i = 0; i < 4; ++i) bytes[at + i] = 0;
          unit.relocs.push_back({off + static_cast<std::uint32_t>(at),
                                 item.disp_symbol, RelocKind::Abs32, 0});
        }
        if (item.target_external) {
          unit.relocs.push_back(
              {off + static_cast<std::uint32_t>(bytes.size()) - 4, item.target,
               RelocKind::Rel32, 0});
        }
        unit.bytes.insert(unit.bytes.end(), bytes.begin(), bytes.end());
        break;
      }
    }
  }
  if (!current_func.empty()) {
    result.errors.push_back("missing .endfunc for '" + current_func + "'");
    return result;
  }

  result.ok = result.errors.empty();
  return result;
}

LinkResult link(std::vector<AsmUnit>& units) {
  LinkResult result;
  for (const AsmUnit& unit : units) {
    for (const auto& [name, vaddr] : unit.symbols) {
      if (!result.symbols.emplace(name, vaddr).second) {
        result.errors.push_back("duplicate symbol '" + name + "'");
      }
    }
  }
  for (AsmUnit& unit : units) {
    for (const Reloc& reloc : unit.relocs) {
      const auto it = result.symbols.find(reloc.symbol);
      if (it == result.symbols.end()) {
        result.errors.push_back("undefined symbol '" + reloc.symbol + "'");
        continue;
      }
      std::uint32_t value = it->second + static_cast<std::uint32_t>(reloc.addend);
      if (reloc.kind == RelocKind::Rel32) {
        value -= unit.base + reloc.offset + 4;
      }
      for (int i = 0; i < 4; ++i) {
        unit.bytes[reloc.offset + i] =
            static_cast<std::uint8_t>(value >> (8 * i));
      }
    }
  }
  result.ok = result.errors.empty();
  return result;
}

}  // namespace kfi::kasm
