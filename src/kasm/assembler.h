// kasm — a two-pass assembler for KX86 with AT&T-flavoured syntax.
//
// The MiniC compiler emits kasm text; the kernel's trap-entry stubs are
// written in kasm directly.  Supported syntax:
//
//   label:                     ; symbol definition
//   .func name ... .endfunc    ; function extent (injection targeting)
//   .word <imm|symbol>         ; 32-bit data (e.g. the syscall table)
//   .byte <imm>
//   .space <n>                 ; n zero bytes
//   .ascii "text"              ; raw bytes, supports \n \0 \\ \"
//   mov $5, %eax               ; AT&T operand order (src, dst)
//   mov counter, %eax          ; absolute-address load (symbol or 0x...)
//   mov %eax, 8(%ebp)          ; based memory with displacement
//   movb/movzbl                ; byte forms
//   je label / jmp label       ; relaxed automatically (rel8 vs rel32)
//   call func / call *%eax
//   ; comment                  ; also "//"
//
// Branches to local labels are relaxed iteratively (short forms grow to
// long, never shrink, so the fixpoint terminates).  References to
// symbols not defined in the unit become relocations for the Linker.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace kfi::kasm {

enum class RelocKind : std::uint8_t {
  Abs32,  // 32-bit absolute address (imm or disp or .word)
  Rel32,  // call/jmp rel32: value = S - (P + 4)
};

struct Reloc {
  std::uint32_t offset = 0;  // byte offset of the 32-bit field in the unit
  std::string symbol;
  RelocKind kind = RelocKind::Abs32;
  std::int32_t addend = 0;
};

struct FuncRange {
  std::string name;
  std::uint32_t start = 0;  // offsets within the unit
  std::uint32_t end = 0;
};

struct AsmUnit {
  std::uint32_t base = 0;  // load virtual address
  std::vector<std::uint8_t> bytes;
  std::map<std::string, std::uint32_t> symbols;  // name -> vaddr
  std::vector<FuncRange> functions;
  std::vector<Reloc> relocs;
};

struct AsmResult {
  bool ok = false;
  AsmUnit unit;
  std::vector<std::string> errors;  // "line N: message"
};

AsmResult assemble(std::string_view source, std::uint32_t base);

// The Linker resolves cross-unit references: collects every unit's
// exported symbols, then patches relocations in place.  Duplicate or
// missing symbols are reported as errors.
struct LinkResult {
  bool ok = false;
  std::map<std::string, std::uint32_t> symbols;
  std::vector<std::string> errors;
};

LinkResult link(std::vector<AsmUnit>& units);

}  // namespace kfi::kasm
