// Disassembler — renders instructions in AT&T-flavoured syntax matching
// the listings the paper shows (e.g. "je c01144f4", "mov %ecx,%eax",
// "movzbl 0x1b(%edx),%eax").  Used by the injector's case-study reports
// (Tables 6 and 7) and by assembler listings.
#pragma once

#include <cstdint>
#include <string>

#include "isa/instruction.h"

namespace kfi::isa {

// Renders `instr` assuming it was decoded at virtual address `pc`
// (branch targets print resolved, as the paper's tables do).
std::string disassemble(const Instruction& instr, std::uint32_t pc);

// Convenience: decode + render one instruction from raw bytes.
// Returns "(bad)" for undecodable bytes.  `length_out` receives the
// decoded length (1 for invalid encodings).
std::string disassemble_bytes(const std::uint8_t* bytes, std::size_t avail,
                              std::uint32_t pc, std::size_t* length_out);

}  // namespace kfi::isa
