// Decoded instruction representation.
#pragma once

#include <cstdint>
#include <string_view>

#include "isa/isa.h"

namespace kfi::isa {

// Operation kinds after decoding.  One enumerator per semantic operation;
// the addressing mode lives in the operands.
enum class Op : std::uint8_t {
  Add,
  Or,
  And,
  Sub,
  Xor,
  Cmp,
  Test,
  Mov,
  Lea,
  Movzx8,   // movzbl: zero-extending byte load
  Imul,
  Push,
  Pop,
  Inc,
  Dec,
  Not,
  Neg,
  Mul,      // unsigned edx:eax = eax * rm
  Div,      // unsigned eax = edx:eax / rm, edx = remainder
  Idiv,
  Shl,
  Shr,
  Sar,
  Jcc,      // conditional branch (the only branch kind campaigns B/C target)
  Setcc,
  Jmp,
  JmpInd,   // jmp r/m
  Call,     // call rel32
  CallInd,  // call r/m
  Ret,
  Leave,
  Nop,
  Cdq,
  Ud2,      // guaranteed-undefined opcode; the kernel's BUG() uses it
  Int3,
  Int,      // int imm8 (0x80 = system call)
  Iret,     // privileged
  Lret,     // far return: no far segments exist -> always #GP
  FarJmp,   // jmp ptr16:32 -> always #GP
  FarCall,  // call ptr16:32 -> always #GP
  MovSeg,   // mov sreg, r/m -> always #GP (bad selector)
  In,       // privileged port read
  Hlt,      // privileged idle
  Cli,
  Sti,
  Invalid,  // undefined encoding -> #UD at execution
};

// Number of Op enumerators (Invalid is last): sizes dispatch tables.
inline constexpr int kOpCount = static_cast<int>(Op::Invalid) + 1;

std::string_view op_name(Op op);

enum class OperandKind : std::uint8_t { None, Reg, Reg8, Mem, Mem8, Imm };

struct MemRef {
  bool has_base = false;
  Reg base = Reg::Eax;
  std::int32_t disp = 0;

  bool operator==(const MemRef&) const = default;
};

struct Operand {
  OperandKind kind = OperandKind::None;
  Reg reg = Reg::Eax;   // Reg / Reg8
  MemRef mem;           // Mem / Mem8
  std::int32_t imm = 0; // Imm

  bool operator==(const Operand&) const = default;

  static Operand none() { return {}; }
  static Operand make_reg(Reg r) {
    Operand o;
    o.kind = OperandKind::Reg;
    o.reg = r;
    return o;
  }
  static Operand make_reg8(Reg r) {
    Operand o;
    o.kind = OperandKind::Reg8;
    o.reg = r;
    return o;
  }
  static Operand make_mem(MemRef m, bool byte = false) {
    Operand o;
    o.kind = byte ? OperandKind::Mem8 : OperandKind::Mem;
    o.mem = m;
    return o;
  }
  static Operand make_imm(std::int32_t v) {
    Operand o;
    o.kind = OperandKind::Imm;
    o.imm = v;
    return o;
  }
};

struct Instruction {
  Op op = Op::Invalid;
  Cond cond = Cond::O;      // Jcc / Setcc
  Operand dst;
  Operand src;
  std::int32_t rel = 0;     // Jcc/Jmp/Call relative displacement
  std::uint8_t imm8 = 0;    // Int vector / shift count when immediate
  std::uint8_t length = 1;  // encoded byte length

  bool operator==(const Instruction& other) const {
    return op == other.op && cond == other.cond && dst == other.dst &&
           src == other.src && rel == other.rel && imm8 == other.imm8 &&
           length == other.length;
  }

  // Campaigns B and C target exactly the conditional branches.
  bool is_conditional_branch() const { return op == Op::Jcc; }
  bool is_branch() const {
    return op == Op::Jcc || op == Op::Jmp || op == Op::JmpInd ||
           op == Op::Call || op == Op::CallInd || op == Op::Ret ||
           op == Op::Lret || op == Op::Iret;
  }
};

}  // namespace kfi::isa
