// Per-opcode flag metadata and the trace-build-time flag-liveness pass.
//
// The threaded execution engine (src/vm/cpu.cc) elides the arithmetic
// flag computation of ALU micro-ops whose flag writes are provably dead
// — overwritten before any consumer can observe them.  Soundness rests
// on one invariant: at every point where execution can *leave* a trace
// (trap delivery, which pushes EFLAGS into the trap frame; a mid-block
// guard failure that resumes the stepper; the end of the trace, where a
// chain edge, terminator, timer delivery, checkpoint rung, or digest
// can observe state), the architectural flags must be bit-identical to
// what the reference stepper would hold.  The analysis therefore treats
// every such point as reading ALL flags:
//
//   * ops that can trap at runtime (memory operands, stack ops, #DE,
//     privileged ops, software ints) read all flags — deliver() pushes
//     flags_.to_word() into the frame — and their own flag writes are
//     never elided (an ALU op with a memory destination updates flags
//     before the faulting write, so the frame holds the NEW flags);
//   * caller-marked `boundary` ops (a guard that may fail before the
//     op executes: page-version checks after an in-trace store, the
//     first op on a new page of a widened trace) force full liveness
//     into everything before them;
//   * the end of the sequence is always fully live: chain edges,
//     sti/iret/trap terminators, and breakpoint-refused successors all
//     resume where any consumer may look at the flags.
//
// IF (intf) is never analyzed or elided: it gates interrupt delivery
// and is written only by cli/sti/iret/trap gates, all of which are
// full-liveness points anyway.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/instruction.h"

namespace kfi::isa {

// Bit masks for the five arithmetic flags the core models (AF is not
// modeled by this ISA).  These are analysis-internal positions, not the
// EFLAGS word layout.
inline constexpr std::uint8_t kFlagCF = 1u << 0;
inline constexpr std::uint8_t kFlagPF = 1u << 1;
inline constexpr std::uint8_t kFlagZF = 1u << 2;
inline constexpr std::uint8_t kFlagSF = 1u << 3;
inline constexpr std::uint8_t kFlagOF = 1u << 4;
inline constexpr std::uint8_t kFlagAll =
    kFlagCF | kFlagPF | kFlagZF | kFlagSF | kFlagOF;

// What one decoded instruction does to the arithmetic flags.
struct FlagEffects {
  std::uint8_t reads = 0;   // flags whose current value the op consumes
  std::uint8_t kills = 0;   // flags definitely overwritten when the op retires
  std::uint8_t writes = 0;  // flags possibly written (superset of kills)
  bool may_trap = false;    // can raise a trap at runtime (= full-liveness)
};

// Flags a condition code evaluates (cond_holds reads exactly these).
std::uint8_t cond_flags(Cond cond);

// Flag effects of `instr`, matching the executor's semantics exactly:
// e.g. mul leaves PF untouched, imul writes only CF/OF, inc/dec leave
// CF, a register-count shift may write nothing (count 0) so it kills
// nothing but writes everything.
FlagEffects flag_effects(const Instruction& instr);

// One op in a straight-line trace, as the liveness pass sees it.
// `boundary` marks ops whose pre-execution guards can fail at runtime
// (the trace resumes the stepper *before* the op): everything earlier
// must hold full flags on entry to this op.
struct LiveOp {
  FlagEffects fx;
  bool boundary = false;
};

struct Liveness {
  // Per op: flags some later observer may read before they are killed.
  std::vector<std::uint8_t> live_after;
  // Per op: the full `writes` mask when the op's flag computation can
  // be skipped entirely (dead writes, cannot trap), else 0.  Elision
  // is all-or-nothing per op: partial-flag variants are not generated.
  std::vector<std::uint8_t> elidable;
};

// Backward dataflow over a straight-line op sequence.  The sequence end
// is fully live (see header comment).
Liveness flag_liveness(const std::vector<LiveOp>& ops);

}  // namespace kfi::isa
