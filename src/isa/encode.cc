#include "isa/encode.h"

namespace kfi::isa {
namespace {

void put8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put32(std::vector<std::uint8_t>& out, std::int32_t value) {
  const auto v = static_cast<std::uint32_t>(value);
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

bool fits_s8(std::int32_t v) { return v >= -128 && v <= 127; }

// Emits a ModRM byte (+displacement) for `rm` with the given reg field.
bool put_modrm(std::vector<std::uint8_t>& out, int reg_field,
               const Operand& rm) {
  const auto reg_bits = static_cast<std::uint8_t>((reg_field & 7) << 3);
  switch (rm.kind) {
    case OperandKind::Reg:
    case OperandKind::Reg8:
      put8(out, static_cast<std::uint8_t>(0xC0 | reg_bits |
                                          (static_cast<int>(rm.reg) & 7)));
      return true;
    case OperandKind::Mem:
    case OperandKind::Mem8: {
      const MemRef& m = rm.mem;
      if (!m.has_base) {
        put8(out, static_cast<std::uint8_t>(0x00 | reg_bits | 5));
        put32(out, m.disp);
        return true;
      }
      const int base = static_cast<int>(m.base) & 7;
      // [ebp] must use the disp8 form: mod=0,rm=5 means absolute.
      if (m.disp == 0 && base != 5) {
        put8(out, static_cast<std::uint8_t>(0x00 | reg_bits | base));
      } else if (fits_s8(m.disp)) {
        put8(out, static_cast<std::uint8_t>(0x40 | reg_bits | base));
        put8(out, static_cast<std::uint8_t>(m.disp));
      } else {
        put8(out, static_cast<std::uint8_t>(0x80 | reg_bits | base));
        put32(out, m.disp);
      }
      return true;
    }
    default:
      return false;
  }
}

bool is_reg(const Operand& o) { return o.kind == OperandKind::Reg; }
bool is_reg8(const Operand& o) { return o.kind == OperandKind::Reg8; }
bool is_mem(const Operand& o) { return o.kind == OperandKind::Mem; }
bool is_mem8(const Operand& o) { return o.kind == OperandKind::Mem8; }
bool is_imm(const Operand& o) { return o.kind == OperandKind::Imm; }
bool is_rm(const Operand& o) { return is_reg(o) || is_mem(o); }
bool is_rm8(const Operand& o) { return is_reg8(o) || is_mem8(o); }

// ALU row bases: add=0x00, or=0x08, and=0x20, sub=0x28, xor=0x30, cmp=0x38.
bool alu_base(Op op, std::uint8_t& base, int& group_reg) {
  switch (op) {
    case Op::Add: base = 0x00; group_reg = 0; return true;
    case Op::Or: base = 0x08; group_reg = 1; return true;
    case Op::And: base = 0x20; group_reg = 4; return true;
    case Op::Sub: base = 0x28; group_reg = 5; return true;
    case Op::Xor: base = 0x30; group_reg = 6; return true;
    case Op::Cmp: base = 0x38; group_reg = 7; return true;
    default: return false;
  }
}

bool shift_group_reg(Op op, int& group_reg) {
  switch (op) {
    case Op::Shl: group_reg = 4; return true;
    case Op::Shr: group_reg = 5; return true;
    case Op::Sar: group_reg = 7; return true;
    default: return false;
  }
}

bool encode_impl(const Instruction& in, std::vector<std::uint8_t>& out,
                 bool force_long) {
  std::uint8_t base = 0;
  int group_reg = 0;

  switch (in.op) {
    case Op::Add:
    case Op::Or:
    case Op::And:
    case Op::Sub:
    case Op::Xor:
    case Op::Cmp: {
      (void)alu_base(in.op, base, group_reg);
      if (is_rm8(in.dst) && is_reg8(in.src)) {
        put8(out, base);  // rm8, r8
        return put_modrm(out, static_cast<int>(in.src.reg), in.dst);
      }
      if (is_reg(in.dst) && is_imm(in.src) && in.dst.reg == Reg::Eax &&
          !fits_s8(in.src.imm)) {
        put8(out, static_cast<std::uint8_t>(base + 5));  // eax, imm32
        put32(out, in.src.imm);
        return true;
      }
      if (is_rm(in.dst) && is_imm(in.src)) {
        if (fits_s8(in.src.imm)) {
          put8(out, 0x83);
          if (!put_modrm(out, group_reg, in.dst)) return false;
          put8(out, static_cast<std::uint8_t>(in.src.imm));
        } else {
          put8(out, 0x81);
          if (!put_modrm(out, group_reg, in.dst)) return false;
          put32(out, in.src.imm);
        }
        return true;
      }
      if (is_reg8(in.dst) && in.dst.reg == Reg::Eax && is_imm(in.src)) {
        put8(out, static_cast<std::uint8_t>(base + 4));  // al, imm8
        put8(out, static_cast<std::uint8_t>(in.src.imm));
        return true;
      }
      if (is_rm(in.dst) && is_reg(in.src)) {
        put8(out, static_cast<std::uint8_t>(base + 1));  // rm, r
        return put_modrm(out, static_cast<int>(in.src.reg), in.dst);
      }
      if (is_reg(in.dst) && is_mem(in.src)) {
        put8(out, static_cast<std::uint8_t>(base + 3));  // r, rm
        return put_modrm(out, static_cast<int>(in.dst.reg), in.src);
      }
      return false;
    }

    case Op::Test:
      if (is_rm8(in.dst) && is_reg8(in.src)) {
        put8(out, 0x84);
        return put_modrm(out, static_cast<int>(in.src.reg), in.dst);
      }
      if (is_rm(in.dst) && is_reg(in.src)) {
        put8(out, 0x85);
        return put_modrm(out, static_cast<int>(in.src.reg), in.dst);
      }
      if (is_rm(in.dst) && is_imm(in.src)) {
        put8(out, 0xF7);
        if (!put_modrm(out, 0, in.dst)) return false;
        put32(out, in.src.imm);
        return true;
      }
      return false;

    case Op::Mov:
      if (is_reg(in.dst) && is_imm(in.src)) {
        put8(out, static_cast<std::uint8_t>(0xB8 + static_cast<int>(in.dst.reg)));
        put32(out, in.src.imm);
        return true;
      }
      if (is_mem(in.dst) && is_imm(in.src)) {
        put8(out, 0xC7);
        if (!put_modrm(out, 0, in.dst)) return false;
        put32(out, in.src.imm);
        return true;
      }
      if (is_mem8(in.dst) && is_imm(in.src)) {
        put8(out, 0xC6);
        if (!put_modrm(out, 0, in.dst)) return false;
        put8(out, static_cast<std::uint8_t>(in.src.imm));
        return true;
      }
      if (is_rm8(in.dst) && is_reg8(in.src)) {
        put8(out, 0x88);
        return put_modrm(out, static_cast<int>(in.src.reg), in.dst);
      }
      if (is_reg8(in.dst) && is_mem8(in.src)) {
        put8(out, 0x8A);
        return put_modrm(out, static_cast<int>(in.dst.reg), in.src);
      }
      if (is_rm(in.dst) && is_reg(in.src)) {
        put8(out, 0x89);
        return put_modrm(out, static_cast<int>(in.src.reg), in.dst);
      }
      if (is_reg(in.dst) && is_mem(in.src)) {
        put8(out, 0x8B);
        return put_modrm(out, static_cast<int>(in.dst.reg), in.src);
      }
      return false;

    case Op::Lea:
      if (!is_reg(in.dst) || !is_mem(in.src)) return false;
      put8(out, 0x8D);
      return put_modrm(out, static_cast<int>(in.dst.reg), in.src);

    case Op::Movzx8:
      if (!is_reg(in.dst) || !is_rm8(in.src)) return false;
      put8(out, 0x0F);
      put8(out, 0xB6);
      return put_modrm(out, static_cast<int>(in.dst.reg), in.src);

    case Op::Imul:
      if (!is_reg(in.dst) || !is_rm(in.src)) return false;
      put8(out, 0x0F);
      put8(out, 0xAF);
      return put_modrm(out, static_cast<int>(in.dst.reg), in.src);

    case Op::Push:
      if (is_reg(in.src)) {
        put8(out, static_cast<std::uint8_t>(0x50 + static_cast<int>(in.src.reg)));
        return true;
      }
      if (is_imm(in.src)) {
        if (fits_s8(in.src.imm)) {
          put8(out, 0x6A);
          put8(out, static_cast<std::uint8_t>(in.src.imm));
        } else {
          put8(out, 0x68);
          put32(out, in.src.imm);
        }
        return true;
      }
      if (is_mem(in.src)) {
        put8(out, 0xFF);
        return put_modrm(out, 6, in.src);
      }
      return false;

    case Op::Pop:
      if (!is_reg(in.dst)) return false;
      put8(out, static_cast<std::uint8_t>(0x58 + static_cast<int>(in.dst.reg)));
      return true;

    case Op::Inc:
      if (is_reg(in.dst)) {
        put8(out, static_cast<std::uint8_t>(0x40 + static_cast<int>(in.dst.reg)));
        return true;
      }
      if (is_mem(in.dst)) {
        put8(out, 0xFF);
        return put_modrm(out, 0, in.dst);
      }
      return false;

    case Op::Dec:
      if (is_reg(in.dst)) {
        put8(out, static_cast<std::uint8_t>(0x48 + static_cast<int>(in.dst.reg)));
        return true;
      }
      if (is_mem(in.dst)) {
        put8(out, 0xFF);
        return put_modrm(out, 1, in.dst);
      }
      return false;

    case Op::Not:
      put8(out, 0xF7);
      return put_modrm(out, 2, in.dst);
    case Op::Neg:
      put8(out, 0xF7);
      return put_modrm(out, 3, in.dst);
    case Op::Mul:
      put8(out, 0xF7);
      return put_modrm(out, 4, in.src);
    case Op::Div:
      put8(out, 0xF7);
      return put_modrm(out, 6, in.src);
    case Op::Idiv:
      put8(out, 0xF7);
      return put_modrm(out, 7, in.src);

    case Op::Shl:
    case Op::Shr:
    case Op::Sar: {
      if (!shift_group_reg(in.op, group_reg)) return false;
      if (is_imm(in.src)) {
        if (in.src.imm == 1) {
          put8(out, 0xD1);
          return put_modrm(out, group_reg, in.dst);
        }
        put8(out, 0xC1);
        if (!put_modrm(out, group_reg, in.dst)) return false;
        put8(out, static_cast<std::uint8_t>(in.src.imm & 31));
        return true;
      }
      if (is_reg8(in.src) && in.src.reg == Reg::Ecx) {
        put8(out, 0xD3);
        return put_modrm(out, group_reg, in.dst);
      }
      return false;
    }

    case Op::Jcc:
      if (!force_long && fits_s8(in.rel)) {
        put8(out, static_cast<std::uint8_t>(0x70 | static_cast<int>(in.cond)));
        put8(out, static_cast<std::uint8_t>(in.rel));
      } else {
        put8(out, 0x0F);
        put8(out, static_cast<std::uint8_t>(0x80 | static_cast<int>(in.cond)));
        put32(out, in.rel);
      }
      return true;

    case Op::Setcc:
      if (!is_rm8(in.dst)) return false;
      put8(out, 0x0F);
      put8(out, static_cast<std::uint8_t>(0x90 | static_cast<int>(in.cond)));
      return put_modrm(out, 0, in.dst);

    case Op::Jmp:
      if (!force_long && fits_s8(in.rel)) {
        put8(out, 0xEB);
        put8(out, static_cast<std::uint8_t>(in.rel));
      } else {
        put8(out, 0xE9);
        put32(out, in.rel);
      }
      return true;

    case Op::JmpInd:
      put8(out, 0xFF);
      return put_modrm(out, 4, in.src);

    case Op::Call:
      put8(out, 0xE8);
      put32(out, in.rel);
      return true;

    case Op::CallInd:
      put8(out, 0xFF);
      return put_modrm(out, 2, in.src);

    case Op::Ret: put8(out, 0xC3); return true;
    case Op::Leave: put8(out, 0xC9); return true;
    case Op::Nop: put8(out, 0x90); return true;
    case Op::Cdq: put8(out, 0x99); return true;
    case Op::Ud2: put8(out, 0x0F); put8(out, 0x0B); return true;
    case Op::Int3: put8(out, 0xCC); return true;
    case Op::Int:
      put8(out, 0xCD);
      put8(out, in.imm8);
      return true;
    case Op::Iret: put8(out, 0xCF); return true;
    case Op::Lret: put8(out, 0xCB); return true;
    case Op::In: put8(out, 0xEC); return true;
    case Op::Hlt: put8(out, 0xF4); return true;
    case Op::Cli: put8(out, 0xFA); return true;
    case Op::Sti: put8(out, 0xFB); return true;

    case Op::FarJmp:
      put8(out, 0xEA);
      put32(out, 0);
      put8(out, 0);
      put8(out, 0);
      return true;
    case Op::FarCall:
      put8(out, 0x9A);
      put32(out, 0);
      put8(out, 0);
      put8(out, 0);
      return true;
    case Op::MovSeg:
      put8(out, 0x8E);
      return put_modrm(out, 0, in.src);

    case Op::Invalid:
      return false;
  }
  return false;
}

}  // namespace

bool encode(const Instruction& instr, std::vector<std::uint8_t>& out,
            bool force_long_branch) {
  const std::size_t before = out.size();
  if (!encode_impl(instr, out, force_long_branch)) {
    out.resize(before);
    return false;
  }
  return true;
}

std::size_t encoded_length(const Instruction& instr, bool force_long_branch) {
  std::vector<std::uint8_t> tmp;
  if (!encode(instr, tmp, force_long_branch)) return 0;
  return tmp.size();
}

}  // namespace kfi::isa
