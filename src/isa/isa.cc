#include "isa/isa.h"

#include "isa/instruction.h"

namespace kfi::isa {

std::string_view reg_name(Reg reg) {
  static constexpr std::string_view kNames[kRegCount] = {
      "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"};
  return kNames[static_cast<int>(reg) & 7];
}

std::string_view reg8_name(Reg reg) {
  static constexpr std::string_view kNames[kRegCount] = {
      "al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil"};
  return kNames[static_cast<int>(reg) & 7];
}

std::string_view cond_name(Cond cond) {
  static constexpr std::string_view kNames[16] = {
      "o", "no", "b", "ae", "e", "ne", "be", "a",
      "s", "ns", "p", "np", "l", "ge", "le", "g"};
  return kNames[static_cast<int>(cond) & 15];
}

bool cond_holds(Cond cond, const Flags& f) noexcept {
  switch (cond) {
    case Cond::O: return f.of;
    case Cond::No: return !f.of;
    case Cond::B: return f.cf;
    case Cond::Ae: return !f.cf;
    case Cond::E: return f.zf;
    case Cond::Ne: return !f.zf;
    case Cond::Be: return f.cf || f.zf;
    case Cond::A: return !f.cf && !f.zf;
    case Cond::S: return f.sf;
    case Cond::Ns: return !f.sf;
    case Cond::P: return f.pf;
    case Cond::Np: return !f.pf;
    case Cond::L: return f.sf != f.of;
    case Cond::Ge: return f.sf == f.of;
    case Cond::Le: return f.zf || (f.sf != f.of);
    case Cond::G: return !f.zf && (f.sf == f.of);
  }
  return false;
}

std::string_view trap_name(Trap trap) {
  switch (trap) {
    case Trap::None: return "none";
    case Trap::DivideError: return "divide error";
    case Trap::Int3: return "int3";
    case Trap::Overflow: return "overflow";
    case Trap::Bounds: return "bounds";
    case Trap::InvalidOpcode: return "invalid opcode";
    case Trap::DoubleFault: return "double fault";
    case Trap::InvalidTss: return "invalid TSS";
    case Trap::SegNotPresent: return "segment not present";
    case Trap::StackFault: return "stack exception";
    case Trap::GpFault: return "general protection fault";
    case Trap::PageFault: return "page fault";
    case Trap::Syscall: return "system call";
    case Trap::Timer: return "timer";
  }
  return "unknown";
}

std::string_view op_name(Op op) {
  switch (op) {
    case Op::Add: return "add";
    case Op::Or: return "or";
    case Op::And: return "and";
    case Op::Sub: return "sub";
    case Op::Xor: return "xor";
    case Op::Cmp: return "cmp";
    case Op::Test: return "test";
    case Op::Mov: return "mov";
    case Op::Lea: return "lea";
    case Op::Movzx8: return "movzbl";
    case Op::Imul: return "imul";
    case Op::Push: return "push";
    case Op::Pop: return "pop";
    case Op::Inc: return "inc";
    case Op::Dec: return "dec";
    case Op::Not: return "not";
    case Op::Neg: return "neg";
    case Op::Mul: return "mul";
    case Op::Div: return "div";
    case Op::Idiv: return "idiv";
    case Op::Shl: return "shl";
    case Op::Shr: return "shr";
    case Op::Sar: return "sar";
    case Op::Jcc: return "j";
    case Op::Setcc: return "set";
    case Op::Jmp: return "jmp";
    case Op::JmpInd: return "jmp";
    case Op::Call: return "call";
    case Op::CallInd: return "call";
    case Op::Ret: return "ret";
    case Op::Leave: return "leave";
    case Op::Nop: return "nop";
    case Op::Cdq: return "cdq";
    case Op::Ud2: return "ud2a";
    case Op::Int3: return "int3";
    case Op::Int: return "int";
    case Op::Iret: return "iret";
    case Op::Lret: return "lret";
    case Op::FarJmp: return "ljmp";
    case Op::FarCall: return "lcall";
    case Op::MovSeg: return "mov-sreg";
    case Op::In: return "in";
    case Op::Hlt: return "hlt";
    case Op::Cli: return "cli";
    case Op::Sti: return "sti";
    case Op::Invalid: return "(bad)";
  }
  return "(bad)";
}

}  // namespace kfi::isa
