#include "isa/decode.h"

namespace kfi::isa {
namespace {

struct Cursor {
  const std::uint8_t* bytes;
  std::size_t avail;
  std::size_t pos = 0;
  bool truncated = false;

  std::uint8_t u8() {
    if (pos >= avail) {
      truncated = true;
      return 0;
    }
    return bytes[pos++];
  }

  std::int32_t s8() { return static_cast<std::int8_t>(u8()); }

  std::int32_t s32() {
    std::uint32_t v = 0;
    v |= static_cast<std::uint32_t>(u8());
    v |= static_cast<std::uint32_t>(u8()) << 8;
    v |= static_cast<std::uint32_t>(u8()) << 16;
    v |= static_cast<std::uint32_t>(u8()) << 24;
    return static_cast<std::int32_t>(v);
  }
};

// Decodes a ModRM byte plus its displacement.  Returns the reg field via
// `reg_field`; the r/m operand via `rm`.
void decode_modrm(Cursor& cur, int& reg_field, Operand& rm, bool byte_op) {
  const std::uint8_t modrm = cur.u8();
  const int mod = modrm >> 6;
  reg_field = (modrm >> 3) & 7;
  const int rm_field = modrm & 7;

  if (mod == 3) {
    rm = byte_op ? Operand::make_reg8(static_cast<Reg>(rm_field))
                 : Operand::make_reg(static_cast<Reg>(rm_field));
    return;
  }
  MemRef mem;
  if (mod == 0 && rm_field == 5) {
    mem.has_base = false;
    mem.disp = cur.s32();
  } else {
    mem.has_base = true;
    mem.base = static_cast<Reg>(rm_field);
    if (mod == 1) {
      mem.disp = cur.s8();
    } else if (mod == 2) {
      mem.disp = cur.s32();
    }
  }
  rm = Operand::make_mem(mem, byte_op);
}

DecodeStatus finish(Cursor& cur, Instruction& out) {
  if (cur.truncated) {
    out.op = Op::Invalid;
    out.length = static_cast<std::uint8_t>(cur.pos);
    return DecodeStatus::Truncated;
  }
  out.length = static_cast<std::uint8_t>(cur.pos);
  return DecodeStatus::Ok;
}

DecodeStatus invalid(Cursor& cur, Instruction& out) {
  out = Instruction{};
  out.op = Op::Invalid;
  // #UD is raised at the instruction start; report length 1 unless the
  // prefix structure consumed a determinate amount (two-byte escapes).
  out.length = static_cast<std::uint8_t>(cur.pos > 0 ? cur.pos : 1);
  return cur.truncated ? DecodeStatus::Truncated : DecodeStatus::Invalid;
}

// Maps the /reg field of group 0x81/0x83 to an ALU op.
bool alu_group_op(int reg_field, Op& op) {
  switch (reg_field) {
    case 0: op = Op::Add; return true;
    case 1: op = Op::Or; return true;
    case 4: op = Op::And; return true;
    case 5: op = Op::Sub; return true;
    case 6: op = Op::Xor; return true;
    case 7: op = Op::Cmp; return true;
    default: return false;  // adc/sbb not implemented -> #UD
  }
}

bool shift_group_op(int reg_field, Op& op) {
  switch (reg_field) {
    case 4: op = Op::Shl; return true;
    case 5: op = Op::Shr; return true;
    case 7: op = Op::Sar; return true;
    default: return false;
  }
}

}  // namespace

DecodeStatus decode(const std::uint8_t* bytes, std::size_t avail,
                    Instruction& out) {
  Cursor cur{bytes, avail};
  out = Instruction{};
  const std::uint8_t opcode = cur.u8();
  if (cur.truncated) return invalid(cur, out);

  // ALU rows share a layout: base+0 rm8,r8 / +1 rm,r / +3 r,rm /
  // +4 al,imm8 / +5 eax,imm32 (as on IA-32).
  auto alu_row = [&](Op op) -> DecodeStatus {
    const int variant = opcode & 7;
    int reg_field = 0;
    Operand rm;
    switch (variant) {
      case 0:  // rm8, r8
        decode_modrm(cur, reg_field, rm, /*byte_op=*/true);
        out.op = op;
        out.dst = rm;
        out.src = Operand::make_reg8(static_cast<Reg>(reg_field));
        return finish(cur, out);
      case 1:  // rm, r
        decode_modrm(cur, reg_field, rm, /*byte_op=*/false);
        out.op = op;
        out.dst = rm;
        out.src = Operand::make_reg(static_cast<Reg>(reg_field));
        return finish(cur, out);
      case 3:  // r, rm
        decode_modrm(cur, reg_field, rm, /*byte_op=*/false);
        out.op = op;
        out.dst = Operand::make_reg(static_cast<Reg>(reg_field));
        out.src = rm;
        return finish(cur, out);
      case 4:  // al, imm8
        out.op = op;
        out.dst = Operand::make_reg8(Reg::Eax);
        out.src = Operand::make_imm(cur.u8());
        return finish(cur, out);
      case 5:  // eax, imm32
        out.op = op;
        out.dst = Operand::make_reg(Reg::Eax);
        out.src = Operand::make_imm(cur.s32());
        return finish(cur, out);
      default:
        return invalid(cur, out);
    }
  };

  switch (opcode) {
    case 0x00: case 0x01: case 0x03: case 0x04: case 0x05:
      return alu_row(Op::Add);
    case 0x08: case 0x09: case 0x0B: case 0x0C: case 0x0D:
      return alu_row(Op::Or);
    case 0x20: case 0x21: case 0x23: case 0x24: case 0x25:
      return alu_row(Op::And);
    case 0x28: case 0x29: case 0x2B: case 0x2C: case 0x2D:
      return alu_row(Op::Sub);
    case 0x30: case 0x31: case 0x33: case 0x34: case 0x35:
      return alu_row(Op::Xor);
    case 0x38: case 0x39: case 0x3B: case 0x3C: case 0x3D:
      return alu_row(Op::Cmp);

    case 0x0F: {  // two-byte escape
      const std::uint8_t second = cur.u8();
      if (cur.truncated) return invalid(cur, out);
      if (second == 0x0B) {
        out.op = Op::Ud2;
        return finish(cur, out);
      }
      if (second >= 0x80 && second <= 0x8F) {
        out.op = Op::Jcc;
        out.cond = static_cast<Cond>(second & 0x0F);
        out.rel = cur.s32();
        return finish(cur, out);
      }
      if (second >= 0x90 && second <= 0x9F) {
        int reg_field = 0;
        Operand rm;
        decode_modrm(cur, reg_field, rm, /*byte_op=*/true);
        out.op = Op::Setcc;
        out.cond = static_cast<Cond>(second & 0x0F);
        out.dst = rm;
        return finish(cur, out);
      }
      if (second == 0xAF) {
        int reg_field = 0;
        Operand rm;
        decode_modrm(cur, reg_field, rm, /*byte_op=*/false);
        out.op = Op::Imul;
        out.dst = Operand::make_reg(static_cast<Reg>(reg_field));
        out.src = rm;
        return finish(cur, out);
      }
      if (second == 0xB6) {
        int reg_field = 0;
        Operand rm;
        decode_modrm(cur, reg_field, rm, /*byte_op=*/true);
        out.op = Op::Movzx8;
        out.dst = Operand::make_reg(static_cast<Reg>(reg_field));
        out.src = rm;
        return finish(cur, out);
      }
      return invalid(cur, out);
    }

    case 0x68:
      out.op = Op::Push;
      out.src = Operand::make_imm(cur.s32());
      return finish(cur, out);
    case 0x6A:
      out.op = Op::Push;
      out.src = Operand::make_imm(cur.s8());
      return finish(cur, out);

    case 0x81: {
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/false);
      Op op;
      if (!alu_group_op(reg_field, op)) return invalid(cur, out);
      out.op = op;
      out.dst = rm;
      out.src = Operand::make_imm(cur.s32());
      return finish(cur, out);
    }
    case 0x83: {
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/false);
      Op op;
      if (!alu_group_op(reg_field, op)) return invalid(cur, out);
      out.op = op;
      out.dst = rm;
      out.src = Operand::make_imm(cur.s8());
      return finish(cur, out);
    }

    case 0x84: {
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/true);
      out.op = Op::Test;
      out.dst = rm;
      out.src = Operand::make_reg8(static_cast<Reg>(reg_field));
      return finish(cur, out);
    }
    case 0x85: {
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/false);
      out.op = Op::Test;
      out.dst = rm;
      out.src = Operand::make_reg(static_cast<Reg>(reg_field));
      return finish(cur, out);
    }

    case 0x88: {
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/true);
      out.op = Op::Mov;
      out.dst = rm;
      out.src = Operand::make_reg8(static_cast<Reg>(reg_field));
      return finish(cur, out);
    }
    case 0x89: {
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/false);
      out.op = Op::Mov;
      out.dst = rm;
      out.src = Operand::make_reg(static_cast<Reg>(reg_field));
      return finish(cur, out);
    }
    case 0x8A: {
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/true);
      out.op = Op::Mov;
      out.dst = Operand::make_reg8(static_cast<Reg>(reg_field));
      out.src = rm;
      return finish(cur, out);
    }
    case 0x8B: {
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/false);
      out.op = Op::Mov;
      out.dst = Operand::make_reg(static_cast<Reg>(reg_field));
      out.src = rm;
      return finish(cur, out);
    }
    case 0x8D: {
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/false);
      if (rm.kind != OperandKind::Mem) return invalid(cur, out);
      out.op = Op::Lea;
      out.dst = Operand::make_reg(static_cast<Reg>(reg_field));
      out.src = rm;
      return finish(cur, out);
    }
    case 0x8E: {  // mov sreg, r/m -> corrupted selector, #GP at execution
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/false);
      out.op = Op::MovSeg;
      out.src = rm;
      return finish(cur, out);
    }

    case 0x90:
      out.op = Op::Nop;
      return finish(cur, out);
    case 0x99:
      out.op = Op::Cdq;
      return finish(cur, out);
    case 0x9A:  // call ptr16:32
      out.op = Op::FarCall;
      (void)cur.s32();
      (void)cur.u8();
      (void)cur.u8();
      return finish(cur, out);

    case 0xC1: {
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/false);
      Op op;
      if (!shift_group_op(reg_field, op)) return invalid(cur, out);
      out.op = op;
      out.dst = rm;
      out.src = Operand::make_imm(cur.u8() & 31);
      return finish(cur, out);
    }
    case 0xC3:
      out.op = Op::Ret;
      return finish(cur, out);
    case 0xC6: {
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/true);
      if (reg_field != 0) return invalid(cur, out);
      out.op = Op::Mov;
      out.dst = rm;
      out.src = Operand::make_imm(cur.u8());
      return finish(cur, out);
    }
    case 0xC7: {
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/false);
      if (reg_field != 0) return invalid(cur, out);
      out.op = Op::Mov;
      out.dst = rm;
      out.src = Operand::make_imm(cur.s32());
      return finish(cur, out);
    }
    case 0xC9:
      out.op = Op::Leave;
      return finish(cur, out);
    case 0xCB:
      out.op = Op::Lret;
      return finish(cur, out);
    case 0xCC:
      out.op = Op::Int3;
      return finish(cur, out);
    case 0xCD:
      out.op = Op::Int;
      out.imm8 = cur.u8();
      return finish(cur, out);
    case 0xCF:
      out.op = Op::Iret;
      return finish(cur, out);

    case 0xD1: {
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/false);
      Op op;
      if (!shift_group_op(reg_field, op)) return invalid(cur, out);
      out.op = op;
      out.dst = rm;
      out.src = Operand::make_imm(1);
      return finish(cur, out);
    }
    case 0xD3: {
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/false);
      Op op;
      if (!shift_group_op(reg_field, op)) return invalid(cur, out);
      out.op = op;
      out.dst = rm;
      out.src = Operand::make_reg8(Reg::Ecx);  // count in cl
      return finish(cur, out);
    }

    case 0xE8:
      out.op = Op::Call;
      out.rel = cur.s32();
      return finish(cur, out);
    case 0xE9:
      out.op = Op::Jmp;
      out.rel = cur.s32();
      return finish(cur, out);
    case 0xEA:  // jmp ptr16:32
      out.op = Op::FarJmp;
      (void)cur.s32();
      (void)cur.u8();
      (void)cur.u8();
      return finish(cur, out);
    case 0xEB:
      out.op = Op::Jmp;
      out.rel = cur.s8();
      return finish(cur, out);
    case 0xEC:
      out.op = Op::In;
      return finish(cur, out);

    case 0xF4:
      out.op = Op::Hlt;
      return finish(cur, out);
    case 0xFA:
      out.op = Op::Cli;
      return finish(cur, out);
    case 0xFB:
      out.op = Op::Sti;
      return finish(cur, out);

    case 0xF7: {
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/false);
      switch (reg_field) {
        case 0:
          out.op = Op::Test;
          out.dst = rm;
          out.src = Operand::make_imm(cur.s32());
          return finish(cur, out);
        case 2: out.op = Op::Not; out.dst = rm; return finish(cur, out);
        case 3: out.op = Op::Neg; out.dst = rm; return finish(cur, out);
        case 4: out.op = Op::Mul; out.src = rm; return finish(cur, out);
        case 6: out.op = Op::Div; out.src = rm; return finish(cur, out);
        case 7: out.op = Op::Idiv; out.src = rm; return finish(cur, out);
        default: return invalid(cur, out);
      }
    }
    case 0xFF: {
      int reg_field = 0;
      Operand rm;
      decode_modrm(cur, reg_field, rm, /*byte_op=*/false);
      switch (reg_field) {
        case 0: out.op = Op::Inc; out.dst = rm; return finish(cur, out);
        case 1: out.op = Op::Dec; out.dst = rm; return finish(cur, out);
        case 2: out.op = Op::CallInd; out.src = rm; return finish(cur, out);
        case 4: out.op = Op::JmpInd; out.src = rm; return finish(cur, out);
        case 6: out.op = Op::Push; out.src = rm; return finish(cur, out);
        default: return invalid(cur, out);
      }
    }

    default:
      break;
  }

  if (opcode >= 0x40 && opcode <= 0x47) {
    out.op = Op::Inc;
    out.dst = Operand::make_reg(static_cast<Reg>(opcode - 0x40));
    return finish(cur, out);
  }
  if (opcode >= 0x48 && opcode <= 0x4F) {
    out.op = Op::Dec;
    out.dst = Operand::make_reg(static_cast<Reg>(opcode - 0x48));
    return finish(cur, out);
  }
  if (opcode >= 0x50 && opcode <= 0x57) {
    out.op = Op::Push;
    out.src = Operand::make_reg(static_cast<Reg>(opcode - 0x50));
    return finish(cur, out);
  }
  if (opcode >= 0x58 && opcode <= 0x5F) {
    out.op = Op::Pop;
    out.dst = Operand::make_reg(static_cast<Reg>(opcode - 0x58));
    return finish(cur, out);
  }
  if (opcode >= 0x70 && opcode <= 0x7F) {
    out.op = Op::Jcc;
    out.cond = static_cast<Cond>(opcode & 0x0F);
    out.rel = cur.s8();
    return finish(cur, out);
  }
  if (opcode >= 0xB8 && opcode <= 0xBF) {
    out.op = Op::Mov;
    out.dst = Operand::make_reg(static_cast<Reg>(opcode - 0xB8));
    out.src = Operand::make_imm(cur.s32());
    return finish(cur, out);
  }

  return invalid(cur, out);
}

}  // namespace kfi::isa
