#include "isa/flags_meta.h"

namespace kfi::isa {

namespace {

bool is_mem(const Operand& op) {
  return op.kind == OperandKind::Mem || op.kind == OperandKind::Mem8;
}

}  // namespace

std::uint8_t cond_flags(Cond cond) {
  // Bit 0 of the condition code only negates, so both polarities read
  // the same flags (cond_holds in isa.cc is the executable spec).
  switch (static_cast<int>(cond) >> 1) {
    case 0: return kFlagOF;                       // o / no
    case 1: return kFlagCF;                       // b / ae
    case 2: return kFlagZF;                       // e / ne
    case 3: return kFlagCF | kFlagZF;             // be / a
    case 4: return kFlagSF;                       // s / ns
    case 5: return kFlagPF;                       // p / np
    case 6: return kFlagSF | kFlagOF;             // l / ge
    case 7: return kFlagZF | kFlagSF | kFlagOF;   // le / g
  }
  return kFlagAll;
}

FlagEffects flag_effects(const Instruction& in) {
  FlagEffects fx;
  // Any guest memory access can raise #PF/#GP mid-instruction.
  fx.may_trap = is_mem(in.dst) || is_mem(in.src);

  switch (in.op) {
    case Op::Add:
    case Op::Sub:
    case Op::Cmp:
    case Op::Or:
    case Op::And:
    case Op::Xor:
    case Op::Test:
    case Op::Neg:
      fx.kills = fx.writes = kFlagAll;
      break;

    case Op::Inc:
    case Op::Dec:
      // CF preserved (IA-32 semantics).
      fx.kills = fx.writes = kFlagPF | kFlagZF | kFlagSF | kFlagOF;
      break;

    case Op::Mul:
      // The executor leaves PF untouched for mul.
      fx.kills = fx.writes = kFlagCF | kFlagZF | kFlagSF | kFlagOF;
      break;
    case Op::Imul:
      fx.kills = fx.writes = kFlagCF | kFlagOF;
      break;

    case Op::Div:
    case Op::Idiv:
      // No flag writes in this core, but #DE is always reachable.
      fx.may_trap = true;
      break;

    case Op::Shl:
    case Op::Shr:
    case Op::Sar:
      if (in.src.kind == OperandKind::Imm) {
        const std::uint32_t count =
            static_cast<std::uint32_t>(in.src.imm) & 31u;
        if (count == 0) {
          // Shift by zero changes no flags at all.
        } else if (count == 1) {
          fx.kills = fx.writes = kFlagAll;
        } else {
          // OF is only written when the count is exactly 1.
          fx.kills = fx.writes = kFlagCF | kFlagPF | kFlagZF | kFlagSF;
        }
      } else {
        // Runtime count: may write everything (count >= 1, OF at 1),
        // definitely kills nothing (count may be 0).
        fx.writes = kFlagAll;
      }
      break;

    case Op::Jcc:
    case Op::Setcc:
      fx.reads = cond_flags(in.cond);
      break;

    case Op::Mov:
    case Op::Lea:       // address arithmetic only; never touches memory
    case Op::Movzx8:
    case Op::Not:
    case Op::Cdq:
    case Op::Nop:
    case Op::Jmp:
      break;
    case Op::JmpInd:
      // Register-indirect transfers read no memory; mem-indirect may
      // fault on the target load (covered by the operand check above).
      break;

    case Op::Push:
    case Op::Pop:
    case Op::Leave:
    case Op::Call:
    case Op::CallInd:
    case Op::Ret:
      fx.may_trap = true;  // stack access
      break;

    case Op::Iret:
      // Restores the whole flag word from the stack frame.
      fx.kills = fx.writes = kFlagAll;
      fx.may_trap = true;
      break;

    case Op::Ud2:
    case Op::Invalid:
    case Op::Int3:
    case Op::Int:
    case Op::Lret:
    case Op::FarJmp:
    case Op::FarCall:
    case Op::MovSeg:
      fx.may_trap = true;
      break;

    case Op::In:
    case Op::Hlt:
    case Op::Cli:
    case Op::Sti:
      fx.may_trap = true;  // #GP from user mode; cli/sti touch IF only
      break;
  }
  return fx;
}

Liveness flag_liveness(const std::vector<LiveOp>& ops) {
  Liveness lv;
  lv.live_after.assign(ops.size(), kFlagAll);
  lv.elidable.assign(ops.size(), 0);

  std::uint8_t live = kFlagAll;  // trace end: everything observable
  for (std::size_t i = ops.size(); i-- > 0;) {
    const FlagEffects& fx = ops[i].fx;
    lv.live_after[i] = live;
    // An op's own writes can be skipped when nothing downstream can
    // observe them and the op cannot abort into a trap frame.  Whether
    // the op is itself a guard boundary is irrelevant here: a guard
    // failure resumes the stepper *before* the op runs.
    if (fx.writes != 0 && !fx.may_trap && (fx.writes & live) == 0) {
      lv.elidable[i] = fx.writes;
    }
    if (ops[i].boundary || fx.may_trap) {
      // Execution may leave the trace at this op's entry (guard
      // failure) or during it (trap frame push): everything before
      // must hold the full architectural flags.
      live = kFlagAll;
    } else {
      live = static_cast<std::uint8_t>((live & ~fx.kills) | fx.reads);
    }
  }
  return lv;
}

}  // namespace kfi::isa
