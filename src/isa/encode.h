// Instruction encoder — the inverse of the decoder for canonical forms.
//
// The assembler builds `Instruction` values and serializes them here.
// `decode(encode(i)) == i` holds for every encodable instruction, which
// the property tests exercise exhaustively over the operand space.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/instruction.h"

namespace kfi::isa {

// Appends the canonical encoding of `instr` to `out`.  Returns false if
// the instruction has no encoding (e.g. Op::Invalid, malformed operands).
//
// Branch instructions: `instr.rel` is encoded as given; short forms are
// chosen when the displacement fits unless `force_long_branch` is set
// (the assembler's relaxation uses the forced form).
bool encode(const Instruction& instr, std::vector<std::uint8_t>& out,
            bool force_long_branch = false);

// Length the canonical encoding would have, 0 if not encodable.
std::size_t encoded_length(const Instruction& instr,
                           bool force_long_branch = false);

}  // namespace kfi::isa
