// Instruction decoder.
//
// The decoder is total: any byte sequence decodes to either a valid
// instruction, an Invalid instruction (executes as #UD), or Truncated
// (more bytes needed than were supplied — at execution time this surfaces
// as an instruction-fetch page fault).  Totality is what makes random
// bit-flip injection meaningful.
#pragma once

#include <cstddef>
#include <cstdint>

#include "isa/instruction.h"

namespace kfi::isa {

enum class DecodeStatus : std::uint8_t { Ok, Invalid, Truncated };

// Decodes one instruction from `bytes` (at most `avail` bytes).
// On Ok, `out` is fully populated including `length`.
// On Invalid, `out.op == Op::Invalid` and `out.length == 1`.
// On Truncated, `out.length` holds the number of bytes that would be
// required (lower bound).
DecodeStatus decode(const std::uint8_t* bytes, std::size_t avail,
                    Instruction& out);

// Maximum encoded instruction length (opcode + modrm + disp32 + imm32).
inline constexpr std::size_t kMaxInstructionLength = 11;

}  // namespace kfi::isa
