#include "isa/disasm.h"

#include "isa/decode.h"
#include "support/strings.h"

namespace kfi::isa {
namespace {

std::string operand_text(const Operand& op) {
  switch (op.kind) {
    case OperandKind::None:
      return "";
    case OperandKind::Reg:
      return "%" + std::string(reg_name(op.reg));
    case OperandKind::Reg8:
      return "%" + std::string(reg8_name(op.reg));
    case OperandKind::Mem:
    case OperandKind::Mem8: {
      const MemRef& m = op.mem;
      if (!m.has_base) {
        return kfi::hex32_prefixed(static_cast<std::uint32_t>(m.disp));
      }
      std::string out;
      if (m.disp != 0) {
        if (m.disp < 0) {
          out += "-0x" + kfi::format("%x", -m.disp);
        } else {
          out += "0x" + kfi::format("%x", m.disp);
        }
      }
      out += "(%" + std::string(reg_name(m.base)) + ")";
      return out;
    }
    case OperandKind::Imm:
      if (op.imm < 0) return kfi::format("$-0x%x", -op.imm);
      return kfi::format("$0x%x", op.imm);
  }
  return "";
}

}  // namespace

std::string disassemble(const Instruction& in, std::uint32_t pc) {
  const std::uint32_t next = pc + in.length;
  switch (in.op) {
    case Op::Invalid:
      return "(bad)";
    case Op::Jcc:
      return "j" + std::string(cond_name(in.cond)) + " " +
             kfi::hex32(next + static_cast<std::uint32_t>(in.rel));
    case Op::Setcc:
      return "set" + std::string(cond_name(in.cond)) + " " +
             operand_text(in.dst);
    case Op::Jmp:
      return "jmp " + kfi::hex32(next + static_cast<std::uint32_t>(in.rel));
    case Op::Call:
      return "call " + kfi::hex32(next + static_cast<std::uint32_t>(in.rel));
    case Op::JmpInd:
      return "jmp *" + operand_text(in.src);
    case Op::CallInd:
      return "call *" + operand_text(in.src);
    case Op::Int:
      return kfi::format("int $0x%x", in.imm8);
    case Op::In:
      return "in (%dx),%al";
    default:
      break;
  }

  std::string text{op_name(in.op)};
  const std::string dst = operand_text(in.dst);
  const std::string src = operand_text(in.src);
  // AT&T order: source first.
  if (!src.empty() && !dst.empty()) {
    text += " " + src + "," + dst;
  } else if (!src.empty()) {
    text += " " + src;
  } else if (!dst.empty()) {
    text += " " + dst;
  }
  return text;
}

std::string disassemble_bytes(const std::uint8_t* bytes, std::size_t avail,
                              std::uint32_t pc, std::size_t* length_out) {
  Instruction instr;
  const DecodeStatus status = decode(bytes, avail, instr);
  if (length_out != nullptr) *length_out = instr.length;
  if (status != DecodeStatus::Ok) return "(bad)";
  return disassemble(instr, pc);
}

}  // namespace kfi::isa
