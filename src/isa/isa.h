// KX86 — the simulated 32-bit instruction set.
//
// The encoding deliberately mirrors IA-32's one-byte opcode map for the
// instructions the paper's case studies show (je=0x74, jne=0x75,
// mov r,r/m=0x8B, test=0x85, xor al,imm8=0x34, ud2=0F 0B, lret=0xCB, ...),
// because the paper's findings hinge on properties of that encoding:
//
//  * conditional branches encode their condition in opcode bit 0, so a
//    single-bit flip reverses the condition (campaign C's error model);
//  * the opcode map is sparse, so random byte corruption frequently decodes
//    to an undefined instruction (the "invalid opcode" crash cause);
//  * instructions are variable length, so corrupting one byte can change
//    the instruction's length and cause the bytes that follow to be
//    re-interpreted as a different instruction sequence (Table 7, ex. 2).
#pragma once

#include <cstdint>
#include <string_view>

namespace kfi::isa {

// General-purpose registers, numbered as IA-32 encodes them.
enum class Reg : std::uint8_t {
  Eax = 0,
  Ecx = 1,
  Edx = 2,
  Ebx = 3,
  Esp = 4,
  Ebp = 5,
  Esi = 6,
  Edi = 7,
};

inline constexpr int kRegCount = 8;

std::string_view reg_name(Reg reg);
std::string_view reg8_name(Reg reg);  // low byte: al, cl, dl, bl, spl, ...

// EFLAGS bits we model (IA-32 bit positions).
struct Flags {
  bool cf = false;  // carry
  bool pf = false;  // parity (of low result byte)
  bool zf = false;  // zero
  bool sf = false;  // sign
  bool of = false;  // overflow
  bool intf = true; // interrupt enable (IF)

  std::uint32_t to_word() const noexcept {
    return (cf ? 1u : 0u) | (pf ? 1u << 2 : 0u) | (zf ? 1u << 6 : 0u) |
           (sf ? 1u << 7 : 0u) | (intf ? 1u << 9 : 0u) |
           (of ? 1u << 11 : 0u) | (1u << 1);
  }
  static Flags from_word(std::uint32_t w) noexcept {
    Flags f;
    f.cf = w & 1u;
    f.pf = w & (1u << 2);
    f.zf = w & (1u << 6);
    f.sf = w & (1u << 7);
    f.intf = w & (1u << 9);
    f.of = w & (1u << 11);
    return f;
  }
};

// IA-32 condition codes (the low nibble of Jcc opcodes).  Bit 0 negates
// the condition: cc ^ 1 is the reversed branch, which is exactly the bit
// campaign C flips.
enum class Cond : std::uint8_t {
  O = 0x0,
  No = 0x1,
  B = 0x2,
  Ae = 0x3,
  E = 0x4,
  Ne = 0x5,
  Be = 0x6,
  A = 0x7,
  S = 0x8,
  Ns = 0x9,
  P = 0xA,
  Np = 0xB,
  L = 0xC,
  Ge = 0xD,
  Le = 0xE,
  G = 0xF,
};

std::string_view cond_name(Cond cond);  // "o", "no", "b", ...

// Evaluate a condition against flags, exactly as IA-32 does.
bool cond_holds(Cond cond, const Flags& flags) noexcept;

// Hardware exception vectors (IA-32 numbering where it exists).
enum class Trap : std::uint8_t {
  None = 255,
  DivideError = 0,
  Int3 = 3,
  Overflow = 4,
  Bounds = 5,
  InvalidOpcode = 6,
  DoubleFault = 8,
  InvalidTss = 10,
  SegNotPresent = 11,
  StackFault = 12,
  GpFault = 13,
  PageFault = 14,
  Syscall = 0x80,
  Timer = 0x20,
};

std::string_view trap_name(Trap trap);

}  // namespace kfi::isa
