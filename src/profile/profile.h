// Kernel profiling — the kernprof analog (paper §4).
//
// Samples the program counter at a fixed cycle period while each
// benchmark runs, bins samples by kernel function, and derives the
// "core N" hot-function list (the paper's top 32 covering 95% of all
// profiling values) that the injection campaigns target.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kernel/build.h"

namespace kfi::profile {

struct FunctionSamples {
  std::string function;
  kernel::Subsystem subsystem = kernel::Subsystem::Unknown;
  std::uint64_t samples = 0;
  // Per-workload breakdown (workload name -> samples): used by the
  // injector to pick the workload that exercises a target function most.
  std::map<std::string, std::uint64_t> by_workload;
};

struct ProfileResult {
  std::vector<FunctionSamples> functions;  // sorted by samples, desc
  std::uint64_t total_kernel_samples = 0;
  std::uint64_t user_samples = 0;
  std::map<std::string, std::uint64_t> workload_cycles;  // golden lengths

  const FunctionSamples* find(const std::string& name) const;

  // Smallest prefix of `functions` whose samples sum to at least
  // `coverage` (e.g. 0.95) of all kernel samples — the paper's core-32.
  std::vector<std::string> core_functions(double coverage) const;

  // The workload that exercises `function` the most ("" if none).
  std::string best_workload(const std::string& function) const;

  // Table 1 rows: subsystem -> (profiled function count, count within
  // the core set).
  struct SubsystemRow {
    kernel::Subsystem subsystem;
    std::size_t profiled_functions = 0;
    std::size_t core_functions = 0;
  };
  std::vector<SubsystemRow> table1(double coverage) const;
};

struct ProfileOptions {
  std::uint32_t sample_period = 97;       // cycles between PC samples
  std::uint64_t run_budget = 40'000'000;  // per-workload watchdog
  std::vector<std::string> workload_names;  // empty = all eight
};

// Runs every workload on a fresh machine, sampling the kernel PC.
ProfileResult profile_kernel(const ProfileOptions& options = {});

// Cached default profile (deterministic, shared by injector and benches).
const ProfileResult& default_profile();

}  // namespace kfi::profile
