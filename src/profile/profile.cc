#include "profile/profile.h"

#include <algorithm>
#include <stdexcept>

#include "machine/machine.h"

namespace kfi::profile {

const FunctionSamples* ProfileResult::find(const std::string& name) const {
  for (const FunctionSamples& fs : functions) {
    if (fs.function == name) return &fs;
  }
  return nullptr;
}

std::vector<std::string> ProfileResult::core_functions(double coverage) const {
  std::vector<std::string> core;
  if (total_kernel_samples == 0) return core;
  const auto want = static_cast<std::uint64_t>(
      coverage * static_cast<double>(total_kernel_samples));
  std::uint64_t have = 0;
  for (const FunctionSamples& fs : functions) {
    if (have >= want) break;
    core.push_back(fs.function);
    have += fs.samples;
  }
  return core;
}

std::string ProfileResult::best_workload(const std::string& function) const {
  const FunctionSamples* fs = find(function);
  if (fs == nullptr) return "";
  std::string best;
  std::uint64_t best_samples = 0;
  for (const auto& [workload, samples] : fs->by_workload) {
    if (samples > best_samples) {
      best_samples = samples;
      best = workload;
    }
  }
  return best;
}

std::vector<ProfileResult::SubsystemRow> ProfileResult::table1(
    double coverage) const {
  const std::vector<std::string> core = core_functions(coverage);
  std::map<kernel::Subsystem, SubsystemRow> rows;
  for (const FunctionSamples& fs : functions) {
    SubsystemRow& row = rows[fs.subsystem];
    row.subsystem = fs.subsystem;
    ++row.profiled_functions;
  }
  for (const std::string& name : core) {
    const FunctionSamples* fs = find(name);
    if (fs != nullptr) ++rows[fs->subsystem].core_functions;
  }
  std::vector<SubsystemRow> out;
  for (auto& [subsystem, row] : rows) out.push_back(row);
  return out;
}

ProfileResult profile_kernel(const ProfileOptions& options) {
  const kernel::KernelImage& image = kernel::built_kernel();
  const disk::DiskImage root_disk = machine::make_root_disk();

  std::vector<std::string> names = options.workload_names;
  if (names.empty()) {
    for (const workloads::Workload& w : workloads::all_workloads()) {
      names.push_back(w.name);
    }
  }

  ProfileResult result;
  std::map<std::string, FunctionSamples> bins;

  for (const std::string& name : names) {
    machine::Machine machine(image, workloads::built_workload(name),
                             root_disk);
    if (!machine.boot()) {
      throw std::runtime_error("profiling: " + name + " failed to boot");
    }
    const std::uint64_t start = machine.cpu().cycles();
    bool done = false;
    while (!done &&
           machine.cpu().cycles() - start < options.run_budget) {
      const machine::RunResult run = machine.run(options.sample_period);
      switch (run.exit) {
        case machine::RunExit::Completed:
          done = true;
          break;
        case machine::RunExit::Hung: {
          // Budget pause: take a sample at the current PC.
          const std::uint32_t pc = machine.cpu().eip();
          const kernel::KernelFunction* fn = image.function_at(pc);
          if (fn != nullptr) {
            FunctionSamples& bin = bins[fn->name];
            bin.function = fn->name;
            bin.subsystem = fn->subsystem;
            ++bin.samples;
            ++bin.by_workload[name];
            ++result.total_kernel_samples;
          } else {
            ++result.user_samples;
          }
          break;
        }
        default:
          throw std::runtime_error("profiling: " + name +
                                   " did not complete cleanly");
      }
    }
    result.workload_cycles[name] = machine.cpu().cycles() - start;
  }

  for (auto& [name, bin] : bins) result.functions.push_back(std::move(bin));
  std::sort(result.functions.begin(), result.functions.end(),
            [](const FunctionSamples& a, const FunctionSamples& b) {
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.function < b.function;
            });
  return result;
}

const ProfileResult& default_profile() {
  static const ProfileResult result = profile_kernel();
  return result;
}

}  // namespace kfi::profile
