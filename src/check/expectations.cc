#include "check/expectations.h"

namespace kfi::check {

namespace {

using inject::Campaign;
using inject::CampaignRun;
using inject::CrashCause;
using kernel::Subsystem;

CampaignExpectations expectations_a() {
  CampaignExpectations e;
  e.outcome.name = "A";
  // EXPERIMENTS.md Figure 4: 90.2% activated, 23.6% NM, 15.5% FSV,
  // 61.0% crash+hang; crash/hang dominates activated errors.
  e.outcome.activated = {0.80, 0.97};
  e.outcome.not_manifested = {0.14, 0.34};
  e.outcome.fail_silence = {0.07, 0.25};
  e.outcome.crash_hang = {0.48, 0.74};
  e.outcome.expect_crash_hang_dominant = true;
  // Figure 6: top-4 causes 99.4% of dumped crashes.
  e.causes.name = "A";
  e.causes.top4 = {0.92, 1.0};
  // Figure 8: fs 95.8%, kernel 89.5%, mm 98.3% stay local.
  e.propagation = {{"A.fs", {0.85, 1.0}, 10},
                   {"A.kernel", {0.80, 1.0}, 10},
                   {"A.mm", {0.85, 1.0}, 10}};
  e.propagation_from = {Subsystem::Fs, Subsystem::Kernel, Subsystem::Mm};
  // Table 5: 444 severe / 66 most-severe of ~11k activated.
  e.severity.name = "A";
  e.severity.severe_rate = {0.01, 0.10};
  e.severity.most_severe_rate = {0.001, 0.02};
  return e;
}

CampaignExpectations expectations_b() {
  CampaignExpectations e;
  e.outcome.name = "B";
  // Figure 4: 93.8% activated, 24.7% NM, 10.2% FSV, 65.1% crash+hang.
  e.outcome.activated = {0.84, 1.0};
  e.outcome.not_manifested = {0.14, 0.36};
  e.outcome.fail_silence = {0.04, 0.20};
  e.outcome.crash_hang = {0.50, 0.78};
  e.outcome.expect_crash_hang_dominant = true;
  e.causes.name = "B";
  e.causes.top4 = {0.92, 1.0};
  e.propagation = {{"B.fs", {0.80, 1.0}, 10}};
  e.propagation_from = {Subsystem::Fs};
  // Table 5: 25 severe / 3 most-severe of ~700 activated.
  e.severity.name = "B";
  e.severity.severe_rate = {0.005, 0.10};
  e.severity.most_severe_rate = {0.0, 0.02};
  return e;
}

CampaignExpectations expectations_c() {
  CampaignExpectations e;
  e.outcome.name = "C";
  // Figure 4: 91.9% activated, 17.2% NM, 62.2% FSV, 20.6% crash+hang;
  // fail silence dominates (the paper's §8 finding).
  e.outcome.activated = {0.80, 1.0};
  e.outcome.not_manifested = {0.08, 0.28};
  e.outcome.fail_silence = {0.45, 0.75};
  e.outcome.crash_hang = {0.10, 0.33};
  e.outcome.expect_fail_silence_dominant = true;
  // Figure 6: invalid opcode (BUG()/ud2) is the plurality cause, 62.5%.
  e.causes.name = "C";
  e.causes.top4 = {0.92, 1.0};
  e.causes.dominant_cause = CrashCause::InvalidOpcode;
  e.causes.dominant_share = {0.40, 0.85};
  e.propagation = {};
  e.propagation_from = {};
  // Table 5: C has the highest most-severe *rate*, 2.8% of activated.
  e.severity.name = "C";
  e.severity.severe_rate = {0.01, 0.12};
  e.severity.most_severe_rate = {0.005, 0.06};
  return e;
}

double outcome_share(const CampaignRun& run, inject::Outcome outcome) {
  std::uint64_t activated = 0;
  std::uint64_t matching = 0;
  for (const inject::InjectionResult& r : run.results) {
    if (r.outcome == inject::Outcome::NotActivated) continue;
    ++activated;
    if (r.outcome == outcome) ++matching;
  }
  return activated == 0
             ? 0.0
             : static_cast<double>(matching) / static_cast<double>(activated);
}

double cause_share(const CampaignRun& run, CrashCause cause) {
  std::uint64_t crashes = 0;
  std::uint64_t matching = 0;
  for (const inject::InjectionResult& r : run.results) {
    if (r.outcome != inject::Outcome::DumpedCrash) continue;
    ++crashes;
    if (r.cause == cause) ++matching;
  }
  return crashes == 0
             ? 0.0
             : static_cast<double>(matching) / static_cast<double>(crashes);
}

}  // namespace

ShapeExpectations full_expectations() {
  return {expectations_a(), expectations_b(), expectations_c()};
}

ShapeReport evaluate_campaign(const CampaignRun& run,
                              const CampaignExpectations& expected) {
  ShapeReport report;
  report.add(expected.outcome.evaluate(analysis::make_outcome_table(run)));
  report.add(expected.causes.evaluate(analysis::make_crash_causes(run)));
  for (std::size_t i = 0; i < expected.propagation.size(); ++i) {
    report.add(expected.propagation[i].evaluate(
        analysis::make_propagation(run, expected.propagation_from[i])));
  }
  report.add(expected.severity.evaluate(run, analysis::make_severity(run)));
  return report;
}

ShapeReport evaluate_full(const CampaignRun& a, const CampaignRun& b,
                          const CampaignRun& c) {
  const ShapeExpectations expected = full_expectations();
  ShapeReport report;
  report.add(evaluate_campaign(a, expected.a).checks);
  report.add(evaluate_campaign(b, expected.b).checks);
  report.add(evaluate_campaign(c, expected.c).checks);

  // Cross-campaign orderings (the paper's comparative observations).
  report.add(check_argmax(
      "cross.b_not_manifested_highest",
      {{"A", outcome_share(a, inject::Outcome::NotManifested)},
       {"B", outcome_share(b, inject::Outcome::NotManifested)},
       {"C", outcome_share(c, inject::Outcome::NotManifested)}},
      "B", "corrupted conditions that evaluate the same way"));
  report.add(check_argmax(
      "cross.c_fail_silence_highest",
      {{"A", outcome_share(a, inject::Outcome::FailSilenceViolation)},
       {"B", outcome_share(b, inject::Outcome::FailSilenceViolation)},
       {"C", outcome_share(c, inject::Outcome::FailSilenceViolation)}},
      "C", "reversed error-checking branches report errors for correct"
           " requests"));
  report.add(check_argmin(
      "cross.c_latency_longest",
      {{"A", short_latency_share(a, 10)},
       {"B", short_latency_share(b, 10)},
       {"C", short_latency_share(c, 10)}},
      "C", "Figure 7: C executes valid-but-wrong sequences, so its"
           " <=10-cycle crash share is the smallest"));
  report.add(check_argmin(
      "cross.c_paging_smallest",
      {{"A", cause_share(a, CrashCause::PagingRequest)},
       {"B", cause_share(b, CrashCause::PagingRequest)},
       {"C", cause_share(c, CrashCause::PagingRequest)}},
      "C", "Figure 6: a reversed branch corrupts no register values, so"
           " paging requests collapse in C"));
  return report;
}

const std::vector<std::string>& smoke_functions() {
  // Campaign A set: every byte of every non-branch instruction is a
  // target, so the list is kept to ~640 bytes of hot fs/mm code —
  // pipe_read (the §8 fail-silence case) and free_pages (the BUG()
  // assertion case) — to hold the tier-1 smoke run near ten seconds on
  // one core.
  static const std::vector<std::string> functions = {
      "pipe_read",
      "free_pages",
  };
  return functions;
}

namespace {

const std::vector<std::string>& smoke_branch_functions() {
  // Branch campaigns get one target per conditional branch, so a wider
  // guard-dense list costs almost nothing — the same widening the paper
  // applied to its B/C campaigns (Figure 4: 51 / 81 / 176 functions).
  static const std::vector<std::string> functions = {
      "pipe_read",  "pipe_write", "sys_read",
      "sys_write",  "sys_unlink", "do_generic_file_read",
      "free_pages", "schedule",   "kfs_alloc_block",
  };
  return functions;
}

}  // namespace

inject::CampaignConfig smoke_config(Campaign campaign) {
  inject::CampaignConfig config;
  config.campaign = campaign;
  switch (campaign) {
    case Campaign::RandomNonBranch:
      config.functions = smoke_functions();
      break;
    case Campaign::RegisterFile:
    case Campaign::KernelData:
      // One fault per instruction site, so the narrow A-list holds the
      // register and data smoke campaigns to a few dozen runs each.
      config.functions = smoke_functions();
      break;
    case Campaign::SyscallErrno:
      // Campaign F's "functions" are workload names; the syscall
      // workload issues the densest exit stream per simulated cycle.
      config.functions = {"syscall"};
      break;
    default:
      config.functions = smoke_branch_functions();
      break;
  }
  config.repeats = 1;
  config.seed = 2003;
  config.threads = 1;
  return config;
}

ShapeReport evaluate_smoke(const CampaignRun& a, const CampaignRun& c) {
  ShapeReport report;

  // Smoke-scale bands: the runs are deterministic (fixed seed and
  // function list), so the bands only need to absorb legitimate
  // substrate evolution, not sampling noise.
  OutcomeShape outcome_a;
  outcome_a.name = "smoke.A";
  outcome_a.activated = {0.70, 1.0};
  outcome_a.not_manifested = {0.05, 0.45};
  outcome_a.fail_silence = {0.02, 0.40};
  outcome_a.crash_hang = {0.35, 0.85};
  outcome_a.expect_crash_hang_dominant = true;
  report.add(outcome_a.evaluate(analysis::make_outcome_table(a)));

  CauseShape causes_a;
  causes_a.name = "smoke.A";
  causes_a.top4 = {0.90, 1.0};
  report.add(causes_a.evaluate(analysis::make_crash_causes(a)));

  OutcomeShape outcome_c;
  outcome_c.name = "smoke.C";
  outcome_c.activated = {0.70, 1.0};
  outcome_c.not_manifested = {0.0, 0.45};
  outcome_c.fail_silence = {0.30, 0.90};
  outcome_c.crash_hang = {0.02, 0.45};
  outcome_c.expect_fail_silence_dominant = true;
  report.add(outcome_c.evaluate(analysis::make_outcome_table(c)));

  CauseShape causes_c;
  causes_c.name = "smoke.C";
  causes_c.top4 = {0.90, 1.0};
  causes_c.dominant_cause = CrashCause::InvalidOpcode;
  causes_c.dominant_share = {0.25, 1.0};
  report.add(causes_c.evaluate(analysis::make_crash_causes(c)));

  PropagationShape prop_a{"smoke.A.fs", {0.75, 1.0}, 10};
  report.add(prop_a.evaluate(analysis::make_propagation(a, Subsystem::Fs)));

  report.add(check_argmax(
      "smoke.cross.c_fail_silence_highest",
      {{"A", outcome_share(a, inject::Outcome::FailSilenceViolation)},
       {"C", outcome_share(c, inject::Outcome::FailSilenceViolation)}},
      "C", "reversed guards report errors for correct requests"));
  return report;
}

ShapeReport evaluate_smoke_extended(const CampaignRun& d,
                                    const CampaignRun& e,
                                    const CampaignRun& f) {
  ShapeReport report;

  // Campaign D: register faults trigger on covered sites, so most
  // activate; many flips land in dead registers or bits the next write
  // clobbers, so not-manifested runs well above the instruction
  // campaigns (the CHAOS-style register campaigns saw the same).
  OutcomeShape outcome_d;
  outcome_d.name = "smoke.D";
  outcome_d.activated = {0.75, 1.0};
  outcome_d.not_manifested = {0.55, 0.92};
  outcome_d.fail_silence = {0.0, 0.25};
  outcome_d.crash_hang = {0.05, 0.45};
  report.add(outcome_d.evaluate(analysis::make_outcome_table(d)));

  // Campaign E: data faults land on bytes the golden run demonstrably
  // wrote, so activation is structural; a single flipped data bit is
  // frequently overwritten before it is read, so not-manifested
  // dominates (the paper's "error not consumed" observation).
  OutcomeShape outcome_e;
  outcome_e.name = "smoke.E";
  outcome_e.activated = {0.75, 1.0};
  outcome_e.not_manifested = {0.70, 1.0};
  outcome_e.fail_silence = {0.0, 0.30};
  outcome_e.crash_hang = {0.0, 0.20};
  report.add(outcome_e.evaluate(analysis::make_outcome_table(e)));

  // Campaign F: every target is a real golden syscall exit, so
  // activation is total; a forced errno on a previously-successful
  // syscall visibly changes workload output (fail silence) far more
  // often than it crashes the kernel — the kernel itself stays sane,
  // the workload is what gets lied to.
  CascadeShape cascade_f;
  cascade_f.name = "smoke.F";
  cascade_f.activated = {0.95, 1.0};
  cascade_f.fail_silence = {0.25, 0.75};
  cascade_f.cascade_rate = {0.0, 0.50};
  report.add(cascade_f.evaluate(analysis::make_cascade(f)));

  report.add(check_argmax(
      "smoke.cross.f_kernel_survives",
      {{"F.crash_hang", outcome_share(f, inject::Outcome::DumpedCrash) +
                            outcome_share(f, inject::Outcome::HangUnknown)},
       {"F.survived", outcome_share(f, inject::Outcome::NotManifested) +
                          outcome_share(f, inject::Outcome::FailSilenceViolation)}},
      "F.survived",
      "an errno at the syscall boundary corrupts no kernel state, so the"
      " kernel itself keeps running"));
  return report;
}

}  // namespace kfi::check
