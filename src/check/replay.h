// Deterministic single-run replay (the paper's injector property that
// every run is reproducible, promoted to a checked API).
//
// A persisted .kfi file records, for every injection, both the spec
// (function, instruction, byte, bit, workload) and the classified
// result.  Because the injector is deterministic — the machine is
// snapshot-restored between runs and the only stochastic input is the
// campaign Rng — re-executing a recorded spec on a fresh machine must
// reproduce the recorded result bit-for-bit, and regenerating the
// target list from (campaign, seed, repeats) must reproduce the
// recorded specs.  Together these make (campaign, seed, index) a
// complete coordinate for any historical run.
#pragma once

#include <string>
#include <vector>

#include "inject/campaign.h"
#include "inject/injector.h"

namespace kfi::check {

// One field that failed to reproduce.
struct FieldDiff {
  std::string field;
  std::string recorded;
  std::string replayed;
};

// Field-by-field comparison of two results (every persisted field).
std::vector<FieldDiff> diff_results(const inject::InjectionResult& recorded,
                                    const inject::InjectionResult& replayed);

// Spec-only comparison (used to prove target-list regeneration).
std::vector<FieldDiff> diff_specs(const inject::InjectionSpec& recorded,
                                  const inject::InjectionSpec& regenerated);

struct ReplayOutcome {
  std::size_t index = 0;
  inject::InjectionResult recorded;
  inject::InjectionResult replayed;
  std::vector<FieldDiff> diffs;

  bool identical() const { return diffs.empty(); }
};

// Re-executes the recorded injection at `index` and diffs the outcome.
ReplayOutcome replay_one(inject::Injector& injector,
                         const inject::CampaignRun& run, std::size_t index);

// Picks up to `max_per_outcome` result indices per outcome category
// (one crash, one not-manifested, one fail-silence violation, ... for
// max_per_outcome = 1), preferring distinct outcome coverage.
std::vector<std::size_t> sample_indices(const inject::CampaignRun& run,
                                        std::size_t max_per_outcome);

struct ReplayReport {
  std::vector<ReplayOutcome> replays;
  // Spec mismatches against the regenerated target list (empty when the
  // regeneration check was not requested or everything matched).
  std::vector<std::pair<std::size_t, std::vector<FieldDiff>>> spec_mismatches;

  std::size_t identical_count() const;
  bool all_identical() const {
    return identical_count() == replays.size() && spec_mismatches.empty();
  }
};

// Replays a sample of the persisted run (up to `max_per_outcome`
// representatives of each outcome category).  Callers that know the
// original (campaign, seed, repeats) additionally verify the sampled
// specs against inject::campaign_targets() via diff_specs() and record
// mismatches in `spec_mismatches`.
ReplayReport replay_samples(inject::Injector& injector,
                            const inject::CampaignRun& run,
                            std::size_t max_per_outcome);

std::string render_replay(const ReplayReport& report);

// ---- schedule independence ----

// Index-by-index comparison of two campaign result vectors (e.g. the
// same campaign run with threads=1 and threads=N — campaign.h's
// contract that results are identical regardless of thread count).
struct RunComparison {
  std::size_t compared = 0;
  bool size_mismatch = false;
  std::vector<std::pair<std::size_t, std::vector<FieldDiff>>> mismatches;

  bool identical() const { return !size_mismatch && mismatches.empty(); }
};

RunComparison compare_runs(const inject::CampaignRun& x,
                           const inject::CampaignRun& y);

}  // namespace kfi::check
