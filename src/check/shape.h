// Shape oracles: machine-checkable predicates over campaign aggregates.
//
// EXPERIMENTS.md records which *shape* properties of the paper's
// figures transfer to this substrate (which outcome dominates where,
// the dominant crash causes, propagation locality, ...).  This module
// turns those prose claims into executable assertions with explicit
// tolerance bands, so a refactor of the VM or campaign engine that
// silently shifts a distribution fails a test instead of a reader's
// eyeball.  The concrete expectations live in check/expectations.cc;
// this header is the predicate vocabulary they are written in.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/aggregate.h"

namespace kfi::check {

// Inclusive tolerance band on a statistic (shares are fractions 0..1).
struct Band {
  double lo = 0.0;
  double hi = 1.0;

  bool contains(double value) const { return value >= lo && value <= hi; }
};

// One evaluated oracle.  `oracle` is the stable name EXPERIMENTS.md
// documents (e.g. "A.crash_hang_dominates"); `detail` is the
// human-readable explanation printed on failure.
struct CheckResult {
  std::string oracle;
  bool pass = false;
  double observed = 0.0;
  Band expected;
  std::string detail;
};

struct ShapeReport {
  std::vector<CheckResult> checks;

  bool all_pass() const;
  std::size_t failures() const;
  void add(CheckResult result) { checks.push_back(std::move(result)); }
  void add(std::vector<CheckResult> results);
};

// One line per oracle: PASS/FAIL, observed value, expected band.
std::string render_report(const ShapeReport& report);

// ---- primitive predicates ----

// observed within band.
CheckResult check_band(const std::string& oracle, double observed, Band band,
                       const std::string& detail);

// The entry named `expected_winner` holds the strictly largest value.
CheckResult check_argmax(
    const std::string& oracle,
    const std::vector<std::pair<std::string, double>>& entries,
    const std::string& expected_winner, const std::string& detail);

// The entry named `expected_loser` holds the strictly smallest value.
CheckResult check_argmin(
    const std::string& oracle,
    const std::vector<std::pair<std::string, double>>& entries,
    const std::string& expected_loser, const std::string& detail);

// ---- shape oracles over analysis aggregates ----

// Figure 4 shape for one campaign: outcome shares over activated
// errors, plus the structural claims (which category dominates).
struct OutcomeShape {
  std::string name;  // oracle prefix, e.g. "A"
  Band activated;        // activated / injected
  Band not_manifested;   // not manifested / activated
  Band fail_silence;     // fail-silence violations / activated
  Band crash_hang;       // crash + hang / activated
  // Structural claims (evaluated only when set):
  bool expect_crash_hang_dominant = false;   // largest activated category
  bool expect_fail_silence_dominant = false;

  std::vector<CheckResult> evaluate(const analysis::OutcomeTable& table) const;
};

// Figure 6 shape for one campaign: the four dominant causes cover
// `top4`, and optionally one cause is the plurality within `dominant`.
struct CauseShape {
  std::string name;
  Band top4;
  std::optional<inject::CrashCause> dominant_cause;
  Band dominant_share;

  std::vector<CheckResult> evaluate(
      const analysis::CrashCauseDistribution& dist) const;
};

// Figure 8 shape for one faulted subsystem: crashes stay local.
struct PropagationShape {
  std::string name;  // e.g. "A.fs"
  Band self_share;   // crashes inside the faulted subsystem
  // Minimum crash count for the claim to be statistically meaningful;
  // below it the oracle records an automatic pass with a note.
  std::uint64_t min_crashes = 10;

  std::vector<CheckResult> evaluate(
      const analysis::PropagationGraph& graph) const;
};

// Table 5 / §7.1 shape: severity rates over activated errors, and the
// taxonomy's internal consistency (every severe case repairable).
struct SeverityShape {
  std::string name;
  Band severe_rate;       // severe / activated
  Band most_severe_rate;  // most severe / activated
  bool expect_severe_repair_verified = true;

  std::vector<CheckResult> evaluate(
      const inject::CampaignRun& run,
      const analysis::SeveritySummary& summary) const;
};

// Campaign F shape: every errno target lands on a real golden syscall
// exit (activation is structural, not probabilistic), and the forced
// failure's downstream cascade stays within the band.
struct CascadeShape {
  std::string name;
  Band activated;     // activated / injected
  Band fail_silence;  // fail-silence violations / activated
  Band cascade_rate;  // cascaded failures / post-injection syscalls
  // When set, at least one activated injection must have produced a
  // non-empty cascade (the errno visibly propagated).
  bool expect_some_cascade = false;

  std::vector<CheckResult> evaluate(const analysis::CascadeTable& table) const;
};

// Share of dumped crashes with latency <= `within_cycles` (Figure 7's
// "crashes within 10 cycles" statistic).
double short_latency_share(const inject::CampaignRun& run,
                           std::uint64_t within_cycles);

}  // namespace kfi::check
