// The expected-shape registry: EXPERIMENTS.md's load-bearing claims
// encoded as kfi::check oracles with explicit tolerance bands.
//
// Two scales:
//   * full  — the default-scale campaigns (12,157 A + 742 B + 285 C
//     injections at seed 2003); bands bracket the measured values in
//     EXPERIMENTS.md wide enough to absorb benign drift but tight
//     enough that a distribution-shifting regression fails.
//   * smoke — a deterministic sub-minute campaign over a fixed list of
//     hot functions, for tier-1 ctest; bands are looser because the
//     statistics ride on a few hundred injections.
//
// The oracle-name <-> claim mapping is documented in EXPERIMENTS.md
// ("Machine-checked shapes").
#pragma once

#include "check/shape.h"

namespace kfi::check {

// Everything asserted about one campaign's aggregates.
struct CampaignExpectations {
  OutcomeShape outcome;
  CauseShape causes;
  std::vector<PropagationShape> propagation;  // paired with `propagation_from`
  std::vector<kernel::Subsystem> propagation_from;
  SeverityShape severity;
};

struct ShapeExpectations {
  CampaignExpectations a;
  CampaignExpectations b;
  CampaignExpectations c;
};

// Full-scale expectations (EXPERIMENTS.md figures 4/6/8, Table 5).
ShapeExpectations full_expectations();

// Evaluates one campaign run against its expectations.
ShapeReport evaluate_campaign(const inject::CampaignRun& run,
                              const CampaignExpectations& expected);

// Evaluates the three campaigns plus the cross-campaign orderings the
// paper calls out: B has the highest not-manifested rate, C the highest
// fail-silence rate, C the longest crash latencies, and C the smallest
// paging-request share.
ShapeReport evaluate_full(const inject::CampaignRun& a,
                          const inject::CampaignRun& b,
                          const inject::CampaignRun& c);

// ---- tier-1 smoke scale ----

// The fixed function list the smoke campaigns inject into: hot
// functions spanning fs / kernel / mm with known crash, fail-silence,
// and assertion sites.
const std::vector<std::string>& smoke_functions();

// Campaign config for a smoke run (fixed seed, fixed functions,
// threads=1 so tier-1 results are identical everywhere).
inject::CampaignConfig smoke_config(inject::Campaign campaign);

// Evaluates smoke runs of campaigns A and C (the two ends of the
// random-bit vs. reversed-branch spectrum).
ShapeReport evaluate_smoke(const inject::CampaignRun& a,
                           const inject::CampaignRun& c);

// Evaluates smoke runs of the fault-model campaigns: D (register-file
// bit flips), E (kernel-data bit flips), F (syscall errno injection).
ShapeReport evaluate_smoke_extended(const inject::CampaignRun& d,
                                    const inject::CampaignRun& e,
                                    const inject::CampaignRun& f);

}  // namespace kfi::check
