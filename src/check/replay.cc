#include "check/replay.h"

#include <map>

#include "support/strings.h"

namespace kfi::check {

namespace {

using inject::InjectionResult;
using inject::InjectionSpec;

void diff_field(std::vector<FieldDiff>& diffs, const char* field,
                std::uint64_t recorded, std::uint64_t replayed) {
  if (recorded == replayed) return;
  diffs.push_back({field, format("%llu", (unsigned long long)recorded),
                   format("%llu", (unsigned long long)replayed)});
}

void diff_field(std::vector<FieldDiff>& diffs, const char* field,
                const std::string& recorded, const std::string& replayed) {
  if (recorded == replayed) return;
  diffs.push_back({field, recorded, replayed});
}

}  // namespace

std::vector<FieldDiff> diff_specs(const InjectionSpec& recorded,
                                  const InjectionSpec& regenerated) {
  std::vector<FieldDiff> diffs;
  diff_field(diffs, "spec.campaign", static_cast<std::uint64_t>(recorded.campaign),
             static_cast<std::uint64_t>(regenerated.campaign));
  diff_field(diffs, "spec.function", recorded.function, regenerated.function);
  diff_field(diffs, "spec.subsystem",
             static_cast<std::uint64_t>(recorded.subsystem),
             static_cast<std::uint64_t>(regenerated.subsystem));
  diff_field(diffs, "spec.instr_addr", recorded.instr_addr,
             regenerated.instr_addr);
  diff_field(diffs, "spec.instr_len", recorded.instr_len,
             regenerated.instr_len);
  diff_field(diffs, "spec.byte_index", recorded.byte_index,
             regenerated.byte_index);
  diff_field(diffs, "spec.bit_index", recorded.bit_index,
             regenerated.bit_index);
  diff_field(diffs, "spec.workload", recorded.workload, regenerated.workload);
  return diffs;
}

std::vector<FieldDiff> diff_results(const InjectionResult& recorded,
                                    const InjectionResult& replayed) {
  std::vector<FieldDiff> diffs = diff_specs(recorded.spec, replayed.spec);
  diff_field(diffs, "outcome", static_cast<std::uint64_t>(recorded.outcome),
             static_cast<std::uint64_t>(replayed.outcome));
  diff_field(diffs, "activation_cycle", recorded.activation_cycle,
             replayed.activation_cycle);
  diff_field(diffs, "cause", static_cast<std::uint64_t>(recorded.cause),
             static_cast<std::uint64_t>(replayed.cause));
  diff_field(diffs, "crash_eip", recorded.crash_eip, replayed.crash_eip);
  diff_field(diffs, "crash_addr", recorded.crash_addr, replayed.crash_addr);
  diff_field(diffs, "crash_subsystem",
             static_cast<std::uint64_t>(recorded.crash_subsystem),
             static_cast<std::uint64_t>(replayed.crash_subsystem));
  diff_field(diffs, "propagated", recorded.propagated ? 1 : 0,
             replayed.propagated ? 1 : 0);
  diff_field(diffs, "latency_cycles", recorded.latency_cycles,
             replayed.latency_cycles);
  diff_field(diffs, "severity", static_cast<std::uint64_t>(recorded.severity),
             static_cast<std::uint64_t>(replayed.severity));
  diff_field(diffs, "fs_damaged", recorded.fs_damaged ? 1 : 0,
             replayed.fs_damaged ? 1 : 0);
  diff_field(diffs, "bootable", recorded.bootable ? 1 : 0,
             replayed.bootable ? 1 : 0);
  diff_field(diffs, "repair_verified", recorded.repair_verified ? 1 : 0,
             replayed.repair_verified ? 1 : 0);
  diff_field(diffs, "disasm_before", recorded.disasm_before,
             replayed.disasm_before);
  diff_field(diffs, "disasm_after", recorded.disasm_after,
             replayed.disasm_after);
  return diffs;
}

ReplayOutcome replay_one(inject::Injector& injector,
                         const inject::CampaignRun& run, std::size_t index) {
  ReplayOutcome outcome;
  outcome.index = index;
  outcome.recorded = run.results[index];
  outcome.replayed = injector.run_one(outcome.recorded.spec);
  outcome.diffs = diff_results(outcome.recorded, outcome.replayed);
  return outcome;
}

std::vector<std::size_t> sample_indices(const inject::CampaignRun& run,
                                        std::size_t max_per_outcome) {
  std::map<inject::Outcome, std::size_t> taken;
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    std::size_t& count = taken[run.results[i].outcome];
    if (count >= max_per_outcome) continue;
    ++count;
    indices.push_back(i);
  }
  return indices;
}

std::size_t ReplayReport::identical_count() const {
  std::size_t n = 0;
  for (const ReplayOutcome& replay : replays) {
    if (replay.identical()) ++n;
  }
  return n;
}

ReplayReport replay_samples(inject::Injector& injector,
                            const inject::CampaignRun& run,
                            std::size_t max_per_outcome) {
  ReplayReport report;
  for (const std::size_t index : sample_indices(run, max_per_outcome)) {
    report.replays.push_back(replay_one(injector, run, index));
  }
  return report;
}

std::string render_replay(const ReplayReport& report) {
  std::string out;
  for (const ReplayOutcome& replay : report.replays) {
    out += format("  [%s] #%zu %s @%s byte %u bit %u (%s) -> %s\n",
                  replay.identical() ? "PASS" : "FAIL", replay.index,
                  replay.recorded.spec.function.c_str(),
                  hex32(replay.recorded.spec.instr_addr).c_str(),
                  replay.recorded.spec.byte_index,
                  replay.recorded.spec.bit_index,
                  replay.recorded.spec.workload.c_str(),
                  std::string(inject::outcome_name(replay.recorded.outcome))
                      .c_str());
    for (const FieldDiff& diff : replay.diffs) {
      out += format("         %-16s recorded %s, replayed %s\n",
                    diff.field.c_str(), diff.recorded.c_str(),
                    diff.replayed.c_str());
    }
  }
  for (const auto& [index, diffs] : report.spec_mismatches) {
    out += format("  [FAIL] #%zu spec does not regenerate:\n", index);
    for (const FieldDiff& diff : diffs) {
      out += format("         %-16s recorded %s, regenerated %s\n",
                    diff.field.c_str(), diff.recorded.c_str(),
                    diff.replayed.c_str());
    }
  }
  out += format("%zu of %zu replays identical\n", report.identical_count(),
                report.replays.size());
  return out;
}

RunComparison compare_runs(const inject::CampaignRun& x,
                           const inject::CampaignRun& y) {
  RunComparison comparison;
  if (x.results.size() != y.results.size()) {
    comparison.size_mismatch = true;
    return comparison;
  }
  comparison.compared = x.results.size();
  for (std::size_t i = 0; i < x.results.size(); ++i) {
    std::vector<FieldDiff> diffs = diff_results(x.results[i], y.results[i]);
    if (!diffs.empty()) {
      comparison.mismatches.emplace_back(i, std::move(diffs));
    }
  }
  return comparison;
}

}  // namespace kfi::check
