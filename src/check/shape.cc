#include "check/shape.h"

#include "support/strings.h"

namespace kfi::check {

namespace {

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

std::string entries_text(
    const std::vector<std::pair<std::string, double>>& entries) {
  std::string out;
  for (const auto& [label, value] : entries) {
    if (!out.empty()) out += ", ";
    out += format("%s=%.3f", label.c_str(), value);
  }
  return out;
}

}  // namespace

bool ShapeReport::all_pass() const { return failures() == 0; }

std::size_t ShapeReport::failures() const {
  std::size_t n = 0;
  for (const CheckResult& check : checks) {
    if (!check.pass) ++n;
  }
  return n;
}

void ShapeReport::add(std::vector<CheckResult> results) {
  for (CheckResult& result : results) checks.push_back(std::move(result));
}

std::string render_report(const ShapeReport& report) {
  std::string out;
  for (const CheckResult& check : report.checks) {
    out += format("  [%s] %-34s observed %.3f  expected [%.3f, %.3f]",
                  check.pass ? "PASS" : "FAIL", check.oracle.c_str(),
                  check.observed, check.expected.lo, check.expected.hi);
    if (!check.pass && !check.detail.empty()) {
      out += format("  -- %s", check.detail.c_str());
    }
    out += "\n";
  }
  out += format("%zu oracles, %zu failed\n", report.checks.size(),
                report.failures());
  return out;
}

CheckResult check_band(const std::string& oracle, double observed, Band band,
                       const std::string& detail) {
  CheckResult result;
  result.oracle = oracle;
  result.observed = observed;
  result.expected = band;
  result.pass = band.contains(observed);
  result.detail = detail;
  return result;
}

CheckResult check_argmax(
    const std::string& oracle,
    const std::vector<std::pair<std::string, double>>& entries,
    const std::string& expected_winner, const std::string& detail) {
  CheckResult result;
  result.oracle = oracle;
  result.expected = Band{1.0, 1.0};  // "is the winner" as a boolean
  const std::pair<std::string, double>* winner = nullptr;
  double winner_value = 0.0;
  bool tie = false;
  for (const auto& entry : entries) {
    if (winner == nullptr || entry.second > winner_value) {
      winner = &entry;
      winner_value = entry.second;
      tie = false;
    } else if (entry.second == winner_value && entry.first != winner->first) {
      tie = true;
    }
  }
  result.pass =
      winner != nullptr && !tie && winner->first == expected_winner;
  result.observed = result.pass ? 1.0 : 0.0;
  result.detail = format("%s; expected '%s' largest (%s)", detail.c_str(),
                         expected_winner.c_str(),
                         entries_text(entries).c_str());
  return result;
}

CheckResult check_argmin(
    const std::string& oracle,
    const std::vector<std::pair<std::string, double>>& entries,
    const std::string& expected_loser, const std::string& detail) {
  std::vector<std::pair<std::string, double>> negated;
  negated.reserve(entries.size());
  for (const auto& [label, value] : entries) negated.emplace_back(label, -value);
  CheckResult result = check_argmax(oracle, negated, expected_loser, detail);
  result.detail = format("%s; expected '%s' smallest (%s)", detail.c_str(),
                         expected_loser.c_str(),
                         entries_text(entries).c_str());
  return result;
}

std::vector<CheckResult> OutcomeShape::evaluate(
    const analysis::OutcomeTable& table) const {
  std::vector<CheckResult> checks;
  const analysis::OutcomeRow& total = table.total;
  const double nm = ratio(total.not_manifested, total.activated);
  const double fsv = ratio(total.fail_silence, total.activated);
  const double ch = ratio(total.crash_hang, total.activated);

  checks.push_back(check_band(
      name + ".activated", ratio(total.activated, total.injected), activated,
      format("%s activated of %s injected", with_commas(total.activated).c_str(),
             with_commas(total.injected).c_str())));
  checks.push_back(check_band(
      name + ".not_manifested", nm, not_manifested,
      format("%s of %s activated", with_commas(total.not_manifested).c_str(),
             with_commas(total.activated).c_str())));
  checks.push_back(check_band(
      name + ".fail_silence", fsv, fail_silence,
      format("%s of %s activated", with_commas(total.fail_silence).c_str(),
             with_commas(total.activated).c_str())));
  checks.push_back(check_band(
      name + ".crash_hang", ch, crash_hang,
      format("%s of %s activated", with_commas(total.crash_hang).c_str(),
             with_commas(total.activated).c_str())));

  const std::vector<std::pair<std::string, double>> shares = {
      {"not_manifested", nm}, {"fail_silence", fsv}, {"crash_hang", ch}};
  if (expect_crash_hang_dominant) {
    checks.push_back(check_argmax(name + ".crash_hang_dominates", shares,
                                  "crash_hang",
                                  "Figure 4 outcome distribution"));
  }
  if (expect_fail_silence_dominant) {
    checks.push_back(check_argmax(name + ".fail_silence_dominates", shares,
                                  "fail_silence",
                                  "Figure 4 outcome distribution"));
  }
  return checks;
}

std::vector<CheckResult> CauseShape::evaluate(
    const analysis::CrashCauseDistribution& dist) const {
  std::vector<CheckResult> checks;
  checks.push_back(check_band(
      name + ".top4_causes", dist.top4_share(), top4,
      format("NULL-pointer + paging + invalid-op + GP over %s crashes",
             with_commas(dist.total).c_str())));
  if (dominant_cause.has_value()) {
    std::vector<std::pair<std::string, double>> entries;
    double dominant_observed = 0.0;
    for (const auto& [cause, count] : dist.counts) {
      const double share = ratio(count, dist.total);
      entries.emplace_back(std::string(inject::crash_cause_short_name(cause)),
                          share);
      if (cause == *dominant_cause) dominant_observed = share;
    }
    const std::string label(inject::crash_cause_short_name(*dominant_cause));
    checks.push_back(check_argmax(name + "." + label + "_plurality", entries,
                                  label, "Figure 6 crash-cause distribution"));
    checks.push_back(check_band(name + "." + label + "_share",
                                dominant_observed, dominant_share,
                                "share of dumped crashes"));
  }
  return checks;
}

std::vector<CheckResult> PropagationShape::evaluate(
    const analysis::PropagationGraph& graph) const {
  std::vector<CheckResult> checks;
  CheckResult result;
  if (graph.total_crashes < min_crashes) {
    result = check_band(
        name + ".self_propagation", 1.0, Band{0.0, 1.0},
        format("only %s crashes (< %s needed); skipped",
               with_commas(graph.total_crashes).c_str(),
               with_commas(min_crashes).c_str()));
  } else {
    result = check_band(
        name + ".self_propagation", graph.self_share(), self_share,
        format("crashes staying in the faulted subsystem, of %s",
               with_commas(graph.total_crashes).c_str()));
  }
  checks.push_back(std::move(result));
  return checks;
}

std::vector<CheckResult> SeverityShape::evaluate(
    const inject::CampaignRun& run,
    const analysis::SeveritySummary& summary) const {
  std::vector<CheckResult> checks;
  std::uint64_t activated = 0;
  for (const inject::InjectionResult& r : run.results) {
    if (r.outcome != inject::Outcome::NotActivated) ++activated;
  }
  checks.push_back(check_band(
      name + ".severe_rate", ratio(summary.severe, activated), severe_rate,
      format("%s severe of %s activated", with_commas(summary.severe).c_str(),
             with_commas(activated).c_str())));
  checks.push_back(check_band(
      name + ".most_severe_rate", ratio(summary.most_severe, activated),
      most_severe_rate,
      format("%s most-severe of %s activated",
             with_commas(summary.most_severe).c_str(),
             with_commas(activated).c_str())));
  if (expect_severe_repair_verified) {
    std::uint64_t verified = 0;
    for (const std::size_t index : summary.severe_indices) {
      if (run.results[index].repair_verified) ++verified;
    }
    checks.push_back(check_band(
        name + ".severe_repairable",
        summary.severe == 0 ? 1.0 : ratio(verified, summary.severe),
        Band{1.0, 1.0},
        format("%s of %s severe cases verified repairable by fsck_repair",
               with_commas(verified).c_str(),
               with_commas(summary.severe).c_str())));
  }
  return checks;
}

std::vector<CheckResult> CascadeShape::evaluate(
    const analysis::CascadeTable& table) const {
  std::vector<CheckResult> checks;
  const analysis::CascadeRow& total = table.total;
  checks.push_back(check_band(
      name + ".activated", ratio(total.activated, total.injected), activated,
      format("%s activated of %s injected",
             with_commas(total.activated).c_str(),
             with_commas(total.injected).c_str())));
  checks.push_back(check_band(
      name + ".fail_silence", ratio(total.fail_silence, total.activated),
      fail_silence,
      format("%s of %s activated", with_commas(total.fail_silence).c_str(),
             with_commas(total.activated).c_str())));
  checks.push_back(check_band(
      name + ".cascade_rate", ratio(total.total_cascade, total.total_after),
      cascade_rate,
      format("%s cascaded of %s post-injection syscalls",
             with_commas(total.total_cascade).c_str(),
             with_commas(total.total_after).c_str())));
  if (expect_some_cascade) {
    checks.push_back(check_band(
        name + ".some_cascade", total.max_cascade > 0 ? 1.0 : 0.0,
        Band{1.0, 1.0},
        "at least one injection must visibly cascade (max_cascade > 0)"));
  }
  return checks;
}

double short_latency_share(const inject::CampaignRun& run,
                           std::uint64_t within_cycles) {
  std::uint64_t crashes = 0;
  std::uint64_t quick = 0;
  for (const inject::InjectionResult& r : run.results) {
    if (r.outcome != inject::Outcome::DumpedCrash) continue;
    ++crashes;
    if (r.latency_cycles <= within_cycles) ++quick;
  }
  return ratio(quick, crashes);
}

}  // namespace kfi::check
