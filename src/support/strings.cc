#include "support/strings.h"

#include <cstdarg>
#include <cstdio>

namespace kfi {

std::string hex32(std::uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", value);
  return buf;
}

std::string hex32_prefixed(std::uint32_t value) {
  return "0x" + hex32(value);
}

std::string hex_bytes(const std::uint8_t* data, std::size_t size) {
  std::string out;
  out.reserve(size * 3);
  for (std::size_t i = 0; i < size; ++i) {
    char buf[4];
    std::snprintf(buf, sizeof buf, "%02x", data[i]);
    if (i != 0) out.push_back(' ');
    out += buf;
  }
  return out;
}

std::string hex_bytes(const std::vector<std::uint8_t>& bytes) {
  return hex_bytes(bytes.data(), bytes.size());
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t' ||
                           text.front() == '\r' || text.front() == '\n')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r' || text.back() == '\n')) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool parse_u64(std::string_view text, std::uint64_t& out,
               std::uint64_t min_value, std::uint64_t max_value) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  if (value < min_value || value > max_value) return false;
  out = value;
  return true;
}

bool parse_jobs(std::string_view text, unsigned& out) {
  std::uint64_t value = 0;
  if (!parse_u64(text, value, 1, 1024)) return false;
  out = static_cast<unsigned>(value);
  return true;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string percent(double numerator, double denominator) {
  if (denominator <= 0.0) return "0.0%";
  return format("%.1f%%", 100.0 * numerator / denominator);
}

}  // namespace kfi
