// Small string utilities shared across modules: hex formatting in the
// style of kernel oops messages, splitting, trimming and printf-style
// formatting into std::string.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kfi {

// "c0130a33" — lowercase, zero-padded 8 digits, as Linux prints EIPs.
std::string hex32(std::uint32_t value);

// "0xc0130a33"
std::string hex32_prefixed(std::uint32_t value);

// "74 56" — space-separated lowercase byte dump.
std::string hex_bytes(const std::uint8_t* data, std::size_t size);
std::string hex_bytes(const std::vector<std::uint8_t>& bytes);

// printf into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::vector<std::string> split(std::string_view text, char sep);
std::string_view trim(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);

// Strict whole-string base-10 parse into [min, max].  Returns false —
// leaving `out` untouched — on an empty string, any non-digit
// character (including sign, whitespace, and trailing junk), overflow,
// or a value outside the range.  The CLI's replacement for atoi, whose
// silent 0-on-garbage return turns typos into valid-looking inputs.
bool parse_u64(std::string_view text, std::uint64_t& out,
               std::uint64_t min_value = 0,
               std::uint64_t max_value = UINT64_MAX);

// Strict worker/thread-count parse for --jobs flags and the KFI_JOBS
// environment variable: parse_u64 semantics, range [1, 1024] (0 would
// silently serialize a sweep; four digits of workers is a typo, not a
// machine).  Returns false on anything else, leaving `out` untouched.
bool parse_jobs(std::string_view text, unsigned& out);

// "12,345" — thousands separators for table rendering.
std::string with_commas(std::uint64_t value);

// "12.3%" with one decimal, as the paper's tables print shares.
std::string percent(double numerator, double denominator);

}  // namespace kfi
