// Shared little-endian binary (de)serialization: the byte layout the
// campaign artifact cache (analysis/io), the golden-bundle files
// (serve/bundle), and the shard store (analysis/store) all speak.  A
// ByteWriter appends fixed-width integers and length-prefixed strings
// to an in-memory buffer; a ByteReader walks a const byte range with a
// sticky `ok` flag instead of exceptions, so a truncated or corrupt
// file degrades into one boolean check at the end of the parse.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace kfi {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

// FNV-1a over a byte range, continuing from `h` — the hash every
// content-addressed artifact name and every result digest is built on.
inline std::uint64_t fnv1a_bytes(const void* data, std::size_t len,
                                 std::uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    out_.append(reinterpret_cast<const char*>(&v), 4);
  }
  void u64(std::uint64_t v) {
    out_.append(reinterpret_cast<const char*>(&v), 8);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  void bytes(const void* data, std::size_t len) {
    out_.append(static_cast<const char*>(data), len);
  }

  const std::string& buffer() const { return out_; }
  std::string take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  ByteReader(const void* data, std::size_t size)
      : data_(static_cast<const std::uint8_t*>(data)), size_(size) {}
  explicit ByteReader(const std::string& data)
      : ByteReader(data.data(), data.size()) {}

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return data_[pos_ - 1];
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v;
    std::memcpy(&v, data_ + pos_ - 4, 4);
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v;
    std::memcpy(&v, data_ + pos_ - 8, 8);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    const std::uint8_t* p = bytes(n);
    return p != nullptr ? std::string(reinterpret_cast<const char*>(p), n)
                        : std::string();
  }
  // A view into the underlying buffer (no copy) — how mmap'd snapshot
  // payloads stay zero-copy.  Returns nullptr (and poisons `ok`) when
  // fewer than `len` bytes remain.
  const std::uint8_t* bytes(std::size_t len) {
    if (!take(len)) return nullptr;
    return data_ + pos_ - len;
  }

  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  bool take(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace kfi
