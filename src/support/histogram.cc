#include "support/histogram.h"

#include <cassert>

#include "support/strings.h"

namespace kfi {

Histogram::Histogram(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    assert(bounds_[i] > bounds_[i - 1] && "bounds must strictly increase");
  }
}

Histogram Histogram::latency_decades() {
  return Histogram({10, 100, 1000, 10000, 100000});
}

void Histogram::add(std::uint64_t value) {
  std::size_t bucket = bounds_.size();
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  assert(bounds_ == other.bounds_ && "incompatible histograms");
  assert(counts_.size() == other.counts_.size() && "incompatible histograms");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double Histogram::share(std::size_t bucket) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bucket)) /
         static_cast<double>(total_);
}

std::string Histogram::bucket_label(std::size_t bucket) const {
  if (bucket < bounds_.size()) {
    return "<=" + std::to_string(bounds_[bucket]);
  }
  // A histogram with no bounds has exactly one bucket covering
  // everything; bounds_.back() would be UB on the empty vector.
  if (bounds_.empty()) return "all";
  return ">" + std::to_string(bounds_.back());
}

}  // namespace kfi
