// Bucketed histogram used for the crash-latency distributions (Figure 7).
//
// The paper buckets latencies by decade of CPU cycles: <=10, <=100, ...,
// >100k.  Histogram is generic over explicit bucket upper bounds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kfi {

class Histogram {
 public:
  // `upper_bounds` must be strictly increasing; a final implicit
  // "overflow" bucket catches everything above the last bound.
  explicit Histogram(std::vector<std::uint64_t> upper_bounds);

  // The paper's latency decades: 10, 100, 1k, 10k, 100k (+ >100k).
  static Histogram latency_decades();

  void add(std::uint64_t value);
  void merge(const Histogram& other);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::uint64_t total() const { return total_; }
  double share(std::size_t bucket) const;

  // "<=10", "<=100", ..., ">100000"
  std::string bucket_label(std::size_t bucket) const;

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace kfi
