// Crash-safe file persistence and zero-copy file mapping.
//
// Every artifact the campaign service persists — golden bundles, shard
// results, manifests, campaign caches — goes through
// atomic_write_file(): the bytes land in a same-directory temp file,
// are fsync'd, and only then atomically renamed over the target, so a
// reader can never observe a half-written artifact and a crash leaves
// at worst a stray ".tmp" (which the next write replaces).  MappedFile
// is the read side: a read-only mmap whose pages are shared through
// the page cache between every process that maps the same bundle,
// which is what makes N forked campaign workers restore from one
// golden image without N copies.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace kfi {

// Writes `size` bytes to `path` via write-temp + fsync + atomic rename.
// On any failure the temp file is removed and `path` is untouched
// (either the old content or absent).  Returns false on failure.
bool atomic_write_file(const std::string& path, const void* data,
                       std::size_t size);
bool atomic_write_file(const std::string& path, const std::string& bytes);

// Whole-file read (small control files: manifests, claims).
std::optional<std::string> read_file_bytes(const std::string& path);

// FNV-1a over a file's content, streamed in fixed-size buffers so
// verification of a multi-megabyte artifact never holds it in RAM.
// Returns std::nullopt when the file cannot be read.
std::optional<std::uint64_t> file_content_hash(const std::string& path);

// A read-only memory mapping of a whole file.  The mapping lives until
// the object is destroyed; hand the shared_ptr to whatever borrows
// pointers into the file (view snapshots) as its keepalive.
class MappedFile {
 public:
  // Maps `path` read-only; nullptr on failure (missing, empty,
  // unmappable).
  static std::shared_ptr<const MappedFile> map(const std::string& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  MappedFile(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace kfi
