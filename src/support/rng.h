// Deterministic pseudo-random number generation for reproducible campaigns.
//
// Every stochastic choice in the framework (which bit to flip, sampling
// jitter, workload variation) draws from an Rng seeded explicitly by the
// caller, so an entire injection campaign can be replayed run-by-run.
#pragma once

#include <cstdint>

namespace kfi {

// xoshiro256** with a splitmix64 seeder.  Small, fast, well distributed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // splitmix64 to spread a small seed over the full state.
    auto next = [&seed]() noexcept {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint32_t next_u32() noexcept {
    return static_cast<std::uint32_t>(next_u64() >> 32);
  }

  // Uniform in [0, bound).  bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Rejection-free (biased < 2^-32 for our bounds) multiply-shift.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53 < p;
  }

  // A random bit index within a byte: [0, 7].
  int bit_in_byte() noexcept { return static_cast<int>(below(8)); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace kfi
