#include "support/fsio.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "support/serial.h"

namespace kfi {

bool atomic_write_file(const std::string& path, const void* data,
                       std::size_t size) {
  // The temp file must live in the target's directory: rename() is
  // atomic only within one filesystem, and landing next to the target
  // means a crash leaves the debris where the next write cleans it up.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;

  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t written = 0;
  bool ok = true;
  while (written < size) {
    const ssize_t n = ::write(fd, p + written, size - written);
    if (n <= 0) {
      ok = false;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must never become durable ahead of
  // the bytes it points at, or a crash could leave a truncated artifact
  // under the final (trusted) name.
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) ::unlink(tmp.c_str());
  return ok;
}

bool atomic_write_file(const std::string& path, const std::string& bytes) {
  return atomic_write_file(path, bytes.data(), bytes.size());
}

std::optional<std::string> read_file_bytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  if (!file.good() && !file.eof()) return std::nullopt;
  return data;
}

std::optional<std::uint64_t> file_content_hash(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::uint64_t h = kFnvOffset;
  char buffer[1 << 16];
  while (file) {
    file.read(buffer, sizeof buffer);
    const std::streamsize n = file.gcount();
    if (n > 0) h = fnv1a_bytes(buffer, static_cast<std::size_t>(n), h);
  }
  if (!file.eof()) return std::nullopt;
  return h;
}

std::shared_ptr<const MappedFile> MappedFile::map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return nullptr;
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return nullptr;
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (mapped == MAP_FAILED) return nullptr;
  return std::shared_ptr<const MappedFile>(
      new MappedFile(static_cast<const std::uint8_t*>(mapped), size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

}  // namespace kfi
