// Kernel build pipeline: MiniC/kasm sources -> linked kernel image.
//
// The image records per-function extents tagged by subsystem — the
// injector's targeting data and the propagation analysis's address map.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace kfi::kernel {

enum class Subsystem : std::uint8_t {
  Arch,
  Kernel,
  Mm,
  Fs,
  Drivers,
  Lib,
  Ipc,
  Net,
  Unknown,
};

std::string_view subsystem_name(Subsystem subsystem);

// Maps a kernel text address to its subsystem (Unknown outside kernel
// text) — the basis of the Figure 8 propagation attribution.
Subsystem subsystem_of_addr(std::uint32_t vaddr);

struct KernelFunction {
  std::string name;
  Subsystem subsystem = Subsystem::Unknown;
  std::uint32_t start = 0;  // virtual address
  std::uint32_t end = 0;
};

struct LoadSegment {
  std::uint32_t base = 0;
  std::vector<std::uint8_t> bytes;
};

struct KernelImage {
  std::vector<LoadSegment> segments;
  std::map<std::string, std::uint32_t> symbols;
  std::vector<KernelFunction> functions;

  std::uint32_t symbol(const std::string& name) const {
    const auto it = symbols.find(name);
    return it == symbols.end() ? 0 : it->second;
  }
  const KernelFunction* function(std::string_view name) const;
  const KernelFunction* function_at(std::uint32_t vaddr) const;

  // Source line counts per subsystem (for the Figure 1 reproduction).
  std::map<Subsystem, std::size_t> source_lines;
};

struct BuildResult {
  bool ok = false;
  KernelImage image;
  std::vector<std::string> errors;
};

// Build-time configuration.  `hardened_assertions` enables the extra
// assertion lines tagged `//H!` in the kernel sources — the paper's
// §7.4 recommendation of placing assertions at the propagation and
// fs-damage hot spots a campaign reveals.
struct KernelConfig {
  bool hardened_assertions = false;
};

// Compiles and links the whole kernel.  Deterministic; the result can
// be cached and shared by every machine instance.
BuildResult build_kernel(const KernelConfig& config = {});

// Shared singleton builds (the kernel never changes within a process).
const KernelImage& built_kernel();
const KernelImage& built_hardened_kernel();

}  // namespace kfi::kernel
