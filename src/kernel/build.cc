#include "kernel/build.h"

#include <cassert>
#include <stdexcept>

#include "kasm/assembler.h"
#include "kernel/constants.h"
#include "kernel/sources.h"
#include "minic/codegen.h"
#include "vm/layout.h"

namespace kfi::kernel {
namespace {

struct UnitSpec {
  Subsystem subsystem;
  const char* name;
  std::uint32_t text_base;
  std::uint32_t text_limit;
  std::uint32_t data_base;
  std::string (*minic)();
  std::string (*raw_asm)();  // optional extra kasm appended to the text
};

const UnitSpec kUnits[] = {
    {Subsystem::Arch, "arch", vm::kArchTextBase, vm::kKernTextBase,
     0xC0200000, arch_source, arch_asm_source},
    {Subsystem::Kernel, "kernel", vm::kKernTextBase, vm::kMmTextBase,
     0xC0204000, kernel_source, nullptr},
    {Subsystem::Mm, "mm", vm::kMmTextBase, vm::kFsTextBase, 0xC0210000,
     mm_source, nullptr},
    {Subsystem::Fs, "fs", vm::kFsTextBase, vm::kDriversTextBase, 0xC0218000,
     fs_source, nullptr},
    {Subsystem::Drivers, "drivers", vm::kDriversTextBase, vm::kLibTextBase,
     0xC0220000, drivers_source, nullptr},
    {Subsystem::Lib, "lib", vm::kLibTextBase, vm::kIpcTextBase, 0xC0224000,
     lib_source, nullptr},
    {Subsystem::Ipc, "ipc", vm::kIpcTextBase, vm::kNetTextBase, 0xC0228000,
     ipc_source, nullptr},
    {Subsystem::Net, "net", vm::kNetTextBase, vm::kTextEnd, 0xC022C000,
     net_source, nullptr},
};

std::size_t count_lines(const std::string& text) {
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

}  // namespace

std::string_view subsystem_name(Subsystem subsystem) {
  switch (subsystem) {
    case Subsystem::Arch: return "arch";
    case Subsystem::Kernel: return "kernel";
    case Subsystem::Mm: return "mm";
    case Subsystem::Fs: return "fs";
    case Subsystem::Drivers: return "drivers";
    case Subsystem::Lib: return "lib";
    case Subsystem::Ipc: return "ipc";
    case Subsystem::Net: return "net";
    case Subsystem::Unknown: return "unknown";
  }
  return "unknown";
}

Subsystem subsystem_of_addr(std::uint32_t vaddr) {
  for (const UnitSpec& unit : kUnits) {
    if (vaddr >= unit.text_base && vaddr < unit.text_limit) {
      return unit.subsystem;
    }
  }
  return Subsystem::Unknown;
}

const KernelFunction* KernelImage::function(std::string_view name) const {
  for (const KernelFunction& fn : functions) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

const KernelFunction* KernelImage::function_at(std::uint32_t vaddr) const {
  for (const KernelFunction& fn : functions) {
    if (vaddr >= fn.start && vaddr < fn.end) return &fn;
  }
  return nullptr;
}

namespace {

// Enables `//H! <stmt>` hardening lines when requested.
std::string apply_hardening(std::string source, bool hardened) {
  const std::string tag = "//H! ";
  std::size_t at = 0;
  while ((at = source.find(tag, at)) != std::string::npos) {
    if (hardened) {
      source.replace(at, tag.size(), "     ");
    } else {
      at += tag.size();
    }
  }
  return source;
}

}  // namespace

BuildResult build_kernel(const KernelConfig& config) {
  BuildResult result;
  const std::string preamble = kernel_constants_minic();

  std::vector<kasm::AsmUnit> units;
  struct PendingFuncs {
    Subsystem subsystem;
    std::size_t unit_index;
  };
  std::vector<PendingFuncs> pending;

  for (const UnitSpec& spec : kUnits) {
    const std::string source =
        apply_hardening(spec.minic(), config.hardened_assertions);
    minic::CompileResult compiled =
        minic::compile(preamble + source, spec.name);
    if (!compiled.ok) {
      for (const std::string& e : compiled.errors) {
        result.errors.push_back(std::string(spec.name) + ": " + e);
      }
      continue;
    }
    std::string text_asm = std::move(compiled.text_asm);
    if (spec.raw_asm != nullptr) {
      text_asm += "\n";
      text_asm += spec.raw_asm();
    }
    kasm::AsmResult text = kasm::assemble(text_asm, spec.text_base);
    if (!text.ok) {
      for (const std::string& e : text.errors) {
        result.errors.push_back(std::string(spec.name) + " text: " + e);
      }
      continue;
    }
    if (spec.text_base + text.unit.bytes.size() > spec.text_limit) {
      result.errors.push_back(std::string(spec.name) +
                              ": text overflows its region");
      continue;
    }
    kasm::AsmResult data = kasm::assemble(compiled.data_asm, spec.data_base);
    if (!data.ok) {
      for (const std::string& e : data.errors) {
        result.errors.push_back(std::string(spec.name) + " data: " + e);
      }
      continue;
    }

    pending.push_back({spec.subsystem, units.size()});
    units.push_back(std::move(text.unit));
    units.push_back(std::move(data.unit));
    result.image.source_lines[spec.subsystem] =
        count_lines(source) +
        (spec.raw_asm != nullptr ? count_lines(spec.raw_asm()) : 0);
  }
  if (!result.errors.empty()) return result;

  kasm::LinkResult linked = kasm::link(units);
  if (!linked.ok) {
    result.errors = std::move(linked.errors);
    return result;
  }

  result.image.symbols = std::move(linked.symbols);
  for (const PendingFuncs& p : pending) {
    const kasm::AsmUnit& unit = units[p.unit_index];
    for (const kasm::FuncRange& fn : unit.functions) {
      KernelFunction info;
      info.name = fn.name;
      info.subsystem = p.subsystem;
      info.start = unit.base + fn.start;
      info.end = unit.base + fn.end;
      result.image.functions.push_back(std::move(info));
    }
  }
  for (kasm::AsmUnit& unit : units) {
    if (unit.bytes.empty()) continue;
    result.image.segments.push_back({unit.base, std::move(unit.bytes)});
  }
  result.ok = true;
  return result;
}

namespace {

const KernelImage& built_with(const KernelConfig& config) {
  BuildResult result = build_kernel(config);
  if (!result.ok) {
    std::string message = "kernel build failed:\n";
    for (const std::string& e : result.errors) message += "  " + e + "\n";
    throw std::runtime_error(message);
  }
  static KernelImage* images[2] = {nullptr, nullptr};
  KernelImage*& slot = images[config.hardened_assertions ? 1 : 0];
  slot = new KernelImage(std::move(result.image));
  return *slot;
}

}  // namespace

const KernelImage& built_kernel() {
  static const KernelImage& image = built_with(KernelConfig{});
  return image;
}

const KernelImage& built_hardened_kernel() {
  static const KernelImage& image =
      built_with(KernelConfig{.hardened_assertions = true});
  return image;
}

}  // namespace kfi::kernel
