// arch/i386 — trap handlers, the page-fault handler, oops reporting
// (MiniC), plus the low-level entry stubs, context switch, and the
// system-call table (kasm).
#include "kernel/sources.h"

#include <cstdint>
#include <map>

#include "kernel/koffsets.h"
#include "support/strings.h"
#include "vm/layout.h"

namespace kfi::kernel {

std::string arch_source() {
  return R"MC(
extern current;

// ---- oops / die (arch/i386/kernel/traps.c) ----

func oops(cause, addr, eip) {
  if (cause == C_NULL) {
    printk("Unable to handle kernel NULL pointer dereference");
    printk(" at virtual address ");
    printk_hex(addr);
  }
  if (cause == C_PAGING) {
    printk("Unable to handle kernel paging request at virtual address ");
    printk_hex(addr);
  }
  if (cause == C_INVOP) { printk("kernel BUG: invalid opcode"); }
  if (cause == C_GP) { printk("general protection fault"); }
  if (cause == C_DIVIDE) { printk("divide error"); }
  printk("\n Oops: eip = ");
  printk_hex(eip);
  printk("\n");
  mem[CRASH_ADDR] = addr;
  mem[CRASH_EIP] = eip;
  mem[CRASH_CAUSE] = cause;
  while (1) { }
  return 0;
}

func kill_current(sig) {
  do_exit(128 + sig);
  return 0;
}

// Common fatal-trap path: user-mode traps kill the offending process,
// kernel-mode traps oops (and the host crash handler records the dump).
func die_if_kernel(frame, cause) {
  if (mem[frame + TF_CPL] == 3) {
    kill_current(cause);
    return 0;
  }
  oops(cause, mem[frame + TF_ADDR], mem[frame + TF_EIP]);
  return 0;
}

func do_divide_error(frame) { die_if_kernel(frame, C_DIVIDE); return 0; }
func do_int3(frame) { die_if_kernel(frame, C_INT3); return 0; }
func do_overflow(frame) { die_if_kernel(frame, C_OVF); return 0; }
func do_bounds(frame) { die_if_kernel(frame, C_BOUNDS); return 0; }
func do_invalid_op(frame) { die_if_kernel(frame, C_INVOP); return 0; }
func do_invalid_tss(frame) { die_if_kernel(frame, C_ITSS); return 0; }
func do_segment_not_present(frame) { die_if_kernel(frame, C_SEGNP); return 0; }
func do_stack_segment(frame) { die_if_kernel(frame, C_STACK); return 0; }
func do_general_protection(frame) { die_if_kernel(frame, C_GP); return 0; }

// ---- page faults (arch/i386/mm/fault.c) ----

func do_page_fault(frame) {
  var addr = mem[frame + TF_ADDR];
  var err = mem[frame + TF_ERR];
  var write = (err & 2) >> 1;
  if ((err & 4) != 0) {
    // Fault from user mode.
    if (handle_mm_fault(current, addr, write) == 0) { return 0; }
    kill_current(11);   // SIGSEGV
    return 0;
  }
  // Fault from kernel mode.  Touching user pages (copy_{to,from}_user,
  // COW break) is legal and repaired; anything else is an oops.
  if (addr <u KERNEL_BASE && addr >=u USER_TEXT) {
    if (handle_mm_fault(current, addr, write) == 0) { return 0; }
  }
  if (addr <u PAGE_SIZE) {
    oops(C_NULL, addr, mem[frame + TF_EIP]);
    return 0;
  }
  oops(C_PAGING, addr, mem[frame + TF_EIP]);
  return 0;
}
)MC";
}

std::string arch_asm_source() {
  std::string out;

  // Trap stubs: save all registers (pusha order), hand the trap frame to
  // the C handler, reschedule when returning to user mode.
  struct Stub {
    const char* label;
    const char* handler;
  };
  static constexpr Stub kStubs[] = {
      {"divide_error_entry", "do_divide_error"},
      {"int3_entry", "do_int3"},
      {"overflow_entry", "do_overflow"},
      {"bounds_entry", "do_bounds"},
      {"invalid_op_entry", "do_invalid_op"},
      {"invalid_tss_entry", "do_invalid_tss"},
      {"segment_not_present_entry", "do_segment_not_present"},
      {"stack_segment_entry", "do_stack_segment"},
      {"general_protection_entry", "do_general_protection"},
      {"page_fault_entry", "do_page_fault"},
  };
  for (const Stub& stub : kStubs) {
    out += format(R"ASM(
.func %s
%s:
  push %%eax
  push %%ecx
  push %%edx
  push %%ebx
  push %%esp
  push %%ebp
  push %%esi
  push %%edi
  lea 32(%%esp), %%eax
  push %%eax
  call %s
  add $4, %%esp
  jmp trap_ret
.endfunc
)ASM",
                  stub.label, stub.label, stub.handler);
  }

  // Timer interrupt.
  out += R"ASM(
.func timer_interrupt
timer_interrupt:
  push %eax
  push %ecx
  push %edx
  push %ebx
  push %esp
  push %ebp
  push %esi
  push %edi
  call do_timer
  jmp trap_ret
.endfunc

; Common trap exit: restore registers, reschedule when going back to
; user mode with need_resched set.
trap_ret:
  mov 44(%esp), %eax        ; saved cpl in the trap frame
  cmp $3, %eax
  jne trap_ret_nores
  mov need_resched, %eax
  test %eax, %eax
  je trap_ret_nores
  call schedule
trap_ret_nores:
  pop %edi
  pop %esi
  pop %ebp
  add $4, %esp              ; skip the saved esp slot
  pop %ebx
  pop %edx
  pop %ecx
  pop %eax
  iret
)ASM";

  // System-call entry: save the full register set (the child of fork
  // irets through the same frame), dispatch via the table, store the
  // return value into the saved-eax slot, exit through trap_ret.
  out += format(R"ASM(
.func system_call
system_call:
  push %%eax
  push %%ecx
  push %%edx
  push %%ebx
  push %%esp
  push %%ebp
  push %%esi
  push %%edi
  push 20(%%esp)            ; arg3 = saved edx
  push 28(%%esp)            ; arg2 = saved ecx
  push 24(%%esp)            ; arg1 = saved ebx
  cmp $%u, %%eax
  jae sc_bad
  shl $2, %%eax
  add $sys_call_table, %%eax
  mov (%%eax), %%eax
  test %%eax, %%eax
  je sc_bad
  call *%%eax
sc_out:
  add $12, %%esp
  mov %%eax, 28(%%esp)      ; return value -> saved eax
  jmp trap_ret
sc_bad:
  mov $-38, %%eax           ; -ENOSYS
  jmp sc_out
.endfunc
)ASM",
                kNumSyscalls);

  // Context switch (arch/i386/kernel/process.c __switch_to).
  out += format(R"ASM(
.func switch_to
switch_to:
  mov 4(%%esp), %%eax       ; prev
  mov 8(%%esp), %%edx       ; next
  push %%ebp
  push %%ebx
  push %%esi
  push %%edi
  mov %%esp, %u(%%eax)      ; prev->kesp
  mov %u(%%edx), %%esp      ; next->kesp
  mov %u(%%edx), %%ecx      ; next->kstack (esp0)
  mov %%ecx, 0x%x           ; TSS esp0
  mov %u(%%edx), %%ecx      ; next->pgd
  mov %%ecx, 0x%x           ; cr3 load port (flushes TLB)
  mov %%edx, current
  pop %%edi
  pop %%esi
  pop %%ebx
  pop %%ebp
  ret
.endfunc

.func ret_from_fork
ret_from_fork:
  mov $0, %%eax
  mov %%eax, 28(%%esp)      ; the child returns 0
  jmp trap_ret
.endfunc
)ASM",
                T_KESP, T_KESP, T_KSTACK,
                vm::kKernelBase + vm::kTssPhys, T_PGD,
                vm::kTlbMmio + TLB_SET_CR3);

  // The system-call table.
  const std::map<std::uint32_t, std::string> entries = {
      {SYS_EXIT, "sys_exit"},       {SYS_FORK, "sys_fork"},
      {SYS_READ, "sys_read"},       {SYS_WRITE, "sys_write"},
      {SYS_OPEN, "sys_open"},       {SYS_CLOSE, "sys_close"},
      {SYS_WAITPID, "sys_waitpid"}, {SYS_CREAT, "sys_creat"},
      {SYS_UNLINK, "sys_unlink"},   {SYS_LSEEK, "sys_lseek"},
      {SYS_GETPID, "sys_getpid"},   {SYS_DUP, "sys_dup"},
      {SYS_PIPE, "sys_pipe"},       {SYS_BRK, "sys_brk"},
      {SYS_SOCKETCALL, "sys_socketcall"},
      {SYS_IPC, "sys_ipc"},
  };
  out += "\nsys_call_table:\n";
  for (std::uint32_t nr = 0; nr < kNumSyscalls; ++nr) {
    const auto it = entries.find(nr);
    if (it != entries.end()) {
      out += "  .word " + it->second + "\n";
    } else {
      out += "  .word 0\n";
    }
  }
  return out;
}

}  // namespace kfi::kernel
