// lib/ — string and memory helpers (the kernel's lib/ directory).
#include "kernel/sources.h"

namespace kfi::kernel {

std::string lib_source() {
  return R"MC(
// lib/string.c equivalents.

func memcpy(dst, src, n) {
  var i = 0;
  while (i + 4 <= n) {
    mem[dst + i] = mem[src + i];
    i = i + 4;
  }
  while (i < n) {
    memb[dst + i] = memb[src + i];
    i = i + 1;
  }
  return dst;
}

func memset(dst, c, n) {
  var word = c & 0xFF;
  word = word | (word << 8);
  word = word | (word << 16);
  var i = 0;
  while (i + 4 <= n) {
    mem[dst + i] = word;
    i = i + 4;
  }
  while (i < n) {
    memb[dst + i] = c;
    i = i + 1;
  }
  return dst;
}

func strlen(s) {
  var n = 0;
  while (memb[s + n] != 0) {
    n = n + 1;
  }
  return n;
}

func strcmp(a, b) {
  var i = 0;
  while (1) {
    var ca = memb[a + i];
    var cb = memb[b + i];
    if (ca != cb) { return ca - cb; }
    if (ca == 0) { return 0; }
    i = i + 1;
  }
  return 0;
}

func strncmp(a, b, n) {
  var i = 0;
  while (i < n) {
    var ca = memb[a + i];
    var cb = memb[b + i];
    if (ca != cb) { return ca - cb; }
    if (ca == 0) { return 0; }
    i = i + 1;
  }
  return 0;
}

func strncpy(dst, src, n) {
  var i = 0;
  while (i < n) {
    var c = memb[src + i];
    memb[dst + i] = c;
    if (c == 0) { return dst; }
    i = i + 1;
  }
  return dst;
}

// Copies a NUL-terminated string from user space; returns its length,
// or n with forced termination when the source is too long.
func strncpy_from_user(dst, src, n) {
  var i = 0;
  while (i < n) {
    var c = memb[src + i];
    memb[dst + i] = c;
    if (c == 0) { return i; }
    i = i + 1;
  }
  memb[dst + n] = 0;
  return n;
}

func copy_to_user(dst, src, n) {
  memcpy(dst, src, n);
  return 0;
}

func copy_from_user(dst, src, n) {
  memcpy(dst, src, n);
  return 0;
}
)MC";
}

}  // namespace kfi::kernel
