// net/ — a loopback datagram socket stack.
//
// The paper deliberately excluded Linux's net subsystem ("the network
// issues can be studied separately"); this module is that separate
// study's substrate: a miniature UDP-over-loopback path (socket / bind
// / sendto / recvfrom through sys_socketcall, as Linux 2.4 multiplexed
// them), with a layered transmit path (udp_sendmsg -> ip_loopback_xmit
// -> netif_rx -> udp_queue_rcv) so injections can propagate across
// layers like they do across subsystems.
#include "kernel/sources.h"

namespace kfi::kernel {

std::string net_source() {
  return R"MC(
extern current;

// struct socket (kmalloc'd, 32 bytes):
//   +0  port        (0 = unbound)
//   +4  rx page     (ring buffer of datagrams)
//   +8  head        (byte offset of the first queued datagram)
//   +12 len         (queued bytes)
//   +16 wait        (wait queue head)
//   +20 drops       (datagrams dropped on overflow)
const SK_PORT = 0;
const SK_PAGE = 4;
const SK_HEAD = 8;
const SK_LEN = 12;
const SK_WAIT = 16;
const SK_DROPS = 20;
const SK_RING = 4096;

// Bound sockets, looked up by port on delivery (net/ipv4/udp.c's hash).
array udp_hash[16];

func net_init() {
  memset(udp_hash, 0, 64);
  return 0;
}

func udp_hash_slot(port) {
  return udp_hash + (port & 15) * 4;
}

func udp_v4_lookup(port) {
  var sk = mem[udp_hash_slot(port)];
  if (sk != 0 && mem[sk + SK_PORT] == port) { return sk; }
  return 0;
}

func sock_create() {
  var sk = kmalloc(32);
  if (sk == 0) { return 0; }
  var page = alloc_page();
  if (page == 0) { kfree(sk, 32); return 0; }
  mem[sk + SK_PAGE] = page;
  return sk;
}

func sock_release(f) {
  var sk = mem[f + F_OBJ];
  if (sk == 0) { return 0; }
  var port = mem[sk + SK_PORT];
  if (port != 0 && udp_v4_lookup(port) == sk) {
    mem[udp_hash_slot(port)] = 0;
  }
  free_pages(mem[sk + SK_PAGE]);
  kfree(sk, 32);
  return 0;
}

func inet_bind(sk, port) {
  if (port == 0) { return -EINVAL; }
  if (udp_v4_lookup(port) != 0) { return -EEXIST; }
  mem[sk + SK_PORT] = port;
  mem[udp_hash_slot(port)] = sk;
  return 0;
}

// 16-bit ones'-complement checksum over the payload (net/checksum.c).
func net_checksum(buf, n) {
  var sum = 0;
  var i = 0;
  while (i + 1 < n) {
    sum = sum + (memb[buf + i] << 8) + memb[buf + i + 1];
    i = i + 2;
  }
  if (i < n) { sum = sum + (memb[buf + i] << 8); }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return (~sum) & 0xFFFF;
}

// Queues one datagram into the destination socket's ring:
// [u16 len][u16 checksum][payload...], bytes wrapped modulo SK_RING.
func udp_queue_rcv(sk, buf, n, csum) {
  if (mem[sk + SK_LEN] + n + 4 >u SK_RING) {
    mem[sk + SK_DROPS] = mem[sk + SK_DROPS] + 1;
    return -EAGAIN;
  }
  var page = mem[sk + SK_PAGE];
  var tail = (mem[sk + SK_HEAD] + mem[sk + SK_LEN]) & (SK_RING - 1);
  memb[page + tail] = n & 0xFF;
  memb[page + ((tail + 1) & (SK_RING - 1))] = (n >> 8) & 0xFF;
  memb[page + ((tail + 2) & (SK_RING - 1))] = csum & 0xFF;
  memb[page + ((tail + 3) & (SK_RING - 1))] = (csum >> 8) & 0xFF;
  var i = 0;
  while (i < n) {
    memb[page + ((tail + 4 + i) & (SK_RING - 1))] = memb[buf + i];
    i = i + 1;
  }
  mem[sk + SK_LEN] = mem[sk + SK_LEN] + n + 4;
  wake_up(sk + SK_WAIT);
  return 0;
}

// The loopback "device": immediately hands the frame back to the rx
// path (drivers/net/loopback.c + net/core/dev.c netif_rx).
func netif_rx(port, buf, n, csum) {
  var sk = udp_v4_lookup(port);
  if (sk == 0) { return -ENOENT; }
  return udp_queue_rcv(sk, buf, n, csum);
}

func ip_loopback_xmit(port, buf, n, csum) {
  assert(n <=u SK_RING);              // BUG(): oversized datagram
  return netif_rx(port, buf, n, csum);
}

func udp_sendmsg(sk, port, buf, n) {
  if (n >u 1024) { return -EINVAL; }
  var csum = net_checksum(buf, n);
  return ip_loopback_xmit(port, buf, n, csum);
}

// Blocking receive; verifies the checksum like the real rx path does.
func udp_recvmsg(sk, buf, n) {
  while (mem[sk + SK_LEN] == 0) {
    sleep_on(sk + SK_WAIT);
  }
  var page = mem[sk + SK_PAGE];
  var head = mem[sk + SK_HEAD];
  var dlen = memb[page + head] +
             (memb[page + ((head + 1) & (SK_RING - 1))] << 8);
  var csum = memb[page + ((head + 2) & (SK_RING - 1))] +
             (memb[page + ((head + 3) & (SK_RING - 1))] << 8);
  var take = dlen;
  if (take >u n) { take = n; }
  var i = 0;
  while (i < take) {
    memb[buf + i] = memb[page + ((head + 4 + i) & (SK_RING - 1))];
    i = i + 1;
  }
  mem[sk + SK_HEAD] = (head + 4 + dlen) & (SK_RING - 1);
  mem[sk + SK_LEN] = mem[sk + SK_LEN] - dlen - 4;
  if (take == dlen) {
    if (net_checksum(buf, take) != csum) { return -EINVAL; }
  }
  return take;
}

// sys_socketcall(call, args) — Linux 2.4's socket multiplexer.  args is
// a user-space array of words:
//   call 1  socket()                  -> fd
//   call 2  bind(fd, port)            (args: fd, port)
//   call 11 sendto(fd, buf, n, port)  (args: fd, buf, n, port)
//   call 12 recvfrom(fd, buf, n)      (args: fd, buf, n)
const FT_SOCKET = 5;

func sys_socketcall(call, args, c) {
  if (call == 1) {
    var nsk = sock_create();
    if (nsk == 0) { return -ENOMEM; }
    var fd = get_unused_fd();
    if (fd < 0) { return fd; }
    var nf = get_empty_filp();
    if (nf == 0) { return -ENOMEM; }
    mem[nf + F_TYPE] = FT_SOCKET;
    mem[nf + F_OBJ] = nsk;
    mem[current + T_FILES + fd * 4] = nf;
    return fd;
  }
  var f = fget(mem[args]);
  if (f == 0 || mem[f + F_TYPE] != FT_SOCKET) { return -EBADF; }
  var sk = mem[f + F_OBJ];
  if (call == 2) {
    return inet_bind(sk, mem[args + 4]);
  }
  if (call == 11) {
    return udp_sendmsg(sk, mem[args + 12], mem[args + 4], mem[args + 8]);
  }
  if (call == 12) {
    return udp_recvmsg(sk, mem[args + 4], mem[args + 8]);
  }
  return -EINVAL;
}

// Called by fput() when the last reference to a socket file drops.
func sock_close(f) {
  sock_release(f);
  return 0;
}
)MC";
}

}  // namespace kfi::kernel
