// fs/ — VFS layer, kfs on-disk filesystem, buffer cache, pipes.
#include "kernel/sources.h"

namespace kfi::kernel {

std::string fs_source() {
  return R"MC(
extern current;

// ---- buffer cache (fs/buffer.c) ----

global sb_nblocks = 0;
global sb_ninodes = 0;
global sb_data_start = 0;
global sb_root = 0;
array bh_table[128];      // NBH x BH_ENTRY bytes

func buffer_init() {
  memset(bh_table, 0, NBH * BH_ENTRY);
  return 0;
}

// The paper's get_hash_table: cache lookup by block number.
func get_hash_table(block) {
  var bh = bh_table + (block & (NBH - 1)) * BH_ENTRY;
  if (mem[bh + BH_VALID] != 0 && mem[bh + BH_BLOCK] == block) {
    return bh;
  }
  return 0;
}

func bread(block) {
  var bh = get_hash_table(block);
  if (bh != 0) { return bh; }
  bh = bh_table + (block & (NBH - 1)) * BH_ENTRY;
  if (mem[bh + BH_PAGE] == 0) {
    var page = alloc_page();
    if (page == 0) { return 0; }
    mem[bh + BH_PAGE] = page;
  }
  mem[bh + BH_VALID] = 0;
  if (ll_rw_block(1, block, mem[bh + BH_PAGE]) != 0) {
    return 0;
  }
  mem[bh + BH_BLOCK] = block;
  mem[bh + BH_VALID] = 1;
  return bh;
}

// Write-through: every metadata/data update goes straight to disk, so
// kernel-state corruption becomes disk corruption (the severity channel
// behind the paper's Table 5).
func bwrite(bh) {
  //H! assert(mem[bh + BH_BLOCK] <u sb_nblocks || sb_nblocks == 0);
  return ll_rw_block(2, mem[bh + BH_BLOCK], mem[bh + BH_PAGE]);
}

// ---- superblock (fs/super.c) ----

func kfs_read_super() {
  var bh = bread(0);
  if (bh == 0) {
    panic("unable to read superblock");
    return 0;
  }
  var b = mem[bh + BH_PAGE];
  if (mem[b + SB_MAGIC] != KFS_MAGIC) {
    panic("VFS: bad kfs magic on root device");
    return 0;
  }
  sb_nblocks = mem[b + SB_BLOCKS];
  sb_ninodes = mem[b + SB_INODES];
  sb_data_start = mem[b + SB_DATA_START];
  sb_root = mem[b + SB_ROOT];
  return 0;
}

// ---- inode cache (fs/inode.c) ----

array inode_cache[512];   // NICACHE x IC_ENTRY bytes

func inode_init() {
  memset(inode_cache, 0, NICACHE * IC_ENTRY);
  return 0;
}

func iget(ino) {
  if (ino == 0 || ino >=u sb_ninodes) { return 0; }
  var i = 0;
  var free_slot = 0;
  while (i < NICACHE) {
    var e = inode_cache + i * IC_ENTRY;
    if (mem[e + IC_INO] == ino) {
      mem[e + IC_COUNT] = mem[e + IC_COUNT] + 1;
      return e;
    }
    if (free_slot == 0 && mem[e + IC_INO] == 0) { free_slot = e; }
    i = i + 1;
  }
  if (free_slot == 0) { return 0; }
  var blk = ITAB_BLOCK + ino / INODES_PER_BLOCK;
  var bh = bread(blk);
  if (bh == 0) { return 0; }
  var src = mem[bh + BH_PAGE] + (ino % INODES_PER_BLOCK) * INODE_SIZE;
  mem[free_slot + IC_INO] = ino;
  mem[free_slot + IC_MODE] = mem[src + I_MODE];
  mem[free_slot + IC_SIZE] = mem[src + I_SIZE];
  var k = 0;
  while (k < NDIRECT) {
    mem[free_slot + IC_BLOCKS + k * 4] = mem[src + I_BLOCK0 + k * 4];
    k = k + 1;
  }
  mem[free_slot + IC_COUNT] = 1;
  mem[free_slot + IC_DIRTY] = 0;
  return free_slot;
}

func write_inode(e) {
  var ino = mem[e + IC_INO];
  assert(ino != 0);                   // BUG(): writing back a free slot
  //H! assert(ino <u sb_ninodes);
  var blk = ITAB_BLOCK + ino / INODES_PER_BLOCK;
  var bh = bread(blk);
  if (bh == 0) { return -5; }
  var dst = mem[bh + BH_PAGE] + (ino % INODES_PER_BLOCK) * INODE_SIZE;
  mem[dst + I_MODE] = mem[e + IC_MODE];
  mem[dst + I_SIZE] = mem[e + IC_SIZE];
  mem[dst + I_NLINKS] = 1;
  var k = 0;
  while (k < NDIRECT) {
    mem[dst + I_BLOCK0 + k * 4] = mem[e + IC_BLOCKS + k * 4];
    k = k + 1;
  }
  mem[e + IC_DIRTY] = 0;
  return bwrite(bh);
}

func iput(e) {
  if (e == 0) { return 0; }
  if (mem[e + IC_DIRTY] != 0) {
    write_inode(e);
  }
  var c = mem[e + IC_COUNT];
  if (c <= 1) {
    mem[e + IC_COUNT] = 0;
    mem[e + IC_INO] = 0;
  } else {
    mem[e + IC_COUNT] = c - 1;
  }
  return 0;
}

// ---- kfs block/inode allocation (fs/ext2/balloc.c analogs) ----

func kfs_get_block(inode, fblock) {
  if (fblock >=u NDIRECT) { return 0; }
  return mem[inode + IC_BLOCKS + fblock * 4];
}

func kfs_alloc_block() {
  var bh = bread(BITMAP_BLOCK);
  if (bh == 0) { return 0; }
  var map = mem[bh + BH_PAGE];
  var b = sb_data_start;
  while (b <u sb_nblocks) {
    var byte = memb[map + b / 8];
    if ((byte & (1 << (b % 8))) == 0) {
      //H! assert(b >=u sb_data_start);
      memb[map + b / 8] = byte | (1 << (b % 8));
      bwrite(bh);
      var page = alloc_page();
      if (page != 0) {
        // Fresh blocks must read back as zeroes.
        memset(page, 0, BLOCK_SIZE);
        ll_rw_block(2, b, page);
        free_pages(page);
      }
      // Drop any stale buffer-cache copy of the recycled block.
      var stale = get_hash_table(b);
      if (stale != 0) { mem[stale + BH_VALID] = 0; }
      return b;
    }
    b = b + 1;
  }
  return 0;
}

func kfs_free_block(b) {
  if (b <u sb_data_start || b >=u sb_nblocks) { return 0; }
  var bh = bread(BITMAP_BLOCK);
  if (bh == 0) { return 0; }
  var map = mem[bh + BH_PAGE];
  memb[map + b / 8] = memb[map + b / 8] & ~(1 << (b % 8));
  bwrite(bh);
  return 0;
}

// Scans the on-disk inode table for a free inode; returns its number.
func kfs_alloc_inode() {
  var ino = 1;
  while (ino <u sb_ninodes) {
    var bh = bread(ITAB_BLOCK + ino / INODES_PER_BLOCK);
    if (bh == 0) { return 0; }
    var at = mem[bh + BH_PAGE] + (ino % INODES_PER_BLOCK) * INODE_SIZE;
    if (mem[at + I_MODE] == M_FREE) {
      mem[at + I_MODE] = M_FILE;
      mem[at + I_SIZE] = 0;
      mem[at + I_NLINKS] = 1;
      var k = 0;
      while (k < NDIRECT) {
        mem[at + I_BLOCK0 + k * 4] = 0;
        k = k + 1;
      }
      bwrite(bh);
      return ino;
    }
    ino = ino + 1;
  }
  return 0;
}

// ---- directories (fs/namei.c) ----

array namebuf[8];     // one path component
array path_buf[32];   // kernel copy of the user path

// Finds `name` in the directory inode `dir`; returns the inode number.
func dir_find_entry(dir, name) {
  var k = 0;
  while (k < NDIRECT) {
    var blk = mem[dir + IC_BLOCKS + k * 4];
    if (blk != 0 && blk <u sb_nblocks) {
      var bh = bread(blk);
      if (bh != 0) {
        var base = mem[bh + BH_PAGE];
        var e = 0;
        while (e < BLOCK_SIZE) {
          var ino = mem[base + e];
          if (ino != 0) {
            if (strncmp(base + e + 4, name, NAME_LEN) == 0) { return ino; }
          }
          e = e + DIRENT_SIZE;
        }
      }
    }
    k = k + 1;
  }
  return 0;
}

func dir_add_entry(dir, name, ino) {
  //H! assert(ino != 0);
  //H! assert(ino <u sb_ninodes);
  var k = 0;
  while (k < NDIRECT) {
    var blk = mem[dir + IC_BLOCKS + k * 4];
    if (blk == 0) {
      blk = kfs_alloc_block();
      if (blk == 0) { return -ENOSPC; }
      mem[dir + IC_BLOCKS + k * 4] = blk;
      mem[dir + IC_SIZE] = (k + 1) * BLOCK_SIZE;
      mem[dir + IC_DIRTY] = 1;
      write_inode(dir);
    }
    var bh = bread(blk);
    if (bh == 0) { return -5; }
    var base = mem[bh + BH_PAGE];
    var e = 0;
    while (e < BLOCK_SIZE) {
      if (mem[base + e] == 0) {
        mem[base + e] = ino;
        memset(base + e + 4, 0, NAME_LEN);
        strncpy(base + e + 4, name, NAME_LEN - 1);
        bwrite(bh);
        return 0;
      }
      e = e + DIRENT_SIZE;
    }
    k = k + 1;
  }
  return -ENOSPC;
}

func dir_remove_entry(dir, name) {
  var k = 0;
  while (k < NDIRECT) {
    var blk = mem[dir + IC_BLOCKS + k * 4];
    if (blk != 0 && blk <u sb_nblocks) {
      var bh = bread(blk);
      if (bh != 0) {
        var base = mem[bh + BH_PAGE];
        var e = 0;
        while (e < BLOCK_SIZE) {
          if (mem[base + e] != 0) {
            if (strncmp(base + e + 4, name, NAME_LEN) == 0) {
              mem[base + e] = 0;
              bwrite(bh);
              return 0;
            }
          }
          e = e + DIRENT_SIZE;
        }
      }
    }
    k = k + 1;
  }
  return -ENOENT;
}

// Walks `path` (absolute, NUL-terminated, kernel memory) and returns
// the inode of the final component, or 0.  (fs/namei.c)
func link_path_walk(path) {
  if (memb[path] != 47) { return 0; }    // must start with '/'
  var dir = iget(sb_root);
  var i = 1;
  while (memb[path + i] == 47) { i = i + 1; }
  while (memb[path + i] != 0) {
    if (dir == 0) { return 0; }
    if (mem[dir + IC_MODE] != M_DIR) {
      iput(dir);
      return 0;
    }
    var j = 0;
    while (memb[path + i] != 0 && memb[path + i] != 47) {
      if (j < NAME_LEN - 1) {
        memb[namebuf + j] = memb[path + i];
        j = j + 1;
      }
      i = i + 1;
    }
    memb[namebuf + j] = 0;
    while (memb[path + i] == 47) { i = i + 1; }
    var ino = dir_find_entry(dir, namebuf);
    iput(dir);
    if (ino == 0) { return 0; }
    dir = iget(ino);
  }
  return dir;
}

// Resolves the parent directory of `path`, leaving the final component
// in namebuf.  Returns the parent inode or 0.
func path_parent(path) {
  var last = -1;
  var i = 0;
  while (memb[path + i] != 0) {
    if (memb[path + i] == 47) { last = i; }
    i = i + 1;
  }
  if (last < 0) { return 0; }
  // Copy the leaf out first (namebuf is clobbered by the walk).
  strncpy(path_buf + 96, path + last + 1, NAME_LEN - 1);
  memb[path_buf + 96 + NAME_LEN - 1] = 0;
  var parent = 0;
  if (last == 0) {
    parent = iget(sb_root);
  } else {
    memb[path + last] = 0;
    parent = link_path_walk(path);
    memb[path + last] = 47;
  }
  strncpy(namebuf, path_buf + 96, NAME_LEN);
  return parent;
}

func kfs_create(path) {
  var parent = path_parent(path);
  if (parent == 0) { return 0; }
  if (mem[parent + IC_MODE] != M_DIR) { iput(parent); return 0; }
  var ino = kfs_alloc_inode();
  if (ino == 0) { iput(parent); return 0; }
  if (dir_add_entry(parent, namebuf, ino) != 0) {
    iput(parent);
    return 0;
  }
  iput(parent);
  return iget(ino);
}

func kfs_truncate(inode) {
  var k = 0;
  while (k < NDIRECT) {
    var blk = mem[inode + IC_BLOCKS + k * 4];
    if (blk != 0) {
      kfs_free_block(blk);
      mem[inode + IC_BLOCKS + k * 4] = 0;
    }
    k = k + 1;
  }
  mem[inode + IC_SIZE] = 0;
  mem[inode + IC_DIRTY] = 1;
  write_inode(inode);
  invalidate_inode_pages(mem[inode + IC_INO]);
  return 0;
}

// open(2)'s name resolution (fs/namei.c).
func open_namei(path, flags) {
  var inode = link_path_walk(path);
  if (inode == 0) {
    if ((flags & O_CREAT) == 0) { return 0; }
    inode = kfs_create(path);
    if (inode == 0) { return 0; }
  }
  if ((flags & O_TRUNC) != 0 && mem[inode + IC_MODE] == M_FILE) {
    kfs_truncate(inode);
  }
  return inode;
}

// ---- file table (fs/file_table.c) ----

func get_empty_filp() {
  var f = kmalloc(16);
  if (f != 0) {
    mem[f + F_COUNT] = 1;
  }
  return f;
}

func fget(fd) {
  if (fd >=u NFDS) { return 0; }
  return mem[current + T_FILES + fd * 4];
}

func get_unused_fd() {
  var i = 0;
  while (i < NFDS) {
    if (mem[current + T_FILES + i * 4] == 0) { return i; }
    i = i + 1;
  }
  return -EMFILE;
}

func fput(f) {
  var c = mem[f + F_COUNT];
  assert(c != 0);                     // BUG(): double fput
  if (c > 1) {
    mem[f + F_COUNT] = c - 1;
    return 0;
  }
  var t = mem[f + F_TYPE];
  if (t == FT_FILE) {
    iput(mem[f + F_OBJ]);
  }
  if (t == FT_PIPE_R || t == FT_PIPE_W) {
    pipe_release(f);
  }
  if (t == 5) {                       // FT_SOCKET (net/)
    sock_close(f);
  }
  kfree(f, 16);
  return 0;
}

// ---- read/write (fs/read_write.c) ----

func generic_file_read(f, buf, count) {
  return do_generic_file_read(f, buf, count);
}

func generic_commit_write(f, inode, pos) {
  //H! assert(pos <=u MAX_FILE_SIZE);
  //H! assert(mem[inode + IC_INO] <u sb_ninodes);
  if (pos >u mem[inode + IC_SIZE]) {
    mem[inode + IC_SIZE] = pos;     // Table 5 case 8: i_size update
    mem[inode + IC_DIRTY] = 1;
    write_inode(inode);
  }
  return 0;
}

func generic_file_write(f, buf, count) {
  var inode = mem[f + F_OBJ];
  assert(mem[inode + IC_INO] != 0);   // BUG(): write to a dead inode
  var pos = mem[f + F_POS];
  var done = 0;
  while (done <u count) {
    var fblock = pos / BLOCK_SIZE;
    if (fblock >=u NDIRECT) { break; }
    var blk = kfs_get_block(inode, fblock);
    if (blk == 0) {
      blk = kfs_alloc_block();
      if (blk == 0) { break; }
      //H! assert(blk >=u sb_data_start && blk <u sb_nblocks);
      mem[inode + IC_BLOCKS + fblock * 4] = blk;
      mem[inode + IC_DIRTY] = 1;
    }
    var bh = bread(blk);
    if (bh == 0) { break; }
    var off = pos % BLOCK_SIZE;
    var n = BLOCK_SIZE - off;
    if (n >u count - done) { n = count - done; }
    copy_from_user(mem[bh + BH_PAGE] + off, buf + done, n);
    bwrite(bh);
    pos = pos + n;
    done = done + n;
    generic_commit_write(f, inode, pos);
  }
  mem[f + F_POS] = pos;
  invalidate_inode_pages(mem[inode + IC_INO]);
  return done;
}

// ---- syscalls ----

func sys_open(upath, flags, c) {
  if (strncpy_from_user(path_buf, upath, 95) < 0) { return -EINVAL; }
  var inode = open_namei(path_buf, flags);
  if (inode == 0) { return -ENOENT; }
  var fd = get_unused_fd();
  if (fd < 0) { iput(inode); return fd; }
  var f = get_empty_filp();
  if (f == 0) { iput(inode); return -ENOMEM; }
  mem[f + F_TYPE] = FT_FILE;
  mem[f + F_OBJ] = inode;
  mem[f + F_POS] = 0;
  mem[current + T_FILES + fd * 4] = f;
  return fd;
}

func sys_creat(upath, mode, c) {
  return sys_open(upath, O_CREAT | O_TRUNC | O_WRONLY, 0);
}

func sys_close(fd, b, c) {
  var f = fget(fd);
  if (f == 0) { return -EBADF; }
  mem[current + T_FILES + fd * 4] = 0;
  fput(f);
  return 0;
}

func sys_dup(fd, b, c) {
  var f = fget(fd);
  if (f == 0) { return -EBADF; }
  var nfd = get_unused_fd();
  if (nfd < 0) { return nfd; }
  mem[f + F_COUNT] = mem[f + F_COUNT] + 1;
  mem[current + T_FILES + nfd * 4] = f;
  return nfd;
}

func sys_lseek(fd, off, whence) {
  var f = fget(fd);
  if (f == 0) { return -EBADF; }
  if (mem[f + F_TYPE] != FT_FILE) { return -ESPIPE; }
  var inode = mem[f + F_OBJ];
  var pos = 0;
  if (whence == 0) { pos = off; }
  else { if (whence == 1) { pos = mem[f + F_POS] + off; }
         else { pos = mem[inode + IC_SIZE] + off; } }
  mem[f + F_POS] = pos;
  return pos;
}

func sys_unlink(upath, b, c) {
  if (strncpy_from_user(path_buf, upath, 95) < 0) { return -EINVAL; }
  var inode = link_path_walk(path_buf);
  if (inode == 0) { return -ENOENT; }
  var ino = mem[inode + IC_INO];
  var parent = path_parent(path_buf);
  if (parent == 0) { iput(inode); return -ENOENT; }
  var r = dir_remove_entry(parent, namebuf);
  iput(parent);
  if (r != 0) { iput(inode); return r; }
  kfs_truncate(inode);
  mem[inode + IC_MODE] = M_FREE;
  mem[inode + IC_DIRTY] = 1;
  write_inode(inode);
  invalidate_inode_pages(ino);
  iput(inode);
  return 0;
}

func sys_read(fd, buf, count) {
  var f = fget(fd);
  if (f == 0) { return -EBADF; }
  var t = mem[f + F_TYPE];
  if (t == FT_FILE) { return generic_file_read(f, buf, count); }
  if (t == FT_PIPE_R) { return pipe_read(f, buf, count); }
  if (t == FT_CONSOLE) { return 0; }
  return -EBADF;
}

func sys_write(fd, buf, count) {
  var f = fget(fd);
  if (f == 0) { return -EBADF; }
  var t = mem[f + F_TYPE];
  if (t == FT_CONSOLE) { return console_write(buf, count); }
  if (t == FT_PIPE_W) { return pipe_write(f, buf, count); }
  if (t == FT_FILE) { return generic_file_write(f, buf, count); }
  return -EBADF;
}

// ---- pipes (fs/pipe.c) ----

func sys_pipe(fds_ptr, b, c) {
  var pipe = kmalloc(32);
  if (pipe == 0) { return -ENOMEM; }
  var page = alloc_page();
  if (page == 0) { kfree(pipe, 32); return -ENOMEM; }
  mem[pipe + P_PAGE] = page;
  mem[pipe + P_HEAD] = 0;
  mem[pipe + P_LEN] = 0;
  mem[pipe + P_READERS] = 1;
  mem[pipe + P_WRITERS] = 1;
  mem[pipe + P_WAIT] = 0;
  var rf = get_empty_filp();
  var wf = get_empty_filp();
  if (rf == 0 || wf == 0) { return -ENOMEM; }
  mem[rf + F_TYPE] = FT_PIPE_R;
  mem[rf + F_OBJ] = pipe;
  mem[wf + F_TYPE] = FT_PIPE_W;
  mem[wf + F_OBJ] = pipe;
  var rfd = get_unused_fd();
  if (rfd < 0) { return rfd; }
  mem[current + T_FILES + rfd * 4] = rf;
  var wfd = get_unused_fd();
  if (wfd < 0) { return wfd; }
  mem[current + T_FILES + wfd * 4] = wf;
  mem[fds_ptr] = rfd;
  mem[fds_ptr + 4] = wfd;
  return 0;
}

// The paper's §8 fail-silence example: the error-code path at the top
// returns -ESPIPE through out_nolock when the guard trips.
func pipe_read(filp, buf, count) {
  var ret = -ESPIPE;
  var read = 0;
  if (mem[filp + F_TYPE] != FT_PIPE_R) { goto out_nolock; }
  var pipe = mem[filp + F_OBJ];
  assert(pipe != 0);                  // BUG()
  while (mem[pipe + P_LEN] == 0) {
    if (mem[pipe + P_WRITERS] == 0) { return 0; }
    sleep_on(pipe + P_WAIT);
  }
  var page = mem[pipe + P_PAGE];
  while (read <u count && mem[pipe + P_LEN] != 0) {
    var head = mem[pipe + P_HEAD];
    memb[buf + read] = memb[page + head];
    mem[pipe + P_HEAD] = (head + 1) & (PIPE_BUF - 1);
    mem[pipe + P_LEN] = mem[pipe + P_LEN] - 1;
    read = read + 1;
  }
  wake_up(pipe + P_WAIT);
  ret = read;
out_nolock:
  if (read != 0) { ret = read; }
  return ret;
}

func pipe_write(filp, buf, count) {
  if (mem[filp + F_TYPE] != FT_PIPE_W) { return -ESPIPE; }
  var pipe = mem[filp + F_OBJ];
  var page = mem[pipe + P_PAGE];
  var written = 0;
  while (written <u count) {
    if (mem[pipe + P_READERS] == 0) {
      if (written != 0) { return written; }
      return -EPIPE;
    }
    if (mem[pipe + P_LEN] == PIPE_BUF) {
      wake_up(pipe + P_WAIT);
      sleep_on(pipe + P_WAIT);
      continue;
    }
    var tail = (mem[pipe + P_HEAD] + mem[pipe + P_LEN]) & (PIPE_BUF - 1);
    memb[page + tail] = memb[buf + written];
    mem[pipe + P_LEN] = mem[pipe + P_LEN] + 1;
    written = written + 1;
  }
  wake_up(pipe + P_WAIT);
  return written;
}

func pipe_release(f) {
  var pipe = mem[f + F_OBJ];
  if (mem[f + F_TYPE] == FT_PIPE_R) {
    mem[pipe + P_READERS] = mem[pipe + P_READERS] - 1;
  } else {
    mem[pipe + P_WRITERS] = mem[pipe + P_WRITERS] - 1;
  }
  wake_up(pipe + P_WAIT);
  if (mem[pipe + P_READERS] == 0 && mem[pipe + P_WRITERS] == 0) {
    free_pages(mem[pipe + P_PAGE]);
    kfree(pipe, 32);
  }
  return 0;
}
)MC";
}

}  // namespace kfi::kernel
