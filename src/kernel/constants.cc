// Generates the MiniC constants preamble from the C++ single source of
// truth, so the kernel source can never drift from the host tooling.
#include "kernel/constants.h"

#include "fsutil/kfs_format.h"
#include "kernel/koffsets.h"
#include "support/strings.h"
#include "vm/layout.h"

namespace kfi::kernel {

std::string kernel_constants_minic() {
  std::string out;
  auto def = [&out](const char* name, std::uint32_t value) {
    out += format("const %s = 0x%x;\n", name, value);
  };

  // Memory layout.
  def("PAGE_SIZE", vm::kPageSize);
  def("PAGE_SHIFT", 12);
  def("KERNEL_BASE", vm::kKernelBase);
  def("RAM_SIZE", vm::kRamSize);
  def("FREE_PHYS_BASE", vm::kFreePhysBase);
  def("TSS_VIRT", vm::kKernelBase + vm::kTssPhys);
  def("BOOT_PGD_PHYS", vm::kBootPgdPhys);
  def("BOOT_PGD_VIRT", vm::kKernelBase + vm::kBootPgdPhys);
  def("BOOT_INFO", vm::kKernelBase + vm::kBootInfoPhys);
  def("USER_TEXT", vm::kUserTextBase);
  def("USER_DATA", vm::kUserDataBase);
  def("USER_STACK_TOP", vm::kUserStackTop);
  def("USER_STACK_LIMIT", vm::kUserStackLimit);
  def("BOOT_STACK_TOP", vm::kBootStackTop);

  // PTE bits.
  def("PTE_P", vm::kPtePresent);
  def("PTE_W", vm::kPteWrite);
  def("PTE_U", vm::kPteUser);
  def("PTE_FRAME", vm::kPteFrameMask);

  // MMIO.
  def("CON_PORT", vm::kConsoleMmio);
  def("DISK_CMD", vm::kDiskMmio + 0);
  def("DISK_BLOCK", vm::kDiskMmio + 4);
  def("DISK_PHYS", vm::kDiskMmio + 8);
  def("DISK_STATUS", vm::kDiskMmio + 12);
  def("CRASH_CAUSE", vm::kCrashMmio + 0);
  def("CRASH_ADDR", vm::kCrashMmio + 4);
  def("CRASH_EIP", vm::kCrashMmio + 8);
  def("TLB_PAGE", vm::kTlbMmio + TLB_FLUSH_PAGE);
  def("TLB_ALL", vm::kTlbMmio + TLB_FLUSH_ALL);
  def("TLB_CR3", vm::kTlbMmio + TLB_SET_CR3);

  // Tasks.
  def("NTASKS", kNumTasks);
  def("TASK_SIZE", kTaskSize);
  def("T_STATE", T_STATE);
  def("T_PID", T_PID);
  def("T_COUNTER", T_COUNTER);
  def("T_PGD", T_PGD);
  def("T_KESP", T_KESP);
  def("T_KSTACK", T_KSTACK);
  def("T_PARENT", T_PARENT);
  def("T_EXIT", T_EXIT);
  def("T_BRK", T_BRK);
  def("T_WAITNEXT", T_WAITNEXT);
  def("T_TEXTEND", T_TEXTEND);
  def("T_FILES", T_FILES);
  def("NFDS", kNumFds);
  def("TS_UNUSED", TS_UNUSED);
  def("TS_RUN", TS_RUN);
  def("TS_SLEEP", TS_SLEEP);
  def("TS_ZOMBIE", TS_ZOMBIE);
  def("QUANTUM", kDefaultQuantum);

  // Files.
  def("F_TYPE", F_TYPE);
  def("F_OBJ", F_OBJ);
  def("F_POS", F_POS);
  def("F_COUNT", F_COUNT);
  def("FT_FILE", FT_FILE);
  def("FT_PIPE_R", FT_PIPE_R);
  def("FT_PIPE_W", FT_PIPE_W);
  def("FT_CONSOLE", FT_CONSOLE);

  // Inode cache.
  def("NICACHE", kNumInodeCache);
  def("IC_INO", IC_INO);
  def("IC_MODE", IC_MODE);
  def("IC_SIZE", IC_SIZE);
  def("IC_BLOCKS", IC_BLOCKS);
  def("IC_COUNT", IC_COUNT);
  def("IC_DIRTY", IC_DIRTY);
  def("IC_ENTRY", kInodeCacheEntry);

  // Pipes.
  def("P_PAGE", P_PAGE);
  def("P_HEAD", P_HEAD);
  def("P_LEN", P_LEN);
  def("P_READERS", P_READERS);
  def("P_WRITERS", P_WRITERS);
  def("P_WAIT", P_WAIT);
  def("PIPE_BUF", kPipeBufSize);

  // Buffer and page caches.
  def("NBH", kNumBh);
  def("BH_BLOCK", BH_BLOCK);
  def("BH_PAGE", BH_PAGE);
  def("BH_VALID", BH_VALID);
  def("BH_ENTRY", kBhEntry);
  def("NPCH", kNumPageHash);
  def("PC_INO", PC_INO);
  def("PC_IDX", PC_IDX);
  def("PC_PAGE", PC_PAGE);
  def("PC_ENTRY", kPcEntry);

  // Trap frame and boot info.
  def("TF_EIP", TF_EIP);
  def("TF_EFLAGS", TF_EFLAGS);
  def("TF_ESP", TF_ESP);
  def("TF_CPL", TF_CPL);
  def("TF_ERR", TF_ERR);
  def("TF_ADDR", TF_ADDR);
  def("BI_ENTRY", BI_ENTRY);
  def("BI_TEXT_VADDR", BI_TEXT_VADDR);
  def("BI_TEXT_PHYS", BI_TEXT_PHYS);
  def("BI_TEXT_LEN", BI_TEXT_LEN);
  def("BI_DATA_VADDR", BI_DATA_VADDR);
  def("BI_DATA_PHYS", BI_DATA_PHYS);
  def("BI_DATA_LEN", BI_DATA_LEN);

  // Crash causes.
  def("C_NULL", CRASH_NULL_POINTER);
  def("C_PAGING", CRASH_PAGING_REQUEST);
  def("C_INVOP", CRASH_INVALID_OPCODE);
  def("C_GP", CRASH_GP_FAULT);
  def("C_DIVIDE", CRASH_DIVIDE);
  def("C_PANIC", CRASH_PANIC);
  def("C_INT3", CRASH_INT3);
  def("C_BOUNDS", CRASH_BOUNDS);
  def("C_ITSS", CRASH_INVALID_TSS);
  def("C_STACK", CRASH_STACK);
  def("C_OVF", CRASH_OVERFLOW);
  def("C_SEGNP", CRASH_SEG_NOT_PRESENT);
  def("C_OOM", CRASH_OUT_OF_MEMORY);
  def("C_SHUTDOWN", CRASH_CLEAN_SHUTDOWN);

  // kfs format.
  def("BLOCK_SIZE", fsutil::kBlockSize);
  def("KFS_MAGIC", fsutil::kKfsMagic);
  def("INODE_SIZE", fsutil::kInodeSize);
  def("INODES_PER_BLOCK", fsutil::kInodesPerBlock);
  def("NDIRECT", fsutil::kDirectBlocks);
  def("MAX_FILE_SIZE", fsutil::kMaxFileSize);
  def("DIRENT_SIZE", fsutil::kDirentSize);
  def("NAME_LEN", fsutil::kNameLen);
  def("BITMAP_BLOCK", fsutil::kBitmapBlock);
  def("ITAB_BLOCK", fsutil::kInodeTableBlock);
  def("SB_MAGIC", fsutil::kSbMagic);
  def("SB_BLOCKS", fsutil::kSbBlocks);
  def("SB_INODES", fsutil::kSbInodes);
  def("SB_INODE_BLOCKS", fsutil::kSbInodeBlocks);
  def("SB_DATA_START", fsutil::kSbDataStart);
  def("SB_ROOT", fsutil::kSbRootIno);
  def("I_MODE", fsutil::kInodeMode);
  def("I_SIZE", fsutil::kInodeSizeOff);
  def("I_NLINKS", fsutil::kInodeNlinks);
  def("I_BLOCK0", fsutil::kInodeBlock0);
  def("M_FREE", fsutil::kModeFree);
  def("M_FILE", fsutil::kModeFile);
  def("M_DIR", fsutil::kModeDir);

  // Syscalls and errno.
  def("SYS_EXIT", SYS_EXIT);
  def("SYS_FORK", SYS_FORK);
  def("SYS_READ", SYS_READ);
  def("SYS_WRITE", SYS_WRITE);
  def("SYS_OPEN", SYS_OPEN);
  def("SYS_CLOSE", SYS_CLOSE);
  def("SYS_WAITPID", SYS_WAITPID);
  def("SYS_CREAT", SYS_CREAT);
  def("SYS_UNLINK", SYS_UNLINK);
  def("SYS_LSEEK", SYS_LSEEK);
  def("SYS_GETPID", SYS_GETPID);
  def("SYS_DUP", SYS_DUP);
  def("SYS_PIPE", SYS_PIPE);
  def("SYS_BRK", SYS_BRK);
  def("SYS_SOCKETCALL", SYS_SOCKETCALL);
  def("SYS_IPC", SYS_IPC);
  def("NSYSCALLS", kNumSyscalls);
  def("ENOENT", KE_ENOENT);
  def("EBADF", KE_EBADF);
  def("EAGAIN", KE_EAGAIN);
  def("ENOMEM", KE_ENOMEM);
  def("EEXIST", KE_EEXIST);
  def("EINVAL", KE_EINVAL);
  def("EMFILE", KE_EMFILE);
  def("ENOSPC", KE_ENOSPC);
  def("ESPIPE", KE_ESPIPE);
  def("EPIPE", KE_EPIPE);
  def("ENOSYS", KE_ENOSYS);
  def("O_RDONLY", KO_RDONLY);
  def("O_WRONLY", KO_WRONLY);
  def("O_RDWR", KO_RDWR);
  def("O_CREAT", KO_CREAT);
  def("O_TRUNC", KO_TRUNC);

  return out;
}

}  // namespace kfi::kernel
