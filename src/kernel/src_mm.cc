// mm/ — page allocator, kmalloc, page tables, COW, page cache, and the
// read path (do_generic_file_read — the function behind the paper's
// catastrophic-crash case study in Figure 5).
#include "kernel/sources.h"

namespace kfi::kernel {

std::string mm_source() {
  return R"MC(
extern current;

// ---- physical page allocator (mm/page_alloc.c) ----

global free_list = 0;
global nr_free_pages = 0;
array mem_map[4096];        // one refcount word per physical page

func mem_map_entry(paddr) {
  return mem_map + (paddr >> PAGE_SHIFT) * 4;
}

func mm_init() {
  var p = FREE_PHYS_BASE;
  free_list = 0;
  nr_free_pages = 0;
  while (p <u RAM_SIZE) {
    mem[KERNEL_BASE + p] = free_list;   // freelist link lives in the page
    free_list = KERNEL_BASE + p;
    nr_free_pages = nr_free_pages + 1;
    p = p + PAGE_SIZE;
  }
  // Pages below the allocator's range (kernel text/data, workload
  // image, firmware tables) are permanently referenced.
  var i = 0;
  while (i < (FREE_PHYS_BASE >> PAGE_SHIFT)) {
    mem[mem_map + i * 4] = 1;
    i = i + 1;
  }
  return 0;
}

// Returns the kernel-virtual address of a free page, or 0.
func __alloc_pages() {
  if (free_list == 0) { return 0; }
  var page = free_list;
  free_list = mem[page];
  nr_free_pages = nr_free_pages - 1;
  mem[mem_map_entry(page - KERNEL_BASE)] = 1;
  return page;
}

func alloc_page() {
  return __alloc_pages();
}

func page_count(page) {
  return mem[mem_map_entry(page - KERNEL_BASE)];
}

func get_page(page) {
  var e = mem_map_entry(page - KERNEL_BASE);
  mem[e] = mem[e] + 1;
  return 0;
}

func free_pages(page) {
  var e = mem_map_entry(page - KERNEL_BASE);
  var c = mem[e];
  assert(c != 0);                      // freeing a free page is a BUG()
  if (c > 1) {
    mem[e] = c - 1;
    return 0;
  }
  mem[e] = 0;
  mem[page] = free_list;
  free_list = page;
  nr_free_pages = nr_free_pages + 1;
  return 0;
}

// ---- kmalloc (mm/slab.c, size classes 32/64/128/256) ----

array kmalloc_heads[4];

func kmalloc_class(size) {
  if (size <=u 32) { return 0; }
  if (size <=u 64) { return 1; }
  if (size <=u 128) { return 2; }
  if (size <=u 256) { return 3; }
  return -1;
}

func kmalloc(size) {
  var cl = kmalloc_class(size);
  if (cl < 0) { return 0; }
  var head = kmalloc_heads + cl * 4;
  if (mem[head] == 0) {
    var page = alloc_page();
    if (page == 0) { return 0; }
    var csz = 32 << cl;
    var p = page;
    while (p + csz <=u page + PAGE_SIZE) {
      mem[p] = mem[head];
      mem[head] = p;
      p = p + csz;
    }
  }
  var obj = mem[head];
  mem[head] = mem[obj];
  memset(obj, 0, 32 << cl);
  return obj;
}

func kfree(obj, size) {
  var cl = kmalloc_class(size);
  if (cl < 0) { return 0; }
  var head = kmalloc_heads + cl * 4;
  mem[obj] = mem[head];
  mem[head] = obj;
  return 0;
}

// ---- page tables (mm/memory.c) ----

// Kernel-virtual address of the PTE slot for (pgd_phys, vaddr);
// allocates the page table when `create` and returns 0 on miss.
func pte_slot(pgd_phys, vaddr, create) {
  var pgd_e = KERNEL_BASE + pgd_phys + (vaddr >> 22) * 4;
  var e = mem[pgd_e];
  if ((e & PTE_P) == 0) {
    if (create == 0) { return 0; }
    var pt = alloc_page();
    if (pt == 0) { return 0; }
    memset(pt, 0, PAGE_SIZE);
    e = (pt - KERNEL_BASE) | PTE_P | PTE_W | PTE_U;
    mem[pgd_e] = e;
  }
  return KERNEL_BASE + (e & PTE_FRAME) + ((vaddr >> 12) & 0x3FF) * 4;
}

func map_page(pgd_phys, vaddr, page_virt, flags) {
  assert(page_virt >=u KERNEL_BASE);  // BUG(): mapping a non-kernel page
  var slot = pte_slot(pgd_phys, vaddr, 1);
  if (slot == 0) { return -ENOMEM; }
  mem[slot] = (page_virt - KERNEL_BASE) | PTE_P | flags;
  mem[TLB_PAGE] = vaddr;
  return 0;
}

// ---- fault handling (mm/memory.c) ----

func do_anonymous_page(task, addr) {
  var page = alloc_page();
  if (page == 0) { return -ENOMEM; }
  memset(page, 0, PAGE_SIZE);
  return map_page(mem[task + T_PGD], addr & 0xFFFFF000, page,
                  PTE_W | PTE_U);
}

// Copy-on-write break (the paper's Table 5 cases 2 and 7 target).
func do_wp_page(task, addr, slot) {
  var pte = mem[slot];
  assert((pte & PTE_P) != 0);         // BUG(): COW break on absent page
  var old_page = KERNEL_BASE + (pte & PTE_FRAME);
  if (page_count(old_page) == 1) {
    mem[slot] = pte | PTE_W;
    mem[TLB_PAGE] = addr;
    return 0;
  }
  var page = alloc_page();
  if (page == 0) { return -ENOMEM; }
  memcpy(page, old_page, PAGE_SIZE);
  mem[slot] = (page - KERNEL_BASE) | PTE_P | PTE_W | PTE_U;
  mem[TLB_PAGE] = addr;
  free_pages(old_page);
  return 0;
}

// Returns 0 when the fault was repaired, negative when it is a real
// access violation.
func handle_mm_fault(task, addr, write) {
  assert(task != 0);                  // BUG()
  var slot = pte_slot(mem[task + T_PGD], addr, 0);
  if (slot != 0) {
    var pte = mem[slot];
    if ((pte & PTE_P) != 0) {
      if ((pte & PTE_U) == 0) { return -1; }
      if (write != 0 && (pte & PTE_W) == 0) {
        return do_wp_page(task, addr, slot);
      }
      if (write != 0) { return 0; }   // race: already writable
      return -1;
    }
  }
  if (addr >=u USER_STACK_LIMIT && addr <u USER_STACK_TOP) {
    return do_anonymous_page(task, addr);
  }
  if (addr >=u USER_DATA && addr <u mem[task + T_BRK]) {
    return do_anonymous_page(task, addr);
  }
  return -1;
}

// Unmaps and frees user pages in [start, end) (mm/memory.c).
func zap_page_range(task, start, end) {
  assert(start <=u end);              // BUG()
  var addr = start;
  while (addr <u end) {
    var slot = pte_slot(mem[task + T_PGD], addr, 0);
    if (slot == 0) {
      addr = (addr & 0xFFC00000) + 0x400000;   // skip the 4 MiB hole
      continue;
    }
    var pte = mem[slot];
    if ((pte & PTE_P) != 0) {
      free_pages(KERNEL_BASE + (pte & PTE_FRAME));
      mem[slot] = 0;
    }
    addr = addr + PAGE_SIZE;
  }
  mem[TLB_ALL] = 1;
  return 0;
}

// Tears down a task's entire user address space including page tables.
func exit_mm(task) {
  zap_page_range(task, USER_TEXT, mem[task + T_BRK]);
  zap_page_range(task, USER_STACK_LIMIT, USER_STACK_TOP);
  var pgd = mem[task + T_PGD];
  var i = 0;
  while (i < 768) {   // user half of the PGD
    var e = mem[KERNEL_BASE + pgd + i * 4];
    if ((e & PTE_P) != 0) {
      free_pages(KERNEL_BASE + (e & PTE_FRAME));
      mem[KERNEL_BASE + pgd + i * 4] = 0;
    }
    i = i + 1;
  }
  mem[TLB_ALL] = 1;
  return 0;
}

// fork: duplicate user mappings copy-on-write (mm/memory.c).
func copy_page_range(dst_task, src_task) {
  var spgd = mem[src_task + T_PGD];
  var dpgd = mem[dst_task + T_PGD];
  var i = 0;
  while (i < 768) {
    var se = mem[KERNEL_BASE + spgd + i * 4];
    if ((se & PTE_P) != 0) {
      var spt = KERNEL_BASE + (se & PTE_FRAME);
      var dpt = alloc_page();
      if (dpt == 0) { return -ENOMEM; }
      memset(dpt, 0, PAGE_SIZE);
      mem[KERNEL_BASE + dpgd + i * 4] =
          (dpt - KERNEL_BASE) | PTE_P | PTE_W | PTE_U;
      var j = 0;
      while (j < 1024) {
        var pte = mem[spt + j * 4];
        if ((pte & PTE_P) != 0) {
          pte = pte & ~PTE_W;            // both sides become read-only
          mem[spt + j * 4] = pte;
          mem[dpt + j * 4] = pte;
          get_page(KERNEL_BASE + (pte & PTE_FRAME));
        }
        j = j + 1;
      }
    }
    i = i + 1;
  }
  mem[TLB_ALL] = 1;
  return 0;
}

// ---- page cache (mm/filemap.c) ----

array page_hash[256];   // NPCH entries x PC_ENTRY bytes

func pgcache_init() {
  memset(page_hash, 0, NPCH * PC_ENTRY);
  return 0;
}

func page_hash_slot(ino, idx) {
  return page_hash + (((ino * 31) + idx) & (NPCH - 1)) * PC_ENTRY;
}

func __find_page_nolock(ino, idx) {
  var e = page_hash_slot(ino, idx);
  if (mem[e + PC_PAGE] != 0 && mem[e + PC_INO] == ino &&
      mem[e + PC_IDX] == idx) {
    return mem[e + PC_PAGE];
  }
  return 0;
}

func find_get_page(ino, idx) {
  return __find_page_nolock(ino, idx);
}

func add_to_page_cache(ino, idx, page) {
  assert(page != 0);                  // BUG()
  var e = page_hash_slot(ino, idx);
  if (mem[e + PC_PAGE] != 0) {
    free_pages(mem[e + PC_PAGE]);      // direct-mapped: evict collision
  }
  mem[e + PC_INO] = ino;
  mem[e + PC_IDX] = idx;
  mem[e + PC_PAGE] = page;
  return 0;
}

func invalidate_inode_pages(ino) {
  var i = 0;
  while (i < NPCH) {
    var e = page_hash + i * PC_ENTRY;
    if (mem[e + PC_PAGE] != 0 && mem[e + PC_INO] == ino) {
      free_pages(mem[e + PC_PAGE]);
      mem[e + PC_PAGE] = 0;
    }
    i = i + 1;
  }
  return 0;
}

// Reads the 4 disk blocks behind page `idx` of `inode` into a fresh
// page-cache page (the fs readpage path).
func read_inode_page(inode, idx) {
  var page = alloc_page();
  if (page == 0) { return 0; }
  memset(page, 0, PAGE_SIZE);
  var fblock = idx * (PAGE_SIZE / BLOCK_SIZE);
  var k = 0;
  while (k < (PAGE_SIZE / BLOCK_SIZE)) {
    var db = kfs_get_block(inode, fblock + k);
    if (db != 0) {
      var bh = bread(db);
      if (bh != 0) {
        memcpy(page + k * BLOCK_SIZE, mem[bh + BH_PAGE], BLOCK_SIZE);
      }
    }
    k = k + 1;
  }
  add_to_page_cache(mem[inode + IC_INO], idx, page);
  return page;
}

func file_read_actor(dst, src, n) {
  copy_to_user(dst, src, n);
  return n;
}

// The paper's Figure 5 function: transfers file data from the page
// cache to the user buffer.  end_index is the variable whose corruption
// produced the catastrophic incomplete-read crash.
func do_generic_file_read(filp, buf, count) {
  var inode = mem[filp + F_OBJ];
  var pos = mem[filp + F_POS];
  var isize = mem[inode + IC_SIZE];
  //H! assert(isize <=u MAX_FILE_SIZE);
  var end_index = isize >> PAGE_SHIFT;
  var done = 0;
  while (count >u 0) {
    if (pos >=u isize) { break; }
    var index = pos >> PAGE_SHIFT;
    if (index >u end_index) { break; }
    var page = find_get_page(mem[inode + IC_INO], index);
    if (page == 0) {
      page = read_inode_page(inode, index);
    }
    if (page == 0) { break; }
    var offset = pos & (PAGE_SIZE - 1);
    var n = PAGE_SIZE - offset;
    if (n >u count) { n = count; }
    if (n >u isize - pos) { n = isize - pos; }
    if (n == 0) { break; }
    file_read_actor(buf + done, page + offset, n);
    pos = pos + n;
    done = done + n;
    count = count - n;
  }
  mem[filp + F_POS] = pos;
  return done;
}
)MC";
}

}  // namespace kfi::kernel
