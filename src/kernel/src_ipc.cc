// ipc/ — a miniature System V semaphore facility behind sys_ipc.
#include "kernel/sources.h"

namespace kfi::kernel {

std::string ipc_source() {
  return R"MC(
// ipc/sem.c equivalent: 8 kernel semaphores addressed by id.
// sys_ipc(op, id, val): op 1 = semop +val (up), op 2 = semop -val
// (down, non-blocking: returns -EAGAIN when it would go negative),
// op 3 = read current value, op 4 = set value.

array sem_table[8];

func sema_init() {
  memset(sem_table, 0, 32);
  return 0;
}

func sys_ipc(op, id, val) {
  if (id >=u 8) { return -EINVAL; }
  var slot = sem_table + id * 4;
  if (op == 1) {
    mem[slot] = mem[slot] + val;
    return mem[slot];
  }
  if (op == 2) {
    if (mem[slot] < val) { return -EAGAIN; }
    mem[slot] = mem[slot] - val;
    return mem[slot];
  }
  if (op == 3) {
    return mem[slot];
  }
  if (op == 4) {
    mem[slot] = val;
    return 0;
  }
  return -EINVAL;
}
)MC";
}

}  // namespace kfi::kernel
