// kernel/ — scheduler, fork/exit/wait, timer, panic, boot sequence.
#include "kernel/sources.h"

namespace kfi::kernel {

std::string kernel_source() {
  return R"MC(
extern ret_from_fork;

// ---- global kernel state (kernel/sched.c) ----

global current = 0;
global need_resched = 0;
global jiffies = 0;
global next_pid = 2;
global child_wait = 0;          // wait queue for waitpid
array task_table[512];          // NTASKS x TASK_SIZE bytes

func task_slot(i) {
  return task_table + i * TASK_SIZE;
}

func find_free_task() {
  var i = 1;
  while (i < NTASKS) {
    if (mem[task_slot(i) + T_STATE] == TS_UNUSED) { return task_slot(i); }
    i = i + 1;
  }
  return 0;
}

func sched_init() {
  memset(task_table, 0, NTASKS * TASK_SIZE);
  need_resched = 0;
  jiffies = 0;
  next_pid = 2;
  child_wait = 0;
  return 0;
}

// On a uniprocessor this decides whether the woken task preempts the
// current one (the paper's §8 reschedule_idle example).
func reschedule_idle(p) {
  if (mem[p + T_COUNTER] > mem[current + T_COUNTER]) {
    need_resched = 1;
  }
  return 0;
}

func goodness(t) {
  return mem[t + T_COUNTER];
}

// ---- wait queues (kernel/sched.c) ----

func __wake_up(q) {
  var t = mem[q];
  while (t != 0) {
    mem[t + T_STATE] = TS_RUN;
    reschedule_idle(t);
    var nxt = mem[t + T_WAITNEXT];
    mem[t + T_WAITNEXT] = 0;
    t = nxt;
  }
  mem[q] = 0;
  return 0;
}

func wake_up(q) {
  return __wake_up(q);
}

func sleep_on(q) {
  assert(mem[current + T_PID] != 0);  // BUG(): the idle task never sleeps
  mem[current + T_STATE] = TS_SLEEP;
  mem[current + T_WAITNEXT] = mem[q];
  mem[q] = current;
  schedule();
  return 0;
}

// ---- the scheduler (kernel/sched.c) ----

func schedule() {
  need_resched = 0;
  var next = 0;
  var best = -1;
  var any = 0;
  var i = 1;
  while (i < NTASKS) {
    var t = task_slot(i);
    if (mem[t + T_STATE] == TS_RUN) {
      any = 1;
      if (goodness(t) > best) {
        best = goodness(t);
        next = t;
      }
    }
    i = i + 1;
  }
  if (any != 0 && best == 0) {
    // Every runnable task exhausted its quantum: recharge all.
    i = 1;
    while (i < NTASKS) {
      var t2 = task_slot(i);
      if (mem[t2 + T_STATE] != TS_UNUSED) {
        mem[t2 + T_COUNTER] = QUANTUM;
      }
      i = i + 1;
    }
  }
  if (any == 0) {
    next = task_slot(0);     // idle task
  }
  if (next == current) { return 0; }
  switch_to(current, next);
  return 0;
}

// ---- timer (kernel/timer.c) ----

func do_timer() {
  assert(current != 0);               // BUG()
  jiffies = jiffies + 1;
  var c = mem[current + T_COUNTER];
  if (c > 0) {
    mem[current + T_COUNTER] = c - 1;
  }
  if (mem[current + T_COUNTER] == 0) {
    need_resched = 1;
  }
  return 0;
}

// ---- fork (kernel/fork.c) ----

func copy_files(dst, src) {
  var i = 0;
  while (i < NFDS) {
    var f = mem[src + T_FILES + i * 4];
    if (f != 0) {
      mem[f + F_COUNT] = mem[f + F_COUNT] + 1;
    }
    mem[dst + T_FILES + i * 4] = f;
    i = i + 1;
  }
  return 0;
}

func do_fork() {
  var p = find_free_task();
  if (p == 0) { return -EAGAIN; }
  var kstack = alloc_page();
  if (kstack == 0) { return -ENOMEM; }
  var pgd = alloc_page();
  if (pgd == 0) { free_pages(kstack); return -ENOMEM; }
  memset(pgd, 0, PAGE_SIZE);
  // Kernel half of the address space is shared with everyone.
  var i = 768;
  while (i < 1024) {
    mem[pgd + i * 4] = mem[BOOT_PGD_VIRT + i * 4];
    i = i + 1;
  }
  memset(p, 0, TASK_SIZE);
  mem[p + T_PID] = next_pid;
  next_pid = next_pid + 1;
  mem[p + T_COUNTER] = QUANTUM;
  mem[p + T_PGD] = pgd - KERNEL_BASE;
  mem[p + T_KSTACK] = kstack + PAGE_SIZE;
  mem[p + T_PARENT] = current;
  mem[p + T_BRK] = mem[current + T_BRK];
  mem[p + T_TEXTEND] = mem[current + T_TEXTEND];
  copy_files(p, current);
  var r = copy_page_range(p, current);
  if (r != 0) { return r; }

  // Child kernel stack: a switch frame that "returns" into
  // ret_from_fork, which irets to user with eax = 0.  The user eip and
  // esp come from the parent's trap frame at the top of its kstack.
  var top = kstack + PAGE_SIZE;
  var ptop = mem[current + T_KSTACK];
  mem[top - 4] = 0;                       // fault addr
  mem[top - 8] = 0;                       // error code
  mem[top - 12] = 3;                      // cpl
  mem[top - 16] = mem[ptop - 16];         // user esp
  mem[top - 20] = 0x202;                  // eflags (IF)
  mem[top - 24] = mem[ptop - 24];         // user eip
  // Copy the parent's saved user registers (pushed by system_call).
  var off = 28;
  while (off <= 56) {
    mem[top - off] = mem[ptop - off];
    off = off + 4;
  }
  mem[top - 60] = &ret_from_fork;
  mem[top - 64] = 0;                      // ebp
  mem[top - 68] = 0;                      // ebx
  mem[top - 72] = 0;                      // esi
  mem[top - 76] = 0;                      // edi
  mem[p + T_KESP] = top - 76;
  mem[p + T_STATE] = TS_RUN;
  return mem[p + T_PID];
}

func sys_fork(a, b, c) {
  return do_fork();
}

// ---- exit and wait (kernel/exit.c) ----

func system_shutdown(code) {
  printk("INIT: exiting\n");
  printk("System halted.\n");
  mem[CRASH_ADDR] = code;
  mem[CRASH_EIP] = 0;
  mem[CRASH_CAUSE] = C_SHUTDOWN;
  while (1) { }
  return 0;
}

func do_exit(code) {
  assert(mem[current + T_STATE] == TS_RUN);  // BUG()
  if (mem[current + T_PID] == 1) {
    system_shutdown(code);
  }
  var i = 0;
  while (i < NFDS) {
    var f = mem[current + T_FILES + i * 4];
    if (f != 0) {
      fput(f);
      mem[current + T_FILES + i * 4] = 0;
    }
    i = i + 1;
  }
  exit_mm(current);
  mem[current + T_EXIT] = code;
  mem[current + T_STATE] = TS_ZOMBIE;
  wake_up(&child_wait);
  schedule();
  return 0;   // unreachable: we are a zombie
}

func sys_exit(code, b, c) {
  do_exit((code & 0xFF) << 8);
  return 0;
}

func sys_waitpid(pid, status_ptr, opts) {
  while (1) {
    var i = 1;
    var have_children = 0;
    while (i < NTASKS) {
      var t = task_slot(i);
      if (mem[t + T_STATE] != TS_UNUSED && mem[t + T_PARENT] == current) {
        have_children = 1;
        if (mem[t + T_STATE] == TS_ZOMBIE) {
          if (pid == -1 || mem[t + T_PID] == pid) {
            var rpid = mem[t + T_PID];
            if (status_ptr != 0) {
              mem[status_ptr] = mem[t + T_EXIT];
            }
            free_pages(mem[t + T_KSTACK] - PAGE_SIZE);
            free_pages(KERNEL_BASE + mem[t + T_PGD]);
            mem[t + T_STATE] = TS_UNUSED;
            return rpid;
          }
        }
      }
      i = i + 1;
    }
    if (have_children == 0) { return -10; }   // -ECHILD
    sleep_on(&child_wait);
  }
  return 0;
}

func sys_getpid(a, b, c) {
  return mem[current + T_PID];
}

func sys_brk(newbrk, b, c) {
  if (newbrk == 0) { return mem[current + T_BRK]; }
  if (newbrk <u USER_DATA || newbrk >=u USER_STACK_LIMIT) {
    return -EINVAL;
  }
  mem[current + T_BRK] = newbrk;
  return newbrk;
}

// ---- panic (kernel/panic.c) ----

func panic(msg) {
  printk("Kernel panic: ");
  printk(msg);
  printk("\n");
  mem[CRASH_ADDR] = 0;
  mem[CRASH_EIP] = 0;
  mem[CRASH_CAUSE] = C_PANIC;
  while (1) { }
  return 0;
}

// ---- boot (init/main.c) ----

func setup_idle_task() {
  var t = task_slot(0);
  mem[t + T_STATE] = TS_RUN;
  mem[t + T_PID] = 0;
  mem[t + T_COUNTER] = 0;
  mem[t + T_PGD] = BOOT_PGD_PHYS;
  mem[t + T_KSTACK] = BOOT_STACK_TOP;
  current = t;
  return 0;
}

func create_init_task() {
  var p = find_free_task();
  assert(p != 0);
  var kstack = alloc_page();
  var pgd = alloc_page();
  assert(kstack != 0);
  assert(pgd != 0);
  memset(pgd, 0, PAGE_SIZE);
  var i = 768;
  while (i < 1024) {
    mem[pgd + i * 4] = mem[BOOT_PGD_VIRT + i * 4];
    i = i + 1;
  }
  memset(p, 0, TASK_SIZE);
  mem[p + T_PID] = 1;
  mem[p + T_COUNTER] = QUANTUM;
  mem[p + T_PGD] = pgd - KERNEL_BASE;
  mem[p + T_KSTACK] = kstack + PAGE_SIZE;

  // Map the workload image prepared by the boot loader.
  var tv = mem[BOOT_INFO + BI_TEXT_VADDR];
  var tp = mem[BOOT_INFO + BI_TEXT_PHYS];
  var tl = mem[BOOT_INFO + BI_TEXT_LEN];
  var off = 0;
  while (off <u tl) {
    map_page(mem[p + T_PGD], tv + off, KERNEL_BASE + tp + off, PTE_U);
    off = off + PAGE_SIZE;
  }
  var dv = mem[BOOT_INFO + BI_DATA_VADDR];
  var dp = mem[BOOT_INFO + BI_DATA_PHYS];
  var dl = mem[BOOT_INFO + BI_DATA_LEN];
  off = 0;
  while (off <u dl) {
    map_page(mem[p + T_PGD], dv + off, KERNEL_BASE + dp + off,
             PTE_U | PTE_W);
    off = off + PAGE_SIZE;
  }
  mem[p + T_TEXTEND] = tv + tl;
  mem[p + T_BRK] = dv + dl + 0x40000;     // 256 KiB heap headroom

  // One eagerly mapped stack page; growth is demand-paged.
  var sp = alloc_page();
  assert(sp != 0);
  memset(sp, 0, PAGE_SIZE);
  map_page(mem[p + T_PGD], USER_STACK_TOP - PAGE_SIZE, sp, PTE_U | PTE_W);

  // stdin/stdout/stderr on the console.
  var cf = get_empty_filp();
  assert(cf != 0);
  mem[cf + F_TYPE] = FT_CONSOLE;
  mem[cf + F_COUNT] = 3;
  mem[p + T_FILES + 0] = cf;
  mem[p + T_FILES + 4] = cf;
  mem[p + T_FILES + 8] = cf;

  // Kernel stack: iret into the workload's entry point with a zeroed
  // user register set.
  var top = kstack + PAGE_SIZE;
  mem[top - 4] = 0;
  mem[top - 8] = 0;
  mem[top - 12] = 3;
  mem[top - 16] = USER_STACK_TOP - 16;
  mem[top - 20] = 0x202;
  mem[top - 24] = mem[BOOT_INFO + BI_ENTRY];
  var regoff = 28;
  while (regoff <= 56) {
    mem[top - regoff] = 0;
    regoff = regoff + 4;
  }
  mem[top - 60] = &ret_from_fork;
  mem[top - 64] = 0;
  mem[top - 68] = 0;
  mem[top - 72] = 0;
  mem[top - 76] = 0;
  mem[p + T_KESP] = top - 76;
  mem[p + T_STATE] = TS_RUN;
  return p;
}

func cpu_idle() {
  while (1) {
    asm("sti");
    if (need_resched != 0) { schedule(); }
    asm("hlt");
  }
  return 0;
}

func start_kernel() {
  mm_init();
  pgcache_init();
  buffer_init();
  inode_init();
  sched_init();
  sema_init();
  net_init();
  kfs_read_super();
  printk("kfi-linux 2.4.19 (kfs root) booting\n");
  setup_idle_task();
  create_init_task();
  cpu_idle();
  return 0;
}
)MC";
}

}  // namespace kfi::kernel
