// drivers/ — console (tty) and block device driver.
#include "kernel/sources.h"

namespace kfi::kernel {

std::string drivers_source() {
  return R"MC(
// drivers/char/console.c equivalents.

func console_putc(c) {
  mem[CON_PORT] = c & 0xFF;
  return 0;
}

func console_write(buf, n) {
  var i = 0;
  while (i < n) {
    console_putc(memb[buf + i]);
    i = i + 1;
  }
  return n;
}

func printk(s) {
  var n = strlen(s);
  console_write(s, n);
  return n;
}

func printk_hex(v) {
  var i = 28;
  while (i >= 0) {
    var d = (v >> i) & 0xF;
    if (d < 10) { console_putc(48 + d); }
    else { console_putc(87 + d); }   // 'a' - 10
    i = i - 4;
  }
  return 0;
}

func printk_dec(v) {
  if (v == 0) { console_putc(48); return 0; }
  array_scratch_guard();
  var div = 1000000000;
  var started = 0;
  while (div != 0) {
    var d = v / div;
    v = v % div;
    if (d != 0 || started != 0 || div == 1) {
      console_putc(48 + d);
      started = 1;
    }
    div = div / 10;
  }
  return 0;
}

// Placeholder so printk_dec keeps a realistic call in its body (the
// profiler needs cross-function edges in drivers/ too).
func array_scratch_guard() {
  return 0;
}

// drivers/block — synchronous request interface to the MMIO disk port.
// cmd: 1 = read, 2 = write.  Returns the device status (0 = ok).
func ll_rw_block(cmd, block, kvaddr) {
  mem[DISK_BLOCK] = block;
  mem[DISK_PHYS] = kvaddr - KERNEL_BASE;
  mem[DISK_CMD] = cmd;
  return mem[DISK_STATUS];
}
)MC";
}

}  // namespace kfi::kernel
