// The mini-kernel's source code, one unit per subsystem.
//
// Each function returns MiniC source (or kasm for the assembly parts of
// arch/).  The kernel builder compiles and links them into the final
// image; every function carries its Linux 2.4 counterpart's name so the
// paper's per-function findings map one-to-one.
#pragma once

#include <string>

namespace kfi::kernel {

std::string arch_source();       // MiniC: do_page_fault, trap handlers, oops
std::string arch_asm_source();   // kasm: entry stubs, switch_to, syscall table
std::string kernel_source();     // MiniC: scheduler, fork/exit/wait, timer
std::string mm_source();         // MiniC: page allocator, page cache, COW
std::string fs_source();         // MiniC: VFS, kfs, buffer cache, pipes
std::string drivers_source();    // MiniC: console + block driver
std::string lib_source();        // MiniC: string/memory helpers
std::string ipc_source();        // MiniC: System V-ish semaphores
std::string net_source();        // MiniC: loopback datagram sockets

}  // namespace kfi::kernel
