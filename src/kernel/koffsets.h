// In-kernel data structure layouts, shared between the MiniC kernel
// source (via the generated constants preamble) and host-side tooling
// (tests, the injector's crash analysis).
//
// All structures are word-granular; offsets are in bytes.
#pragma once

#include <cstdint>

namespace kfi::kernel {

// ---- task_struct (128 bytes, kNumTasks slots in task_table) ----
inline constexpr std::uint32_t kNumTasks = 16;
inline constexpr std::uint32_t kTaskSize = 128;
inline constexpr std::uint32_t T_STATE = 0;
inline constexpr std::uint32_t T_PID = 4;
inline constexpr std::uint32_t T_COUNTER = 8;   // scheduling quantum left
inline constexpr std::uint32_t T_PGD = 12;      // physical address of PGD
inline constexpr std::uint32_t T_KESP = 16;     // saved kernel esp
inline constexpr std::uint32_t T_KSTACK = 20;   // kernel stack top (esp0)
inline constexpr std::uint32_t T_PARENT = 24;   // parent task pointer
inline constexpr std::uint32_t T_EXIT = 28;
inline constexpr std::uint32_t T_BRK = 32;      // heap end
inline constexpr std::uint32_t T_WAITNEXT = 36; // wait-queue link
inline constexpr std::uint32_t T_TEXTEND = 40;  // user text vma end
inline constexpr std::uint32_t T_FILES = 44;    // kNumFds file pointers
inline constexpr std::uint32_t kNumFds = 8;

// Task states.
inline constexpr std::uint32_t TS_UNUSED = 0;
inline constexpr std::uint32_t TS_RUN = 1;
inline constexpr std::uint32_t TS_SLEEP = 2;
inline constexpr std::uint32_t TS_ZOMBIE = 3;

inline constexpr std::uint32_t kDefaultQuantum = 6;

// ---- struct file (16 bytes, kmalloc'd) ----
inline constexpr std::uint32_t F_TYPE = 0;
inline constexpr std::uint32_t F_OBJ = 4;   // inode* or pipe*
inline constexpr std::uint32_t F_POS = 8;
inline constexpr std::uint32_t F_COUNT = 12;
inline constexpr std::uint32_t FT_FILE = 1;
inline constexpr std::uint32_t FT_PIPE_R = 2;
inline constexpr std::uint32_t FT_PIPE_W = 3;
inline constexpr std::uint32_t FT_CONSOLE = 4;

// ---- in-core inode (64 bytes, kNumInodeCache slots) ----
inline constexpr std::uint32_t kNumInodeCache = 32;
inline constexpr std::uint32_t IC_INO = 0;
inline constexpr std::uint32_t IC_MODE = 4;
inline constexpr std::uint32_t IC_SIZE = 8;
inline constexpr std::uint32_t IC_BLOCKS = 12;  // 10 words
inline constexpr std::uint32_t IC_COUNT = 52;
inline constexpr std::uint32_t IC_DIRTY = 56;
inline constexpr std::uint32_t kInodeCacheEntry = 64;

// ---- pipe (32 bytes + one data page) ----
inline constexpr std::uint32_t P_PAGE = 0;
inline constexpr std::uint32_t P_HEAD = 4;
inline constexpr std::uint32_t P_LEN = 8;
inline constexpr std::uint32_t P_READERS = 12;
inline constexpr std::uint32_t P_WRITERS = 16;
inline constexpr std::uint32_t P_WAIT = 20;
inline constexpr std::uint32_t kPipeBufSize = 4096;

// ---- buffer cache (kNumBh entries x 16 bytes) ----
inline constexpr std::uint32_t kNumBh = 32;
inline constexpr std::uint32_t BH_BLOCK = 0;
inline constexpr std::uint32_t BH_PAGE = 4;
inline constexpr std::uint32_t BH_VALID = 8;
inline constexpr std::uint32_t kBhEntry = 16;

// ---- page cache (kNumPageHash entries x 16 bytes) ----
inline constexpr std::uint32_t kNumPageHash = 64;
inline constexpr std::uint32_t PC_INO = 0;
inline constexpr std::uint32_t PC_IDX = 4;
inline constexpr std::uint32_t PC_PAGE = 8;
inline constexpr std::uint32_t kPcEntry = 16;

// ---- trap frame (pushed by the CPU, see vm::Cpu::deliver) ----
inline constexpr std::uint32_t TF_EIP = 0;
inline constexpr std::uint32_t TF_EFLAGS = 4;
inline constexpr std::uint32_t TF_ESP = 8;
inline constexpr std::uint32_t TF_CPL = 12;
inline constexpr std::uint32_t TF_ERR = 16;
inline constexpr std::uint32_t TF_ADDR = 20;

// ---- boot info (written by the host loader at kBootInfoPhys) ----
inline constexpr std::uint32_t BI_ENTRY = 0;
inline constexpr std::uint32_t BI_TEXT_VADDR = 4;
inline constexpr std::uint32_t BI_TEXT_PHYS = 8;
inline constexpr std::uint32_t BI_TEXT_LEN = 12;
inline constexpr std::uint32_t BI_DATA_VADDR = 16;
inline constexpr std::uint32_t BI_DATA_PHYS = 20;
inline constexpr std::uint32_t BI_DATA_LEN = 24;

// Physical region the host loader parks the workload image in (mapped
// into the init task by the kernel; below the page allocator's range).
inline constexpr std::uint32_t kWorkloadPhysBase = 0x00300000;
inline constexpr std::uint32_t kWorkloadPhysSize = 0x00100000;

// ---- crash port causes (MMIO kCrashMmio) ----
// +0 = cause (commits), +4 = fault address, +8 = faulting eip.
inline constexpr std::uint32_t CRASH_NULL_POINTER = 1;
inline constexpr std::uint32_t CRASH_PAGING_REQUEST = 2;
inline constexpr std::uint32_t CRASH_INVALID_OPCODE = 3;
inline constexpr std::uint32_t CRASH_GP_FAULT = 4;
inline constexpr std::uint32_t CRASH_DIVIDE = 5;
inline constexpr std::uint32_t CRASH_PANIC = 6;
inline constexpr std::uint32_t CRASH_INT3 = 7;
inline constexpr std::uint32_t CRASH_BOUNDS = 8;
inline constexpr std::uint32_t CRASH_INVALID_TSS = 9;
inline constexpr std::uint32_t CRASH_STACK = 10;
inline constexpr std::uint32_t CRASH_OVERFLOW = 11;
inline constexpr std::uint32_t CRASH_SEG_NOT_PRESENT = 12;
inline constexpr std::uint32_t CRASH_OUT_OF_MEMORY = 13;
inline constexpr std::uint32_t CRASH_DOUBLE_FAULT = 14;
inline constexpr std::uint32_t CRASH_CLEAN_SHUTDOWN = 100;

// ---- TLB/MMU control port (MMIO kTlbMmio) ----
inline constexpr std::uint32_t TLB_FLUSH_PAGE = 0;  // write vaddr
inline constexpr std::uint32_t TLB_FLUSH_ALL = 4;   // write anything
inline constexpr std::uint32_t TLB_SET_CR3 = 8;     // write PGD phys

// ---- syscall numbers (Linux 2.4 values) ----
inline constexpr std::uint32_t SYS_EXIT = 1;
inline constexpr std::uint32_t SYS_FORK = 2;
inline constexpr std::uint32_t SYS_READ = 3;
inline constexpr std::uint32_t SYS_WRITE = 4;
inline constexpr std::uint32_t SYS_OPEN = 5;
inline constexpr std::uint32_t SYS_CLOSE = 6;
inline constexpr std::uint32_t SYS_WAITPID = 7;
inline constexpr std::uint32_t SYS_CREAT = 8;
inline constexpr std::uint32_t SYS_UNLINK = 10;
inline constexpr std::uint32_t SYS_LSEEK = 19;
inline constexpr std::uint32_t SYS_GETPID = 20;
inline constexpr std::uint32_t SYS_DUP = 41;
inline constexpr std::uint32_t SYS_PIPE = 42;
inline constexpr std::uint32_t SYS_BRK = 45;
inline constexpr std::uint32_t SYS_SOCKETCALL = 102;
inline constexpr std::uint32_t SYS_IPC = 117;
inline constexpr std::uint32_t kNumSyscalls = 128;

// ---- errno values (Linux) ----
inline constexpr std::uint32_t KE_ENOENT = 2;
inline constexpr std::uint32_t KE_EBADF = 9;
inline constexpr std::uint32_t KE_EAGAIN = 11;
inline constexpr std::uint32_t KE_ENOMEM = 12;
inline constexpr std::uint32_t KE_EEXIST = 17;
inline constexpr std::uint32_t KE_EINVAL = 22;
inline constexpr std::uint32_t KE_EMFILE = 24;
inline constexpr std::uint32_t KE_ENOSPC = 28;
inline constexpr std::uint32_t KE_ESPIPE = 29;
inline constexpr std::uint32_t KE_EPIPE = 32;
inline constexpr std::uint32_t KE_ENOSYS = 38;

// open(2) flags.
inline constexpr std::uint32_t KO_RDONLY = 0;
inline constexpr std::uint32_t KO_WRONLY = 1;
inline constexpr std::uint32_t KO_RDWR = 2;
inline constexpr std::uint32_t KO_CREAT = 0x40;
inline constexpr std::uint32_t KO_TRUNC = 0x200;

inline constexpr std::uint32_t kTimerPeriodCycles = 5000;

}  // namespace kfi::kernel
