// MiniC constants preamble generation (see constants.cc).
#pragma once

#include <string>

namespace kfi::kernel {

// Returns `const NAME = 0x...;` MiniC declarations for every layout,
// MMIO, kfs, and ABI constant the kernel source uses.  Prepended to
// each kernel MiniC unit by the builder.
std::string kernel_constants_minic();

}  // namespace kfi::kernel
