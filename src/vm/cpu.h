// The KX86 CPU core: fetch/decode/execute with IA-32-style privilege
// levels, trap delivery through a vector table, debug registers (the
// injection trigger, as in the paper's injector and Xception), and a
// cycle counter (the paper's performance counter for crash latency).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "isa/decode.h"
#include "isa/flags_meta.h"
#include "isa/instruction.h"
#include "isa/isa.h"
#include "vm/bus.h"
#include "vm/layout.h"
#include "vm/memory.h"
#include "vm/mmu.h"

namespace kfi::trace {
class TraceBuffer;
}

namespace kfi::vm {

// What step() observed.  Executed is the common case; everything else
// is a host-visible event.
enum class CpuEventKind : std::uint8_t {
  Executed,     // one instruction retired (possibly delivering a trap)
  Breakpoint,   // debug register matched at fetch; instruction NOT executed
  Halted,       // hlt with interrupts enabled; host advances time
  DoubleFault,  // trap delivery failed twice: CPU is dead (hard hang)
};

struct CpuEvent {
  CpuEventKind kind = CpuEventKind::Executed;
  int breakpoint_index = -1;
  bool trap_taken = false;     // a trap was delivered during this step
  isa::Trap trap = isa::Trap::None;
};

// Record of the most recent trap delivery; the crash handler analysis
// reads this to timestamp manifestation (paper §5.3: the latency is
// measured at the fault, with handler switching time subtracted).
struct TrapRecord {
  isa::Trap trap = isa::Trap::None;
  std::uint32_t error_code = 0;
  std::uint32_t fault_addr = 0;
  std::uint32_t faulting_eip = 0;
  int faulting_cpl = 0;
  std::uint64_t cycle = 0;
};

class Cpu {
 public:
  Cpu(PhysicalMemory& memory, Bus& bus);

  // --- Architectural state ---
  std::uint32_t reg(isa::Reg r) const { return regs_[static_cast<int>(r)]; }
  void set_reg(isa::Reg r, std::uint32_t v) { regs_[static_cast<int>(r)] = v; }
  std::uint32_t eip() const { return eip_; }
  void set_eip(std::uint32_t v) { eip_ = v; }
  const isa::Flags& flags() const { return flags_; }
  isa::Flags& flags() { return flags_; }
  int cpl() const { return cpl_; }
  void set_cpl(int cpl) { cpl_ = cpl; }
  Mmu& mmu() { return mmu_; }

  std::uint64_t cycles() const { return cycles_; }
  void set_cycles(std::uint64_t cycles) { cycles_ = cycles; }

  // Clears dead/halted/resume state when the host restores a snapshot.
  void reset_fault_state() {
    dead_ = false;
    halted_ = false;
    resume_flag_ = false;
  }
  bool halted() const { return halted_; }
  // Host-side restore of a mid-run checkpoint captured while the CPU
  // was sitting in hlt.
  void set_halted(bool halted) { halted_ = halted; }

  // --- Trap vector table (the "IDT", programmed by the boot loader) ---
  void set_vector(int vector, std::uint32_t handler_vaddr);
  std::uint32_t vector(int v) const { return vectors_[v & 0xFF]; }

  // --- Debug registers (injection trigger) ---
  // Arms breakpoint `index` (0..3) on instruction address `vaddr`.
  void arm_breakpoint(int index, std::uint32_t vaddr);
  void disarm_breakpoint(int index);

  // --- Execution ---
  CpuEvent step();

  // Superblock engine: executes up to `max_instructions` predecoded
  // straight-line micro-ops starting at the current eip with a single
  // dispatch, and returns the number retired (0 = the caller must
  // single-step via step()).  Guards hoisted out of the inner loop:
  //   - the caller bounds `max_instructions` so no timer tick,
  //     checkpoint rung, or run deadline can fall inside the block;
  //   - a block containing an instruction whose address matches an
  //     armed debug register is refused (single-step delivers the
  //     Breakpoint event at the exact instruction);
  //   - each micro-op re-verifies its fetch translation and code-page
  //     write version before executing, so self-modifying code, page
  //     remaps, and injection flips break out of the block exactly
  //     where the stepping engine would re-decode;
  //   - `stop` (the host's crash-port latch) aborts the block after
  //     the instruction that sets it, and traps/hlt/double faults end
  //     it exactly as step() would surface them.
  // Executing N micro-ops is bit-identical to N step() calls.
  //
  // With chaining enabled (set_chaining), a fully executed block whose
  // terminator cannot enable interrupts follows a per-terminator
  // successor link (taken / fall-through slots) to the next block and
  // keeps executing inside this one dispatch, up to `max_instructions`.
  // Links are monomorphic inline caches validated on every follow
  // against the successor's entry paddr/vaddr and code-page version,
  // so the page-version invalidation scheme (and invalidate_blocks()
  // at injection flip sites) severs stale chains automatically.
  std::size_t run_block(std::uint64_t max_instructions, const bool* stop,
                        CpuEvent& event);

  // Enables block chaining + trace widening + the per-dispatch inline
  // translate cache (ExecEngine::Chained).  Off by default: plain
  // ExecEngine::Block keeps the PR 3 one-block-per-dispatch behavior.
  void set_chaining(bool enabled) {
    if (chain_enabled_ != enabled) drop_all_blocks();
    chain_enabled_ = enabled;
  }
  bool chaining() const { return chain_enabled_; }

  // Enables direct-threaded dispatch with flag-liveness elision
  // (ExecEngine::Threaded; implies chaining, which the machine layer
  // turns on alongside).  Each micro-op's handler pointer and elision
  // mask are resolved at trace-build time; blocks built under one
  // dispatch mode are never executed under another (the cache is
  // dropped on any mode change).
  void set_threaded(bool enabled) {
    if (threaded_ != enabled) {
      drop_all_blocks();
      drop_dtlb();
    }
    threaded_ = enabled;
  }
  bool threaded() const { return threaded_; }

  // Enables the data-side fast paths (ExecEngine::Memfast; implies
  // threaded+chained, which the machine layer turns on alongside):
  //   - a software D-TLB in front of read_v/write_v, so loads and
  //     stores whose translation is provably still a TLB hit (same
  //     page, same cpl, Mmu epoch unchanged since the fill, write
  //     permission proven for stores) skip the mmu_.translate call;
  //   - trace formation widened past conditional branches — the
  //     decoder follows the statically predicted edge (backward taken,
  //     forward fall-through) and the dispatch loop side-exits fail-
  //     closed when execution leaves the predecoded path.
  // Both are pure fast paths: any miss falls back to the exact
  // stepping-engine code, so trap delivery, TLB-fill histories, and
  // campaign digests are bit-identical to every other engine.
  void set_memfast(bool enabled) {
    if (memfast_ != enabled) {
      drop_all_blocks();
      drop_dtlb();
    }
    memfast_ = enabled;
  }
  bool memfast() const { return memfast_; }

  // Drops every cached block containing a micro-op on the page holding
  // `paddr`.  The injector calls this on its bit flip; the per-op
  // version check would catch the stale block anyway, so this is a
  // fast-path hint, not a correctness requirement.
  void invalidate_blocks(std::uint32_t paddr);

  // Delivers an external interrupt (timer) if IF is set; returns true if
  // delivered.  The host calls this between steps.
  bool deliver_interrupt(isa::Trap trap);

  const TrapRecord& last_trap() const { return last_trap_; }

  // Attaches a forensics event sink (nullptr = off, the default).  The
  // CPU records trap deliveries (frame essentials), trap returns, and
  // block-cache invalidations into it.  Strictly observational: no
  // architectural state, cycle count, or execution path depends on the
  // sink — tracing on and off are bit-identical.
  void set_trace_sink(kfi::trace::TraceBuffer* sink) { trace_sink_ = sink; }

  // Attaches a kernel-store footprint sink (nullptr = off, the
  // default): every physical byte address a cpl-0 store commits is
  // inserted.  Purely observational — the golden-cache capture run
  // (already a stepping run: coverage tracing disables the block
  // engine) records the written-data footprint campaign E draws its
  // fault addresses from.
  void set_write_trace(std::unordered_set<std::uint32_t>* sink) {
    write_trace_ = sink;
  }

  // Whether the CPU is permanently stopped (double fault escalated).
  bool dead() const { return dead_; }

  // Decode-cache telemetry: hits skip fetch+decode entirely; misses
  // paid the full decode path.  Cumulative over the CPU's lifetime.
  std::uint64_t decode_hits() const { return decode_hits_; }
  std::uint64_t decode_misses() const { return decode_misses_; }

  // Block-engine telemetry.  A run_block() entry either hits a cached
  // block, builds one (then executes it), or falls back to step().
  std::uint64_t blocks_built() const { return blocks_built_; }
  std::uint64_t block_hits() const { return block_hits_; }
  std::uint64_t block_fallbacks() const { return block_fallbacks_; }
  std::uint64_t block_invalidations() const { return block_invalidations_; }
  // Instructions retired through blocks (avg executed block length =
  // block_ops / (block_hits + blocks_built)).
  std::uint64_t block_ops() const { return block_ops_; }
  // Chained-dispatch telemetry: block-to-block transitions taken
  // inside a single run_block dispatch, link follows that failed
  // validation (severed by invalidation, slot reuse, or a retargeted
  // indirect branch), and total micro-ops across built blocks (avg
  // built trace length = trace_len / blocks_built).
  std::uint64_t chain_follows() const { return chain_follows_; }
  std::uint64_t chain_breaks() const { return chain_breaks_; }
  std::uint64_t trace_len() const { return trace_len_; }
  // Threaded-dispatch telemetry: micro-ops retired through resolved
  // handler pointers, and individual flag-register writes skipped by
  // the liveness elision (a fully elided add counts 5: CF PF ZF SF OF).
  std::uint64_t threaded_ops() const { return threaded_ops_; }
  std::uint64_t flag_elisions() const { return flag_elisions_; }
  // Memfast telemetry: loads/stores resolved through the D-TLB vs ones
  // that paid the full translate (misses also count fail-closed
  // fallbacks: page-crossing, MMIO, unproven write permission),
  // conditional edges widened into traces at build time, and dispatches
  // that left a widened trace through the guarded side exit.  All four
  // stay zero under every other engine.
  std::uint64_t dtlb_hits() const { return dtlb_hits_; }
  std::uint64_t dtlb_misses() const { return dtlb_misses_; }
  std::uint64_t cond_widened() const { return cond_widened_; }
  std::uint64_t side_exits() const { return side_exits_; }

  // Test hook: per-op elided-flag masks (isa::kFlag* bits) of the
  // cached threaded block entered at `vaddr`, empty when no such block
  // is cached.  Lets the liveness unit suite pin exact masks against
  // blocks the real trace builder produced.
  std::vector<std::uint8_t> block_elision_masks(std::uint32_t vaddr) const;

  // Virtual-memory accessors for the host (debugger/loader view).
  // They use the current privilege translation but never trap; failures
  // return false.
  bool peek32(std::uint32_t vaddr, std::uint32_t& value);
  bool peek8(std::uint32_t vaddr, std::uint8_t& value);

 private:
  // The per-opcode handler functions live in cpu.cc; each one is the
  // body of the old execute() switch case, templated on whether the
  // arithmetic flag computation is performed.  `execute` dispatches
  // through the full-flag handler table, so step() and the threaded
  // engine share a single implementation of every opcode.
  friend struct OpHandlers;
  using HandlerFn = bool (*)(Cpu&, const isa::Instruction&);

  // Raises a trap against the current instruction (eip_ points at it).
  // Returns false if delivery escalated into a dead CPU.
  bool raise(isa::Trap trap, std::uint32_t error_code, std::uint32_t addr);
  bool deliver(isa::Trap trap, std::uint32_t error_code, std::uint32_t addr,
               int depth);

  // Guest memory access; on failure raises #PF/#GP and returns false.
  bool read_v(std::uint32_t vaddr, std::uint32_t size, std::uint32_t& value);
  bool write_v(std::uint32_t vaddr, std::uint32_t size, std::uint32_t value);
  bool push32(std::uint32_t value);
  bool pop32(std::uint32_t& value);

  // Operand helpers.
  bool operand_addr(const isa::Operand& op, std::uint32_t& addr);
  bool read_operand(const isa::Operand& op, std::uint32_t& value);
  bool write_operand(const isa::Operand& op, std::uint32_t value);

  void set_logic_flags32(std::uint32_t result);
  void set_logic_flags8(std::uint8_t result);

  bool execute(const isa::Instruction& instr);

  PhysicalMemory& memory_;
  Bus& bus_;
  Mmu mmu_;

  std::uint32_t regs_[isa::kRegCount] = {};
  std::uint32_t eip_ = 0;
  isa::Flags flags_;
  int cpl_ = 0;
  std::uint64_t cycles_ = 0;
  bool dead_ = false;
  bool halted_ = false;

  std::uint32_t vectors_[256] = {};

  struct DebugReg {
    bool enabled = false;
    std::uint32_t addr = 0;
  };
  DebugReg debug_[4];
  bool resume_flag_ = false;  // suppress re-trigger after a breakpoint

  // Decode cache: direct-mapped on the instruction's physical address,
  // invalidated through PhysicalMemory's per-page write versions.
  // Only instructions that fit within one physical page are cached.
  struct DecodedSlot {
    std::uint32_t paddr = 0xFFFFFFFF;
    std::uint64_t version = 0;
    isa::Instruction instr;
  };
  static constexpr std::uint32_t kDecodeCacheSize = 16384;  // power of two
  std::vector<DecodedSlot> decode_cache_;
  std::uint64_t decode_hits_ = 0;
  std::uint64_t decode_misses_ = 0;

  // Trace cache: predecoded straight-line runs ("superblocks") ending
  // at a branch/trapping/privileged op, keyed direct-mapped on the
  // entry instruction's physical address.  Micro-ops live in one
  // contiguous array per block, so execution walks memory linearly
  // instead of re-probing the direct-mapped decode cache per step.
  // With chaining enabled, blocks widen into traces across direct jmp
  // and call (statically known targets), so op addresses need not be
  // contiguous — every op carries its own vaddr.
  // Field order keeps the struct at 72 bytes (fn before instr avoids
  // alignment padding) with the threaded hot path's fields — fn, the
  // instruction, and the guard flags — packed up front.
  struct MicroOp {
    std::uint32_t vaddr = 0;     // instruction-start virtual address
    std::uint32_t paddr = 0;     // fetch identity: physical address...
    // Threaded dispatch (resolved at build time, unused otherwise):
    // the handler pointer (a no-flags variant when `elided` != 0), the
    // isa::kFlag* mask of elided flag writes, and whether the op is an
    // SMC gate (set on the op right after each in-trace memory write —
    // the only event that can bump a code-page version mid-dispatch).
    // A gate re-validates the trace's whole page set; everything else
    // is covered by the whole-trace prevalidation at entry.
    HandlerFn fn = nullptr;
    isa::Instruction instr;
    std::uint8_t elided = 0;
    bool verify = false;
    std::uint64_t version = 0;   // code-page version at decode
  };
  // A monomorphic successor link: the last observed branch target and
  // the cache slot it resolved to.  Never trusted blind — every follow
  // re-validates the slot's entry identity and code-page version, so a
  // link severed by invalidation or overwritten by slot reuse fails
  // closed into an ordinary probe.
  struct ChainLink {
    std::uint32_t vaddr = 0;
    std::uint32_t index = kNoBlock;
  };
  struct Block {
    std::uint32_t entry_paddr = kNoBlock;
    std::uint32_t entry_vaddr = 0;  // alias guard: build-time entry eip
    std::uint32_t vmin = 0;         // op-vaddr range (breakpoint prefilter)
    std::uint32_t vmax = 0;
    ChainLink links[2];             // [0] taken/target, [1] fall-through
    std::vector<MicroOp> ops;
    // Threaded-mode state.  `threaded` marks that fn/elided/verify are
    // resolved (a block built under one mode never runs under the
    // other).  `pages` holds the distinct (code page, version) pairs
    // the trace spans BEYOND the entry page — the entry page is
    // already version-checked by every cache probe and chain-link
    // validation, and most traces span only it, so the common-case
    // pages_fresh() is an empty-vector check.  Re-validated at every
    // entry and chain follow: a flip or restore-driven version bump
    // anywhere in the trace forces a rebuild before any elided op can
    // run, because the elision proof assumes all guards hold at
    // dispatch entry.
    bool threaded = false;
    // Built with conditional-edge widening (memfast mode): ops after a
    // mid-trace jcc sit on the statically predicted edge and the
    // dispatch loop runs the per-op `vaddr == eip` side-exit guard.
    // Like `threaded`, a block built under one mode never runs under
    // the other.
    bool memfast = false;
    std::uint64_t elided_writes = 0;  // popcount sum over ops[].elided
    // elided_cum[i] = popcount sum over ops[0..i-1].elided, so a
    // dispatch that stops after `executed` ops (side exit, trap,
    // truncation) accounts its elisions in O(1) instead of rescanning
    // the executed prefix.  elided_cum[ops.size()] == elided_writes.
    std::vector<std::uint32_t> elided_cum;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> pages;
  };
  static constexpr std::uint32_t kNoBlock = 0xFFFFFFFF;
  static constexpr std::uint32_t kBlockCacheSize = 4096;  // power of two
  static constexpr std::size_t kMaxBlockOps = 32;
  // Widened traces may join several basic blocks; a larger cap lets a
  // hot loop body with direct calls stay in one trace.
  static constexpr std::size_t kMaxTraceOps = 64;
  // Conditional edges a single memfast trace may predecode past; keeps
  // the misprediction cost (side exit + fresh probe) bounded.
  static constexpr std::size_t kMaxCondEdges = 4;

  static std::uint32_t block_index(std::uint32_t paddr) {
    return (paddr ^ (paddr >> 12)) & (kBlockCacheSize - 1);
  }

  // Decodes a block starting at eip_ (entry already translated to
  // `entry_paddr`).  Pure lookahead: reads memory and page versions
  // only, never fills the TLB (Mmu::peek).  With chaining enabled the
  // decode continues across direct jmp/call into a widened trace.
  bool build_block(std::uint32_t entry_paddr, Block& blk);

  // Cache probe + rebuild for the block entered at eip_ (translated to
  // `paddr`); returns nullptr when no block can be built here.
  Block* lookup_block(std::uint32_t paddr);

  // True when no armed debug register matches any instruction-start
  // address in the block (the stepper only triggers on exact starts).
  bool breakpoints_clear(const Block& blk) const;

  // Threaded-mode whole-trace prevalidation: every code page the block
  // spans past the entry page (checked separately by the caller) still
  // holds its build-time write version.
  bool pages_fresh(const Block& blk) const {
    for (const auto& [page, version] : blk.pages) {
      if (memory_.page_version(page) != version) return false;
    }
    return true;
  }

  // Conditional-edge widening is active only with the full memfast
  // stack: chaining (widened traces), threaded dispatch (the side
  // exit leans on the jcc liveness boundaries thread_block plants),
  // and the memfast flag itself.
  bool widen_mode() const { return chain_enabled_ && threaded_ && memfast_; }

  // Resolves handler pointers, verify guards, and the flag-liveness
  // elision for a freshly built block (threaded mode only).
  void thread_block(Block& blk);

  // Drops the whole trace cache (dispatch-mode changes).
  void drop_all_blocks();

  // Invalidates every D-TLB entry (engine toggles; epoch bumps from
  // flushes, fills, and cr3 loads — including every snapshot and
  // checkpoint-rung restore — invalidate entries implicitly).
  void drop_dtlb() {
    for (DtlbEntry& e : dtlb_) e.tag = 0xFFFFFFFF;
  }

  // The dispatch loop, templated on the engine so the threaded hot
  // path pays no per-op mode branches; kWidened adds the memfast
  // side-exit guard for traces predecoded past conditional branches.
  template <bool kThreaded, bool kWidened>
  std::size_t run_block_impl(std::uint64_t max_instructions, const bool* stop,
                             CpuEvent& event);

  // Software D-TLB for guest data accesses (memfast mode only).
  // Direct-mapped on the virtual page number.  An entry proves "a full
  // mmu_.translate of this page succeeded for `cpl` (with write
  // permission iff write_ok) at Mmu epoch `epoch`".  While the epoch is
  // unchanged the hardware TLB still holds that entry, so the skipped
  // translate would have been a side-effect-free hit with the same
  // frame — fill histories and trap points cannot diverge.  Any epoch
  // bump (fill, flush, cr3 load — every snapshot/rung restore flushes)
  // makes every entry stale at once; data freshness is automatic
  // because hits still read/write through PhysicalMemory, which bumps
  // page write versions as usual (guest SMC stays coherent).
  struct DtlbEntry {
    std::uint32_t tag = 0xFFFFFFFF;  // vpn; 0xFFFFFFFF = invalid
    std::uint32_t frame = 0;
    std::uint64_t epoch = 0;
    std::uint8_t cpl = 0;
    bool write_ok = false;
  };
  static constexpr std::uint32_t kDtlbSize = 256;  // power of two
  DtlbEntry dtlb_[kDtlbSize];

  // Fills the slot for `vaddr`'s page after a successful translate
  // (called with the post-fill epoch).  A write-proven entry is never
  // downgraded by a read fill of the same still-valid page.
  void dtlb_fill(std::uint32_t vaddr, std::uint32_t paddr, Access access);

  std::vector<Block> block_cache_;
  bool chain_enabled_ = false;
  bool threaded_ = false;
  bool memfast_ = false;
  std::uint64_t blocks_built_ = 0;
  std::uint64_t block_hits_ = 0;
  std::uint64_t block_fallbacks_ = 0;
  std::uint64_t block_invalidations_ = 0;
  std::uint64_t block_ops_ = 0;
  std::uint64_t chain_follows_ = 0;
  std::uint64_t chain_breaks_ = 0;
  std::uint64_t trace_len_ = 0;
  std::uint64_t threaded_ops_ = 0;
  std::uint64_t flag_elisions_ = 0;
  std::uint64_t dtlb_hits_ = 0;
  std::uint64_t dtlb_misses_ = 0;
  std::uint64_t cond_widened_ = 0;
  std::uint64_t side_exits_ = 0;

  TrapRecord last_trap_;

  kfi::trace::TraceBuffer* trace_sink_ = nullptr;

  // Kernel-store footprint capture (campaign E's golden-side input).
  std::unordered_set<std::uint32_t>* write_trace_ = nullptr;
  void note_write(std::uint32_t paddr, std::uint32_t size) {
    if (write_trace_ == nullptr || cpl_ != 0) return;
    for (std::uint32_t i = 0; i < size; ++i) write_trace_->insert(paddr + i);
  }
};

}  // namespace kfi::vm
