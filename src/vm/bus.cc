#include "vm/bus.h"

#include <cassert>

#include "vm/layout.h"

namespace kfi::vm {

void Bus::attach(std::uint32_t base, std::uint32_t size, Device* device) {
  assert(base >= kMmioBase && (base & kPageMask) == 0 && device != nullptr);
  mappings_.push_back({base, size, device});
}

Device* Bus::find(std::uint32_t addr, std::uint32_t& offset) {
  for (const Mapping& m : mappings_) {
    if (addr >= m.base && addr - m.base < m.size) {
      offset = addr - m.base;
      return m.device;
    }
  }
  return nullptr;
}

bool Bus::read32(std::uint32_t addr, std::uint32_t& value) {
  std::uint32_t offset = 0;
  Device* device = find(addr, offset);
  if (device == nullptr) return false;
  value = device->mmio_read(offset);
  return true;
}

bool Bus::write32(std::uint32_t addr, std::uint32_t value) {
  std::uint32_t offset = 0;
  Device* device = find(addr, offset);
  if (device == nullptr) return false;
  device->mmio_write(offset, value);
  return true;
}

}  // namespace kfi::vm
