// Physical memory with snapshot/restore.
//
// Snapshot/restore implements the per-run "reboot": the machine is
// snapshotted once after boot, and every injection run starts by
// restoring that snapshot (equivalent to the paper's reboot between
// runs, minus the wall-clock cost).
#pragma once

#include <cstdint>
#include <vector>

namespace kfi::vm {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::uint32_t size);

  // Per-page write generation, used by the CPU's decode cache to detect
  // self-modifying code, DMA into text, host-side bit flips, and
  // snapshot restores.
  std::uint32_t page_version(std::uint32_t paddr) const {
    return versions_[paddr >> 12];
  }

  std::uint32_t size() const { return static_cast<std::uint32_t>(bytes_.size()); }
  bool contains(std::uint32_t paddr, std::uint32_t len = 1) const {
    return paddr + len >= paddr &&
           static_cast<std::size_t>(paddr) + len <= bytes_.size();
  }

  // Unchecked fast accessors — callers must validate with contains().
  std::uint8_t read8(std::uint32_t paddr) const { return bytes_[paddr]; }
  void write8(std::uint32_t paddr, std::uint8_t v) {
    bytes_[paddr] = v;
    ++versions_[paddr >> 12];
  }
  std::uint32_t read32(std::uint32_t paddr) const;
  void write32(std::uint32_t paddr, std::uint32_t v);

  std::uint8_t* raw(std::uint32_t paddr) { return bytes_.data() + paddr; }
  const std::uint8_t* raw(std::uint32_t paddr) const {
    return bytes_.data() + paddr;
  }

  void fill(std::uint32_t paddr, std::uint32_t len, std::uint8_t value);
  void write_block(std::uint32_t paddr, const void* data, std::uint32_t len);
  void read_block(std::uint32_t paddr, void* data, std::uint32_t len) const;

  std::vector<std::uint8_t> snapshot() const { return bytes_; }
  void restore(const std::vector<std::uint8_t>& snap);

 private:
  void bump_range(std::uint32_t paddr, std::uint32_t len);

  std::vector<std::uint8_t> bytes_;
  std::vector<std::uint32_t> versions_;
};

}  // namespace kfi::vm
