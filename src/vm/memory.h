// Physical memory with snapshot/restore.
//
// Snapshot/restore implements the per-run "reboot": the machine is
// snapshotted once after boot, and every injection run starts by
// restoring that snapshot (equivalent to the paper's reboot between
// runs, minus the wall-clock cost).  Restores are dirty-page based:
// per-page write versions (the same machinery the CPU's decode cache
// uses for invalidation) let restore() copy back only the pages the run
// actually touched, and leave the decode cache valid for every page it
// did not.
#pragma once

#include <cstdint>
#include <vector>

#include "vm/snapshot.h"

namespace kfi::vm {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::uint32_t size);

  // Per-page write generation, used by the CPU's decode cache to detect
  // self-modifying code, DMA into text, host-side bit flips, and
  // snapshot restores.  64-bit so it cannot wrap within any campaign
  // (a wrapped version could false-match a snapshot's record).
  std::uint64_t page_version(std::uint32_t paddr) const {
    return versions_[paddr >> 12];
  }

  std::uint32_t size() const { return static_cast<std::uint32_t>(bytes_.size()); }
  bool contains(std::uint32_t paddr, std::uint32_t len = 1) const {
    return paddr + len >= paddr &&
           static_cast<std::size_t>(paddr) + len <= bytes_.size();
  }

  // Unchecked fast accessors — callers must validate with contains().
  std::uint8_t read8(std::uint32_t paddr) const { return bytes_[paddr]; }
  void write8(std::uint32_t paddr, std::uint8_t v) {
    bytes_[paddr] = v;
    ++versions_[paddr >> 12];
  }
  std::uint32_t read32(std::uint32_t paddr) const;
  void write32(std::uint32_t paddr, std::uint32_t v);

  std::uint8_t* raw(std::uint32_t paddr) { return bytes_.data() + paddr; }
  const std::uint8_t* raw(std::uint32_t paddr) const {
    return bytes_.data() + paddr;
  }

  void fill(std::uint32_t paddr, std::uint32_t len, std::uint8_t value);
  void write_block(std::uint32_t paddr, const void* data, std::uint32_t len);
  void read_block(std::uint32_t paddr, void* data, std::uint32_t len) const;

  // ---- version-tracked snapshots (dirty-page restore) ----
  //
  // Snapshots are immutable; the per-(snapshot, RAM) equality memo that
  // makes restores O(dirty pages) is caller-owned — see vm/snapshot.h.
  // A memo is only meaningful for the PhysicalMemory it was built
  // against; machines sharing one snapshot each keep a private memo.

  // Full capture of RAM (the post-boot snapshot).
  ChunkedSnapshot snapshot_pages() const;
  // Sparse capture of the pages that differ from `base` (mid-run
  // checkpoints; `base` must outlive the returned snapshot).
  // `base_memo` — this RAM's memo for `base`, if any — supplies extra
  // version-based skips.
  ChunkedSnapshot snapshot_delta(
      const ChunkedSnapshot& base,
      const std::vector<std::uint64_t>* base_memo = nullptr) const;
  // Copies back only the pages whose write version moved since the last
  // restore of `snap` into this RAM (per `memo`); bit-identical to a
  // full copy.
  void restore_pages(const ChunkedSnapshot& snap,
                     std::vector<std::uint64_t>& memo,
                     std::vector<std::uint64_t>* base_memo = nullptr);
  // Unconditional full copy from `snap` — the pre-dirty-tracking
  // behavior, kept as the measurable baseline and as a cross-check.
  // When `memo` is given it is refreshed to prove equality with `snap`
  // at the new versions (RAM now literally is the snapshot).
  void restore_pages_full(const ChunkedSnapshot& snap,
                          std::vector<std::uint64_t>* memo = nullptr);
  // True when RAM is byte-identical to `snap`, ignoring the single byte
  // at `masked` (or nothing, if masked is out of range).  Costs
  // O(pages written since the snapshot) — see ChunkedSnapshot::matches.
  bool pages_match(const ChunkedSnapshot& snap,
                   const std::vector<std::uint64_t>& memo,
                   const std::vector<std::uint64_t>* base_memo = nullptr,
                   std::size_t masked = static_cast<std::size_t>(-1)) const {
    return snap.matches(bytes_.data(), versions_, memo, base_memo, masked);
  }
  const std::vector<std::uint64_t>& page_versions() const { return versions_; }

  // ---- legacy whole-RAM snapshots ----
  std::vector<std::uint8_t> snapshot() const { return bytes_; }
  void restore(const std::vector<std::uint8_t>& snap);

  // Cumulative restore-cost counters (perf telemetry).
  std::uint64_t restore_calls() const { return restore_calls_; }
  std::uint64_t restored_pages() const { return restored_pages_; }
  std::uint64_t restored_bytes() const { return restored_bytes_; }

 private:
  void bump_range(std::uint32_t paddr, std::uint32_t len);

  std::vector<std::uint8_t> bytes_;
  std::vector<std::uint64_t> versions_;
  std::uint64_t restore_calls_ = 0;
  std::uint64_t restored_pages_ = 0;
  std::uint64_t restored_bytes_ = 0;
};

}  // namespace kfi::vm
