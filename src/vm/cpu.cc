#include "vm/cpu.h"

#include "trace/trace.h"

namespace kfi::vm {

using isa::Cond;
using isa::DecodeStatus;
using isa::Flags;
using isa::Instruction;
using isa::Op;
using isa::Operand;
using isa::OperandKind;
using isa::Reg;
using isa::Trap;

namespace {

bool parity_even(std::uint8_t byte) {
  return (__builtin_popcount(byte) & 1) == 0;
}

}  // namespace

Cpu::Cpu(PhysicalMemory& memory, Bus& bus)
    : memory_(memory), bus_(bus), mmu_(memory),
      decode_cache_(kDecodeCacheSize), block_cache_(kBlockCacheSize) {}

void Cpu::set_vector(int vector, std::uint32_t handler_vaddr) {
  vectors_[vector & 0xFF] = handler_vaddr;
}

void Cpu::arm_breakpoint(int index, std::uint32_t vaddr) {
  debug_[index & 3].enabled = true;
  debug_[index & 3].addr = vaddr;
}

void Cpu::disarm_breakpoint(int index) { debug_[index & 3].enabled = false; }

// ---------------------------------------------------------------------
// Trap delivery
// ---------------------------------------------------------------------

bool Cpu::deliver(Trap trap, std::uint32_t error_code, std::uint32_t addr,
                  int depth) {
  if (depth > 1) {
    // Fault while delivering the double fault: the machine is gone
    // ("triple fault" — a hard hang on real hardware).
    dead_ = true;
    return false;
  }

  last_trap_.trap = trap;
  last_trap_.error_code = error_code;
  last_trap_.fault_addr = addr;
  last_trap_.faulting_eip = eip_;
  last_trap_.faulting_cpl = cpl_;
  last_trap_.cycle = cycles_;

  if (trace_sink_ != nullptr) {
    // Memory faults get their own kind (the propagation analysis keys
    // on them); the periodic timer is separated so it doesn't read as
    // an error event in a forensics timeline.
    const trace::EventKind kind =
        trap == Trap::PageFault || trap == Trap::GpFault
            ? trace::EventKind::MemFault
            : (trap == Trap::Timer ? trace::EventKind::TimerIrq
                                   : trace::EventKind::TrapEntry);
    trace_sink_->record(kind, cycles_, static_cast<std::uint32_t>(trap),
                        error_code, eip_, addr);
  }

  const std::uint32_t handler = vectors_[static_cast<int>(trap)];
  if (handler == 0) {
    if (trap == Trap::DoubleFault) {
      dead_ = true;
      return false;
    }
    return deliver(Trap::DoubleFault, static_cast<std::uint32_t>(trap), addr,
                   depth + 1);
  }

  // Stack switch on privilege change: esp0 lives in the TSS page.
  std::uint32_t new_esp = regs_[static_cast<int>(Reg::Esp)];
  if (cpl_ == 3) {
    if (!memory_.contains(kTssPhys, 4)) {
      dead_ = true;
      return false;
    }
    new_esp = memory_.read32(kTssPhys);
  }

  const std::uint32_t old_esp = regs_[static_cast<int>(Reg::Esp)];
  const std::uint32_t old_eflags = flags_.to_word();
  const std::uint32_t old_eip = eip_;
  const std::uint32_t old_cpl = static_cast<std::uint32_t>(cpl_);

  // Push the 6-word trap frame with supervisor rights.
  const std::uint32_t words[6] = {addr,      error_code, old_cpl,
                                  old_esp,   old_eflags, old_eip};
  for (const std::uint32_t word : words) {
    new_esp -= 4;
    std::uint32_t paddr = 0;
    bool ok = true;
    if ((new_esp & kPageMask) <= kPageSize - 4) {
      ok = mmu_.translate(new_esp, Access::Write, 0, paddr) ==
           TranslateStatus::Ok;
      if (ok) memory_.write32(paddr, word);
    } else {
      for (int i = 0; i < 4 && ok; ++i) {
        ok = mmu_.translate(new_esp + i, Access::Write, 0, paddr) ==
             TranslateStatus::Ok;
        if (ok) memory_.write8(paddr, static_cast<std::uint8_t>(word >> (8 * i)));
      }
    }
    if (!ok) {
      return deliver(Trap::DoubleFault, static_cast<std::uint32_t>(trap),
                     new_esp, depth + 1);
    }
  }

  regs_[static_cast<int>(Reg::Esp)] = new_esp;
  cpl_ = 0;
  eip_ = handler;
  flags_.intf = false;  // interrupt gate semantics
  halted_ = false;
  return true;
}

bool Cpu::raise(Trap trap, std::uint32_t error_code, std::uint32_t addr) {
  deliver(trap, error_code, addr, 0);
  return false;  // instruction aborted
}

bool Cpu::deliver_interrupt(Trap trap) {
  if (dead_ || !flags_.intf) return false;
  halted_ = false;
  return deliver(trap, 0, 0, 0);
}

// ---------------------------------------------------------------------
// Guest memory access
// ---------------------------------------------------------------------

void Cpu::dtlb_fill(std::uint32_t vaddr, std::uint32_t paddr, Access access) {
  const std::uint32_t vpn = vaddr >> 12;
  DtlbEntry& e = dtlb_[vpn & (kDtlbSize - 1)];
  // A read fill must not downgrade a still-valid write-proven entry for
  // the same page: write permission, once proven at this epoch/cpl,
  // stays proven until the next TLB mutation.
  const bool keep_write = e.tag == vpn && e.epoch == mmu_.epoch() &&
                          e.cpl == static_cast<std::uint8_t>(cpl_) &&
                          e.write_ok;
  e.tag = vpn;
  e.frame = paddr & ~kPageMask;
  e.epoch = mmu_.epoch();
  e.cpl = static_cast<std::uint8_t>(cpl_);
  e.write_ok = access == Access::Write || keep_write;
}

bool Cpu::read_v(std::uint32_t vaddr, std::uint32_t size,
                 std::uint32_t& value) {
  if (memfast_) {
    // D-TLB fast path: a hit proves the filling translate below would
    // succeed as a side-effect-free TLB hit with this frame (see the
    // DtlbEntry invariant), so skipping it is unobservable.  Anything
    // unproven — page-crossing access, MMIO, stale epoch, other cpl —
    // falls closed into the exact stepper path.
    const DtlbEntry& e = dtlb_[(vaddr >> 12) & (kDtlbSize - 1)];
    if (e.tag == vaddr >> 12 && e.epoch == mmu_.epoch() &&
        e.cpl == static_cast<std::uint8_t>(cpl_) &&
        (size == 1 || (vaddr & kPageMask) <= kPageSize - 4)) {
      ++dtlb_hits_;
      const std::uint32_t paddr = e.frame | (vaddr & kPageMask);
      value = size == 1 ? memory_.read8(paddr) : memory_.read32(paddr);
      return true;
    }
    ++dtlb_misses_;
  }
  std::uint32_t paddr = 0;
  const TranslateStatus status =
      mmu_.translate(vaddr, Access::Read, cpl_, paddr);
  switch (status) {
    case TranslateStatus::Ok:
      if (memfast_) dtlb_fill(vaddr, paddr, Access::Read);
      break;
    case TranslateStatus::Mmio: {
      if (size != 4 || (vaddr & 3) != 0) {
        return raise(Trap::GpFault, 0, vaddr);
      }
      if (!bus_.read32(vaddr, value)) return raise(Trap::GpFault, 0, vaddr);
      return true;
    }
    case TranslateStatus::NotPresent:
      return raise(Trap::PageFault, (cpl_ == 3 ? kPfErrUser : 0), vaddr);
    case TranslateStatus::Protection:
      return raise(Trap::PageFault,
                   kPfErrPresent | (cpl_ == 3 ? kPfErrUser : 0), vaddr);
    case TranslateStatus::BadPhysical:
      return raise(Trap::PageFault, (cpl_ == 3 ? kPfErrUser : 0), vaddr);
  }

  if (size == 1) {
    value = memory_.read8(paddr);
    return true;
  }
  if ((vaddr & kPageMask) <= kPageSize - 4) {
    value = memory_.read32(paddr);
    return true;
  }
  // Page-crossing 32-bit read: the first page's frame is already in
  // hand, so only the second page needs a translate — one fill per
  // page, the same TLB history the old per-byte fallback produced.
  // The fault point matches it exactly too: the first byte of the
  // second page, with the per-status error code below.
  const std::uint32_t first = kPageSize - (vaddr & kPageMask);  // 1..3
  const std::uint32_t vaddr2 = vaddr + first;
  std::uint32_t paddr2 = 0;
  switch (mmu_.translate(vaddr2, Access::Read, cpl_, paddr2)) {
    case TranslateStatus::Ok:
      break;
    case TranslateStatus::Mmio:
      // The second page's bytes would be sub-word MMIO accesses, which
      // always fault.
      return raise(Trap::GpFault, 0, vaddr2);
    case TranslateStatus::NotPresent:
    case TranslateStatus::BadPhysical:
      return raise(Trap::PageFault, (cpl_ == 3 ? kPfErrUser : 0), vaddr2);
    case TranslateStatus::Protection:
      return raise(Trap::PageFault,
                   kPfErrPresent | (cpl_ == 3 ? kPfErrUser : 0), vaddr2);
  }
  value = 0;
  for (std::uint32_t i = 0; i < first; ++i) {
    value |= static_cast<std::uint32_t>(memory_.read8(paddr + i)) << (8 * i);
  }
  for (std::uint32_t i = first; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(memory_.read8(paddr2 + (i - first)))
             << (8 * i);
  }
  return true;
}

bool Cpu::write_v(std::uint32_t vaddr, std::uint32_t size,
                  std::uint32_t value) {
  if (memfast_) {
    // Same proof as in read_v, plus write permission: `write_ok` means
    // a full translate with Access::Write succeeded at this epoch/cpl.
    // Stores still go through PhysicalMemory, so page write versions
    // bump exactly as on the slow path (SMC and flip detection intact).
    const DtlbEntry& e = dtlb_[(vaddr >> 12) & (kDtlbSize - 1)];
    if (e.tag == vaddr >> 12 && e.epoch == mmu_.epoch() && e.write_ok &&
        e.cpl == static_cast<std::uint8_t>(cpl_) &&
        (size == 1 || (vaddr & kPageMask) <= kPageSize - 4)) {
      ++dtlb_hits_;
      const std::uint32_t paddr = e.frame | (vaddr & kPageMask);
      note_write(paddr, size);
      if (size == 1) {
        memory_.write8(paddr, static_cast<std::uint8_t>(value));
      } else {
        memory_.write32(paddr, value);
      }
      return true;
    }
    ++dtlb_misses_;
  }
  std::uint32_t paddr = 0;
  const TranslateStatus status =
      mmu_.translate(vaddr, Access::Write, cpl_, paddr);
  switch (status) {
    case TranslateStatus::Ok:
      if (memfast_) dtlb_fill(vaddr, paddr, Access::Write);
      break;
    case TranslateStatus::Mmio: {
      if (size != 4 || (vaddr & 3) != 0) {
        return raise(Trap::GpFault, 0, vaddr);
      }
      if (!bus_.write32(vaddr, value)) return raise(Trap::GpFault, 0, vaddr);
      return true;
    }
    case TranslateStatus::NotPresent:
      return raise(Trap::PageFault,
                   kPfErrWrite | (cpl_ == 3 ? kPfErrUser : 0), vaddr);
    case TranslateStatus::Protection:
      return raise(Trap::PageFault,
                   kPfErrPresent | kPfErrWrite | (cpl_ == 3 ? kPfErrUser : 0),
                   vaddr);
    case TranslateStatus::BadPhysical:
      return raise(Trap::PageFault,
                   kPfErrWrite | (cpl_ == 3 ? kPfErrUser : 0), vaddr);
  }

  if (size == 1) {
    note_write(paddr, 1);
    memory_.write8(paddr, static_cast<std::uint8_t>(value));
    return true;
  }
  if ((vaddr & kPageMask) <= kPageSize - 4) {
    note_write(paddr, 4);
    memory_.write32(paddr, value);
    return true;
  }
  // Page-crossing 32-bit write: one translate per page instead of one
  // per byte.  The first page's bytes commit BEFORE the second page is
  // probed — a fault there leaves the same partial write (and the same
  // per-byte version bumps) the old per-byte fallback produced.
  const std::uint32_t first = kPageSize - (vaddr & kPageMask);  // 1..3
  const std::uint32_t vaddr2 = vaddr + first;
  note_write(paddr, first);
  for (std::uint32_t i = 0; i < first; ++i) {
    memory_.write8(paddr + i, static_cast<std::uint8_t>(value >> (8 * i)));
  }
  std::uint32_t paddr2 = 0;
  switch (mmu_.translate(vaddr2, Access::Write, cpl_, paddr2)) {
    case TranslateStatus::Ok:
      break;
    case TranslateStatus::Mmio:
      return raise(Trap::GpFault, 0, vaddr2);
    case TranslateStatus::NotPresent:
    case TranslateStatus::BadPhysical:
      return raise(Trap::PageFault,
                   kPfErrWrite | (cpl_ == 3 ? kPfErrUser : 0), vaddr2);
    case TranslateStatus::Protection:
      return raise(Trap::PageFault,
                   kPfErrPresent | kPfErrWrite | (cpl_ == 3 ? kPfErrUser : 0),
                   vaddr2);
  }
  note_write(paddr2, 4 - first);
  for (std::uint32_t i = first; i < 4; ++i) {
    memory_.write8(paddr2 + (i - first),
                   static_cast<std::uint8_t>(value >> (8 * i)));
  }
  return true;
}

bool Cpu::push32(std::uint32_t value) {
  const std::uint32_t esp = regs_[static_cast<int>(Reg::Esp)] - 4;
  if (!write_v(esp, 4, value)) return false;
  regs_[static_cast<int>(Reg::Esp)] = esp;
  return true;
}

bool Cpu::pop32(std::uint32_t& value) {
  const std::uint32_t esp = regs_[static_cast<int>(Reg::Esp)];
  if (!read_v(esp, 4, value)) return false;
  regs_[static_cast<int>(Reg::Esp)] = esp + 4;
  return true;
}

bool Cpu::peek32(std::uint32_t vaddr, std::uint32_t& value) {
  std::uint32_t paddr = 0;
  if (mmu_.translate(vaddr, Access::Read, 0, paddr) != TranslateStatus::Ok) {
    return false;
  }
  if ((vaddr & kPageMask) > kPageSize - 4) return false;
  value = memory_.read32(paddr);
  return true;
}

bool Cpu::peek8(std::uint32_t vaddr, std::uint8_t& value) {
  std::uint32_t paddr = 0;
  if (mmu_.translate(vaddr, Access::Read, 0, paddr) != TranslateStatus::Ok) {
    return false;
  }
  value = memory_.read8(paddr);
  return true;
}

// ---------------------------------------------------------------------
// Operand helpers
// ---------------------------------------------------------------------

bool Cpu::operand_addr(const Operand& op, std::uint32_t& addr) {
  addr = static_cast<std::uint32_t>(op.mem.disp);
  if (op.mem.has_base) addr += regs_[static_cast<int>(op.mem.base)];
  return true;
}

bool Cpu::read_operand(const Operand& op, std::uint32_t& value) {
  switch (op.kind) {
    case OperandKind::Reg:
      value = regs_[static_cast<int>(op.reg)];
      return true;
    case OperandKind::Reg8:
      value = regs_[static_cast<int>(op.reg)] & 0xFF;
      return true;
    case OperandKind::Imm:
      value = static_cast<std::uint32_t>(op.imm);
      return true;
    case OperandKind::Mem: {
      std::uint32_t addr = 0;
      operand_addr(op, addr);
      return read_v(addr, 4, value);
    }
    case OperandKind::Mem8: {
      std::uint32_t addr = 0;
      operand_addr(op, addr);
      if (!read_v(addr, 1, value)) return false;
      value &= 0xFF;
      return true;
    }
    case OperandKind::None:
      value = 0;
      return true;
  }
  return true;
}

bool Cpu::write_operand(const Operand& op, std::uint32_t value) {
  switch (op.kind) {
    case OperandKind::Reg:
      regs_[static_cast<int>(op.reg)] = value;
      return true;
    case OperandKind::Reg8: {
      std::uint32_t& r = regs_[static_cast<int>(op.reg)];
      r = (r & 0xFFFFFF00u) | (value & 0xFF);
      return true;
    }
    case OperandKind::Mem: {
      std::uint32_t addr = 0;
      operand_addr(op, addr);
      return write_v(addr, 4, value);
    }
    case OperandKind::Mem8: {
      std::uint32_t addr = 0;
      operand_addr(op, addr);
      return write_v(addr, 1, value & 0xFF);
    }
    default:
      return true;
  }
}

void Cpu::set_logic_flags32(std::uint32_t result) {
  flags_.cf = false;
  flags_.of = false;
  flags_.zf = result == 0;
  flags_.sf = (result >> 31) != 0;
  flags_.pf = parity_even(static_cast<std::uint8_t>(result));
}

void Cpu::set_logic_flags8(std::uint8_t result) {
  flags_.cf = false;
  flags_.of = false;
  flags_.zf = result == 0;
  flags_.sf = (result & 0x80) != 0;
  flags_.pf = parity_even(result);
}

// ---------------------------------------------------------------------
// Step
// ---------------------------------------------------------------------

CpuEvent Cpu::step() {
  CpuEvent event;
  if (dead_) {
    event.kind = CpuEventKind::DoubleFault;
    return event;
  }
  if (halted_) {
    event.kind = CpuEventKind::Halted;
    return event;
  }

  // Debug-register match on the instruction address (the injection
  // trigger).  resume_flag suppresses an immediate re-trigger so the
  // host can resume execution of the very instruction it intercepted.
  if (!resume_flag_) {
    for (int i = 0; i < 4; ++i) {
      if (debug_[i].enabled && debug_[i].addr == eip_) {
        resume_flag_ = true;
        event.kind = CpuEventKind::Breakpoint;
        event.breakpoint_index = i;
        return event;
      }
    }
  }
  resume_flag_ = false;

  // --- Fetch ---
  std::uint8_t buf[isa::kMaxInstructionLength];
  std::size_t fetched = 0;
  std::uint32_t fault_vaddr = 0;
  {
    std::uint32_t paddr = 0;
    const TranslateStatus status =
        mmu_.translate(eip_, Access::Execute, cpl_, paddr);
    if (status == TranslateStatus::Ok) {
      // Decode-cache hit: skip fetch + decode entirely.
      DecodedSlot& slot =
          decode_cache_[(paddr ^ (paddr >> 14)) & (kDecodeCacheSize - 1)];
      if (slot.paddr == paddr &&
          slot.version == memory_.page_version(paddr)) {
        ++decode_hits_;
        cycles_ += 1;
        const bool cached_trap = !execute(slot.instr);
        if (cached_trap) {
          event.trap_taken = true;
          event.trap = last_trap_.trap;
        }
        if (dead_) {
          event.kind = CpuEventKind::DoubleFault;
        } else if (halted_) {
          event.kind = CpuEventKind::Halted;
        }
        return event;
      }
      const std::uint32_t room = kPageSize - (eip_ & kPageMask);
      const std::uint32_t take =
          room < isa::kMaxInstructionLength ? room
                                            : isa::kMaxInstructionLength;
      memory_.read_block(paddr, buf, take);
      fetched = take;
      // Cross-page tail.  Looked up with peek (no TLB fill): a fill
      // here would depend on decode-cache hit history — misses near a
      // page end would warm the next page's TLB slot while hits would
      // not — making TLB evolution cache-state-dependent and
      // irreproducible by the block engine.
      if (fetched < isa::kMaxInstructionLength) {
        std::uint32_t paddr2 = 0;
        const TranslateStatus s2 =
            mmu_.peek(eip_ + fetched, Access::Execute, cpl_, paddr2);
        if (s2 == TranslateStatus::Ok) {
          memory_.read_block(paddr2, buf + fetched,
                             isa::kMaxInstructionLength -
                                 static_cast<std::uint32_t>(fetched));
          fetched = isa::kMaxInstructionLength;
        } else {
          fault_vaddr = eip_ + static_cast<std::uint32_t>(fetched);
        }
      }
    } else if (status == TranslateStatus::Mmio) {
      cycles_ += 1;
      raise(Trap::GpFault, 0, eip_);
      event.trap_taken = true;
      event.trap = last_trap_.trap;
      if (dead_) event.kind = CpuEventKind::DoubleFault;
      return event;
    } else {
      cycles_ += 1;
      const std::uint32_t err =
          (status == TranslateStatus::Protection ? kPfErrPresent : 0) |
          (cpl_ == 3 ? kPfErrUser : 0);
      raise(Trap::PageFault, err, eip_);
      event.trap_taken = true;
      event.trap = last_trap_.trap;
      if (dead_) event.kind = CpuEventKind::DoubleFault;
      return event;
    }
  }

  Instruction instr;
  const DecodeStatus status = isa::decode(buf, fetched, instr);
  ++decode_misses_;
  cycles_ += 1;

  if (status == DecodeStatus::Ok) {
    std::uint32_t paddr = 0;
    if (mmu_.translate(eip_, Access::Execute, cpl_, paddr) ==
            TranslateStatus::Ok &&
        (paddr & kPageMask) + instr.length <= kPageSize) {
      DecodedSlot& slot =
          decode_cache_[(paddr ^ (paddr >> 14)) & (kDecodeCacheSize - 1)];
      slot.paddr = paddr;
      slot.version = memory_.page_version(paddr);
      slot.instr = instr;
    }
  }

  if (status == DecodeStatus::Truncated) {
    // The instruction ran off the end of a mapped region.
    raise(Trap::PageFault, (cpl_ == 3 ? kPfErrUser : 0),
          fault_vaddr != 0 ? fault_vaddr : eip_ + static_cast<std::uint32_t>(fetched));
    event.trap_taken = true;
    event.trap = last_trap_.trap;
    if (dead_) event.kind = CpuEventKind::DoubleFault;
    return event;
  }
  if (status == DecodeStatus::Invalid) {
    raise(Trap::InvalidOpcode, 0, eip_);
    event.trap_taken = true;
    event.trap = last_trap_.trap;
    if (dead_) event.kind = CpuEventKind::DoubleFault;
    return event;
  }

  const bool trapped = !execute(instr);
  if (trapped) {
    event.trap_taken = true;
    event.trap = last_trap_.trap;
  }
  if (dead_) {
    event.kind = CpuEventKind::DoubleFault;
  } else if (halted_) {
    event.kind = CpuEventKind::Halted;
  }
  return event;
}

// ---------------------------------------------------------------------
// Superblock engine
// ---------------------------------------------------------------------

namespace {

// An instruction ends a block when it cannot deterministically fall
// through to eip+length: control transfers, software traps, privileged
// ops that always fault, and hlt.  Anything else that traps at runtime
// (a #PF on a memory operand, #GP from user mode) ends the block
// dynamically via execute() returning false.
bool block_terminator(const Instruction& in) {
  if (in.is_branch()) return true;
  switch (in.op) {
    case Op::Int:
    case Op::Int3:
    case Op::Ud2:
    case Op::Invalid:
    case Op::Hlt:
    case Op::FarJmp:
    case Op::FarCall:
    case Op::MovSeg:
      return true;
    case Op::Sti:
      // A timer tick that went pending while interrupts were off is
      // delivered at the first loop top with IF set; ending the block
      // at sti puts that loop top exactly where the stepper has it.
      return true;
    default:
      return false;
  }
}

// True when executing the instruction can store to guest RAM (and so
// bump a code-page write version mid-trace).  In threaded mode the op
// immediately after each such store is an SMC gate that re-validates
// every code page the trace spans; everything else is covered by the
// whole-trace prevalidation at dispatch entry.
// Trap-frame pushes don't count: a trap ends the dispatch immediately,
// so no later op can observe the version bump.
bool may_write_memory(const Instruction& in) {
  switch (in.op) {
    case Op::Push:
    case Op::Call:
    case Op::CallInd:
      return true;  // stack store
    case Op::Cmp:
    case Op::Test:
      return false;  // read-only even with a memory "destination"
    default:
      return in.dst.kind == OperandKind::Mem ||
             in.dst.kind == OperandKind::Mem8;
  }
}

}  // namespace

bool Cpu::build_block(std::uint32_t entry_paddr, Block& blk) {
  blk.entry_paddr = kNoBlock;
  blk.entry_vaddr = eip_;
  blk.links[0] = ChainLink{};
  blk.links[1] = ChainLink{};
  blk.ops.clear();
  blk.threaded = false;
  blk.memfast = widen_mode();
  blk.elided_writes = 0;
  blk.elided_cum.clear();
  blk.pages.clear();

  const std::size_t max_ops = chain_enabled_ ? kMaxTraceOps : kMaxBlockOps;
  std::size_t cond_edges = 0;
  std::uint32_t vaddr = eip_;
  std::uint32_t paddr = entry_paddr;
  std::uint32_t vmin = eip_;
  std::uint32_t vmax = eip_;
  while (blk.ops.size() < max_ops) {
    // Decode only from bytes within the instruction's page: an
    // instruction whose fetch identity spans two pages cannot be
    // verified with one translation, so it is left to the stepper.
    const std::uint32_t room = kPageSize - (paddr & kPageMask);
    const std::uint32_t take =
        room < isa::kMaxInstructionLength
            ? room
            : static_cast<std::uint32_t>(isa::kMaxInstructionLength);
    std::uint8_t buf[isa::kMaxInstructionLength];
    memory_.read_block(paddr, buf, take);
    Instruction instr;
    if (isa::decode(buf, take, instr) != DecodeStatus::Ok) break;

    MicroOp op;
    op.vaddr = vaddr;
    op.paddr = paddr;
    op.instr = instr;
    op.version = memory_.page_version(paddr);
    blk.ops.push_back(op);
    if (vaddr < vmin) vmin = vaddr;
    const std::uint32_t last_byte = vaddr + instr.length - 1;
    if (last_byte > vmax) vmax = last_byte;

    if (block_terminator(instr)) {
      // Trace widening: direct jmp/call have statically known targets
      // (next + rel), so the decode can continue there.  The branch op
      // itself stays in the trace and executes normally — widening
      // changes predecode layout only, never execution.  In memfast
      // mode the decode also continues past conditional branches along
      // the statically predicted edge (backward taken — loops; forward
      // fall-through); the dispatch loop guards every op with a
      // `vaddr == eip` check and side-exits fail-closed on a
      // misprediction.  Everything else (indirect, IF-changing,
      // trapping) ends the trace; chaining handles those transitions
      // at runtime.
      if (!chain_enabled_ || blk.ops.size() >= max_ops) break;
      if (instr.op == Op::Jmp || instr.op == Op::Call) {
        vaddr = vaddr + instr.length + static_cast<std::uint32_t>(instr.rel);
      } else if (blk.memfast && instr.op == Op::Jcc &&
                 cond_edges < kMaxCondEdges) {
        ++cond_edges;
        ++cond_widened_;
        vaddr = instr.rel < 0 ? vaddr + instr.length +
                                    static_cast<std::uint32_t>(instr.rel)
                              : vaddr + instr.length;
      } else {
        break;
      }
    } else {
      vaddr += instr.length;
    }
    if (mmu_.peek(vaddr, Access::Execute, cpl_, paddr) !=
        TranslateStatus::Ok) {
      break;
    }
  }
  if (blk.ops.empty()) return false;
  blk.entry_paddr = entry_paddr;
  blk.vmin = vmin;
  blk.vmax = vmax;
  trace_len_ += blk.ops.size();
  if (threaded_) thread_block(blk);
  return true;
}

Cpu::Block* Cpu::lookup_block(std::uint32_t paddr) {
  Block& blk = block_cache_[block_index(paddr)];
  // A threaded block's elision proof assumes every spanned code page is
  // unchanged at dispatch entry (pages_fresh), so a version bump on any
  // page — not just the entry page — forces a rebuild here.  Blocks
  // built under the other dispatch mode are rebuilt too: their fn /
  // elided / verify state is unresolved or unsound for this mode.
  if (blk.entry_paddr != paddr || blk.entry_vaddr != eip_ ||
      blk.ops.empty() ||
      blk.ops[0].version != memory_.page_version(paddr) ||
      blk.threaded != threaded_ || blk.memfast != widen_mode() ||
      (threaded_ && !pages_fresh(blk))) {
    if (!build_block(paddr, blk)) return nullptr;
    ++blocks_built_;
  } else {
    ++block_hits_;
  }
  return &blk;
}

void Cpu::drop_all_blocks() {
  for (Block& blk : block_cache_) {
    blk.entry_paddr = kNoBlock;
    blk.links[0] = ChainLink{};
    blk.links[1] = ChainLink{};
  }
}

std::vector<std::uint8_t> Cpu::block_elision_masks(std::uint32_t vaddr) const {
  for (const Block& blk : block_cache_) {
    if (blk.entry_paddr == kNoBlock || !blk.threaded ||
        blk.entry_vaddr != vaddr) {
      continue;
    }
    std::vector<std::uint8_t> masks;
    masks.reserve(blk.ops.size());
    for (const MicroOp& op : blk.ops) masks.push_back(op.elided);
    return masks;
  }
  return {};
}

bool Cpu::breakpoints_clear(const Block& blk) const {
  for (const DebugReg& dr : debug_) {
    if (!dr.enabled) continue;
    if (dr.addr < blk.vmin || dr.addr > blk.vmax) continue;
    // In range: refuse only if it names an instruction start — the
    // stepper's trigger compares against eip_, never interior bytes.
    for (const MicroOp& op : blk.ops) {
      if (op.vaddr == dr.addr) return false;
    }
  }
  return true;
}

std::size_t Cpu::run_block(std::uint64_t max_instructions, const bool* stop,
                           CpuEvent& event) {
  if (widen_mode()) {
    return run_block_impl<true, true>(max_instructions, stop, event);
  }
  return threaded_ ? run_block_impl<true, false>(max_instructions, stop, event)
                   : run_block_impl<false, false>(max_instructions, stop,
                                                  event);
}

template <bool kThreaded, bool kWidened>
std::size_t Cpu::run_block_impl(std::uint64_t max_instructions,
                                const bool* stop, CpuEvent& event) {
  static_assert(kThreaded || !kWidened,
                "widened dispatch requires threaded blocks");
  event = CpuEvent{};
  if (dead_ || halted_ || max_instructions == 0) return 0;

  std::uint32_t entry_paddr = 0;
  if (mmu_.translate(eip_, Access::Execute, cpl_, entry_paddr) !=
      TranslateStatus::Ok) {
    // Fetch fault or MMIO fetch: the stepper raises the exact trap.
    ++block_fallbacks_;
    return 0;
  }

  Block* blk = lookup_block(entry_paddr);
  if (blk == nullptr || !breakpoints_clear(*blk)) {
    // Undecodable entry, or an armed debug register names an
    // instruction in the block: single-step so the Breakpoint event
    // surfaces at the exact instruction.
    ++block_fallbacks_;
    return 0;
  }

  // Per-dispatch inline translate cache.  A translate_fast call is
  // skipped only when it is provably a TLB hit: the page was verified
  // present at `cached_epoch` and no TLB mutation (fill, flush, cr3
  // load) has happened since, so the skipped call could neither fail
  // differently nor change TLB state the stepper would have.
  std::uint32_t cached_vpn = eip_ >> 12;
  std::uint32_t cached_frame = entry_paddr & ~kPageMask;
  std::uint64_t cached_epoch = mmu_.epoch();

  std::size_t total = 0;
  for (;;) {
    // With no breakpoint at any op, the resume flag's only effect in
    // the stepper is being consumed by the next fetch; consume it.
    resume_flag_ = false;

    const std::uint64_t remaining = max_instructions - total;
    const std::size_t limit =
        blk->ops.size() < remaining ? blk->ops.size()
                                    : static_cast<std::size_t>(remaining);
    // A truncated dispatch (the budget — a timer tick, checkpoint
    // rung, or run deadline — lands mid-block) can stop after ANY op,
    // and whatever observes the stop (tick delivery pushes EFLAGS, a
    // rung capture digests them) must see the stepper's exact flags.
    // The liveness proof only covers exits it modeled, so a truncated
    // pass runs every op through its full-flag handler instead.
    const bool elide = kThreaded && limit == blk->ops.size();
    std::size_t executed = 0;
    bool broke = false;
    [[maybe_unused]] bool side_exit = false;
    while (executed < limit) {
      const MicroOp& op = blk->ops[executed];
      if (executed != 0) {
        // Re-verify the fetch translation exactly where the stepper
        // would fetch: same call, same TLB fills, same result — or a
        // proven-hit shortcut with no call at all.  The shortcut keys
        // on the live eip, so a widened trace's mispredicted jcc
        // surfaces below as a single mismatch branch — no separate
        // per-op side-exit guard.
        const std::uint32_t vpn = eip_ >> 12;
        std::uint32_t paddr = 0;
        if (vpn == cached_vpn && mmu_.epoch() == cached_epoch) {
          paddr = cached_frame | (eip_ & kPageMask);
        } else if (mmu_.translate_fast(eip_, Access::Execute, cpl_, paddr) ==
                   TranslateStatus::Ok) {
          cached_vpn = vpn;
          cached_frame = paddr & ~kPageMask;
          cached_epoch = mmu_.epoch();
        } else {
          broke = true;
          break;
        }
        bool mismatch = paddr != op.paddr;
        // The vaddr compare keeps aliased mappings honest: two virtual
        // pages onto one frame would match on paddr alone, and the
        // trace's breakpoint prefilter (vmin/vmax) only covers the
        // build-time vaddrs.
        if constexpr (kWidened) mismatch |= op.vaddr != eip_;
        if (mismatch) {
          if constexpr (kWidened) {
            // Side exit: ops past a widened conditional edge run only
            // while execution follows the predicted path.  A
            // mispredicted jcc leaves eip off-trace; every op before
            // it ran exactly as the stepper would, and thread_block
            // marks mid-trace jccs as liveness boundaries, so no
            // elided flag write is observable here.
            if (op.vaddr != eip_) {
              ++side_exits_;
              side_exit = true;
              break;
            }
          }
          broke = true;
          break;
        }
      }
      // Threaded mode checks all spanned pages once at dispatch entry
      // (pages_fresh); only the op right after an in-trace store is an
      // SMC gate that re-runs that whole-trace check, since only a
      // store can bump a code-page version mid-dispatch.  Exiting at
      // the gate is stepper-identical: the gate is a liveness
      // boundary, and the stepper re-decodes everything downstream.
      bool stale;
      if constexpr (kThreaded) {
        stale = op.verify &&
                (memory_.page_version(blk->ops[0].paddr) !=
                     blk->ops[0].version ||
                 !pages_fresh(*blk));
      } else {
        stale = memory_.page_version(op.paddr) != op.version;
      }
      if (stale) {
        // Self-modified (or flipped) code page: drop the block and let
        // the stepper re-decode this instruction.
        blk->entry_paddr = kNoBlock;
        ++block_invalidations_;
        broke = true;
        break;
      }
      cycles_ += 1;
      ++executed;
      bool ok;
      if constexpr (kThreaded) {
        // Direct-threaded dispatch: the handler pointer was resolved
        // at build time (a no-flags variant where elision is proven).
        ok = elide ? op.fn(*this, op.instr) : execute(op.instr);
      } else {
        ok = execute(op.instr);
      }
      if (!ok) {
        event.trap_taken = true;
        event.trap = last_trap_.trap;
        broke = true;
        break;
      }
      if (halted_ || dead_ || (stop != nullptr && *stop)) {
        broke = true;
        break;
      }
    }
    block_ops_ += executed;
    total += executed;
    if constexpr (kThreaded) {
      threaded_ops_ += executed;
      if (elide) flag_elisions_ += blk->elided_cum[executed];
    }

    if (broke || !chain_enabled_ || total >= max_instructions) break;

    if constexpr (kWidened) {
      if (side_exit) {
        // Execution left the predecoded path at a widened conditional
        // edge.  Fail closed into an ordinary probe at the real eip —
        // no link slot is patched: terminator links stay monomorphic
        // per edge, while side exits are polymorphic across trace
        // positions.  The entry translation below is the same filling
        // translate the stepper's fetch would do, unless provably
        // already a hit.
        const std::uint32_t next_vpn = eip_ >> 12;
        std::uint32_t next_paddr = 0;
        if (next_vpn == cached_vpn && mmu_.epoch() == cached_epoch) {
          next_paddr = cached_frame | (eip_ & kPageMask);
        } else if (mmu_.translate(eip_, Access::Execute, cpl_, next_paddr) ==
                   TranslateStatus::Ok) {
          cached_vpn = next_vpn;
          cached_frame = next_paddr & ~kPageMask;
          cached_epoch = mmu_.epoch();
        } else {
          break;
        }
        Block* next = lookup_block(next_paddr);
        if (next == nullptr || !breakpoints_clear(*next)) break;
        blk = next;
        continue;
      }
    }

    if (executed < blk->ops.size()) break;

    // The block ran to completion below budget.  Chain to the
    // successor unless the terminator can enable interrupts: sti and
    // iret may unmask a pending tick, whose delivery loop top must
    // land exactly here (the PR 3 invariant).
    const Op term = blk->ops.back().instr.op;
    if (term == Op::Sti || term == Op::Iret) break;

    // Successor entry translation — the same filling translate the
    // stepper's fetch would do, unless provably already a hit.
    const std::uint32_t next_vpn = eip_ >> 12;
    std::uint32_t next_paddr = 0;
    if (next_vpn == cached_vpn && mmu_.epoch() == cached_epoch) {
      next_paddr = cached_frame | (eip_ & kPageMask);
    } else if (mmu_.translate(eip_, Access::Execute, cpl_, next_paddr) ==
               TranslateStatus::Ok) {
      cached_vpn = next_vpn;
      cached_frame = next_paddr & ~kPageMask;
      cached_epoch = mmu_.epoch();
    } else {
      // Fetch fault at the target: the stepper raises the exact trap.
      break;
    }

    // Link slot: fall-through of a conditional gets its own slot so a
    // hot jcc caches both edges; everything else (taken edge, computed
    // ret/indirect targets, op-capped fall-through) shares slot 0 as a
    // monomorphic cache keyed on the observed target vaddr.
    const MicroOp& last = blk->ops.back();
    const int slot = (last.instr.op == Op::Jcc &&
                      eip_ == last.vaddr + last.instr.length)
                         ? 1
                         : 0;
    ChainLink& link = blk->links[slot];

    Block* next = nullptr;
    if (link.index != kNoBlock) {
      Block& cand = block_cache_[link.index];
      // Threaded successors get the same whole-trace prevalidation a
      // cache-probe entry would (pages_fresh): a chain follow is a
      // dispatch entry for the elision proof.
      if (link.vaddr == eip_ && cand.entry_paddr == next_paddr &&
          cand.entry_vaddr == eip_ && !cand.ops.empty() &&
          cand.ops[0].version == memory_.page_version(next_paddr) &&
          cand.threaded == kThreaded && cand.memfast == kWidened &&
          (!kThreaded || pages_fresh(cand))) {
        next = &cand;
        ++block_hits_;
      } else {
        // Severed (invalidated target, reused slot, remapped page) or
        // retargeted link: fall back to a probe and re-patch.
        ++chain_breaks_;
      }
    }
    if (next == nullptr) {
      next = lookup_block(next_paddr);
      if (next == nullptr) break;
      link.vaddr = eip_;
      link.index = block_index(next_paddr);
    }
    if (!breakpoints_clear(*next)) break;
    ++chain_follows_;
    blk = next;
  }

  if (dead_) {
    event.kind = CpuEventKind::DoubleFault;
  } else if (halted_) {
    event.kind = CpuEventKind::Halted;
  }
  return total;
}

void Cpu::invalidate_blocks(std::uint32_t paddr) {
  // Dropping a block also severs every chain through it: inbound links
  // fail their entry_paddr validation on the next follow, and outbound
  // links die with the block (rebuilds start with empty link slots).
  const std::uint32_t page = paddr >> 12;
  std::uint32_t dropped = 0;
  for (Block& blk : block_cache_) {
    if (blk.entry_paddr == kNoBlock) continue;
    for (const MicroOp& op : blk.ops) {
      if ((op.paddr >> 12) == page) {
        blk.entry_paddr = kNoBlock;
        blk.links[0] = ChainLink{};
        blk.links[1] = ChainLink{};
        ++block_invalidations_;
        ++dropped;
        break;
      }
    }
  }
  if (trace_sink_ != nullptr) {
    trace_sink_->record(trace::EventKind::BlockInvalidate, cycles_, paddr,
                        dropped);
  }
}

// ---------------------------------------------------------------------
// Opcode handlers (direct-threaded dispatch targets)
// ---------------------------------------------------------------------
//
// One static handler per opcode — the bodies of the former execute()
// switch, so step() and every block engine share a single
// implementation of each instruction.  Flag-writing ALU ops are
// additionally templated on kFlags: the <false> instantiations skip
// the arithmetic flag computation and exist only as targets for the
// trace builder's liveness elision (isa::flag_liveness proves the
// writes dead before any observer — trap frame, chain edge, digest —
// can see them).  A handler returns false when it raised a trap (eip_
// already redirected).

struct OpHandlers {
  // ----- data movement -----
  static bool mov(Cpu& c, const Instruction& in) {
    std::uint32_t value = 0;
    if (!c.read_operand(in.src, value)) return false;
    if (!c.write_operand(in.dst, value)) return false;
    c.eip_ += in.length;
    return true;
  }
  static bool lea(Cpu& c, const Instruction& in) {
    std::uint32_t addr = 0;
    c.operand_addr(in.src, addr);
    if (!c.write_operand(in.dst, addr)) return false;
    c.eip_ += in.length;
    return true;
  }
  static bool movzx8(Cpu& c, const Instruction& in) {
    std::uint32_t value = 0;
    if (!c.read_operand(in.src, value)) return false;
    if (!c.write_operand(in.dst, value & 0xFF)) return false;
    c.eip_ += in.length;
    return true;
  }

  // ----- ALU -----
  template <Op O, bool kFlags>
  static bool alu(Cpu& c, const Instruction& in) {
    static_assert(O == Op::Add || O == Op::Or || O == Op::And ||
                  O == Op::Sub || O == Op::Xor || O == Op::Cmp ||
                  O == Op::Test);
    const bool byte_op = in.dst.kind == OperandKind::Reg8 ||
                         in.dst.kind == OperandKind::Mem8;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    if (!c.read_operand(in.dst, a)) return false;
    if (!c.read_operand(in.src, b)) return false;

    std::uint32_t result = 0;
    if (byte_op) {
      const std::uint8_t a8 = static_cast<std::uint8_t>(a);
      const std::uint8_t b8 = static_cast<std::uint8_t>(b);
      std::uint8_t r8 = 0;
      if constexpr (O == Op::Add) {
        const unsigned wide = unsigned(a8) + unsigned(b8);
        r8 = static_cast<std::uint8_t>(wide);
        if constexpr (kFlags) {
          c.flags_.cf = wide > 0xFF;
          c.flags_.of = ((a8 ^ r8) & (b8 ^ r8) & 0x80) != 0;
        }
      } else if constexpr (O == Op::Sub || O == Op::Cmp) {
        r8 = static_cast<std::uint8_t>(a8 - b8);
        if constexpr (kFlags) {
          c.flags_.cf = a8 < b8;
          c.flags_.of = ((a8 ^ b8) & (a8 ^ r8) & 0x80) != 0;
        }
      } else if constexpr (O == Op::Or) {
        r8 = a8 | b8;
      } else if constexpr (O == Op::And || O == Op::Test) {
        r8 = a8 & b8;
      } else {
        r8 = a8 ^ b8;
      }
      if constexpr (kFlags) {
        if constexpr (O == Op::Or || O == Op::And || O == Op::Xor ||
                      O == Op::Test) {
          c.set_logic_flags8(r8);
        } else {
          c.flags_.zf = r8 == 0;
          c.flags_.sf = (r8 & 0x80) != 0;
          c.flags_.pf = parity_even(r8);
        }
      }
      result = r8;
    } else {
      if constexpr (O == Op::Add) {
        result = a + b;
        if constexpr (kFlags) {
          c.flags_.cf = result < a;
          c.flags_.of = (((a ^ result) & (b ^ result)) >> 31) != 0;
        }
      } else if constexpr (O == Op::Sub || O == Op::Cmp) {
        result = a - b;
        if constexpr (kFlags) {
          c.flags_.cf = a < b;
          c.flags_.of = (((a ^ b) & (a ^ result)) >> 31) != 0;
        }
      } else if constexpr (O == Op::Or) {
        result = a | b;
      } else if constexpr (O == Op::And || O == Op::Test) {
        result = a & b;
      } else {
        result = a ^ b;
      }
      if constexpr (kFlags) {
        if constexpr (O == Op::Or || O == Op::And || O == Op::Xor ||
                      O == Op::Test) {
          c.set_logic_flags32(result);
        } else {
          c.flags_.zf = result == 0;
          c.flags_.sf = (result >> 31) != 0;
          c.flags_.pf = parity_even(static_cast<std::uint8_t>(result));
        }
      }
    }
    if constexpr (O != Op::Cmp && O != Op::Test) {
      if (!c.write_operand(in.dst, result)) return false;
    }
    c.eip_ += in.length;
    return true;
  }

  template <Op O, bool kFlags>
  static bool inc_dec(Cpu& c, const Instruction& in) {
    static_assert(O == Op::Inc || O == Op::Dec);
    std::uint32_t a = 0;
    if (!c.read_operand(in.dst, a)) return false;
    const std::uint32_t result = O == Op::Inc ? a + 1 : a - 1;
    if constexpr (kFlags) {
      // CF unchanged (IA-32 semantics).
      if constexpr (O == Op::Inc) {
        c.flags_.of = result == 0x80000000u;
      } else {
        c.flags_.of = a == 0x80000000u;
      }
      c.flags_.zf = result == 0;
      c.flags_.sf = (result >> 31) != 0;
      c.flags_.pf = parity_even(static_cast<std::uint8_t>(result));
    }
    if (!c.write_operand(in.dst, result)) return false;
    c.eip_ += in.length;
    return true;
  }

  static bool not_(Cpu& c, const Instruction& in) {
    std::uint32_t a = 0;
    if (!c.read_operand(in.dst, a)) return false;
    if (!c.write_operand(in.dst, ~a)) return false;  // no flags
    c.eip_ += in.length;
    return true;
  }

  template <bool kFlags>
  static bool neg(Cpu& c, const Instruction& in) {
    std::uint32_t a = 0;
    if (!c.read_operand(in.dst, a)) return false;
    const std::uint32_t result = 0u - a;
    if constexpr (kFlags) {
      c.flags_.cf = a != 0;
      c.flags_.of = a == 0x80000000u;
      c.flags_.zf = result == 0;
      c.flags_.sf = (result >> 31) != 0;
      c.flags_.pf = parity_even(static_cast<std::uint8_t>(result));
    }
    if (!c.write_operand(in.dst, result)) return false;
    c.eip_ += in.length;
    return true;
  }

  template <bool kFlags>
  static bool mul(Cpu& c, const Instruction& in) {
    std::uint32_t src = 0;
    if (!c.read_operand(in.src, src)) return false;
    const std::uint64_t wide = static_cast<std::uint64_t>(c.regs_[0]) * src;
    c.regs_[0] = static_cast<std::uint32_t>(wide);
    c.regs_[static_cast<int>(Reg::Edx)] =
        static_cast<std::uint32_t>(wide >> 32);
    if constexpr (kFlags) {
      c.flags_.cf = c.flags_.of = c.regs_[static_cast<int>(Reg::Edx)] != 0;
      c.flags_.zf = c.regs_[0] == 0;
      c.flags_.sf = (c.regs_[0] >> 31) != 0;
    }
    c.eip_ += in.length;
    return true;
  }

  template <bool kFlags>
  static bool imul(Cpu& c, const Instruction& in) {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    if (!c.read_operand(in.dst, a)) return false;
    if (!c.read_operand(in.src, b)) return false;
    const std::int64_t wide =
        static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
        static_cast<std::int32_t>(b);
    const std::int32_t low = static_cast<std::int32_t>(wide);
    if constexpr (kFlags) {
      c.flags_.cf = c.flags_.of = wide != low;
    }
    if (!c.write_operand(in.dst, static_cast<std::uint32_t>(low))) {
      return false;
    }
    c.eip_ += in.length;
    return true;
  }

  static bool div(Cpu& c, const Instruction& in) {
    std::uint32_t src = 0;
    if (!c.read_operand(in.src, src)) return false;
    if (src == 0) return c.raise(Trap::DivideError, 0, c.eip_);
    const std::uint64_t dividend =
        (static_cast<std::uint64_t>(c.regs_[static_cast<int>(Reg::Edx)])
         << 32) |
        c.regs_[0];
    const std::uint64_t q = dividend / src;
    if (q > 0xFFFFFFFFu) return c.raise(Trap::DivideError, 0, c.eip_);
    c.regs_[0] = static_cast<std::uint32_t>(q);
    c.regs_[static_cast<int>(Reg::Edx)] =
        static_cast<std::uint32_t>(dividend % src);
    c.eip_ += in.length;
    return true;
  }

  static bool idiv(Cpu& c, const Instruction& in) {
    std::uint32_t src = 0;
    if (!c.read_operand(in.src, src)) return false;
    if (src == 0) return c.raise(Trap::DivideError, 0, c.eip_);
    const std::int64_t dividend = static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(c.regs_[static_cast<int>(Reg::Edx)])
         << 32) |
        c.regs_[0]);
    const std::int32_t divisor = static_cast<std::int32_t>(src);
    if (dividend == INT64_MIN && divisor == -1) {
      return c.raise(Trap::DivideError, 0, c.eip_);
    }
    const std::int64_t q = dividend / divisor;
    if (q > INT32_MAX || q < INT32_MIN) {
      return c.raise(Trap::DivideError, 0, c.eip_);
    }
    c.regs_[0] = static_cast<std::uint32_t>(static_cast<std::int32_t>(q));
    c.regs_[static_cast<int>(Reg::Edx)] =
        static_cast<std::uint32_t>(static_cast<std::int32_t>(dividend % divisor));
    c.eip_ += in.length;
    return true;
  }

  static bool cdq(Cpu& c, const Instruction& in) {
    c.regs_[static_cast<int>(Reg::Edx)] =
        (c.regs_[0] & 0x80000000u) ? 0xFFFFFFFFu : 0;
    c.eip_ += in.length;
    return true;
  }

  template <Op O, bool kFlags>
  static bool shift(Cpu& c, const Instruction& in) {
    static_assert(O == Op::Shl || O == Op::Shr || O == Op::Sar);
    std::uint32_t a = 0;
    std::uint32_t count = 0;
    if (!c.read_operand(in.dst, a)) return false;
    if (!c.read_operand(in.src, count)) return false;
    count &= 31;
    if (count == 0) {  // no flag change either
      c.eip_ += in.length;
      return true;
    }
    std::uint32_t result = 0;
    if constexpr (O == Op::Shl) {
      result = a << count;
      if constexpr (kFlags) {
        c.flags_.cf = ((a >> (32 - count)) & 1) != 0;
        if (count == 1) c.flags_.of = ((result >> 31) != 0) != c.flags_.cf;
      }
    } else if constexpr (O == Op::Shr) {
      result = a >> count;
      if constexpr (kFlags) {
        c.flags_.cf = ((a >> (count - 1)) & 1) != 0;
        if (count == 1) c.flags_.of = (a >> 31) != 0;
      }
    } else {
      result =
          static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> count);
      if constexpr (kFlags) {
        c.flags_.cf = ((a >> (count - 1)) & 1) != 0;
        if (count == 1) c.flags_.of = false;
      }
    }
    if constexpr (kFlags) {
      c.flags_.zf = result == 0;
      c.flags_.sf = (result >> 31) != 0;
      c.flags_.pf = parity_even(static_cast<std::uint8_t>(result));
    }
    if (!c.write_operand(in.dst, result)) return false;
    c.eip_ += in.length;
    return true;
  }

  static bool setcc(Cpu& c, const Instruction& in) {
    const std::uint32_t value = cond_holds(in.cond, c.flags_) ? 1 : 0;
    if (!c.write_operand(in.dst, value)) return false;
    c.eip_ += in.length;
    return true;
  }

  // ----- stack -----
  static bool push(Cpu& c, const Instruction& in) {
    std::uint32_t value = 0;
    if (!c.read_operand(in.src, value)) return false;
    if (!c.push32(value)) return false;
    c.eip_ += in.length;
    return true;
  }
  static bool pop(Cpu& c, const Instruction& in) {
    std::uint32_t value = 0;
    if (!c.pop32(value)) return false;
    if (!c.write_operand(in.dst, value)) return false;
    c.eip_ += in.length;
    return true;
  }
  static bool leave(Cpu& c, const Instruction& in) {
    c.regs_[static_cast<int>(Reg::Esp)] = c.regs_[static_cast<int>(Reg::Ebp)];
    std::uint32_t value = 0;
    if (!c.pop32(value)) return false;
    c.regs_[static_cast<int>(Reg::Ebp)] = value;
    c.eip_ += in.length;
    return true;
  }

  // ----- control transfer -----
  static bool jcc(Cpu& c, const Instruction& in) {
    const std::uint32_t next = c.eip_ + in.length;
    c.eip_ = cond_holds(in.cond, c.flags_)
                 ? next + static_cast<std::uint32_t>(in.rel)
                 : next;
    return true;
  }
  static bool jmp(Cpu& c, const Instruction& in) {
    c.eip_ += in.length + static_cast<std::uint32_t>(in.rel);
    return true;
  }
  static bool jmp_ind(Cpu& c, const Instruction& in) {
    std::uint32_t target = 0;
    if (!c.read_operand(in.src, target)) return false;
    c.eip_ = target;
    return true;
  }
  static bool call(Cpu& c, const Instruction& in) {
    const std::uint32_t next = c.eip_ + in.length;
    if (!c.push32(next)) return false;
    c.eip_ = next + static_cast<std::uint32_t>(in.rel);
    return true;
  }
  static bool call_ind(Cpu& c, const Instruction& in) {
    const std::uint32_t next = c.eip_ + in.length;
    std::uint32_t target = 0;
    if (!c.read_operand(in.src, target)) return false;
    if (!c.push32(next)) return false;
    c.eip_ = target;
    return true;
  }
  static bool ret(Cpu& c, const Instruction& in) {
    (void)in;
    std::uint32_t target = 0;
    if (!c.pop32(target)) return false;
    c.eip_ = target;
    return true;
  }

  static bool nop(Cpu& c, const Instruction& in) {
    c.eip_ += in.length;
    return true;
  }

  // ----- traps and privileged operations -----
  static bool ud(Cpu& c, const Instruction& in) {
    (void)in;
    return c.raise(Trap::InvalidOpcode, 0, c.eip_);
  }
  static bool int3(Cpu& c, const Instruction& in) {
    c.eip_ += in.length;  // software traps push the next instruction
    c.deliver(Trap::Int3, 0, 0, 0);
    return false;
  }
  static bool int_n(Cpu& c, const Instruction& in) {
    const int vec = in.imm8;
    // Gate DPL check: user code may only raise the syscall gate and
    // the debug/breakpoint vectors.
    if (c.cpl_ == 3 && vec != 0x80 && vec != 3 && vec != 4) {
      return c.raise(Trap::GpFault, 0, c.eip_);
    }
    if (c.vectors_[vec] == 0) return c.raise(Trap::GpFault, 0, c.eip_);
    c.eip_ += in.length;
    c.deliver(static_cast<Trap>(vec), 0, 0, 0);
    return false;
  }
  static bool iret(Cpu& c, const Instruction& in) {
    (void)in;
    if (c.cpl_ != 0) return c.raise(Trap::GpFault, 0, c.eip_);
    const std::uint32_t esp = c.regs_[static_cast<int>(Reg::Esp)];
    std::uint32_t new_eip = 0;
    std::uint32_t new_eflags = 0;
    std::uint32_t new_esp = 0;
    std::uint32_t new_cpl = 0;
    if (!c.read_v(esp, 4, new_eip)) return false;
    if (!c.read_v(esp + 4, 4, new_eflags)) return false;
    if (!c.read_v(esp + 8, 4, new_esp)) return false;
    if (!c.read_v(esp + 12, 4, new_cpl)) return false;
    new_cpl &= 3;
    if (new_cpl != 0 && new_cpl != 3) {
      return c.raise(Trap::GpFault, 0, c.eip_);
    }
    if (new_cpl == 3) {
      c.regs_[static_cast<int>(Reg::Esp)] = new_esp;
    } else {
      c.regs_[static_cast<int>(Reg::Esp)] = esp + 24;
    }
    c.cpl_ = static_cast<int>(new_cpl);
    c.flags_ = Flags::from_word(new_eflags);
    c.eip_ = new_eip;
    if (c.trace_sink_ != nullptr) {
      c.trace_sink_->record(trace::EventKind::TrapExit, c.cycles_, new_eip,
                            new_cpl);
    }
    return true;
  }
  static bool far_op(Cpu& c, const Instruction& in) {
    (void)in;
    // No far segments / descriptors exist; a corrupted selector always
    // faults (Table 7 example 3).
    return c.raise(Trap::GpFault, 0, c.eip_);
  }
  static bool in_port(Cpu& c, const Instruction& in) {
    if (c.cpl_ != 0) return c.raise(Trap::GpFault, 0, c.eip_);
    c.regs_[0] = (c.regs_[0] & 0xFFFFFF00u);  // no legacy ports: reads 0
    c.eip_ += in.length;
    return true;
  }
  static bool hlt(Cpu& c, const Instruction& in) {
    if (c.cpl_ != 0) return c.raise(Trap::GpFault, 0, c.eip_);
    c.halted_ = true;
    c.eip_ += in.length;
    return true;
  }
  static bool cli(Cpu& c, const Instruction& in) {
    if (c.cpl_ != 0) return c.raise(Trap::GpFault, 0, c.eip_);
    c.flags_.intf = false;
    c.eip_ += in.length;
    return true;
  }
  static bool sti(Cpu& c, const Instruction& in) {
    if (c.cpl_ != 0) return c.raise(Trap::GpFault, 0, c.eip_);
    c.flags_.intf = true;
    c.eip_ += in.length;
    return true;
  }

  // Full-flag handler table, indexed by Op (the dispatch every
  // execution mode uses when elision is off or unproven).
  static constexpr Cpu::HandlerFn kFull[isa::kOpCount] = {
      alu<Op::Add, true>,   // Add
      alu<Op::Or, true>,    // Or
      alu<Op::And, true>,   // And
      alu<Op::Sub, true>,   // Sub
      alu<Op::Xor, true>,   // Xor
      alu<Op::Cmp, true>,   // Cmp
      alu<Op::Test, true>,  // Test
      mov,                  // Mov
      lea,                  // Lea
      movzx8,               // Movzx8
      imul<true>,           // Imul
      push,                 // Push
      pop,                  // Pop
      inc_dec<Op::Inc, true>,  // Inc
      inc_dec<Op::Dec, true>,  // Dec
      not_,                 // Not
      neg<true>,            // Neg
      mul<true>,            // Mul
      div,                  // Div
      idiv,                 // Idiv
      shift<Op::Shl, true>,  // Shl
      shift<Op::Shr, true>,  // Shr
      shift<Op::Sar, true>,  // Sar
      jcc,                  // Jcc
      setcc,                // Setcc
      jmp,                  // Jmp
      jmp_ind,              // JmpInd
      call,                 // Call
      call_ind,             // CallInd
      ret,                  // Ret
      leave,                // Leave
      nop,                  // Nop
      cdq,                  // Cdq
      ud,                   // Ud2
      int3,                 // Int3
      int_n,                // Int
      iret,                 // Iret
      far_op,               // Lret
      far_op,               // FarJmp
      far_op,               // FarCall
      far_op,               // MovSeg
      in_port,              // In
      hlt,                  // Hlt
      cli,                  // Cli
      sti,                  // Sti
      ud,                   // Invalid
  };

  // No-flags variant for ops whose flag writes the liveness pass can
  // elide; nullptr when the op has no such variant (elision is then
  // skipped even if the writes are dead — e.g. iret, whose flag write
  // is the restore itself).
  static Cpu::HandlerFn noflags(Op op) {
    switch (op) {
      case Op::Add: return alu<Op::Add, false>;
      case Op::Or: return alu<Op::Or, false>;
      case Op::And: return alu<Op::And, false>;
      case Op::Sub: return alu<Op::Sub, false>;
      case Op::Xor: return alu<Op::Xor, false>;
      case Op::Cmp: return alu<Op::Cmp, false>;
      case Op::Test: return alu<Op::Test, false>;
      case Op::Inc: return inc_dec<Op::Inc, false>;
      case Op::Dec: return inc_dec<Op::Dec, false>;
      case Op::Neg: return neg<false>;
      case Op::Mul: return mul<false>;
      case Op::Imul: return imul<false>;
      case Op::Shl: return shift<Op::Shl, false>;
      case Op::Shr: return shift<Op::Shr, false>;
      case Op::Sar: return shift<Op::Sar, false>;
      default: return nullptr;
    }
  }
};

// Returns false when a trap was raised (eip already redirected).
bool Cpu::execute(const Instruction& in) {
  return OpHandlers::kFull[static_cast<int>(in.op)](*this, in);
}

// Resolves the threaded-dispatch state of a freshly built block: the
// per-op handler pointer, the page prevalidation set, which ops keep
// their per-op version guard, and the flag-liveness elision.  (Defined
// after OpHandlers so the handler table is complete.)
void Cpu::thread_block(Block& blk) {
  blk.threaded = true;

  // Distinct (code page, build-time version) pairs the trace spans
  // beyond the entry page; the entry page is validated by every cache
  // probe and chain-link check already, so single-page traces — the
  // overwhelming majority — keep pages_fresh() at an empty loop.
  const std::uint32_t entry_page = blk.ops[0].paddr & ~kPageMask;
  for (const MicroOp& op : blk.ops) {
    const std::uint32_t page = op.paddr & ~kPageMask;
    if (page == entry_page) continue;
    bool seen = false;
    for (const auto& [p, v] : blk.pages) seen = seen || p == page;
    if (!seen) blk.pages.emplace_back(page, op.version);
  }

  // Liveness boundaries: any op whose pre-execution guard can fail at
  // runtime hands control back to the stepper *before* the op, so all
  // earlier flag writes are observable there.  That is (a) SMC gates —
  // the op right after each in-trace store re-validates the whole page
  // set, and a failed gate exits there (sound even though the stale op
  // may be further downstream: the stepper resumes at the gate op,
  // re-decodes, and diverges exactly where the bytes changed), (b) the
  // first op on each new page of a widened trace (its translate guard
  // can fail if the page was remapped or unmapped since the build —
  // page versions track writes, not mappings), and (c) mid-trace
  // conditional branches (memfast widening): a mispredicted jcc takes
  // the side exit right after it, where every flag is observable (the
  // jcc itself writes none, so boundary-at-the-jcc covers the exit).
  // Ops that may trap are boundaries too; flag_liveness derives that
  // from the effects.
  std::vector<isa::LiveOp> lops(blk.ops.size());
  for (std::size_t i = 0; i < blk.ops.size(); ++i) {
    MicroOp& op = blk.ops[i];
    lops[i].fx = isa::flag_effects(op.instr);
    op.verify = i > 0 && may_write_memory(blk.ops[i - 1].instr);
    const bool new_page =
        i > 0 && (op.paddr & ~kPageMask) != (blk.ops[i - 1].paddr & ~kPageMask);
    const bool mid_jcc = op.instr.op == Op::Jcc && i + 1 < blk.ops.size();
    lops[i].boundary = op.verify || new_page || mid_jcc;
  }

  const isa::Liveness lv = isa::flag_liveness(lops);
  blk.elided_cum.resize(blk.ops.size() + 1);
  blk.elided_cum[0] = 0;
  for (std::size_t i = 0; i < blk.ops.size(); ++i) {
    MicroOp& op = blk.ops[i];
    op.fn = OpHandlers::kFull[static_cast<int>(op.instr.op)];
    op.elided = 0;
    if (lv.elidable[i] != 0) {
      if (const HandlerFn nf = OpHandlers::noflags(op.instr.op)) {
        op.fn = nf;
        op.elided = lv.elidable[i];
      }
    }
    blk.elided_cum[i + 1] =
        blk.elided_cum[i] +
        static_cast<unsigned>(__builtin_popcount(op.elided));
  }
  blk.elided_writes = blk.elided_cum[blk.ops.size()];
}

}  // namespace kfi::vm
