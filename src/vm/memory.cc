#include "vm/memory.h"

#include <cassert>
#include <cstring>

namespace kfi::vm {

PhysicalMemory::PhysicalMemory(std::uint32_t size)
    : bytes_(size, 0), versions_((size >> 12) + 1, 0) {}

void PhysicalMemory::bump_range(std::uint32_t paddr, std::uint32_t len) {
  const std::uint32_t first = paddr >> 12;
  const std::uint32_t last = (paddr + (len ? len - 1 : 0)) >> 12;
  for (std::uint32_t page = first; page <= last; ++page) ++versions_[page];
}

std::uint32_t PhysicalMemory::read32(std::uint32_t paddr) const {
  std::uint32_t v;
  std::memcpy(&v, bytes_.data() + paddr, 4);
  return v;
}

void PhysicalMemory::write32(std::uint32_t paddr, std::uint32_t v) {
  std::memcpy(bytes_.data() + paddr, &v, 4);
  bump_range(paddr, 4);
}

void PhysicalMemory::fill(std::uint32_t paddr, std::uint32_t len,
                          std::uint8_t value) {
  assert(contains(paddr, len));
  std::memset(bytes_.data() + paddr, value, len);
  bump_range(paddr, len);
}

void PhysicalMemory::write_block(std::uint32_t paddr, const void* data,
                                 std::uint32_t len) {
  assert(contains(paddr, len));
  std::memcpy(bytes_.data() + paddr, data, len);
  bump_range(paddr, len);
}

void PhysicalMemory::read_block(std::uint32_t paddr, void* data,
                                std::uint32_t len) const {
  assert(contains(paddr, len));
  std::memcpy(data, bytes_.data() + paddr, len);
}

ChunkedSnapshot PhysicalMemory::snapshot_pages() const {
  return ChunkedSnapshot::full(bytes_.data(), bytes_.size(), versions_, 4096);
}

ChunkedSnapshot PhysicalMemory::snapshot_delta(
    const ChunkedSnapshot& base,
    const std::vector<std::uint64_t>* base_memo) const {
  return ChunkedSnapshot::delta(bytes_.data(), bytes_.size(), versions_, base,
                                base_memo);
}

void PhysicalMemory::restore_pages(const ChunkedSnapshot& snap,
                                   std::vector<std::uint64_t>& memo,
                                   std::vector<std::uint64_t>* base_memo) {
  const std::uint32_t pages =
      snap.restore_into(bytes_.data(), versions_, memo, base_memo);
  ++restore_calls_;
  restored_pages_ += pages;
  restored_bytes_ += static_cast<std::uint64_t>(pages) * snap.chunk_size();
}

void PhysicalMemory::restore_pages_full(const ChunkedSnapshot& snap,
                                        std::vector<std::uint64_t>* memo) {
  assert(!snap.is_delta() && snap.size() == bytes_.size());
  std::memcpy(bytes_.data(), snap.chunk(0), bytes_.size());
  for (std::uint64_t& v : versions_) ++v;
  if (memo != nullptr) {
    memo->assign(versions_.begin(), versions_.begin() + snap.chunk_count());
  }
  ++restore_calls_;
  restored_pages_ += versions_.size() - 1;
  restored_bytes_ += bytes_.size();
}

void PhysicalMemory::restore(const std::vector<std::uint8_t>& snap) {
  assert(snap.size() == bytes_.size());
  std::memcpy(bytes_.data(), snap.data(), bytes_.size());
  for (std::uint64_t& v : versions_) ++v;
}

}  // namespace kfi::vm
