#include "vm/mmu.h"

namespace kfi::vm {

void Mmu::flush_tlb() {
  for (TlbEntry& e : tlb_) e.tag = 0xFFFFFFFF;
  ++epoch_;
}

void Mmu::flush_page(std::uint32_t vaddr) {
  const std::uint32_t vpn = vaddr >> 12;
  tlb_[vpn & (kTlbSize - 1)].tag = 0xFFFFFFFF;
  ++epoch_;
}

TranslateStatus Mmu::peek(std::uint32_t vaddr, Access access, int cpl,
                          std::uint32_t& paddr) const {
  if (vaddr >= kMmioBase) {
    return cpl == 0 ? TranslateStatus::Mmio : TranslateStatus::Protection;
  }

  const std::uint32_t vpn = vaddr >> 12;
  const TlbEntry& entry = tlb_[vpn & (kTlbSize - 1)];
  if (entry.tag == vpn) {
    if (cpl != 0 && !entry.user) return TranslateStatus::Protection;
    if (access == Access::Write && !entry.writable) {
      return TranslateStatus::Protection;
    }
    paddr = entry.frame | (vaddr & kPageMask);
    return TranslateStatus::Ok;
  }

  const std::uint32_t pgd_slot = cr3_ + ((vaddr >> 22) << 2);
  if (!memory_.contains(pgd_slot, 4)) return TranslateStatus::BadPhysical;
  const std::uint32_t pgd_entry = memory_.read32(pgd_slot);
  if ((pgd_entry & kPtePresent) == 0) return TranslateStatus::NotPresent;

  const std::uint32_t pte_base = pgd_entry & kPteFrameMask;
  const std::uint32_t pte_slot = pte_base + (((vaddr >> 12) & 0x3FF) << 2);
  if (!memory_.contains(pte_slot, 4)) return TranslateStatus::BadPhysical;
  const std::uint32_t pte = memory_.read32(pte_slot);
  if ((pte & kPtePresent) == 0) return TranslateStatus::NotPresent;

  const bool user_ok = (pgd_entry & kPteUser) && (pte & kPteUser);
  const bool writable = (pgd_entry & kPteWrite) && (pte & kPteWrite);
  if (cpl != 0 && !user_ok) return TranslateStatus::Protection;
  if (access == Access::Write && !writable) return TranslateStatus::Protection;

  const std::uint32_t frame = pte & kPteFrameMask;
  if (!memory_.contains(frame, kPageSize)) return TranslateStatus::BadPhysical;

  paddr = frame | (vaddr & kPageMask);
  return TranslateStatus::Ok;
}

TranslateStatus Mmu::translate(std::uint32_t vaddr, Access access, int cpl,
                               std::uint32_t& paddr) {
  if (vaddr >= kMmioBase) {
    return cpl == 0 ? TranslateStatus::Mmio : TranslateStatus::Protection;
  }

  const std::uint32_t vpn = vaddr >> 12;
  TlbEntry& entry = tlb_[vpn & (kTlbSize - 1)];
  if (entry.tag == vpn) {
    if (cpl != 0 && !entry.user) return TranslateStatus::Protection;
    if (access == Access::Write && !entry.writable) {
      return TranslateStatus::Protection;
    }
    paddr = entry.frame | (vaddr & kPageMask);
    return TranslateStatus::Ok;
  }

  // Walk: PGD entry, then PTE.
  const std::uint32_t pgd_slot = cr3_ + ((vaddr >> 22) << 2);
  if (!memory_.contains(pgd_slot, 4)) return TranslateStatus::BadPhysical;
  const std::uint32_t pgd_entry = memory_.read32(pgd_slot);
  if ((pgd_entry & kPtePresent) == 0) return TranslateStatus::NotPresent;

  const std::uint32_t pte_base = pgd_entry & kPteFrameMask;
  const std::uint32_t pte_slot = pte_base + (((vaddr >> 12) & 0x3FF) << 2);
  if (!memory_.contains(pte_slot, 4)) return TranslateStatus::BadPhysical;
  const std::uint32_t pte = memory_.read32(pte_slot);
  if ((pte & kPtePresent) == 0) return TranslateStatus::NotPresent;

  const bool user_ok = (pgd_entry & kPteUser) && (pte & kPteUser);
  const bool writable = (pgd_entry & kPteWrite) && (pte & kPteWrite);
  if (cpl != 0 && !user_ok) return TranslateStatus::Protection;
  if (access == Access::Write && !writable) return TranslateStatus::Protection;

  const std::uint32_t frame = pte & kPteFrameMask;
  if (!memory_.contains(frame, kPageSize)) return TranslateStatus::BadPhysical;

  entry.tag = vpn;
  entry.frame = frame;
  entry.writable = writable;
  entry.user = user_ok;
  ++epoch_;

  paddr = frame | (vaddr & kPageMask);
  return TranslateStatus::Ok;
}

}  // namespace kfi::vm
