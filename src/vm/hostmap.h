// Host-side guest page-table construction.
//
// Used by the boot loader (and tests) to build the initial kernel
// address space, exactly like a real boot path sets up page tables
// before enabling paging.  Runtime mappings (user pages, COW) are made
// by the simulated kernel's own mm code, not by this helper.
#pragma once

#include <cstdint>

#include "vm/layout.h"
#include "vm/memory.h"

namespace kfi::vm {

class HostMapper {
 public:
  // `pte_page_cursor` is the physical address of the next free page to
  // consume for page-table pages.
  HostMapper(PhysicalMemory& memory, std::uint32_t pgd_phys,
             std::uint32_t pte_page_cursor)
      : memory_(memory), pgd_phys_(pgd_phys), cursor_(pte_page_cursor) {}

  std::uint32_t pgd_phys() const { return pgd_phys_; }
  std::uint32_t cursor() const { return cursor_; }

  // Maps one page: vaddr -> paddr with PTE `flags` (kPtePresent implied).
  void map(std::uint32_t vaddr, std::uint32_t paddr, std::uint32_t flags) {
    const std::uint32_t pgd_slot = pgd_phys_ + ((vaddr >> 22) << 2);
    std::uint32_t pgd_entry = memory_.read32(pgd_slot);
    if ((pgd_entry & kPtePresent) == 0) {
      const std::uint32_t pte_page = cursor_;
      cursor_ += kPageSize;
      memory_.fill(pte_page, kPageSize, 0);
      // PGD entries are permissive; the PTE carries the restriction.
      pgd_entry = pte_page | kPtePresent | kPteWrite | kPteUser;
      memory_.write32(pgd_slot, pgd_entry);
    }
    const std::uint32_t pte_slot =
        (pgd_entry & kPteFrameMask) + (((vaddr >> 12) & 0x3FF) << 2);
    memory_.write32(pte_slot, (paddr & kPteFrameMask) | kPtePresent | flags);
  }

  void map_range(std::uint32_t vaddr, std::uint32_t paddr, std::uint32_t size,
                 std::uint32_t flags) {
    for (std::uint32_t off = 0; off < size; off += kPageSize) {
      map(vaddr + off, paddr + off, flags);
    }
  }

 private:
  PhysicalMemory& memory_;
  std::uint32_t pgd_phys_;
  std::uint32_t cursor_;
};

}  // namespace kfi::vm
