// Simulated machine address map.
//
// Mirrors the Linux/IA-32 split the paper's testbed used: kernel at
// 0xC0000000 straight-mapped over physical memory, user space below.
// Kernel text is laid out one region per subsystem so that any code
// address maps to its subsystem — the basis for the error-propagation
// analysis (Figure 8).
#pragma once

#include <cstdint>

namespace kfi::vm {

inline constexpr std::uint32_t kPageSize = 4096;
inline constexpr std::uint32_t kPageMask = kPageSize - 1;

inline constexpr std::uint32_t kRamSize = 16u * 1024 * 1024;

// Physical layout reserved by "firmware" (the host-side boot loader).
inline constexpr std::uint32_t kTssPhys = 0x00001000;      // esp0 at +0
inline constexpr std::uint32_t kBootPgdPhys = 0x00002000;  // initial cr3
inline constexpr std::uint32_t kBootInfoPhys = 0x00003000;
inline constexpr std::uint32_t kKernelPtePhys = 0x00004000;  // boot PTE pages
inline constexpr std::uint32_t kBootPteEnd = 0x00010000;     // 12 pages

// Kernel virtual base: virt = phys + kKernelBase for the straight map.
inline constexpr std::uint32_t kKernelBase = 0xC0000000;

inline constexpr std::uint32_t virt_of_phys(std::uint32_t paddr) {
  return paddr + kKernelBase;
}
inline constexpr std::uint32_t phys_of_virt(std::uint32_t vaddr) {
  return vaddr - kKernelBase;
}

// Kernel text regions (virtual), one per subsystem.  Region sizes are
// generous; the linker asserts fit.
inline constexpr std::uint32_t kArchTextBase = 0xC0105000;
inline constexpr std::uint32_t kKernTextBase = 0xC0112000;
inline constexpr std::uint32_t kMmTextBase = 0xC0125000;
inline constexpr std::uint32_t kFsTextBase = 0xC0134000;
inline constexpr std::uint32_t kDriversTextBase = 0xC0150000;
inline constexpr std::uint32_t kLibTextBase = 0xC0155000;
inline constexpr std::uint32_t kIpcTextBase = 0xC015A000;
inline constexpr std::uint32_t kNetTextBase = 0xC015C000;
inline constexpr std::uint32_t kTextEnd = 0xC0162000;

// Kernel global data and the boot stack.
inline constexpr std::uint32_t kKernelDataBase = 0xC0200000;
inline constexpr std::uint32_t kKernelDataSize = 0x00040000;
inline constexpr std::uint32_t kBootStackTop = 0xC02F0000;

// Physical pages from here up are owned by the kernel page allocator.
inline constexpr std::uint32_t kFreePhysBase = 0x00400000;

// User address space.
inline constexpr std::uint32_t kUserTextBase = 0x08048000;
inline constexpr std::uint32_t kUserDataBase = 0x08100000;
inline constexpr std::uint32_t kUserStackTop = 0xBFFFE000;
inline constexpr std::uint32_t kUserStackLimit = 0xBFF00000;

// Memory-mapped I/O (virtual == physical, supervisor only).
inline constexpr std::uint32_t kMmioBase = 0xFF000000;
inline constexpr std::uint32_t kConsoleMmio = 0xFF000000;
inline constexpr std::uint32_t kDiskMmio = 0xFF001000;
inline constexpr std::uint32_t kCrashMmio = 0xFF002000;
inline constexpr std::uint32_t kTlbMmio = 0xFF003000;  // write: flush page/all

// Page-table entry bits (IA-32 subset).
inline constexpr std::uint32_t kPtePresent = 1u << 0;
inline constexpr std::uint32_t kPteWrite = 1u << 1;
inline constexpr std::uint32_t kPteUser = 1u << 2;
inline constexpr std::uint32_t kPteFrameMask = 0xFFFFF000u;

// Page-fault error code bits (IA-32 encoding).
inline constexpr std::uint32_t kPfErrPresent = 1u << 0;  // protection (vs not-present)
inline constexpr std::uint32_t kPfErrWrite = 1u << 1;
inline constexpr std::uint32_t kPfErrUser = 1u << 2;

}  // namespace kfi::vm
