// Chunk-granular snapshots with version-tracked dirty restore.
//
// A ChunkedSnapshot captures a byte array (physical RAM, a disk image)
// whose writers maintain a per-chunk monotonically increasing write
// version.  restore_into() copies back only the chunks whose version
// moved since the last restore *from this snapshot into this array* —
// so the per-run "reboot" costs O(pages the run dirtied) instead of
// O(machine size).  A delta snapshot additionally stores only the
// chunks that differ from a base full snapshot, so a ladder of mid-run
// checkpoints costs memory proportional to what the run has written so
// far, not K full RAM images.
//
// Snapshots are immutable after capture.  The "which chunks still equal
// this snapshot" bookkeeping lives in a caller-owned memo (one
// std::vector<std::uint64_t> per (snapshot, target-array) pair), so a
// single snapshot — e.g. a golden post-boot image or a checkpoint rung
// — can be shared read-only between many machines and threads, each
// with its private memo.  memo[i] records the target's chunk version at
// the last moment chunk i was known byte-identical to this snapshot
// (kUnknownVersion = no such knowledge).
//
// Correctness rests on one invariant the writers must uphold: every
// mutation of chunk i bumps versions[i].  Versions never decrease, so
// "current version == version recorded when the content equalled this
// snapshot" implies the content still equals it, and the chunk can be
// skipped.  restore_into() itself bumps the version of every chunk it
// copies (the content changed), which also invalidates any decode-cache
// entries hanging off the old bytes.
//
// For a delta snapshot, a chunk it does not store is byte-identical to
// the base, so a memo for the *base* doubles as equality knowledge for
// that chunk: pass it as `base_memo` and restores/compares of shared
// checkpoint rungs stay O(dirty + delta) on machines that never
// captured anything.
#pragma once

#include <cstdint>
#include <vector>

namespace kfi::vm {

// Sentinel for "no equality knowledge": write versions are counters
// starting at 0, so no chunk can ever legitimately reach this value.
inline constexpr std::uint64_t kUnknownVersion = ~0ULL;

class ChunkedSnapshot {
 public:
  ChunkedSnapshot() = default;

  // Full capture: a private copy of data[0..size) plus the capture-time
  // versions.  `versions` must have at least ceil(size/chunk_size)
  // entries.
  static ChunkedSnapshot full(const std::uint8_t* data, std::size_t size,
                              const std::vector<std::uint64_t>& versions,
                              std::uint32_t chunk_size);

  // Sparse capture against `base` (a full snapshot of the same array,
  // which must outlive this snapshot): stores only chunks whose content
  // differs from base.  The version filter makes this cheap — chunks
  // whose version still equals base's capture version (or the caller's
  // base memo, if given) are skipped without comparing bytes.  Only
  // sound on the array `base` was captured from: base's capture
  // versions mean nothing on any other array.
  static ChunkedSnapshot delta(const std::uint8_t* data, std::size_t size,
                               const std::vector<std::uint64_t>& versions,
                               const ChunkedSnapshot& base,
                               const std::vector<std::uint64_t>* base_memo);

  // The memo asserting "every chunk equals this snapshot at its capture
  // version" — valid ONLY for the array the snapshot was captured from,
  // at capture time.  Any other machine must start from fresh_memo().
  std::vector<std::uint64_t> capture_memo() const { return versions_; }
  // The all-unknown memo: the first restore through it copies every
  // chunk (there is no prior equality knowledge to exploit).
  std::vector<std::uint64_t> fresh_memo() const {
    return std::vector<std::uint64_t>(chunk_count_, kUnknownVersion);
  }

  // Copies back every chunk whose version says its content may differ
  // from this snapshot, bumping the version of each restored chunk and
  // recording the new version in `memo` (resized/initialized to
  // fresh_memo() if it does not match this snapshot yet).  For delta
  // snapshots, `base_memo` (the caller's memo for the base snapshot, or
  // nullptr) both supplies extra skips for base-resolved chunks and is
  // kept up to date when such chunks are copied.  Returns the number of
  // chunks copied.
  std::uint32_t restore_into(std::uint8_t* data,
                             std::vector<std::uint64_t>& versions,
                             std::vector<std::uint64_t>& memo,
                             std::vector<std::uint64_t>* base_memo) const;

  // The snapshot's bytes for one chunk (resolved through the base for
  // delta snapshots).
  const std::uint8_t* chunk(std::uint32_t index) const;

  // True when data[0..size) is byte-identical to this snapshot's
  // logical content.  Chunks whose memo entry (or, for base-resolved
  // delta chunks, base_memo entry) proves equality are skipped without
  // touching their bytes; pass empty vectors/nullptr for no knowledge.
  // `masked` (a byte offset into the array, or SIZE_MAX) excludes
  // exactly one byte from the comparison — the injector's in-place bit
  // flip.
  bool matches(const std::uint8_t* data,
               const std::vector<std::uint64_t>& versions,
               const std::vector<std::uint64_t>& memo,
               const std::vector<std::uint64_t>* base_memo,
               std::size_t masked = static_cast<std::size_t>(-1)) const;

  // ---- serialization access (machine/state_io, serve/bundle) ----
  // The snapshot's stored payload: the full bytes for a full snapshot,
  // the packed differing chunks for a delta.
  const std::uint8_t* payload() const {
    return view_ != nullptr ? view_ : data_.data();
  }
  std::uint64_t payload_size() const {
    return view_ != nullptr ? view_size_ : data_.size();
  }
  const std::vector<std::uint64_t>& versions() const { return versions_; }
  const std::vector<std::int32_t>& slots() const { return slot_; }

  // Reconstructs a snapshot from serialized parts.  `base` must be
  // nullptr for a full snapshot; for a delta it is the full snapshot
  // the slots resolve through (and must outlive the result).  With
  // `copy_payload` false the snapshot only *views* `payload` — the
  // zero-copy path for mmap'd golden bundles, where the caller
  // guarantees the mapping outlives every borrower; with true the
  // payload is copied into owned storage.
  static ChunkedSnapshot from_parts(std::uint32_t chunk_size, std::size_t size,
                                    std::vector<std::uint64_t> versions,
                                    const ChunkedSnapshot* base,
                                    std::vector<std::int32_t> slots,
                                    const std::uint8_t* payload,
                                    std::size_t payload_size,
                                    bool copy_payload);

  bool valid() const { return chunk_size_ != 0; }
  std::uint32_t chunk_count() const { return chunk_count_; }
  std::uint32_t chunk_size() const { return chunk_size_; }
  std::size_t size() const { return size_; }
  bool is_delta() const { return base_ != nullptr; }
  // The full snapshot a delta resolves through (nullptr for full
  // snapshots).  Lets machines assert a shared checkpoint really was
  // captured against their own boot image.
  const ChunkedSnapshot* base() const { return base_; }
  // Bytes of payload this snapshot itself stores (delta compression
  // measure; excludes the base).
  std::uint64_t storage_bytes() const { return payload_size(); }
  // True when the payload is a borrowed view (an mmap'd bundle) rather
  // than owned storage.
  bool is_view() const { return view_ != nullptr; }

 private:
  std::uint32_t chunk_len(std::uint32_t index) const {
    const std::size_t begin = static_cast<std::size_t>(index) * chunk_size_;
    const std::size_t left = size_ - begin;
    return left < chunk_size_ ? static_cast<std::uint32_t>(left) : chunk_size_;
  }
  // True when the chunk is proven byte-identical to this snapshot by
  // the caller's equality knowledge alone.
  bool proven_equal(std::uint32_t index, std::uint64_t version,
                    const std::vector<std::uint64_t>& memo,
                    const std::vector<std::uint64_t>* base_memo) const {
    if (index < memo.size() && version == memo[index]) return true;
    // A chunk the delta does not store equals the base; equality with
    // the base is equality with this snapshot.
    return base_ != nullptr && slot_[index] < 0 && base_memo != nullptr &&
           index < base_memo->size() && version == (*base_memo)[index];
  }

  std::uint32_t chunk_size_ = 0;
  std::uint32_t chunk_count_ = 0;
  std::size_t size_ = 0;
  const ChunkedSnapshot* base_ = nullptr;  // full snapshot deltas resolve to
  std::vector<std::uint8_t> data_;    // full bytes, or packed delta chunks
  // Borrowed payload (from_parts with copy_payload=false): data_ stays
  // empty and every read resolves through this pointer instead — the
  // caller (a mapped golden bundle) owns the bytes.
  const std::uint8_t* view_ = nullptr;
  std::size_t view_size_ = 0;
  std::vector<std::int32_t> slot_;    // delta: chunk -> packed index, -1=base
  std::vector<std::uint64_t> versions_;  // capture-time versions
};

}  // namespace kfi::vm
