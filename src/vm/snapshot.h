// Chunk-granular snapshots with version-tracked dirty restore.
//
// A ChunkedSnapshot captures a byte array (physical RAM, a disk image)
// whose writers maintain a per-chunk monotonically increasing write
// version.  restore_into() copies back only the chunks whose version
// moved since the snapshot was captured — or since the last restore
// *from this snapshot* — so the per-run "reboot" costs O(pages the run
// dirtied) instead of O(machine size).  A delta snapshot additionally
// stores only the chunks that differ from a base full snapshot, so a
// ladder of mid-run checkpoints costs memory proportional to what the
// run has written so far, not K full RAM images.
//
// Correctness rests on one invariant the writers must uphold: every
// mutation of chunk i bumps versions[i].  Versions never decrease, so
// "current version == version recorded when the content equalled this
// snapshot" implies the content still equals it, and the chunk can be
// skipped.  restore_into() itself bumps the version of every chunk it
// copies (the content changed), which also invalidates any decode-cache
// entries hanging off the old bytes.
#pragma once

#include <cstdint>
#include <vector>

namespace kfi::vm {

class ChunkedSnapshot {
 public:
  ChunkedSnapshot() = default;

  // Full capture: a private copy of data[0..size) plus the capture-time
  // versions.  `versions` must have at least ceil(size/chunk_size)
  // entries.
  static ChunkedSnapshot full(const std::uint8_t* data, std::size_t size,
                              const std::vector<std::uint64_t>& versions,
                              std::uint32_t chunk_size);

  // Sparse capture against `base` (a full snapshot of the same array,
  // which must outlive this snapshot): stores only chunks whose content
  // differs from base.  The version filter makes this cheap — chunks
  // whose version still equals base's capture version are skipped
  // without comparing bytes.
  static ChunkedSnapshot delta(const std::uint8_t* data, std::size_t size,
                               const std::vector<std::uint64_t>& versions,
                               const ChunkedSnapshot& base);

  // Copies back every chunk whose version says its content may differ
  // from this snapshot, bumping the version of each restored chunk.
  // Returns the number of chunks copied.
  std::uint32_t restore_into(std::uint8_t* data,
                             std::vector<std::uint64_t>& versions);

  // The snapshot's bytes for one chunk (resolved through the base for
  // delta snapshots).
  const std::uint8_t* chunk(std::uint32_t index) const;

  // True when data[0..size) is byte-identical to this snapshot's
  // logical content.  Chunks whose version proves equality are skipped
  // without touching their bytes, so the cost is O(chunks written since
  // the snapshot was captured or last restored).  `masked` (a byte
  // offset into the array, or SIZE_MAX) excludes exactly one byte from
  // the comparison — the injector's in-place bit flip.
  bool matches(const std::uint8_t* data,
               const std::vector<std::uint64_t>& versions,
               std::size_t masked = static_cast<std::size_t>(-1)) const;

  bool valid() const { return chunk_size_ != 0; }
  std::uint32_t chunk_count() const { return chunk_count_; }
  std::uint32_t chunk_size() const { return chunk_size_; }
  std::size_t size() const { return size_; }
  bool is_delta() const { return base_ != nullptr; }
  // Bytes of payload this snapshot itself stores (delta compression
  // measure; excludes the base).
  std::uint64_t storage_bytes() const { return data_.size(); }

 private:
  std::uint32_t chunk_len(std::uint32_t index) const {
    const std::size_t begin = static_cast<std::size_t>(index) * chunk_size_;
    const std::size_t left = size_ - begin;
    return left < chunk_size_ ? static_cast<std::uint32_t>(left) : chunk_size_;
  }

  std::uint32_t chunk_size_ = 0;
  std::uint32_t chunk_count_ = 0;
  std::size_t size_ = 0;
  const ChunkedSnapshot* base_ = nullptr;  // full snapshot deltas resolve to
  std::vector<std::uint8_t> data_;    // full bytes, or packed delta chunks
  std::vector<std::int32_t> slot_;    // delta: chunk -> packed index, -1=base
  std::vector<std::uint64_t> versions_;  // capture-time versions
  std::vector<std::uint64_t> clean_;  // version at last restore-from-here
};

}  // namespace kfi::vm
