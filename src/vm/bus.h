// MMIO device bus.
//
// Devices sit above kMmioBase (virtual == physical, supervisor-only).
// All device access is 32-bit; sub-word access to MMIO raises #GP in the
// CPU before reaching the bus.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace kfi::vm {

class Device {
 public:
  virtual ~Device() = default;
  virtual std::uint32_t mmio_read(std::uint32_t offset) = 0;
  virtual void mmio_write(std::uint32_t offset, std::uint32_t value) = 0;
};

class Bus {
 public:
  // Registers `device` at [base, base+size).  Base must be page-aligned
  // and above kMmioBase.  The bus does not own the device.
  void attach(std::uint32_t base, std::uint32_t size, Device* device);

  // Returns false if no device claims the address (surfaces as #GP).
  bool read32(std::uint32_t addr, std::uint32_t& value);
  bool write32(std::uint32_t addr, std::uint32_t value);

 private:
  struct Mapping {
    std::uint32_t base;
    std::uint32_t size;
    Device* device;
  };
  Device* find(std::uint32_t addr, std::uint32_t& offset);
  std::vector<Mapping> mappings_;
};

}  // namespace kfi::vm
