#include "vm/snapshot.h"

#include <cassert>
#include <cstring>

namespace kfi::vm {

namespace {

std::uint32_t count_chunks(std::size_t size, std::uint32_t chunk_size) {
  return static_cast<std::uint32_t>((size + chunk_size - 1) / chunk_size);
}

}  // namespace

ChunkedSnapshot ChunkedSnapshot::full(
    const std::uint8_t* data, std::size_t size,
    const std::vector<std::uint64_t>& versions, std::uint32_t chunk_size) {
  assert(chunk_size != 0);
  ChunkedSnapshot snap;
  snap.chunk_size_ = chunk_size;
  snap.size_ = size;
  snap.chunk_count_ = count_chunks(size, chunk_size);
  assert(versions.size() >= snap.chunk_count_);
  snap.data_.assign(data, data + size);
  snap.versions_.assign(versions.begin(), versions.begin() + snap.chunk_count_);
  return snap;
}

ChunkedSnapshot ChunkedSnapshot::delta(
    const std::uint8_t* data, std::size_t size,
    const std::vector<std::uint64_t>& versions, const ChunkedSnapshot& base,
    const std::vector<std::uint64_t>* base_memo) {
  assert(base.valid() && !base.is_delta());
  assert(size == base.size_);
  ChunkedSnapshot snap;
  snap.chunk_size_ = base.chunk_size_;
  snap.size_ = size;
  snap.chunk_count_ = base.chunk_count_;
  assert(versions.size() >= snap.chunk_count_);
  snap.base_ = &base;
  snap.versions_.assign(versions.begin(), versions.begin() + snap.chunk_count_);
  snap.slot_.assign(snap.chunk_count_, -1);
  for (std::uint32_t i = 0; i < snap.chunk_count_; ++i) {
    // Unchanged version since base capture (or since the capturer's
    // last restore from base) means unchanged content: resolve through
    // the base without comparing bytes.
    if (versions[i] == base.versions_[i] ||
        (base_memo != nullptr && i < base_memo->size() &&
         versions[i] == (*base_memo)[i])) {
      continue;
    }
    const std::uint32_t len = snap.chunk_len(i);
    const std::uint8_t* live = data + static_cast<std::size_t>(i) * snap.chunk_size_;
    if (std::memcmp(live, base.chunk(i), len) == 0) continue;
    snap.slot_[i] = static_cast<std::int32_t>(snap.data_.size() / snap.chunk_size_);
    const std::size_t at = snap.data_.size();
    snap.data_.resize(at + snap.chunk_size_, 0);
    std::memcpy(snap.data_.data() + at, live, len);
  }
  return snap;
}

const std::uint8_t* ChunkedSnapshot::chunk(std::uint32_t index) const {
  if (base_ == nullptr) {
    return payload() + static_cast<std::size_t>(index) * chunk_size_;
  }
  const std::int32_t slot = slot_[index];
  if (slot < 0) return base_->chunk(index);
  return payload() + static_cast<std::size_t>(slot) * chunk_size_;
}

ChunkedSnapshot ChunkedSnapshot::from_parts(
    std::uint32_t chunk_size, std::size_t size,
    std::vector<std::uint64_t> versions, const ChunkedSnapshot* base,
    std::vector<std::int32_t> slots, const std::uint8_t* payload,
    std::size_t payload_size, bool copy_payload) {
  assert(chunk_size != 0);
  ChunkedSnapshot snap;
  snap.chunk_size_ = chunk_size;
  snap.size_ = size;
  snap.chunk_count_ = count_chunks(size, chunk_size);
  assert(versions.size() >= snap.chunk_count_);
  snap.versions_ = std::move(versions);
  if (base != nullptr) {
    assert(base->valid() && !base->is_delta());
    assert(size == base->size_ && chunk_size == base->chunk_size_);
    assert(slots.size() >= snap.chunk_count_);
    snap.base_ = base;
    snap.slot_ = std::move(slots);
  } else {
    assert(payload_size >= size);
  }
  if (copy_payload) {
    snap.data_.assign(payload, payload + payload_size);
  } else {
    snap.view_ = payload;
    snap.view_size_ = payload_size;
  }
  return snap;
}

bool ChunkedSnapshot::matches(const std::uint8_t* data,
                              const std::vector<std::uint64_t>& versions,
                              const std::vector<std::uint64_t>& memo,
                              const std::vector<std::uint64_t>* base_memo,
                              std::size_t masked) const {
  assert(valid());
  assert(versions.size() >= chunk_count_);
  for (std::uint32_t i = 0; i < chunk_count_; ++i) {
    if (proven_equal(i, versions[i], memo, base_memo)) continue;
    const std::size_t begin = static_cast<std::size_t>(i) * chunk_size_;
    const std::uint8_t* live = data + begin;
    const std::uint8_t* want = chunk(i);
    const std::uint32_t len = chunk_len(i);
    if (masked >= begin && masked < begin + len) {
      const std::size_t off = masked - begin;
      if (std::memcmp(live, want, off) != 0) return false;
      if (off + 1 < len &&
          std::memcmp(live + off + 1, want + off + 1, len - off - 1) != 0) {
        return false;
      }
    } else if (std::memcmp(live, want, len) != 0) {
      return false;
    }
  }
  return true;
}

std::uint32_t ChunkedSnapshot::restore_into(
    std::uint8_t* data, std::vector<std::uint64_t>& versions,
    std::vector<std::uint64_t>& memo,
    std::vector<std::uint64_t>* base_memo) const {
  assert(valid());
  assert(versions.size() >= chunk_count_);
  if (memo.size() < chunk_count_) memo.assign(chunk_count_, kUnknownVersion);
  std::uint32_t copied = 0;
  for (std::uint32_t i = 0; i < chunk_count_; ++i) {
    if (proven_equal(i, versions[i], memo, base_memo)) continue;
    std::memcpy(data + static_cast<std::size_t>(i) * chunk_size_, chunk(i),
                chunk_len(i));
    ++versions[i];
    memo[i] = versions[i];
    // A base-resolved chunk now also equals the base at this version.
    if (base_ != nullptr && slot_[i] < 0 && base_memo != nullptr &&
        i < base_memo->size()) {
      (*base_memo)[i] = versions[i];
    }
    ++copied;
  }
  return copied;
}

}  // namespace kfi::vm
