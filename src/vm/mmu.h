// Two-level paging MMU (IA-32 style: 10-bit PGD index, 10-bit PTE index,
// 12-bit offset) with a small direct-mapped TLB.
//
// The page tables live in simulated physical memory and are maintained by
// the simulated kernel's mm code, so instruction-stream errors can and do
// corrupt translations — one of the propagation channels the paper
// observes (mm faults crashing in other subsystems).
#pragma once

#include <cstdint>

#include "vm/layout.h"
#include "vm/memory.h"

namespace kfi::vm {

enum class Access : std::uint8_t { Read, Write, Execute };

enum class TranslateStatus : std::uint8_t {
  Ok,
  NotPresent,   // PGD/PTE absent -> #PF (error code: not-present)
  Protection,   // write to RO page or user access to supervisor -> #PF
  BadPhysical,  // PTE points outside RAM -> #PF (paging request)
  Mmio,         // address in MMIO window (supervisor only)
};

class Mmu {
 public:
  explicit Mmu(PhysicalMemory& memory) : memory_(memory) {}

  std::uint32_t cr3() const { return cr3_; }
  void set_cr3(std::uint32_t pgd_phys) {
    cr3_ = pgd_phys;
    flush_tlb();
  }

  // Translates `vaddr`; on Ok fills `paddr`.  MMIO addresses return
  // Mmio when cpl==0 (Protection otherwise) and do not fill paddr.
  TranslateStatus translate(std::uint32_t vaddr, Access access, int cpl,
                            std::uint32_t& paddr);

  // Same result as translate() with the TLB-hit path inlined; falls
  // through to the full (filling) walk on a miss.  The block engine's
  // per-micro-op fetch verification sits on this.
  TranslateStatus translate_fast(std::uint32_t vaddr, Access access, int cpl,
                                 std::uint32_t& paddr) {
    if (vaddr >= kMmioBase) {
      return cpl == 0 ? TranslateStatus::Mmio : TranslateStatus::Protection;
    }
    const std::uint32_t vpn = vaddr >> 12;
    const TlbEntry& entry = tlb_[vpn & (kTlbSize - 1)];
    if (entry.tag == vpn) {
      if (cpl != 0 && !entry.user) return TranslateStatus::Protection;
      if (access == Access::Write && !entry.writable) {
        return TranslateStatus::Protection;
      }
      paddr = entry.frame | (vaddr & kPageMask);
      return TranslateStatus::Ok;
    }
    return translate(vaddr, access, cpl, paddr);
  }

  // Monotonic count of TLB mutations: fills (translate() walks that
  // install an entry), flushes, and cr3 loads.  Two uses: the chained
  // block engine's inline translate cache skips a translate_fast call
  // only while the epoch is unchanged since the last verified hit on
  // the same page (a skipped call is then provably a side-effect-free
  // TLB hit), and the cross-engine TLB-determinism tests assert equal
  // epochs after equal runs — any divergence in fill history between
  // the stepper and the block engines shows up here.
  std::uint64_t epoch() const { return epoch_; }

  // Translation without side effects: identical result to translate()
  // at this instant, but never fills the TLB.  Block *construction*
  // uses this so predecoding lookahead instructions cannot perturb the
  // TLB state the stepping engine would have — stale-entry semantics
  // stay bit-identical between engines.
  TranslateStatus peek(std::uint32_t vaddr, Access access, int cpl,
                       std::uint32_t& paddr) const;

  void flush_tlb();

  // Drops any cached translation for the page containing `vaddr`
  // (the kernel's invlpg; also called by the CPU after stores that hit
  // page-table pages is *not* modelled — the kernel flushes explicitly,
  // as real kernels must).
  void flush_page(std::uint32_t vaddr);

 private:
  struct TlbEntry {
    std::uint32_t tag = 0xFFFFFFFF;  // vpn | valid marker
    std::uint32_t frame = 0;
    bool writable = false;
    bool user = false;
  };

  static constexpr std::uint32_t kTlbSize = 256;  // power of two

  PhysicalMemory& memory_;
  std::uint32_t cr3_ = kBootPgdPhys;
  TlbEntry tlb_[kTlbSize];
  std::uint64_t epoch_ = 0;
};

}  // namespace kfi::vm
