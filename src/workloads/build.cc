#include "workloads/workloads.h"

#include <map>
#include <mutex>
#include <stdexcept>

#include "kasm/assembler.h"
#include "kernel/constants.h"
#include "minic/codegen.h"
#include "vm/layout.h"
#include "workloads/libc.h"

namespace kfi::workloads {

WorkloadBuildResult build_workload(const Workload& workload) {
  WorkloadBuildResult result;
  const std::string source =
      kernel::kernel_constants_minic() + user_libc() + workload.source;
  minic::CompileResult compiled = minic::compile(source, workload.name);
  if (!compiled.ok) {
    result.errors = std::move(compiled.errors);
    return result;
  }
  kasm::AsmResult text = kasm::assemble(compiled.text_asm, vm::kUserTextBase);
  kasm::AsmResult data = kasm::assemble(compiled.data_asm, vm::kUserDataBase);
  if (!text.ok || !data.ok) {
    result.errors = text.errors;
    result.errors.insert(result.errors.end(), data.errors.begin(),
                         data.errors.end());
    return result;
  }
  std::vector<kasm::AsmUnit> units{std::move(text.unit),
                                   std::move(data.unit)};
  kasm::LinkResult linked = kasm::link(units);
  if (!linked.ok) {
    result.errors = std::move(linked.errors);
    return result;
  }
  const auto entry = linked.symbols.find("_start");
  if (entry == linked.symbols.end()) {
    result.errors.push_back("workload has no _start");
    return result;
  }
  result.image.name = workload.name;
  result.image.entry = entry->second;
  result.image.text_base = units[0].base;
  result.image.text = std::move(units[0].bytes);
  result.image.data_base = units[1].base;
  result.image.data = std::move(units[1].bytes);
  result.ok = true;
  return result;
}

const WorkloadImage& built_workload(const std::string& name) {
  // Campaign workers construct machines concurrently; the cache must be
  // locked.  std::map references stay valid across inserts, so the
  // returned reference is safe to hold after the lock is dropped.
  static std::mutex& mutex = *new std::mutex();
  static std::map<std::string, WorkloadImage>& cache =
      *new std::map<std::string, WorkloadImage>();
  const std::lock_guard<std::mutex> lock(mutex);
  const auto it = cache.find(name);
  if (it != cache.end()) return it->second;

  const Workload* workload = find_workload(name);
  if (workload == nullptr) {
    throw std::runtime_error("unknown workload: " + name);
  }
  WorkloadBuildResult result = build_workload(*workload);
  if (!result.ok) {
    std::string message = "workload build failed (" + name + "):\n";
    for (const std::string& e : result.errors) message += "  " + e + "\n";
    throw std::runtime_error(message);
  }
  return cache.emplace(name, std::move(result.image)).first->second;
}

}  // namespace kfi::workloads
