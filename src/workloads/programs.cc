// The eight UnixBench-analog benchmark programs.
#include "workloads/workloads.h"

namespace kfi::workloads {
namespace {

// syscall.c — raw system-call overhead: getpid/dup/close/semctl loops.
// Exercises: arch (entry path), kernel, fs (file table), ipc.
const char* kSyscall = R"MC(
func main() {
  var i = 0;
  var acc = 0;
  while (i < 120) {
    acc = acc + getpid();
    var fd = dup(1);
    if (fd >= 0) { close(fd); }
    semctl(4, 1, i);
    acc = acc + semctl(3, 1, 0);
    i = i + 1;
  }
  print("syscall: ");
  print_num(acc);
  print("\n");
  return 0;
}
)MC";

// pipe.c — single-process pipe throughput: write/read 512-byte chunks.
// Exercises: fs (pipe_read/pipe_write), kernel (wait queues), mm.
const char* kPipe = R"MC(
array fds[2];
array buf[128];

func main() {
  if (pipe(fds) != 0) { print("pipe failed\n"); return 1; }
  var wfd = mem[fds + 4];
  var rfd = mem[fds];
  var round = 0;
  var sum = 0;
  while (round < 12) {
    var i = 0;
    while (i < 512) {
      memb[buf + i] = (round + i) & 0xFF;
      i = i + 1;
    }
    if (write(wfd, buf, 512) != 512) { print("short write\n"); return 1; }
    i = 0;
    while (i < 512) { memb[buf + i] = 0; i = i + 1; }
    if (read(rfd, buf, 512) != 512) { print("short read\n"); return 1; }
    i = 0;
    while (i < 512) {
      sum = sum + memb[buf + i];
      i = i + 1;
    }
    round = round + 1;
  }
  print("pipe: ");
  print_num(sum);
  print("\n");
  return 0;
}
)MC";

// context1.c — two processes ping-pong a token through two pipes,
// forcing a context switch per hop.
// Exercises: kernel (schedule/wake_up), fs (pipes), arch (switch_to).
const char* kContext1 = R"MC(
array up[2];
array down[2];
array tok[1];

func main() {
  if (pipe(up) != 0) { return 1; }
  if (pipe(down) != 0) { return 1; }
  var pid = fork();
  if (pid == 0) {
    // child: read from up, bump, write to down
    var n = 0;
    while (n < 40) {
      if (read(mem[up], tok, 4) != 4) { exit(2); }
      mem[tok] = mem[tok] + 1;
      if (write(mem[down + 4], tok, 4) != 4) { exit(3); }
      n = n + 1;
    }
    exit(0);
  }
  var rounds = 0;
  mem[tok] = 0;
  while (rounds < 40) {
    if (write(mem[up + 4], tok, 4) != 4) { print("ctx write err\n"); return 1; }
    if (read(mem[down], tok, 4) != 4) { print("ctx read err\n"); return 1; }
    rounds = rounds + 1;
  }
  var status = 0;
  waitpid(pid, &wait_status, 0);
  print("context1: ");
  print_num(mem[tok]);
  print("\n");
  return 0;
}

global wait_status = 0;
)MC";

// spawn.c — process creation: fork + immediate child exit + waitpid.
// Exercises: kernel (fork/exit/wait), mm (copy_page_range, zap, COW).
const char* kSpawn = R"MC(
global statuses = 0;

func main() {
  var i = 0;
  while (i < 8) {
    var pid = fork();
    if (pid == 0) {
      exit(i & 0x7F);
    }
    if (pid < 0) { print("fork failed\n"); return 1; }
    var st = 0;
    var got = waitpid(pid, &wait_box, 0);
    if (got != pid) { print("wait mismatch\n"); return 1; }
    statuses = statuses + (wait_box >> 8);
    i = i + 1;
  }
  print("spawn: ");
  print_num(statuses);
  print("\n");
  return 0;
}

global wait_box = 0;
)MC";

// fstime.c — file system throughput: create, write, rewind, read back,
// checksum, unlink; plus a read pass over pre-existing files.
// Exercises: fs (namei, read/write paths), mm (page cache), drivers.
const char* kFstime = R"MC(
array wbuf[256];

func checksum_file(path) {
  var fd = open(path, O_RDONLY);
  if (fd < 0) { return -1; }
  var sum = 0;
  var n = read(fd, wbuf, 1024);
  while (n > 0) {
    var i = 0;
    while (i < n) {
      sum = sum + memb[wbuf + i];
      i = i + 1;
    }
    n = read(fd, wbuf, 1024);
  }
  close(fd);
  return sum;
}

func main() {
  // Write a 3.5 KiB file in 512-byte chunks.
  var fd = creat("/tmp/fstime.tmp");
  if (fd < 0) { print("creat failed\n"); return 1; }
  var chunk = 0;
  while (chunk < 7) {
    var i = 0;
    while (i < 512) {
      memb[wbuf + i] = (chunk * 7 + i) & 0xFF;
      i = i + 1;
    }
    if (write(fd, wbuf, 512) != 512) { print("write failed\n"); return 1; }
    chunk = chunk + 1;
  }
  close(fd);

  var sum = checksum_file("/tmp/fstime.tmp");
  print("fstime rw: ");
  print_num(sum);
  print("\n");

  var etc = checksum_file("/etc/passwd");
  var seed = checksum_file("/data/seed.dat");
  print("fstime ro: ");
  print_num(etc);
  print(" ");
  print_num(seed);
  print("\n");

  unlink("/tmp/fstime.tmp");
  var gone = open("/tmp/fstime.tmp", O_RDONLY);
  if (gone >= 0) { print("unlink failed\n"); return 1; }
  return 0;
}
)MC";

// dhry.c — Dhrystone-flavoured integer/string synthetic benchmark.
// Exercises: user CPU + timer preemption (arch), minimal syscalls.
const char* kDhry = R"MC(
array rec_a[16];
array rec_b[16];
array str_a[16];
array str_b[16];

func str_copy(dst, src) {
  var i = 0;
  while (memb[src + i] != 0) {
    memb[dst + i] = memb[src + i];
    i = i + 1;
  }
  memb[dst + i] = 0;
  return i;
}

func str_eq(a, b) {
  var i = 0;
  while (1) {
    if (memb[a + i] != memb[b + i]) { return 0; }
    if (memb[a + i] == 0) { return 1; }
    i = i + 1;
  }
  return 0;
}

func proc7(a, b) { return a + 2 + b; }

func proc8(arr1, arr2, x, y) {
  mem[arr1 + (x + 2) * 4] = y + 5;
  mem[arr2 + (x + 1) * 4] = mem[arr1 + (x + 2) * 4];
  return 0;
}

func main() {
  str_copy(str_a, "DHRYSTONE PROGRAM, 1ST STRING");
  var runs = 0;
  var int_glob = 0;
  while (runs < 150) {
    str_copy(str_b, str_a);
    if (str_eq(str_a, str_b)) {
      int_glob = proc7(int_glob, runs);
    }
    proc8(rec_a, rec_b, runs & 7, int_glob & 0xFF);
    int_glob = (int_glob * 13 + 7) % 100003;
    runs = runs + 1;
  }
  print("dhry: ");
  print_num(int_glob);
  print("\n");
  return 0;
}
)MC";

// hanoi.c — recursion benchmark (deep user stack growth -> page faults).
// Exercises: arch+mm (do_page_fault / do_anonymous_page on stack).
const char* kHanoi = R"MC(
global moves = 0;

func hanoi(n, from, to, via) {
  if (n == 0) { return 0; }
  hanoi(n - 1, from, via, to);
  moves = moves + 1;
  hanoi(n - 1, via, to, from);
  return 0;
}

func main() {
  hanoi(11, 1, 3, 2);
  print("hanoi: ");
  print_num(moves);
  print("\n");
  return 0;
}
)MC";

// looper.c — loop with heap traffic via brk (demand-zero paging).
// Exercises: mm (brk / do_anonymous_page), kernel (timer slicing).
const char* kLooper = R"MC(
func main() {
  var base = brk(0);
  if (brk(base + 0x6000) < 0) { print("brk failed\n"); return 1; }
  var sum = 0;
  var round = 0;
  while (round < 4) {
    var p = base;
    while (p <u base + 0x6000) {
      mem[p] = mem[p] + round + (p & 0xFF);
      sum = sum + mem[p];
      p = p + 256;
    }
    round = round + 1;
  }
  print("looper: ");
  print_num(sum & 0xFFFFFF);
  print("\n");
  return 0;
}
)MC";

// netio.c — loopback datagram throughput: two bound sockets exchanging
// checksummed datagrams (the "studied separately" net extension).
// Exercises: net (udp_sendmsg/recvmsg, loopback), fs (file table).
const char* kNetio = R"MC(
array args[4];
array msg[64];

func sock() { mem[args] = 0; return syscall3(SYS_SOCKETCALL, 1, args, 0); }
func bindp(fd, port) {
  mem[args] = fd;
  mem[args + 4] = port;
  return syscall3(SYS_SOCKETCALL, 2, args, 0);
}
func sendto(fd, buf, n, port) {
  mem[args] = fd;
  mem[args + 4] = buf;
  mem[args + 8] = n;
  mem[args + 12] = port;
  return syscall3(SYS_SOCKETCALL, 11, args, 0);
}
func recvfrom(fd, buf, n) {
  mem[args] = fd;
  mem[args + 4] = buf;
  mem[args + 8] = n;
  return syscall3(SYS_SOCKETCALL, 12, args, 0);
}

func main() {
  var a = sock();
  var b = sock();
  if (a < 0 || b < 0) { print("socket failed\n"); return 1; }
  if (bindp(a, 53) != 0) { print("bind a failed\n"); return 1; }
  if (bindp(b, 80) != 0) { print("bind b failed\n"); return 1; }
  var round = 0;
  var sum = 0;
  while (round < 25) {
    var i = 0;
    while (i < 48) {
      memb[msg + i] = (round * 3 + i) & 0xFF;
      i = i + 1;
    }
    if (sendto(a, msg, 48, 80) != 0) { print("send failed\n"); return 1; }
    i = 0;
    while (i < 48) { memb[msg + i] = 0; i = i + 1; }
    var n = recvfrom(b, msg, 64);
    if (n != 48) { print("recv failed\n"); return 1; }
    i = 0;
    while (i < n) {
      sum = sum + memb[msg + i];
      i = i + 1;
    }
    // Bounce a reply the other way.
    if (sendto(b, msg, 16, 53) != 0) { print("reply failed\n"); return 1; }
    if (recvfrom(a, msg, 64) != 16) { print("reply recv failed\n"); return 1; }
    round = round + 1;
  }
  print("netio: ");
  print_num(sum);
  print("\n");
  return 0;
}
)MC";

}  // namespace

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> workloads = {
      {"syscall", kSyscall, "arch kernel fs ipc"},
      {"pipe", kPipe, "fs kernel"},
      {"context1", kContext1, "kernel fs arch"},
      {"spawn", kSpawn, "kernel mm"},
      {"fstime", kFstime, "fs mm drivers"},
      {"dhry", kDhry, "arch user-cpu"},
      {"hanoi", kHanoi, "arch mm"},
      {"looper", kLooper, "mm kernel"},
      {"netio", kNetio, "net fs"},
  };
  return workloads;
}

const Workload* find_workload(const std::string& name) {
  for (const Workload& w : all_workloads()) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

}  // namespace kfi::workloads
