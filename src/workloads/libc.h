// MiniC user-space library source (see libc.cc).
#pragma once

#include <string>

namespace kfi::workloads {

std::string user_libc();

}  // namespace kfi::workloads
