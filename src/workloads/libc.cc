// The user-space support library every workload links against:
// syscall wrappers (int 0x80, Linux register convention), string
// helpers, and formatted console output.
#include "workloads/libc.h"

namespace kfi::workloads {

std::string user_libc() {
  return R"MC(
// crt0: the kernel irets here; exit with main's return value.
func _start() {
  var r = main();
  exit(r);
  return 0;
}

// int 0x80 with eax=nr, ebx/ecx/edx = args; result in eax.
func syscall3(nr, a, b, c) {
  asm("mov 8(%ebp), %eax");
  asm("mov 12(%ebp), %ebx");
  asm("mov 16(%ebp), %ecx");
  asm("mov 20(%ebp), %edx");
  asm("int $0x80");
  return;
}

func exit(code) { syscall3(SYS_EXIT, code, 0, 0); return 0; }
func fork() { return syscall3(SYS_FORK, 0, 0, 0); }
func read(fd, buf, n) { return syscall3(SYS_READ, fd, buf, n); }
func write(fd, buf, n) { return syscall3(SYS_WRITE, fd, buf, n); }
func open(path, flags) { return syscall3(SYS_OPEN, path, flags, 0); }
func close(fd) { return syscall3(SYS_CLOSE, fd, 0, 0); }
func waitpid(pid, status, opts) { return syscall3(SYS_WAITPID, pid, status, opts); }
func creat(path) { return syscall3(SYS_CREAT, path, 0, 0); }
func unlink(path) { return syscall3(SYS_UNLINK, path, 0, 0); }
func lseek(fd, off, whence) { return syscall3(SYS_LSEEK, fd, off, whence); }
func getpid() { return syscall3(SYS_GETPID, 0, 0, 0); }
func dup(fd) { return syscall3(SYS_DUP, fd, 0, 0); }
func pipe(fds) { return syscall3(SYS_PIPE, fds, 0, 0); }
func brk(p) { return syscall3(SYS_BRK, p, 0, 0); }
func semctl(op, id, val) { return syscall3(SYS_IPC, op, id, val); }

func u_strlen(s) {
  var n = 0;
  while (memb[s + n] != 0) { n = n + 1; }
  return n;
}

func print(s) {
  write(1, s, u_strlen(s));
  return 0;
}

array num_buf[4];

func print_num(v) {
  var i = 15;
  memb[num_buf + i] = 0;
  if (v == 0) {
    i = i - 1;
    memb[num_buf + i] = 48;
  }
  while (v != 0) {
    i = i - 1;
    memb[num_buf + i] = 48 + v % 10;
    v = v / 10;
  }
  print(num_buf + i);
  return 0;
}

func print_hex(v) {
  var i = 28;
  while (i >= 0) {
    var d = (v >> i) & 0xF;
    if (d < 10) { memb[num_buf] = 48 + d; }
    else { memb[num_buf] = 87 + d; }
    memb[num_buf + 1] = 0;
    print(num_buf);
    i = i - 4;
  }
  return 0;
}
)MC";
}

}  // namespace kfi::workloads
