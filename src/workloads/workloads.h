// The benchmark workloads — MiniC re-implementations of the eight
// UnixBench programs the paper selected (context1, dhry, fstime, hanoi,
// looper, pipe, spawn, syscall), compiled for the simulated user space.
//
// Their role is the paper's: generate kernel activity in the targeted
// subsystems so injected errors get activated, and produce deterministic
// console output for fail-silence comparison against a golden run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kfi::workloads {

struct Workload {
  std::string name;
  std::string source;      // MiniC
  std::string exercises;   // which subsystems it stresses (documentation)
};

const std::vector<Workload>& all_workloads();
const Workload* find_workload(const std::string& name);

struct WorkloadImage {
  std::string name;
  std::uint32_t entry = 0;
  std::uint32_t text_base = 0;
  std::vector<std::uint8_t> text;
  std::uint32_t data_base = 0;
  std::vector<std::uint8_t> data;
};

struct WorkloadBuildResult {
  bool ok = false;
  WorkloadImage image;
  std::vector<std::string> errors;
};

WorkloadBuildResult build_workload(const Workload& workload);

// Cached build by name; throws on unknown name or build failure.
const WorkloadImage& built_workload(const std::string& name);

}  // namespace kfi::workloads
