#include "disk/disk.h"

#include <cassert>
#include <cstring>
#include <utility>

namespace kfi::disk {

std::uint32_t DiskImage::read32(std::uint32_t byte_offset) const {
  std::uint32_t v = 0;
  std::memcpy(&v, bytes_.data() + byte_offset, 4);
  return v;
}

void DiskImage::write32(std::uint32_t byte_offset, std::uint32_t value) {
  std::memcpy(bytes_.data() + byte_offset, &value, 4);
  ++versions_[byte_offset / kBlockSize];
}

void DiskImage::restore_blocks_full(const vm::ChunkedSnapshot& snap,
                                    std::vector<std::uint64_t>* memo) {
  assert(!snap.is_delta() && snap.size() == bytes_.size());
  std::memcpy(bytes_.data(), snap.chunk(0), bytes_.size());
  for (std::uint64_t& v : versions_) ++v;
  if (memo != nullptr) {
    memo->assign(versions_.begin(), versions_.begin() + snap.chunk_count());
  }
}

std::uint32_t DiskDevice::mmio_read(std::uint32_t offset) {
  switch (offset) {
    case kRegBlock: return block_;
    case kRegPhys: return phys_;
    case kRegStatus: return status_;
    default: return 0;
  }
}

void DiskDevice::mmio_write(std::uint32_t offset, std::uint32_t value) {
  switch (offset) {
    case kRegBlock: block_ = value; break;
    case kRegPhys: phys_ = value; break;
    case kRegCmd: execute(value); break;
    default: break;
  }
}

void DiskDevice::execute(std::uint32_t cmd) {
  if (block_ >= image_.block_count() || !memory_.contains(phys_, kBlockSize)) {
    status_ = 1;
    return;
  }
  if (cmd == kCmdRead) {
    // Read through the const accessor: a DMA read must not mark the
    // block dirty for snapshot purposes.
    memory_.write_block(phys_, std::as_const(image_).block(block_),
                        kBlockSize);
    ++reads_;
    status_ = 0;
  } else if (cmd == kCmdWrite) {
    memory_.read_block(phys_, image_.block(block_), kBlockSize);
    ++writes_;
    status_ = 0;
  } else {
    status_ = 1;
  }
}

}  // namespace kfi::disk
