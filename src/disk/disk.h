// Simulated block device.
//
// The kernel talks to it through a 4-register MMIO port (synchronous
// DMA): the paper's testbed wrote crash dumps and file data to a real
// IDE disk; here the image is a host-side byte vector so that fsck and
// the severity analysis can inspect it after every crash.
#pragma once

#include <cstdint>
#include <vector>

#include "vm/bus.h"
#include "vm/memory.h"
#include "vm/snapshot.h"

namespace kfi::disk {

inline constexpr std::uint32_t kBlockSize = 1024;

// MMIO register offsets (from vm::kDiskMmio).
inline constexpr std::uint32_t kRegCmd = 0;     // write 1=read, 2=write
inline constexpr std::uint32_t kRegBlock = 4;   // block number
inline constexpr std::uint32_t kRegPhys = 8;    // physical RAM address
inline constexpr std::uint32_t kRegStatus = 12; // read: 0 ok, 1 error

inline constexpr std::uint32_t kCmdRead = 1;
inline constexpr std::uint32_t kCmdWrite = 2;

class DiskImage {
 public:
  explicit DiskImage(std::uint32_t blocks)
      : bytes_(static_cast<std::size_t>(blocks) * kBlockSize, 0),
        versions_(blocks, 0) {}

  std::uint32_t block_count() const {
    return static_cast<std::uint32_t>(bytes_.size() / kBlockSize);
  }
  // The mutable accessor bumps the block's write version (dirty-block
  // restore tracking): callers take it to write.
  std::uint8_t* block(std::uint32_t n) {
    ++versions_[n];
    return bytes_.data() + n * kBlockSize;
  }
  const std::uint8_t* block(std::uint32_t n) const {
    return bytes_.data() + n * kBlockSize;
  }

  std::uint32_t read32(std::uint32_t byte_offset) const;
  void write32(std::uint32_t byte_offset, std::uint32_t value);

  // Mutable whole-image access (host-side mkfs/fsck tooling): every
  // block must be assumed written.
  std::vector<std::uint8_t>& bytes() {
    for (std::uint64_t& v : versions_) ++v;
    return bytes_;
  }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  // ---- version-tracked snapshots (dirty-block restore) ----
  //
  // Snapshots are immutable and shareable; the per-(snapshot, image)
  // equality memo is caller-owned — see vm/snapshot.h.
  vm::ChunkedSnapshot snapshot_blocks() const {
    return vm::ChunkedSnapshot::full(bytes_.data(), bytes_.size(), versions_,
                                     kBlockSize);
  }
  vm::ChunkedSnapshot snapshot_delta(
      const vm::ChunkedSnapshot& base,
      const std::vector<std::uint64_t>* base_memo = nullptr) const {
    return vm::ChunkedSnapshot::delta(bytes_.data(), bytes_.size(), versions_,
                                      base, base_memo);
  }
  // Copies back only blocks written since the last restore of `snap`
  // into this image (per `memo`); returns blocks copied.
  std::uint32_t restore_blocks(const vm::ChunkedSnapshot& snap,
                               std::vector<std::uint64_t>& memo,
                               std::vector<std::uint64_t>* base_memo = nullptr) {
    return snap.restore_into(bytes_.data(), versions_, memo, base_memo);
  }
  void restore_blocks_full(const vm::ChunkedSnapshot& snap,
                           std::vector<std::uint64_t>* memo = nullptr);
  // True when the image is byte-identical to `snap`; skips blocks whose
  // write version (per `memo`/`base_memo`) proves equality.
  bool blocks_match(const vm::ChunkedSnapshot& snap,
                    const std::vector<std::uint64_t>& memo,
                    const std::vector<std::uint64_t>* base_memo = nullptr) const {
    return snap.matches(bytes_.data(), versions_, memo, base_memo);
  }
  const std::vector<std::uint64_t>& block_versions() const { return versions_; }

  // ---- legacy whole-image snapshots ----
  std::vector<std::uint8_t> snapshot() const { return bytes_; }
  void restore(const std::vector<std::uint8_t>& snap) {
    bytes_ = snap;
    for (std::uint64_t& v : versions_) ++v;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::vector<std::uint64_t> versions_;
};

// The MMIO front-end.  Owns no storage; binds an image to guest RAM.
class DiskDevice : public vm::Device {
 public:
  DiskDevice(DiskImage& image, vm::PhysicalMemory& memory)
      : image_(image), memory_(memory) {}

  std::uint32_t mmio_read(std::uint32_t offset) override;
  void mmio_write(std::uint32_t offset, std::uint32_t value) override;

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

 private:
  void execute(std::uint32_t cmd);

  DiskImage& image_;
  vm::PhysicalMemory& memory_;
  std::uint32_t block_ = 0;
  std::uint32_t phys_ = 0;
  std::uint32_t status_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace kfi::disk
