// The whole simulated machine: CPU + RAM + MMU + devices + kernel +
// workload + root disk, with boot, post-boot snapshot/restore ("reboot"),
// a cycle-budget watchdog, and the crash-handler back end.
//
// This is the substrate every injection run executes on; one Machine is
// reused across thousands of runs by restoring the post-boot snapshot.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_set>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "disk/disk.h"
#include "kernel/build.h"
#include "kernel/koffsets.h"
#include "vm/bus.h"
#include "vm/cpu.h"
#include "vm/memory.h"
#include "workloads/workloads.h"

namespace kfi::machine {

// What the kernel's crash handler reported through the crash port
// (LKCD-dump equivalent), plus the hardware trap record for latency.
struct CrashInfo {
  std::uint32_t cause = 0;       // kernel::CRASH_* code
  std::uint32_t fault_addr = 0;
  std::uint32_t eip = 0;         // faulting instruction (from the frame)
  std::uint64_t report_cycle = 0;  // when the crash port was written
  std::uint64_t trap_cycle = 0;    // when the hardware trap fired
};

enum class RunExit : std::uint8_t {
  Completed,   // init exited: clean shutdown, exit code in `exit_code`
  Crashed,     // kernel oops/panic: see `crash`
  Hung,        // watchdog: cycle budget exhausted or hard deadlock
  CpuDead,     // double/triple fault: no dump possible
  Breakpoint,  // a debug-register breakpoint fired (injection trigger)
};

struct RunResult {
  RunExit exit = RunExit::Hung;
  std::uint32_t exit_code = 0;
  CrashInfo crash;
  int breakpoint_index = -1;
};

struct MachineOptions {
  std::uint32_t timer_period = kernel::kTimerPeriodCycles;
  std::uint64_t boot_budget = 4'000'000;
};

// Human-readable text for a kernel crash-port cause code, phrased as
// the kernel's oops messages are.
std::string_view crash_code_name(std::uint32_t code);

// Builds the default root-disk image (with /sbin/init, /lib/libc.so,
// /etc/passwd, /data/seed.dat, /tmp) the severity analysis expects.
disk::DiskImage make_root_disk();

class Machine {
 public:
  // The kernel image and the workload are loaded at construction; call
  // boot() once, then run()/restore() per injection run.
  Machine(const kernel::KernelImage& kernel_image,
          const workloads::WorkloadImage& workload,
          const disk::DiskImage& root_disk,
          const MachineOptions& options = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Runs from reset to the first user-mode instruction of the workload
  // and snapshots there.  Returns false if the kernel failed to boot.
  bool boot();

  // Continues execution until an exit condition or `max_cycles` more
  // cycles elapse (the watchdog).
  RunResult run(std::uint64_t max_cycles);

  // Restores the post-boot snapshot and the pristine disk ("reboot").
  void restore();

  vm::Cpu& cpu() { return *cpu_; }
  vm::PhysicalMemory& memory() { return *memory_; }
  disk::DiskImage& disk_image() { return *disk_image_; }
  const std::string& console_output() const { return console_; }

  // Cycle at which run() started relative to the boot snapshot.
  std::uint64_t snapshot_cycles() const { return snapshot_cycles_; }

  // FNV-1a digest over the complete machine state: architectural
  // registers, flags, eip, cpl, cr3, cycle counter, every byte of RAM,
  // the disk image, and the console output.  Two machines that took the
  // same execution path from the same snapshot digest identically; any
  // divergence — a single RAM byte, one extra cycle — changes the
  // value.  kfi::check uses this for its bit-for-bit replay and
  // schedule-independence proofs.
  std::uint64_t state_digest() const;

  // When set, every kernel-text instruction address executed during
  // run() is inserted into *sink (instruction coverage for the
  // injector's activation precheck).  Pass nullptr to disable.
  void set_trace(std::unordered_set<std::uint32_t>* sink) { trace_ = sink; }

 private:
  class ConsoleDevice;
  class CrashDevice;
  class TlbDevice;

  void load_images();
  void install_vectors();

  const kernel::KernelImage& kernel_image_;
  const workloads::WorkloadImage& workload_;
  MachineOptions options_;

  std::unique_ptr<vm::PhysicalMemory> memory_;
  std::unique_ptr<vm::Bus> bus_;
  std::unique_ptr<vm::Cpu> cpu_;
  std::unique_ptr<disk::DiskImage> disk_image_;
  std::unique_ptr<disk::DiskDevice> disk_device_;
  std::unique_ptr<ConsoleDevice> console_device_;
  std::unique_ptr<CrashDevice> crash_device_;
  std::unique_ptr<TlbDevice> tlb_device_;

  std::string console_;

  // Crash-port state (latched by CrashDevice).
  bool crash_fired_ = false;
  CrashInfo crash_;

  // Post-boot snapshot.
  bool booted_ = false;
  std::vector<std::uint8_t> mem_snapshot_;
  std::vector<std::uint8_t> disk_snapshot_;
  std::string console_snapshot_;
  std::uint32_t snap_regs_[8] = {};
  std::uint32_t snap_eip_ = 0;
  std::uint32_t snap_flags_ = 0;
  int snap_cpl_ = 0;
  std::uint32_t snap_cr3_ = 0;
  std::uint64_t snapshot_cycles_ = 0;

  std::uint64_t next_timer_ = 0;
  std::unordered_set<std::uint32_t>* trace_ = nullptr;
};

}  // namespace kfi::machine
