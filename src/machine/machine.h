// The whole simulated machine: CPU + RAM + MMU + devices + kernel +
// workload + root disk, with boot, post-boot snapshot/restore ("reboot"),
// a cycle-budget watchdog, and the crash-handler back end.
//
// This is the substrate every injection run executes on; one Machine is
// reused across thousands of runs by restoring the post-boot snapshot.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "disk/disk.h"
#include "kernel/build.h"
#include "kernel/koffsets.h"
#include "vm/bus.h"
#include "vm/cpu.h"
#include "vm/memory.h"
#include "workloads/workloads.h"

namespace kfi::trace {
class TraceBuffer;
}

namespace kfi::machine {

// What the kernel's crash handler reported through the crash port
// (LKCD-dump equivalent), plus the hardware trap record for latency.
struct CrashInfo {
  std::uint32_t cause = 0;       // kernel::CRASH_* code
  std::uint32_t fault_addr = 0;
  std::uint32_t eip = 0;         // faulting instruction (from the frame)
  std::uint64_t report_cycle = 0;  // when the crash port was written
  std::uint64_t trap_cycle = 0;    // when the hardware trap fired
};

enum class RunExit : std::uint8_t {
  Completed,   // init exited: clean shutdown, exit code in `exit_code`
  Crashed,     // kernel oops/panic: see `crash`
  Hung,        // watchdog: cycle budget exhausted or hard deadlock
  CpuDead,     // double/triple fault: no dump possible
  Breakpoint,  // a debug-register breakpoint fired (injection trigger)
};

struct RunResult {
  RunExit exit = RunExit::Hung;
  std::uint32_t exit_code = 0;
  CrashInfo crash;
  int breakpoint_index = -1;
};

// Which execution engine run() drives.  Step is the reference
// single-dispatch path; Block routes straight-line runs through the
// CPU's superblock trace cache when no host event (timer tick,
// checkpoint rung, deadline, trace sink) can fire inside the block.
// Chained additionally widens blocks into traces, follows patched
// block-to-block successor links inside one dispatch, and shortcuts
// proven-hit fetch translations.  Threaded builds on Chained with
// direct-threaded micro-op dispatch (per-op handler pointers resolved
// at trace-build time) and flag-liveness elision (provably dead ALU
// flag writes skipped).  Memfast builds on Threaded with data-side
// fast paths: a software D-TLB in front of guest loads/stores (a
// provably-still-hit translation skips the mmu call) and trace
// formation widened past conditional branches with a guarded side
// exit.  All engines are bit-identical for every run-visible outcome.
enum class ExecEngine : std::uint8_t { Step, Block, Chained, Threaded,
                                       Memfast };

// Reads the KFI_EXEC environment variable once per call: "block"
// selects ExecEngine::Block, "chained" ExecEngine::Chained, "threaded"
// ExecEngine::Threaded, "memfast" ExecEngine::Memfast, anything else
// (or unset) the stepper.  MachineOptions defaults from this so CI can
// drive the whole test suite through any engine without code changes.
ExecEngine default_exec_engine();

struct MachineOptions {
  std::uint32_t timer_period = kernel::kTimerPeriodCycles;
  std::uint64_t boot_budget = 4'000'000;
  // Restore by copying all of RAM and the whole disk instead of only
  // the dirty pages/blocks.  The two are bit-identical; the full copy
  // is kept as the measurable pre-optimization baseline.
  bool full_restore = false;
  ExecEngine exec_engine = default_exec_engine();
};

// The complete machine state at the first user-mode instruction of the
// workload — the "post-boot snapshot" every injection run restores to.
// Immutable once captured, so one BootState can be shared (by
// shared_ptr) between the machine that booted and any number of worker
// machines that adopt_boot() it: an adopted machine starts from the
// literal bytes of this state, which makes cross-machine identity hold
// by construction rather than by boot determinism.
struct BootState {
  vm::ChunkedSnapshot mem;   // full RAM capture
  vm::ChunkedSnapshot disk;  // full disk capture
  std::string console;
  std::uint32_t regs[8] = {};
  std::uint32_t eip = 0;
  std::uint32_t flags = 0;
  int cpl = 0;
  std::uint32_t cr3 = 0;
  std::uint64_t cycles = 0;  // cycle counter at the snapshot point

  std::uint64_t storage_bytes() const {
    return mem.storage_bytes() + disk.storage_bytes() + console.size();
  }
};

// One rung of a golden-run checkpoint ladder: the complete machine
// state at a mid-run cycle, with RAM and disk stored as deltas against
// the post-boot BootState.  Checkpoints are immutable and shareable:
// any Machine whose boot_state() is the BootState the capture ran from
// (the capturer, or an adopt_boot() sibling) can restore or compare
// against them, holding a private CheckpointMemo per rung.  The
// BootState must outlive the Checkpoint (the deltas resolve through
// it).
struct Checkpoint {
  std::uint64_t cycle = 0;
  vm::ChunkedSnapshot mem;   // dirty pages vs the post-boot snapshot
  vm::ChunkedSnapshot disk;  // dirty blocks vs the post-boot disk
  std::string console;
  std::uint32_t regs[8] = {};
  std::uint32_t eip = 0;
  std::uint32_t flags = 0;
  int cpl = 0;
  std::uint32_t cr3 = 0;
  std::uint64_t next_timer = 0;
  bool timer_pending = false;  // a tick fired but was not yet deliverable
  bool halted = false;         // captured while sitting in hlt

  std::uint64_t storage_bytes() const {
    return mem.storage_bytes() + disk.storage_bytes() + console.size();
  }
};

// A machine's private dirty-tracking state for one shared Checkpoint:
// which of its RAM pages / disk blocks are currently known identical to
// the rung (see vm/snapshot.h).  Starts empty (= no knowledge; the
// first restore copies the rung's full footprint) and converges as the
// machine keeps restoring the same rung — the locality the campaign
// scheduler's chunking is designed to preserve.
struct CheckpointMemo {
  std::vector<std::uint64_t> mem;
  std::vector<std::uint64_t> disk;
};

// First and last cycle at which the golden run executed a kernel-text
// address.  `first` places checkpoint-ladder rungs (execution before
// the trigger is golden); `last` bounds reconvergence fast-forward (a
// rung past `last` can never re-execute the corrupted instruction).
struct TouchWindow {
  std::uint64_t first = 0;
  std::uint64_t last = 0;
};

// Cumulative substrate performance counters (telemetry only; nothing
// here feeds back into execution).
struct PerfStats {
  std::uint64_t decode_hits = 0;
  std::uint64_t decode_misses = 0;
  std::uint64_t restores = 0;         // snapshot/checkpoint restores
  std::uint64_t pages_restored = 0;   // RAM pages copied by restores
  std::uint64_t bytes_restored = 0;   // RAM bytes copied by restores
  std::uint64_t disk_blocks_restored = 0;
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_restores = 0;
  // Superblock engine (all zero under ExecEngine::Step).
  std::uint64_t block_builds = 0;
  std::uint64_t block_hits = 0;
  std::uint64_t block_fallbacks = 0;
  std::uint64_t block_invalidations = 0;
  std::uint64_t block_ops = 0;  // instructions retired through blocks
  // Chained dispatch (all zero unless ExecEngine::Chained): successor
  // links followed inside one dispatch, link validations that failed
  // (severed or retargeted links), and micro-ops across built traces.
  std::uint64_t chain_follows = 0;
  std::uint64_t chain_breaks = 0;
  std::uint64_t trace_len = 0;
  // Threaded dispatch (all zero unless ExecEngine::Threaded): micro-ops
  // retired through resolved handler pointers, and individual flag
  // writes skipped by the liveness elision.
  std::uint64_t threaded_ops = 0;
  std::uint64_t flag_elisions = 0;
  // Memfast dispatch (all zero unless ExecEngine::Memfast): guest
  // loads/stores resolved through the software D-TLB vs ones that paid
  // the full translate, conditional edges widened into traces at build
  // time, and dispatches that left a widened trace through the guarded
  // side exit.
  std::uint64_t dtlb_hits = 0;
  std::uint64_t dtlb_misses = 0;
  std::uint64_t cond_widened = 0;
  std::uint64_t side_exits = 0;
  // Forensics trace layer (all zero when no sink is attached).  Filled
  // at the Injector level from its per-worker TraceBuffer — a buffer is
  // shared by all of an injector's machines, so summing per-machine
  // would double-count.
  std::uint64_t trace_events = 0;   // events recorded (lifetime)
  std::uint64_t trace_dropped = 0;  // events lost to ring overwrite

  // Counter-wise sum/difference: campaign code aggregates per-worker
  // machines into one campaign-wide view (and subtracts a baseline to
  // isolate one campaign's share of a reused machine's counters).
  PerfStats& operator+=(const PerfStats& o);
  PerfStats& operator-=(const PerfStats& o);
};

// FNV-1a over `len` bytes starting from hash state `h`, mixed in byte
// order (identical value to the classic byte loop) but reading the
// buffer a word at a time.  state_digest() sits on this; exposed for
// the pinned-digest regression test.
std::uint64_t fnv1a_mix_bytes(std::uint64_t h, const void* data,
                              std::size_t len);

// Human-readable text for a kernel crash-port cause code, phrased as
// the kernel's oops messages are.
std::string_view crash_code_name(std::uint32_t code);

// Builds the default root-disk image (with /sbin/init, /lib/libc.so,
// /etc/passwd, /data/seed.dat, /tmp) the severity analysis expects.
disk::DiskImage make_root_disk();

class Machine {
 public:
  // The kernel image and the workload are loaded at construction; call
  // boot() once, then run()/restore() per injection run.
  Machine(const kernel::KernelImage& kernel_image,
          const workloads::WorkloadImage& workload,
          const disk::DiskImage& root_disk,
          const MachineOptions& options = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Runs from reset to the first user-mode instruction of the workload
  // and snapshots there.  Returns false if the kernel failed to boot.
  bool boot();

  // Starts this machine from `boot` — a BootState another Machine (same
  // kernel/workload/disk/options) captured — without simulating boot at
  // all: RAM, disk, registers, and console are copied from the shared
  // state, so the machine is bit-identical to the capturer right after
  // its boot().  This is how campaign workers share one golden warm-up:
  // the GoldenCache boots once per workload and every worker adopts.
  void adopt_boot(std::shared_ptr<const BootState> boot);

  // The post-boot state this machine restores to (set by boot() or
  // adopt_boot(); null before either).  Shared checkpoints can be
  // restored only on machines whose boot_state() captured their deltas'
  // base.
  const std::shared_ptr<const BootState>& boot_state() const { return boot_; }

  // Continues execution until an exit condition or `max_cycles` more
  // cycles elapse (the watchdog).  With `resumable`, a deadline exit
  // (RunExit::Hung at exactly the requested cycle) keeps any in-flight
  // timer tick pending for the next run() call, so running to cycle C
  // in several segments is bit-identical to one continuous run — the
  // default drops the tick, which short-budget pollers (the profiler)
  // and the committed replay artifacts depend on.
  RunResult run(std::uint64_t max_cycles, bool resumable = false);

  // Restores the post-boot snapshot and the pristine disk ("reboot").
  void restore();

  // Replays the run from the post-boot snapshot (exactly restore() +
  // run(max_cycles)) and captures a checkpoint at the first loop
  // iteration at or after each cycle in `at` (ascending; points the
  // run never reaches are skipped).  Checkpoints land on the identical
  // deterministic timeline every restore()-based run follows, so
  // restore_checkpoint() + run continues bit-for-bit as if the run had
  // executed from the post-boot snapshot.  Only the machine that
  // captured the BootState may capture (the deltas' version filter is
  // tied to its arrays); any boot-sharing machine may restore.
  std::vector<Checkpoint> capture_checkpoints(std::vector<std::uint64_t> at,
                                              std::uint64_t max_cycles);

  // Restores a mid-run checkpoint.  `memo` is this machine's private
  // dirty-tracking state for this rung (start it empty; pass the same
  // object on every restore of the same rung to keep repeat restores
  // proportional to what the intervening run dirtied).  The checkpoint
  // must have been captured against this machine's boot_state().
  void restore_checkpoint(const Checkpoint& checkpoint, CheckpointMemo& memo);

  // True when the machine's complete run-visible state — registers,
  // flags, eip, cpl, cr3, cycle counter, halt state, timer phase,
  // console, RAM, and disk — is identical to `checkpoint`, except for
  // the single RAM byte at `masked_phys` (pass a value outside RAM to
  // compare everything).  `memo` is the same per-(machine, rung) object
  // restore_checkpoint() maintains; its equality knowledge lets the
  // comparison skip untouched pages.  Only meaningful at a segment
  // boundary: right after a resumable run() exited at its deadline,
  // where the in-flight tick sits in the resume slot exactly as the
  // capture recorded it.
  bool state_matches(const Checkpoint& checkpoint, const CheckpointMemo& memo,
                     std::size_t masked_phys) const;

  vm::Cpu& cpu() { return *cpu_; }
  vm::PhysicalMemory& memory() { return *memory_; }
  disk::DiskImage& disk_image() { return *disk_image_; }
  const std::string& console_output() const { return console_; }

  // Cycle at which run() started relative to the boot snapshot.
  std::uint64_t snapshot_cycles() const { return boot_ ? boot_->cycles : 0; }

  // FNV-1a digest over the complete machine state: architectural
  // registers, flags, eip, cpl, cr3, cycle counter, every byte of RAM,
  // the disk image, and the console output.  Two machines that took the
  // same execution path from the same snapshot digest identically; any
  // divergence — a single RAM byte, one extra cycle — changes the
  // value.  kfi::check uses this for its bit-for-bit replay and
  // schedule-independence proofs.
  std::uint64_t state_digest() const;

  // When set, every kernel-text instruction address executed during
  // run() is inserted into *sink (instruction coverage for the
  // injector's activation precheck).  Pass nullptr to disable.
  void set_trace(std::unordered_set<std::uint32_t>* sink) { trace_ = sink; }

  // When set, records the first and last cycle at which each
  // kernel-text address is executed (checkpoint placement and
  // reconvergence bounds).  Pass nullptr to disable.
  void set_touch_trace(std::unordered_map<std::uint32_t, TouchWindow>* sink) {
    touch_ = sink;
  }

  // When set, every physical byte address a cpl-0 store commits is
  // inserted into *sink (the written-data footprint campaign E draws
  // its fault targets from).  Observational only; used alongside
  // set_trace during the golden capture run, which is a stepping run
  // anyway.  Pass nullptr to disable.
  void set_write_trace(std::unordered_set<std::uint32_t>* sink) {
    cpu_->set_write_trace(sink);
  }

  // Attaches the forensics event trace (nullptr = off, the default):
  // run begin/end, snapshot and checkpoint-rung restores, and the crash
  // report are recorded here, and the sink is forwarded to the CPU for
  // trap entry/exit, memory faults, and block-cache invalidations.
  // Strictly observational — every run-visible outcome (and the
  // campaign result digest) is bit-identical with tracing on or off;
  // unlike set_trace()/set_touch_trace() it does not disable the
  // superblock engine.
  void set_event_trace(trace::TraceBuffer* sink);

  PerfStats perf_stats() const;

 private:
  class ConsoleDevice;
  class CrashDevice;
  class TlbDevice;

  void load_images();
  void install_vectors();

  const kernel::KernelImage& kernel_image_;
  const workloads::WorkloadImage& workload_;
  MachineOptions options_;

  std::unique_ptr<vm::PhysicalMemory> memory_;
  std::unique_ptr<vm::Bus> bus_;
  std::unique_ptr<vm::Cpu> cpu_;
  std::unique_ptr<disk::DiskImage> disk_image_;
  std::unique_ptr<disk::DiskDevice> disk_device_;
  std::unique_ptr<ConsoleDevice> console_device_;
  std::unique_ptr<CrashDevice> crash_device_;
  std::unique_ptr<TlbDevice> tlb_device_;

  std::string console_;

  // Crash-port state (latched by CrashDevice).
  bool crash_fired_ = false;
  CrashInfo crash_;

  void take_checkpoint(bool timer_pending);

  // Post-boot state: captured by boot() (owns_boot_) or shared in by
  // adopt_boot().  The memos are this machine's dirty-tracking state
  // for the BootState's RAM/disk snapshots (see vm/snapshot.h).
  bool booted_ = false;
  bool owns_boot_ = false;
  std::shared_ptr<const BootState> boot_;
  std::vector<std::uint64_t> boot_mem_memo_;
  std::vector<std::uint64_t> boot_disk_memo_;

  std::uint64_t next_timer_ = 0;
  // A restored checkpoint's in-flight timer tick, consumed by the next
  // run() so it resumes with the captured loop state.
  bool timer_pending_resume_ = false;

  // Checkpoint capture schedule, active only inside
  // capture_checkpoints()'s run.
  std::vector<std::uint64_t> ckpt_request_;
  std::size_t ckpt_next_ = 0;
  std::vector<Checkpoint>* ckpt_out_ = nullptr;

  std::uint64_t disk_blocks_restored_ = 0;
  std::uint64_t checkpoints_taken_ = 0;
  std::uint64_t checkpoint_restores_ = 0;

  std::unordered_set<std::uint32_t>* trace_ = nullptr;
  std::unordered_map<std::uint32_t, TouchWindow>* touch_ = nullptr;
  trace::TraceBuffer* events_ = nullptr;

  RunResult run_loop(std::uint64_t max_cycles, bool resumable);
};

}  // namespace kfi::machine
