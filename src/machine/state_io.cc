#include "machine/state_io.h"

#include <cstring>
#include <utility>

namespace kfi::machine {
namespace {

// One ChunkedSnapshot: geometry, capture versions, the delta slot table
// when applicable, then the raw payload (full bytes or packed chunks).
void write_snapshot(ByteWriter& w, const vm::ChunkedSnapshot& snap) {
  w.u32(snap.chunk_size());
  w.u64(snap.size());
  w.u8(snap.is_delta() ? 1 : 0);
  w.u32(snap.chunk_count());
  w.bytes(snap.versions().data(), snap.versions().size() * 8);
  if (snap.is_delta()) {
    w.bytes(snap.slots().data(), snap.slots().size() * 4);
  }
  w.u64(snap.payload_size());
  w.bytes(snap.payload(), snap.payload_size());
}

// `base` must be nullptr exactly when the serialized snapshot was full.
bool read_snapshot(ByteReader& r, const vm::ChunkedSnapshot* base, bool view,
                   vm::ChunkedSnapshot& out) {
  const std::uint32_t chunk_size = r.u32();
  const std::uint64_t size = r.u64();
  const bool is_delta = r.u8() != 0;
  const std::uint32_t chunk_count = r.u32();
  if (!r.ok() || chunk_size == 0 || is_delta != (base != nullptr)) {
    return false;
  }
  if (chunk_count != (size + chunk_size - 1) / chunk_size) return false;

  std::vector<std::uint64_t> versions(chunk_count);
  const std::uint8_t* vbytes = r.bytes(chunk_count * 8ULL);
  if (vbytes == nullptr) return false;
  std::memcpy(versions.data(), vbytes, chunk_count * 8ULL);

  std::vector<std::int32_t> slots;
  if (is_delta) {
    slots.resize(chunk_count);
    const std::uint8_t* sbytes = r.bytes(chunk_count * 4ULL);
    if (sbytes == nullptr) return false;
    std::memcpy(slots.data(), sbytes, chunk_count * 4ULL);
  }

  const std::uint64_t payload_size = r.u64();
  const std::uint8_t* payload = r.bytes(payload_size);
  if (payload == nullptr) return false;
  if (!is_delta && payload_size < size) return false;
  if (is_delta) {
    // Every stored slot must lie inside the payload.
    for (const std::int32_t slot : slots) {
      if (slot < 0) continue;
      const std::uint64_t end =
          (static_cast<std::uint64_t>(slot) + 1) * chunk_size;
      if (end > payload_size) return false;
    }
  }
  out = vm::ChunkedSnapshot::from_parts(
      chunk_size, static_cast<std::size_t>(size), std::move(versions), base,
      std::move(slots), payload, static_cast<std::size_t>(payload_size),
      !view);
  return true;
}

void write_regs(ByteWriter& w, const std::uint32_t (&regs)[8]) {
  for (int i = 0; i < 8; ++i) w.u32(regs[i]);
}

void read_regs(ByteReader& r, std::uint32_t (&regs)[8]) {
  for (int i = 0; i < 8; ++i) regs[i] = r.u32();
}

}  // namespace

void write_boot_state(ByteWriter& writer, const BootState& boot) {
  write_regs(writer, boot.regs);
  writer.u32(boot.eip);
  writer.u32(boot.flags);
  writer.u32(static_cast<std::uint32_t>(boot.cpl));
  writer.u32(boot.cr3);
  writer.u64(boot.cycles);
  writer.str(boot.console);
  write_snapshot(writer, boot.mem);
  write_snapshot(writer, boot.disk);
}

std::shared_ptr<BootState> read_boot_state(ByteReader& reader, bool view) {
  auto boot = std::make_shared<BootState>();
  read_regs(reader, boot->regs);
  boot->eip = reader.u32();
  boot->flags = reader.u32();
  boot->cpl = static_cast<int>(reader.u32());
  boot->cr3 = reader.u32();
  boot->cycles = reader.u64();
  boot->console = reader.str();
  if (!read_snapshot(reader, nullptr, view, boot->mem)) return nullptr;
  if (!read_snapshot(reader, nullptr, view, boot->disk)) return nullptr;
  if (!reader.ok()) return nullptr;
  return boot;
}

void write_checkpoint(ByteWriter& writer, const Checkpoint& checkpoint) {
  writer.u64(checkpoint.cycle);
  write_regs(writer, checkpoint.regs);
  writer.u32(checkpoint.eip);
  writer.u32(checkpoint.flags);
  writer.u32(static_cast<std::uint32_t>(checkpoint.cpl));
  writer.u32(checkpoint.cr3);
  writer.u64(checkpoint.next_timer);
  writer.u8(checkpoint.timer_pending ? 1 : 0);
  writer.u8(checkpoint.halted ? 1 : 0);
  writer.str(checkpoint.console);
  write_snapshot(writer, checkpoint.mem);
  write_snapshot(writer, checkpoint.disk);
}

Checkpoint read_checkpoint(ByteReader& reader, const BootState& boot,
                           bool view, bool& ok) {
  Checkpoint ck;
  ck.cycle = reader.u64();
  read_regs(reader, ck.regs);
  ck.eip = reader.u32();
  ck.flags = reader.u32();
  ck.cpl = static_cast<int>(reader.u32());
  ck.cr3 = reader.u32();
  ck.next_timer = reader.u64();
  ck.timer_pending = reader.u8() != 0;
  ck.halted = reader.u8() != 0;
  ck.console = reader.str();
  ok = read_snapshot(reader, &boot.mem, view, ck.mem) &&
       read_snapshot(reader, &boot.disk, view, ck.disk) && reader.ok();
  return ck;
}

}  // namespace kfi::machine
