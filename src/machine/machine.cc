#include "machine/machine.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "fsutil/kfs.h"
#include "fsutil/kfs_format.h"
#include "support/strings.h"
#include "trace/trace.h"
#include "vm/hostmap.h"
#include "vm/layout.h"

namespace kfi::machine {

using kernel::KernelImage;

// ---------------------------------------------------------------------
// Devices
// ---------------------------------------------------------------------

class Machine::ConsoleDevice : public vm::Device {
 public:
  explicit ConsoleDevice(Machine& machine) : machine_(machine) {}
  std::uint32_t mmio_read(std::uint32_t) override { return 0; }
  void mmio_write(std::uint32_t offset, std::uint32_t value) override {
    if (offset == 0) {
      machine_.console_.push_back(static_cast<char>(value & 0xFF));
      // Guard against runaway printing under fault (console spam).
      if (machine_.console_.size() > 1 << 20) {
        machine_.console_.resize(1 << 20);
      }
    }
  }

 private:
  Machine& machine_;
};

class Machine::CrashDevice : public vm::Device {
 public:
  explicit CrashDevice(Machine& machine) : machine_(machine) {}
  std::uint32_t mmio_read(std::uint32_t) override { return 0; }
  void mmio_write(std::uint32_t offset, std::uint32_t value) override {
    switch (offset) {
      case 4: addr_ = value; break;
      case 8: eip_ = value; break;
      case 0: {
        if (machine_.crash_fired_) break;  // first report wins
        machine_.crash_fired_ = true;
        machine_.crash_.cause = value;
        machine_.crash_.fault_addr = addr_;
        machine_.crash_.eip = eip_;
        machine_.crash_.report_cycle = machine_.cpu_->cycles();
        machine_.crash_.trap_cycle = machine_.cpu_->last_trap().cycle;
        if (machine_.events_ != nullptr) {
          machine_.events_->record(trace::EventKind::CrashReport,
                                   machine_.cpu_->cycles(), value, addr_,
                                   eip_, 0);
        }
        break;
      }
      default: break;
    }
  }

 private:
  Machine& machine_;
  std::uint32_t addr_ = 0;
  std::uint32_t eip_ = 0;
};

class Machine::TlbDevice : public vm::Device {
 public:
  explicit TlbDevice(Machine& machine) : machine_(machine) {}
  std::uint32_t mmio_read(std::uint32_t) override { return 0; }
  void mmio_write(std::uint32_t offset, std::uint32_t value) override {
    switch (offset) {
      case kernel::TLB_FLUSH_PAGE:
        machine_.cpu_->mmu().flush_page(value);
        break;
      case kernel::TLB_FLUSH_ALL:
        machine_.cpu_->mmu().flush_tlb();
        break;
      case kernel::TLB_SET_CR3:
        machine_.cpu_->mmu().set_cr3(value);
        break;
      default:
        break;
    }
  }

 private:
  Machine& machine_;
};

// ---------------------------------------------------------------------
// Root disk
// ---------------------------------------------------------------------

ExecEngine default_exec_engine() {
  const char* env = std::getenv("KFI_EXEC");
  if (env != nullptr && std::string_view(env) == "block") {
    return ExecEngine::Block;
  }
  if (env != nullptr && std::string_view(env) == "chained") {
    return ExecEngine::Chained;
  }
  if (env != nullptr && std::string_view(env) == "threaded") {
    return ExecEngine::Threaded;
  }
  if (env != nullptr && std::string_view(env) == "memfast") {
    return ExecEngine::Memfast;
  }
  return ExecEngine::Step;
}

std::uint64_t fnv1a_mix_bytes(std::uint64_t h, const void* data,
                              std::size_t len) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  // Mixing is inherently sequential (each byte folds into h), but
  // loading a word and unrolling the eight folds keeps the loop out of
  // byte-at-a-time load/branch territory; the value is identical to
  // the classic byte loop on any endianness because the bytes are
  // extracted in memory order.
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    w = __builtin_bswap64(w);
#endif
    h = (h ^ (w & 0xFF)) * kPrime;
    h = (h ^ ((w >> 8) & 0xFF)) * kPrime;
    h = (h ^ ((w >> 16) & 0xFF)) * kPrime;
    h = (h ^ ((w >> 24) & 0xFF)) * kPrime;
    h = (h ^ ((w >> 32) & 0xFF)) * kPrime;
    h = (h ^ ((w >> 40) & 0xFF)) * kPrime;
    h = (h ^ ((w >> 48) & 0xFF)) * kPrime;
    h = (h ^ (w >> 56)) * kPrime;
  }
  for (; i < len; ++i) h = (h ^ p[i]) * kPrime;
  return h;
}

std::string_view crash_code_name(std::uint32_t code) {
  switch (code) {
    case kernel::CRASH_NULL_POINTER:
      return "Unable to handle kernel NULL pointer dereference";
    case kernel::CRASH_PAGING_REQUEST:
      return "Unable to handle kernel paging request";
    case kernel::CRASH_INVALID_OPCODE: return "invalid opcode";
    case kernel::CRASH_GP_FAULT: return "general protection fault";
    case kernel::CRASH_DIVIDE: return "divide error";
    case kernel::CRASH_PANIC: return "Kernel panic";
    case kernel::CRASH_INT3: return "int3 trap";
    case kernel::CRASH_BOUNDS: return "bounds";
    case kernel::CRASH_INVALID_TSS: return "invalid TSS";
    case kernel::CRASH_STACK: return "stack exception";
    case kernel::CRASH_OVERFLOW: return "overflow";
    case kernel::CRASH_SEG_NOT_PRESENT: return "segment not present";
    case kernel::CRASH_OUT_OF_MEMORY: return "out of memory";
    case kernel::CRASH_DOUBLE_FAULT: return "double fault";
    case kernel::CRASH_CLEAN_SHUTDOWN: return "clean shutdown";
    default: return "unknown";
  }
}

disk::DiskImage make_root_disk() {
  disk::DiskImage image(fsutil::kDefaultBlocks);
  fsutil::mkfs(image);

  // System files whose integrity decides bootability (most-severe check).
  std::string init_bin = "\x7f" "ELF-init";
  for (int i = 0; i < 480; ++i) init_bin += format("init%04d", i);
  std::string libc_bin = "\x7f" "ELF-libc.so.6";
  for (int i = 0; i < 900; ++i) libc_bin += format("libc%04d", i);

  fsutil::add_dir(image, "/sbin");
  fsutil::add_dir(image, "/lib");
  fsutil::add_dir(image, "/lib/i686");
  fsutil::add_dir(image, "/etc");
  fsutil::add_dir(image, "/data");
  fsutil::add_dir(image, "/tmp");

  fsutil::add_file(image, "/sbin/init", init_bin);
  fsutil::add_file(image, "/lib/libc.so", libc_bin);
  fsutil::add_file(image, "/lib/i686/libc.so.6", libc_bin);
  fsutil::add_file(image, "/etc/passwd",
                   "root:x:0:0:root:/root:/bin/bash\n"
                   "bench:x:500:500:unixbench:/home/bench:/bin/sh\n");

  std::string seed;
  for (int i = 0; i < 3000; ++i) {
    seed.push_back(static_cast<char>('A' + (i * 7) % 26));
  }
  fsutil::add_file(image, "/data/seed.dat", seed);
  return image;
}

// ---------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------

Machine::Machine(const KernelImage& kernel_image,
                 const workloads::WorkloadImage& workload,
                 const disk::DiskImage& root_disk,
                 const MachineOptions& options)
    : kernel_image_(kernel_image), workload_(workload), options_(options) {
  memory_ = std::make_unique<vm::PhysicalMemory>(vm::kRamSize);
  bus_ = std::make_unique<vm::Bus>();
  cpu_ = std::make_unique<vm::Cpu>(*memory_, *bus_);
  cpu_->set_chaining(options_.exec_engine == ExecEngine::Chained ||
                     options_.exec_engine == ExecEngine::Threaded ||
                     options_.exec_engine == ExecEngine::Memfast);
  cpu_->set_threaded(options_.exec_engine == ExecEngine::Threaded ||
                     options_.exec_engine == ExecEngine::Memfast);
  cpu_->set_memfast(options_.exec_engine == ExecEngine::Memfast);
  disk_image_ = std::make_unique<disk::DiskImage>(root_disk);
  disk_device_ = std::make_unique<disk::DiskDevice>(*disk_image_, *memory_);
  console_device_ = std::make_unique<ConsoleDevice>(*this);
  crash_device_ = std::make_unique<CrashDevice>(*this);
  tlb_device_ = std::make_unique<TlbDevice>(*this);

  bus_->attach(vm::kConsoleMmio, vm::kPageSize, console_device_.get());
  bus_->attach(vm::kDiskMmio, vm::kPageSize, disk_device_.get());
  bus_->attach(vm::kCrashMmio, vm::kPageSize, crash_device_.get());
  bus_->attach(vm::kTlbMmio, vm::kPageSize, tlb_device_.get());

  load_images();
  install_vectors();
}

Machine::~Machine() = default;

void Machine::load_images() {
  for (const kernel::LoadSegment& segment : kernel_image_.segments) {
    memory_->write_block(vm::phys_of_virt(segment.base),
                         segment.bytes.data(),
                         static_cast<std::uint32_t>(segment.bytes.size()));
  }

  // Park the workload image below the page allocator's range; the
  // kernel maps it into the init task from boot info.
  const std::uint32_t text_phys = kernel::kWorkloadPhysBase;
  const std::uint32_t text_len =
      (static_cast<std::uint32_t>(workload_.text.size()) + vm::kPageMask) &
      ~vm::kPageMask;
  const std::uint32_t data_phys = text_phys + text_len;
  const std::uint32_t data_len =
      (static_cast<std::uint32_t>(workload_.data.size()) + vm::kPageMask) &
      ~vm::kPageMask;
  assert(text_len + data_len <= kernel::kWorkloadPhysSize);

  if (!workload_.text.empty()) {
    memory_->write_block(text_phys, workload_.text.data(),
                         static_cast<std::uint32_t>(workload_.text.size()));
  }
  if (!workload_.data.empty()) {
    memory_->write_block(data_phys, workload_.data.data(),
                         static_cast<std::uint32_t>(workload_.data.size()));
  }

  memory_->write32(vm::kBootInfoPhys + kernel::BI_ENTRY, workload_.entry);
  memory_->write32(vm::kBootInfoPhys + kernel::BI_TEXT_VADDR,
                   workload_.text_base);
  memory_->write32(vm::kBootInfoPhys + kernel::BI_TEXT_PHYS, text_phys);
  memory_->write32(vm::kBootInfoPhys + kernel::BI_TEXT_LEN, text_len);
  memory_->write32(vm::kBootInfoPhys + kernel::BI_DATA_VADDR,
                   workload_.data_base);
  memory_->write32(vm::kBootInfoPhys + kernel::BI_DATA_PHYS, data_phys);
  memory_->write32(vm::kBootInfoPhys + kernel::BI_DATA_LEN, data_len);

  // Boot page tables: kernel straight map (done by "firmware").
  vm::HostMapper mapper(*memory_, vm::kBootPgdPhys, vm::kKernelPtePhys);
  mapper.map_range(vm::kKernelBase, 0, vm::kRamSize, vm::kPteWrite);
  assert(mapper.cursor() <= vm::kBootPteEnd);
  cpu_->mmu().set_cr3(vm::kBootPgdPhys);

  memory_->write32(vm::kTssPhys, vm::kBootStackTop);

  cpu_->set_eip(kernel_image_.symbol("start_kernel"));
  cpu_->set_reg(isa::Reg::Esp, vm::kBootStackTop);
  cpu_->set_cpl(0);
  cpu_->flags().intf = false;
}

void Machine::install_vectors() {
  const auto set = [this](int vector, const char* symbol) {
    const std::uint32_t addr = kernel_image_.symbol(symbol);
    assert(addr != 0);
    cpu_->set_vector(vector, addr);
  };
  set(0, "divide_error_entry");
  set(3, "int3_entry");
  set(4, "overflow_entry");
  set(5, "bounds_entry");
  set(6, "invalid_op_entry");
  set(10, "invalid_tss_entry");
  set(11, "segment_not_present_entry");
  set(12, "stack_segment_entry");
  set(13, "general_protection_entry");
  set(14, "page_fault_entry");
  set(0x20, "timer_interrupt");
  set(0x80, "system_call");
  // Vector 8 (double fault) stays empty: a fault during delivery kills
  // the CPU, which the watchdog classifies as Hang/Unknown.
}

bool Machine::boot() {
  cpu_->arm_breakpoint(3, workload_.entry);
  const RunResult result = run(options_.boot_budget);
  cpu_->disarm_breakpoint(3);
  if (result.exit != RunExit::Breakpoint) return false;

  auto boot = std::make_shared<BootState>();
  boot->mem = memory_->snapshot_pages();
  boot->disk = disk_image_->snapshot_blocks();
  boot->console = console_;
  for (int i = 0; i < 8; ++i) {
    boot->regs[i] = cpu_->reg(static_cast<isa::Reg>(i));
  }
  boot->eip = cpu_->eip();
  boot->flags = cpu_->flags().to_word();
  boot->cpl = cpu_->cpl();
  boot->cr3 = cpu_->mmu().cr3();
  boot->cycles = cpu_->cycles();
  boot_ = std::move(boot);
  // At capture time every page/block trivially equals the snapshot, so
  // the capturer's memos start from the capture versions and the first
  // restore() is already O(dirty).
  boot_mem_memo_ = boot_->mem.capture_memo();
  boot_disk_memo_ = boot_->disk.capture_memo();
  owns_boot_ = true;
  booted_ = true;
  return true;
}

void Machine::adopt_boot(std::shared_ptr<const BootState> boot) {
  assert(boot != nullptr && boot->mem.valid());
  assert(boot->mem.size() == memory_->size());
  assert(boot->disk.size() == disk_image_->bytes().size());
  boot_ = std::move(boot);
  owns_boot_ = false;
  booted_ = true;
  // Unconditional full copy: the machine's pre-boot contents share
  // nothing provable with the foreign snapshot.  The memos come out
  // proving full equality at the new versions, so every subsequent
  // restore() is O(dirty) exactly as on the capturing machine.
  memory_->restore_pages_full(boot_->mem, &boot_mem_memo_);
  disk_image_->restore_blocks_full(boot_->disk, &boot_disk_memo_);
  for (int i = 0; i < 8; ++i) {
    cpu_->set_reg(static_cast<isa::Reg>(i), boot_->regs[i]);
  }
  cpu_->set_eip(boot_->eip);
  cpu_->flags() = isa::Flags::from_word(boot_->flags);
  cpu_->set_cpl(boot_->cpl);
  cpu_->mmu().set_cr3(boot_->cr3);  // also flushes the TLB
  cpu_->set_cycles(boot_->cycles);
  cpu_->reset_fault_state();
  crash_fired_ = false;
  crash_ = CrashInfo{};
  console_ = boot_->console;
  next_timer_ = boot_->cycles + options_.timer_period;
  timer_pending_resume_ = false;
}

void Machine::restore() {
  assert(booted_);
  if (events_ != nullptr) {
    events_->record(trace::EventKind::SnapshotRestore, cpu_->cycles(),
                    static_cast<std::uint32_t>(boot_->cycles),
                    options_.full_restore ? 1u : 0u, 0, 0);
  }
  if (options_.full_restore) {
    memory_->restore_pages_full(boot_->mem, &boot_mem_memo_);
    disk_blocks_restored_ += disk_image_->block_count();
    disk_image_->restore_blocks_full(boot_->disk, &boot_disk_memo_);
  } else {
    memory_->restore_pages(boot_->mem, boot_mem_memo_);
    disk_blocks_restored_ +=
        disk_image_->restore_blocks(boot_->disk, boot_disk_memo_);
  }
  for (int i = 0; i < 8; ++i) {
    cpu_->set_reg(static_cast<isa::Reg>(i), boot_->regs[i]);
  }
  cpu_->set_eip(boot_->eip);
  cpu_->flags() = isa::Flags::from_word(boot_->flags);
  cpu_->set_cpl(boot_->cpl);
  cpu_->mmu().set_cr3(boot_->cr3);  // also flushes the TLB
  cpu_->set_cycles(boot_->cycles);
  cpu_->reset_fault_state();
  crash_fired_ = false;
  crash_ = CrashInfo{};
  console_ = boot_->console;
  next_timer_ = boot_->cycles + options_.timer_period;
  timer_pending_resume_ = false;
}

void Machine::take_checkpoint(bool timer_pending) {
  // The delta's version filter compares against the capture versions of
  // boot_->mem/disk, which is sound only on the arrays that captured
  // them — enforced by the owns_boot_ assert in capture_checkpoints().
  Checkpoint ck;
  ck.cycle = cpu_->cycles();
  ck.mem = memory_->snapshot_delta(boot_->mem, &boot_mem_memo_);
  ck.disk = disk_image_->snapshot_delta(boot_->disk, &boot_disk_memo_);
  ck.console = console_;
  for (int i = 0; i < 8; ++i) {
    ck.regs[i] = cpu_->reg(static_cast<isa::Reg>(i));
  }
  ck.eip = cpu_->eip();
  ck.flags = cpu_->flags().to_word();
  ck.cpl = cpu_->cpl();
  ck.cr3 = cpu_->mmu().cr3();
  ck.next_timer = next_timer_;
  ck.timer_pending = timer_pending;
  ck.halted = cpu_->halted();
  ckpt_out_->push_back(std::move(ck));
  ++checkpoints_taken_;
}

std::vector<Checkpoint> Machine::capture_checkpoints(
    std::vector<std::uint64_t> at, std::uint64_t max_cycles) {
  assert(booted_);
  assert(owns_boot_ && "only the BootState's capturer may take checkpoints");
  std::vector<Checkpoint> out;
  restore();
  ckpt_request_ = std::move(at);
  ckpt_next_ = 0;
  ckpt_out_ = &out;
  run(max_cycles);
  ckpt_out_ = nullptr;
  ckpt_request_.clear();
  ckpt_next_ = 0;
  return out;
}

void Machine::restore_checkpoint(const Checkpoint& checkpoint,
                                 CheckpointMemo& memo) {
  assert(booted_);
  if (events_ != nullptr) {
    events_->record(trace::EventKind::CheckpointRestore, cpu_->cycles(),
                    static_cast<std::uint32_t>(checkpoint.cycle),
                    static_cast<std::uint32_t>(checkpoint.cycle >> 32),
                    checkpoint.eip, 0);
  }
  // The checkpoint's deltas must resolve through this machine's own
  // boot state — the contract that makes shared rungs sound for every
  // adopt_boot() sibling of the capturer.
  assert(checkpoint.mem.base() == &boot_->mem);
  assert(checkpoint.disk.base() == &boot_->disk);
  // Restoring the deltas alone rebuilds the full mid-run state: chunks
  // the rung did not store resolve through the boot snapshot, and this
  // machine's boot memo lets those be skipped when already in place —
  // copying only chunks that diverged since this machine last restored
  // the rung.
  memory_->restore_pages(checkpoint.mem, memo.mem, &boot_mem_memo_);
  disk_blocks_restored_ +=
      disk_image_->restore_blocks(checkpoint.disk, memo.disk,
                                  &boot_disk_memo_);
  for (int i = 0; i < 8; ++i) {
    cpu_->set_reg(static_cast<isa::Reg>(i), checkpoint.regs[i]);
  }
  cpu_->set_eip(checkpoint.eip);
  cpu_->flags() = isa::Flags::from_word(checkpoint.flags);
  cpu_->set_cpl(checkpoint.cpl);
  cpu_->mmu().set_cr3(checkpoint.cr3);  // also flushes the TLB
  cpu_->set_cycles(checkpoint.cycle);
  cpu_->reset_fault_state();
  cpu_->set_halted(checkpoint.halted);
  crash_fired_ = false;
  crash_ = CrashInfo{};
  console_ = checkpoint.console;
  next_timer_ = checkpoint.next_timer;
  timer_pending_resume_ = checkpoint.timer_pending;
  ++checkpoint_restores_;
}

PerfStats Machine::perf_stats() const {
  PerfStats stats;
  stats.decode_hits = cpu_->decode_hits();
  stats.decode_misses = cpu_->decode_misses();
  stats.restores = memory_->restore_calls();
  stats.pages_restored = memory_->restored_pages();
  stats.bytes_restored = memory_->restored_bytes();
  stats.disk_blocks_restored = disk_blocks_restored_;
  stats.checkpoints_taken = checkpoints_taken_;
  stats.checkpoint_restores = checkpoint_restores_;
  stats.block_builds = cpu_->blocks_built();
  stats.block_hits = cpu_->block_hits();
  stats.block_fallbacks = cpu_->block_fallbacks();
  stats.block_invalidations = cpu_->block_invalidations();
  stats.block_ops = cpu_->block_ops();
  stats.chain_follows = cpu_->chain_follows();
  stats.chain_breaks = cpu_->chain_breaks();
  stats.trace_len = cpu_->trace_len();
  stats.threaded_ops = cpu_->threaded_ops();
  stats.flag_elisions = cpu_->flag_elisions();
  stats.dtlb_hits = cpu_->dtlb_hits();
  stats.dtlb_misses = cpu_->dtlb_misses();
  stats.cond_widened = cpu_->cond_widened();
  stats.side_exits = cpu_->side_exits();
  return stats;
}

std::uint64_t Machine::state_digest() const {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix_byte = [&h](std::uint8_t byte) {
    h = (h ^ byte) * 1099511628211ULL;
  };
  const auto mix_u32 = [&mix_byte](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  const auto mix_u64 = [&mix_byte](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  for (int i = 0; i < isa::kRegCount; ++i) {
    mix_u32(cpu_->reg(static_cast<isa::Reg>(i)));
  }
  mix_u32(cpu_->eip());
  mix_u32(cpu_->flags().to_word());
  mix_u32(static_cast<std::uint32_t>(cpu_->cpl()));
  mix_u32(cpu_->mmu().cr3());
  mix_u64(cpu_->cycles());
  h = fnv1a_mix_bytes(h, memory_->raw(0), memory_->size());
  h = fnv1a_mix_bytes(h, disk_image_->bytes().data(),
                      disk_image_->bytes().size());
  h = fnv1a_mix_bytes(h, console_.data(), console_.size());
  return h;
}

void Machine::set_event_trace(trace::TraceBuffer* sink) {
  events_ = sink;
  cpu_->set_trace_sink(sink);
}

RunResult Machine::run(std::uint64_t max_cycles, bool resumable) {
  // The loop below has many exits; recording here keeps every one of
  // them paired with exactly one RunBegin/RunEnd.
  if (events_ != nullptr) {
    events_->record(trace::EventKind::RunBegin, cpu_->cycles(),
                    static_cast<std::uint32_t>(max_cycles),
                    static_cast<std::uint32_t>(max_cycles >> 32),
                    resumable ? 1u : 0u, 0);
  }
  const RunResult result = run_loop(max_cycles, resumable);
  if (events_ != nullptr) {
    events_->record(trace::EventKind::RunEnd, cpu_->cycles(),
                    static_cast<std::uint32_t>(result.exit),
                    result.exit == RunExit::Breakpoint
                        ? static_cast<std::uint32_t>(result.breakpoint_index)
                        : result.exit_code,
                    result.crash.eip, 0);
  }
  return result;
}

RunResult Machine::run_loop(std::uint64_t max_cycles, bool resumable) {
  RunResult result;
  const std::uint64_t deadline = cpu_->cycles() + max_cycles;
  if (next_timer_ == 0) next_timer_ = cpu_->cycles() + options_.timer_period;
  // A checkpoint restore re-enters the loop with the tick state the
  // capture saw; a plain restore()/boot() starts with none pending.
  bool timer_pending = timer_pending_resume_;
  timer_pending_resume_ = false;
  const bool block_engine = options_.exec_engine != ExecEngine::Step;

  while (cpu_->cycles() < deadline) {
    // Checkpoint capture sits at the exact point a restored checkpoint
    // resumes from: top of the loop, before the timer check.
    if (ckpt_out_ != nullptr && ckpt_next_ < ckpt_request_.size() &&
        cpu_->cycles() >= ckpt_request_[ckpt_next_]) {
      take_checkpoint(timer_pending);
      while (ckpt_next_ < ckpt_request_.size() &&
             ckpt_request_[ckpt_next_] <= cpu_->cycles()) {
        ++ckpt_next_;
      }
    }

    if (cpu_->cycles() >= next_timer_) {
      timer_pending = true;
      next_timer_ += options_.timer_period;
    }
    if (timer_pending && cpu_->deliver_interrupt(isa::Trap::Timer)) {
      timer_pending = false;
    }

    if (trace_ != nullptr || touch_ != nullptr) {
      const std::uint32_t pc = cpu_->eip();
      if (pc >= vm::kArchTextBase && pc < vm::kTextEnd) {
        if (trace_ != nullptr) trace_->insert(pc);
        if (touch_ != nullptr) {
          const std::uint64_t now = cpu_->cycles();
          const auto [it, inserted] =
              touch_->try_emplace(pc, TouchWindow{now, now});
          if (!inserted) it->second.last = now;
        }
      }
    }
    vm::CpuEvent event;
    bool stepped = true;
    // A pending-but-undelivered tick is compatible with block dispatch:
    // delivery was just attempted above, so pending here implies IF is
    // off, and the only instruction that can re-enable delivery (sti)
    // terminates every block — the delivering loop top lands exactly
    // where the stepper has it.
    if (block_engine && trace_ == nullptr && touch_ == nullptr &&
        next_timer_ > cpu_->cycles()) {
      // Bound the block so the first loop top at or past any host
      // boundary (run deadline, timer arm, checkpoint rung) is reached
      // exactly as the stepper reaches it: no event can fire mid-block.
      std::uint64_t limit = deadline - cpu_->cycles();
      const std::uint64_t to_timer = next_timer_ - cpu_->cycles();
      if (to_timer < limit) limit = to_timer;
      if (ckpt_out_ != nullptr && ckpt_next_ < ckpt_request_.size()) {
        // Invariant: any pending request is > cycles here (requests at
        // or below were consumed by the capture block above).
        const std::uint64_t to_ckpt =
            ckpt_request_[ckpt_next_] - cpu_->cycles();
        if (to_ckpt < limit) limit = to_ckpt;
      }
      stepped = cpu_->run_block(limit, &crash_fired_, event) == 0;
    }
    if (stepped) event = cpu_->step();

    if (crash_fired_) {
      if (crash_.cause == kernel::CRASH_CLEAN_SHUTDOWN) {
        result.exit = RunExit::Completed;
        result.exit_code = crash_.fault_addr;
      } else {
        result.exit = RunExit::Crashed;
        result.crash = crash_;
      }
      return result;
    }

    switch (event.kind) {
      case vm::CpuEventKind::Executed:
        break;
      case vm::CpuEventKind::Breakpoint:
        // A resumable caller continues past the breakpoint (the golden
        // syscall-exit capture and campaign F's segmented runs): keep
        // the in-flight tick so the segmented timeline stays
        // bit-identical to an unsegmented run even when the breakpoint
        // fires with interrupts off.  Non-resumable exits keep the
        // historical behavior (the A/B/C trigger path's pinned digest).
        if (resumable) timer_pending_resume_ = timer_pending;
        result.exit = RunExit::Breakpoint;
        result.breakpoint_index = event.breakpoint_index;
        return result;
      case vm::CpuEventKind::Halted: {
        if (!cpu_->flags().intf) {
          // hlt with interrupts off: hard deadlock.
          result.exit = RunExit::Hung;
          return result;
        }
        // Fast-forward to the next timer tick.
        if (next_timer_ >= deadline) {
          // Idle time still passes while halted; otherwise short-budget
          // callers (the profiler) would spin without progress.
          cpu_->set_cycles(deadline);
          if (resumable) timer_pending_resume_ = timer_pending;
          result.exit = RunExit::Hung;
          return result;
        }
        cpu_->set_cycles(next_timer_);
        timer_pending = true;
        next_timer_ += options_.timer_period;
        if (timer_pending && cpu_->deliver_interrupt(isa::Trap::Timer)) {
          timer_pending = false;
        }
        break;
      }
      case vm::CpuEventKind::DoubleFault:
        result.exit = RunExit::CpuDead;
        return result;
    }
  }
  if (resumable) timer_pending_resume_ = timer_pending;
  result.exit = RunExit::Hung;
  return result;
}

bool Machine::state_matches(const Checkpoint& checkpoint,
                            const CheckpointMemo& memo,
                            std::size_t masked_phys) const {
  if (cpu_->cycles() != checkpoint.cycle) return false;
  for (int i = 0; i < 8; ++i) {
    if (cpu_->reg(static_cast<isa::Reg>(i)) != checkpoint.regs[i]) {
      return false;
    }
  }
  if (cpu_->eip() != checkpoint.eip) return false;
  if (cpu_->flags().to_word() != checkpoint.flags) return false;
  if (cpu_->cpl() != checkpoint.cpl) return false;
  if (cpu_->mmu().cr3() != checkpoint.cr3) return false;
  if (cpu_->halted() != checkpoint.halted) return false;
  if (next_timer_ != checkpoint.next_timer) return false;
  if (timer_pending_resume_ != checkpoint.timer_pending) return false;
  if (crash_fired_) return false;
  if (console_ != checkpoint.console) return false;
  if (!disk_image_->blocks_match(checkpoint.disk, memo.disk,
                                 &boot_disk_memo_)) {
    return false;
  }
  return memory_->pages_match(checkpoint.mem, memo.mem, &boot_mem_memo_,
                              masked_phys);
}

PerfStats& PerfStats::operator+=(const PerfStats& o) {
  decode_hits += o.decode_hits;
  decode_misses += o.decode_misses;
  restores += o.restores;
  pages_restored += o.pages_restored;
  bytes_restored += o.bytes_restored;
  disk_blocks_restored += o.disk_blocks_restored;
  checkpoints_taken += o.checkpoints_taken;
  checkpoint_restores += o.checkpoint_restores;
  block_builds += o.block_builds;
  block_hits += o.block_hits;
  block_fallbacks += o.block_fallbacks;
  block_invalidations += o.block_invalidations;
  block_ops += o.block_ops;
  chain_follows += o.chain_follows;
  chain_breaks += o.chain_breaks;
  trace_len += o.trace_len;
  threaded_ops += o.threaded_ops;
  flag_elisions += o.flag_elisions;
  dtlb_hits += o.dtlb_hits;
  dtlb_misses += o.dtlb_misses;
  cond_widened += o.cond_widened;
  side_exits += o.side_exits;
  trace_events += o.trace_events;
  trace_dropped += o.trace_dropped;
  return *this;
}

PerfStats& PerfStats::operator-=(const PerfStats& o) {
  decode_hits -= o.decode_hits;
  decode_misses -= o.decode_misses;
  restores -= o.restores;
  pages_restored -= o.pages_restored;
  bytes_restored -= o.bytes_restored;
  disk_blocks_restored -= o.disk_blocks_restored;
  checkpoints_taken -= o.checkpoints_taken;
  checkpoint_restores -= o.checkpoint_restores;
  block_builds -= o.block_builds;
  block_hits -= o.block_hits;
  block_fallbacks -= o.block_fallbacks;
  block_invalidations -= o.block_invalidations;
  block_ops -= o.block_ops;
  chain_follows -= o.chain_follows;
  chain_breaks -= o.chain_breaks;
  trace_len -= o.trace_len;
  threaded_ops -= o.threaded_ops;
  flag_elisions -= o.flag_elisions;
  dtlb_hits -= o.dtlb_hits;
  dtlb_misses -= o.dtlb_misses;
  cond_widened -= o.cond_widened;
  side_exits -= o.side_exits;
  trace_events -= o.trace_events;
  trace_dropped -= o.trace_dropped;
  return *this;
}

}  // namespace kfi::machine
