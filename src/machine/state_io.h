// Machine-state (de)serialization: BootState and Checkpoint to/from the
// shared binary layout (support/serial.h).
//
// This is the substrate of the golden-bundle file format (serve/bundle):
// a workload's post-boot state and checkpoint ladder are serialized once
// by the campaign controller, and every worker process reconstructs
// them *by reference* — read_boot_state/read_checkpoint with
// `view = true` build ChunkedSnapshots whose payloads point straight
// into the caller's buffer (an mmap'd bundle file), so N workers
// restoring from one bundle share the bytes through the page cache
// instead of holding N private copies of a multi-megabyte RAM image.
// The caller owns the buffer's lifetime; with `view = false` the
// payloads are copied and the buffer may be discarded.
//
// Round-trip fidelity is bit-exact: a machine that adopt_boot()s a
// deserialized BootState is indistinguishable (state_digest and all)
// from one that adopted the original, and a deserialized rung passes
// restore_checkpoint()'s base assertions against the deserialized boot.
#pragma once

#include <memory>

#include "machine/machine.h"
#include "support/serial.h"

namespace kfi::machine {

// Serializes `boot` (registers, console, cycle counter, and the full
// RAM/disk snapshots with their capture versions).
void write_boot_state(ByteWriter& writer, const BootState& boot);

// Reads a BootState written by write_boot_state.  With `view` true the
// RAM/disk payloads alias `reader`'s buffer (zero-copy; the buffer must
// outlive the returned state); with false they are copied.  Returns
// nullptr on a short or corrupt buffer.
std::shared_ptr<BootState> read_boot_state(ByteReader& reader, bool view);

// Serializes one checkpoint-ladder rung (its RAM/disk deltas store only
// the chunks that differ from the BootState they were captured against).
void write_checkpoint(ByteWriter& writer, const Checkpoint& checkpoint);

// Reads a rung written by write_checkpoint, re-basing its deltas on
// `boot` — which must be the deserialized twin of the BootState the
// rung was captured against, and must outlive the result.  `ok` is set
// false on a short or corrupt buffer.
Checkpoint read_checkpoint(ByteReader& reader, const BootState& boot,
                           bool view, bool& ok);

}  // namespace kfi::machine
