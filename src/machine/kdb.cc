#include "machine/kdb.h"

#include "isa/disasm.h"
#include "kernel/koffsets.h"
#include "support/strings.h"
#include "vm/layout.h"

namespace kfi::machine {

std::string Kdb::disassemble(std::uint32_t vaddr, int count,
                             std::uint32_t mark) {
  std::string out;
  std::uint32_t at = vaddr;
  for (int i = 0; i < count; ++i) {
    std::uint8_t buf[isa::kMaxInstructionLength] = {};
    std::size_t got = 0;
    for (; got < sizeof buf; ++got) {
      if (!machine_.cpu().peek8(at + static_cast<std::uint32_t>(got),
                                buf[got])) {
        break;
      }
    }
    if (got == 0) {
      out += format("  %s:  (unmapped)\n", hex32(at).c_str());
      break;
    }
    std::size_t len = 0;
    const std::string text = isa::disassemble_bytes(buf, got, at, &len);
    if (len == 0) len = 1;
    out += format("%s %s:  %-22s %s\n", at == mark ? ">" : " ",
                  hex32(at).c_str(),
                  hex_bytes(buf, len < got ? len : got).c_str(),
                  text.c_str());
    at += static_cast<std::uint32_t>(len);
  }
  return out;
}

std::string Kdb::disassemble_function(const std::string& name) {
  const kernel::KernelFunction* fn = kernel::built_kernel().function(name);
  if (fn == nullptr) return "unknown function: " + name + "\n";
  std::string out = name + ":\n";
  std::uint32_t at = fn->start;
  while (at < fn->end) {
    std::uint8_t buf[isa::kMaxInstructionLength] = {};
    std::size_t got = 0;
    for (; got < sizeof buf; ++got) {
      if (!machine_.cpu().peek8(at + static_cast<std::uint32_t>(got),
                                buf[got])) {
        break;
      }
    }
    std::size_t len = 0;
    const std::string text = isa::disassemble_bytes(buf, got, at, &len);
    if (len == 0) break;
    out += format("  %s:  %-22s %s\n", hex32(at).c_str(),
                  hex_bytes(buf, len).c_str(), text.c_str());
    at += static_cast<std::uint32_t>(len);
  }
  return out;
}

std::vector<Kdb::Frame> Kdb::backtrace(int max_frames) {
  std::vector<Frame> frames;
  const kernel::KernelImage& image = kernel::built_kernel();

  Frame top;
  top.pc = machine_.cpu().eip();
  top.ebp = machine_.cpu().reg(isa::Reg::Ebp);
  if (const auto* fn = image.function_at(top.pc)) top.function = fn->name;
  frames.push_back(top);

  std::uint32_t ebp = top.ebp;
  for (int i = 1; i < max_frames; ++i) {
    std::uint32_t saved_ebp = 0;
    std::uint32_t ret = 0;
    if (!machine_.cpu().peek32(ebp, saved_ebp) ||
        !machine_.cpu().peek32(ebp + 4, ret)) {
      break;
    }
    if (ret == 0) break;
    Frame frame;
    frame.pc = ret;
    frame.ebp = saved_ebp;
    if (const auto* fn = image.function_at(ret)) frame.function = fn->name;
    frames.push_back(frame);
    if (saved_ebp <= ebp) break;  // corrupt / terminal frame
    ebp = saved_ebp;
  }
  return frames;
}

std::vector<Kdb::TaskInfo> Kdb::tasks() {
  std::vector<TaskInfo> out;
  const kernel::KernelImage& image = kernel::built_kernel();
  const std::uint32_t table = image.symbol("task_table");
  std::uint32_t current = 0;
  machine_.cpu().peek32(image.symbol("current"), current);
  if (table == 0) return out;
  for (std::uint32_t i = 0; i < kernel::kNumTasks; ++i) {
    const std::uint32_t t = table + i * kernel::kTaskSize;
    TaskInfo info;
    info.slot = static_cast<int>(i);
    machine_.cpu().peek32(t + kernel::T_STATE, info.state);
    if (info.state == kernel::TS_UNUSED) continue;
    machine_.cpu().peek32(t + kernel::T_PID, info.pid);
    machine_.cpu().peek32(t + kernel::T_COUNTER, info.counter);
    machine_.cpu().peek32(t + kernel::T_KESP, info.kesp);
    info.is_current = t == current;
    out.push_back(info);
  }
  return out;
}

std::string Kdb::render_tasks() {
  static const char* kStateNames[] = {"unused", "run", "sleep", "zombie"};
  std::string out = "  slot  pid  state   counter  kesp\n";
  for (const TaskInfo& task : tasks()) {
    out += format("  %3d %5u  %-7s %7u  %s%s\n", task.slot, task.pid,
                  task.state < 4 ? kStateNames[task.state] : "?",
                  task.counter, hex32(task.kesp).c_str(),
                  task.is_current ? "  <- current" : "");
  }
  return out;
}

std::string Kdb::dump_memory(std::uint32_t vaddr, std::uint32_t words) {
  std::string out;
  for (std::uint32_t i = 0; i < words; ++i) {
    if (i % 4 == 0) {
      if (i != 0) out += "\n";
      out += format("  %s:", hex32(vaddr + 4 * i).c_str());
    }
    std::uint32_t value = 0;
    if (machine_.cpu().peek32(vaddr + 4 * i, value)) {
      out += " " + hex32(value);
    } else {
      out += " ????????";
    }
  }
  out += "\n";
  return out;
}

std::string Kdb::oops_report(const CrashInfo& crash) {
  const kernel::KernelImage& image = kernel::built_kernel();
  std::string out;

  out += std::string(crash_code_name(crash.cause));
  if (crash.cause == kernel::CRASH_NULL_POINTER ||
      crash.cause == kernel::CRASH_PAGING_REQUEST) {
    out += " at virtual address " + hex32(crash.fault_addr);
  }
  out += "\n";

  out += "Oops: 0000\n";
  out += "EIP:    0010:[<" + hex32(crash.eip) + ">]";
  if (const auto* fn = image.function_at(crash.eip)) {
    out += "    (" + fn->name + "+0x" + format("%x", crash.eip - fn->start) +
           "/" + format("0x%x", fn->end - fn->start) + " [" +
           std::string(kernel::subsystem_name(fn->subsystem)) + "])";
  }
  out += "\n";

  const vm::Cpu& cpu = const_cast<const vm::Cpu&>(machine_.cpu());
  out += format("eax: %s   ebx: %s   ecx: %s   edx: %s\n",
                hex32(cpu.reg(isa::Reg::Eax)).c_str(),
                hex32(cpu.reg(isa::Reg::Ebx)).c_str(),
                hex32(cpu.reg(isa::Reg::Ecx)).c_str(),
                hex32(cpu.reg(isa::Reg::Edx)).c_str());
  out += format("esi: %s   edi: %s   ebp: %s   esp: %s\n",
                hex32(cpu.reg(isa::Reg::Esi)).c_str(),
                hex32(cpu.reg(isa::Reg::Edi)).c_str(),
                hex32(cpu.reg(isa::Reg::Ebp)).c_str(),
                hex32(cpu.reg(isa::Reg::Esp)).c_str());

  out += "Stack:\n";
  out += dump_memory(machine_.cpu().reg(isa::Reg::Esp), 16);

  out += "Call Trace:";
  for (const Frame& frame : backtrace()) {
    out += " [<" + hex32(frame.pc) + ">]";
    if (!frame.function.empty()) out += " " + frame.function;
  }
  out += "\n";

  out += "Code:\n";
  out += disassemble(crash.eip, 5, crash.eip);
  return out;
}

}  // namespace kfi::machine
