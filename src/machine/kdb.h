// kdb — a host-side kernel debugger in the spirit of SGI's KDB, which
// the paper used to trace repeatable crashes (§7.1, Figure 5).
//
// Works on a (possibly crashed) Machine: disassembles around an
// address, reconstructs the call chain through saved frame pointers,
// dumps the task table, renders trap frames, and produces a full
// Linux-style Oops report from the latest crash.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/machine.h"

namespace kfi::machine {

class Kdb {
 public:
  explicit Kdb(Machine& machine) : machine_(machine) {}

  // `count` instructions disassembled starting at `vaddr`, one per
  // line, with a marker on `mark` (0 = none).  Unmapped bytes are shown
  // as such.
  std::string disassemble(std::uint32_t vaddr, int count,
                          std::uint32_t mark = 0);

  // Disassembly window around a kernel function, resolved by symbol.
  std::string disassemble_function(const std::string& name);

  // Call-chain reconstruction by walking saved (ebp, return address)
  // pairs from the current frame pointer.  Entries are annotated with
  // the containing kernel function.
  struct Frame {
    std::uint32_t pc = 0;
    std::uint32_t ebp = 0;
    std::string function;  // empty if outside kernel text
  };
  std::vector<Frame> backtrace(int max_frames = 16);

  // The kernel task table, as the paper's dump analyses show it.
  struct TaskInfo {
    int slot = 0;
    std::uint32_t pid = 0;
    std::uint32_t state = 0;
    std::uint32_t counter = 0;
    std::uint32_t kesp = 0;
    bool is_current = false;
  };
  std::vector<TaskInfo> tasks();
  std::string render_tasks();

  // Hex dump of guest virtual memory (unmapped words shown as ????).
  std::string dump_memory(std::uint32_t vaddr, std::uint32_t words);

  // A full Linux-style Oops report for the machine's last crash:
  // cause line, EIP with symbol, registers, stack dump, call trace,
  // and disassembly of the faulting code.
  std::string oops_report(const CrashInfo& crash);

 private:
  Machine& machine_;
};

}  // namespace kfi::machine
