#include "inject/schedule.h"

#include "trace/trace.h"

namespace kfi::inject {

namespace {
// Chunks per worker when work is spread evenly.  Small enough that a
// chunk is a meaningful locality neighborhood, large enough that
// stealing can rebalance a skewed tail (the classic guided-scheduling
// compromise).
constexpr std::size_t kChunksPerWorker = 8;
}  // namespace

std::vector<Chunk> make_chunks(const std::vector<std::size_t>& order,
                               const std::vector<InjectionSpec>& targets,
                               unsigned workers) {
  std::vector<Chunk> chunks;
  if (order.empty()) return chunks;
  if (workers == 0) workers = 1;
  std::size_t chunk_items = order.size() / (workers * kChunksPerWorker);
  if (chunk_items == 0) chunk_items = 1;

  std::size_t begin = 0;
  for (std::size_t i = 1; i <= order.size(); ++i) {
    const bool boundary =
        i == order.size() ||
        // Never mix workloads in one chunk: a chunk is one machine's
        // contiguous rung neighborhood.
        targets[order[i]].workload != targets[order[begin]].workload;
    if (boundary || i - begin >= chunk_items) {
      chunks.push_back(Chunk{begin, i});
      begin = i;
    }
  }
  return chunks;
}

ChunkScheduler::ChunkScheduler(std::vector<Chunk> chunks, unsigned workers) {
  if (workers == 0) workers = 1;
  queues_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  const std::size_t n = chunks.size();
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t lo = n * w / workers;
    const std::size_t hi = n * (w + 1) / workers;
    for (std::size_t i = lo; i < hi; ++i) {
      queues_[w]->chunks.push_back(chunks[i]);
    }
  }
  remaining_.store(n, std::memory_order_relaxed);
}

bool ChunkScheduler::pop_front(WorkerQueue& q, Chunk& out) {
  const std::lock_guard<std::mutex> lock(q.mutex);
  if (q.chunks.empty()) return false;
  out = q.chunks.front();
  q.chunks.pop_front();
  remaining_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ChunkScheduler::pop_back(WorkerQueue& q, Chunk& out) {
  const std::lock_guard<std::mutex> lock(q.mutex);
  if (q.chunks.empty()) return false;
  out = q.chunks.back();
  q.chunks.pop_back();
  remaining_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void ChunkScheduler::set_trace(unsigned worker, trace::TraceBuffer* sink) {
  if (worker < queues_.size()) queues_[worker]->trace = sink;
}

bool ChunkScheduler::next(unsigned worker, Chunk& out) {
  const std::size_t workers = queues_.size();
  if (worker >= workers) return false;
  trace::TraceBuffer* const sink = queues_[worker]->trace;
  while (remaining_.load(std::memory_order_relaxed) != 0) {
    // Own queue first, front first: continue the locality run.
    if (pop_front(*queues_[worker], out)) {
      if (sink != nullptr) {
        sink->record(trace::EventKind::ChunkRun, 0, worker,
                     static_cast<std::uint32_t>(out.begin),
                     static_cast<std::uint32_t>(out.end));
      }
      return true;
    }
    // Steal from the back of the first non-empty victim — the chunk the
    // victim would have reached last, farthest from where it is working
    // now.
    for (std::size_t k = 1; k < workers; ++k) {
      const std::size_t victim = (worker + k) % workers;
      if (pop_back(*queues_[victim], out)) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        if (sink != nullptr) {
          sink->record(trace::EventKind::ChunkSteal, 0, worker,
                       static_cast<std::uint32_t>(victim),
                       static_cast<std::uint32_t>(out.begin),
                       static_cast<std::uint32_t>(out.end));
        }
        return true;
      }
    }
    // remaining_ was non-zero but every scan missed: a concurrent pop
    // won the race.  Re-check the counter; it is monotonically
    // decreasing, so this loop terminates.
  }
  return false;
}

}  // namespace kfi::inject
