#include "inject/campaign.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "inject/schedule.h"
#include "kernel/koffsets.h"

namespace kfi::inject {

CampaignStats& CampaignStats::operator+=(const CampaignStats& o) {
  runs += o.runs;
  checkpoint_hits += o.checkpoint_hits;
  checkpoint_misses += o.checkpoint_misses;
  reconverged += o.reconverged;
  pre_trigger_cycles += o.pre_trigger_cycles;
  post_trigger_cycles += o.post_trigger_cycles;
  perf += o.perf;
  return *this;
}

CampaignStats& CampaignStats::operator-=(const CampaignStats& o) {
  runs -= o.runs;
  checkpoint_hits -= o.checkpoint_hits;
  checkpoint_misses -= o.checkpoint_misses;
  reconverged -= o.reconverged;
  pre_trigger_cycles -= o.pre_trigger_cycles;
  post_trigger_cycles -= o.post_trigger_cycles;
  perf -= o.perf;
  return *this;
}

namespace {

// The injector's lifetime-cumulative counters as a CampaignStats value;
// campaign shares are deltas between two of these.
CampaignStats injector_counters(const Injector& injector) {
  CampaignStats s;
  s.runs = injector.runs_executed();
  s.checkpoint_hits = injector.checkpoint_hits();
  s.checkpoint_misses = injector.checkpoint_misses();
  s.reconverged = injector.reconverged();
  s.pre_trigger_cycles = injector.pre_trigger_cycles();
  s.post_trigger_cycles = injector.post_trigger_cycles();
  s.perf = injector.perf_stats();
  return s;
}

}  // namespace

std::vector<std::string> default_functions(Campaign campaign,
                                           const profile::ProfileResult& prof,
                                           double coverage) {
  if (campaign == Campaign::SyscallErrno) {
    // Campaign F's "functions" are workload names: the fault sits at
    // the one syscall-exit site, so the population axis is which
    // workload's syscall stream gets corrupted.
    std::vector<std::string> names;
    names.reserve(prof.workload_cycles.size());
    for (const auto& [workload, cycles] : prof.workload_cycles) {
      names.push_back(workload);
    }
    return names;
  }
  if (campaign == Campaign::RandomNonBranch ||
      campaign == Campaign::RegisterFile ||
      campaign == Campaign::KernelData) {
    // The paper targeted the core-32 plus enough extra hot functions to
    // reach statistical mass (51 functions in campaign A); mirror that
    // by extending the core set to at least the 40 hottest functions.
    std::vector<std::string> names = prof.core_functions(coverage);
    std::unordered_set<std::string> present(names.begin(), names.end());
    for (const profile::FunctionSamples& fs : prof.functions) {
      if (names.size() >= 40) break;
      if (present.insert(fs.function).second) names.push_back(fs.function);
    }
    return names;
  }
  // Branch campaigns: all profiled functions, hottest first.
  std::vector<std::string> names;
  names.reserve(prof.functions.size());
  for (const profile::FunctionSamples& fs : prof.functions) {
    names.push_back(fs.function);
  }
  return names;
}

std::vector<InjectionSpec> campaign_targets(const profile::ProfileResult& prof,
                                            const CampaignConfig& config,
                                            std::size_t* functions_targeted) {
  std::vector<std::string> functions = config.functions;
  if (functions.empty()) {
    functions = default_functions(config.campaign, prof,
                                  config.profile_coverage);
  }

  const kernel::KernelImage& image = config.kernel_image != nullptr
                                         ? *config.kernel_image
                                         : kernel::built_kernel();
  Rng rng(config.seed ^ (static_cast<std::uint64_t>(config.campaign) << 32));

  if (config.campaign == Campaign::SyscallErrno) {
    // Campaign F: `functions` names workloads (see default_functions);
    // every target sits at the one syscall-exit site and differs in
    // which successful golden exit it corrupts (data_index, resolved
    // against the golden run's exit list at injection time — this
    // generator must stay pure over profile/config/seed so service
    // workers re-derive identical target lists) and which errno lands.
    static constexpr std::uint32_t kErrnos[] = {
        kernel::KE_ENOENT, kernel::KE_EBADF,  kernel::KE_EAGAIN,
        kernel::KE_ENOMEM, kernel::KE_EEXIST, kernel::KE_EINVAL,
        kernel::KE_EMFILE, kernel::KE_ENOSPC, kernel::KE_ESPIPE,
        kernel::KE_EPIPE,  kernel::KE_ENOSYS};
    const std::uint32_t site = syscall_return_site(image);
    std::vector<InjectionSpec> targets;
    std::size_t targeted = 0;
    for (const std::string& workload : functions) {
      if (prof.workload_cycles.count(workload) == 0) continue;
      ++targeted;
      const int samples = config.repeats * kErrnoSamplesPerRepeat;
      for (int rep = 0; rep < samples; ++rep) {
        InjectionSpec spec;
        spec.campaign = config.campaign;
        spec.model = FaultModel::SyscallErrno;
        spec.function = "system_call";
        spec.subsystem = kernel::Subsystem::Arch;
        spec.instr_addr = site;
        spec.workload = workload;
        spec.data_index = rng.next_u32();
        spec.errno_value =
            kErrnos[rng.below(sizeof kErrnos / sizeof kErrnos[0])];
        targets.push_back(std::move(spec));
      }
    }
    if (functions_targeted != nullptr) *functions_targeted = targeted;
    return targets;
  }

  // Two-phase append: expand every function first, then reserve the
  // exact total once, so the flat list never reallocates mid-fill.
  std::size_t targeted = 0;
  std::size_t total = 0;
  std::vector<std::vector<InjectionSpec>> per_function;
  per_function.reserve(functions.size());
  for (const std::string& name : functions) {
    const kernel::KernelFunction* fn = image.function(name);
    if (fn == nullptr) continue;
    std::string workload = prof.best_workload(name);
    if (workload.empty()) workload = "syscall";
    std::vector<InjectionSpec> fn_targets =
        make_targets(image, *fn, config.campaign, rng, config.repeats);
    if (fn_targets.empty()) continue;
    ++targeted;
    for (InjectionSpec& spec : fn_targets) spec.workload = workload;
    total += fn_targets.size();
    per_function.push_back(std::move(fn_targets));
  }

  std::vector<InjectionSpec> targets;
  targets.reserve(total);
  for (std::vector<InjectionSpec>& fn_targets : per_function) {
    for (InjectionSpec& spec : fn_targets) targets.push_back(std::move(spec));
  }
  if (functions_targeted != nullptr) *functions_targeted = targeted;
  return targets;
}

std::vector<std::size_t> campaign_order(
    Injector& injector, const std::vector<InjectionSpec>& targets) {
  // Group runs by workload, then by the target's first-execution cycle
  // in the golden run, so consecutive runs resume from the same (or an
  // adjacent) checkpoint-ladder rung and re-dirty the same small page
  // set.  Results are always written to spec-order slots, so execution
  // order is a pure locality decision, never a result decision.
  std::vector<std::size_t> order(targets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<std::uint64_t> touch_cycle(targets.size(), ~0ULL);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto& touch = injector.first_touch(targets[i].workload);
    const auto it = touch.find(targets[i].instr_addr);
    if (it != touch.end()) touch_cycle[i] = it->second.first;
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              if (targets[a].workload != targets[b].workload) {
                return targets[a].workload < targets[b].workload;
              }
              if (touch_cycle[a] != touch_cycle[b]) {
                return touch_cycle[a] < touch_cycle[b];
              }
              return a < b;
            });
  return order;
}

CampaignRun run_campaign(Injector& injector,
                         const profile::ProfileResult& prof,
                         const CampaignConfig& config) {
  CampaignRun run;
  run.campaign = config.campaign;

  const std::vector<InjectionSpec> targets =
      campaign_targets(prof, config, &run.functions_targeted);

  run.results.resize(targets.size());

  unsigned threads = config.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads > targets.size()) {
    threads = static_cast<unsigned>(targets.size() ? targets.size() : 1);
  }

  const std::vector<std::size_t> order = campaign_order(injector, targets);

  // The caller's injector may carry counters from earlier campaigns;
  // only the delta accrued here belongs to this run's stats.
  const CampaignStats caller_before = injector_counters(injector);
  run.stats.threads_used = threads;

  if (threads <= 1) {
    std::size_t done = 0;
    for (const std::size_t i : order) {
      run.results[i] = injector.run_one(targets[i]);
      ++done;
      if (config.progress) config.progress(done, targets.size());
    }
    run.stats += injector_counters(injector);
    run.stats -= caller_before;
    return run;
  }

  // Locality chunks over the sorted order, drained work-stealing style:
  // a worker burns down its own contiguous slice front-to-back (staying
  // on one rung neighborhood) and steals from the far end of a loaded
  // peer only when idle.  Which worker executes which item affects only
  // wall-clock, never results: every run starts from a restore of the
  // shared golden state.
  std::vector<Chunk> chunks = make_chunks(order, targets, threads);
  run.stats.chunks = chunks.size();
  ChunkScheduler scheduler(std::move(chunks), threads);

  std::atomic<std::size_t> done{0};
  std::mutex stats_mutex;  // guards run.stats aggregation and progress
  auto worker = [&](unsigned w, bool use_shared) {
    // Worker 0 reuses the caller's injector (and its warmed machines);
    // the others borrow the same GoldenCache, so no golden run, ladder
    // capture, or boot is ever repeated — a private worker costs one
    // adopt_boot (a full-image copy) per workload it actually touches.
    std::unique_ptr<Injector> own;
    Injector* inj = &injector;
    if (!use_shared) {
      own = std::make_unique<Injector>(injector.cache());
      inj = own.get();
    }
    if (inj->trace() != nullptr) scheduler.set_trace(w, inj->trace());
    Chunk chunk;
    while (scheduler.next(w, chunk)) {
      for (std::size_t n = chunk.begin; n < chunk.end; ++n) {
        const std::size_t i = order[n];
        run.results[i] = inj->run_one(targets[i]);
        const std::size_t d = done.fetch_add(1) + 1;
        if (config.progress) {
          const std::lock_guard<std::mutex> lock(stats_mutex);
          config.progress(d, targets.size());
        }
      }
    }
    if (!use_shared) {
      // Fold this worker's counters in before its injector dies (the
      // pre-existing MT counter-loss bug).
      const CampaignStats s = injector_counters(*inj);
      const std::lock_guard<std::mutex> lock(stats_mutex);
      run.stats += s;
    }
  };

  std::vector<std::thread> pool;
  for (unsigned t = 1; t < threads; ++t) {
    pool.emplace_back(worker, t, false);
  }
  worker(0, true);
  for (std::thread& t : pool) t.join();
  run.stats += injector_counters(injector);
  run.stats -= caller_before;
  run.stats.steals = scheduler.steals();
  return run;
}

}  // namespace kfi::inject
