// Injection campaign vocabulary: campaigns (Table 4), outcome categories
// (Table 3), crash causes (Figure 6), and crash severity (§7.1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "kernel/build.h"

namespace kfi::inject {

// The paper's three campaigns (Table 4).
enum class Campaign : std::uint8_t {
  RandomNonBranch,   // A: a random bit in each byte of non-branch instrs
  RandomBranch,      // B: a random bit in each byte of conditional branches
  IncorrectBranch,   // C: the bit that reverses the branch condition
};

std::string_view campaign_name(Campaign campaign);        // "A" / "B" / "C"
std::string_view campaign_description(Campaign campaign);

// Outcome categories (Table 3).  DumpedCrash and HangUnknown together
// form the tables' "Crash/Hang" column.
enum class Outcome : std::uint8_t {
  NotActivated,          // corrupted instruction never executed
  NotManifested,         // executed, no visible abnormal effect
  FailSilenceViolation,  // wrong output / error reported to the app
  DumpedCrash,           // kernel oops with a crash dump
  HangUnknown,           // watchdog reboot: hang or dump-less crash
};

std::string_view outcome_name(Outcome outcome);

// Crash causes as the kernel reports them (Figure 6 categories).
enum class CrashCause : std::uint8_t {
  NullPointer,     // unable to handle kernel NULL pointer dereference
  PagingRequest,   // unable to handle kernel paging request
  InvalidOpcode,   // invalid operand/opcode (incl. BUG()/ud2 assertions)
  GpFault,         // general protection fault
  DivideError,
  KernelPanic,
  OutOfMemory,
  Other,
};

std::string_view crash_cause_name(CrashCause cause);

// Compact label for dense renderings ("null-ptr", "paging", ...).
std::string_view crash_cause_short_name(CrashCause cause);

// Maps the kernel's crash-port code to the analysis category.
CrashCause crash_cause_from_code(std::uint32_t code);

// Crash severity (§7.1): downtime class after the crash.
enum class Severity : std::uint8_t {
  NotApplicable,  // run did not crash
  Normal,         // clean fs: automatic reboot (< 4 minutes)
  Severe,         // fs repairable by interactive fsck (> 5 minutes)
  MostSevere,     // fs unrepairable or unbootable: reformat (~1 hour)
};

std::string_view severity_name(Severity severity);

// Modeled downtime per severity class, in seconds (§7.1's figures).
std::uint32_t severity_downtime_seconds(Severity severity);

// What and where was injected.
struct InjectionSpec {
  Campaign campaign = Campaign::RandomNonBranch;
  std::string function;
  kernel::Subsystem subsystem = kernel::Subsystem::Unknown;
  std::uint32_t instr_addr = 0;
  std::uint8_t instr_len = 0;
  std::uint8_t byte_index = 0;
  std::uint8_t bit_index = 0;
  std::string workload;
};

// One injection run's full record.
struct InjectionResult {
  InjectionSpec spec;
  Outcome outcome = Outcome::NotActivated;
  std::uint64_t activation_cycle = 0;  // relative to run start

  // Crash analysis (valid when outcome == DumpedCrash).
  CrashCause cause = CrashCause::Other;
  std::uint32_t crash_eip = 0;
  std::uint32_t crash_addr = 0;
  kernel::Subsystem crash_subsystem = kernel::Subsystem::Unknown;
  bool propagated = false;         // crashed outside the faulted subsystem
  std::uint64_t latency_cycles = 0;

  // Post-run disk state (valid for every activated outcome).
  Severity severity = Severity::NotApplicable;
  bool fs_damaged = false;
  bool bootable = true;
  // For Severe gradings: whether fsck_repair on a copy of the damaged
  // image actually converged to a clean fs (validates the taxonomy).
  bool repair_verified = false;

  // Case-study material.
  std::string disasm_before;
  std::string disasm_after;
};

}  // namespace kfi::inject
