// Injection campaign vocabulary: campaigns (Table 4), outcome categories
// (Table 3), crash causes (Figure 6), and crash severity (§7.1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "kernel/build.h"

namespace kfi::inject {

// The paper's three campaigns (Table 4) plus the extended fault-model
// campaigns (ROADMAP "new fault models" track; CHAOS-style register and
// data faults, errno injection at the syscall boundary).
enum class Campaign : std::uint8_t {
  RandomNonBranch,   // A: a random bit in each byte of non-branch instrs
  RandomBranch,      // B: a random bit in each byte of conditional branches
  IncorrectBranch,   // C: the bit that reverses the branch condition
  RegisterFile,      // D: a random bit of a GPR/EFLAGS at trigger time
  KernelData,        // E: a random bit of a written kernel data/stack byte
  SyscallErrno,      // F: a successful syscall return replaced by -errno
};

std::string_view campaign_name(Campaign campaign);        // "A" ... "F"
std::string_view campaign_description(Campaign campaign);

// Where the corruption lands.  Campaigns A/B/C flip a bit of an
// instruction's encoding; D/E/F generalize the spec to the register
// file, kernel data pages, and the syscall return value.  Carried by
// every InjectionSpec so the injector, serializers, and the campaign
// service's config-echo hash all dispatch on it explicitly instead of
// inferring it from the campaign letter.
enum class FaultModel : std::uint8_t {
  InstrBit,      // flip one bit of one instruction byte (A/B/C)
  RegisterBit,   // flip one bit of a GPR or a modeled EFLAGS bit (D)
  DataBit,       // flip one bit of a kernel data/stack byte (E)
  SyscallErrno,  // overwrite a successful syscall return with -errno (F)
};

std::string_view fault_model_name(FaultModel model);

// The fault model each campaign injects under.
FaultModel campaign_fault_model(Campaign campaign);

// Register-file target encoding for FaultModel::RegisterBit: values
// 0..7 are isa::Reg GPR numbers; kEflagsTarget selects EFLAGS (the
// bit index must then be one of the modeled flag bits).
inline constexpr std::uint8_t kEflagsTarget = 8;

// Outcome categories (Table 3).  DumpedCrash and HangUnknown together
// form the tables' "Crash/Hang" column.
enum class Outcome : std::uint8_t {
  NotActivated,          // corrupted instruction never executed
  NotManifested,         // executed, no visible abnormal effect
  FailSilenceViolation,  // wrong output / error reported to the app
  DumpedCrash,           // kernel oops with a crash dump
  HangUnknown,           // watchdog reboot: hang or dump-less crash
};

std::string_view outcome_name(Outcome outcome);

// Crash causes as the kernel reports them (Figure 6 categories).
enum class CrashCause : std::uint8_t {
  NullPointer,     // unable to handle kernel NULL pointer dereference
  PagingRequest,   // unable to handle kernel paging request
  InvalidOpcode,   // invalid operand/opcode (incl. BUG()/ud2 assertions)
  GpFault,         // general protection fault
  DivideError,
  KernelPanic,
  OutOfMemory,
  Other,
};

std::string_view crash_cause_name(CrashCause cause);

// Compact label for dense renderings ("null-ptr", "paging", ...).
std::string_view crash_cause_short_name(CrashCause cause);

// Maps the kernel's crash-port code to the analysis category.
CrashCause crash_cause_from_code(std::uint32_t code);

// Crash severity (§7.1): downtime class after the crash.
enum class Severity : std::uint8_t {
  NotApplicable,  // run did not crash
  Normal,         // clean fs: automatic reboot (< 4 minutes)
  Severe,         // fs repairable by interactive fsck (> 5 minutes)
  MostSevere,     // fs unrepairable or unbootable: reformat (~1 hour)
};

std::string_view severity_name(Severity severity);

// Modeled downtime per severity class, in seconds (§7.1's figures).
std::uint32_t severity_downtime_seconds(Severity severity);

// What and where was injected.
struct InjectionSpec {
  Campaign campaign = Campaign::RandomNonBranch;
  std::string function;
  kernel::Subsystem subsystem = kernel::Subsystem::Unknown;
  std::uint32_t instr_addr = 0;
  std::uint8_t instr_len = 0;
  std::uint8_t byte_index = 0;
  std::uint8_t bit_index = 0;
  std::string workload;

  // Fault-model extension (defaults describe A/B/C exactly, so every
  // pre-existing spec is a valid InstrBit spec unchanged).
  FaultModel model = FaultModel::InstrBit;
  // RegisterBit: GPR number 0..7, or kEflagsTarget for EFLAGS.
  std::uint8_t target_reg = 0;
  // DataBit: explicit physical byte address to flip; 0 means "resolve
  // through data_index against the golden run's written-data footprint".
  std::uint32_t data_addr = 0;
  // DataBit: index into the sorted write footprint (taken modulo its
  // size at run time).  SyscallErrno: picks which successful golden
  // syscall exit to corrupt (modulo the golden success count).
  std::uint32_t data_index = 0;
  // SyscallErrno: the positive errno value injected as -errno.
  std::uint32_t errno_value = 0;
};

// One injection run's full record.
struct InjectionResult {
  InjectionSpec spec;
  Outcome outcome = Outcome::NotActivated;
  std::uint64_t activation_cycle = 0;  // relative to run start

  // Crash analysis (valid when outcome == DumpedCrash).
  CrashCause cause = CrashCause::Other;
  std::uint32_t crash_eip = 0;
  std::uint32_t crash_addr = 0;
  kernel::Subsystem crash_subsystem = kernel::Subsystem::Unknown;
  bool propagated = false;         // crashed outside the faulted subsystem
  std::uint64_t latency_cycles = 0;

  // Post-run disk state (valid for every activated outcome).
  Severity severity = Severity::NotApplicable;
  bool fs_damaged = false;
  bool bootable = true;
  // For Severe gradings: whether fsck_repair on a copy of the damaged
  // image actually converged to a clean fs (validates the taxonomy).
  bool repair_verified = false;

  // Case-study material.
  std::string disasm_before;
  std::string disasm_after;

  // Fault-model extras.  DataBit: the physical byte address actually
  // flipped (spec.data_addr, or the footprint entry data_index resolved
  // to).  SyscallErrno: how many syscall exits followed the injection,
  // and how many of those also returned an error — the cascade length.
  std::uint32_t data_addr = 0;
  std::uint32_t syscalls_after = 0;
  std::uint32_t cascade_syscalls = 0;
};

}  // namespace kfi::inject
