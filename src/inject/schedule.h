// Locality-aware chunk formation + work-stealing drain for parallel
// campaigns.
//
// The campaign's execution order is already sorted by (workload,
// first-touch cycle) so consecutive runs resume from the same
// checkpoint-ladder rung and re-dirty the same small page set.  A
// per-item fetch_add dispatcher destroys that locality: neighboring
// items land on different workers, every worker walks the whole rung
// ladder, and each rung's dirty footprint is re-copied per item.
// Instead the order is cut into contiguous chunks (never crossing a
// workload boundary, so a chunk is one machine's coherent rung
// neighborhood), each worker is dealt a contiguous block of chunks, and
// idle workers steal whole chunks from the *back* of a victim's queue —
// the end farthest from the victim's current locality neighborhood — so
// tail latency doesn't regress when chunk costs are skewed.
//
// Exactly-once: every chunk is placed in exactly one deque at
// construction; the only removal path pops under that deque's mutex and
// nothing is ever re-inserted, so no chunk can be run twice or lost.
// Termination: `remaining_` counts unpopped chunks; next() returns
// false only once it reaches zero, and while it is non-zero some deque
// is non-empty, so a scanning worker either pops a chunk or observes
// another worker's pop having decremented the counter — no livelock.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "inject/targets.h"

namespace kfi::trace {
class TraceBuffer;
}

namespace kfi::inject {

// A half-open range [begin, end) of positions in the campaign's
// execution order (not spec indices).
struct Chunk {
  std::size_t begin = 0;
  std::size_t end = 0;
};

// Cuts `order` (positions into `targets`, sorted by (workload,
// first-touch)) into contiguous chunks of roughly
// total/(workers * kChunksPerWorker) items, never crossing a workload
// boundary.  Deterministic: depends only on the arguments.
std::vector<Chunk> make_chunks(const std::vector<std::size_t>& order,
                               const std::vector<InjectionSpec>& targets,
                               unsigned workers);

class ChunkScheduler {
 public:
  // Deals the chunks to `workers` deques in contiguous blocks (worker w
  // gets chunks [w*n/workers, (w+1)*n/workers)), preserving each
  // worker's rung locality until stealing begins.
  ChunkScheduler(std::vector<Chunk> chunks, unsigned workers);

  // Hands `worker` its next chunk: the front of its own deque if
  // non-empty, otherwise a steal from the back of another worker's.
  // Returns false only when every chunk has been handed out.
  bool next(unsigned worker, Chunk& out);

  // Attaches `worker`'s forensics sink (nullptr = off): each chunk
  // grant/steal handed to that worker is recorded as a ChunkRun or
  // ChunkSteal event.  Host-side events carry cycle 0 — the scheduler
  // has no guest clock.  Call before the worker's first next().
  void set_trace(unsigned worker, trace::TraceBuffer* sink);

  // Chunks obtained by stealing (telemetry).
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Chunk> chunks;
    trace::TraceBuffer* trace = nullptr;  // written before the worker runs
  };

  bool pop_front(WorkerQueue& q, Chunk& out);
  bool pop_back(WorkerQueue& q, Chunk& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::atomic<std::size_t> remaining_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace kfi::inject
