#include "inject/injector.h"

#include <stdexcept>
#include <utility>

#include "fsutil/kfs.h"
#include "isa/disasm.h"
#include "isa/isa.h"
#include "trace/trace.h"
#include "vm/layout.h"

namespace kfi::inject {

Injector::Injector(InjectorOptions options, const kernel::KernelImage* image)
    : Injector(std::make_shared<GoldenCache>(options, image)) {}

Injector::Injector(std::shared_ptr<GoldenCache> cache)
    : cache_(std::move(cache)) {
  if (cache_ == nullptr) {
    throw std::invalid_argument("injector: null golden cache");
  }
  if (cache_->options().trace_capacity > 0) {
    trace_ =
        std::make_unique<trace::TraceBuffer>(cache_->options().trace_capacity);
  }
}

Injector::~Injector() = default;

Injector::WorkloadState& Injector::state_for(const std::string& workload) {
  const auto it = states_.find(workload);
  if (it != states_.end()) return *it->second;

  // Build (or look up) the shared artifacts first — this is the only
  // golden warm-up in the whole campaign; the worker machine skips boot
  // entirely by adopting the shared BootState, making it bit-identical
  // to the builder machine by construction.
  const WorkloadGolden& artifact = cache_->workload(workload);
  machine::MachineOptions machine_options;
  machine_options.full_restore = cache_->options().full_restore;
  machine_options.exec_engine = cache_->options().exec_engine;
  auto state = std::make_unique<WorkloadState>();
  state->artifact = &artifact;
  state->machine = std::make_unique<machine::Machine>(
      cache_->image(), workloads::built_workload(workload),
      cache_->root_disk(), machine_options);
  state->machine->adopt_boot(artifact.boot);
  if (trace_ != nullptr) state->machine->set_event_trace(trace_.get());
  state->rung_memos.resize(artifact.ladder.size());
  return *states_.emplace(workload, std::move(state)).first->second;
}

machine::PerfStats Injector::perf_stats() const {
  machine::PerfStats total;
  for (const auto& [workload, state] : states_) {
    total += state->machine->perf_stats();
  }
  // Added here, not per machine: the buffer is shared across this
  // injector's machines, so per-machine sums would double-count.
  if (trace_ != nullptr) {
    total.trace_events = trace_->total_recorded();
    total.trace_dropped = trace_->total_dropped();
  }
  return total;
}

InjectionResult Injector::run_one(const InjectionSpec& spec) {
  InjectionResult result;
  result.spec = spec;
  ++runs_;
  // A fresh per-injection window (lifetime totals survive the clear).
  if (trace_ != nullptr) trace_->clear();

  if (spec.model == FaultModel::SyscallErrno) {
    return run_syscall_errno(spec, std::move(result));
  }
  return run_triggered(spec, std::move(result));
}

InjectionResult Injector::run_triggered(const InjectionSpec& spec,
                                        InjectionResult result) {
  const GoldenRun& ref = golden(spec.workload);
  // The coverage prune is sound only for the instruction model: a text
  // byte outside the executed set can never activate.  Register and
  // data faults trigger on execution of a *site*, so an uncovered site
  // simply runs to completion and classifies as NotActivated honestly.
  if (spec.model == FaultModel::InstrBit &&
      coverage(spec.workload).count(spec.instr_addr) == 0) {
    result.outcome = Outcome::NotActivated;
    return result;
  }
  WorkloadState& state = state_for(spec.workload);
  machine::Machine& machine = *state.machine;
  const std::vector<machine::Checkpoint>& rungs = state.artifact->ladder;

  // Campaign E resolves its data-fault address up front: either the
  // spec pins a physical byte, or data_index samples the golden run's
  // written-data footprint (empty footprint = nothing to corrupt).
  std::uint32_t data_phys = 0;
  if (spec.model == FaultModel::DataBit) {
    if (spec.data_addr != 0) {
      data_phys = spec.data_addr;
    } else {
      const std::vector<std::uint32_t>& footprint =
          state.artifact->write_footprint;
      if (footprint.empty()) {
        result.outcome = Outcome::NotActivated;
        return result;
      }
      data_phys = footprint[spec.data_index % footprint.size()];
    }
    result.data_addr = data_phys;
  }

  // Resume from the latest ladder checkpoint the target's first
  // execution still lies ahead of; fall back to the post-boot snapshot.
  // Execution up to the trigger is identical either way — the rung is a
  // state this exact run passes through — so only the replay cost
  // changes, never the result.
  std::size_t rung_idx = rungs.size();
  const auto& touch = state.artifact->first_touch;
  const auto touched = touch.find(spec.instr_addr);
  if (!rungs.empty() && touched != touch.end()) {
    for (std::size_t i = 0; i < rungs.size(); ++i) {
      if (rungs[i].cycle > touched->second.first) break;
      rung_idx = i;
    }
  }
  if (rung_idx < rungs.size()) {
    machine.restore_checkpoint(rungs[rung_idx], state.rung_memos[rung_idx]);
    ++ckpt_hits_;
  } else {
    machine.restore();
    ++ckpt_misses_;
  }

  const std::uint64_t budget =
      static_cast<std::uint64_t>(static_cast<double>(ref.cycles) *
                                 cache_->options().budget_factor) +
      cache_->options().budget_slack;
  // Cycle/budget accounting stays anchored at the post-boot snapshot so
  // the watchdog deadline (and every derived latency) is bit-identical
  // to a straight-line run.
  const std::uint64_t start = machine.snapshot_cycles();
  const std::uint64_t resumed = machine.cpu().cycles() - start;
  const std::uint64_t entry = machine.cpu().cycles();

  // Arm the trigger and run until the target instruction is reached.
  machine.cpu().arm_breakpoint(0, spec.instr_addr);
  machine::RunResult run =
      machine.run(budget > resumed ? budget - resumed : 1);
  pre_trigger_cycles_ += machine.cpu().cycles() - entry;
  if (run.exit != machine::RunExit::Breakpoint) {
    machine.cpu().disarm_breakpoint(0);
    result.outcome = Outcome::NotActivated;
    return result;
  }
  const std::uint64_t trigger_abs = machine.cpu().cycles();
  if (trace_ != nullptr) {
    trace_->record(trace::EventKind::InjectTrigger, trigger_abs,
                   spec.instr_addr);
  }

  // Apply the model's fault at the trigger point and resume.
  result.activation_cycle = machine.cpu().cycles() - start;
  // RAM byte masked out of reconvergence comparison: only the
  // instruction model leaves a persistent divergence (the corrupted
  // text byte); register and data faults compare the full state — a
  // match proves the fault was overwritten back or absorbed.
  std::size_t masked = static_cast<std::size_t>(-1);
  switch (spec.model) {
    case FaultModel::InstrBit: {
      const std::uint32_t flip_phys =
          vm::phys_of_virt(spec.instr_addr) + spec.byte_index;
      masked = flip_phys;
      std::uint8_t before[16] = {};
      machine.memory().read_block(vm::phys_of_virt(spec.instr_addr), before,
                                  sizeof before);
      result.disasm_before =
          isa::disassemble_bytes(before, sizeof before, spec.instr_addr,
                                 nullptr);
      const std::uint8_t pristine = machine.memory().read8(flip_phys);
      const std::uint8_t corrupted =
          static_cast<std::uint8_t>(pristine ^ (1u << spec.bit_index));
      machine.memory().write8(flip_phys, corrupted);
      if (trace_ != nullptr) {
        trace_->record(
            trace::EventKind::InjectFlip, machine.cpu().cycles(),
            spec.instr_addr,
            static_cast<std::uint32_t>(spec.byte_index) << 8 | spec.bit_index,
            pristine, corrupted);
      }
      // Drop any cached superblock containing the corrupted page — and
      // with it every chain link into or out of those blocks (follows
      // re-validate entry identity, so severed links fail closed).  The
      // per-op version check would catch the stale code anyway; this
      // avoids the stale hit.
      machine.cpu().invalidate_blocks(flip_phys);
      std::uint8_t after[16] = {};
      machine.memory().read_block(vm::phys_of_virt(spec.instr_addr), after,
                                  sizeof after);
      result.disasm_after =
          isa::disassemble_bytes(after, sizeof after, spec.instr_addr,
                                 nullptr);
      break;
    }
    case FaultModel::RegisterBit: {
      if (spec.target_reg == kEflagsTarget) {
        const std::uint32_t before_word = machine.cpu().flags().to_word();
        const std::uint32_t after_word = before_word ^ (1u << spec.bit_index);
        machine.cpu().flags() = isa::Flags::from_word(after_word);
        if (trace_ != nullptr) {
          trace_->record(trace::EventKind::InjectFlip, machine.cpu().cycles(),
                         spec.instr_addr,
                         static_cast<std::uint32_t>(kEflagsTarget) << 8 |
                             spec.bit_index,
                         before_word, after_word);
        }
      } else {
        const isa::Reg reg = static_cast<isa::Reg>(spec.target_reg);
        const std::uint32_t before_val = machine.cpu().reg(reg);
        const std::uint32_t after_val = before_val ^ (1u << spec.bit_index);
        machine.cpu().set_reg(reg, after_val);
        if (trace_ != nullptr) {
          trace_->record(trace::EventKind::InjectFlip, machine.cpu().cycles(),
                         spec.instr_addr,
                         static_cast<std::uint32_t>(spec.target_reg) << 8 |
                             spec.bit_index,
                         before_val, after_val);
        }
      }
      break;
    }
    case FaultModel::DataBit: {
      const std::uint8_t pristine = machine.memory().read8(data_phys);
      const std::uint8_t corrupted =
          static_cast<std::uint8_t>(pristine ^ (1u << spec.bit_index));
      machine.memory().write8(data_phys, corrupted);
      // The flipped byte might back an already-compiled superblock (the
      // footprint cannot prove it is not text); invalidate defensively.
      machine.cpu().invalidate_blocks(data_phys);
      if (trace_ != nullptr) {
        trace_->record(trace::EventKind::InjectFlip, machine.cpu().cycles(),
                       data_phys, spec.bit_index, pristine, corrupted);
      }
      break;
    }
    case FaultModel::SyscallErrno:
      break;  // handled in run_syscall_errno
  }
  machine.cpu().disarm_breakpoint(0);

  // Post-trigger execution runs in segments that stop at each upcoming
  // ladder rung and test for reconvergence: if the machine state is
  // bit-identical to the golden run's state at that cycle — every
  // register, RAM page, disk block, console byte, and the timer phase,
  // excepting only the flipped instruction byte itself — and the golden
  // run never executes the corrupted instruction again (the rung lies
  // past its last golden execution), then the remainder of the run can
  // only replay the golden timeline.  The golden outcome is taken
  // without simulating it.  A run that never reconverges (or has no
  // safe rung ahead) executes to its watchdog deadline exactly as a
  // single continuous run would — segment boundaries preserve the
  // in-flight timer tick, so the timeline is bit-identical either way.
  const std::uint64_t spent = machine.cpu().cycles() - start;
  const std::uint64_t deadline =
      machine.cpu().cycles() + (budget > spent ? budget - spent : 1);
  bool reconverged = false;
  bool finished = false;
  if (!rungs.empty() && touched != touch.end()) {
    // Rungs at or before the corrupted instruction's last golden
    // execution are unsafe for the instruction model — the golden
    // timeline would re-execute the (still corrupted) byte past them.
    // Register and data faults never corrupt text, so any future rung
    // that full-compares equal is conclusive.
    const std::uint64_t last_exec = spec.model == FaultModel::InstrBit
                                        ? touched->second.last
                                        : 0;
    std::size_t idx = 0;
    while (!reconverged) {
      while (idx < rungs.size() &&
             (rungs[idx].cycle <= machine.cpu().cycles() ||
              rungs[idx].cycle <= last_exec)) {
        ++idx;
      }
      if (idx >= rungs.size() || rungs[idx].cycle >= deadline) break;
      const machine::Checkpoint& ck = rungs[idx];
      run = machine.run(ck.cycle - machine.cpu().cycles(), /*resumable=*/true);
      if (run.exit != machine::RunExit::Hung ||
          machine.cpu().cycles() < ck.cycle) {
        // Completed, crashed, died, or deadlocked inside the segment:
        // the run is over, classified below as usual.
        finished = true;
        break;
      }
      if (machine.state_matches(ck, state.rung_memos[idx], masked)) {
        reconverged = true;
        if (trace_ != nullptr) {
          trace_->record(trace::EventKind::Reconverged, machine.cpu().cycles(),
                         static_cast<std::uint32_t>(idx));
        }
      } else {
        ++idx;
      }
    }
  }
  if (reconverged) {
    ++reconverged_;
    post_trigger_cycles_ += machine.cpu().cycles() - trigger_abs;
    result.outcome = Outcome::NotManifested;
    result.bootable = ref.bootable;
    result.fs_damaged = ref.fs_damaged;
    result.repair_verified = ref.repair_verified;
    if (result.fs_damaged) {
      result.severity = !ref.bootable || ref.fsck_unrepairable
                            ? Severity::MostSevere
                            : Severity::Severe;
    }
    return result;
  }
  if (!finished) {
    run = machine.run(deadline - machine.cpu().cycles());
  }
  post_trigger_cycles_ += machine.cpu().cycles() - trigger_abs;
  classify(result, run, machine, ref);
  return result;
}

void Injector::classify(InjectionResult& result, const machine::RunResult& run,
                        machine::Machine& machine, const GoldenRun& ref) {
  const InjectionSpec& spec = result.spec;
  const std::uint64_t start = machine.snapshot_cycles();

  // Post-run disk state (before the next restore wipes it).
  const fsutil::FsckReport fsck = fsutil::fsck(machine.disk_image());
  if (fsck.verdict == fsutil::FsckVerdict::Repairable) {
    // Validate the severity taxonomy: a "severe" image must actually be
    // recoverable by the interactive-fsck pass.
    disk::DiskImage copy = machine.disk_image();
    fsutil::fsck_repair(copy);
    result.repair_verified =
        fsutil::fsck(copy).verdict == fsutil::FsckVerdict::Clean;
  }
  result.bootable = cache_->disk_bootable(machine.disk_image());
  const std::uint64_t digest = fsutil::tree_digest(machine.disk_image());
  result.fs_damaged =
      fsck.verdict != fsutil::FsckVerdict::Clean || !result.bootable;

  switch (run.exit) {
    case machine::RunExit::Completed: {
      const bool matches = machine.console_output() == ref.console &&
                           run.exit_code == ref.exit_code &&
                           digest == ref.fs_digest;
      result.outcome = matches ? Outcome::NotManifested
                               : Outcome::FailSilenceViolation;
      break;
    }
    case machine::RunExit::Crashed: {
      result.outcome = Outcome::DumpedCrash;
      result.cause = crash_cause_from_code(run.crash.cause);
      result.crash_eip = run.crash.eip;
      result.crash_addr = run.crash.fault_addr;
      result.crash_subsystem = kernel::subsystem_of_addr(run.crash.eip);
      result.propagated = result.crash_subsystem != spec.subsystem;
      const std::uint64_t activation_abs = start + result.activation_cycle;
      if (run.crash.trap_cycle >= activation_abs) {
        result.latency_cycles = run.crash.trap_cycle - activation_abs;
      } else {
        result.latency_cycles = run.crash.report_cycle - activation_abs;
      }
      break;
    }
    case machine::RunExit::Hung:
    case machine::RunExit::CpuDead:
      result.outcome = Outcome::HangUnknown;
      break;
    case machine::RunExit::Breakpoint:
      // Cannot happen: the breakpoint is disarmed.
      result.outcome = Outcome::HangUnknown;
      break;
  }

  // Severity (meaningful for crashes and hangs — the recovery path).
  if (result.outcome == Outcome::DumpedCrash ||
      result.outcome == Outcome::HangUnknown) {
    if (fsck.verdict == fsutil::FsckVerdict::Unrepairable ||
        !result.bootable) {
      result.severity = Severity::MostSevere;
    } else if (fsck.verdict == fsutil::FsckVerdict::Repairable) {
      result.severity = Severity::Severe;
    } else {
      result.severity = Severity::Normal;
    }
  } else if (result.fs_damaged) {
    // The paper's "did not crash but could not reboot" observation.
    result.severity = !result.bootable ||
                              fsck.verdict == fsutil::FsckVerdict::Unrepairable
                          ? Severity::MostSevere
                          : Severity::Severe;
  }
}

InjectionResult Injector::run_syscall_errno(const InjectionSpec& spec,
                                            InjectionResult result) {
  const GoldenRun& ref = golden(spec.workload);
  WorkloadState& state = state_for(spec.workload);
  machine::Machine& machine = *state.machine;
  const WorkloadGolden& artifact = *state.artifact;
  const std::vector<machine::Checkpoint>& rungs = artifact.ladder;

  // The injection point: the data_index-th successful syscall exit of
  // the golden timeline (failing a syscall that already failed would
  // not model an error).  No successes = nothing to inject into.
  std::vector<std::size_t> successes;
  successes.reserve(artifact.syscalls.size());
  for (std::size_t i = 0; i < artifact.syscalls.size(); ++i) {
    if (!artifact.syscalls[i].failed()) successes.push_back(i);
  }
  if (spec.instr_addr == 0 || successes.empty()) {
    result.outcome = Outcome::NotActivated;
    return result;
  }
  const std::size_t target =
      successes[spec.data_index % successes.size()];
  const std::uint64_t target_cycle = artifact.syscalls[target].cycle;

  // Resume from the latest rung strictly before the target exit;
  // pre-fault execution is identical to the golden timeline, so the
  // syscall-exit breakpoint fires at exactly the recorded cycles.
  std::size_t rung_idx = rungs.size();
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    if (rungs[i].cycle >= target_cycle) break;
    rung_idx = i;
  }
  if (rung_idx < rungs.size()) {
    machine.restore_checkpoint(rungs[rung_idx], state.rung_memos[rung_idx]);
    ++ckpt_hits_;
  } else {
    machine.restore();
    ++ckpt_misses_;
  }

  const std::uint64_t budget =
      static_cast<std::uint64_t>(static_cast<double>(ref.cycles) *
                                 cache_->options().budget_factor) +
      cache_->options().budget_slack;
  const std::uint64_t start = machine.snapshot_cycles();
  const std::uint64_t deadline = start + budget;
  const std::uint64_t entry = machine.cpu().cycles();

  machine.cpu().arm_breakpoint(0, spec.instr_addr);
  bool injected = false;
  std::uint64_t trigger_abs = entry;
  machine::RunResult run;
  for (;;) {
    const std::uint64_t now = machine.cpu().cycles();
    run = machine.run(deadline > now ? deadline - now : 1, /*resumable=*/true);
    if (run.exit != machine::RunExit::Breakpoint) break;
    const std::uint64_t hit = machine.cpu().cycles();
    if (!injected) {
      if (hit < target_cycle) continue;  // an earlier exit — skip past it
      // The target exit: overwrite the (successful) return value with
      // -errno before the kernel stores it back to the user frame.
      result.activation_cycle = hit - start;
      trigger_abs = hit;
      pre_trigger_cycles_ += hit - entry;
      const std::uint32_t before_eax = machine.cpu().reg(isa::Reg::Eax);
      const std::uint32_t after_eax = static_cast<std::uint32_t>(
          -static_cast<std::int32_t>(spec.errno_value));
      machine.cpu().set_reg(isa::Reg::Eax, after_eax);
      injected = true;
      if (trace_ != nullptr) {
        trace_->record(trace::EventKind::InjectTrigger, hit, spec.instr_addr);
        trace_->record(trace::EventKind::InjectFlip, hit, spec.instr_addr,
                       spec.errno_value, before_eax, after_eax);
      }
    } else {
      // Cascade accounting: every later exit, and how many of them the
      // kernel itself turned into errno failures.
      ++result.syscalls_after;
      if (SyscallExit{0, machine.cpu().reg(isa::Reg::Eax)}.failed()) {
        ++result.cascade_syscalls;
      }
    }
  }
  machine.cpu().disarm_breakpoint(0);
  if (!injected) {
    // The run ended before the target exit was reached — with a golden
    // pre-fault timeline this cannot happen, but classify it honestly.
    pre_trigger_cycles_ += machine.cpu().cycles() - entry;
    result.outcome = Outcome::NotActivated;
    return result;
  }
  post_trigger_cycles_ += machine.cpu().cycles() - trigger_abs;
  classify(result, run, machine, ref);
  return result;
}

}  // namespace kfi::inject
