#include "inject/injector.h"

#include <stdexcept>

#include "fsutil/kfs.h"
#include "isa/disasm.h"
#include "vm/layout.h"

namespace kfi::inject {

Injector::Injector(InjectorOptions options, const kernel::KernelImage* image)
    : options_(options),
      image_(image != nullptr ? *image : kernel::built_kernel()),
      root_disk_(machine::make_root_disk()) {
  init_pristine_ = *fsutil::read_file(root_disk_, "/sbin/init");
  libc_pristine_ = *fsutil::read_file(root_disk_, "/lib/libc.so");
}

Injector::~Injector() = default;

machine::Machine& Injector::machine_for(const std::string& workload) {
  const auto it = machines_.find(workload);
  if (it != machines_.end()) return *it->second;

  auto machine = std::make_unique<machine::Machine>(
      image_, workloads::built_workload(workload), root_disk_);
  if (!machine->boot()) {
    throw std::runtime_error("injector: workload '" + workload +
                             "' failed to boot");
  }
  return *machines_.emplace(workload, std::move(machine)).first->second;
}

const GoldenRun& Injector::golden(const std::string& workload) {
  const auto it = goldens_.find(workload);
  if (it != goldens_.end()) return it->second;

  machine::Machine& machine = machine_for(workload);
  machine.restore();
  machine.set_trace(&coverage_[workload]);
  const std::uint64_t start = machine.cpu().cycles();
  const machine::RunResult run = machine.run(100'000'000);
  machine.set_trace(nullptr);

  GoldenRun golden;
  golden.ok = run.exit == machine::RunExit::Completed;
  golden.console = machine.console_output();
  golden.exit_code = run.exit_code;
  golden.fs_digest = fsutil::tree_digest(machine.disk_image());
  golden.cycles = machine.cpu().cycles() - start;
  if (!golden.ok) {
    throw std::runtime_error("injector: golden run for '" + workload +
                             "' did not complete");
  }
  return goldens_.emplace(workload, std::move(golden)).first->second;
}

const std::unordered_set<std::uint32_t>& Injector::coverage(
    const std::string& workload) {
  golden(workload);  // ensures the traced run happened
  return coverage_[workload];
}

bool Injector::disk_bootable(const disk::DiskImage& image) const {
  const auto init_file = fsutil::read_file(image, "/sbin/init");
  if (!init_file.has_value() || *init_file != init_pristine_) return false;
  const auto libc_file = fsutil::read_file(image, "/lib/libc.so");
  if (!libc_file.has_value() || *libc_file != libc_pristine_) return false;
  return true;
}

InjectionResult Injector::run_one(const InjectionSpec& spec) {
  InjectionResult result;
  result.spec = spec;
  ++runs_;

  const GoldenRun& ref = golden(spec.workload);
  if (coverage(spec.workload).count(spec.instr_addr) == 0) {
    result.outcome = Outcome::NotActivated;
    return result;
  }
  machine::Machine& machine = machine_for(spec.workload);
  machine.restore();

  const std::uint64_t budget =
      static_cast<std::uint64_t>(static_cast<double>(ref.cycles) *
                                 options_.budget_factor) +
      options_.budget_slack;
  const std::uint64_t start = machine.cpu().cycles();

  // Arm the trigger and run until the target instruction is reached.
  machine.cpu().arm_breakpoint(0, spec.instr_addr);
  machine::RunResult run = machine.run(budget);
  if (run.exit != machine::RunExit::Breakpoint) {
    machine.cpu().disarm_breakpoint(0);
    result.outcome = Outcome::NotActivated;
    return result;
  }

  // Flip the bit in the instruction's binary and resume.
  result.activation_cycle = machine.cpu().cycles() - start;
  const std::uint32_t flip_phys =
      vm::phys_of_virt(spec.instr_addr) + spec.byte_index;
  {
    std::uint8_t before[16] = {};
    machine.memory().read_block(vm::phys_of_virt(spec.instr_addr), before,
                                sizeof before);
    result.disasm_before =
        isa::disassemble_bytes(before, sizeof before, spec.instr_addr,
                               nullptr);
    const std::uint8_t corrupted = static_cast<std::uint8_t>(
        machine.memory().read8(flip_phys) ^ (1u << spec.bit_index));
    machine.memory().write8(flip_phys, corrupted);
    std::uint8_t after[16] = {};
    machine.memory().read_block(vm::phys_of_virt(spec.instr_addr), after,
                                sizeof after);
    result.disasm_after =
        isa::disassemble_bytes(after, sizeof after, spec.instr_addr,
                               nullptr);
  }
  machine.cpu().disarm_breakpoint(0);

  const std::uint64_t spent = machine.cpu().cycles() - start;
  run = machine.run(budget > spent ? budget - spent : 1);

  // Post-run disk state (before the next restore wipes it).
  const fsutil::FsckReport fsck = fsutil::fsck(machine.disk_image());
  if (fsck.verdict == fsutil::FsckVerdict::Repairable) {
    // Validate the severity taxonomy: a "severe" image must actually be
    // recoverable by the interactive-fsck pass.
    disk::DiskImage copy = machine.disk_image();
    fsutil::fsck_repair(copy);
    result.repair_verified =
        fsutil::fsck(copy).verdict == fsutil::FsckVerdict::Clean;
  }
  result.bootable = disk_bootable(machine.disk_image());
  const std::uint64_t digest = fsutil::tree_digest(machine.disk_image());
  result.fs_damaged =
      fsck.verdict != fsutil::FsckVerdict::Clean || !result.bootable;

  switch (run.exit) {
    case machine::RunExit::Completed: {
      const bool matches = machine.console_output() == ref.console &&
                           run.exit_code == ref.exit_code &&
                           digest == ref.fs_digest;
      result.outcome = matches ? Outcome::NotManifested
                               : Outcome::FailSilenceViolation;
      break;
    }
    case machine::RunExit::Crashed: {
      result.outcome = Outcome::DumpedCrash;
      result.cause = crash_cause_from_code(run.crash.cause);
      result.crash_eip = run.crash.eip;
      result.crash_addr = run.crash.fault_addr;
      result.crash_subsystem = kernel::subsystem_of_addr(run.crash.eip);
      result.propagated = result.crash_subsystem != spec.subsystem;
      const std::uint64_t activation_abs = start + result.activation_cycle;
      if (run.crash.trap_cycle >= activation_abs) {
        result.latency_cycles = run.crash.trap_cycle - activation_abs;
      } else {
        result.latency_cycles = run.crash.report_cycle - activation_abs;
      }
      break;
    }
    case machine::RunExit::Hung:
    case machine::RunExit::CpuDead:
      result.outcome = Outcome::HangUnknown;
      break;
    case machine::RunExit::Breakpoint:
      // Cannot happen: the breakpoint is disarmed.
      result.outcome = Outcome::HangUnknown;
      break;
  }

  // Severity (meaningful for crashes and hangs — the recovery path).
  if (result.outcome == Outcome::DumpedCrash ||
      result.outcome == Outcome::HangUnknown) {
    if (fsck.verdict == fsutil::FsckVerdict::Unrepairable ||
        !result.bootable) {
      result.severity = Severity::MostSevere;
    } else if (fsck.verdict == fsutil::FsckVerdict::Repairable) {
      result.severity = Severity::Severe;
    } else {
      result.severity = Severity::Normal;
    }
  } else if (result.fs_damaged) {
    // The paper's "did not crash but could not reboot" observation.
    result.severity = !result.bootable ||
                              fsck.verdict == fsutil::FsckVerdict::Unrepairable
                          ? Severity::MostSevere
                          : Severity::Severe;
  }

  return result;
}

}  // namespace kfi::inject
