// Campaign orchestration: expands a campaign over the profiled hot
// functions, pairs every target with the workload that exercises it
// most, and executes the runs (paper §6).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "inject/injector.h"
#include "inject/outcome.h"
#include "inject/targets.h"
#include "profile/profile.h"

namespace kfi::inject {

// Campaign F samples this many errno injections per workload per
// `repeats` unit (each picks a random successful golden syscall exit
// and a random errno).
inline constexpr int kErrnoSamplesPerRepeat = 8;

struct CampaignConfig {
  Campaign campaign = Campaign::RandomNonBranch;
  // Functions to target; empty = the profile's core set (coverage
  // below), like the paper's 32 hottest functions, extended for the
  // branch campaigns which need more branch sites.  For campaign F the
  // entries name *workloads* instead (the fault site is fixed at the
  // syscall exit; the population axis is whose syscall stream fails).
  std::vector<std::string> functions;
  double profile_coverage = 0.95;
  // Random-bit repetition factor for campaigns A and B.
  int repeats = 1;
  std::uint64_t seed = 2003;
  // Kernel image to target (nullptr = the standard build).
  const kernel::KernelImage* kernel_image = nullptr;
  // Worker threads.  Workers share one GoldenCache (golden runs and
  // ladders are built once per workload total) but own private
  // machines, so results are identical regardless of thread count.
  unsigned threads = 0;  // 0 = hardware concurrency
  // Optional progress callback: (done, total); called under a lock.
  std::function<void(std::size_t, std::size_t)> progress;
};

// Campaign-wide execution counters, aggregated over every worker
// Injector (per-worker counters used to die with their private
// Injectors at threads>1, silently underreporting).  The caller's
// Injector contributes only the delta it accrued during this campaign,
// so stats are per-campaign even when the Injector is reused.
struct CampaignStats {
  std::uint64_t runs = 0;
  std::uint64_t checkpoint_hits = 0;
  std::uint64_t checkpoint_misses = 0;
  std::uint64_t reconverged = 0;
  std::uint64_t pre_trigger_cycles = 0;
  std::uint64_t post_trigger_cycles = 0;
  machine::PerfStats perf;
  // Scheduler telemetry (not part of += aggregation; set by
  // run_campaign).
  std::uint64_t chunks = 0;
  std::uint64_t steals = 0;
  unsigned threads_used = 1;

  CampaignStats& operator+=(const CampaignStats& o);
  CampaignStats& operator-=(const CampaignStats& o);
};

struct CampaignRun {
  Campaign campaign = Campaign::RandomNonBranch;
  std::vector<InjectionResult> results;
  std::size_t functions_targeted = 0;
  CampaignStats stats;
};

// Default function selection for a campaign: the profile core set for
// A; every profiled function for B and C (branch sites are sparse, so
// the paper widened the function list there too — its Figure 4 shows
// 51 / 81 / 176 functions for A / B / C).
std::vector<std::string> default_functions(Campaign campaign,
                                           const profile::ProfileResult& prof,
                                           double coverage);

// The campaign's full target list, derived deterministically from
// (campaign, seed, repeats, functions): the exact sequence run_campaign
// executes.  `functions_targeted` (optional) receives the number of
// functions that contributed at least one target.  Because the only
// stochastic input is the seeded Rng, re-invoking this with the same
// config regenerates the identical list — the property kfi::check's
// single-run replay rests on.
std::vector<InjectionSpec> campaign_targets(const profile::ProfileResult& prof,
                                            const CampaignConfig& config,
                                            std::size_t* functions_targeted);

// The deterministic execution order run_campaign drains: positions
// into `targets`, grouped by workload and sorted by each target's
// first-execution cycle in the golden run, so consecutive runs resume
// from the same (or an adjacent) checkpoint-ladder rung.  Exposed so
// the process-sharded campaign service (src/serve) cuts its shard
// manifest over the identical order — shard boundaries, and therefore
// shard artifact hashes, depend only on (targets, golden touch maps).
// Looking up first-touch maps builds (or bundle-adopts) each
// workload's golden artifacts in `injector`'s cache.
std::vector<std::size_t> campaign_order(
    Injector& injector, const std::vector<InjectionSpec>& targets);

CampaignRun run_campaign(Injector& injector,
                         const profile::ProfileResult& prof,
                         const CampaignConfig& config);

}  // namespace kfi::inject
