#include "inject/golden.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "fsutil/kfs.h"
#include "inject/targets.h"

namespace kfi::inject {

GoldenCache::GoldenCache(InjectorOptions options,
                         const kernel::KernelImage* image)
    : options_(options),
      image_(image != nullptr ? *image : kernel::built_kernel()),
      root_disk_(machine::make_root_disk()) {
  init_pristine_ = *fsutil::read_file(root_disk_, "/sbin/init");
  libc_pristine_ = *fsutil::read_file(root_disk_, "/lib/libc.so");
}

GoldenCache::~GoldenCache() = default;

GoldenCache::Entry* GoldenCache::entry_for(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = entries_[name];
  if (slot == nullptr) slot = std::make_unique<Entry>();
  return slot.get();
}

const WorkloadGolden& GoldenCache::workload(const std::string& name) {
  Entry* entry = entry_for(name);
  // The entry pointer is stable (map of unique_ptr) and the once_flag
  // both serializes the build and publishes the artifact to every
  // waiter; a build that throws leaves the flag unset, so a later call
  // may retry.
  std::call_once(entry->once, [&] { build(name, entry->artifact); });
  return entry->artifact;
}

bool GoldenCache::adopt_workload(const std::string& name,
                                 WorkloadGolden artifact,
                                 std::shared_ptr<const void> keepalive) {
  Entry* entry = entry_for(name);
  bool adopted = false;
  std::call_once(entry->once, [&] {
    entry->artifact = std::move(artifact);
    entry->keepalive = std::move(keepalive);
    adoptions_.fetch_add(1, std::memory_order_relaxed);
    adopted = true;
  });
  return adopted;
}

void GoldenCache::build(const std::string& name, WorkloadGolden& out) {
  machine::MachineOptions machine_options;
  machine_options.full_restore = options_.full_restore;
  machine_options.exec_engine = options_.exec_engine;
  machine::Machine machine(image_, workloads::built_workload(name),
                           root_disk_, machine_options);
  if (!machine.boot()) {
    throw std::runtime_error("golden cache: workload '" + name +
                             "' failed to boot");
  }

  // Fault-free reference run, traced for coverage, touch windows, and
  // the written-data footprint (campaign E's target population).  A
  // breakpoint on the syscall-exit store additionally records every
  // syscall return (campaign F's timeline); breakpoint stops consume
  // zero cycles and the resumable segments preserve the in-flight
  // timer tick, so the traced timeline — and every golden artifact —
  // is bit-identical to the historical single-call run.
  machine.restore();
  machine.set_trace(&out.coverage);
  machine.set_touch_trace(&out.first_touch);
  std::unordered_set<std::uint32_t> written;
  machine.set_write_trace(&written);
  const std::uint32_t sc_site = syscall_return_site(image_);
  const std::uint64_t start = machine.cpu().cycles();
  constexpr std::uint64_t kGoldenBudget = 100'000'000;
  machine::RunResult run;
  if (sc_site != 0) {
    machine.cpu().arm_breakpoint(0, sc_site);
    for (;;) {
      const std::uint64_t spent = machine.cpu().cycles() - start;
      run = machine.run(kGoldenBudget > spent ? kGoldenBudget - spent : 1,
                        /*resumable=*/true);
      if (run.exit != machine::RunExit::Breakpoint) break;
      out.syscalls.push_back(SyscallExit{
          machine.cpu().cycles(),
          machine.cpu().reg(isa::Reg::Eax)});
    }
    machine.cpu().disarm_breakpoint(0);
  } else {
    run = machine.run(kGoldenBudget);
  }
  machine.set_trace(nullptr);
  machine.set_touch_trace(nullptr);
  machine.set_write_trace(nullptr);
  out.write_footprint.assign(written.begin(), written.end());
  std::sort(out.write_footprint.begin(), out.write_footprint.end());

  GoldenRun& golden = out.golden;
  golden.ok = run.exit == machine::RunExit::Completed;
  golden.console = machine.console_output();
  golden.exit_code = run.exit_code;
  golden.fs_digest = fsutil::tree_digest(machine.disk_image());
  golden.cycles = machine.cpu().cycles() - start;
  if (!golden.ok) {
    throw std::runtime_error("golden cache: golden run for '" + name +
                             "' did not complete");
  }

  // Classify the golden end-of-run disk exactly as run_one() would, so
  // a reconverged run can copy the fields instead of recomputing them
  // from a bit-identical image.
  {
    const fsutil::FsckReport fsck = fsutil::fsck(machine.disk_image());
    golden.bootable = disk_bootable(machine.disk_image());
    golden.fs_damaged =
        fsck.verdict != fsutil::FsckVerdict::Clean || !golden.bootable;
    golden.fsck_unrepairable =
        fsck.verdict == fsutil::FsckVerdict::Unrepairable;
    if (fsck.verdict == fsutil::FsckVerdict::Repairable) {
      disk::DiskImage copy = machine.disk_image();
      fsutil::fsck_repair(copy);
      golden.repair_verified =
          fsutil::fsck(copy).verdict == fsutil::FsckVerdict::Clean;
    }
  }

  // Build the checkpoint ladder: replay the golden run once more,
  // snapshotting at evenly spaced cycles.  The replay follows the same
  // deterministic timeline, so each rung is a state every injected run
  // passes through before its trigger fires.
  if (options_.checkpoints > 0) {
    std::vector<std::uint64_t> at;
    at.reserve(static_cast<std::size_t>(options_.checkpoints));
    for (int k = 1; k <= options_.checkpoints; ++k) {
      at.push_back(start + golden.cycles * static_cast<std::uint64_t>(k) /
                               (static_cast<std::uint64_t>(options_.checkpoints) + 1));
    }
    out.ladder = machine.capture_checkpoints(std::move(at), 100'000'000);
  }

  // The BootState outlives this transient builder machine; worker
  // machines adopt it (and the ladder's deltas resolve through it).
  out.boot = machine.boot_state();
  builds_.fetch_add(1, std::memory_order_relaxed);
}

bool GoldenCache::disk_bootable(const disk::DiskImage& image) const {
  const auto init_file = fsutil::read_file(image, "/sbin/init");
  if (!init_file.has_value() || *init_file != init_pristine_) return false;
  const auto libc_file = fsutil::read_file(image, "/lib/libc.so");
  if (!libc_file.has_value() || *libc_file != libc_pristine_) return false;
  return true;
}

}  // namespace kfi::inject
