#include "inject/targets.h"

#include "isa/decode.h"
#include "isa/disasm.h"

namespace kfi::inject {
namespace {

// Locates the image bytes backing [start, end).
const std::uint8_t* segment_bytes(const kernel::KernelImage& image,
                                  std::uint32_t start, std::uint32_t end) {
  for (const kernel::LoadSegment& segment : image.segments) {
    if (start >= segment.base &&
        end <= segment.base + segment.bytes.size()) {
      return segment.bytes.data() + (start - segment.base);
    }
  }
  return nullptr;
}

}  // namespace

std::vector<InstructionSite> enumerate_function(
    const kernel::KernelImage& image, const kernel::KernelFunction& fn) {
  std::vector<InstructionSite> sites;
  const std::uint8_t* bytes = segment_bytes(image, fn.start, fn.end);
  if (bytes == nullptr) return sites;

  std::uint32_t offset = 0;
  const std::uint32_t size = fn.end - fn.start;
  while (offset < size) {
    isa::Instruction instr;
    const isa::DecodeStatus status =
        isa::decode(bytes + offset, size - offset, instr);
    if (status != isa::DecodeStatus::Ok) break;  // data tail / padding
    InstructionSite site;
    site.addr = fn.start + offset;
    site.bytes.assign(bytes + offset, bytes + offset + instr.length);
    site.is_branch = instr.is_branch();
    site.is_cond_branch = instr.is_conditional_branch();
    site.disasm = isa::disassemble(instr, site.addr);
    sites.push_back(std::move(site));
    offset += instr.length;
  }
  return sites;
}

int condition_byte_index(const InstructionSite& site) {
  if (!site.is_cond_branch || site.bytes.empty()) return -1;
  if ((site.bytes[0] & 0xF0) == 0x70) return 0;  // short Jcc
  if (site.bytes[0] == 0x0F && site.bytes.size() > 1 &&
      (site.bytes[1] & 0xF0) == 0x80) {
    return 1;  // long Jcc
  }
  return -1;
}

std::vector<InjectionSpec> make_targets(const kernel::KernelImage& image,
                                        const kernel::KernelFunction& fn,
                                        Campaign campaign, Rng& rng,
                                        int repeats) {
  std::vector<InjectionSpec> targets;
  const std::vector<InstructionSite> sites = enumerate_function(image, fn);

  auto base_spec = [&fn, campaign](const InstructionSite& site) {
    InjectionSpec spec;
    spec.campaign = campaign;
    spec.function = fn.name;
    spec.subsystem = fn.subsystem;
    spec.instr_addr = site.addr;
    spec.instr_len = static_cast<std::uint8_t>(site.bytes.size());
    return spec;
  };

  for (const InstructionSite& site : sites) {
    switch (campaign) {
      case Campaign::RandomNonBranch: {
        if (site.is_branch) break;
        for (int rep = 0; rep < repeats; ++rep) {
          for (std::size_t byte = 0; byte < site.bytes.size(); ++byte) {
            InjectionSpec spec = base_spec(site);
            spec.byte_index = static_cast<std::uint8_t>(byte);
            spec.bit_index = static_cast<std::uint8_t>(rng.bit_in_byte());
            targets.push_back(std::move(spec));
          }
        }
        break;
      }
      case Campaign::RandomBranch: {
        if (!site.is_cond_branch) break;
        for (int rep = 0; rep < repeats; ++rep) {
          for (std::size_t byte = 0; byte < site.bytes.size(); ++byte) {
            InjectionSpec spec = base_spec(site);
            spec.byte_index = static_cast<std::uint8_t>(byte);
            spec.bit_index = static_cast<std::uint8_t>(rng.bit_in_byte());
            targets.push_back(std::move(spec));
          }
        }
        break;
      }
      case Campaign::IncorrectBranch: {
        const int cond_byte = condition_byte_index(site);
        if (cond_byte < 0) break;
        InjectionSpec spec = base_spec(site);
        spec.byte_index = static_cast<std::uint8_t>(cond_byte);
        spec.bit_index = 0;  // bit 0 reverses the condition
        targets.push_back(std::move(spec));
        break;
      }
    }
  }
  return targets;
}

}  // namespace kfi::inject
