#include "inject/targets.h"

#include "isa/decode.h"
#include "isa/disasm.h"

namespace kfi::inject {
namespace {

// Locates the image bytes backing [start, end).
const std::uint8_t* segment_bytes(const kernel::KernelImage& image,
                                  std::uint32_t start, std::uint32_t end) {
  for (const kernel::LoadSegment& segment : image.segments) {
    if (start >= segment.base &&
        end <= segment.base + segment.bytes.size()) {
      return segment.bytes.data() + (start - segment.base);
    }
  }
  return nullptr;
}

}  // namespace

std::vector<InstructionSite> enumerate_function(
    const kernel::KernelImage& image, const kernel::KernelFunction& fn) {
  std::vector<InstructionSite> sites;
  const std::uint8_t* bytes = segment_bytes(image, fn.start, fn.end);
  if (bytes == nullptr) return sites;

  std::uint32_t offset = 0;
  const std::uint32_t size = fn.end - fn.start;
  while (offset < size) {
    isa::Instruction instr;
    const isa::DecodeStatus status =
        isa::decode(bytes + offset, size - offset, instr);
    if (status != isa::DecodeStatus::Ok) break;  // data tail / padding
    InstructionSite site;
    site.addr = fn.start + offset;
    site.bytes.assign(bytes + offset, bytes + offset + instr.length);
    site.is_branch = instr.is_branch();
    site.is_cond_branch = instr.is_conditional_branch();
    site.disasm = isa::disassemble(instr, site.addr);
    sites.push_back(std::move(site));
    offset += instr.length;
  }
  return sites;
}

int condition_byte_index(const InstructionSite& site) {
  if (!site.is_cond_branch || site.bytes.empty()) return -1;
  if ((site.bytes[0] & 0xF0) == 0x70) return 0;  // short Jcc
  if (site.bytes[0] == 0x0F && site.bytes.size() > 1 &&
      (site.bytes[1] & 0xF0) == 0x80) {
    return 1;  // long Jcc
  }
  return -1;
}

std::vector<InjectionSpec> make_targets(const kernel::KernelImage& image,
                                        const kernel::KernelFunction& fn,
                                        Campaign campaign, Rng& rng,
                                        int repeats) {
  std::vector<InjectionSpec> targets;
  const std::vector<InstructionSite> sites = enumerate_function(image, fn);

  auto base_spec = [&fn, campaign](const InstructionSite& site) {
    InjectionSpec spec;
    spec.campaign = campaign;
    spec.function = fn.name;
    spec.subsystem = fn.subsystem;
    spec.instr_addr = site.addr;
    spec.instr_len = static_cast<std::uint8_t>(site.bytes.size());
    return spec;
  };

  for (const InstructionSite& site : sites) {
    switch (campaign) {
      case Campaign::RandomNonBranch: {
        if (site.is_branch) break;
        for (int rep = 0; rep < repeats; ++rep) {
          for (std::size_t byte = 0; byte < site.bytes.size(); ++byte) {
            InjectionSpec spec = base_spec(site);
            spec.byte_index = static_cast<std::uint8_t>(byte);
            spec.bit_index = static_cast<std::uint8_t>(rng.bit_in_byte());
            targets.push_back(std::move(spec));
          }
        }
        break;
      }
      case Campaign::RandomBranch: {
        if (!site.is_cond_branch) break;
        for (int rep = 0; rep < repeats; ++rep) {
          for (std::size_t byte = 0; byte < site.bytes.size(); ++byte) {
            InjectionSpec spec = base_spec(site);
            spec.byte_index = static_cast<std::uint8_t>(byte);
            spec.bit_index = static_cast<std::uint8_t>(rng.bit_in_byte());
            targets.push_back(std::move(spec));
          }
        }
        break;
      }
      case Campaign::IncorrectBranch: {
        const int cond_byte = condition_byte_index(site);
        if (cond_byte < 0) break;
        InjectionSpec spec = base_spec(site);
        spec.byte_index = static_cast<std::uint8_t>(cond_byte);
        spec.bit_index = 0;  // bit 0 reverses the condition
        targets.push_back(std::move(spec));
        break;
      }
      case Campaign::RegisterFile: {
        // One register-file fault per instruction site: the site is the
        // trigger (when its fetch is reached the register flips), so the
        // fault population spreads over the same execution points the
        // instruction campaigns exercise.
        for (int rep = 0; rep < repeats; ++rep) {
          InjectionSpec spec = base_spec(site);
          spec.model = FaultModel::RegisterBit;
          spec.target_reg = static_cast<std::uint8_t>(
              rng.below(static_cast<std::uint64_t>(kEflagsTarget) + 1));
          if (spec.target_reg == kEflagsTarget) {
            // Only the modeled EFLAGS bits (isa::Flags::to_word layout).
            static constexpr std::uint8_t kFlagBits[] = {0, 2, 6, 7, 9, 11};
            spec.bit_index = kFlagBits[rng.below(6)];
          } else {
            spec.bit_index = static_cast<std::uint8_t>(rng.below(32));
          }
          targets.push_back(std::move(spec));
        }
        break;
      }
      case Campaign::KernelData: {
        // One data fault per instruction site: the trigger is the site's
        // fetch; the faulted byte is chosen at run time by indexing the
        // golden run's written-data footprint (which campaign_targets
        // cannot see — target generation must stay pure over the
        // profile, config, and seed for worker re-derivation).
        for (int rep = 0; rep < repeats; ++rep) {
          InjectionSpec spec = base_spec(site);
          spec.model = FaultModel::DataBit;
          spec.data_index = rng.next_u32();
          spec.bit_index = static_cast<std::uint8_t>(rng.bit_in_byte());
          targets.push_back(std::move(spec));
        }
        break;
      }
      case Campaign::SyscallErrno:
        // Errno targets are per-workload, not per-function; generated by
        // campaign_targets directly.
        break;
    }
  }
  return targets;
}

std::uint32_t syscall_return_site(const kernel::KernelImage& image) {
  // The syscall-exit store is the instruction after the `sc_out` label
  // in system_call: `add $12, %esp` then `mov %eax, 28(%esp)` (the
  // return value landing in the saved-eax slot).  Locate it by decoding
  // forward from the label, host-side — the kernel text itself is never
  // touched, so the A/B/C identity digests cannot move.
  const std::uint32_t sc_out = image.symbol("sc_out");
  if (sc_out == 0) return 0;
  const kernel::KernelFunction* fn = image.function_at(sc_out);
  if (fn == nullptr) return 0;
  const std::uint8_t* bytes = segment_bytes(image, fn->start, fn->end);
  if (bytes == nullptr) return 0;
  isa::Instruction instr;
  if (isa::decode(bytes + (sc_out - fn->start), fn->end - sc_out, instr) !=
      isa::DecodeStatus::Ok) {
    return 0;
  }
  return sc_out + instr.length;
}

}  // namespace kfi::inject
