// Shared golden-artifact cache.
//
// Everything an injection campaign needs per workload besides the
// machine itself — the fault-free GoldenRun, the golden coverage set,
// the first/last-touch map, the post-boot BootState, and the checkpoint
// ladder — is a pure function of (kernel image, workload, root disk,
// options).  A GoldenCache computes each workload's artifact bundle
// exactly once per campaign, on whichever thread asks first, and hands
// out immutable references; worker Injectors borrow the cache by
// shared_ptr instead of re-running golden runs per thread (previously:
// N threads cost N full golden replays, ladder captures, and ~16 MiB
// RAM snapshot copies per workload).
//
// Thread safety: workload() may be called concurrently from any number
// of threads; a per-entry std::once_flag serializes the build of one
// workload while builds of different workloads proceed in parallel.
// Everything a caller can reach from the returned reference is
// immutable after the build completes (call_once is the release/acquire
// barrier), so readers need no further synchronization.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "disk/disk.h"
#include "inject/outcome.h"
#include "machine/machine.h"

namespace kfi::inject {

struct GoldenRun {
  bool ok = false;
  std::string console;
  std::uint32_t exit_code = 0;
  std::uint64_t fs_digest = 0;
  std::uint64_t cycles = 0;  // fault-free run length
  // End-of-run disk classification, precomputed once so a run proven to
  // reconverge onto the golden timeline can take the golden outcome
  // without re-running fsck on an identical image.
  bool bootable = true;
  bool fs_damaged = false;
  bool fsck_unrepairable = false;
  bool repair_verified = false;
};

struct InjectorOptions {
  // Watchdog budget multiplier over the golden run length.  Injected
  // runs that still complete stay close to the golden length, so a
  // modest margin keeps hang detection cheap.
  double budget_factor = 1.6;
  std::uint64_t budget_slack = 400'000;
  // Number of golden-run checkpoints per workload (the checkpoint
  // ladder).  Each injection resumes from the latest checkpoint that
  // precedes its target's first execution, shrinking the pre-trigger
  // replay from O(golden) to O(golden / checkpoints).  0 disables the
  // ladder (every run replays from the post-boot snapshot).
  int checkpoints = 24;
  // Restore by full-image copy instead of dirty pages (the measurable
  // pre-optimization baseline; results are bit-identical either way).
  bool full_restore = false;
  // Execution engine for every machine built against this cache;
  // results are bit-identical between engines (defaults from KFI_EXEC).
  machine::ExecEngine exec_engine = machine::default_exec_engine();
  // Capacity of the per-injector forensics TraceBuffer (0 = tracing
  // off, the default).  Recording is strictly observational: outcomes
  // and the campaign result digest are bit-identical either way.
  std::size_t trace_capacity = 0;
};

// One syscall exit observed during the golden run: the cycle the
// syscall-exit store was reached and the return value about to be
// written back.  Campaign F picks its injection point (the Nth
// successful exit) and derives cascade baselines from this list.
struct SyscallExit {
  std::uint64_t cycle = 0;
  std::uint32_t eax = 0;

  // Syscall returns in (-4096, 0) are errno failures.
  bool failed() const { return eax >= 0xFFFFF001u; }
};

// One workload's complete golden artifact bundle.  Immutable once
// built; the BootState is held by shared_ptr because the ladder's
// delta snapshots resolve through it (and worker machines adopt it),
// so it must outlive every borrower.
struct WorkloadGolden {
  GoldenRun golden;
  std::unordered_set<std::uint32_t> coverage;
  std::unordered_map<std::uint32_t, machine::TouchWindow> first_touch;
  std::shared_ptr<const machine::BootState> boot;
  std::vector<machine::Checkpoint> ladder;
  // Physical byte addresses written by cpl-0 stores during the golden
  // run, address-sorted (campaign E's fault-target population: data
  // faults land on bytes the kernel demonstrably uses).
  std::vector<std::uint32_t> write_footprint;
  // Every syscall exit in golden order (campaign F's timeline).
  std::vector<SyscallExit> syscalls;
};

class GoldenCache {
 public:
  // `image` selects the kernel build to inject into (default: the
  // standard build; pass &kernel::built_hardened_kernel() for the
  // assertion-hardened variant).
  explicit GoldenCache(InjectorOptions options = {},
                       const kernel::KernelImage* image = nullptr);
  ~GoldenCache();

  GoldenCache(const GoldenCache&) = delete;
  GoldenCache& operator=(const GoldenCache&) = delete;

  // The workload's golden artifacts, building them on first request
  // (thread-safe, exactly once per workload).  Throws if the workload
  // fails to boot or its golden run does not complete.
  const WorkloadGolden& workload(const std::string& name);

  // Installs a prebuilt artifact under `name` — the campaign-service
  // path, where worker processes deserialize a golden bundle instead of
  // re-simulating boot and the golden run.  `keepalive` (may be null)
  // is retained for the entry's lifetime; it owns whatever the
  // artifact's snapshots borrow (the bundle file's mmap).  Returns
  // false when an artifact for `name` was already built or adopted
  // (the existing entry wins — references to it may be live).
  bool adopt_workload(const std::string& name, WorkloadGolden artifact,
                      std::shared_ptr<const void> keepalive);

  // Number of artifacts installed by adopt_workload (never rebuilt).
  std::uint64_t adoptions() const {
    return adoptions_.load(std::memory_order_relaxed);
  }

  // Number of golden builds actually executed (== number of distinct
  // workloads requested so far).  The built-once regression test pins
  // this against thread count.
  std::uint64_t golden_builds() const {
    return builds_.load(std::memory_order_relaxed);
  }

  const InjectorOptions& options() const { return options_; }
  const kernel::KernelImage& image() const { return image_; }
  const disk::DiskImage& root_disk() const { return root_disk_; }

  // True when /sbin/init and /lib/libc.so on `image` are byte-identical
  // to the pristine root disk (the paper's "will it reboot" check).
  bool disk_bootable(const disk::DiskImage& image) const;

 private:
  struct Entry {
    std::once_flag once;
    WorkloadGolden artifact;
    // Owner of externally-backed artifact storage (a bundle mmap);
    // null for locally built entries.
    std::shared_ptr<const void> keepalive;
  };

  Entry* entry_for(const std::string& name);

  void build(const std::string& name, WorkloadGolden& out);

  InjectorOptions options_;
  const kernel::KernelImage& image_;
  disk::DiskImage root_disk_;
  std::vector<std::uint8_t> init_pristine_;
  std::vector<std::uint8_t> libc_pristine_;

  std::mutex mutex_;  // guards entries_ (map structure only)
  std::map<std::string, std::unique_ptr<Entry>> entries_;
  std::atomic<std::uint64_t> builds_{0};
  std::atomic<std::uint64_t> adoptions_{0};
};

}  // namespace kfi::inject
