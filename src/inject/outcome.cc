#include "inject/outcome.h"

#include "kernel/koffsets.h"

namespace kfi::inject {

std::string_view campaign_name(Campaign campaign) {
  switch (campaign) {
    case Campaign::RandomNonBranch: return "A";
    case Campaign::RandomBranch: return "B";
    case Campaign::IncorrectBranch: return "C";
    case Campaign::RegisterFile: return "D";
    case Campaign::KernelData: return "E";
    case Campaign::SyscallErrno: return "F";
  }
  return "?";
}

std::string_view campaign_description(Campaign campaign) {
  switch (campaign) {
    case Campaign::RandomNonBranch:
      return "Any Random Error: a random bit in each byte of every "
             "non-branch instruction";
    case Campaign::RandomBranch:
      return "Random Branch Error: a random bit in each byte of every "
             "conditional branch instruction";
    case Campaign::IncorrectBranch:
      return "Valid but Incorrect Branch: the bit that reverses the "
             "condition of the branch instruction";
    case Campaign::RegisterFile:
      return "Register File Error: a random bit of a general-purpose "
             "register or EFLAGS flipped when a target instruction is "
             "reached";
    case Campaign::KernelData:
      return "Kernel Data Error: a random bit of a kernel data/stack "
             "byte from the golden run's written footprint flipped when "
             "a target instruction is reached";
    case Campaign::SyscallErrno:
      return "Syscall Errno Error: a successful system-call return "
             "value replaced by -errno at the syscall-exit boundary";
  }
  return "?";
}

std::string_view fault_model_name(FaultModel model) {
  switch (model) {
    case FaultModel::InstrBit: return "instr-bit";
    case FaultModel::RegisterBit: return "register-bit";
    case FaultModel::DataBit: return "data-bit";
    case FaultModel::SyscallErrno: return "syscall-errno";
  }
  return "?";
}

FaultModel campaign_fault_model(Campaign campaign) {
  switch (campaign) {
    case Campaign::RandomNonBranch:
    case Campaign::RandomBranch:
    case Campaign::IncorrectBranch:
      return FaultModel::InstrBit;
    case Campaign::RegisterFile: return FaultModel::RegisterBit;
    case Campaign::KernelData: return FaultModel::DataBit;
    case Campaign::SyscallErrno: return FaultModel::SyscallErrno;
  }
  return FaultModel::InstrBit;
}

std::string_view outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::NotActivated: return "Not Activated";
    case Outcome::NotManifested: return "Not Manifested";
    case Outcome::FailSilenceViolation: return "Fail Silence Violation";
    case Outcome::DumpedCrash: return "Dumped Crash";
    case Outcome::HangUnknown: return "Hang/Unknown Crash";
  }
  return "?";
}

std::string_view crash_cause_name(CrashCause cause) {
  switch (cause) {
    case CrashCause::NullPointer:
      return "unable to handle kernel NULL pointer dereference";
    case CrashCause::PagingRequest:
      return "unable to handle kernel paging request";
    case CrashCause::InvalidOpcode: return "invalid opcode";
    case CrashCause::GpFault: return "general protection fault";
    case CrashCause::DivideError: return "divide error";
    case CrashCause::KernelPanic: return "kernel panic";
    case CrashCause::OutOfMemory: return "out of memory";
    case CrashCause::Other: return "other";
  }
  return "?";
}

std::string_view crash_cause_short_name(CrashCause cause) {
  switch (cause) {
    case CrashCause::NullPointer: return "null-ptr";
    case CrashCause::PagingRequest: return "paging";
    case CrashCause::InvalidOpcode: return "inv-op";
    case CrashCause::GpFault: return "gp";
    case CrashCause::DivideError: return "divide";
    case CrashCause::KernelPanic: return "panic";
    case CrashCause::OutOfMemory: return "oom";
    case CrashCause::Other: return "other";
  }
  return "?";
}

CrashCause crash_cause_from_code(std::uint32_t code) {
  switch (code) {
    case kernel::CRASH_NULL_POINTER: return CrashCause::NullPointer;
    case kernel::CRASH_PAGING_REQUEST: return CrashCause::PagingRequest;
    case kernel::CRASH_INVALID_OPCODE: return CrashCause::InvalidOpcode;
    case kernel::CRASH_GP_FAULT: return CrashCause::GpFault;
    case kernel::CRASH_DIVIDE: return CrashCause::DivideError;
    case kernel::CRASH_PANIC: return CrashCause::KernelPanic;
    case kernel::CRASH_OUT_OF_MEMORY: return CrashCause::OutOfMemory;
    default: return CrashCause::Other;
  }
}

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::NotApplicable: return "n/a";
    case Severity::Normal: return "normal";
    case Severity::Severe: return "severe";
    case Severity::MostSevere: return "most severe";
  }
  return "?";
}

std::uint32_t severity_downtime_seconds(Severity severity) {
  switch (severity) {
    case Severity::NotApplicable: return 0;
    case Severity::Normal: return 4 * 60;        // automatic reboot
    case Severity::Severe: return 6 * 60;        // interactive fsck
    case Severity::MostSevere: return 55 * 60;   // reformat + reinstall
  }
  return 0;
}

}  // namespace kfi::inject
