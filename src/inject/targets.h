// Target enumeration: disassembles kernel functions and generates the
// per-campaign injection target lists (Table 4 semantics).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "inject/outcome.h"
#include "kernel/build.h"
#include "support/rng.h"

namespace kfi::inject {

struct InstructionSite {
  std::uint32_t addr = 0;
  std::vector<std::uint8_t> bytes;
  bool is_branch = false;       // any control transfer
  bool is_cond_branch = false;  // Jcc only (campaigns B and C)
  std::string disasm;
};

// Reads a function's bytes out of the kernel image and decodes it
// instruction by instruction.  Decoding stops cleanly at the function
// end; a trailing partial instruction is dropped.
std::vector<InstructionSite> enumerate_function(
    const kernel::KernelImage& image, const kernel::KernelFunction& fn);

// Returns the byte index holding the condition (bit 0 reverses it):
// 0 for short Jcc (0x7x), 1 for the 0F 8x long form; -1 if not a Jcc.
int condition_byte_index(const InstructionSite& site);

// Generates the campaign's targets for one function, as the paper does:
//  A: every byte of every non-branch instruction, a random bit each
//  B: every byte of every conditional branch, a random bit each
//  C: one target per conditional branch, the condition-reversing bit
// `repeats` multiplies the random-bit campaigns (A/B) for larger runs.
std::vector<InjectionSpec> make_targets(const kernel::KernelImage& image,
                                        const kernel::KernelFunction& fn,
                                        Campaign campaign, Rng& rng,
                                        int repeats = 1);

// Virtual address of the syscall-exit return-value store (the
// `mov %eax, 28(%esp)` after the `sc_out` label in system_call): the
// trigger/injection point of campaign F.  0 if the symbol or its
// decode is missing.
std::uint32_t syscall_return_site(const kernel::KernelImage& image);

}  // namespace kfi::inject
