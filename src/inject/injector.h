// The injection engine: executes single-bit instruction-stream error
// injections against the simulated machine and classifies the outcome
// (paper §5).
//
// Trigger-on-execution semantics exactly as in the paper: a debug
// register is armed on the target instruction's address; when the
// program counter matches, the bit is flipped in the instruction's
// binary, the cycle counter is started, and execution continues from
// the (now corrupted) instruction.  The error persists for the rest of
// the run; the machine is rebooted (snapshot-restored) between runs.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <memory>
#include <string>
#include <vector>

#include "disk/disk.h"
#include "inject/outcome.h"
#include "machine/machine.h"

namespace kfi::inject {

struct GoldenRun {
  bool ok = false;
  std::string console;
  std::uint32_t exit_code = 0;
  std::uint64_t fs_digest = 0;
  std::uint64_t cycles = 0;  // fault-free run length
  // End-of-run disk classification, precomputed once so a run proven to
  // reconverge onto the golden timeline can take the golden outcome
  // without re-running fsck on an identical image.
  bool bootable = true;
  bool fs_damaged = false;
  bool fsck_unrepairable = false;
  bool repair_verified = false;
};

struct InjectorOptions {
  // Watchdog budget multiplier over the golden run length.  Injected
  // runs that still complete stay close to the golden length, so a
  // modest margin keeps hang detection cheap.
  double budget_factor = 1.6;
  std::uint64_t budget_slack = 400'000;
  // Number of golden-run checkpoints per workload (the checkpoint
  // ladder).  Each injection resumes from the latest checkpoint that
  // precedes its target's first execution, shrinking the pre-trigger
  // replay from O(golden) to O(golden / checkpoints).  0 disables the
  // ladder (every run replays from the post-boot snapshot).
  int checkpoints = 24;
  // Restore by full-image copy instead of dirty pages (the measurable
  // pre-optimization baseline; results are bit-identical either way).
  bool full_restore = false;
  // Execution engine for every machine this injector builds; results
  // are bit-identical between engines (defaults from KFI_EXEC).
  machine::ExecEngine exec_engine = machine::default_exec_engine();
};

class Injector {
 public:
  // `image` selects the kernel build to inject into (default: the
  // standard build; pass &kernel::built_hardened_kernel() for the
  // assertion-hardened variant).
  explicit Injector(InjectorOptions options = {},
                    const kernel::KernelImage* image = nullptr);
  ~Injector();

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  // Fault-free reference run for a workload (cached).
  const GoldenRun& golden(const std::string& workload);

  // Kernel instruction addresses executed by the golden run.  Since
  // execution before the flip is identical to the golden run, a target
  // outside this set can never activate — the injector classifies it
  // as NotActivated without running.
  const std::unordered_set<std::uint32_t>& coverage(
      const std::string& workload);

  // Executes one injection and classifies it.
  InjectionResult run_one(const InjectionSpec& spec);

  std::uint64_t runs_executed() const { return runs_; }

  // First/last cycle at which the golden run executes each kernel
  // address.  `first` is the checkpoint-selection key (campaigns also
  // sort by it so runs resuming from the same rung are adjacent);
  // `last` bounds reconvergence fast-forward.
  const std::unordered_map<std::uint32_t, machine::TouchWindow>& first_touch(
      const std::string& workload);

  const InjectorOptions& options() const { return options_; }
  const kernel::KernelImage& image() const { return image_; }

  // Runs that resumed from a ladder checkpoint vs from the post-boot
  // snapshot, and substrate counters summed over all workload machines.
  std::uint64_t checkpoint_hits() const { return ckpt_hits_; }
  std::uint64_t checkpoint_misses() const { return ckpt_misses_; }
  // Runs whose post-trigger state was proven identical to a golden rung
  // and took the golden outcome without simulating the remainder.
  std::uint64_t reconverged() const { return reconverged_; }
  // Cycles simulated before the trigger fired (the replay the ladder
  // shrinks from O(golden) to O(rung spacing)) and after it (inherent
  // fault simulation no restore scheme can skip), summed over all runs.
  std::uint64_t pre_trigger_cycles() const { return pre_trigger_cycles_; }
  std::uint64_t post_trigger_cycles() const { return post_trigger_cycles_; }
  machine::PerfStats perf_stats() const;

 private:
  machine::Machine& machine_for(const std::string& workload);
  bool disk_bootable(const disk::DiskImage& image) const;

  InjectorOptions options_;
  const kernel::KernelImage& image_;
  disk::DiskImage root_disk_;
  std::vector<std::uint8_t> init_pristine_;
  std::vector<std::uint8_t> libc_pristine_;
  std::map<std::string, std::unique_ptr<machine::Machine>> machines_;
  std::map<std::string, GoldenRun> goldens_;
  std::map<std::string, std::unordered_set<std::uint32_t>> coverage_;
  std::map<std::string, std::unordered_map<std::uint32_t, machine::TouchWindow>>
      first_touch_;
  std::map<std::string, std::vector<machine::Checkpoint>> ladders_;
  std::uint64_t runs_ = 0;
  std::uint64_t ckpt_hits_ = 0;
  std::uint64_t ckpt_misses_ = 0;
  std::uint64_t reconverged_ = 0;
  std::uint64_t pre_trigger_cycles_ = 0;
  std::uint64_t post_trigger_cycles_ = 0;
};

}  // namespace kfi::inject
