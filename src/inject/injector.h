// The injection engine: executes single-bit instruction-stream error
// injections against the simulated machine and classifies the outcome
// (paper §5).
//
// Trigger-on-execution semantics exactly as in the paper: a debug
// register is armed on the target instruction's address; when the
// program counter matches, the bit is flipped in the instruction's
// binary, the cycle counter is started, and execution continues from
// the (now corrupted) instruction.  The error persists for the rest of
// the run; the machine is rebooted (snapshot-restored) between runs.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>
#include <memory>
#include <string>
#include <vector>

#include "disk/disk.h"
#include "inject/outcome.h"
#include "machine/machine.h"

namespace kfi::inject {

struct GoldenRun {
  bool ok = false;
  std::string console;
  std::uint32_t exit_code = 0;
  std::uint64_t fs_digest = 0;
  std::uint64_t cycles = 0;  // fault-free run length
};

struct InjectorOptions {
  // Watchdog budget multiplier over the golden run length.  Injected
  // runs that still complete stay close to the golden length, so a
  // modest margin keeps hang detection cheap.
  double budget_factor = 1.6;
  std::uint64_t budget_slack = 400'000;
};

class Injector {
 public:
  // `image` selects the kernel build to inject into (default: the
  // standard build; pass &kernel::built_hardened_kernel() for the
  // assertion-hardened variant).
  explicit Injector(InjectorOptions options = {},
                    const kernel::KernelImage* image = nullptr);
  ~Injector();

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  // Fault-free reference run for a workload (cached).
  const GoldenRun& golden(const std::string& workload);

  // Kernel instruction addresses executed by the golden run.  Since
  // execution before the flip is identical to the golden run, a target
  // outside this set can never activate — the injector classifies it
  // as NotActivated without running.
  const std::unordered_set<std::uint32_t>& coverage(
      const std::string& workload);

  // Executes one injection and classifies it.
  InjectionResult run_one(const InjectionSpec& spec);

  std::uint64_t runs_executed() const { return runs_; }

 private:
  machine::Machine& machine_for(const std::string& workload);
  bool disk_bootable(const disk::DiskImage& image) const;

  InjectorOptions options_;
  const kernel::KernelImage& image_;
  disk::DiskImage root_disk_;
  std::vector<std::uint8_t> init_pristine_;
  std::vector<std::uint8_t> libc_pristine_;
  std::map<std::string, std::unique_ptr<machine::Machine>> machines_;
  std::map<std::string, GoldenRun> goldens_;
  std::map<std::string, std::unordered_set<std::uint32_t>> coverage_;
  std::uint64_t runs_ = 0;
};

}  // namespace kfi::inject
