// The injection engine: executes single-bit instruction-stream error
// injections against the simulated machine and classifies the outcome
// (paper §5).
//
// Trigger-on-execution semantics exactly as in the paper: a debug
// register is armed on the target instruction's address; when the
// program counter matches, the bit is flipped in the instruction's
// binary, the cycle counter is started, and execution continues from
// the (now corrupted) instruction.  The error persists for the rest of
// the run; the machine is rebooted (snapshot-restored) between runs.
//
// An Injector owns mutable per-run state only: one Machine per
// workload (started by adopting the shared post-boot BootState, never
// by simulating boot) plus its private checkpoint memos and counters.
// All golden artifacts live in the shared GoldenCache — several
// Injectors on different threads can borrow one cache and run
// concurrently, each bit-identical to a serial run of its share.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <memory>
#include <string>
#include <vector>

#include "disk/disk.h"
#include "inject/golden.h"
#include "inject/outcome.h"
#include "machine/machine.h"

namespace kfi::trace {
class TraceBuffer;
}

namespace kfi::inject {

class Injector {
 public:
  // Standalone construction: builds a private GoldenCache.  `image`
  // selects the kernel build to inject into (default: the standard
  // build; pass &kernel::built_hardened_kernel() for the
  // assertion-hardened variant).
  explicit Injector(InjectorOptions options = {},
                    const kernel::KernelImage* image = nullptr);
  // Campaign construction: borrows a shared (possibly concurrently
  // used) cache; golden warm-up already done there is not repeated.
  explicit Injector(std::shared_ptr<GoldenCache> cache);
  ~Injector();

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  // The shared artifact cache (never null).
  const std::shared_ptr<GoldenCache>& cache() const { return cache_; }

  // Fault-free reference run for a workload (cached in the shared
  // GoldenCache; built on first request by whoever asks first).
  const GoldenRun& golden(const std::string& workload) {
    return cache_->workload(workload).golden;
  }

  // Kernel instruction addresses executed by the golden run.  Since
  // execution before the flip is identical to the golden run, a target
  // outside this set can never activate — the injector classifies it
  // as NotActivated without running.
  const std::unordered_set<std::uint32_t>& coverage(
      const std::string& workload) {
    return cache_->workload(workload).coverage;
  }

  // Executes one injection and classifies it.
  InjectionResult run_one(const InjectionSpec& spec);

  std::uint64_t runs_executed() const { return runs_; }

  // First/last cycle at which the golden run executes each kernel
  // address.  `first` is the checkpoint-selection key (campaigns also
  // sort by it so runs resuming from the same rung are adjacent);
  // `last` bounds reconvergence fast-forward.
  const std::unordered_map<std::uint32_t, machine::TouchWindow>& first_touch(
      const std::string& workload) {
    return cache_->workload(workload).first_touch;
  }

  const InjectorOptions& options() const { return cache_->options(); }
  const kernel::KernelImage& image() const { return cache_->image(); }

  // Runs that resumed from a ladder checkpoint vs from the post-boot
  // snapshot, and substrate counters summed over all workload machines.
  std::uint64_t checkpoint_hits() const { return ckpt_hits_; }
  std::uint64_t checkpoint_misses() const { return ckpt_misses_; }
  // Runs whose post-trigger state was proven identical to a golden rung
  // and took the golden outcome without simulating the remainder.
  std::uint64_t reconverged() const { return reconverged_; }
  // Cycles simulated before the trigger fired (the replay the ladder
  // shrinks from O(golden) to O(rung spacing)) and after it (inherent
  // fault simulation no restore scheme can skip), summed over all runs.
  std::uint64_t pre_trigger_cycles() const { return pre_trigger_cycles_; }
  std::uint64_t post_trigger_cycles() const { return post_trigger_cycles_; }
  machine::PerfStats perf_stats() const;

  // The forensics trace buffer, or nullptr when
  // InjectorOptions::trace_capacity is 0.  run_one() clears it on
  // entry, so after a run it holds that injection's event window
  // (trigger, flip, traps, crash report).  Lifetime recorded/dropped
  // totals survive the clears and flow into perf_stats().
  trace::TraceBuffer* trace() const { return trace_.get(); }

 private:
  // This injector's mutable execution state for one workload: a worker
  // machine started from the shared BootState, plus private dirty-
  // tracking memos for each shared ladder rung.
  struct WorkloadState {
    const WorkloadGolden* artifact = nullptr;
    std::unique_ptr<machine::Machine> machine;
    std::vector<machine::CheckpointMemo> rung_memos;  // parallel to ladder
  };

  WorkloadState& state_for(const std::string& workload);

  // Trigger-at-instruction models (InstrBit / RegisterBit / DataBit):
  // arm a breakpoint on the target instruction, apply the model's fault
  // when it fires, then run out (with reconvergence fast-forward).
  InjectionResult run_triggered(const InjectionSpec& spec,
                                InjectionResult result);
  // Campaign F: overwrite EAX with -errno at the Nth successful golden
  // syscall exit and count the failure cascade that follows.
  InjectionResult run_syscall_errno(const InjectionSpec& spec,
                                    InjectionResult result);
  // Shared end-of-run classification: disk forensics, outcome switch on
  // the run exit, and the severity taxonomy.
  void classify(InjectionResult& result, const machine::RunResult& run,
                machine::Machine& machine, const GoldenRun& ref);

  std::shared_ptr<GoldenCache> cache_;
  // One buffer shared by all of this injector's workload machines (a
  // run touches exactly one machine, so the window stays coherent).
  std::unique_ptr<trace::TraceBuffer> trace_;
  std::map<std::string, std::unique_ptr<WorkloadState>> states_;
  std::uint64_t runs_ = 0;
  std::uint64_t ckpt_hits_ = 0;
  std::uint64_t ckpt_misses_ = 0;
  std::uint64_t reconverged_ = 0;
  std::uint64_t pre_trigger_cycles_ = 0;
  std::uint64_t post_trigger_cycles_ = 0;
};

}  // namespace kfi::inject
