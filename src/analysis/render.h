// Text renderers that print each experiment in the layout of the
// paper's tables and figures (the bench harness output).
#pragma once

#include <string>
#include <vector>

#include "analysis/aggregate.h"
#include "profile/profile.h"

namespace kfi::analysis {

// Figure 1: kernel source size per subsystem.
std::string render_fig1(const kernel::KernelImage& image);

// Table 1: function distribution among kernel subsystems.
std::string render_table1(const profile::ProfileResult& prof,
                          double coverage);

// Table 4: campaign definitions.
std::string render_table4();

// Figure 4: one campaign's outcome table plus its overall distribution.
std::string render_outcome_table(const OutcomeTable& table);

// Figure 6: crash-cause distribution for one campaign.
std::string render_crash_causes(const CrashCauseDistribution& dist);

// Figure 7: crash latency distribution for one campaign.
std::string render_latency(const LatencyDistribution& dist);

// Figure 8: propagation graph for one faulted subsystem.
std::string render_propagation(const PropagationGraph& graph);

// Campaign F: per-errno cascade table (syscalls still run after the
// forced failure, and how many of them failed in turn).
std::string render_cascade(const CascadeTable& table);

// Table 5 / §7.1: severity summary with the most-severe inventory.
std::string render_severity(const inject::CampaignRun& run,
                            const SeveritySummary& summary);

}  // namespace kfi::analysis
