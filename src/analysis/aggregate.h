// Aggregation of injection results into the paper's tables and figures.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "inject/campaign.h"
#include "inject/outcome.h"
#include "support/histogram.h"

namespace kfi::analysis {

// The four subsystems the paper's tables break out.
const std::vector<kernel::Subsystem>& table_subsystems();

// ---- Figure 4: outcome statistics ----

struct OutcomeRow {
  kernel::Subsystem subsystem = kernel::Subsystem::Unknown;
  std::size_t functions = 0;  // distinct functions injected (and activated set)
  std::uint64_t injected = 0;
  std::uint64_t activated = 0;
  std::uint64_t not_manifested = 0;
  std::uint64_t fail_silence = 0;
  std::uint64_t crash_hang = 0;  // dumped crash + hang/unknown
};

struct OutcomeTable {
  inject::Campaign campaign = inject::Campaign::RandomNonBranch;
  std::vector<OutcomeRow> rows;  // one per table subsystem, in order
  OutcomeRow total;
  // Overall distribution (the pie chart): over activated errors.
  std::uint64_t dumped_crash = 0;
  std::uint64_t hang_unknown = 0;
};

OutcomeTable make_outcome_table(const inject::CampaignRun& run);

// ---- Figure 6: crash-cause distribution ----

struct CrashCauseDistribution {
  inject::Campaign campaign = inject::Campaign::RandomNonBranch;
  std::map<inject::CrashCause, std::uint64_t> counts;
  std::uint64_t total = 0;
  // Share covered by the four dominant causes (the paper's 95% claim).
  double top4_share() const;
};

CrashCauseDistribution make_crash_causes(const inject::CampaignRun& run);

// ---- Figure 7: crash latency ----

struct LatencyDistribution {
  inject::Campaign campaign = inject::Campaign::RandomNonBranch;
  std::map<kernel::Subsystem, Histogram> by_subsystem;
  Histogram overall = Histogram::latency_decades();
};

LatencyDistribution make_latency(const inject::CampaignRun& run);

// ---- Figure 8: error propagation ----

struct PropagationEdge {
  kernel::Subsystem from = kernel::Subsystem::Unknown;
  kernel::Subsystem to = kernel::Subsystem::Unknown;
  std::uint64_t crashes = 0;
  std::map<inject::CrashCause, std::uint64_t> causes;
};

struct PropagationGraph {
  inject::Campaign campaign = inject::Campaign::RandomNonBranch;
  kernel::Subsystem from = kernel::Subsystem::Unknown;
  std::uint64_t total_crashes = 0;
  std::vector<PropagationEdge> edges;  // including the self edge
  double self_share() const;           // fraction crashing in `from`
};

PropagationGraph make_propagation(const inject::CampaignRun& run,
                                  kernel::Subsystem from);

// Figure 8, trace-derived: make_propagation() reads each crash's final
// oops eip; this variant replays every DumpedCrash under the forensics
// trace and attributes the edge to the subsystem of the *first* trap or
// memory fault observed after the injection flip — the earliest
// machine-visible point the corruption surfaced, which is what the
// paper's dump analysis actually reads off the call trace.  Replays are
// deterministic, so the result is a pure function of the run.
struct TracedPropagation {
  PropagationGraph graph;
  std::size_t replayed = 0;   // crashes replayed under trace
  std::size_t skipped = 0;    // crashes beyond max_replays (reported, not silent)
  std::size_t mismatches = 0; // replays that failed to crash again (expect 0)
};

// `tracer` must have been built with InjectorOptions::trace_capacity >
// 0 (throws std::invalid_argument otherwise).  `max_replays` caps the
// replay cost; 0 = replay every crash.
TracedPropagation make_traced_propagation(inject::Injector& tracer,
                                          const inject::CampaignRun& run,
                                          kernel::Subsystem from,
                                          std::size_t max_replays = 0);

// ---- Campaign F: errno-injection cascade ----

// Per-errno accounting of what a forced syscall failure did to the
// rest of the workload: how many syscalls still ran after the
// injection and how many of them the kernel itself turned into errno
// failures (the cascade).
struct CascadeRow {
  std::uint32_t errno_value = 0;
  std::uint64_t injected = 0;
  std::uint64_t activated = 0;
  std::uint64_t not_manifested = 0;
  std::uint64_t fail_silence = 0;
  std::uint64_t crash_hang = 0;
  std::uint64_t total_after = 0;    // syscall exits after the injection
  std::uint64_t total_cascade = 0;  // of those, errno failures
  std::uint64_t max_cascade = 0;    // longest single-run cascade
};

struct CascadeTable {
  inject::Campaign campaign = inject::Campaign::SyscallErrno;
  std::vector<CascadeRow> rows;  // ascending errno
  CascadeRow total;
};

CascadeTable make_cascade(const inject::CampaignRun& run);

// ---- Table 5 / §7.1: crash severity ----

struct SeveritySummary {
  std::uint64_t normal = 0;
  std::uint64_t severe = 0;
  std::uint64_t most_severe = 0;
  // Indices into the campaign's results for severe+ cases.
  std::vector<std::size_t> severe_indices;
  std::vector<std::size_t> most_severe_indices;
  // Modeled downtime across all crashes, in seconds.
  std::uint64_t total_downtime_seconds = 0;
};

SeveritySummary make_severity(const inject::CampaignRun& run);

}  // namespace kfi::analysis
