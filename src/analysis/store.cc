#include "analysis/store.h"

#include <algorithm>
#include <filesystem>
#include <queue>
#include <utility>

#include "support/strings.h"

namespace kfi::analysis {
namespace {

constexpr std::uint32_t kShardMagic = 0x4B464953;  // "KFIS"
constexpr std::uint32_t kShardVersion = 1;
// v2 appends the fault-model fields to every record; shards holding
// only InstrBit results keep writing v1 so their bytes (and therefore
// their content-hash names) are unchanged from before campaigns D/E/F.
constexpr std::uint32_t kShardVersionExtended = 2;

std::string shard_file_name(std::uint64_t index, std::uint64_t hash) {
  return format("shard_%06llu_%016llx.kfis",
                static_cast<unsigned long long>(index),
                static_cast<unsigned long long>(hash));
}

std::string shard_prefix(std::uint64_t index) {
  return format("shard_%06llu_", static_cast<unsigned long long>(index));
}

// The hash component of "shard_NNNNNN_<16 hex>.kfis", or nullopt when
// the name does not have that shape.
std::optional<std::uint64_t> hash_from_name(const std::string& name,
                                            const std::string& prefix) {
  const std::string suffix = ".kfis";
  if (!starts_with(name, prefix)) return std::nullopt;
  if (name.size() != prefix.size() + 16 + suffix.size()) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t hash = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const char c = name[prefix.size() + i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
    hash = (hash << 4) | digit;
  }
  return hash;
}

}  // namespace

void ResultDigest::mix(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ = (h_ ^ static_cast<std::uint8_t>(v >> (8 * i))) * kFnvPrime;
  }
}

void ResultDigest::add(const inject::InjectionResult& r) {
  mix(static_cast<std::uint64_t>(r.outcome));
  mix(r.activation_cycle);
  mix(static_cast<std::uint64_t>(r.cause));
  mix(r.crash_eip);
  mix(r.crash_addr);
  mix(r.latency_cycles);
  mix(static_cast<std::uint64_t>(r.severity));
  mix((r.fs_damaged ? 1u : 0u) | (r.bootable ? 2u : 0u) |
      (r.propagated ? 4u : 0u));
  mix(r.spec.instr_addr);
  // Extended fault models fold their extra identifying fields too.  An
  // InstrBit result mixes nothing further, so the pinned A/B/C digest
  // (54fdd95d1638c920) is byte-for-byte the historical fold.
  if (r.spec.model != inject::FaultModel::InstrBit) {
    mix(static_cast<std::uint64_t>(r.spec.model));
    mix(r.spec.target_reg);
    mix(r.spec.data_index);
    mix(r.spec.errno_value);
    mix(r.data_addr);
    mix(r.syscalls_after);
    mix(r.cascade_syscalls);
  }
}

bool result_is_extended(const inject::InjectionResult& r) {
  return r.spec.model != inject::FaultModel::InstrBit;
}

std::uint64_t results_digest(const std::vector<inject::CampaignRun>& runs) {
  ResultDigest digest;
  for (const inject::CampaignRun& run : runs) {
    for (const inject::InjectionResult& r : run.results) digest.add(r);
  }
  return digest.value();
}

void write_result(ByteWriter& writer, const inject::InjectionResult& r,
                  bool extended) {
  writer.u32(static_cast<std::uint32_t>(r.spec.campaign));
  writer.str(r.spec.function);
  writer.u32(static_cast<std::uint32_t>(r.spec.subsystem));
  writer.u32(r.spec.instr_addr);
  writer.u32(r.spec.instr_len);
  writer.u32(r.spec.byte_index);
  writer.u32(r.spec.bit_index);
  writer.str(r.spec.workload);
  writer.u32(static_cast<std::uint32_t>(r.outcome));
  writer.u64(r.activation_cycle);
  writer.u32(static_cast<std::uint32_t>(r.cause));
  writer.u32(r.crash_eip);
  writer.u32(r.crash_addr);
  writer.u32(static_cast<std::uint32_t>(r.crash_subsystem));
  writer.u32(r.propagated ? 1 : 0);
  writer.u64(r.latency_cycles);
  writer.u32(static_cast<std::uint32_t>(r.severity));
  writer.u32(r.fs_damaged ? 1 : 0);
  writer.u32(r.bootable ? 1 : 0);
  writer.u32(r.repair_verified ? 1 : 0);
  writer.str(r.disasm_before);
  writer.str(r.disasm_after);
  if (!extended) return;
  writer.u32(static_cast<std::uint32_t>(r.spec.model));
  writer.u32(r.spec.target_reg);
  writer.u32(r.spec.data_addr);
  writer.u32(r.spec.data_index);
  writer.u32(r.spec.errno_value);
  writer.u32(r.data_addr);
  writer.u32(r.syscalls_after);
  writer.u32(r.cascade_syscalls);
}

bool read_result(ByteReader& reader, inject::InjectionResult& out,
                 bool extended) {
  out.spec.campaign = static_cast<inject::Campaign>(reader.u32());
  out.spec.function = reader.str();
  out.spec.subsystem = static_cast<kernel::Subsystem>(reader.u32());
  out.spec.instr_addr = reader.u32();
  out.spec.instr_len = static_cast<std::uint8_t>(reader.u32());
  out.spec.byte_index = static_cast<std::uint8_t>(reader.u32());
  out.spec.bit_index = static_cast<std::uint8_t>(reader.u32());
  out.spec.workload = reader.str();
  out.outcome = static_cast<inject::Outcome>(reader.u32());
  out.activation_cycle = reader.u64();
  out.cause = static_cast<inject::CrashCause>(reader.u32());
  out.crash_eip = reader.u32();
  out.crash_addr = reader.u32();
  out.crash_subsystem = static_cast<kernel::Subsystem>(reader.u32());
  out.propagated = reader.u32() != 0;
  out.latency_cycles = reader.u64();
  out.severity = static_cast<inject::Severity>(reader.u32());
  out.fs_damaged = reader.u32() != 0;
  out.bootable = reader.u32() != 0;
  out.repair_verified = reader.u32() != 0;
  out.disasm_before = reader.str();
  out.disasm_after = reader.str();
  if (extended) {
    out.spec.model = static_cast<inject::FaultModel>(reader.u32());
    out.spec.target_reg = static_cast<std::uint8_t>(reader.u32());
    out.spec.data_addr = reader.u32();
    out.spec.data_index = reader.u32();
    out.spec.errno_value = reader.u32();
    out.data_addr = reader.u32();
    out.syscalls_after = reader.u32();
    out.cascade_syscalls = reader.u32();
  }
  return reader.ok();
}

std::string ShardStore::write_shard(std::uint64_t shard_index,
                                    std::uint64_t config_hash,
                                    std::vector<ShardRecord> records) const {
  // Records are written sorted by spec index so the aggregator's k-way
  // merge only ever needs the head of each shard.
  std::sort(records.begin(), records.end(),
            [](const ShardRecord& a, const ShardRecord& b) {
              return a.spec_index < b.spec_index;
            });
  bool extended = false;
  for (const ShardRecord& record : records) {
    if (result_is_extended(record.result)) {
      extended = true;
      break;
    }
  }
  ByteWriter writer;
  writer.u32(kShardMagic);
  writer.u32(extended ? kShardVersionExtended : kShardVersion);
  writer.u64(shard_index);
  writer.u64(config_hash);
  writer.u64(records.size());
  for (const ShardRecord& record : records) {
    writer.u64(record.spec_index);
    write_result(writer, record.result, extended);
  }
  const std::string payload = writer.take();
  const std::uint64_t hash = fnv1a_bytes(payload.data(), payload.size());
  const std::string path = dir_ + "/" + shard_file_name(shard_index, hash);
  if (!atomic_write_file(path, payload)) return "";
  return path;
}

std::optional<std::string> ShardStore::find_shard(
    std::uint64_t shard_index) const {
  const std::string prefix = shard_prefix(shard_index);
  std::error_code ec;
  std::optional<std::string> fallback;
  // Deterministic scan order so concurrent observers agree on the
  // winner when (transiently) both a corrupt artifact and its re-run
  // exist.
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    if (!hash_from_name(name, prefix).has_value()) continue;
    const std::string path = dir_ + "/" + name;
    if (verify_shard(path)) return path;
    fallback = path;
  }
  return fallback;
}

bool ShardStore::verify_shard(const std::string& path) {
  const std::string name =
      std::filesystem::path(path).filename().string();
  const std::size_t sep = name.rfind('_');
  if (sep == std::string::npos) return false;
  const auto named = hash_from_name(name, name.substr(0, sep + 1));
  if (!named.has_value()) return false;
  const auto actual = file_content_hash(path);
  return actual.has_value() && *actual == *named;
}

void ShardStore::discard_shard(std::uint64_t shard_index) const {
  const std::string prefix = shard_prefix(shard_index);
  std::error_code ec;
  std::vector<std::string> victims;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (hash_from_name(name, prefix).has_value()) {
      victims.push_back(entry.path().string());
    }
  }
  for (const std::string& path : victims) {
    std::filesystem::remove(path, ec);
  }
}

std::optional<ShardCursor> ShardCursor::open(const std::string& path,
                                             std::uint64_t expect_index,
                                             std::uint64_t expect_config) {
  std::shared_ptr<const MappedFile> file = MappedFile::map(path);
  if (file == nullptr) return std::nullopt;
  ByteReader reader(file->data(), file->size());
  if (reader.u32() != kShardMagic) return std::nullopt;
  const std::uint32_t version = reader.u32();
  if (version != kShardVersion && version != kShardVersionExtended) {
    return std::nullopt;
  }
  const std::uint64_t index = reader.u64();
  const std::uint64_t config = reader.u64();
  const std::uint64_t count = reader.u64();
  if (!reader.ok() || index != expect_index || config != expect_config) {
    return std::nullopt;
  }
  ShardCursor cursor(std::move(file), std::move(reader), index, count);
  cursor.extended_ = version == kShardVersionExtended;
  return cursor;
}

bool ShardCursor::next(ShardRecord& out) {
  if (!ok_ || read_ >= count_) return false;
  out.spec_index = reader_.u64();
  if (!read_result(reader_, out.result, extended_)) {
    ok_ = false;
    return false;
  }
  ++read_;
  return true;
}

bool merge_shards(std::vector<ShardCursor>& cursors,
                  const std::function<bool(const ShardRecord&)>& fn) {
  // Min-heap of (spec_index, cursor position); one in-flight record per
  // cursor is the whole working set.
  using Head = std::pair<std::uint64_t, std::size_t>;
  std::priority_queue<Head, std::vector<Head>, std::greater<Head>> heap;
  std::vector<ShardRecord> heads(cursors.size());
  std::vector<std::uint64_t> last_in_shard(cursors.size(), 0);
  for (std::size_t i = 0; i < cursors.size(); ++i) {
    if (cursors[i].next(heads[i])) {
      last_in_shard[i] = heads[i].spec_index;
      heap.emplace(heads[i].spec_index, i);
    } else if (!cursors[i].ok()) {
      return false;
    }
  }
  bool first = true;
  std::uint64_t last = 0;
  while (!heap.empty()) {
    const auto [index, i] = heap.top();
    heap.pop();
    if (!first && index <= last) return false;  // duplicate across shards
    first = false;
    last = index;
    if (!fn(heads[i])) return false;
    if (cursors[i].next(heads[i])) {
      // Within-shard order is a file invariant (write_shard sorts);
      // enforce it so a tampered file cannot smuggle a duplicate past
      // the cross-shard check.
      if (heads[i].spec_index <= last_in_shard[i]) return false;
      last_in_shard[i] = heads[i].spec_index;
      heap.emplace(heads[i].spec_index, i);
    } else if (!cursors[i].ok()) {
      return false;
    }
  }
  return true;
}

StreamingFold::StreamingFold(std::vector<std::uint64_t> counts,
                             bool materialize)
    : counts_(std::move(counts)), materialize_(materialize) {
  for (const std::uint64_t c : counts_) total_ += c;
  if (materialize_) {
    slots_.resize(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      slots_[i].reserve(static_cast<std::size_t>(counts_[i]));
    }
  }
}

bool StreamingFold::add(const ShardRecord& record) {
  // A complete disjoint shard set merges to exactly 0..total-1; any
  // deviation means a shard is missing, duplicated, or mis-indexed.
  if (record.spec_index != next_ || next_ >= total_) return false;
  ++next_;
  digest_.add(record.result);
  if (materialize_) {
    std::uint64_t index = record.spec_index;
    for (std::size_t slot = 0; slot < counts_.size(); ++slot) {
      if (index < counts_[slot]) {
        slots_[slot].push_back(record.result);
        break;
      }
      index -= counts_[slot];
    }
  }
  return true;
}

}  // namespace kfi::analysis
