// Markdown campaign report: a single self-contained document with every
// table and figure of the study, generated from one or more campaign
// runs (the artifact a user of the framework publishes).
#pragma once

#include <string>
#include <vector>

#include "analysis/aggregate.h"
#include "profile/profile.h"

namespace kfi::analysis {

struct ReportInputs {
  const profile::ProfileResult* profile = nullptr;  // optional
  std::vector<const inject::CampaignRun*> campaigns;
  std::string title = "Kernel error-injection campaign report";
};

std::string render_markdown_report(const ReportInputs& inputs);

}  // namespace kfi::analysis
