// Content-addressed shard artifact store + streaming aggregation.
//
// The process-sharded campaign service (src/serve) splits a campaign's
// spec space into contiguous ranges of the locality-sorted execution
// order.  Each worker process streams its finished shard into this
// store as `shard_<index>_<hash16>.kfis`, where the 16 hex digits are
// the FNV-1a of the file's own bytes — so a truncated, bit-flipped, or
// half-written artifact is detected by rehashing the file, no trust in
// the writer required.  Files land via atomic rename (support/fsio), so
// a shard either exists wholly or not at all; a killed campaign resumes
// by re-running exactly the shards whose artifacts are missing or fail
// verification.
//
// Aggregation is streaming and memory-bounded: every shard file holds
// its records sorted by global spec index, ShardCursor walks one
// record at a time over a read-only mmap, and merge_shards() k-way
// merges the cursors into the single ascending spec-order stream —
// the exact order the in-process path folds its digest in, which is
// why the sharded digest is bit-identical to run_campaign()'s.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "inject/campaign.h"
#include "support/fsio.h"
#include "support/serial.h"

namespace kfi::analysis {

// Streaming fold of the campaign result digest: FNV-1a over every
// outcome-identifying field of each result, in spec order across the
// campaign sequence.  Must match bench_throughput's historical inline
// implementation bit-for-bit — the pinned smoke digest
// (54fdd95d1638c920) is this fold over campaigns A, B, C.
class ResultDigest {
 public:
  void add(const inject::InjectionResult& r);
  std::uint64_t value() const { return h_; }

 private:
  void mix(std::uint64_t v);
  std::uint64_t h_ = kFnvOffset;
};

// The digest over complete in-memory runs (the in-process path).
std::uint64_t results_digest(const std::vector<inject::CampaignRun>& runs);

// One result record with the exact field order of the campaign cache
// format (analysis/io.cc, format v4) — the shard files and the cache
// files speak the same per-result byte layout.  `extended` appends the
// fault-model fields (spec model/target/data/errno plus the resolved
// data address and cascade counters) after the v4 layout; files whose
// results are all InstrBit omit them so their bytes never change.
void write_result(ByteWriter& writer, const inject::InjectionResult& r,
                  bool extended = false);
bool read_result(ByteReader& reader, inject::InjectionResult& out,
                 bool extended = false);

// True when `r` carries fault-model fields the v4/v1 record layouts
// cannot represent (any model other than InstrBit).
bool result_is_extended(const inject::InjectionResult& r);

// One shard record: the result plus its position in the global spec
// order (campaign A's specs first, then B, then C — the order the
// digest folds in).
struct ShardRecord {
  std::uint64_t spec_index = 0;
  inject::InjectionResult result;
};

class ShardCursor;

class ShardStore {
 public:
  explicit ShardStore(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  // Serializes `records` (sorted by spec_index internally) and writes
  // the artifact crash-safely under its content-hash name.  Returns
  // the final path, or "" on I/O failure.  `config_hash` ties the
  // shard to one campaign manifest; aggregation rejects strays.
  std::string write_shard(std::uint64_t shard_index,
                          std::uint64_t config_hash,
                          std::vector<ShardRecord> records) const;

  // Path of shard `index`'s artifact if one exists (any hash), or
  // nullopt.  Scans the directory; with multiple candidates (a
  // corrupt artifact plus its re-run) the one whose name matches its
  // content wins.
  std::optional<std::string> find_shard(std::uint64_t shard_index) const;

  // Rehashes the file and compares against the hash embedded in its
  // name.  False for truncated/corrupted/renamed artifacts.
  static bool verify_shard(const std::string& path);

  // Removes shard `index`'s artifacts (used after verification fails,
  // so the shard re-runs).
  void discard_shard(std::uint64_t shard_index) const;

 private:
  std::string dir_;
};

// Streaming reader over one shard artifact: validates the header, then
// yields records one at a time straight out of a read-only mmap (no
// whole-shard vector is ever materialized).
class ShardCursor {
 public:
  // Opens and header-checks `path`.  Rejects wrong magic/version, a
  // shard index != `expect_index`, or a config hash != `expect_config`.
  static std::optional<ShardCursor> open(const std::string& path,
                                         std::uint64_t expect_index,
                                         std::uint64_t expect_config);

  // Advances to the next record; false at end-of-shard or on a corrupt
  // tail (distinguish via ok()).
  bool next(ShardRecord& out);

  bool ok() const { return ok_; }
  std::uint64_t records() const { return count_; }
  std::uint64_t shard_index() const { return index_; }

 private:
  ShardCursor(std::shared_ptr<const MappedFile> file, ByteReader reader,
              std::uint64_t index, std::uint64_t count)
      : file_(std::move(file)),
        reader_(std::move(reader)),
        index_(index),
        count_(count) {}

  std::shared_ptr<const MappedFile> file_;
  ByteReader reader_;
  std::uint64_t index_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t read_ = 0;
  bool ok_ = true;
  bool extended_ = false;  // v2 record layout (fault-model fields)
};

// K-way merge of shard cursors into one ascending spec-index stream.
// `fn` is invoked once per record, in strictly increasing spec order;
// return false from it to abort.  Returns false on any cursor error,
// an out-of-order shard file, or a duplicate spec index across shards.
bool merge_shards(std::vector<ShardCursor>& cursors,
                  const std::function<bool(const ShardRecord&)>& fn);

// Consumes the merged stream: verifies it is exactly the contiguous
// sequence 0..total-1, folds the result digest, and (optionally)
// materializes the per-campaign result vectors.  `counts[i]` is the
// number of specs in campaign slot i (slot boundaries of the global
// index space).
class StreamingFold {
 public:
  StreamingFold(std::vector<std::uint64_t> counts, bool materialize);

  // Feed the next merged record; false on a gap, duplicate, or
  // overrun (the shard set does not tile the spec space).
  bool add(const ShardRecord& record);

  // True once every spec index has been folded exactly once.
  bool complete() const { return next_ == total_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t digest() const { return digest_.value(); }

  // Materialized results per campaign slot (empty unless constructed
  // with materialize = true).
  std::vector<std::vector<inject::InjectionResult>>& slots() {
    return slots_;
  }

 private:
  std::vector<std::uint64_t> counts_;
  bool materialize_;
  std::uint64_t total_ = 0;
  std::uint64_t next_ = 0;
  ResultDigest digest_;
  std::vector<std::vector<inject::InjectionResult>> slots_;
};

}  // namespace kfi::analysis
