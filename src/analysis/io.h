// Campaign result persistence: a compact binary format so the bench
// binaries for Figures 4/6/7/8 and Table 5 share one set of campaign
// runs instead of re-injecting thousands of errors each.
#pragma once

#include <optional>
#include <string>

#include "inject/campaign.h"

namespace kfi::analysis {

bool save_campaign(const inject::CampaignRun& run, const std::string& path);
std::optional<inject::CampaignRun> load_campaign(const std::string& path);

// FNV-1a fingerprint over a kernel image's load segments.  A campaign
// cache (and the instruction addresses inside it) is only valid for the
// exact image it was produced from, so the fingerprint is baked into
// the cache file name.
std::uint64_t kernel_fingerprint(const kernel::KernelImage& image);

// "<cache_dir>/campaign_<A|B|C>_r<repeats>_s<seed>_k<fp>.kfi" — the
// canonical cache file name for a campaign run against `image`.
std::string campaign_cache_path(const std::string& cache_dir,
                                inject::Campaign campaign, int repeats,
                                std::uint64_t seed,
                                const kernel::KernelImage& image);

// Loads the campaign from `<cache_dir>/campaign_<name>_r<repeats>_s<seed>.kfi`
// or runs it (and saves).  `verbose` prints progress to stderr.
// `threads` maps to CampaignConfig::threads (0 = hardware concurrency);
// results are bit-identical at any value, so the cache key ignores it.
inject::CampaignRun load_or_run_campaign(inject::Injector& injector,
                                         inject::Campaign campaign,
                                         int repeats, std::uint64_t seed,
                                         const std::string& cache_dir,
                                         bool verbose, unsigned threads = 0);

// Shared bench flags: --scale N (repeats), --seed N, --cache DIR,
// --no-cache, --quiet, --threads N, --jobs N.
struct BenchOptions {
  int repeats = 1;
  std::uint64_t seed = 2003;
  std::string cache_dir = "kfi-results";
  bool use_cache = true;
  bool verbose = true;
  unsigned threads = 0;  // 0 = hardware concurrency
  // Scaling-sweep override: when non-zero, sweeps run {1, jobs} instead
  // of the hardcoded {1, 2, 4, 8} ladder.  Set by --jobs or KFI_JOBS
  // (flag wins); both are strict parse_jobs inputs — 0, "4x", and
  // anything above 1024 are rejected with exit(2), never silently
  // coerced.  0 = no override.
  unsigned jobs = 0;
};

// KFI_JOBS from the environment (strict; exits(2) on garbage), or 0
// when unset.  Exposed for binaries that do not use
// parse_bench_options (bench_throughput's own flag handling).
unsigned jobs_from_env();

// All numeric flags are strict (support/strings parse_u64): a
// malformed value prints a diagnostic and exits(2) instead of being
// atoi'd to 0.
BenchOptions parse_bench_options(int argc, char** argv);

// Runs (or loads) one campaign with the given options.
inject::CampaignRun bench_campaign(inject::Injector& injector,
                                   inject::Campaign campaign,
                                   const BenchOptions& options);

}  // namespace kfi::analysis
