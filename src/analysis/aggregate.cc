#include "analysis/aggregate.h"

#include <set>
#include <stdexcept>

#include "isa/isa.h"
#include "trace/trace.h"

namespace kfi::analysis {

using inject::Campaign;
using inject::CampaignRun;
using inject::CrashCause;
using inject::InjectionResult;
using inject::Outcome;
using kernel::Subsystem;

const std::vector<Subsystem>& table_subsystems() {
  static const std::vector<Subsystem> subsystems = {
      Subsystem::Arch, Subsystem::Fs, Subsystem::Kernel, Subsystem::Mm};
  return subsystems;
}

OutcomeTable make_outcome_table(const CampaignRun& run) {
  OutcomeTable table;
  table.campaign = run.campaign;

  std::map<Subsystem, OutcomeRow> rows;
  std::map<Subsystem, std::set<std::string>> functions;
  for (const Subsystem s : table_subsystems()) {
    rows[s].subsystem = s;
  }

  for (const InjectionResult& r : run.results) {
    OutcomeRow& row = rows[r.spec.subsystem];
    row.subsystem = r.spec.subsystem;
    functions[r.spec.subsystem].insert(r.spec.function);
    ++row.injected;
    if (r.outcome == Outcome::NotActivated) continue;
    ++row.activated;
    switch (r.outcome) {
      case Outcome::NotManifested: ++row.not_manifested; break;
      case Outcome::FailSilenceViolation: ++row.fail_silence; break;
      case Outcome::DumpedCrash:
        ++row.crash_hang;
        ++table.dumped_crash;
        break;
      case Outcome::HangUnknown:
        ++row.crash_hang;
        ++table.hang_unknown;
        break;
      default: break;
    }
  }

  for (const Subsystem s : table_subsystems()) {
    OutcomeRow row = rows[s];
    row.functions = functions[s].size();
    table.rows.push_back(row);
  }
  // Fold any remaining subsystems (drivers/lib/ipc) into the total only.
  table.total.subsystem = Subsystem::Unknown;
  for (const auto& [subsystem, row] : rows) {
    table.total.functions += functions[subsystem].size();
    table.total.injected += row.injected;
    table.total.activated += row.activated;
    table.total.not_manifested += row.not_manifested;
    table.total.fail_silence += row.fail_silence;
    table.total.crash_hang += row.crash_hang;
  }
  return table;
}

CascadeTable make_cascade(const CampaignRun& run) {
  CascadeTable table;
  table.campaign = run.campaign;
  std::map<std::uint32_t, CascadeRow> rows;
  for (const InjectionResult& r : run.results) {
    CascadeRow& row = rows[r.spec.errno_value];
    row.errno_value = r.spec.errno_value;
    const auto fold = [&](CascadeRow& into) {
      ++into.injected;
      if (r.outcome == Outcome::NotActivated) return;
      ++into.activated;
      switch (r.outcome) {
        case Outcome::NotManifested: ++into.not_manifested; break;
        case Outcome::FailSilenceViolation: ++into.fail_silence; break;
        case Outcome::DumpedCrash:
        case Outcome::HangUnknown: ++into.crash_hang; break;
        default: break;
      }
      into.total_after += r.syscalls_after;
      into.total_cascade += r.cascade_syscalls;
      if (r.cascade_syscalls > into.max_cascade) {
        into.max_cascade = r.cascade_syscalls;
      }
    };
    fold(row);
    fold(table.total);
  }
  for (const auto& [errno_value, row] : rows) table.rows.push_back(row);
  return table;
}

double CrashCauseDistribution::top4_share() const {
  if (total == 0) return 0.0;
  std::uint64_t top4 = 0;
  for (const CrashCause cause :
       {CrashCause::NullPointer, CrashCause::PagingRequest,
        CrashCause::InvalidOpcode, CrashCause::GpFault}) {
    const auto it = counts.find(cause);
    if (it != counts.end()) top4 += it->second;
  }
  return static_cast<double>(top4) / static_cast<double>(total);
}

CrashCauseDistribution make_crash_causes(const CampaignRun& run) {
  CrashCauseDistribution dist;
  dist.campaign = run.campaign;
  for (const InjectionResult& r : run.results) {
    if (r.outcome != Outcome::DumpedCrash) continue;
    ++dist.counts[r.cause];
    ++dist.total;
  }
  return dist;
}

LatencyDistribution make_latency(const CampaignRun& run) {
  LatencyDistribution dist;
  dist.campaign = run.campaign;
  for (const Subsystem s : table_subsystems()) {
    dist.by_subsystem.emplace(s, Histogram::latency_decades());
  }
  for (const InjectionResult& r : run.results) {
    if (r.outcome != Outcome::DumpedCrash) continue;
    dist.overall.add(r.latency_cycles);
    const auto it = dist.by_subsystem.find(r.spec.subsystem);
    if (it != dist.by_subsystem.end()) it->second.add(r.latency_cycles);
  }
  return dist;
}

double PropagationGraph::self_share() const {
  if (total_crashes == 0) return 0.0;
  for (const PropagationEdge& edge : edges) {
    if (edge.to == from) {
      return static_cast<double>(edge.crashes) /
             static_cast<double>(total_crashes);
    }
  }
  return 0.0;
}

PropagationGraph make_propagation(const CampaignRun& run, Subsystem from) {
  PropagationGraph graph;
  graph.campaign = run.campaign;
  graph.from = from;

  std::map<Subsystem, PropagationEdge> edges;
  for (const InjectionResult& r : run.results) {
    if (r.outcome != Outcome::DumpedCrash) continue;
    if (r.spec.subsystem != from) continue;
    PropagationEdge& edge = edges[r.crash_subsystem];
    edge.from = from;
    edge.to = r.crash_subsystem;
    ++edge.crashes;
    ++edge.causes[r.cause];
    ++graph.total_crashes;
  }
  for (auto& [to, edge] : edges) graph.edges.push_back(std::move(edge));
  return graph;
}

namespace {

// The eip of the first fault-class event after the injection flip, or 0
// if the trace window holds none.  Timer ticks and syscall entries are
// normal control flow, not corruption surfacing, and are skipped.
std::uint32_t first_fault_eip(const std::vector<trace::Event>& events) {
  bool flipped = false;
  for (const trace::Event& e : events) {
    if (e.kind == trace::EventKind::InjectFlip) {
      flipped = true;
      continue;
    }
    if (!flipped) continue;
    if (e.kind == trace::EventKind::MemFault) return e.c;
    if (e.kind == trace::EventKind::TrapEntry &&
        e.a != static_cast<std::uint32_t>(isa::Trap::Syscall)) {
      return e.c;
    }
  }
  return 0;
}

}  // namespace

TracedPropagation make_traced_propagation(inject::Injector& tracer,
                                          const CampaignRun& run,
                                          Subsystem from,
                                          std::size_t max_replays) {
  if (tracer.trace() == nullptr) {
    throw std::invalid_argument(
        "make_traced_propagation: tracer built without trace_capacity");
  }
  TracedPropagation out;
  out.graph.campaign = run.campaign;
  out.graph.from = from;

  std::map<Subsystem, PropagationEdge> edges;
  for (const InjectionResult& r : run.results) {
    if (r.outcome != Outcome::DumpedCrash) continue;
    if (r.spec.subsystem != from) continue;
    if (max_replays != 0 && out.replayed >= max_replays) {
      ++out.skipped;
      continue;
    }
    const InjectionResult replay = tracer.run_one(r.spec);
    ++out.replayed;
    Subsystem to = r.crash_subsystem;
    if (replay.outcome != Outcome::DumpedCrash) {
      // Determinism should make this impossible; count it and keep the
      // final-eip attribution rather than dropping the crash.
      ++out.mismatches;
    } else {
      const std::uint32_t eip = first_fault_eip(tracer.trace()->events());
      if (eip != 0) to = kernel::subsystem_of_addr(eip);
    }
    PropagationEdge& edge = edges[to];
    edge.from = from;
    edge.to = to;
    ++edge.crashes;
    ++edge.causes[r.cause];
    ++out.graph.total_crashes;
  }
  for (auto& [to, edge] : edges) out.graph.edges.push_back(std::move(edge));
  return out;
}

SeveritySummary make_severity(const CampaignRun& run) {
  SeveritySummary summary;
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    const InjectionResult& r = run.results[i];
    if (r.severity == inject::Severity::NotApplicable) continue;
    summary.total_downtime_seconds +=
        inject::severity_downtime_seconds(r.severity);
    switch (r.severity) {
      case inject::Severity::Normal: ++summary.normal; break;
      case inject::Severity::Severe:
        ++summary.severe;
        summary.severe_indices.push_back(i);
        break;
      case inject::Severity::MostSevere:
        ++summary.most_severe;
        summary.most_severe_indices.push_back(i);
        break;
      default: break;
    }
  }
  return summary;
}

}  // namespace kfi::analysis
