#include "analysis/render.h"

#include <string_view>

#include "kernel/koffsets.h"
#include "support/strings.h"

namespace kfi::analysis {

using inject::Campaign;
using inject::CrashCause;
using kernel::Subsystem;

namespace {

// percent() maps an empty denominator to "0.0%", which reads as a
// measured zero; tables render "–" instead so "no activated runs" is
// distinguishable from "0% of activated runs".
std::string share(double num, double den) {
  return den > 0 ? percent(num, den) : "–";
}

std::string_view errno_label(std::uint32_t errno_value) {
  switch (errno_value) {
    case kernel::KE_ENOENT: return "ENOENT";
    case kernel::KE_EBADF: return "EBADF";
    case kernel::KE_EAGAIN: return "EAGAIN";
    case kernel::KE_ENOMEM: return "ENOMEM";
    case kernel::KE_EEXIST: return "EEXIST";
    case kernel::KE_EINVAL: return "EINVAL";
    case kernel::KE_EMFILE: return "EMFILE";
    case kernel::KE_ENOSPC: return "ENOSPC";
    case kernel::KE_ESPIPE: return "ESPIPE";
    case kernel::KE_EPIPE: return "EPIPE";
    case kernel::KE_ENOSYS: return "ENOSYS";
    default: return "E?";
  }
}

}  // namespace

std::string render_fig1(const kernel::KernelImage& image) {
  std::string out;
  out += "Figure 1: Size of Kernel Subsystems in Terms of Source Code Lines\n";
  out += "------------------------------------------------------------------\n";
  std::size_t total = 0;
  for (const auto& [subsystem, lines] : image.source_lines) {
    out += format("  %-8s %6zu lines\n",
                  std::string(subsystem_name(subsystem)).c_str(), lines);
    total += lines;
  }
  out += format("  %-8s %6zu lines\n", "total", total);
  return out;
}

std::string render_table1(const profile::ProfileResult& prof,
                          double coverage) {
  const auto rows = prof.table1(coverage);
  const auto core = prof.core_functions(coverage);
  std::string out;
  out += "Table 1: Function Distribution Among Kernel Modules\n";
  out += "----------------------------------------------------------------\n";
  out += format("  %-10s %22s %26s\n", "Subsystem", "Profiled functions",
                "Contribution to core set");
  std::size_t total_fns = 0;
  std::size_t total_core = 0;
  for (const auto& row : rows) {
    out += format("  %-10s %22zu %26zu\n",
                  std::string(subsystem_name(row.subsystem)).c_str(),
                  row.profiled_functions, row.core_functions);
    total_fns += row.profiled_functions;
    total_core += row.core_functions;
  }
  out += format("  %-10s %22zu %26zu\n", "Total", total_fns, total_core);
  out += format("  core set: top %zu functions cover >= %.0f%% of %s kernel"
                " samples\n",
                core.size(), coverage * 100.0,
                with_commas(prof.total_kernel_samples).c_str());
  return out;
}

std::string render_table4() {
  std::string out;
  out += "Table 4: Definition of Fault Injection Campaigns\n";
  out += "-------------------------------------------------\n";
  for (const Campaign campaign :
       {Campaign::RandomNonBranch, Campaign::RandomBranch,
        Campaign::IncorrectBranch, Campaign::RegisterFile,
        Campaign::KernelData, Campaign::SyscallErrno}) {
    out += format("  %s [%s] - %s\n",
                  std::string(inject::campaign_name(campaign)).c_str(),
                  std::string(inject::fault_model_name(
                                  inject::campaign_fault_model(campaign)))
                      .c_str(),
                  std::string(inject::campaign_description(campaign)).c_str());
  }
  return out;
}

std::string render_outcome_table(const OutcomeTable& table) {
  std::string out;
  out += format("Campaign %s — %s\n",
                std::string(inject::campaign_name(table.campaign)).c_str(),
                std::string(inject::campaign_description(table.campaign))
                    .c_str());
  out += "--------------------------------------------------------------"
         "-----------------------\n";
  out += format("  %-12s %9s %18s %16s %14s %12s\n", "Subsystem", "Injected",
                "Activated", "NotManifested", "FailSilence", "Crash/Hang");

  const auto row_text = [](const char* name, const OutcomeRow& row) {
    const double act = static_cast<double>(row.activated);
    return format(
        "  %-12s %9s %10s(%5s) %9s(%5s) %8s(%5s) %7s(%5s)\n", name,
        with_commas(row.injected).c_str(), with_commas(row.activated).c_str(),
        share(static_cast<double>(row.activated),
              static_cast<double>(row.injected)).c_str(),
        with_commas(row.not_manifested).c_str(),
        share(static_cast<double>(row.not_manifested), act).c_str(),
        with_commas(row.fail_silence).c_str(),
        share(static_cast<double>(row.fail_silence), act).c_str(),
        with_commas(row.crash_hang).c_str(),
        share(static_cast<double>(row.crash_hang), act).c_str());
  };

  for (const OutcomeRow& row : table.rows) {
    const std::string name =
        format("%s[%zu]", std::string(subsystem_name(row.subsystem)).c_str(),
               row.functions);
    out += row_text(name.c_str(), row);
  }
  const std::string total_name = format("Total[%zu]", table.total.functions);
  out += row_text(total_name.c_str(), table.total);

  const double act = static_cast<double>(table.total.activated);
  out += "  Overall distribution of activated errors:\n";
  out += format("    Not Manifested        %6s\n",
                share(static_cast<double>(table.total.not_manifested), act)
                    .c_str());
  out += format("    Fail Silence Violation%6s\n",
                share(static_cast<double>(table.total.fail_silence), act)
                    .c_str());
  out += format("    Dumped Crash          %6s\n",
                share(static_cast<double>(table.dumped_crash), act).c_str());
  out += format("    Hang/Unknown Crash    %6s\n",
                share(static_cast<double>(table.hang_unknown), act).c_str());
  return out;
}

std::string render_cascade(const CascadeTable& table) {
  std::string out;
  out += format("Campaign %s: Syscall-Failure Cascades\n",
                std::string(inject::campaign_name(table.campaign)).c_str());
  out += "------------------------------------------------------------------"
         "----\n";
  out += format("  %-8s %9s %10s %8s %8s %10s %10s %8s\n", "errno",
                "Injected", "Activated", "FailSil", "Crash", "After",
                "Cascaded", "MaxCasc");
  const auto row_text = [](const char* name, const CascadeRow& row) {
    return format("  %-8s %9s %10s %8s %8s %10s %10s %8s\n", name,
                  with_commas(row.injected).c_str(),
                  with_commas(row.activated).c_str(),
                  with_commas(row.fail_silence).c_str(),
                  with_commas(row.crash_hang).c_str(),
                  with_commas(row.total_after).c_str(),
                  with_commas(row.total_cascade).c_str(),
                  with_commas(row.max_cascade).c_str());
  };
  for (const CascadeRow& row : table.rows) {
    out += row_text(std::string(errno_label(row.errno_value)).c_str(), row);
  }
  out += row_text("Total", table.total);
  out += format("  cascade rate over post-injection syscalls: %s\n",
                share(static_cast<double>(table.total.total_cascade),
                      static_cast<double>(table.total.total_after)).c_str());
  return out;
}

std::string render_crash_causes(const CrashCauseDistribution& dist) {
  std::string out;
  out += format("Figure 6 (campaign %s): Distribution of Crash Causes "
                "(%s dumped crashes)\n",
                std::string(inject::campaign_name(dist.campaign)).c_str(),
                with_commas(dist.total).c_str());
  out += "------------------------------------------------------------------"
         "----\n";
  for (const CrashCause cause :
       {CrashCause::NullPointer, CrashCause::PagingRequest,
        CrashCause::InvalidOpcode, CrashCause::GpFault,
        CrashCause::DivideError, CrashCause::KernelPanic,
        CrashCause::OutOfMemory, CrashCause::Other}) {
    const auto it = dist.counts.find(cause);
    const std::uint64_t count = it == dist.counts.end() ? 0 : it->second;
    if (count == 0) continue;
    out += format("  %-52s %7s  %6s\n",
                  std::string(inject::crash_cause_name(cause)).c_str(),
                  with_commas(count).c_str(),
                  share(static_cast<double>(count),
                        static_cast<double>(dist.total)).c_str());
  }
  out += format("  top-4 causes account for %.1f%% of all crashes\n",
                dist.top4_share() * 100.0);
  return out;
}

std::string render_latency(const LatencyDistribution& dist) {
  std::string out;
  out += format("Figure 7 (campaign %s): Crash Latency in CPU Cycles\n",
                std::string(inject::campaign_name(dist.campaign)).c_str());
  out += "---------------------------------------------------------------\n";
  out += format("  %-10s", "bucket");
  for (const Subsystem s : table_subsystems()) {
    out += format(" %8s", std::string(subsystem_name(s)).c_str());
  }
  out += format(" %8s\n", "overall");
  for (std::size_t bucket = 0; bucket < dist.overall.bucket_count();
       ++bucket) {
    out += format("  %-10s", dist.overall.bucket_label(bucket).c_str());
    for (const Subsystem s : table_subsystems()) {
      const Histogram& h = dist.by_subsystem.at(s);
      out += format(" %7.1f%%", h.share(bucket) * 100.0);
    }
    out += format(" %7.1f%%\n", dist.overall.share(bucket) * 100.0);
  }
  out += format("  crashes: overall %s\n",
                with_commas(dist.overall.total()).c_str());
  return out;
}

std::string render_propagation(const PropagationGraph& graph) {
  std::string out;
  out += format("Figure 8 (campaign %s): Error Propagation from '%s' "
                "(%s crashes)\n",
                std::string(inject::campaign_name(graph.campaign)).c_str(),
                std::string(subsystem_name(graph.from)).c_str(),
                with_commas(graph.total_crashes).c_str());
  out += "------------------------------------------------------------------"
         "----\n";
  for (const PropagationEdge& edge : graph.edges) {
    out += format("  %s -> %-8s %6s",
                  std::string(subsystem_name(edge.from)).c_str(),
                  std::string(subsystem_name(edge.to)).c_str(),
                  share(static_cast<double>(edge.crashes),
                        static_cast<double>(graph.total_crashes)).c_str());
    out += "  causes:";
    for (const auto& [cause, count] : edge.causes) {
      out += format(" %s=%s",
                    std::string(inject::crash_cause_short_name(cause)).c_str(),
                    with_commas(count).c_str());
    }
    out += "\n";
  }
  out += format("  crashes inside the faulted subsystem: %.1f%%\n",
                graph.self_share() * 100.0);
  return out;
}

std::string render_severity(const inject::CampaignRun& run,
                            const SeveritySummary& summary) {
  std::string out;
  out += format("Crash severity (campaign %s, §7.1 taxonomy)\n",
                std::string(inject::campaign_name(run.campaign)).c_str());
  out += "----------------------------------------------------------------\n";
  out += format("  normal (auto reboot, <4 min)      %6s\n",
                with_commas(summary.normal).c_str());
  out += format("  severe (manual fsck, >5 min)      %6s\n",
                with_commas(summary.severe).c_str());
  out += format("  most severe (reformat, ~1 h)      %6s\n",
                with_commas(summary.most_severe).c_str());
  out += format("  modeled downtime                  %6s minutes\n",
                with_commas(summary.total_downtime_seconds / 60).c_str());
  std::uint64_t severe_verified = 0;
  for (const std::size_t index : summary.severe_indices) {
    if (run.results[index].repair_verified) ++severe_verified;
  }
  if (summary.severe > 0) {
    out += format("  severe cases verified repairable  %6s of %s\n",
                  with_commas(severe_verified).c_str(),
                  with_commas(summary.severe).c_str());
  }
  if (!summary.most_severe_indices.empty()) {
    out += "  Most severe crash inventory (Table 5 style):\n";
    int case_no = 1;
    for (const std::size_t index : summary.most_severe_indices) {
      const inject::InjectionResult& r = run.results[index];
      out += format("   %2d. %s: %s  [%s -> %s]  bootable=%s\n", case_no++,
                    std::string(subsystem_name(r.spec.subsystem)).c_str(),
                    r.spec.function.c_str(), r.disasm_before.c_str(),
                    r.disasm_after.c_str(), r.bootable ? "yes" : "NO");
    }
  }
  return out;
}

}  // namespace kfi::analysis
