#include "analysis/io.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "kernel/build.h"
#include "support/strings.h"

namespace kfi::analysis {
namespace {

constexpr std::uint32_t kMagic = 0x4B464931;  // "KFI1"
constexpr std::uint32_t kVersion = 4;

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), 4);
}
void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), 8);
}
void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

struct Reader {
  const std::string& data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint32_t u32() {
    if (pos + 4 > data.size()) {
      ok = false;
      return 0;
    }
    std::uint32_t v;
    std::memcpy(&v, data.data() + pos, 4);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (pos + 8 > data.size()) {
      ok = false;
      return 0;
    }
    std::uint64_t v;
    std::memcpy(&v, data.data() + pos, 8);
    pos += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || pos + n > data.size()) {
      ok = false;
      return "";
    }
    std::string s = data.substr(pos, n);
    pos += n;
    return s;
  }
};

}  // namespace

bool save_campaign(const inject::CampaignRun& run, const std::string& path) {
  std::string out;
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(run.campaign));
  put_u64(out, run.functions_targeted);
  put_u64(out, run.results.size());
  for (const inject::InjectionResult& r : run.results) {
    put_u32(out, static_cast<std::uint32_t>(r.spec.campaign));
    put_str(out, r.spec.function);
    put_u32(out, static_cast<std::uint32_t>(r.spec.subsystem));
    put_u32(out, r.spec.instr_addr);
    put_u32(out, r.spec.instr_len);
    put_u32(out, r.spec.byte_index);
    put_u32(out, r.spec.bit_index);
    put_str(out, r.spec.workload);
    put_u32(out, static_cast<std::uint32_t>(r.outcome));
    put_u64(out, r.activation_cycle);
    put_u32(out, static_cast<std::uint32_t>(r.cause));
    put_u32(out, r.crash_eip);
    put_u32(out, r.crash_addr);
    put_u32(out, static_cast<std::uint32_t>(r.crash_subsystem));
    put_u32(out, r.propagated ? 1 : 0);
    put_u64(out, r.latency_cycles);
    put_u32(out, static_cast<std::uint32_t>(r.severity));
    put_u32(out, r.fs_damaged ? 1 : 0);
    put_u32(out, r.bootable ? 1 : 0);
    put_u32(out, r.repair_verified ? 1 : 0);
    put_str(out, r.disasm_before);
    put_str(out, r.disasm_after);
  }

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  file.flush();
  file.close();
  if (!file.good()) {
    // A truncated artifact would be silently rejected (or worse,
    // half-parsed) on the next load; remove it so the campaign is
    // re-run instead of read back wrong.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return false;
  }
  return true;
}

std::optional<inject::CampaignRun> load_campaign(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  Reader reader{data};
  if (reader.u32() != kMagic || reader.u32() != kVersion) {
    return std::nullopt;
  }

  inject::CampaignRun run;
  run.campaign = static_cast<inject::Campaign>(reader.u32());
  run.functions_targeted = static_cast<std::size_t>(reader.u64());
  const std::uint64_t count = reader.u64();
  if (!reader.ok || count > 100'000'000) return std::nullopt;
  run.results.reserve(count);
  for (std::uint64_t i = 0; i < count && reader.ok; ++i) {
    inject::InjectionResult r;
    r.spec.campaign = static_cast<inject::Campaign>(reader.u32());
    r.spec.function = reader.str();
    r.spec.subsystem = static_cast<kernel::Subsystem>(reader.u32());
    r.spec.instr_addr = reader.u32();
    r.spec.instr_len = static_cast<std::uint8_t>(reader.u32());
    r.spec.byte_index = static_cast<std::uint8_t>(reader.u32());
    r.spec.bit_index = static_cast<std::uint8_t>(reader.u32());
    r.spec.workload = reader.str();
    r.outcome = static_cast<inject::Outcome>(reader.u32());
    r.activation_cycle = reader.u64();
    r.cause = static_cast<inject::CrashCause>(reader.u32());
    r.crash_eip = reader.u32();
    r.crash_addr = reader.u32();
    r.crash_subsystem = static_cast<kernel::Subsystem>(reader.u32());
    r.propagated = reader.u32() != 0;
    r.latency_cycles = reader.u64();
    r.severity = static_cast<inject::Severity>(reader.u32());
    r.fs_damaged = reader.u32() != 0;
    r.bootable = reader.u32() != 0;
    r.repair_verified = reader.u32() != 0;
    r.disasm_before = reader.str();
    r.disasm_after = reader.str();
    run.results.push_back(std::move(r));
  }
  if (!reader.ok) return std::nullopt;
  return run;
}

std::uint64_t kernel_fingerprint(const kernel::KernelImage& image) {
  std::uint64_t fingerprint = 1469598103934665603ULL;
  for (const kernel::LoadSegment& segment : image.segments) {
    for (const std::uint8_t byte : segment.bytes) {
      fingerprint = (fingerprint ^ byte) * 1099511628211ULL;
    }
  }
  return fingerprint;
}

std::string campaign_cache_path(const std::string& cache_dir,
                                inject::Campaign campaign, int repeats,
                                std::uint64_t seed,
                                const kernel::KernelImage& image) {
  return cache_dir + "/campaign_" +
         std::string(inject::campaign_name(campaign)) + "_r" +
         std::to_string(repeats) + "_s" + std::to_string(seed) + "_k" +
         format("%08x",
                static_cast<std::uint32_t>(kernel_fingerprint(image))) +
         ".kfi";
}

inject::CampaignRun load_or_run_campaign(inject::Injector& injector,
                                         inject::Campaign campaign,
                                         int repeats, std::uint64_t seed,
                                         const std::string& cache_dir,
                                         bool verbose, unsigned threads) {
  std::string path;
  if (!cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cache_dir, ec);
    path = campaign_cache_path(cache_dir, campaign, repeats, seed,
                               kernel::built_kernel());
    if (auto cached = load_campaign(path)) {
      if (verbose) {
        std::fprintf(stderr, "[kfi] campaign %s: loaded %zu results from %s\n",
                     std::string(inject::campaign_name(campaign)).c_str(),
                     cached->results.size(), path.c_str());
      }
      return std::move(*cached);
    }
  }

  inject::CampaignConfig config;
  config.campaign = campaign;
  config.repeats = repeats;
  config.seed = seed;
  config.threads = threads;
  if (verbose) {
    config.progress = [campaign](std::size_t done, std::size_t total) {
      if (done % 500 == 0 || done == total) {
        std::fprintf(stderr, "[kfi] campaign %s: %zu/%zu\r",
                     std::string(inject::campaign_name(campaign)).c_str(),
                     done, total);
        if (done == total) std::fprintf(stderr, "\n");
      }
    };
  }
  inject::CampaignRun run =
      inject::run_campaign(injector, profile::default_profile(), config);
  if (!path.empty() && !save_campaign(run, path)) {
    std::fprintf(stderr, "[kfi] warning: failed to save campaign cache %s\n",
                 path.c_str());
  }
  return run;
}

BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scale" && i + 1 < argc) {
      options.repeats = std::atoi(argv[++i]);
      if (options.repeats < 1) options.repeats = 1;
    } else if (arg == "--seed" && i + 1 < argc) {
      options.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--cache" && i + 1 < argc) {
      options.cache_dir = argv[++i];
    } else if (arg == "--no-cache") {
      options.use_cache = false;
    } else if (arg == "--quiet") {
      options.verbose = false;
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--help") {
      std::printf(
          "options: --scale N (repeat random campaigns N times)\n"
          "         --seed N  (campaign RNG seed)\n"
          "         --cache DIR | --no-cache\n"
          "         --threads N (worker threads; 0 = hardware concurrency)\n"
          "         --quiet\n");
      std::exit(0);
    }
  }
  return options;
}

inject::CampaignRun bench_campaign(inject::Injector& injector,
                                   inject::Campaign campaign,
                                   const BenchOptions& options) {
  return load_or_run_campaign(injector, campaign, options.repeats,
                              options.seed,
                              options.use_cache ? options.cache_dir : "",
                              options.verbose, options.threads);
}

}  // namespace kfi::analysis
