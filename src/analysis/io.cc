#include "analysis/io.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "analysis/store.h"
#include "kernel/build.h"
#include "support/fsio.h"
#include "support/serial.h"
#include "support/strings.h"

namespace kfi::analysis {
namespace {

constexpr std::uint32_t kMagic = 0x4B464931;  // "KFI1"
// v4: unchanged byte layout since the put_u32/put_str writers this file
// used before the shared ByteWriter — the per-result record now lives
// in analysis/store (write_result/read_result) so shard artifacts and
// campaign caches stay format-twins.
constexpr std::uint32_t kVersion = 4;
// v5 appends the fault-model fields to every record (store.cc's
// extended layout).  Caches whose results are all InstrBit keep being
// written as v4, so the committed A/B/C caches stay byte-identical and
// loadable; a D/E/F cache is v5.
constexpr std::uint32_t kVersionExtended = 5;

}  // namespace

bool save_campaign(const inject::CampaignRun& run, const std::string& path) {
  bool extended = false;
  for (const inject::InjectionResult& r : run.results) {
    if (result_is_extended(r)) {
      extended = true;
      break;
    }
  }
  ByteWriter writer;
  writer.u32(kMagic);
  writer.u32(extended ? kVersionExtended : kVersion);
  writer.u32(static_cast<std::uint32_t>(run.campaign));
  writer.u64(run.functions_targeted);
  writer.u64(run.results.size());
  for (const inject::InjectionResult& r : run.results) {
    write_result(writer, r, extended);
  }
  // Crash-safe: a reader either sees the previous cache or the complete
  // new one, never a torn write that half-parses on the next load.
  return atomic_write_file(path, writer.buffer());
}

std::optional<inject::CampaignRun> load_campaign(const std::string& path) {
  const std::optional<std::string> data = read_file_bytes(path);
  if (!data.has_value()) return std::nullopt;
  ByteReader reader(*data);
  if (reader.u32() != kMagic) return std::nullopt;
  const std::uint32_t version = reader.u32();
  if (version != kVersion && version != kVersionExtended) {
    return std::nullopt;
  }
  const bool extended = version == kVersionExtended;

  inject::CampaignRun run;
  run.campaign = static_cast<inject::Campaign>(reader.u32());
  run.functions_targeted = static_cast<std::size_t>(reader.u64());
  const std::uint64_t count = reader.u64();
  if (!reader.ok() || count > 100'000'000) return std::nullopt;
  run.results.reserve(count);
  for (std::uint64_t i = 0; i < count && reader.ok(); ++i) {
    inject::InjectionResult r;
    if (!read_result(reader, r, extended)) break;
    run.results.push_back(std::move(r));
  }
  if (!reader.ok() || run.results.size() != count) return std::nullopt;
  return run;
}

std::uint64_t kernel_fingerprint(const kernel::KernelImage& image) {
  std::uint64_t fingerprint = kFnvOffset;
  for (const kernel::LoadSegment& segment : image.segments) {
    fingerprint =
        fnv1a_bytes(segment.bytes.data(), segment.bytes.size(), fingerprint);
  }
  return fingerprint;
}

std::string campaign_cache_path(const std::string& cache_dir,
                                inject::Campaign campaign, int repeats,
                                std::uint64_t seed,
                                const kernel::KernelImage& image) {
  return cache_dir + "/campaign_" +
         std::string(inject::campaign_name(campaign)) + "_r" +
         std::to_string(repeats) + "_s" + std::to_string(seed) + "_k" +
         format("%08x",
                static_cast<std::uint32_t>(kernel_fingerprint(image))) +
         ".kfi";
}

inject::CampaignRun load_or_run_campaign(inject::Injector& injector,
                                         inject::Campaign campaign,
                                         int repeats, std::uint64_t seed,
                                         const std::string& cache_dir,
                                         bool verbose, unsigned threads) {
  std::string path;
  if (!cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cache_dir, ec);
    path = campaign_cache_path(cache_dir, campaign, repeats, seed,
                               kernel::built_kernel());
    if (auto cached = load_campaign(path)) {
      if (verbose) {
        std::fprintf(stderr, "[kfi] campaign %s: loaded %zu results from %s\n",
                     std::string(inject::campaign_name(campaign)).c_str(),
                     cached->results.size(), path.c_str());
      }
      return std::move(*cached);
    }
  }

  inject::CampaignConfig config;
  config.campaign = campaign;
  config.repeats = repeats;
  config.seed = seed;
  config.threads = threads;
  if (verbose) {
    config.progress = [campaign](std::size_t done, std::size_t total) {
      if (done % 500 == 0 || done == total) {
        std::fprintf(stderr, "[kfi] campaign %s: %zu/%zu\r",
                     std::string(inject::campaign_name(campaign)).c_str(),
                     done, total);
        if (done == total) std::fprintf(stderr, "\n");
      }
    };
  }
  inject::CampaignRun run =
      inject::run_campaign(injector, profile::default_profile(), config);
  if (!path.empty() && !save_campaign(run, path)) {
    std::fprintf(stderr, "[kfi] warning: failed to save campaign cache %s\n",
                 path.c_str());
  }
  return run;
}

namespace {

// Strict numeric flag parse: prints the offending flag and exits(2)
// instead of atoi's silent 0-on-garbage (which turned "--threads 4x"
// into a hardware-concurrency sweep without a word).
std::uint64_t require_u64(const char* flag, const char* text,
                          std::uint64_t min_value, std::uint64_t max_value) {
  std::uint64_t value = 0;
  if (!parse_u64(text, value, min_value, max_value)) {
    std::fprintf(stderr,
                 "error: %s expects an integer in [%llu, %llu], got '%s'\n",
                 flag, static_cast<unsigned long long>(min_value),
                 static_cast<unsigned long long>(max_value), text);
    std::exit(2);
  }
  return value;
}

}  // namespace

unsigned jobs_from_env() {
  const char* env = std::getenv("KFI_JOBS");
  if (env == nullptr || *env == '\0') return 0;
  unsigned jobs = 0;
  if (!parse_jobs(env, jobs)) {
    std::fprintf(stderr, "error: KFI_JOBS expects an integer in [1, 1024], "
                         "got '%s'\n", env);
    std::exit(2);
  }
  return jobs;
}

BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions options;
  options.jobs = jobs_from_env();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scale" && i + 1 < argc) {
      options.repeats = static_cast<int>(
          require_u64("--scale", argv[++i], 1, 1'000'000));
    } else if (arg == "--seed" && i + 1 < argc) {
      options.seed = require_u64("--seed", argv[++i], 0, UINT64_MAX);
    } else if (arg == "--cache" && i + 1 < argc) {
      options.cache_dir = argv[++i];
    } else if (arg == "--no-cache") {
      options.use_cache = false;
    } else if (arg == "--quiet") {
      options.verbose = false;
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = static_cast<unsigned>(
          require_u64("--threads", argv[++i], 0, 1024));
    } else if (arg == "--jobs" && i + 1 < argc) {
      unsigned jobs = 0;
      if (!parse_jobs(argv[i + 1], jobs)) {
        std::fprintf(stderr, "error: --jobs expects an integer in [1, 1024], "
                             "got '%s'\n", argv[i + 1]);
        std::exit(2);
      }
      ++i;
      options.jobs = jobs;
    } else if (arg == "--help") {
      std::printf(
          "options: --scale N (repeat random campaigns N times)\n"
          "         --seed N  (campaign RNG seed)\n"
          "         --cache DIR | --no-cache\n"
          "         --threads N (worker threads; 0 = hardware concurrency)\n"
          "         --jobs N  (replace the 1/2/4/8 scaling sweeps with one\n"
          "                    entry at N workers; also via KFI_JOBS)\n"
          "         --quiet\n");
      std::exit(0);
    }
  }
  return options;
}

inject::CampaignRun bench_campaign(inject::Injector& injector,
                                   inject::Campaign campaign,
                                   const BenchOptions& options) {
  return load_or_run_campaign(injector, campaign, options.repeats,
                              options.seed,
                              options.use_cache ? options.cache_dir : "",
                              options.verbose, options.threads);
}

}  // namespace kfi::analysis
