#include "analysis/report.h"

#include "support/strings.h"

namespace kfi::analysis {

using inject::CampaignRun;
using kernel::Subsystem;

namespace {

std::string outcome_section(const CampaignRun& run) {
  const OutcomeTable table = make_outcome_table(run);
  std::string out;
  out += format("### Campaign %s — %s\n\n",
                std::string(inject::campaign_name(run.campaign)).c_str(),
                std::string(inject::campaign_description(run.campaign))
                    .c_str());
  out += "| subsystem | injected | activated | not manifested | "
         "fail silence | crash/hang |\n";
  out += "|---|---|---|---|---|---|\n";
  const auto row = [](const std::string& name, const OutcomeRow& r) {
    const double act = static_cast<double>(r.activated);
    return format(
        "| %s | %s | %s (%s) | %s (%s) | %s (%s) | %s (%s) |\n",
        name.c_str(), with_commas(r.injected).c_str(),
        with_commas(r.activated).c_str(),
        percent(static_cast<double>(r.activated),
                static_cast<double>(r.injected)).c_str(),
        with_commas(r.not_manifested).c_str(),
        percent(static_cast<double>(r.not_manifested), act).c_str(),
        with_commas(r.fail_silence).c_str(),
        percent(static_cast<double>(r.fail_silence), act).c_str(),
        with_commas(r.crash_hang).c_str(),
        percent(static_cast<double>(r.crash_hang), act).c_str());
  };
  for (const OutcomeRow& r : table.rows) {
    out += row(format("%s [%zu fns]",
                      std::string(subsystem_name(r.subsystem)).c_str(),
                      r.functions),
               r);
  }
  out += row(format("**total** [%zu fns]", table.total.functions),
             table.total);
  out += "\n";

  const CrashCauseDistribution causes = make_crash_causes(run);
  if (causes.total > 0) {
    out += format("Crash causes (%s dumped crashes): ",
                  with_commas(causes.total).c_str());
    bool first = true;
    for (const auto& [cause, count] : causes.counts) {
      if (!first) out += ", ";
      first = false;
      out += format("%s %s",
                    std::string(inject::crash_cause_short_name(cause))
                        .c_str(),
                    percent(static_cast<double>(count),
                            static_cast<double>(causes.total)).c_str());
    }
    out += format(" — top-4 cover %.1f%%.\n\n", causes.top4_share() * 100.0);

    const LatencyDistribution latency = make_latency(run);
    out += "Crash latency (cycles): ";
    for (std::size_t b = 0; b < latency.overall.bucket_count(); ++b) {
      if (b != 0) out += ", ";
      out += format("%s %.1f%%", latency.overall.bucket_label(b).c_str(),
                    latency.overall.share(b) * 100.0);
    }
    out += ".\n\n";

    out += "Propagation (self-share per faulted subsystem): ";
    bool first_prop = true;
    for (const Subsystem s : table_subsystems()) {
      const PropagationGraph graph = make_propagation(run, s);
      if (graph.total_crashes == 0) continue;
      if (!first_prop) out += ", ";
      first_prop = false;
      out += format("%s %.1f%%",
                    std::string(subsystem_name(s)).c_str(),
                    graph.self_share() * 100.0);
    }
    out += ".\n\n";
  }

  const SeveritySummary severity = make_severity(run);
  out += format(
      "Severity: %s normal / %s severe / %s most-severe; modeled downtime "
      "%s minutes.\n\n",
      with_commas(severity.normal).c_str(),
      with_commas(severity.severe).c_str(),
      with_commas(severity.most_severe).c_str(),
      with_commas(severity.total_downtime_seconds / 60).c_str());
  return out;
}

}  // namespace

std::string render_markdown_report(const ReportInputs& inputs) {
  std::string out = "# " + inputs.title + "\n\n";

  if (inputs.profile != nullptr) {
    out += "## Kernel profile\n\n";
    out += format("Total kernel samples: %s across %zu functions.\n\n",
                  with_commas(inputs.profile->total_kernel_samples).c_str(),
                  inputs.profile->functions.size());
    out += "| rank | function | subsystem | samples |\n|---|---|---|---|\n";
    int rank = 1;
    for (const profile::FunctionSamples& fs : inputs.profile->functions) {
      if (rank > 10) break;
      out += format("| %d | `%s` | %s | %s |\n", rank++,
                    fs.function.c_str(),
                    std::string(subsystem_name(fs.subsystem)).c_str(),
                    with_commas(fs.samples).c_str());
    }
    out += "\n";
  }

  out += "## Campaign outcomes\n\n";
  for (const CampaignRun* run : inputs.campaigns) {
    if (run != nullptr) out += outcome_section(*run);
  }
  return out;
}

}  // namespace kfi::analysis
