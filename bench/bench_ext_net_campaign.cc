// Extension experiment: the paper excluded Linux's net subsystem and
// noted "the network issues can be studied separately" — this bench is
// that separate study, run on the loopback datagram stack: all three
// campaigns restricted to net/ functions under the netio workload.
#include <cstdio>

#include "analysis/aggregate.h"
#include "analysis/render.h"
#include "inject/campaign.h"

int main(int argc, char** argv) {
  using namespace kfi;
  int repeats = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--scale") repeats = std::atoi(argv[i + 1]);
  }
  if (repeats < 1) repeats = 1;

  inject::Injector injector;
  const std::vector<std::string> net_functions = {
      "sys_socketcall", "sock_create",     "inet_bind",   "udp_v4_lookup",
      "udp_sendmsg",    "udp_recvmsg",     "netif_rx",    "ip_loopback_xmit",
      "udp_queue_rcv",  "net_checksum",    "sock_release"};

  std::printf("net/ subsystem error-injection study (the paper's deferred\n"
              "experiment), workload: netio, %zu functions\n\n",
              net_functions.size());

  for (const inject::Campaign campaign :
       {inject::Campaign::RandomNonBranch, inject::Campaign::RandomBranch,
        inject::Campaign::IncorrectBranch}) {
    inject::CampaignConfig config;
    config.campaign = campaign;
    config.functions = net_functions;
    config.repeats = repeats;
    const inject::CampaignRun run =
        inject::run_campaign(injector, profile::default_profile(), config);

    // Net is not one of the paper's four table subsystems; summarize
    // directly.
    std::uint64_t injected = 0;
    std::uint64_t activated = 0;
    std::uint64_t nm = 0;
    std::uint64_t fsv = 0;
    std::uint64_t crash = 0;
    std::uint64_t hang = 0;
    std::map<inject::CrashCause, std::uint64_t> causes;
    for (const inject::InjectionResult& r : run.results) {
      ++injected;
      if (r.outcome == inject::Outcome::NotActivated) continue;
      ++activated;
      switch (r.outcome) {
        case inject::Outcome::NotManifested: ++nm; break;
        case inject::Outcome::FailSilenceViolation: ++fsv; break;
        case inject::Outcome::DumpedCrash:
          ++crash;
          ++causes[r.cause];
          break;
        case inject::Outcome::HangUnknown: ++hang; break;
        default: break;
      }
    }
    const double act = static_cast<double>(activated);
    std::printf("Campaign %s: injected %llu, activated %llu (%.1f%%)\n",
                std::string(inject::campaign_name(campaign)).c_str(),
                static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(activated),
                injected ? 100.0 * act / static_cast<double>(injected) : 0);
    std::printf("  not manifested %5.1f%%   fail silence %5.1f%%   "
                "crash %5.1f%%   hang %5.1f%%\n",
                act ? 100.0 * static_cast<double>(nm) / act : 0,
                act ? 100.0 * static_cast<double>(fsv) / act : 0,
                act ? 100.0 * static_cast<double>(crash) / act : 0,
                act ? 100.0 * static_cast<double>(hang) / act : 0);
    if (!causes.empty()) {
      std::printf("  crash causes:");
      for (const auto& [cause, count] : causes) {
        std::printf(" %s=%llu",
                    std::string(inject::crash_cause_short_name(cause)).c_str(),
                    static_cast<unsigned long long>(count));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "expectation: the net stack behaves like the paper's studied\n"
      "subsystems — the same four crash causes dominate, and reversed\n"
      "guard branches surface as fail-silence violations (error codes\n"
      "returned for valid datagrams) or checksum-detected corruption.\n");
  return 0;
}
