// Figure 8: error propagation between subsystems (fs and kernel rows,
// as the paper shows; arch and mm are printed as well for completeness).
//
// Paper: ~90% of crashes occur inside the faulted subsystem; the
// primary propagation path is fs -> kernel (5.7% in campaign A).
#include <cstdio>

#include "analysis/io.h"
#include "analysis/render.h"

int main(int argc, char** argv) {
  using namespace kfi;
  const analysis::BenchOptions options =
      analysis::parse_bench_options(argc, argv);

  inject::Injector injector;
  for (const inject::Campaign campaign :
       {inject::Campaign::RandomNonBranch, inject::Campaign::RandomBranch,
        inject::Campaign::IncorrectBranch}) {
    const inject::CampaignRun run =
        analysis::bench_campaign(injector, campaign, options);
    for (const kernel::Subsystem from :
         {kernel::Subsystem::Fs, kernel::Subsystem::Kernel,
          kernel::Subsystem::Arch, kernel::Subsystem::Mm}) {
      const analysis::PropagationGraph graph =
          analysis::make_propagation(run, from);
      if (graph.total_crashes == 0) continue;
      std::fputs(analysis::render_propagation(graph).c_str(), stdout);
      std::printf("\n");
    }
  }
  std::printf(
      "paper: ~90%% of crashes stay inside the faulted subsystem;\n"
      "fs -> kernel is the primary propagation path (5.7%%)\n");
  return 0;
}
