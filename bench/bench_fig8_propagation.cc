// Figure 8: error propagation between subsystems (fs and kernel rows,
// as the paper shows; arch and mm are printed as well for completeness).
//
// Default attribution reads the final oops eip (make_propagation).
// With --traced [N], every crash is additionally replayed under the
// forensics event trace and attributed to the subsystem of the first
// trap/memory fault after the flip (make_traced_propagation) — the
// paper's actual call-trace reading.  N caps replays per (campaign,
// subsystem) pair; skipped crashes are printed, never silent.
//
// Paper: ~90% of crashes occur inside the faulted subsystem; the
// primary propagation path is fs -> kernel (5.7% in campaign A).
#include <cstdio>
#include <cstring>
#include <memory>

#include "analysis/aggregate.h"
#include "analysis/io.h"
#include "analysis/render.h"
#include "support/strings.h"
#include "trace/trace.h"

int main(int argc, char** argv) {
  using namespace kfi;
  const analysis::BenchOptions options =
      analysis::parse_bench_options(argc, argv);
  bool traced = false;
  std::uint64_t max_replays = 0;  // 0 = replay every crash
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--traced") == 0) {
      traced = true;
      // Optional numeric cap; a following flag simply fails the parse
      // and leaves the cap at "unlimited".
      if (i + 1 < argc) parse_u64(argv[i + 1], max_replays);
    }
  }

  inject::Injector injector;
  // A separate single-threaded tracer so replays never perturb the
  // campaign injector's machines mid-analysis.
  std::unique_ptr<inject::Injector> tracer;
  if (traced) {
    inject::InjectorOptions trace_options = injector.options();
    trace_options.trace_capacity = trace::TraceBuffer::kDefaultCapacity;
    tracer = std::make_unique<inject::Injector>(trace_options);
  }
  for (const inject::Campaign campaign :
       {inject::Campaign::RandomNonBranch, inject::Campaign::RandomBranch,
        inject::Campaign::IncorrectBranch}) {
    const inject::CampaignRun run =
        analysis::bench_campaign(injector, campaign, options);
    for (const kernel::Subsystem from :
         {kernel::Subsystem::Fs, kernel::Subsystem::Kernel,
          kernel::Subsystem::Arch, kernel::Subsystem::Mm}) {
      const analysis::PropagationGraph graph =
          analysis::make_propagation(run, from);
      if (graph.total_crashes == 0) continue;
      std::fputs(analysis::render_propagation(graph).c_str(), stdout);
      if (traced) {
        const analysis::TracedPropagation tp =
            analysis::make_traced_propagation(*tracer, run, from,
                                              max_replays);
        std::printf("traced (first fault after flip, %zu replays", tp.replayed);
        if (tp.skipped > 0) std::printf(", %zu beyond cap", tp.skipped);
        if (tp.mismatches > 0) {
          std::printf(", %zu replay MISMATCHES", tp.mismatches);
        }
        std::printf("):\n");
        std::fputs(analysis::render_propagation(tp.graph).c_str(), stdout);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "paper: ~90%% of crashes stay inside the faulted subsystem;\n"
      "fs -> kernel is the primary propagation path (5.7%%)\n");
  return 0;
}
