// Table 6: case studies of Not Manifested errors in the Random Branch
// campaign — corrupted branches whose new condition evaluates the same
// way, or corruptions absorbed by downstream code.
#include <cstdio>

#include "analysis/io.h"
#include "analysis/render.h"
#include "support/strings.h"

int main(int argc, char** argv) {
  using namespace kfi;
  const analysis::BenchOptions options =
      analysis::parse_bench_options(argc, argv);

  inject::Injector injector;
  const inject::CampaignRun run = analysis::bench_campaign(
      injector, inject::Campaign::RandomBranch, options);

  std::printf(
      "Table 6: Causes of Not Manifested Errors in the Random Branch "
      "Error Injection Campaign\n"
      "--------------------------------------------------------------\n");
  int shown = 0;
  for (const inject::InjectionResult& r : run.results) {
    if (r.outcome != inject::Outcome::NotManifested) continue;
    if (r.disasm_before == r.disasm_after) continue;
    std::printf("  %2d. %-22s %-8s @%s\n", ++shown, r.spec.function.c_str(),
                std::string(kernel::subsystem_name(r.spec.subsystem)).c_str(),
                hex32(r.spec.instr_addr).c_str());
    std::printf("      before: %-28s after: %s\n", r.disasm_before.c_str(),
                r.disasm_after.c_str());
    if (shown >= 12) break;
  }
  if (shown == 0) {
    std::printf("  (no not-manifested branch corruptions in this run; "
                "increase --scale)\n");
  }

  std::uint64_t nm = 0;
  std::uint64_t activated = 0;
  for (const inject::InjectionResult& r : run.results) {
    if (r.outcome == inject::Outcome::NotActivated) continue;
    ++activated;
    if (r.outcome == inject::Outcome::NotManifested) ++nm;
  }
  std::printf(
      "\nnot manifested: %s of %s activated branch errors (%s)\n",
      with_commas(nm).c_str(), with_commas(activated).c_str(),
      percent(static_cast<double>(nm), static_cast<double>(activated))
          .c_str());
  std::printf(
      "paper: 47.5%% of activated random-branch errors are not\n"
      "manifested — typically the corrupted condition evaluates the\n"
      "same way (e.g. je -> jl with both not taken)\n");
  return 0;
}
