// Table 2 (experimental setup summary) and Table 3 (outcome categories)
// — the descriptive tables, printed for our substrate side by side with
// the paper's.
#include <cstdio>

#include "kernel/build.h"
#include "kernel/koffsets.h"
#include "inject/outcome.h"
#include "vm/layout.h"
#include "workloads/workloads.h"

int main() {
  using namespace kfi;

  std::printf("Table 2: Experimental Setup Summary\n");
  std::printf("------------------------------------------------------------\n");
  std::printf("  %-22s %-28s %s\n", "", "paper", "this reproduction");
  std::printf("  %-22s %-28s %s\n", "CPU", "Intel P4, 1.5 GHz",
              "KX86 simulator (1 cycle/instr)");
  std::printf("  %-22s %-28s %s\n", "Memory", "256 MB",
              "16 MiB simulated RAM");
  std::printf("  %-22s %-28s %s\n", "Kernel", "Linux 2.4.19",
              "kfi mini-kernel (2.4 API names)");
  std::printf("  %-22s %-28s %s\n", "Distribution", "RedHat 7.3",
              "n/a (host-built image)");
  std::printf("  %-22s %-28s %s\n", "File system", "ext2",
              "kfs (ext2-like, write-through)");
  std::printf("  %-22s %-28s %s\n", "Crash dump", "LKCD",
              "crash port + host dump (kdb)");
  std::printf("  %-22s %-28s %s\n", "Workload", "UnixBench",
              "MiniC UnixBench analogs");
  std::printf("  %-22s %-28s %s\n", "Profiling", "Kernprof",
              "cycle-sampled PC profiler");
  std::printf("  %-22s %-28s %s\n", "Kernel debug", "KDB",
              "kfi::machine::Kdb");
  std::printf("  %-22s %-28s %s\n", "Injection tool",
              "Linux Kernel Injector", "kfi::inject (debug registers)");

  std::printf("\n  workloads:");
  for (const workloads::Workload& w : workloads::all_workloads()) {
    std::printf(" %s", w.name.c_str());
  }
  std::printf("\n  kernel: %zu functions, timer period %u cycles, %u task "
              "slots\n",
              kernel::built_kernel().functions.size(),
              kernel::kTimerPeriodCycles, kernel::kNumTasks);

  std::printf("\nTable 3: Outcome Categories\n");
  std::printf("------------------------------------------------------------\n");
  std::printf("  Activated        the corrupted instruction is executed\n");
  std::printf("  %-16s executed, no visible abnormal impact (console,\n"
              "  %-16s exit code, and on-disk tree match the golden run)\n",
              std::string(inject::outcome_name(
                  inject::Outcome::NotManifested)).c_str(), "");
  std::printf("  %-16s the OS or the application erroneously detects an\n"
              "  %-16s error or propagates incorrect data/output\n",
              "Fail Silence", "Violation");
  std::printf("  Crash            kernel oops: the crash handler dumps "
              "cause/EIP/latency\n");
  for (const inject::CrashCause cause :
       {inject::CrashCause::NullPointer, inject::CrashCause::PagingRequest,
        inject::CrashCause::GpFault, inject::CrashCause::InvalidOpcode,
        inject::CrashCause::DivideError, inject::CrashCause::KernelPanic,
        inject::CrashCause::OutOfMemory}) {
    std::printf("      - %s\n",
                std::string(inject::crash_cause_name(cause)).c_str());
  }
  std::printf("  Hang/Unknown     watchdog expiry, hard deadlock (hlt with\n"
              "                   interrupts off), or double/triple fault\n");
  return 0;
}
