// Microbenchmarks (google-benchmark) for the substrate itself: decoder,
// encoder, CPU stepping, machine boot/restore, compile/assemble, and a
// full injection run.  These quantify the cost model behind the
// campaign harness.
#include <benchmark/benchmark.h>

#include "inject/injector.h"
#include "inject/targets.h"
#include "isa/decode.h"
#include "isa/encode.h"
#include "kasm/assembler.h"
#include "kernel/build.h"
#include "machine/machine.h"
#include "minic/codegen.h"

namespace {

using namespace kfi;

void BM_DecodeHotSequence(benchmark::State& state) {
  // A representative compiled-code byte stream.
  const std::uint8_t bytes[] = {0x55, 0x89, 0xE5, 0x8B, 0x45, 0x08, 0x50,
                                0x8B, 0x45, 0x0C, 0x89, 0xC1, 0x58, 0x01,
                                0xC8, 0xC9, 0xC3};
  std::size_t pos = 0;
  for (auto _ : state) {
    isa::Instruction instr;
    isa::decode(bytes + pos, sizeof bytes - pos, instr);
    pos += instr.length;
    if (pos >= sizeof bytes - isa::kMaxInstructionLength) pos = 0;
    benchmark::DoNotOptimize(instr);
  }
}
BENCHMARK(BM_DecodeHotSequence);

void BM_EncodeMovRegImm(benchmark::State& state) {
  isa::Instruction instr;
  instr.op = isa::Op::Mov;
  instr.dst = isa::Operand::make_reg(isa::Reg::Eax);
  instr.src = isa::Operand::make_imm(0x12345678);
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    out.clear();
    isa::encode(instr, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_EncodeMovRegImm);

void BM_AssembleFunction(benchmark::State& state) {
  const char* src = R"(
  .func f
  f:
    push %ebp
    mov %esp, %ebp
    mov 8(%ebp), %eax
    add $4, %eax
    cmp $100, %eax
    jl out
    mov $0, %eax
  out:
    leave
    ret
  .endfunc
  )";
  for (auto _ : state) {
    kasm::AsmResult result = kasm::assemble(src, 0xC0105000);
    benchmark::DoNotOptimize(result.unit.bytes.data());
  }
}
BENCHMARK(BM_AssembleFunction);

void BM_CompileMiniC(benchmark::State& state) {
  const char* src = R"(
    global counter = 0;
    func bump(n) {
      var i = 0;
      while (i < n) {
        counter = counter + i;
        i = i + 1;
      }
      return counter;
    }
  )";
  for (auto _ : state) {
    minic::CompileResult result = minic::compile(src, "bench");
    benchmark::DoNotOptimize(result.text_asm.data());
  }
}
BENCHMARK(BM_CompileMiniC);

void BM_CpuStepThroughput(benchmark::State& state) {
  static machine::Machine* m = [] {
    static disk::DiskImage disk_image = machine::make_root_disk();
    auto* machine = new machine::Machine(
        kernel::built_kernel(), workloads::built_workload("dhry"),
        disk_image);
    machine->boot();
    return machine;
  }();
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    state.PauseTiming();
    m->restore();
    state.ResumeTiming();
    const std::uint64_t start = m->cpu().cycles();
    m->run(200'000);
    cycles += m->cpu().cycles() - start;
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CpuStepThroughput)->Unit(benchmark::kMillisecond);

void BM_MachineRestore(benchmark::State& state) {
  static machine::Machine* m = [] {
    static disk::DiskImage disk_image = machine::make_root_disk();
    auto* machine = new machine::Machine(
        kernel::built_kernel(), workloads::built_workload("syscall"),
        disk_image);
    machine->boot();
    return machine;
  }();
  for (auto _ : state) {
    m->restore();
  }
}
BENCHMARK(BM_MachineRestore)->Unit(benchmark::kMillisecond);

void BM_SingleInjectionRun(benchmark::State& state) {
  static inject::Injector* injector = new inject::Injector();
  static const inject::InjectionSpec spec = [] {
    const kernel::KernelImage& image = kernel::built_kernel();
    const kernel::KernelFunction* fn = image.function("pipe_read");
    const auto sites = inject::enumerate_function(image, *fn);
    inject::InjectionSpec s;
    s.campaign = inject::Campaign::RandomNonBranch;
    s.function = fn->name;
    s.subsystem = fn->subsystem;
    s.instr_addr = sites[1].addr;
    s.instr_len = static_cast<std::uint8_t>(sites[1].bytes.size());
    s.byte_index = 0;
    s.bit_index = 2;
    s.workload = "pipe";
    return s;
  }();
  (void)injector->golden("pipe");  // warm outside the loop
  for (auto _ : state) {
    inject::InjectionResult result = injector->run_one(spec);
    benchmark::DoNotOptimize(result.outcome);
  }
}
BENCHMARK(BM_SingleInjectionRun)->Unit(benchmark::kMillisecond);

void BM_KernelBuild(benchmark::State& state) {
  for (auto _ : state) {
    kernel::BuildResult result = kernel::build_kernel();
    benchmark::DoNotOptimize(result.image.segments.data());
  }
}
BENCHMARK(BM_KernelBuild)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
