// Table 1: function distribution among kernel modules, derived from
// kernprof-style PC sampling while the UnixBench-analog workloads run.
//
// Paper: 403 profiled functions; the top 32 cover 95% of all profiling
// values (arch 5, fs 12, kernel 5, mm 10 of the core 32).
#include <cstdio>

#include "analysis/render.h"
#include "profile/profile.h"
#include "support/strings.h"

int main() {
  const kfi::profile::ProfileResult& prof = kfi::profile::default_profile();
  std::fputs(kfi::analysis::render_table1(prof, 0.95).c_str(), stdout);

  std::printf("\nHottest kernel functions (kernprof analog):\n");
  int rank = 1;
  for (const kfi::profile::FunctionSamples& fs : prof.functions) {
    if (rank > 20) break;
    std::printf("  %2d. %-24s %-8s %8s samples  (best workload: %s)\n",
                rank++, fs.function.c_str(),
                std::string(kfi::kernel::subsystem_name(fs.subsystem)).c_str(),
                kfi::with_commas(fs.samples).c_str(),
                prof.best_workload(fs.function).c_str());
  }
  std::printf("\npaper: top 32 of 403 profiled functions cover 95%%\n");
  return 0;
}
