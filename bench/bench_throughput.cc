// bench_throughput — end-to-end campaign throughput of seven execution
// paths: full-restore baseline, checkpoint ladder (PR 2), checkpoint
// ladder + superblock engine (PR 3), chained superblock dispatch
// (block_chained: trace widening + successor links + inline translate
// cache), direct-threaded dispatch (block_threaded: per-op handler
// pointers + flag-liveness elision on top of chaining), memfast
// dispatch (block_memfast: software D-TLB on guest loads/stores +
// trace formation widened past conditional branches on top of
// threading), and the fastest mode with the forensics event trace
// attached (PR 5's observational-overhead gate) — plus a worker-thread
// scaling sweep (threads = 1/2/4/8) of the fastest mode over one
// shared, prewarmed GoldenCache.
//
// All modes and every sweep entry run the identical smoke-scale A/B/C
// campaigns; the result vectors are required to be bit-identical (exit
// 1 otherwise), so the measured speedup can never come from changed
// behavior.  Emits BENCH_throughput.json with machine-readable numbers:
// runs/sec per mode, RAM bytes copied per restore, checkpoint hit rate,
// decode-cache hit rate, block-engine counters, the per-thread-count
// sweep (with scheduler telemetry), the worker-process sweep of the
// sharded campaign service (src/serve) under the same digest gate, and
// the shared result digest.
//
// Sweeps default to {1, 2, 4, 8}; --jobs N (or KFI_JOBS) replaces the
// ladder with {1, N} — strictly parsed, so a mistyped count aborts
// instead of silently sweeping hardware concurrency.  Every sweep
// entry records hardware_concurrency, and a single-core host tags the
// sweeps "scaling_valid": false: the identity gates still bind there,
// the wall-clock ratios do not.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/io.h"
#include "analysis/store.h"
#include "check/expectations.h"
#include "check/replay.h"
#include "inject/campaign.h"
#include "inject/golden.h"
#include "machine/machine.h"
#include "profile/profile.h"
#include "serve/service.h"
#include "support/strings.h"
#include "trace/trace.h"

namespace {

using namespace kfi;

constexpr inject::Campaign kCampaigns[] = {
    inject::Campaign::RandomNonBranch,
    inject::Campaign::RandomBranch,
    inject::Campaign::IncorrectBranch,
};

struct ModeResult {
  std::string name;
  unsigned threads = 1;
  double seconds = 0.0;
  std::uint64_t runs = 0;
  // Aggregated over every worker Injector and all three campaigns.
  inject::CampaignStats stats;
  std::vector<inject::CampaignRun> campaigns;
};

// Runs the three smoke campaigns with `threads` workers.  When `cache`
// is non-null the Injector borrows it (golden artifacts prewarmed
// outside the timed region); otherwise a private cache is built inside
// it, exactly as a cold campaign would.
ModeResult run_mode(const std::string& name,
                    const inject::InjectorOptions& options,
                    unsigned threads = 1,
                    std::shared_ptr<inject::GoldenCache> cache = nullptr) {
  ModeResult mode;
  mode.name = name;
  mode.threads = threads;
  auto injector = cache != nullptr
                      ? std::make_unique<inject::Injector>(std::move(cache))
                      : std::make_unique<inject::Injector>(options);
  const auto begin = std::chrono::steady_clock::now();
  for (const inject::Campaign campaign : kCampaigns) {
    inject::CampaignConfig config = check::smoke_config(campaign);
    config.threads = threads;
    mode.campaigns.push_back(inject::run_campaign(
        *injector, profile::default_profile(), config));
    const inject::CampaignStats& cs = mode.campaigns.back().stats;
    mode.runs += mode.campaigns.back().results.size();
    mode.stats += cs;
    mode.stats.chunks += cs.chunks;  // telemetry: not part of +=
    mode.stats.steals += cs.steals;
  }
  const auto end = std::chrono::steady_clock::now();
  mode.seconds = std::chrono::duration<double>(end - begin).count();
  mode.stats.threads_used = threads;
  return mode;
}

// FNV-1a over every field that identifies an outcome; any behavioral
// divergence between two modes changes the value.  Shared with the
// campaign service's streaming aggregation (analysis/store), which is
// exactly why the sharded digest is comparable bit-for-bit.
std::uint64_t results_digest(const std::vector<inject::CampaignRun>& runs) {
  return analysis::results_digest(runs);
}

double per_restore(std::uint64_t total, std::uint64_t restores) {
  return restores == 0 ? 0.0
                       : static_cast<double>(total) / static_cast<double>(restores);
}

void print_mode(std::FILE* out, const ModeResult& mode, bool last) {
  const machine::PerfStats& perf = mode.stats.perf;
  const double rate =
      mode.seconds > 0.0 ? static_cast<double>(mode.runs) / mode.seconds : 0.0;
  const std::uint64_t decode_total = perf.decode_hits + perf.decode_misses;
  const std::uint64_t resumes =
      mode.stats.checkpoint_hits + mode.stats.checkpoint_misses;
  const std::uint64_t block_entries = perf.block_builds + perf.block_hits;
  std::fprintf(
      out,
      "    \"%s\": {\n"
      "      \"seconds\": %.3f,\n"
      "      \"runs\": %llu,\n"
      "      \"runs_per_sec\": %.2f,\n"
      "      \"restores\": %llu,\n"
      "      \"ram_bytes_per_restore\": %.1f,\n"
      "      \"disk_blocks_restored\": %llu,\n"
      "      \"checkpoints_taken\": %llu,\n"
      "      \"checkpoint_hits\": %llu,\n"
      "      \"checkpoint_misses\": %llu,\n"
      "      \"checkpoint_hit_rate\": %.4f,\n"
      "      \"reconverged\": %llu,\n"
      "      \"pre_trigger_cycles\": %llu,\n"
      "      \"post_trigger_cycles\": %llu,\n"
      "      \"decode_hit_rate\": %.4f,\n"
      "      \"block_builds\": %llu,\n"
      "      \"block_hits\": %llu,\n"
      "      \"block_hit_rate\": %.4f,\n"
      "      \"block_fallbacks\": %llu,\n"
      "      \"block_invalidations\": %llu,\n"
      "      \"block_ops\": %llu,\n"
      "      \"avg_block_len\": %.2f,\n"
      "      \"chain_follows\": %llu,\n"
      "      \"chain_breaks\": %llu,\n"
      "      \"avg_trace_len\": %.2f,\n"
      "      \"threaded_ops\": %llu,\n"
      "      \"flag_elisions\": %llu,\n"
      "      \"dtlb_hits\": %llu,\n"
      "      \"dtlb_misses\": %llu,\n"
      "      \"cond_widened\": %llu,\n"
      "      \"side_exits\": %llu,\n"
      "      \"trace_events\": %llu,\n"
      "      \"trace_dropped\": %llu\n"
      "    }%s\n",
      mode.name.c_str(), mode.seconds,
      static_cast<unsigned long long>(mode.runs), rate,
      static_cast<unsigned long long>(perf.restores),
      per_restore(perf.bytes_restored, perf.restores),
      static_cast<unsigned long long>(perf.disk_blocks_restored),
      static_cast<unsigned long long>(perf.checkpoints_taken),
      static_cast<unsigned long long>(mode.stats.checkpoint_hits),
      static_cast<unsigned long long>(mode.stats.checkpoint_misses),
      resumes == 0 ? 0.0
                   : static_cast<double>(mode.stats.checkpoint_hits) /
                         static_cast<double>(resumes),
      static_cast<unsigned long long>(mode.stats.reconverged),
      static_cast<unsigned long long>(mode.stats.pre_trigger_cycles),
      static_cast<unsigned long long>(mode.stats.post_trigger_cycles),
      decode_total == 0 ? 0.0
                        : static_cast<double>(perf.decode_hits) /
                              static_cast<double>(decode_total),
      static_cast<unsigned long long>(perf.block_builds),
      static_cast<unsigned long long>(perf.block_hits),
      block_entries + perf.block_fallbacks == 0
          ? 0.0
          : static_cast<double>(perf.block_hits) /
                static_cast<double>(block_entries + perf.block_fallbacks),
      static_cast<unsigned long long>(perf.block_fallbacks),
      static_cast<unsigned long long>(perf.block_invalidations),
      static_cast<unsigned long long>(perf.block_ops),
      block_entries == 0 ? 0.0
                         : static_cast<double>(perf.block_ops) /
                               static_cast<double>(block_entries),
      static_cast<unsigned long long>(perf.chain_follows),
      static_cast<unsigned long long>(perf.chain_breaks),
      perf.block_builds == 0 ? 0.0
                             : static_cast<double>(perf.trace_len) /
                                   static_cast<double>(perf.block_builds),
      static_cast<unsigned long long>(perf.threaded_ops),
      static_cast<unsigned long long>(perf.flag_elisions),
      static_cast<unsigned long long>(perf.dtlb_hits),
      static_cast<unsigned long long>(perf.dtlb_misses),
      static_cast<unsigned long long>(perf.cond_widened),
      static_cast<unsigned long long>(perf.side_exits),
      static_cast<unsigned long long>(perf.trace_events),
      static_cast<unsigned long long>(perf.trace_dropped),
      last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_throughput.json";
  unsigned jobs = analysis::jobs_from_env();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      if (!parse_jobs(argv[i + 1], jobs)) {
        std::fprintf(stderr, "error: --jobs expects an integer in "
                             "[1, 1024], got '%s'\n", argv[i + 1]);
        return 2;
      }
      ++i;
    }
  }
  // --jobs N swaps the hardcoded {1,2,4,8} ladders for {1, N}: the
  // 1-entry stays as the speedup baseline.
  std::vector<unsigned> sweep_counts = {1u, 2u, 4u, 8u};
  if (jobs != 0) {
    sweep_counts = {1u};
    if (jobs != 1) sweep_counts.push_back(jobs);
  }

  inject::InjectorOptions baseline_options;
  baseline_options.checkpoints = 0;
  baseline_options.full_restore = true;
  baseline_options.exec_engine = machine::ExecEngine::Step;
  const ModeResult baseline = run_mode("baseline_full_restore",
                                       baseline_options);

  inject::InjectorOptions ladder_options;
  ladder_options.exec_engine = machine::ExecEngine::Step;
  const ModeResult ladder = run_mode("checkpoint_ladder", ladder_options);

  inject::InjectorOptions block_options;
  block_options.exec_engine = machine::ExecEngine::Block;
  const ModeResult block =
      run_mode("checkpoint_ladder+block", block_options);

  // Hard gate: neither optimization may change a single result.
  for (std::size_t i = 0; i < ladder.campaigns.size(); ++i) {
    const check::RunComparison vs_ladder =
        check::compare_runs(baseline.campaigns[i], ladder.campaigns[i]);
    if (!vs_ladder.identical()) {
      std::fprintf(stderr,
                   "FAIL: campaign %zu diverged between baseline and ladder "
                   "(%zu mismatches of %zu)\n",
                   i, vs_ladder.mismatches.size(), vs_ladder.compared);
      return 1;
    }
    const check::RunComparison vs_block =
        check::compare_runs(baseline.campaigns[i], block.campaigns[i]);
    if (!vs_block.identical()) {
      std::fprintf(stderr,
                   "FAIL: campaign %zu diverged between baseline and block "
                   "engine (%zu mismatches of %zu)\n",
                   i, vs_block.mismatches.size(), vs_block.compared);
      return 1;
    }
  }
  const std::uint64_t digest = results_digest(ladder.campaigns);
  const std::uint64_t block_digest = results_digest(block.campaigns);
  if (block_digest != digest) {
    std::fprintf(stderr,
                 "FAIL: block-engine result digest %016llx != %016llx\n",
                 static_cast<unsigned long long>(block_digest),
                 static_cast<unsigned long long>(digest));
    return 1;
  }

  // Chained dispatch leg: trace widening + block-to-block successor
  // links + the inline translate cache, under the same hard gate — the
  // campaign digest must be bit-identical to every prior mode.
  inject::InjectorOptions chained_options;
  chained_options.exec_engine = machine::ExecEngine::Chained;
  const ModeResult chained = run_mode("block_chained", chained_options);
  for (std::size_t i = 0; i < chained.campaigns.size(); ++i) {
    const check::RunComparison vs_chained =
        check::compare_runs(baseline.campaigns[i], chained.campaigns[i]);
    if (!vs_chained.identical()) {
      std::fprintf(stderr,
                   "FAIL: campaign %zu diverged between baseline and chained "
                   "dispatch (%zu mismatches of %zu)\n",
                   i, vs_chained.mismatches.size(), vs_chained.compared);
      return 1;
    }
  }
  const std::uint64_t chained_digest = results_digest(chained.campaigns);
  if (chained_digest != digest) {
    std::fprintf(stderr,
                 "FAIL: chained-dispatch result digest %016llx != %016llx\n",
                 static_cast<unsigned long long>(chained_digest),
                 static_cast<unsigned long long>(digest));
    return 1;
  }

  // Direct-threaded leg: chained dispatch with per-op handler pointers
  // and dead-flag elision.  Same hard gate — the whole point of the
  // liveness proof is that skipping flag writes is invisible in every
  // result bit.
  inject::InjectorOptions threaded_options;
  threaded_options.exec_engine = machine::ExecEngine::Threaded;
  const ModeResult threaded = run_mode("block_threaded", threaded_options);
  for (std::size_t i = 0; i < threaded.campaigns.size(); ++i) {
    const check::RunComparison vs_threaded =
        check::compare_runs(baseline.campaigns[i], threaded.campaigns[i]);
    if (!vs_threaded.identical()) {
      std::fprintf(stderr,
                   "FAIL: campaign %zu diverged between baseline and threaded "
                   "dispatch (%zu mismatches of %zu)\n",
                   i, vs_threaded.mismatches.size(), vs_threaded.compared);
      return 1;
    }
  }
  const std::uint64_t threaded_digest = results_digest(threaded.campaigns);
  if (threaded_digest != digest) {
    std::fprintf(stderr,
                 "FAIL: threaded-dispatch result digest %016llx != %016llx\n",
                 static_cast<unsigned long long>(threaded_digest),
                 static_cast<unsigned long long>(digest));
    return 1;
  }

  // Memfast leg: threaded dispatch plus the data-side fast paths —
  // software D-TLB in front of guest loads/stores and trace formation
  // widened past conditional branches with a guarded side exit.  Same
  // hard gate: a D-TLB hit or widened edge that changed any result bit
  // would fail right here.
  inject::InjectorOptions memfast_options;
  memfast_options.exec_engine = machine::ExecEngine::Memfast;
  const ModeResult memfast = run_mode("block_memfast", memfast_options);
  for (std::size_t i = 0; i < memfast.campaigns.size(); ++i) {
    const check::RunComparison vs_memfast =
        check::compare_runs(baseline.campaigns[i], memfast.campaigns[i]);
    if (!vs_memfast.identical()) {
      std::fprintf(stderr,
                   "FAIL: campaign %zu diverged between baseline and memfast "
                   "dispatch (%zu mismatches of %zu)\n",
                   i, vs_memfast.mismatches.size(), vs_memfast.compared);
      return 1;
    }
  }
  const std::uint64_t memfast_digest = results_digest(memfast.campaigns);
  if (memfast_digest != digest) {
    std::fprintf(stderr,
                 "FAIL: memfast-dispatch result digest %016llx != %016llx\n",
                 static_cast<unsigned long long>(memfast_digest),
                 static_cast<unsigned long long>(digest));
    return 1;
  }

  // Trace-on leg: same fastest mode with the forensics trace attached.
  // The trace layer's observational contract is gated here — recording
  // may cost wall clock, but not a single result bit.
  inject::InjectorOptions trace_options = memfast_options;
  trace_options.trace_capacity = trace::TraceBuffer::kDefaultCapacity;
  const ModeResult traced = run_mode("trace", trace_options);
  for (std::size_t i = 0; i < traced.campaigns.size(); ++i) {
    const check::RunComparison vs_trace =
        check::compare_runs(baseline.campaigns[i], traced.campaigns[i]);
    if (!vs_trace.identical()) {
      std::fprintf(stderr,
                   "FAIL: campaign %zu diverged with tracing enabled "
                   "(%zu mismatches of %zu)\n",
                   i, vs_trace.mismatches.size(), vs_trace.compared);
      return 1;
    }
  }
  const std::uint64_t trace_digest = results_digest(traced.campaigns);
  if (trace_digest != digest) {
    std::fprintf(stderr,
                 "FAIL: trace-on result digest %016llx != %016llx\n",
                 static_cast<unsigned long long>(trace_digest),
                 static_cast<unsigned long long>(digest));
    return 1;
  }

  const double speedup =
      ladder.seconds > 0.0 ? baseline.seconds / ladder.seconds : 0.0;
  const double block_speedup =
      block.seconds > 0.0 ? ladder.seconds / block.seconds : 0.0;
  const double chained_speedup =
      chained.seconds > 0.0 ? ladder.seconds / chained.seconds : 0.0;
  const double threaded_speedup =
      threaded.seconds > 0.0 ? ladder.seconds / threaded.seconds : 0.0;
  const double memfast_speedup =
      memfast.seconds > 0.0 ? ladder.seconds / memfast.seconds : 0.0;
  const double total_speedup =
      memfast.seconds > 0.0 ? baseline.seconds / memfast.seconds : 0.0;
  // The component the ladder optimizes: pre-trigger replay simulated per
  // run.  Post-trigger simulation is inherent to the injected fault and
  // dominates wall clock on this population (hot-function targets
  // trigger on their first execution, early in the run), which bounds
  // the end-to-end ratio well below the setup ratio — see DESIGN.md.
  const double setup_speedup =
      ladder.stats.pre_trigger_cycles > 0
          ? static_cast<double>(baseline.stats.pre_trigger_cycles) /
                static_cast<double>(ladder.stats.pre_trigger_cycles)
          : 0.0;
  std::printf("baseline:     %6.2f s  (%.2f runs/s)\n", baseline.seconds,
              static_cast<double>(baseline.runs) / baseline.seconds);
  std::printf("ladder:       %6.2f s  (%.2f runs/s)\n", ladder.seconds,
              static_cast<double>(ladder.runs) / ladder.seconds);
  std::printf("ladder+block: %6.2f s  (%.2f runs/s)\n", block.seconds,
              static_cast<double>(block.runs) / block.seconds);
  std::printf("block_chained:%6.2f s  (%.2f runs/s, %llu chain follows, "
              "%llu breaks)\n",
              chained.seconds,
              static_cast<double>(chained.runs) / chained.seconds,
              static_cast<unsigned long long>(chained.stats.perf.chain_follows),
              static_cast<unsigned long long>(chained.stats.perf.chain_breaks));
  std::printf(
      "block_threaded:%5.2f s  (%.2f runs/s, %llu threaded ops, "
      "%llu flag writes elided)\n",
      threaded.seconds, static_cast<double>(threaded.runs) / threaded.seconds,
      static_cast<unsigned long long>(threaded.stats.perf.threaded_ops),
      static_cast<unsigned long long>(threaded.stats.perf.flag_elisions));
  const std::uint64_t dtlb_total =
      memfast.stats.perf.dtlb_hits + memfast.stats.perf.dtlb_misses;
  std::printf(
      "block_memfast:%6.2f s  (%.2f runs/s, %.1f%% dtlb hit rate, "
      "%llu cond edges widened, %llu side exits, %llu flag writes elided)\n",
      memfast.seconds, static_cast<double>(memfast.runs) / memfast.seconds,
      dtlb_total == 0 ? 0.0
                      : 100.0 * static_cast<double>(memfast.stats.perf.dtlb_hits) /
                            static_cast<double>(dtlb_total),
      static_cast<unsigned long long>(memfast.stats.perf.cond_widened),
      static_cast<unsigned long long>(memfast.stats.perf.side_exits),
      static_cast<unsigned long long>(memfast.stats.perf.flag_elisions));
  std::printf(
      "speedup: ladder %.2fx, block-over-ladder %.2fx, chained-over-ladder "
      "%.2fx, threaded-over-ladder %.2fx, memfast-over-ladder %.2fx, total "
      "%.2fx   result digest %016llx (identical)\n",
      speedup, block_speedup, chained_speedup, threaded_speedup,
      memfast_speedup, total_speedup,
      static_cast<unsigned long long>(digest));
  std::printf("pre-trigger replay: %.1fM -> %.1fM cycles (%.1fx less)\n",
              static_cast<double>(baseline.stats.pre_trigger_cycles) / 1e6,
              static_cast<double>(ladder.stats.pre_trigger_cycles) / 1e6,
              setup_speedup);
  const double trace_overhead =
      memfast.seconds > 0.0 ? traced.seconds / memfast.seconds : 0.0;
  std::printf("trace-on:     %6.2f s  (%.2fx of block_memfast, %llu events, "
              "%llu dropped, digest identical)\n",
              traced.seconds, trace_overhead,
              static_cast<unsigned long long>(traced.stats.perf.trace_events),
              static_cast<unsigned long long>(traced.stats.perf.trace_dropped));

  // Worker-thread scaling sweep of the fastest mode.  One GoldenCache
  // is prewarmed (golden runs + ladders for every workload the
  // campaigns touch) before the clock starts, so each entry times pure
  // injection work — and proves golden warm-up happens once per
  // workload total, not once per thread.
  auto sweep_cache = std::make_shared<inject::GoldenCache>(memfast_options);
  {
    std::set<std::string> workloads;
    for (const inject::Campaign campaign : kCampaigns) {
      const std::vector<inject::InjectionSpec> targets =
          inject::campaign_targets(profile::default_profile(),
                                   check::smoke_config(campaign), nullptr);
      for (const inject::InjectionSpec& spec : targets) {
        workloads.insert(spec.workload);
      }
    }
    for (const std::string& w : workloads) sweep_cache->workload(w);
  }
  const std::uint64_t golden_builds = sweep_cache->golden_builds();
  const unsigned hardware = std::thread::hardware_concurrency();
  // On a single-core host the sweep's wall-clock ratios measure
  // scheduling overhead, not scaling; the JSON says so explicitly.
  const bool scaling_valid = hardware > 1;
  std::vector<ModeResult> sweep;
  for (const unsigned threads : sweep_counts) {
    sweep.push_back(run_mode("t" + std::to_string(threads), memfast_options,
                             threads, sweep_cache));
    const ModeResult& entry = sweep.back();
    for (std::size_t i = 0; i < entry.campaigns.size(); ++i) {
      const check::RunComparison cmp =
          check::compare_runs(baseline.campaigns[i], entry.campaigns[i]);
      if (!cmp.identical()) {
        std::fprintf(stderr,
                     "FAIL: campaign %zu diverged at threads=%u "
                     "(%zu mismatches of %zu)\n",
                     i, threads, cmp.mismatches.size(), cmp.compared);
        return 1;
      }
    }
    const std::uint64_t entry_digest = results_digest(entry.campaigns);
    if (entry_digest != digest) {
      std::fprintf(stderr,
                   "FAIL: threads=%u result digest %016llx != %016llx\n",
                   threads, static_cast<unsigned long long>(entry_digest),
                   static_cast<unsigned long long>(digest));
      return 1;
    }
  }
  if (sweep_cache->golden_builds() != golden_builds) {
    std::fprintf(stderr, "FAIL: sweep rebuilt golden artifacts (%llu -> %llu)\n",
                 static_cast<unsigned long long>(golden_builds),
                 static_cast<unsigned long long>(sweep_cache->golden_builds()));
    return 1;
  }
  std::printf("threads sweep (block_memfast, shared golden cache, "
              "%u hardware threads%s):\n", hardware,
              scaling_valid ? "" : ", scaling not valid on 1 core");
  for (const ModeResult& entry : sweep) {
    std::printf("  t=%u: %6.2f s  (%.2f runs/s, %.2fx vs t=1, "
                "%llu chunks, %llu steals)\n",
                entry.threads, entry.seconds,
                static_cast<double>(entry.runs) / entry.seconds,
                sweep[0].seconds / entry.seconds,
                static_cast<unsigned long long>(entry.stats.chunks),
                static_cast<unsigned long long>(entry.stats.steals));
  }

  // Worker-process sweep: the sharded campaign service end to end —
  // manifest, golden bundles (built once at w=1, mmap-adopted by every
  // later entry), forked workers, content-addressed shard artifacts,
  // streaming spec-order aggregation.  Gate: the aggregated digest
  // must equal the in-process digest at every worker count.
  struct ProcessEntry {
    unsigned workers = 0;
    double seconds = 0.0;
    serve::ServiceResult result;
  };
  std::vector<ProcessEntry> process_sweep;
  const std::string serve_root = "kfi-serve-bench";
  for (const unsigned workers : sweep_counts) {
    serve::ServiceConfig service;
    for (const inject::Campaign campaign : kCampaigns) {
      service.campaigns.push_back(check::smoke_config(campaign));
    }
    service.options = memfast_options;
    service.dir = serve_root + "/w" + std::to_string(workers);
    service.bundle_dir = serve_root + "/bundles";  // shared: built once
    service.workers = workers;
    service.fresh = true;
    const auto begin = std::chrono::steady_clock::now();
    serve::ServiceResult result = serve::run_service(service);
    const auto end = std::chrono::steady_clock::now();
    if (!result.ok) {
      std::fprintf(stderr, "FAIL: campaign service at workers=%u: %s\n",
                   workers, result.error.c_str());
      return 1;
    }
    if (result.digest != digest) {
      std::fprintf(stderr,
                   "FAIL: workers=%u sharded digest %016llx != %016llx\n",
                   workers, static_cast<unsigned long long>(result.digest),
                   static_cast<unsigned long long>(digest));
      return 1;
    }
    ProcessEntry entry;
    entry.workers = workers;
    entry.seconds = std::chrono::duration<double>(end - begin).count();
    entry.result = std::move(result);
    process_sweep.push_back(std::move(entry));
  }
  std::printf("process sweep (sharded service, forked workers, "
              "%u hardware threads%s):\n", hardware,
              scaling_valid ? "" : ", scaling not valid on 1 core");
  for (const ProcessEntry& entry : process_sweep) {
    std::printf("  w=%u: %6.2f s  (%.2fx vs w=1, %llu shards, "
                "%llu steals, digest identical)\n",
                entry.workers, entry.seconds,
                process_sweep[0].seconds / entry.seconds,
                static_cast<unsigned long long>(entry.result.shard_count),
                static_cast<unsigned long long>(entry.result.steals));
  }

  // Fault-model leg: campaigns D (register-file bit flips), E (kernel
  // data bit flips), F (syscall errno injection) under the same hard
  // gates as A/B/C — the stepper and the fastest engine must agree bit
  // for bit, and the sharded service must reproduce the in-process
  // digest at every worker count.
  constexpr inject::Campaign kFaultModelCampaigns[] = {
      inject::Campaign::RegisterFile,
      inject::Campaign::KernelData,
      inject::Campaign::SyscallErrno,
  };
  std::vector<inject::CampaignRun> fm_step;
  std::vector<inject::CampaignRun> fm_fast;
  {
    inject::Injector step_injector(baseline_options);
    inject::Injector fast_injector(memfast_options);
    for (const inject::Campaign campaign : kFaultModelCampaigns) {
      const inject::CampaignConfig config = check::smoke_config(campaign);
      fm_step.push_back(inject::run_campaign(
          step_injector, profile::default_profile(), config));
      fm_fast.push_back(inject::run_campaign(
          fast_injector, profile::default_profile(), config));
    }
  }
  std::uint64_t fm_campaign_digest[3] = {0, 0, 0};
  for (std::size_t i = 0; i < fm_fast.size(); ++i) {
    const char letter = static_cast<char>('D' + i);
    const check::RunComparison cmp =
        check::compare_runs(fm_step[i], fm_fast[i]);
    if (!cmp.identical()) {
      std::fprintf(stderr,
                   "FAIL: campaign %c diverged between stepper and memfast "
                   "(%zu mismatches of %zu)\n",
                   letter, cmp.mismatches.size(), cmp.compared);
      return 1;
    }
    analysis::ResultDigest one;
    for (const inject::InjectionResult& r : fm_fast[i].results) one.add(r);
    fm_campaign_digest[i] = one.value();
  }
  const std::uint64_t fm_digest = results_digest(fm_fast);
  for (const unsigned workers : sweep_counts) {
    serve::ServiceConfig service;
    for (const inject::Campaign campaign : kFaultModelCampaigns) {
      service.campaigns.push_back(check::smoke_config(campaign));
    }
    service.options = memfast_options;
    service.dir = serve_root + "/def-w" + std::to_string(workers);
    service.bundle_dir = serve_root + "/bundles";  // shared with A/B/C
    service.workers = workers;
    service.fresh = true;
    const serve::ServiceResult result = serve::run_service(service);
    if (!result.ok) {
      std::fprintf(stderr, "FAIL: D/E/F campaign service at workers=%u: %s\n",
                   workers, result.error.c_str());
      return 1;
    }
    if (result.digest != fm_digest) {
      std::fprintf(stderr,
                   "FAIL: workers=%u D/E/F sharded digest %016llx != %016llx\n",
                   workers, static_cast<unsigned long long>(result.digest),
                   static_cast<unsigned long long>(fm_digest));
      return 1;
    }
  }
  std::printf("fault models: D %016llx, E %016llx, F %016llx "
              "(stepper == memfast == sharded, fold %016llx)\n",
              static_cast<unsigned long long>(fm_campaign_digest[0]),
              static_cast<unsigned long long>(fm_campaign_digest[1]),
              static_cast<unsigned long long>(fm_campaign_digest[2]),
              static_cast<unsigned long long>(fm_digest));

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"throughput\",\n  \"modes\": {\n");
  print_mode(out, baseline, false);
  print_mode(out, ladder, false);
  print_mode(out, block, false);
  print_mode(out, chained, false);
  print_mode(out, threaded, false);
  print_mode(out, memfast, false);
  print_mode(out, traced, true);
  std::fprintf(out,
               "  },\n"
               "  \"speedup\": %.3f,\n"
               "  \"block_speedup\": %.3f,\n"
               "  \"chained_speedup\": %.3f,\n"
               "  \"threaded_speedup\": %.3f,\n"
               "  \"memfast_speedup\": %.3f,\n"
               "  \"total_speedup\": %.3f,\n"
               "  \"pre_trigger_speedup\": %.3f,\n"
               "  \"trace_overhead\": %.3f,\n"
               "  \"chained_gate\": {\"chained_identical\": true, "
               "\"result_digest\": \"%016llx\"},\n"
               "  \"threaded_gate\": {\"threaded_identical\": true, "
               "\"result_digest\": \"%016llx\"},\n"
               "  \"memfast_gate\": {\"memfast_identical\": true, "
               "\"result_digest\": \"%016llx\"},\n"
               "  \"trace_gate\": {\"trace_identical\": true, "
               "\"result_digest\": \"%016llx\"},\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"scaling_valid\": %s,\n"
               "  \"sweep_golden_builds\": %llu,\n"
               "  \"threads_sweep\": [\n",
               speedup, block_speedup, chained_speedup, threaded_speedup,
               memfast_speedup, total_speedup, setup_speedup, trace_overhead,
               static_cast<unsigned long long>(chained_digest),
               static_cast<unsigned long long>(threaded_digest),
               static_cast<unsigned long long>(memfast_digest),
               static_cast<unsigned long long>(trace_digest), hardware,
               scaling_valid ? "true" : "false",
               static_cast<unsigned long long>(golden_builds));
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const ModeResult& entry = sweep[i];
    std::fprintf(out,
                 "    {\"threads\": %u, \"seconds\": %.3f, \"runs\": %llu, "
                 "\"runs_per_sec\": %.2f, \"speedup_vs_t1\": %.3f, "
                 "\"chunks\": %llu, \"steals\": %llu, "
                 "\"hardware_concurrency\": %u, \"scaling_valid\": %s, "
                 "\"results_identical\": true, "
                 "\"result_digest\": \"%016llx\"}%s\n",
                 entry.threads, entry.seconds,
                 static_cast<unsigned long long>(entry.runs),
                 static_cast<double>(entry.runs) / entry.seconds,
                 sweep[0].seconds / entry.seconds,
                 static_cast<unsigned long long>(entry.stats.chunks),
                 static_cast<unsigned long long>(entry.stats.steals),
                 hardware, scaling_valid ? "true" : "false",
                 static_cast<unsigned long long>(digest),
                 i + 1 == sweep.size() ? "" : ",");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"sweep_identical\": true,\n"
               "  \"process_sweep\": [\n");
  for (std::size_t i = 0; i < process_sweep.size(); ++i) {
    const ProcessEntry& entry = process_sweep[i];
    std::fprintf(
        out,
        "    {\"workers\": %u, \"seconds\": %.3f, \"runs\": %llu, "
        "\"runs_per_sec\": %.2f, \"speedup_vs_w1\": %.3f, "
        "\"shards\": %llu, \"shards_executed\": %llu, "
        "\"shards_resumed\": %llu, \"steals\": %llu, "
        "\"bundles_built\": %llu, \"bundles_adopted\": %llu, "
        "\"attempts\": %d, "
        "\"hardware_concurrency\": %u, \"scaling_valid\": %s, "
        "\"sharded_identical\": true, "
        "\"result_digest\": \"%016llx\"}%s\n",
        entry.workers, entry.seconds,
        static_cast<unsigned long long>(entry.result.total_runs),
        entry.seconds > 0.0
            ? static_cast<double>(entry.result.total_runs) / entry.seconds
            : 0.0,
        process_sweep[0].seconds / entry.seconds,
        static_cast<unsigned long long>(entry.result.shard_count),
        static_cast<unsigned long long>(entry.result.shards_executed),
        static_cast<unsigned long long>(entry.result.shards_resumed),
        static_cast<unsigned long long>(entry.result.steals),
        static_cast<unsigned long long>(entry.result.bundles_built),
        static_cast<unsigned long long>(entry.result.bundles_adopted),
        entry.result.attempts, hardware, scaling_valid ? "true" : "false",
        static_cast<unsigned long long>(entry.result.digest),
        i + 1 == process_sweep.size() ? "" : ",");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"sharded_gate\": {\"sharded_identical\": true, "
               "\"result_digest\": \"%016llx\"},\n"
               "  \"fault_model_gate\": {\"campaignD_identical\": true, "
               "\"campaignD_digest\": \"%016llx\", "
               "\"campaignE_identical\": true, "
               "\"campaignE_digest\": \"%016llx\", "
               "\"campaignF_identical\": true, "
               "\"campaignF_digest\": \"%016llx\", "
               "\"def_sharded_identical\": true, "
               "\"def_digest\": \"%016llx\"},\n"
               "  \"results_identical\": true,\n"
               "  \"result_digest\": \"%016llx\"\n"
               "}\n",
               static_cast<unsigned long long>(digest),
               static_cast<unsigned long long>(fm_campaign_digest[0]),
               static_cast<unsigned long long>(fm_campaign_digest[1]),
               static_cast<unsigned long long>(fm_campaign_digest[2]),
               static_cast<unsigned long long>(fm_digest),
               static_cast<unsigned long long>(digest));
  std::fclose(out);
  return 0;
}
