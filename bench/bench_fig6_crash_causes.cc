// Figure 6: distribution of crash causes per campaign.
//
// Paper: 95% of crashes stem from four causes — NULL pointer
// dereference, kernel paging request, invalid opcode, general
// protection fault.  Campaign C is dominated by invalid opcode (74.7%,
// the kernel's ud2-based assertions); paging failures collapse from
// ~36% (A/B) to 3.1% (C).
#include <cstdio>

#include "analysis/io.h"
#include "analysis/render.h"

int main(int argc, char** argv) {
  using namespace kfi;
  const analysis::BenchOptions options =
      analysis::parse_bench_options(argc, argv);

  inject::Injector injector;
  for (const inject::Campaign campaign :
       {inject::Campaign::RandomNonBranch, inject::Campaign::RandomBranch,
        inject::Campaign::IncorrectBranch}) {
    const inject::CampaignRun run =
        analysis::bench_campaign(injector, campaign, options);
    const analysis::CrashCauseDistribution dist =
        analysis::make_crash_causes(run);
    std::fputs(analysis::render_crash_causes(dist).c_str(), stdout);
    std::printf("\n");
  }
  std::printf(
      "paper: top-4 causes = 95%% in every campaign; campaign C is\n"
      "dominated by invalid opcode (74.7%%) via BUG()/ud2 assertions,\n"
      "while paging requests drop to 3.1%% (vs ~36%% in A and B)\n");
  return 0;
}
