// Ablation: the ISA-encoding design choices DESIGN.md calls out, and
// how each underwrites a finding of the paper.
//
//  1. Sparse one-byte opcode map -> random corruption frequently decodes
//     to "invalid opcode" (one of the four dominant crash causes).
//  2. Jcc condition in opcode bit 0 -> campaign C is a single-bit error.
//     Ablation: flipping any *other* bit of a branch almost never yields
//     a cleanly reversed condition.
//  3. Variable-length encoding -> single-bit flips change instruction
//     lengths and re-sequence the following bytes (Table 7 example 2).
//     Ablation: a fixed-length ISA cannot produce this crash mode.
#include <cstdio>

#include <map>

#include "inject/targets.h"
#include "isa/decode.h"
#include "kernel/build.h"
#include "support/rng.h"

int main() {
  using namespace kfi;
  const kernel::KernelImage& image = kernel::built_kernel();

  // ---- 1. opcode map density ----
  int valid_first_byte = 0;
  for (int b = 0; b < 256; ++b) {
    std::uint8_t buf[12] = {static_cast<std::uint8_t>(b)};
    isa::Instruction instr;
    if (isa::decode(buf, sizeof buf, instr) != isa::DecodeStatus::Invalid) {
      ++valid_first_byte;
    }
  }
  std::printf("1. opcode map density\n");
  std::printf("   %d/256 first bytes start a defined instruction (%.0f%%)\n",
              valid_first_byte, valid_first_byte * 100.0 / 256);
  std::printf("   -> a uniformly random byte raises #UD with p=%.2f,\n"
              "      feeding the invalid-opcode share of Figure 6\n\n",
              1.0 - valid_first_byte / 256.0);

  // ---- enumerate every instruction of the built kernel ----
  std::size_t instructions = 0;
  std::size_t branches = 0;
  std::uint64_t flips = 0;
  std::uint64_t flip_invalid = 0;
  std::uint64_t flip_length_change = 0;
  std::uint64_t flip_same_length = 0;
  std::uint64_t cond_bit_reversals = 0;
  std::uint64_t other_bit_reversals = 0;
  std::uint64_t other_bit_total = 0;

  for (const kernel::KernelFunction& fn : image.functions) {
    const auto sites = inject::enumerate_function(image, fn);
    for (const inject::InstructionSite& site : sites) {
      ++instructions;
      if (site.is_cond_branch) ++branches;

      isa::Instruction original;
      isa::decode(site.bytes.data(), site.bytes.size(), original);

      for (std::size_t byte = 0; byte < site.bytes.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
          std::vector<std::uint8_t> corrupted = site.bytes;
          corrupted[byte] =
              static_cast<std::uint8_t>(corrupted[byte] ^ (1u << bit));
          // Re-decode with generous context (flips can lengthen).
          std::uint8_t buf[16] = {};
          for (std::size_t i = 0; i < corrupted.size() && i < 16; ++i) {
            buf[i] = corrupted[i];
          }
          isa::Instruction instr;
          const isa::DecodeStatus status =
              isa::decode(buf, sizeof buf, instr);
          ++flips;
          if (status != isa::DecodeStatus::Ok) {
            ++flip_invalid;
          } else if (instr.length != original.length) {
            ++flip_length_change;
          } else {
            ++flip_same_length;
          }

          if (site.is_cond_branch && status == isa::DecodeStatus::Ok &&
              instr.op == isa::Op::Jcc && instr.rel == original.rel) {
            const bool reversed =
                (static_cast<int>(instr.cond) ^ 1) ==
                static_cast<int>(original.cond);
            const int cond_byte = inject::condition_byte_index(site);
            if (static_cast<int>(byte) == cond_byte && bit == 0) {
              if (reversed) ++cond_bit_reversals;
            } else {
              ++other_bit_total;
              if (reversed) ++other_bit_reversals;
            }
          } else if (site.is_cond_branch) {
            const int cond_byte = inject::condition_byte_index(site);
            if (!(static_cast<int>(byte) == cond_byte && bit == 0)) {
              ++other_bit_total;
            }
          }
        }
      }
    }
  }

  std::printf("2. campaign C's single-bit condition reversal\n");
  std::printf("   conditional branches in the kernel: %zu\n", branches);
  std::printf("   bit 0 of the condition byte reverses the condition in "
              "%llu/%zu cases (%.0f%%)\n",
              static_cast<unsigned long long>(cond_bit_reversals), branches,
              branches ? 100.0 * static_cast<double>(cond_bit_reversals) /
                             static_cast<double>(branches)
                       : 0);
  std::printf("   any OTHER bit of a branch reverses it in %llu/%llu flips "
              "(%.2f%%)\n",
              static_cast<unsigned long long>(other_bit_reversals),
              static_cast<unsigned long long>(other_bit_total),
              other_bit_total ? 100.0 *
                                    static_cast<double>(other_bit_reversals) /
                                    static_cast<double>(other_bit_total)
                              : 0);
  std::printf("   -> on a different encoding, 'valid but incorrect branch'\n"
              "      would not be a realistic single-bit fault model\n\n");

  std::printf("3. variable-length re-sequencing (Table 7 ex. 2 crash mode)\n");
  std::printf("   single-bit flips over all %zu kernel instructions: %llu\n",
              instructions, static_cast<unsigned long long>(flips));
  std::printf("   decode invalid        %6.1f%%\n",
              100.0 * static_cast<double>(flip_invalid) /
                  static_cast<double>(flips));
  std::printf("   valid, LENGTH CHANGES %6.1f%%  (re-sequences the stream)\n",
              100.0 * static_cast<double>(flip_length_change) /
                  static_cast<double>(flips));
  std::printf("   valid, same length    %6.1f%%\n",
              100.0 * static_cast<double>(flip_same_length) /
                  static_cast<double>(flips));
  std::printf("   -> with fixed-length instructions the middle row is 0%%\n"
              "      and the paging-request crash mode of Table 7 ex. 2\n"
              "      disappears entirely\n");
  return 0;
}
