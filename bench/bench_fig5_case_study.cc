// Figure 5: "Case Study of a Most Severe Crash" — the paper walks one
// repeatable campaign-A error in do_generic_file_read: a corrupted mov
// zeroes end_index, the read loop exits early, and the incomplete read
// corrupts the file system badly enough to require reinstalling.
//
// This bench performs the analogous experiment live: it sweeps
// campaign-A flips over do_generic_file_read under fstime, finds the
// injections that damage the file system or crash, and prints the
// KDB-style analysis of the most interesting one.
#include <cstdio>

#include "inject/injector.h"
#include "inject/targets.h"
#include "machine/kdb.h"
#include "support/strings.h"

int main() {
  using namespace kfi;
  const kernel::KernelImage& image = kernel::built_kernel();
  const kernel::KernelFunction* fn = image.function("do_generic_file_read");
  if (fn == nullptr) return 1;

  std::printf("Figure 5: case study sweep over %s (%s..%s, %s)\n\n",
              fn->name.c_str(), hex32(fn->start).c_str(),
              hex32(fn->end).c_str(),
              std::string(kernel::subsystem_name(fn->subsystem)).c_str());

  inject::Injector injector;
  Rng rng(5);
  const auto targets = inject::make_targets(
      image, *fn, inject::Campaign::RandomNonBranch, rng);

  std::size_t activated = 0;
  std::size_t crashes = 0;
  std::size_t fs_damage = 0;
  std::size_t silent_bad_reads = 0;
  std::vector<inject::InjectionResult> results;
  results.reserve(targets.size());
  for (inject::InjectionSpec spec : targets) {
    spec.workload = "fstime";
    results.push_back(injector.run_one(spec));
    const inject::InjectionResult& r = results.back();
    if (r.outcome == inject::Outcome::NotActivated) continue;
    ++activated;
    if (r.outcome == inject::Outcome::DumpedCrash) ++crashes;
    if (r.fs_damaged) ++fs_damage;
    if (r.outcome == inject::Outcome::FailSilenceViolation) {
      // The paper's case 9 is exactly this class: an undetected
      // incomplete read — wrong data handed to the application without
      // any crash.  (fstime's checksums expose it.)
      ++silent_bad_reads;
    }
  }

  std::printf("sweep: %zu injections, %zu activated, %zu crashes,\n"
              "       %zu silently-wrong reads (FSV), %zu runs damaged "
              "the on-disk fs\n\n",
              targets.size(), activated, crashes, silent_bad_reads,
              fs_damage);

  // Preference order for the showcased case: fs damage without crash >
  // fs damage > silent wrong read (the paper's exact mechanism).
  const inject::InjectionResult* chosen = nullptr;
  for (const inject::InjectionResult& r : results) {
    if (r.outcome == inject::Outcome::NotActivated) continue;
    const auto rank = [](const inject::InjectionResult& x) {
      if (x.fs_damaged && x.outcome != inject::Outcome::DumpedCrash) return 0;
      if (x.fs_damaged) return 1;
      if (x.outcome == inject::Outcome::FailSilenceViolation) return 2;
      return 3;
    };
    if (chosen == nullptr || rank(r) < rank(*chosen)) chosen = &r;
  }
  if (chosen == nullptr || (!chosen->fs_damaged &&
                            chosen->outcome !=
                                inject::Outcome::FailSilenceViolation)) {
    std::printf("no incomplete-read case in this sweep (seed-dependent)\n");
    return 0;
  }

  const inject::InjectionResult& r = *chosen;
  std::printf("selected case (the paper's Table 5 case 9 analog):\n");
  std::printf("  injected @%s byte %u bit %u, campaign A, workload %s\n",
              hex32(r.spec.instr_addr).c_str(), r.spec.byte_index,
              r.spec.bit_index, r.spec.workload.c_str());
  std::printf("  before: %s\n", r.disasm_before.c_str());
  std::printf("  after : %s\n", r.disasm_after.c_str());
  std::printf("  outcome: %s%s\n",
              std::string(inject::outcome_name(r.outcome)).c_str(),
              r.bootable ? "" : "  (system cannot be rebooted)");
  std::printf("  severity: %s\n",
              std::string(inject::severity_name(r.severity)).c_str());
  if (r.outcome == inject::Outcome::DumpedCrash) {
    std::printf("  oops: %s at %s, latency %s cycles\n",
                std::string(inject::crash_cause_name(r.cause)).c_str(),
                hex32(r.crash_addr).c_str(),
                with_commas(r.latency_cycles).c_str());
  }

  // KDB-style disassembly around the injected site, as Figure 5 shows.
  const disk::DiskImage root_disk = machine::make_root_disk();
  machine::Machine machine(image, workloads::built_workload("fstime"),
                           root_disk);
  if (machine.boot()) {
    machine::Kdb kdb(machine);
    std::printf("\nkdb disassembly around the injection site "
                "(pristine code):\n");
    std::uint32_t window = r.spec.instr_addr >= fn->start + 12
                               ? r.spec.instr_addr - 12
                               : fn->start;
    std::fputs(kdb.disassemble(window, 8, r.spec.instr_addr).c_str(),
               stdout);
  }

  std::printf(
      "\npaper's Figure 5: a flipped bit in a mov inside\n"
      "do_generic_file_read() zeroed end_index, the for-loop exited\n"
      "early, and the silently incomplete read corrupted the file\n"
      "system: \"INIT: ID 1 respawning too fast\" — reinstall required.\n");
  return 0;
}
