// Figure 4 (and Table 4): the three injection campaigns' outcome
// statistics per subsystem, plus the overall activated-error pies.
//
// Paper reference points (over 35,000 injections):
//   A: activated 46.1%; of activated: NM 30.4%, FSV 2.2%, crash/hang 67.4%
//   B: activated 63.8%; of activated: NM 47.5%, FSV 0.8%, crash/hang 51.7%
//   C: activated 56.1%; of activated: NM 33.3%, FSV 9.9%, crash/hang 56.8%
#include <cstdio>

#include "analysis/io.h"
#include "analysis/render.h"

int main(int argc, char** argv) {
  using namespace kfi;
  const analysis::BenchOptions options =
      analysis::parse_bench_options(argc, argv);

  std::fputs(analysis::render_table4().c_str(), stdout);
  std::printf("\n");

  inject::Injector injector;
  for (const inject::Campaign campaign :
       {inject::Campaign::RandomNonBranch, inject::Campaign::RandomBranch,
        inject::Campaign::IncorrectBranch}) {
    const inject::CampaignRun run =
        analysis::bench_campaign(injector, campaign, options);
    const analysis::OutcomeTable table = analysis::make_outcome_table(run);
    std::fputs(analysis::render_outcome_table(table).c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "paper: A activated 46.1%% (NM 30.4 / FSV 2.2 / crash+hang 67.4)\n"
      "       B activated 63.8%% (NM 47.5 / FSV 0.8 / crash+hang 51.7)\n"
      "       C activated 56.1%% (NM 33.3 / FSV 9.9 / crash+hang 56.8)\n");
  return 0;
}
