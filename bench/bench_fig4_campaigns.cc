// Figure 4 (and Table 4): the three injection campaigns' outcome
// statistics per subsystem, plus the overall activated-error pies.
//
// Paper reference points (over 35,000 injections):
//   A: activated 46.1%; of activated: NM 30.4%, FSV 2.2%, crash/hang 67.4%
//   B: activated 63.8%; of activated: NM 47.5%, FSV 0.8%, crash/hang 51.7%
//   C: activated 56.1%; of activated: NM 33.3%, FSV 9.9%, crash/hang 56.8%
//
// The runs are also pushed through the src/check shape oracles, so this
// binary fails (exit 1) if the measured distributions drift outside the
// EXPERIMENTS.md tolerance bands.
#include <cstdio>
#include <vector>

#include "analysis/io.h"
#include "analysis/render.h"
#include "check/expectations.h"

int main(int argc, char** argv) {
  using namespace kfi;
  const analysis::BenchOptions options =
      analysis::parse_bench_options(argc, argv);

  std::fputs(analysis::render_table4().c_str(), stdout);
  std::printf("\n");

  inject::Injector injector;
  std::vector<inject::CampaignRun> runs;
  for (const inject::Campaign campaign :
       {inject::Campaign::RandomNonBranch, inject::Campaign::RandomBranch,
        inject::Campaign::IncorrectBranch}) {
    runs.push_back(analysis::bench_campaign(injector, campaign, options));
    const analysis::OutcomeTable table =
        analysis::make_outcome_table(runs.back());
    std::fputs(analysis::render_outcome_table(table).c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "paper: A activated 46.1%% (NM 30.4 / FSV 2.2 / crash+hang 67.4)\n"
      "       B activated 63.8%% (NM 47.5 / FSV 0.8 / crash+hang 51.7)\n"
      "       C activated 56.1%% (NM 33.3 / FSV 9.9 / crash+hang 56.8)\n");

  // Shape oracles only make sense at the default scale/seed: a
  // different seed or scale legitimately shifts the distributions.
  if (options.repeats == 1 && options.seed == 2003) {
    const check::ShapeReport report =
        check::evaluate_full(runs[0], runs[1], runs[2]);
    std::printf("\n%s", check::render_report(report).c_str());
    if (!report.all_pass()) return 1;
  }
  return 0;
}
