// Figure 1: size of kernel subsystems in terms of source code lines.
//
// The paper plots Linux 2.4.20's subsystem sizes (drivers dominating,
// then arch/fs/net).  We print the same series for our mini-kernel: the
// shape differs in absolute scale but preserves the property the paper
// uses it for — fs and mm are large, ipc is tiny.
#include <cstdio>

#include "analysis/render.h"
#include "kernel/build.h"

int main() {
  const kfi::kernel::KernelImage& image = kfi::kernel::built_kernel();
  std::fputs(kfi::analysis::render_fig1(image).c_str(), stdout);
  std::printf(
      "\npaper (Linux 2.4.20): drivers 1,460k > arch 870k > fs 385k >\n"
      "net 300k > ... > mm 25k > kernel 20k > ipc 5k source lines\n");
  return 0;
}
