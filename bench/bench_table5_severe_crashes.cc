// Table 5 / §7.1: crash severity, the most-severe inventory, and the
// availability arithmetic the paper closes the section with.
//
// Paper: of 9,600 dumped crashes, all but 34 reboot automatically; 25
// are "severe" (manual fsck) and 9 are "most severe" (reformat, ~1 h).
// 8 of the 9 most-severe cases come from campaign C.
#include <cstdio>

#include "analysis/io.h"
#include "analysis/render.h"

int main(int argc, char** argv) {
  using namespace kfi;
  const analysis::BenchOptions options =
      analysis::parse_bench_options(argc, argv);

  inject::Injector injector;
  std::uint64_t most_severe_by_campaign[3] = {};
  int index = 0;
  for (const inject::Campaign campaign :
       {inject::Campaign::RandomNonBranch, inject::Campaign::RandomBranch,
        inject::Campaign::IncorrectBranch}) {
    const inject::CampaignRun run =
        analysis::bench_campaign(injector, campaign, options);
    const analysis::SeveritySummary summary = analysis::make_severity(run);
    std::fputs(analysis::render_severity(run, summary).c_str(), stdout);
    most_severe_by_campaign[index++] = summary.most_severe;
    std::printf("\n");
  }

  std::printf("most-severe crashes per campaign: A=%llu B=%llu C=%llu\n",
              static_cast<unsigned long long>(most_severe_by_campaign[0]),
              static_cast<unsigned long long>(most_severe_by_campaign[1]),
              static_cast<unsigned long long>(most_severe_by_campaign[2]));
  std::printf(
      "paper: 9 most-severe of ~9,600 dumped crashes; 8 of 9 from\n"
      "campaign C (reversed branches corrupting fs metadata)\n\n");
  std::printf(
      "availability arithmetic (paper §7.1): at 5 nines (5 min/yr)\n"
      "one most-severe crash (~55 min) is allowed every ~11 years, one\n"
      "severe (~6 min) every ~1.2 years, one normal reboot (~4 min)\n"
      "every ~0.8 years.\n");
  return 0;
}
