// Figure 7: crash latency in CPU cycles, per campaign and subsystem.
//
// Paper: ~40% of campaign A/B crashes manifest within 10 cycles; ~20%
// take more than 100k cycles; campaign C latencies are longer overall
// because the corrupted branch still executes a valid instruction
// sequence.
#include <cstdio>

#include "analysis/io.h"
#include "analysis/render.h"

int main(int argc, char** argv) {
  using namespace kfi;
  const analysis::BenchOptions options =
      analysis::parse_bench_options(argc, argv);

  inject::Injector injector;
  double within10[3] = {};
  int index = 0;
  for (const inject::Campaign campaign :
       {inject::Campaign::RandomNonBranch, inject::Campaign::RandomBranch,
        inject::Campaign::IncorrectBranch}) {
    const inject::CampaignRun run =
        analysis::bench_campaign(injector, campaign, options);
    const analysis::LatencyDistribution dist = analysis::make_latency(run);
    std::fputs(analysis::render_latency(dist).c_str(), stdout);
    within10[index++] = dist.overall.share(0) * 100.0;
    std::printf("\n");
  }

  std::printf("shape check: <=10-cycle crashes A=%.1f%% B=%.1f%% C=%.1f%%\n",
              within10[0], within10[1], within10[2]);
  std::printf(
      "paper: ~40%% within 10 cycles for A and B; campaign C skews to\n"
      "longer latencies (valid-but-wrong instruction sequences)\n");
  return 0;
}
