// Ablation: assertion hardening (the paper's §7.4 recommendation).
//
// The paper argues that placing assertions at the propagation hot spots
// a campaign reveals can prevent the catastrophic file-system damage of
// Table 5 by converting silent corruption into contained crashes.  This
// bench runs the same campaign C over the fs metadata writers on two
// kernel builds — baseline and hardened (//H! assertion sites enabled)
// — and compares the damage profile.
#include <cstdio>

#include "inject/campaign.h"
#include "kernel/build.h"
#include "profile/profile.h"

namespace {

struct DamageProfile {
  std::uint64_t activated = 0;
  std::uint64_t crashes = 0;
  std::uint64_t invalid_opcode_crashes = 0;
  std::uint64_t fs_damaged = 0;
  std::uint64_t unbootable = 0;
  std::uint64_t most_severe = 0;
};

DamageProfile measure(const kfi::kernel::KernelImage& image,
                      const char* label) {
  using namespace kfi;
  inject::Injector injector({}, &image);
  inject::CampaignConfig config;
  config.campaign = inject::Campaign::IncorrectBranch;
  config.kernel_image = &image;
  config.functions = {"bwrite",          "kfs_alloc_block",
                      "kfs_alloc_inode", "generic_file_write",
                      "generic_commit_write", "dir_add_entry",
                      "write_inode",     "kfs_truncate",
                      "link_path_walk",  "dir_find_entry",
                      "do_generic_file_read"};
  std::printf("running campaign C on %s kernel (%zu fs/mm writers)...\n",
              label, config.functions.size());
  const inject::CampaignRun run =
      inject::run_campaign(injector, profile::default_profile(), config);

  DamageProfile profile;
  for (const inject::InjectionResult& r : run.results) {
    if (r.outcome == inject::Outcome::NotActivated) continue;
    ++profile.activated;
    if (r.outcome == inject::Outcome::DumpedCrash) {
      ++profile.crashes;
      if (r.cause == inject::CrashCause::InvalidOpcode) {
        ++profile.invalid_opcode_crashes;
      }
    }
    if (r.fs_damaged) ++profile.fs_damaged;
    if (!r.bootable) ++profile.unbootable;
    if (r.severity == inject::Severity::MostSevere) ++profile.most_severe;
  }
  return profile;
}

void print_profile(const char* label, const DamageProfile& p) {
  std::printf("%-10s activated %4llu | crashes %3llu (ud2 %3llu) | "
              "fs damaged %3llu | unbootable %3llu | most severe %3llu\n",
              label, static_cast<unsigned long long>(p.activated),
              static_cast<unsigned long long>(p.crashes),
              static_cast<unsigned long long>(p.invalid_opcode_crashes),
              static_cast<unsigned long long>(p.fs_damaged),
              static_cast<unsigned long long>(p.unbootable),
              static_cast<unsigned long long>(p.most_severe));
}

}  // namespace

int main() {
  using namespace kfi;
  const DamageProfile baseline =
      measure(kernel::built_kernel(), "baseline");
  const DamageProfile hardened =
      measure(kernel::built_hardened_kernel(), "hardened");

  std::printf("\n");
  print_profile("baseline", baseline);
  print_profile("hardened", hardened);

  std::printf(
      "\nreading: the hardened build adds BUG()-style assertions at the\n"
      "fs metadata writers.  Two effects are visible, and both match\n"
      "the paper's discussion:\n"
      " * crashes shift strongly toward invalid opcode (ud2) — errors\n"
      "   that violate a guarded invariant (out-of-range block/inode,\n"
      "   oversized i_size) are now stopped before reaching the disk;\n"
      " * the most-severe cases that remain are *semantic* mis-\n"
      "   resolutions (link_path_walk/dir_find_entry returning the\n"
      "   wrong-but-valid inode), which no local invariant can catch —\n"
      "   the paper's own candidate (checking index against\n"
      "   inode->i_size) has the same blind spot.\n"
      "Each assertion is also a new campaign C target whose reversal\n"
      "is a guaranteed but contained crash, so 'activated' grows.\n");
  return 0;
}
