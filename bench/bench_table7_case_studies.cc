// Table 7: example case studies of the dominant crash causes — for each
// cause, a representative injection with its before/after disassembly,
// the paper-style oops line, and the measured latency.
#include <cstdio>

#include <map>

#include "analysis/io.h"
#include "analysis/render.h"
#include "support/strings.h"

int main(int argc, char** argv) {
  using namespace kfi;
  const analysis::BenchOptions options =
      analysis::parse_bench_options(argc, argv);

  inject::Injector injector;

  // Collect one representative crash per cause, preferring short
  // latencies (as the paper's examples are).
  std::map<inject::CrashCause, const inject::InjectionResult*> examples;
  std::vector<inject::CampaignRun> runs;
  for (const inject::Campaign campaign :
       {inject::Campaign::RandomNonBranch, inject::Campaign::RandomBranch,
        inject::Campaign::IncorrectBranch}) {
    runs.push_back(analysis::bench_campaign(injector, campaign, options));
  }
  for (const inject::CampaignRun& run : runs) {
    for (const inject::InjectionResult& r : run.results) {
      if (r.outcome != inject::Outcome::DumpedCrash) continue;
      const auto it = examples.find(r.cause);
      if (it == examples.end() ||
          r.latency_cycles < it->second->latency_cycles) {
        examples[r.cause] = &r;
      }
    }
  }

  std::printf(
      "Table 7: Example Case Studies of Crash Causes\n"
      "--------------------------------------------------------------\n");
  int case_no = 1;
  for (const auto& [cause, r] : examples) {
    std::printf("%d. campaign %s, %s:%s @%s (workload %s)\n", case_no++,
                std::string(inject::campaign_name(r->spec.campaign)).c_str(),
                std::string(kernel::subsystem_name(r->spec.subsystem))
                    .c_str(),
                r->spec.function.c_str(), hex32(r->spec.instr_addr).c_str(),
                r->spec.workload.c_str());
    std::printf("   before: %s\n", r->disasm_before.c_str());
    std::printf("   after : %s   (byte %u, bit %u flipped)\n",
                r->disasm_after.c_str(), r->spec.byte_index,
                r->spec.bit_index);
    if (cause == inject::CrashCause::NullPointer ||
        cause == inject::CrashCause::PagingRequest) {
      std::printf("   oops  : %s at virtual address %s (eip %s)\n",
                  std::string(inject::crash_cause_name(cause)).c_str(),
                  hex32(r->crash_addr).c_str(), hex32(r->crash_eip).c_str());
    } else {
      std::printf("   oops  : %s (eip %s)\n",
                  std::string(inject::crash_cause_name(cause)).c_str(),
                  hex32(r->crash_eip).c_str());
    }
    std::printf("   crash in %s, latency %s cycles%s\n",
                std::string(kernel::subsystem_name(r->crash_subsystem))
                    .c_str(),
                with_commas(r->latency_cycles).c_str(),
                r->propagated ? "  [propagated]" : "");
  }
  std::printf(
      "\npaper's four examples: reversed jne -> NULL dereference;\n"
      "shortened mov re-sequencing the byte stream -> paging request;\n"
      "mov corrupted to lret -> general protection fault; reversed\n"
      "assertion branch -> ud2a invalid opcode\n");
  return 0;
}
