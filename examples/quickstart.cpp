// Quickstart: boot the simulated kernel, run a benchmark workload,
// inject one single-bit error into a hot kernel function, and print the
// classified outcome — the library's whole pipeline in ~60 lines.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "inject/injector.h"
#include "inject/targets.h"
#include "support/strings.h"

int main() {
  using namespace kfi;

  // 1. The kernel image is compiled (MiniC -> kasm -> linked) once.
  const kernel::KernelImage& image = kernel::built_kernel();
  std::printf("kernel built: %zu functions across %zu segments\n",
              image.functions.size(), image.segments.size());

  // 2. Pick a target: the paper's favourite, do_generic_file_read.
  const kernel::KernelFunction* fn = image.function("do_generic_file_read");
  if (fn == nullptr) {
    std::printf("target function missing\n");
    return 1;
  }
  const auto sites = inject::enumerate_function(image, *fn);
  std::printf("%s: %s..%s, %zu instructions (subsystem %s)\n",
              fn->name.c_str(), hex32(fn->start).c_str(),
              hex32(fn->end).c_str(), sites.size(),
              std::string(kernel::subsystem_name(fn->subsystem)).c_str());

  // 3. Build one injection: flip bit 1 of the first byte of the 6th
  //    instruction, triggered while the fstime workload runs.
  inject::InjectionSpec spec;
  spec.campaign = inject::Campaign::RandomNonBranch;
  spec.function = fn->name;
  spec.subsystem = fn->subsystem;
  spec.instr_addr = sites[5].addr;
  spec.instr_len = static_cast<std::uint8_t>(sites[5].bytes.size());
  spec.byte_index = 0;
  spec.bit_index = 1;
  spec.workload = "fstime";

  // 4. Run it.  The injector boots a machine, takes a post-boot
  //    snapshot, arms a debug register on the target address, flips the
  //    bit when execution reaches it, and classifies what happens.
  inject::Injector injector;
  const inject::InjectionResult result = injector.run_one(spec);

  std::printf("\ninjected @%s, byte %u bit %u (workload %s)\n",
              hex32(spec.instr_addr).c_str(), spec.byte_index,
              spec.bit_index, spec.workload.c_str());
  std::printf("  before: %s\n", result.disasm_before.c_str());
  std::printf("  after : %s\n", result.disasm_after.c_str());
  std::printf("  outcome: %s\n",
              std::string(inject::outcome_name(result.outcome)).c_str());
  if (result.outcome == inject::Outcome::DumpedCrash) {
    std::printf("  cause  : %s at %s (eip %s, in %s)\n",
                std::string(inject::crash_cause_name(result.cause)).c_str(),
                hex32(result.crash_addr).c_str(),
                hex32(result.crash_eip).c_str(),
                std::string(kernel::subsystem_name(result.crash_subsystem))
                    .c_str());
    std::printf("  latency: %s cycles, severity: %s\n",
                with_commas(result.latency_cycles).c_str(),
                std::string(inject::severity_name(result.severity)).c_str());
  }
  return 0;
}
