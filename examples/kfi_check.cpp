// kfi_check — the expected-shape regression harness front end.
//
//   kfi_check shape smoke             tier-1 oracles on a sub-minute run
//   kfi_check shape full [...]        EXPERIMENTS.md oracles on the
//                                     default-scale campaigns (cached)
//   kfi_check replay <file.kfi> [...] re-execute persisted injections and
//                                     compare bit-for-bit
//   kfi_check determinism [...]       threads=1 vs threads=N identical
//
// Exit status 0 = every check passed, 1 = at least one failed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/aggregate.h"
#include "analysis/io.h"
#include "analysis/render.h"
#include "check/expectations.h"
#include "check/replay.h"
#include "inject/campaign.h"
#include "profile/profile.h"
#include "support/strings.h"

namespace {

using namespace kfi;

// Strict numeric flag parsing everywhere: a worker count of "4x" or
// "0" aborts with exit 2 instead of being atoi'd into something that
// silently runs the wrong experiment.  --jobs and --threads are
// synonyms here; KFI_JOBS supplies the default when set.
unsigned require_jobs(const char* flag, const char* text) {
  unsigned jobs = 0;
  if (!parse_jobs(text, jobs)) {
    std::fprintf(stderr, "error: %s expects an integer in [1, 1024], "
                         "got '%s'\n", flag, text);
    std::exit(2);
  }
  return jobs;
}

std::uint64_t require_u64(const char* flag, const char* text,
                          std::uint64_t min_value, std::uint64_t max_value) {
  std::uint64_t value = 0;
  if (!parse_u64(text, value, min_value, max_value)) {
    std::fprintf(stderr,
                 "error: %s expects an integer in [%llu, %llu], got '%s'\n",
                 flag, static_cast<unsigned long long>(min_value),
                 static_cast<unsigned long long>(max_value), text);
    std::exit(2);
  }
  return value;
}

int usage() {
  std::printf(
      "usage: kfi_check <command> [args]\n"
      "  shape smoke [--threads N | --jobs N]\n"
      "                            run the fixed smoke campaigns (A and C\n"
      "                            over %zu hot functions) and evaluate\n"
      "                            the smoke oracles\n"
      "  shape extended [--threads N | --jobs N]\n"
      "                            run the fault-model smoke campaigns\n"
      "                            (D registers, E kernel data, F syscall\n"
      "                            errno) and evaluate their oracles\n"
      "  shape full [--scale N --seed N --cache DIR --no-cache --quiet\n"
      "              --threads N]\n"
      "                            evaluate the EXPERIMENTS.md oracles on\n"
      "                            the full-scale A/B/C campaigns\n"
      "  replay <file.kfi> [--samples N]\n"
      "                            replay N runs per outcome category\n"
      "                            (default 1) from a persisted campaign\n"
      "                            and require bit-for-bit equality; also\n"
      "                            checks the sampled specs regenerate\n"
      "                            from (campaign, seed, repeats)\n"
      "  replay <file.kfi> --index N\n"
      "                            replay exactly result #N\n"
      "  determinism [--threads N | --jobs N] [--campaign A|B|C|D|E|F]\n"
      "                            run the smoke campaign with threads=1\n"
      "                            and threads=N (default 4) and require\n"
      "                            identical result vectors\n",
      check::smoke_functions().size());
  return 2;
}

// Prints a CampaignRun's aggregated counters.  These fold in every
// worker Injector, so at threads>1 they describe the whole campaign,
// not just the caller's thread.
void print_campaign_stats(const inject::CampaignStats& cs) {
  const machine::PerfStats& stats = cs.perf;
  const std::uint64_t decode_total = stats.decode_hits + stats.decode_misses;
  const std::uint64_t resumes = cs.checkpoint_hits + cs.checkpoint_misses;
  std::printf(
      "perf: %llu restores (%.1f KiB RAM + %llu disk blocks per restore), "
      "%llu checkpoints, hit rate %.1f%%, decode cache %.2f%%, "
      "pre/post-trigger %.1fM/%.1fM cycles, %llu reconverged\n",
      static_cast<unsigned long long>(stats.restores),
      stats.restores == 0
          ? 0.0
          : static_cast<double>(stats.bytes_restored) / 1024.0 /
                static_cast<double>(stats.restores),
      static_cast<unsigned long long>(
          stats.restores == 0 ? 0 : stats.disk_blocks_restored / stats.restores),
      static_cast<unsigned long long>(stats.checkpoints_taken),
      resumes == 0 ? 0.0
                   : 100.0 * static_cast<double>(cs.checkpoint_hits) /
                         static_cast<double>(resumes),
      decode_total == 0 ? 0.0
                        : 100.0 * static_cast<double>(stats.decode_hits) /
                              static_cast<double>(decode_total),
      static_cast<double>(cs.pre_trigger_cycles) / 1e6,
      static_cast<double>(cs.post_trigger_cycles) / 1e6,
      static_cast<unsigned long long>(cs.reconverged));
  if (cs.threads_used > 1) {
    std::printf("perf: %u threads, %llu chunks, %llu steals\n",
                cs.threads_used, static_cast<unsigned long long>(cs.chunks),
                static_cast<unsigned long long>(cs.steals));
  }
  if (stats.block_builds + stats.block_hits + stats.block_fallbacks > 0) {
    const std::uint64_t entries = stats.block_builds + stats.block_hits;
    std::printf(
        "perf: blocks %llu built, %llu hits, %llu fallbacks, "
        "%llu invalidations, avg block len %.1f\n",
        static_cast<unsigned long long>(stats.block_builds),
        static_cast<unsigned long long>(stats.block_hits),
        static_cast<unsigned long long>(stats.block_fallbacks),
        static_cast<unsigned long long>(stats.block_invalidations),
        entries == 0 ? 0.0
                     : static_cast<double>(stats.block_ops) /
                           static_cast<double>(entries));
  }
  if (stats.threaded_ops > 0) {
    std::printf("perf: threaded %llu ops dispatched, %llu flag writes elided\n",
                static_cast<unsigned long long>(stats.threaded_ops),
                static_cast<unsigned long long>(stats.flag_elisions));
  }
  if (stats.dtlb_hits + stats.dtlb_misses + stats.cond_widened > 0) {
    const std::uint64_t probes = stats.dtlb_hits + stats.dtlb_misses;
    std::printf(
        "perf: memfast D-TLB %llu hits / %llu misses (%.2f%%), "
        "%llu traces widened past Jcc, %llu side exits\n",
        static_cast<unsigned long long>(stats.dtlb_hits),
        static_cast<unsigned long long>(stats.dtlb_misses),
        probes == 0 ? 0.0
                    : 100.0 * static_cast<double>(stats.dtlb_hits) /
                          static_cast<double>(probes),
        static_cast<unsigned long long>(stats.cond_widened),
        static_cast<unsigned long long>(stats.side_exits));
  }
  if (stats.trace_events + stats.trace_dropped > 0) {
    std::printf("perf: trace %llu events recorded, %llu dropped\n",
                static_cast<unsigned long long>(stats.trace_events),
                static_cast<unsigned long long>(stats.trace_dropped));
  }
}

inject::Campaign parse_campaign(const char* arg) {
  switch (arg[0]) {
    case 'B': return inject::Campaign::RandomBranch;
    case 'C': return inject::Campaign::IncorrectBranch;
    case 'D': return inject::Campaign::RegisterFile;
    case 'E': return inject::Campaign::KernelData;
    case 'F': return inject::Campaign::SyscallErrno;
    default: return inject::Campaign::RandomNonBranch;
  }
}

int cmd_shape(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string scale = argv[2];
  if (scale == "smoke") {
    unsigned threads = analysis::jobs_from_env() != 0
                           ? analysis::jobs_from_env()
                           : 1;
    for (int i = 3; i < argc; ++i) {
      if ((std::strcmp(argv[i], "--threads") == 0 ||
           std::strcmp(argv[i], "--jobs") == 0) &&
          i + 1 < argc) {
        threads = require_jobs(argv[i], argv[i + 1]);
        ++i;
      }
    }
    inject::Injector injector;
    const auto& prof = profile::default_profile();
    inject::CampaignConfig config_a =
        check::smoke_config(inject::Campaign::RandomNonBranch);
    inject::CampaignConfig config_c =
        check::smoke_config(inject::Campaign::IncorrectBranch);
    config_a.threads = threads;
    config_c.threads = threads;
    const inject::CampaignRun a = inject::run_campaign(injector, prof, config_a);
    const inject::CampaignRun c = inject::run_campaign(injector, prof, config_c);
    const check::ShapeReport report = check::evaluate_smoke(a, c);
    std::fputs(check::render_report(report).c_str(), stdout);
    inject::CampaignStats totals = a.stats;
    totals += c.stats;
    totals.chunks = a.stats.chunks + c.stats.chunks;
    totals.steals = a.stats.steals + c.stats.steals;
    print_campaign_stats(totals);
    return report.all_pass() ? 0 : 1;
  }
  if (scale == "extended") {
    unsigned threads = analysis::jobs_from_env() != 0
                           ? analysis::jobs_from_env()
                           : 1;
    for (int i = 3; i < argc; ++i) {
      if ((std::strcmp(argv[i], "--threads") == 0 ||
           std::strcmp(argv[i], "--jobs") == 0) &&
          i + 1 < argc) {
        threads = require_jobs(argv[i], argv[i + 1]);
        ++i;
      }
    }
    inject::Injector injector;
    const auto& prof = profile::default_profile();
    std::vector<inject::CampaignRun> runs;
    for (const inject::Campaign campaign :
         {inject::Campaign::RegisterFile, inject::Campaign::KernelData,
          inject::Campaign::SyscallErrno}) {
      inject::CampaignConfig config = check::smoke_config(campaign);
      config.threads = threads;
      runs.push_back(inject::run_campaign(injector, prof, config));
    }
    const check::ShapeReport report =
        check::evaluate_smoke_extended(runs[0], runs[1], runs[2]);
    std::fputs(check::render_report(report).c_str(), stdout);
    std::fputs(
        analysis::render_cascade(analysis::make_cascade(runs[2])).c_str(),
        stdout);
    inject::CampaignStats totals = runs[0].stats;
    totals += runs[1].stats;
    totals += runs[2].stats;
    print_campaign_stats(totals);
    return report.all_pass() ? 0 : 1;
  }
  if (scale != "full") return usage();

  // Shift "shape full" off argv so parse_bench_options sees the flags.
  const analysis::BenchOptions options =
      analysis::parse_bench_options(argc - 2, argv + 2);
  inject::Injector injector;
  const inject::CampaignRun a = analysis::bench_campaign(
      injector, inject::Campaign::RandomNonBranch, options);
  const inject::CampaignRun b = analysis::bench_campaign(
      injector, inject::Campaign::RandomBranch, options);
  const inject::CampaignRun c = analysis::bench_campaign(
      injector, inject::Campaign::IncorrectBranch, options);
  const check::ShapeReport report = check::evaluate_full(a, b, c);
  std::fputs(check::render_report(report).c_str(), stdout);
  return report.all_pass() ? 0 : 1;
}

int cmd_replay(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string path = argv[2];
  auto run = analysis::load_campaign(path);
  if (!run.has_value()) {
    std::printf("cannot load campaign file '%s'\n", path.c_str());
    return 1;
  }

  std::size_t samples = 1;
  long index = -1;
  std::uint64_t seed = 2003;
  int repeats = 1;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      samples = static_cast<std::size_t>(
          require_u64("--samples", argv[++i], 1, 1'000'000));
    } else if (std::strcmp(argv[i], "--index") == 0 && i + 1 < argc) {
      index = static_cast<long>(
          require_u64("--index", argv[++i], 0, 1'000'000'000));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = require_u64("--seed", argv[++i], 0, UINT64_MAX);
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      repeats = static_cast<int>(
          require_u64("--scale", argv[++i], 1, 1'000'000));
    }
  }

  inject::Injector injector;
  check::ReplayReport report;
  if (index >= 0) {
    if (static_cast<std::size_t>(index) >= run->results.size()) {
      std::printf("index out of range (0..%zu)\n", run->results.size() - 1);
      return 1;
    }
    report.replays.push_back(
        check::replay_one(injector, *run, static_cast<std::size_t>(index)));
  } else {
    report = check::replay_samples(injector, *run, samples);
    // The persisted spec must also regenerate from (campaign, seed,
    // repeats): proves the target list itself is deterministic.
    inject::CampaignConfig config;
    config.campaign = run->campaign;
    config.seed = seed;
    config.repeats = repeats;
    const std::vector<inject::InjectionSpec> regenerated =
        inject::campaign_targets(profile::default_profile(), config, nullptr);
    if (regenerated.size() != run->results.size()) {
      std::printf("regenerated %zu targets but file holds %zu; pass the"
                  " original --seed/--scale\n",
                  regenerated.size(), run->results.size());
      return 1;
    }
    for (const check::ReplayOutcome& replay : report.replays) {
      std::vector<check::FieldDiff> diffs = check::diff_specs(
          run->results[replay.index].spec, regenerated[replay.index]);
      if (!diffs.empty()) {
        report.spec_mismatches.emplace_back(replay.index, std::move(diffs));
      }
    }
  }
  std::fputs(check::render_replay(report).c_str(), stdout);
  return report.all_identical() ? 0 : 1;
}

int cmd_determinism(int argc, char** argv) {
  unsigned threads = analysis::jobs_from_env() != 0
                         ? analysis::jobs_from_env()
                         : 4;
  inject::Campaign campaign = inject::Campaign::IncorrectBranch;
  for (int i = 2; i < argc; ++i) {
    if ((std::strcmp(argv[i], "--threads") == 0 ||
         std::strcmp(argv[i], "--jobs") == 0) &&
        i + 1 < argc) {
      threads = require_jobs(argv[i], argv[i + 1]);
      ++i;
    } else if (std::strcmp(argv[i], "--campaign") == 0 && i + 1 < argc) {
      campaign = parse_campaign(argv[++i]);
    }
  }

  const auto& prof = profile::default_profile();
  inject::CampaignConfig config = check::smoke_config(campaign);

  inject::Injector serial;
  config.threads = 1;
  const inject::CampaignRun one = inject::run_campaign(serial, prof, config);

  inject::Injector parallel;
  config.threads = threads;
  const inject::CampaignRun many = inject::run_campaign(parallel, prof, config);

  const check::RunComparison comparison = check::compare_runs(one, many);
  if (comparison.identical()) {
    std::printf("threads=1 and threads=%u produced identical vectors"
                " (%zu results)\n",
                threads, comparison.compared);
    print_campaign_stats(many.stats);
    return 0;
  }
  if (comparison.size_mismatch) {
    std::printf("result vector sizes differ: %zu vs %zu\n", one.results.size(),
                many.results.size());
    return 1;
  }
  std::printf("%zu of %zu results differ between threads=1 and threads=%u\n",
              comparison.mismatches.size(), comparison.compared, threads);
  for (const auto& [index, diffs] : comparison.mismatches) {
    std::printf("  #%zu %s:\n", index,
                one.results[index].spec.function.c_str());
    for (const check::FieldDiff& diff : diffs) {
      std::printf("    %-16s %s vs %s\n", diff.field.c_str(),
                  diff.recorded.c_str(), diff.replayed.c_str());
    }
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "shape") return cmd_shape(argc, argv);
  if (command == "replay") return cmd_replay(argc, argv);
  if (command == "determinism") return cmd_determinism(argc, argv);
  return usage();
}
