// kfi_campaignd — the process-sharded campaign service CLI.
//
// One controller process splits the smoke campaign triple (A/B/C, seed
// 2003) into a manifest of shards, serializes each workload's golden
// bundle once, and drives N forked workers that stream per-shard
// results into the content-addressed artifact store.  Every subcommand
// is also available standalone, so the pieces can be driven across
// machines sharing a directory:
//
//   kfi_campaignd run --dir DIR --workers 4 [--verify-inprocess]
//   kfi_campaignd prepare --dir DIR --workers 4
//   kfi_campaignd worker --dir DIR --id 2 --workers 4
//   kfi_campaignd aggregate --dir DIR [--json FILE]
//
// --campaigns selects which smoke campaigns the service shards:
// letters A..F in any order (default ABC; DEF runs the fault-model
// triple — register flips, kernel-data flips, syscall errno).
//
// The contract gated by --verify-inprocess (and by tier-1 CI): the
// sharded digest is bit-identical to the in-process run_campaign()
// path — 54fdd95d1638c920 on the smoke triple — at any worker count,
// including after a kill-and-resume.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "analysis/io.h"
#include "analysis/store.h"
#include "check/expectations.h"
#include "check/replay.h"
#include "inject/campaign.h"
#include "profile/profile.h"
#include "serve/service.h"
#include "support/strings.h"

namespace {

using namespace kfi;

struct CliOptions {
  std::string command;
  std::string dir = "kfi-campaignd";
  std::string campaigns = "ABC";
  std::string json_path;
  unsigned workers = 2;
  unsigned worker_id = 0;
  std::uint64_t shards = 0;
  std::uint64_t max_shards = 0;
  std::uint64_t seed = 2003;
  int repeats = 1;
  bool fresh = false;
  bool verify_inprocess = false;
  bool verbose = false;
};

[[noreturn]] void usage(int code) {
  std::printf(
      "usage: kfi_campaignd <run|prepare|worker|aggregate> [options]\n"
      "  --dir DIR           campaign directory (manifest, shards, claims)\n"
      "  --campaigns LIST    campaign letters A..F (default ABC; DEF runs\n"
      "                      the fault-model triple)\n"
      "  --workers N         worker processes (strict, 1..1024; also "
      "KFI_JOBS)\n"
      "  --shards N          shard count (default: 4 per worker)\n"
      "  --seed N            campaign RNG seed (default 2003)\n"
      "  --scale N           random-campaign repeat factor (default 1)\n"
      "  --fresh             discard existing shards and manifest\n"
      "  --id N              worker: this worker's index\n"
      "  --max-shards N      worker/run: stop each worker after N shards\n"
      "                      (simulates a killed worker; the next run\n"
      "                      resumes from its completed shards)\n"
      "  --verify-inprocess  run: also run the in-process path and gate\n"
      "                      bit-identity of every result\n"
      "  --json FILE         write a machine-readable summary\n"
      "  --verbose           per-shard progress on stderr\n");
  std::exit(code);
}

std::uint64_t require_u64(const char* flag, const char* text,
                          std::uint64_t min_value, std::uint64_t max_value) {
  std::uint64_t value = 0;
  if (!parse_u64(text, value, min_value, max_value)) {
    std::fprintf(stderr,
                 "error: %s expects an integer in [%llu, %llu], got '%s'\n",
                 flag, static_cast<unsigned long long>(min_value),
                 static_cast<unsigned long long>(max_value), text);
    std::exit(2);
  }
  return value;
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  if (argc < 2) usage(2);
  options.command = argv[1];
  options.workers = analysis::jobs_from_env() != 0
                        ? analysis::jobs_from_env()
                        : options.workers;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--dir" && has_value) {
      options.dir = argv[++i];
    } else if (arg == "--campaigns" && has_value) {
      options.campaigns = argv[++i];
      if (options.campaigns.empty()) {
        std::fprintf(stderr, "error: --campaigns expects letters A..F\n");
        std::exit(2);
      }
      for (const char letter : options.campaigns) {
        if (letter < 'A' || letter > 'F') {
          std::fprintf(stderr,
                       "error: --campaigns expects letters A..F, got '%c'\n",
                       letter);
          std::exit(2);
        }
      }
    } else if (arg == "--workers" && has_value) {
      unsigned workers = 0;
      if (!parse_jobs(argv[i + 1], workers)) {
        std::fprintf(stderr,
                     "error: --workers expects an integer in [1, 1024], "
                     "got '%s'\n", argv[i + 1]);
        std::exit(2);
      }
      ++i;
      options.workers = workers;
    } else if (arg == "--shards" && has_value) {
      options.shards = require_u64("--shards", argv[++i], 1, 1'000'000);
    } else if (arg == "--seed" && has_value) {
      options.seed = require_u64("--seed", argv[++i], 0, UINT64_MAX);
    } else if (arg == "--scale" && has_value) {
      options.repeats = static_cast<int>(
          require_u64("--scale", argv[++i], 1, 1'000'000));
    } else if (arg == "--id" && has_value) {
      options.worker_id = static_cast<unsigned>(
          require_u64("--id", argv[++i], 0, 1023));
    } else if (arg == "--max-shards" && has_value) {
      options.max_shards =
          require_u64("--max-shards", argv[++i], 1, 1'000'000);
    } else if (arg == "--json" && has_value) {
      options.json_path = argv[++i];
    } else if (arg == "--fresh") {
      options.fresh = true;
    } else if (arg == "--verify-inprocess") {
      options.verify_inprocess = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--help") {
      usage(0);
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      usage(2);
    }
  }
  return options;
}

inject::Campaign campaign_for_letter(char letter) {
  switch (letter) {
    case 'A': return inject::Campaign::RandomNonBranch;
    case 'B': return inject::Campaign::RandomBranch;
    case 'C': return inject::Campaign::IncorrectBranch;
    case 'D': return inject::Campaign::RegisterFile;
    case 'E': return inject::Campaign::KernelData;
    default:  return inject::Campaign::SyscallErrno;  // 'F'; parse_cli
                                                      // rejects the rest
  }
}

serve::ServiceConfig service_config(const CliOptions& cli) {
  serve::ServiceConfig config;
  for (const char letter : cli.campaigns) {
    inject::CampaignConfig c =
        check::smoke_config(campaign_for_letter(letter));
    c.seed = cli.seed;
    c.repeats = cli.repeats;
    config.campaigns.push_back(std::move(c));
  }
  config.dir = cli.dir;
  config.workers = cli.workers;
  config.shards = cli.shards;
  config.fresh = cli.fresh;
  config.max_shards_per_worker = cli.max_shards;
  config.verbose = cli.verbose;
  return config;
}

void write_json(const CliOptions& cli, const serve::ServiceResult& result,
                int verified) {  // verified: -1 not run, 0 fail, 1 pass
  if (cli.json_path.empty()) return;
  std::FILE* out = std::fopen(cli.json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
    return;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  std::fprintf(out,
               "{\n"
               "  \"tool\": \"kfi_campaignd\",\n"
               "  \"campaigns\": \"%s\",\n"
               "  \"ok\": %s,\n"
               "  \"result_digest\": \"%016llx\",\n"
               "  \"total_runs\": %llu,\n"
               "  \"workers\": %u,\n"
               "  \"shard_count\": %llu,\n"
               "  \"shards_executed\": %llu,\n"
               "  \"shards_resumed\": %llu,\n"
               "  \"steals\": %llu,\n"
               "  \"corrupt_discarded\": %llu,\n"
               "  \"attempts\": %d,\n"
               "  \"bundles_built\": %llu,\n"
               "  \"bundles_adopted\": %llu,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"scaling_valid\": %s%s%s\n"
               "}\n",
               cli.campaigns.c_str(),
               result.ok ? "true" : "false",
               static_cast<unsigned long long>(result.digest),
               static_cast<unsigned long long>(result.total_runs),
               cli.workers,
               static_cast<unsigned long long>(result.shard_count),
               static_cast<unsigned long long>(result.shards_executed),
               static_cast<unsigned long long>(result.shards_resumed),
               static_cast<unsigned long long>(result.steals),
               static_cast<unsigned long long>(result.corrupt_discarded),
               result.attempts,
               static_cast<unsigned long long>(result.bundles_built),
               static_cast<unsigned long long>(result.bundles_adopted),
               hardware, hardware > 1 ? "true" : "false",
               verified >= 0 ? ",\n  \"sharded_identical\": " : "",
               verified < 0 ? "" : (verified == 1 ? "true" : "false"));
  std::fclose(out);
}

int cmd_run(const CliOptions& cli) {
  const serve::ServiceConfig config = service_config(cli);
  serve::ServiceResult result =
      serve::run_service(config, cli.verify_inprocess);
  if (!result.ok) {
    std::fprintf(stderr, "kfi_campaignd: %s\n", result.error.c_str());
    write_json(cli, result, -1);
    return 1;
  }

  int verified = -1;
  if (cli.verify_inprocess) {
    // The reference path: one in-process Injector, threads=1, same
    // configs.  Every result (not just the digest) must match.
    inject::Injector injector(config.options);
    std::vector<inject::CampaignRun> reference;
    for (inject::CampaignConfig campaign : config.campaigns) {
      campaign.threads = 1;
      reference.push_back(inject::run_campaign(
          injector, profile::default_profile(), campaign));
    }
    verified = 1;
    const std::uint64_t reference_digest =
        analysis::results_digest(reference);
    if (reference_digest != result.digest) verified = 0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const check::RunComparison cmp =
          check::compare_runs(reference[i], result.runs[i]);
      if (!cmp.identical()) {
        std::fprintf(stderr,
                     "kfi_campaignd: campaign %zu diverged from in-process "
                     "run (%zu mismatches of %zu)\n",
                     i, cmp.mismatches.size(), cmp.compared);
        verified = 0;
      }
    }
    std::printf("sharded_identical: %s (in-process digest %016llx)\n",
                verified == 1 ? "true" : "false",
                static_cast<unsigned long long>(reference_digest));
  }

  std::printf(
      "campaign digest %016llx  (%llu runs, %llu shards: %llu executed, "
      "%llu resumed, %llu stolen, %llu corrupt discarded, %d attempt%s, "
      "%u workers)\n",
      static_cast<unsigned long long>(result.digest),
      static_cast<unsigned long long>(result.total_runs),
      static_cast<unsigned long long>(result.shard_count),
      static_cast<unsigned long long>(result.shards_executed),
      static_cast<unsigned long long>(result.shards_resumed),
      static_cast<unsigned long long>(result.steals),
      static_cast<unsigned long long>(result.corrupt_discarded),
      result.attempts, result.attempts == 1 ? "" : "s", cli.workers);
  std::printf("bundles: %llu built, %llu adopted from disk\n",
              static_cast<unsigned long long>(result.bundles_built),
              static_cast<unsigned long long>(result.bundles_adopted));
  write_json(cli, result, verified);
  return verified == 0 ? 1 : 0;
}

int cmd_prepare(const CliOptions& cli) {
  const serve::ServiceConfig config = service_config(cli);
  serve::ServiceResult result;
  const auto manifest = serve::prepare_campaign(config, &result);
  if (!manifest.has_value()) return 1;
  std::printf(
      "manifest %s: config %016llx, %llu targets, %zu shards, "
      "%zu workloads (%llu bundles built, %llu adopted)\n",
      cli.dir.c_str(),
      static_cast<unsigned long long>(manifest->config_hash),
      static_cast<unsigned long long>(manifest->total_targets()),
      manifest->shard_ranges.size(), manifest->workloads.size(),
      static_cast<unsigned long long>(result.bundles_built),
      static_cast<unsigned long long>(result.bundles_adopted));
  return 0;
}

int cmd_worker(const CliOptions& cli) {
  const serve::WorkerReport report =
      serve::run_worker(cli.dir, cli.worker_id, cli.workers, cli.max_shards,
                        cli.verbose);
  std::printf(
      "worker %u: %llu shards (%llu stolen), %llu runs, %llu bundles "
      "adopted\n",
      cli.worker_id,
      static_cast<unsigned long long>(report.shards_completed),
      static_cast<unsigned long long>(report.shards_stolen),
      static_cast<unsigned long long>(report.runs),
      static_cast<unsigned long long>(report.bundle_adoptions));
  return report.ok ? 0 : 1;
}

int cmd_aggregate(const CliOptions& cli) {
  serve::ServiceResult result;
  if (!serve::aggregate_campaign(cli.dir, false, result)) {
    std::fprintf(stderr, "kfi_campaignd: %s\n", result.error.c_str());
    write_json(cli, result, -1);
    return 1;
  }
  result.ok = true;
  std::printf("campaign digest %016llx  (%llu runs over %llu shards)\n",
              static_cast<unsigned long long>(result.digest),
              static_cast<unsigned long long>(result.total_runs),
              static_cast<unsigned long long>(result.shard_count));
  write_json(cli, result, -1);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_cli(argc, argv);
  if (cli.command == "run") return cmd_run(cli);
  if (cli.command == "prepare") return cmd_prepare(cli);
  if (cli.command == "worker") return cmd_worker(cli);
  if (cli.command == "aggregate") return cmd_aggregate(cli);
  std::fprintf(stderr, "error: unknown command '%s'\n", cli.command.c_str());
  usage(2);
}
