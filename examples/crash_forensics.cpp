// crash_forensics: reproduce the paper's Figure 5 style deep dive —
// take one injection, watch it crash, and reconstruct the story from
// the "crash dump": oops line, faulting instruction, disassembly around
// the corrupted site, and the call-context snapshot.
//
//   $ ./examples/crash_forensics
#include <cstdio>

#include "inject/injector.h"
#include "inject/targets.h"
#include "isa/disasm.h"
#include "machine/machine.h"
#include "support/strings.h"
#include "vm/layout.h"

int main() {
  using namespace kfi;
  const kernel::KernelImage& image = kernel::built_kernel();

  // Find a corruption in do_generic_file_read that crashes: sweep its
  // non-branch instructions until a dumped crash appears (campaign A
  // style, fixed bits for reproducibility).
  const kernel::KernelFunction* fn = image.function("do_generic_file_read");
  const auto sites = inject::enumerate_function(image, *fn);
  inject::Injector injector;

  inject::InjectionResult crash;
  bool found = false;
  for (const inject::InstructionSite& site : sites) {
    if (site.is_branch) continue;
    for (std::uint8_t bit : {7, 5, 3}) {
      inject::InjectionSpec spec;
      spec.campaign = inject::Campaign::RandomNonBranch;
      spec.function = fn->name;
      spec.subsystem = fn->subsystem;
      spec.instr_addr = site.addr;
      spec.instr_len = static_cast<std::uint8_t>(site.bytes.size());
      spec.byte_index = 0;
      spec.bit_index = bit;
      spec.workload = "fstime";
      const inject::InjectionResult result = injector.run_one(spec);
      if (result.outcome == inject::Outcome::DumpedCrash) {
        crash = result;
        found = true;
        break;
      }
    }
    if (found) break;
  }
  if (!found) {
    std::printf("no crash found in the sweep (unexpected)\n");
    return 1;
  }

  std::printf("=== crash dump analysis (Figure 5 style) ===\n\n");
  std::printf("injected error: %s:%s, byte %u bit %u, workload %s\n",
              std::string(kernel::subsystem_name(crash.spec.subsystem))
                  .c_str(),
              crash.spec.function.c_str(), crash.spec.byte_index,
              crash.spec.bit_index, crash.spec.workload.c_str());
  std::printf("  %s:  %s   ->   %s\n\n",
              hex32(crash.spec.instr_addr).c_str(),
              crash.disasm_before.c_str(), crash.disasm_after.c_str());

  std::printf("oops: %s",
              std::string(inject::crash_cause_name(crash.cause)).c_str());
  if (crash.cause == inject::CrashCause::NullPointer ||
      crash.cause == inject::CrashCause::PagingRequest) {
    std::printf(" at virtual address %s", hex32(crash.crash_addr).c_str());
  }
  std::printf("\n  eip: %s", hex32(crash.crash_eip).c_str());
  const kernel::KernelFunction* at = image.function_at(crash.crash_eip);
  std::printf("  (%s, subsystem %s)\n",
              at != nullptr ? at->name.c_str() : "outside kernel text",
              std::string(kernel::subsystem_name(crash.crash_subsystem))
                  .c_str());
  std::printf("  crash latency: %s cycles after the corrupted instruction "
              "executed\n",
              with_commas(crash.latency_cycles).c_str());
  std::printf("  propagated out of %s: %s\n",
              std::string(kernel::subsystem_name(crash.spec.subsystem))
                  .c_str(),
              crash.propagated ? "YES" : "no");
  std::printf("  post-crash severity: %s (fs %s, bootable: %s)\n\n",
              std::string(inject::severity_name(crash.severity)).c_str(),
              crash.fs_damaged ? "damaged" : "intact",
              crash.bootable ? "yes" : "NO");

  // Disassembly around the corrupted site, from the pristine image.
  std::printf("disassembly of %s around the injection site:\n",
              fn->name.c_str());
  for (const inject::InstructionSite& site : sites) {
    if (site.addr + 40 < crash.spec.instr_addr) continue;
    if (site.addr > crash.spec.instr_addr + 40) break;
    std::printf("  %s%s:  %-10s %s\n",
                site.addr == crash.spec.instr_addr ? ">" : " ",
                hex32(site.addr).c_str(),
                hex_bytes(site.bytes).c_str(), site.disasm.c_str());
  }
  return 0;
}
