// run_workload: boot the simulated machine and run one of the
// UnixBench-analog benchmarks to completion, showing its console output
// and kernel statistics — the fault-free substrate by itself.
//
//   $ ./examples/run_workload [name]        (default: fstime)
//   $ ./examples/run_workload --list
#include <cstdio>
#include <cstring>

#include "fsutil/kfs.h"
#include "machine/machine.h"
#include "support/strings.h"

int main(int argc, char** argv) {
  using namespace kfi;

  std::string name = "fstime";
  if (argc > 1) {
    if (std::strcmp(argv[1], "--list") == 0) {
      for (const workloads::Workload& w : workloads::all_workloads()) {
        std::printf("%-10s exercises: %s\n", w.name.c_str(),
                    w.exercises.c_str());
      }
      return 0;
    }
    name = argv[1];
  }
  if (workloads::find_workload(name) == nullptr) {
    std::printf("unknown workload '%s' (try --list)\n", name.c_str());
    return 1;
  }

  const disk::DiskImage root_disk = machine::make_root_disk();
  machine::Machine machine(kernel::built_kernel(),
                           workloads::built_workload(name), root_disk);
  if (!machine.boot()) {
    std::printf("kernel failed to boot:\n%s\n",
                machine.console_output().c_str());
    return 1;
  }

  const std::uint64_t start = machine.cpu().cycles();
  const machine::RunResult result = machine.run(100'000'000);

  std::printf("---- console ----\n%s-----------------\n",
              machine.console_output().c_str());
  switch (result.exit) {
    case machine::RunExit::Completed:
      std::printf("completed, exit code %u\n", result.exit_code >> 8);
      break;
    case machine::RunExit::Crashed:
      std::printf("kernel crashed: cause %u at %s\n", result.crash.cause,
                  hex32(result.crash.fault_addr).c_str());
      break;
    default:
      std::printf("did not complete (watchdog)\n");
      break;
  }
  std::printf("cycles executed : %s\n",
              with_commas(machine.cpu().cycles() - start).c_str());
  const fsutil::FsckReport report = fsutil::fsck(machine.disk_image());
  std::printf("fsck            : %s\n",
              report.verdict == fsutil::FsckVerdict::Clean ? "clean"
                                                           : "DAMAGED");
  std::printf("fs tree digest  : %016llx\n",
              static_cast<unsigned long long>(
                  fsutil::tree_digest(machine.disk_image())));
  return result.exit == machine::RunExit::Completed ? 0 : 1;
}
