// kfi_cli — a command-line front end over the whole library, the tool a
// downstream user drives experiments with.
//
//   kfi_cli workloads
//   kfi_cli functions [subsystem]
//   kfi_cli disasm <function>
//   kfi_cli profile [top-n]
//   kfi_cli inject <function> <instr-index> <byte> <bit> [workload]
//   kfi_cli forensics <function> <instr-index> <byte> <bit> [workload]
//   kfi_cli campaign <A|B|C|D|E|F> [function ...]
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/aggregate.h"
#include "analysis/io.h"
#include "analysis/render.h"
#include "analysis/report.h"
#include "inject/campaign.h"
#include "inject/targets.h"
#include "machine/kdb.h"
#include "profile/profile.h"
#include "support/strings.h"
#include "trace/trace.h"

namespace {

using namespace kfi;

// Strict numeric argument parsing: atoi's 0-on-garbage return made
// "kfi_cli inject fn x y z" look like a valid bit-0 injection.
bool parse_arg(const char* text, const char* what, std::uint64_t max_value,
               std::uint64_t& out) {
  if (!parse_u64(text, out, 0, max_value)) {
    std::printf("invalid %s '%s' (expected 0..%llu)\n", what, text,
                static_cast<unsigned long long>(max_value));
    return false;
  }
  return true;
}

int usage() {
  std::printf(
      "usage: kfi_cli <command> [args]\n"
      "  workloads                 list the benchmark workloads\n"
      "  functions [subsystem]     list kernel functions (optionally one\n"
      "                            subsystem: arch fs kernel mm drivers\n"
      "                            lib ipc net)\n"
      "  disasm <function>         disassemble a kernel function\n"
      "  profile [top-n]           kernprof-style profile (default 15)\n"
      "  inject <fn> <i> <byte> <bit> [workload]\n"
      "                            flip one bit in instruction #i of fn\n"
      "  forensics <fn> <i> <byte> <bit> [workload]\n"
      "                            replay one injection under the event\n"
      "                            trace: timeline + JSONL next to the\n"
      "                            campaign artifacts\n"
      "  campaign <A|B|C|D|E|F> [fn...]\n"
      "                            run a campaign (default: paper's\n"
      "                            function selection; D/E/F are the\n"
      "                            fault-model campaigns)\n"
      "  report [out.md]           run/load all campaigns and write a\n"
      "                            markdown report\n");
  return 2;
}

int cmd_workloads() {
  for (const workloads::Workload& w : workloads::all_workloads()) {
    std::printf("%-10s exercises: %s\n", w.name.c_str(), w.exercises.c_str());
  }
  return 0;
}

int cmd_functions(int argc, char** argv) {
  const std::string filter = argc > 2 ? argv[2] : "";
  for (const kernel::KernelFunction& fn : kernel::built_kernel().functions) {
    const std::string subsystem(kernel::subsystem_name(fn.subsystem));
    if (!filter.empty() && subsystem != filter) continue;
    std::printf("%-8s %s..%s  %s\n", subsystem.c_str(),
                hex32(fn.start).c_str(), hex32(fn.end).c_str(),
                fn.name.c_str());
  }
  return 0;
}

int cmd_disasm(int argc, char** argv) {
  if (argc < 3) return usage();
  const disk::DiskImage root_disk = machine::make_root_disk();
  machine::Machine machine(kernel::built_kernel(),
                           workloads::built_workload("syscall"), root_disk);
  if (!machine.boot()) return 1;
  machine::Kdb kdb(machine);
  std::fputs(kdb.disassemble_function(argv[2]).c_str(), stdout);
  return 0;
}

int cmd_profile(int argc, char** argv) {
  std::uint64_t top = 15;
  if (argc > 2 && !parse_arg(argv[2], "top-n", 1000, top)) return 1;
  const profile::ProfileResult& prof = profile::default_profile();
  std::fputs(analysis::render_table1(prof, 0.95).c_str(), stdout);
  std::printf("\n");
  std::uint64_t rank = 1;
  for (const profile::FunctionSamples& fs : prof.functions) {
    if (rank > top) break;
    std::printf("%3llu. %-26s %-8s %8s samples\n",
                static_cast<unsigned long long>(rank++),
                fs.function.c_str(),
                std::string(kernel::subsystem_name(fs.subsystem)).c_str(),
                with_commas(fs.samples).c_str());
  }
  return 0;
}

// Shared by `inject` and `forensics`: argv[2..5] -> a validated spec.
// Returns false after printing a diagnostic.
bool parse_spec(int argc, char** argv, inject::InjectionSpec& spec) {
  const kernel::KernelImage& image = kernel::built_kernel();
  const kernel::KernelFunction* fn = image.function(argv[2]);
  if (fn == nullptr) {
    std::printf("unknown function '%s'\n", argv[2]);
    return false;
  }
  const auto sites = inject::enumerate_function(image, *fn);
  if (sites.empty()) {
    std::printf("function '%s' has no enumerable instructions\n",
                fn->name.c_str());
    return false;
  }
  std::uint64_t index = 0;
  std::uint64_t byte_index = 0;
  std::uint64_t bit_index = 0;
  if (!parse_arg(argv[3], "instruction index", sites.size() - 1, index) ||
      !parse_arg(argv[4], "byte index", 15, byte_index) ||
      !parse_arg(argv[5], "bit index", 7, bit_index)) {
    return false;
  }
  spec.function = fn->name;
  spec.subsystem = fn->subsystem;
  spec.instr_addr = sites[index].addr;
  spec.instr_len = static_cast<std::uint8_t>(sites[index].bytes.size());
  spec.byte_index = static_cast<std::uint8_t>(byte_index);
  spec.bit_index = static_cast<std::uint8_t>(bit_index);
  if (spec.byte_index >= spec.instr_len) {
    std::printf("byte index out of range (instruction is %u bytes)\n",
                spec.instr_len);
    return false;
  }
  spec.workload = argc > 6 ? argv[6]
                           : profile::default_profile().best_workload(
                                 fn->name);
  if (spec.workload.empty()) spec.workload = "syscall";
  return true;
}

void print_result(const inject::InjectionSpec& spec,
                  const inject::InjectionResult& result) {
  std::printf("target   : %s @%s (%s), workload %s\n", spec.function.c_str(),
              hex32(spec.instr_addr).c_str(),
              std::string(kernel::subsystem_name(spec.subsystem)).c_str(),
              spec.workload.c_str());
  std::printf("before   : %s\n", result.disasm_before.c_str());
  std::printf("after    : %s\n", result.disasm_after.c_str());
  std::printf("outcome  : %s\n",
              std::string(inject::outcome_name(result.outcome)).c_str());
  if (result.outcome == inject::Outcome::DumpedCrash) {
    std::printf("cause    : %s\n",
                std::string(inject::crash_cause_name(result.cause)).c_str());
    std::printf("crash in : %s (eip %s), latency %s cycles%s\n",
                std::string(kernel::subsystem_name(result.crash_subsystem))
                    .c_str(),
                hex32(result.crash_eip).c_str(),
                with_commas(result.latency_cycles).c_str(),
                result.propagated ? " [propagated]" : "");
    std::printf("severity : %s\n",
                std::string(inject::severity_name(result.severity)).c_str());
  }
}

int cmd_inject(int argc, char** argv) {
  if (argc < 6) return usage();
  inject::InjectionSpec spec;
  if (!parse_spec(argc, argv, spec)) return 1;
  inject::Injector injector;
  const inject::InjectionResult result = injector.run_one(spec);
  print_result(spec, result);
  return 0;
}

int cmd_forensics(int argc, char** argv) {
  if (argc < 6) return usage();
  inject::InjectionSpec spec;
  if (!parse_spec(argc, argv, spec)) return 1;

  inject::InjectorOptions options;
  options.trace_capacity = trace::TraceBuffer::kDefaultCapacity;
  inject::Injector injector(options);
  const inject::InjectionResult result = injector.run_one(spec);
  print_result(spec, result);

  const kernel::KernelImage& image = kernel::built_kernel();
  const trace::SymbolResolver resolve = [&image](std::uint32_t addr) {
    const kernel::KernelFunction* at = image.function_at(addr);
    if (at == nullptr) return std::string();
    return format("%s+0x%x (%s)", at->name.c_str(), addr - at->start,
                  std::string(kernel::subsystem_name(at->subsystem)).c_str());
  };
  const std::vector<trace::Event> events = injector.trace()->events();
  std::printf("\n-- forensics timeline (%zu events, %llu recorded, "
              "%llu dropped) --\n",
              events.size(),
              static_cast<unsigned long long>(
                  injector.trace()->total_recorded()),
              static_cast<unsigned long long>(
                  injector.trace()->total_dropped()));
  std::fputs(trace::render_timeline(events, resolve).c_str(), stdout);

  std::error_code ec;
  std::filesystem::create_directories("kfi-results", ec);
  // argv[3] is the already-validated instruction index.
  const std::string path =
      format("kfi-results/forensics_%s_%s_%u_%u.jsonl", spec.function.c_str(),
             argv[3], spec.byte_index, spec.bit_index);
  if (!trace::write_jsonl(events, path, resolve)) {
    std::printf("cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu events)\n", path.c_str(), events.size());
  return 0;
}

int cmd_campaign(int argc, char** argv) {
  if (argc < 3) return usage();
  inject::CampaignConfig config;
  switch (argv[2][0]) {
    case 'A': config.campaign = inject::Campaign::RandomNonBranch; break;
    case 'B': config.campaign = inject::Campaign::RandomBranch; break;
    case 'C': config.campaign = inject::Campaign::IncorrectBranch; break;
    case 'D': config.campaign = inject::Campaign::RegisterFile; break;
    case 'E': config.campaign = inject::Campaign::KernelData; break;
    case 'F': config.campaign = inject::Campaign::SyscallErrno; break;
    default: return usage();
  }
  for (int i = 3; i < argc; ++i) config.functions.emplace_back(argv[i]);
  config.progress = [](std::size_t done, std::size_t total) {
    if (done % 200 == 0 || done == total) {
      std::fprintf(stderr, "\r%zu/%zu", done, total);
      if (done == total) std::fprintf(stderr, "\n");
    }
  };
  inject::Injector injector;
  const inject::CampaignRun run =
      inject::run_campaign(injector, profile::default_profile(), config);
  std::fputs(analysis::render_outcome_table(analysis::make_outcome_table(run))
                 .c_str(),
             stdout);
  std::printf("\n");
  std::fputs(
      analysis::render_crash_causes(analysis::make_crash_causes(run)).c_str(),
      stdout);
  if (config.campaign == inject::Campaign::SyscallErrno) {
    std::printf("\n");
    std::fputs(analysis::render_cascade(analysis::make_cascade(run)).c_str(),
               stdout);
  }
  return 0;
}

int cmd_report(int argc, char** argv) {
  const char* path = argc > 2 ? argv[2] : "kfi-results/report.md";
  inject::Injector injector;
  analysis::BenchOptions options;
  const inject::CampaignRun a = analysis::bench_campaign(
      injector, inject::Campaign::RandomNonBranch, options);
  const inject::CampaignRun b = analysis::bench_campaign(
      injector, inject::Campaign::RandomBranch, options);
  const inject::CampaignRun c = analysis::bench_campaign(
      injector, inject::Campaign::IncorrectBranch, options);
  analysis::ReportInputs inputs;
  inputs.profile = &profile::default_profile();
  inputs.campaigns = {&a, &b, &c};
  inputs.title = "kfi campaign report (DSN'03 reproduction)";
  const std::string md = analysis::render_markdown_report(inputs);
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("cannot open %s\n", path);
    return 1;
  }
  std::fputs(md.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu bytes)\n", path, md.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "workloads") return cmd_workloads();
  if (command == "functions") return cmd_functions(argc, argv);
  if (command == "disasm") return cmd_disasm(argc, argv);
  if (command == "profile") return cmd_profile(argc, argv);
  if (command == "inject") return cmd_inject(argc, argv);
  if (command == "forensics") return cmd_forensics(argc, argv);
  if (command == "campaign") return cmd_campaign(argc, argv);
  if (command == "report") return cmd_report(argc, argv);
  return usage();
}
