// assertion_hardening: the paper's closing recommendation (§7.4) is to
// place assertions at the propagation hot spots a campaign reveals.
// This example runs a small campaign-C sweep over fs functions, ranks
// the functions by how often their errors propagate out of fs or damage
// the file system, and shows the would-be assertion sites.
//
//   $ ./examples/assertion_hardening
#include <algorithm>
#include <cstdio>
#include <map>

#include "inject/campaign.h"
#include "profile/profile.h"
#include "support/strings.h"

int main() {
  using namespace kfi;

  inject::Injector injector;
  inject::CampaignConfig config;
  config.campaign = inject::Campaign::IncorrectBranch;
  config.functions = {"link_path_walk", "open_namei", "dir_find_entry",
                      "dir_add_entry",  "kfs_alloc_block", "kfs_alloc_inode",
                      "generic_file_write", "generic_commit_write",
                      "bread", "get_hash_table", "iget", "iput"};
  std::printf("sweeping %zu fs functions with campaign C...\n",
              config.functions.size());
  const inject::CampaignRun run =
      inject::run_campaign(injector, profile::default_profile(), config);

  struct Risk {
    int activated = 0;
    int crashes = 0;
    int propagated = 0;
    int fs_damage = 0;
  };
  std::map<std::string, Risk> risks;
  for (const inject::InjectionResult& r : run.results) {
    Risk& risk = risks[r.spec.function];
    if (r.outcome == inject::Outcome::NotActivated) continue;
    ++risk.activated;
    if (r.outcome == inject::Outcome::DumpedCrash) {
      ++risk.crashes;
      if (r.propagated) ++risk.propagated;
    }
    if (r.fs_damaged) ++risk.fs_damage;
  }

  std::vector<std::pair<std::string, Risk>> ranked(risks.begin(),
                                                   risks.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.fs_damage + a.second.propagated >
           b.second.fs_damage + b.second.propagated;
  });

  std::printf(
      "\n%-22s %9s %7s %10s %9s\n"
      "--------------------------------------------------------------\n",
      "function", "activated", "crashes", "propagated", "fs-damage");
  for (const auto& [name, risk] : ranked) {
    std::printf("%-22s %9d %7d %10d %9d\n", name.c_str(), risk.activated,
                risk.crashes, risk.propagated, risk.fs_damage);
  }

  std::printf(
      "\nrecommendation (paper §7.4): functions with propagating or\n"
      "fs-damaging branch errors are the strategic locations for extra\n"
      "assertions; firing an assertion there converts a most-severe\n"
      "file-system corruption into a clean, contained kernel stop.\n");
  return 0;
}
