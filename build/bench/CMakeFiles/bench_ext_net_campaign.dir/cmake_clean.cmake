file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_net_campaign.dir/bench_ext_net_campaign.cc.o"
  "CMakeFiles/bench_ext_net_campaign.dir/bench_ext_net_campaign.cc.o.d"
  "bench_ext_net_campaign"
  "bench_ext_net_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_net_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
