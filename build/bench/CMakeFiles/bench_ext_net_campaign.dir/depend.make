# Empty dependencies file for bench_ext_net_campaign.
# This may be replaced when dependencies are built.
