# Empty dependencies file for bench_fig6_crash_causes.
# This may be replaced when dependencies are built.
