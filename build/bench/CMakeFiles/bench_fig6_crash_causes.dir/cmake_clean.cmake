file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_crash_causes.dir/bench_fig6_crash_causes.cc.o"
  "CMakeFiles/bench_fig6_crash_causes.dir/bench_fig6_crash_causes.cc.o.d"
  "bench_fig6_crash_causes"
  "bench_fig6_crash_causes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_crash_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
