file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hardening.dir/bench_ablation_hardening.cc.o"
  "CMakeFiles/bench_ablation_hardening.dir/bench_ablation_hardening.cc.o.d"
  "bench_ablation_hardening"
  "bench_ablation_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
