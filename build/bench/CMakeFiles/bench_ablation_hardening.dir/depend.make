# Empty dependencies file for bench_ablation_hardening.
# This may be replaced when dependencies are built.
