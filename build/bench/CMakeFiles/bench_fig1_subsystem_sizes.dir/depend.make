# Empty dependencies file for bench_fig1_subsystem_sizes.
# This may be replaced when dependencies are built.
