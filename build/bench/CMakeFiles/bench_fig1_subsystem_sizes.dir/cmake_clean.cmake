file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_subsystem_sizes.dir/bench_fig1_subsystem_sizes.cc.o"
  "CMakeFiles/bench_fig1_subsystem_sizes.dir/bench_fig1_subsystem_sizes.cc.o.d"
  "bench_fig1_subsystem_sizes"
  "bench_fig1_subsystem_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_subsystem_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
