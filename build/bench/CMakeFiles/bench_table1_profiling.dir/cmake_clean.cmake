file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_profiling.dir/bench_table1_profiling.cc.o"
  "CMakeFiles/bench_table1_profiling.dir/bench_table1_profiling.cc.o.d"
  "bench_table1_profiling"
  "bench_table1_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
