file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_case_studies.dir/bench_table7_case_studies.cc.o"
  "CMakeFiles/bench_table7_case_studies.dir/bench_table7_case_studies.cc.o.d"
  "bench_table7_case_studies"
  "bench_table7_case_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_case_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
