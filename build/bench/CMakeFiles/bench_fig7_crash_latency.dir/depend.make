# Empty dependencies file for bench_fig7_crash_latency.
# This may be replaced when dependencies are built.
