file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_campaigns.dir/bench_fig4_campaigns.cc.o"
  "CMakeFiles/bench_fig4_campaigns.dir/bench_fig4_campaigns.cc.o.d"
  "bench_fig4_campaigns"
  "bench_fig4_campaigns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_campaigns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
