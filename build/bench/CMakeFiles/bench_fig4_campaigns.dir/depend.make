# Empty dependencies file for bench_fig4_campaigns.
# This may be replaced when dependencies are built.
