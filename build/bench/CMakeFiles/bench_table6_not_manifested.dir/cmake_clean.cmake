file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_not_manifested.dir/bench_table6_not_manifested.cc.o"
  "CMakeFiles/bench_table6_not_manifested.dir/bench_table6_not_manifested.cc.o.d"
  "bench_table6_not_manifested"
  "bench_table6_not_manifested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_not_manifested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
