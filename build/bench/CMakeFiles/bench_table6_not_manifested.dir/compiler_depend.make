# Empty compiler generated dependencies file for bench_table6_not_manifested.
# This may be replaced when dependencies are built.
