# Empty dependencies file for bench_table5_severe_crashes.
# This may be replaced when dependencies are built.
