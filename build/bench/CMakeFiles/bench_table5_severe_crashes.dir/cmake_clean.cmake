file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_severe_crashes.dir/bench_table5_severe_crashes.cc.o"
  "CMakeFiles/bench_table5_severe_crashes.dir/bench_table5_severe_crashes.cc.o.d"
  "bench_table5_severe_crashes"
  "bench_table5_severe_crashes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_severe_crashes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
