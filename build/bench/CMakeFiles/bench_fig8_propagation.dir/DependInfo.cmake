
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_propagation.cc" "bench/CMakeFiles/bench_fig8_propagation.dir/bench_fig8_propagation.cc.o" "gcc" "bench/CMakeFiles/bench_fig8_propagation.dir/bench_fig8_propagation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/kfi_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/inject/CMakeFiles/kfi_inject.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/kfi_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/kfi_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/kfi_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/kfi_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/fsutil/CMakeFiles/kfi_fsutil.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/kfi_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/kfi_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/kasm/CMakeFiles/kfi_kasm.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/kfi_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/kfi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/kfi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
