# Empty dependencies file for crash_forensics.
# This may be replaced when dependencies are built.
