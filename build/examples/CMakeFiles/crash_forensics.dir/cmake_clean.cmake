file(REMOVE_RECURSE
  "CMakeFiles/crash_forensics.dir/crash_forensics.cpp.o"
  "CMakeFiles/crash_forensics.dir/crash_forensics.cpp.o.d"
  "crash_forensics"
  "crash_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
