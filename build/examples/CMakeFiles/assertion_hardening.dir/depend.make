# Empty dependencies file for assertion_hardening.
# This may be replaced when dependencies are built.
