file(REMOVE_RECURSE
  "CMakeFiles/assertion_hardening.dir/assertion_hardening.cpp.o"
  "CMakeFiles/assertion_hardening.dir/assertion_hardening.cpp.o.d"
  "assertion_hardening"
  "assertion_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assertion_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
