file(REMOVE_RECURSE
  "CMakeFiles/kfi_cli.dir/kfi_cli.cpp.o"
  "CMakeFiles/kfi_cli.dir/kfi_cli.cpp.o.d"
  "kfi_cli"
  "kfi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
