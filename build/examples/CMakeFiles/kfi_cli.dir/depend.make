# Empty dependencies file for kfi_cli.
# This may be replaced when dependencies are built.
