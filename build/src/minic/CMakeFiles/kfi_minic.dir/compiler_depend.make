# Empty compiler generated dependencies file for kfi_minic.
# This may be replaced when dependencies are built.
