file(REMOVE_RECURSE
  "libkfi_minic.a"
)
