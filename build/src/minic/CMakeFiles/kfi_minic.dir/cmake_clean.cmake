file(REMOVE_RECURSE
  "CMakeFiles/kfi_minic.dir/codegen.cc.o"
  "CMakeFiles/kfi_minic.dir/codegen.cc.o.d"
  "CMakeFiles/kfi_minic.dir/lexer.cc.o"
  "CMakeFiles/kfi_minic.dir/lexer.cc.o.d"
  "CMakeFiles/kfi_minic.dir/parser.cc.o"
  "CMakeFiles/kfi_minic.dir/parser.cc.o.d"
  "libkfi_minic.a"
  "libkfi_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfi_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
