file(REMOVE_RECURSE
  "CMakeFiles/kfi_support.dir/histogram.cc.o"
  "CMakeFiles/kfi_support.dir/histogram.cc.o.d"
  "CMakeFiles/kfi_support.dir/strings.cc.o"
  "CMakeFiles/kfi_support.dir/strings.cc.o.d"
  "libkfi_support.a"
  "libkfi_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfi_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
