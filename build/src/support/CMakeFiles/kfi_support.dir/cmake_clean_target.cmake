file(REMOVE_RECURSE
  "libkfi_support.a"
)
