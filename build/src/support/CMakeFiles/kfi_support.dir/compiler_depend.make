# Empty compiler generated dependencies file for kfi_support.
# This may be replaced when dependencies are built.
