# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("isa")
subdirs("kasm")
subdirs("minic")
subdirs("vm")
subdirs("disk")
subdirs("fsutil")
subdirs("kernel")
subdirs("workloads")
subdirs("machine")
subdirs("profile")
subdirs("inject")
subdirs("analysis")
