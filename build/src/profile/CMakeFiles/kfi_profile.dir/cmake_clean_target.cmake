file(REMOVE_RECURSE
  "libkfi_profile.a"
)
