# Empty compiler generated dependencies file for kfi_profile.
# This may be replaced when dependencies are built.
