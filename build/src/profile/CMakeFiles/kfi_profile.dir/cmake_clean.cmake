file(REMOVE_RECURSE
  "CMakeFiles/kfi_profile.dir/profile.cc.o"
  "CMakeFiles/kfi_profile.dir/profile.cc.o.d"
  "libkfi_profile.a"
  "libkfi_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfi_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
