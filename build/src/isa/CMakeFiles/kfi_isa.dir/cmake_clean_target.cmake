file(REMOVE_RECURSE
  "libkfi_isa.a"
)
