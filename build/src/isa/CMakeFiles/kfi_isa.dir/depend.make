# Empty dependencies file for kfi_isa.
# This may be replaced when dependencies are built.
