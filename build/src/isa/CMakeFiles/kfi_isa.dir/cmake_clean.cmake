file(REMOVE_RECURSE
  "CMakeFiles/kfi_isa.dir/decode.cc.o"
  "CMakeFiles/kfi_isa.dir/decode.cc.o.d"
  "CMakeFiles/kfi_isa.dir/disasm.cc.o"
  "CMakeFiles/kfi_isa.dir/disasm.cc.o.d"
  "CMakeFiles/kfi_isa.dir/encode.cc.o"
  "CMakeFiles/kfi_isa.dir/encode.cc.o.d"
  "CMakeFiles/kfi_isa.dir/isa.cc.o"
  "CMakeFiles/kfi_isa.dir/isa.cc.o.d"
  "libkfi_isa.a"
  "libkfi_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfi_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
