file(REMOVE_RECURSE
  "CMakeFiles/kfi_machine.dir/kdb.cc.o"
  "CMakeFiles/kfi_machine.dir/kdb.cc.o.d"
  "CMakeFiles/kfi_machine.dir/machine.cc.o"
  "CMakeFiles/kfi_machine.dir/machine.cc.o.d"
  "libkfi_machine.a"
  "libkfi_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfi_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
