# Empty compiler generated dependencies file for kfi_machine.
# This may be replaced when dependencies are built.
