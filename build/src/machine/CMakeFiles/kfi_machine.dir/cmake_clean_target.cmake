file(REMOVE_RECURSE
  "libkfi_machine.a"
)
