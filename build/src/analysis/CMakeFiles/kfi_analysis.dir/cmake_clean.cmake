file(REMOVE_RECURSE
  "CMakeFiles/kfi_analysis.dir/aggregate.cc.o"
  "CMakeFiles/kfi_analysis.dir/aggregate.cc.o.d"
  "CMakeFiles/kfi_analysis.dir/io.cc.o"
  "CMakeFiles/kfi_analysis.dir/io.cc.o.d"
  "CMakeFiles/kfi_analysis.dir/render.cc.o"
  "CMakeFiles/kfi_analysis.dir/render.cc.o.d"
  "CMakeFiles/kfi_analysis.dir/report.cc.o"
  "CMakeFiles/kfi_analysis.dir/report.cc.o.d"
  "libkfi_analysis.a"
  "libkfi_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfi_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
