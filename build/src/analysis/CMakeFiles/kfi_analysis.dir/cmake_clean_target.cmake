file(REMOVE_RECURSE
  "libkfi_analysis.a"
)
