# Empty dependencies file for kfi_analysis.
# This may be replaced when dependencies are built.
