file(REMOVE_RECURSE
  "CMakeFiles/kfi_workloads.dir/build.cc.o"
  "CMakeFiles/kfi_workloads.dir/build.cc.o.d"
  "CMakeFiles/kfi_workloads.dir/libc.cc.o"
  "CMakeFiles/kfi_workloads.dir/libc.cc.o.d"
  "CMakeFiles/kfi_workloads.dir/programs.cc.o"
  "CMakeFiles/kfi_workloads.dir/programs.cc.o.d"
  "libkfi_workloads.a"
  "libkfi_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfi_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
