file(REMOVE_RECURSE
  "libkfi_workloads.a"
)
