# Empty compiler generated dependencies file for kfi_workloads.
# This may be replaced when dependencies are built.
