# Empty compiler generated dependencies file for kfi_kasm.
# This may be replaced when dependencies are built.
