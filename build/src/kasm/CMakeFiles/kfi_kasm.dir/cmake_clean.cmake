file(REMOVE_RECURSE
  "CMakeFiles/kfi_kasm.dir/assembler.cc.o"
  "CMakeFiles/kfi_kasm.dir/assembler.cc.o.d"
  "libkfi_kasm.a"
  "libkfi_kasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfi_kasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
