file(REMOVE_RECURSE
  "libkfi_kasm.a"
)
