# Empty dependencies file for kfi_vm.
# This may be replaced when dependencies are built.
