file(REMOVE_RECURSE
  "libkfi_vm.a"
)
