file(REMOVE_RECURSE
  "CMakeFiles/kfi_vm.dir/bus.cc.o"
  "CMakeFiles/kfi_vm.dir/bus.cc.o.d"
  "CMakeFiles/kfi_vm.dir/cpu.cc.o"
  "CMakeFiles/kfi_vm.dir/cpu.cc.o.d"
  "CMakeFiles/kfi_vm.dir/memory.cc.o"
  "CMakeFiles/kfi_vm.dir/memory.cc.o.d"
  "CMakeFiles/kfi_vm.dir/mmu.cc.o"
  "CMakeFiles/kfi_vm.dir/mmu.cc.o.d"
  "libkfi_vm.a"
  "libkfi_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfi_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
