# Empty dependencies file for kfi_kernel.
# This may be replaced when dependencies are built.
