file(REMOVE_RECURSE
  "libkfi_kernel.a"
)
