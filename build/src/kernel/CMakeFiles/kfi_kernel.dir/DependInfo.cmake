
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/build.cc" "src/kernel/CMakeFiles/kfi_kernel.dir/build.cc.o" "gcc" "src/kernel/CMakeFiles/kfi_kernel.dir/build.cc.o.d"
  "/root/repo/src/kernel/constants.cc" "src/kernel/CMakeFiles/kfi_kernel.dir/constants.cc.o" "gcc" "src/kernel/CMakeFiles/kfi_kernel.dir/constants.cc.o.d"
  "/root/repo/src/kernel/src_arch.cc" "src/kernel/CMakeFiles/kfi_kernel.dir/src_arch.cc.o" "gcc" "src/kernel/CMakeFiles/kfi_kernel.dir/src_arch.cc.o.d"
  "/root/repo/src/kernel/src_drivers.cc" "src/kernel/CMakeFiles/kfi_kernel.dir/src_drivers.cc.o" "gcc" "src/kernel/CMakeFiles/kfi_kernel.dir/src_drivers.cc.o.d"
  "/root/repo/src/kernel/src_fs.cc" "src/kernel/CMakeFiles/kfi_kernel.dir/src_fs.cc.o" "gcc" "src/kernel/CMakeFiles/kfi_kernel.dir/src_fs.cc.o.d"
  "/root/repo/src/kernel/src_ipc.cc" "src/kernel/CMakeFiles/kfi_kernel.dir/src_ipc.cc.o" "gcc" "src/kernel/CMakeFiles/kfi_kernel.dir/src_ipc.cc.o.d"
  "/root/repo/src/kernel/src_kernel.cc" "src/kernel/CMakeFiles/kfi_kernel.dir/src_kernel.cc.o" "gcc" "src/kernel/CMakeFiles/kfi_kernel.dir/src_kernel.cc.o.d"
  "/root/repo/src/kernel/src_lib.cc" "src/kernel/CMakeFiles/kfi_kernel.dir/src_lib.cc.o" "gcc" "src/kernel/CMakeFiles/kfi_kernel.dir/src_lib.cc.o.d"
  "/root/repo/src/kernel/src_mm.cc" "src/kernel/CMakeFiles/kfi_kernel.dir/src_mm.cc.o" "gcc" "src/kernel/CMakeFiles/kfi_kernel.dir/src_mm.cc.o.d"
  "/root/repo/src/kernel/src_net.cc" "src/kernel/CMakeFiles/kfi_kernel.dir/src_net.cc.o" "gcc" "src/kernel/CMakeFiles/kfi_kernel.dir/src_net.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minic/CMakeFiles/kfi_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/kasm/CMakeFiles/kfi_kasm.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/kfi_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/fsutil/CMakeFiles/kfi_fsutil.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/kfi_support.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/kfi_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/kfi_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
