file(REMOVE_RECURSE
  "CMakeFiles/kfi_kernel.dir/build.cc.o"
  "CMakeFiles/kfi_kernel.dir/build.cc.o.d"
  "CMakeFiles/kfi_kernel.dir/constants.cc.o"
  "CMakeFiles/kfi_kernel.dir/constants.cc.o.d"
  "CMakeFiles/kfi_kernel.dir/src_arch.cc.o"
  "CMakeFiles/kfi_kernel.dir/src_arch.cc.o.d"
  "CMakeFiles/kfi_kernel.dir/src_drivers.cc.o"
  "CMakeFiles/kfi_kernel.dir/src_drivers.cc.o.d"
  "CMakeFiles/kfi_kernel.dir/src_fs.cc.o"
  "CMakeFiles/kfi_kernel.dir/src_fs.cc.o.d"
  "CMakeFiles/kfi_kernel.dir/src_ipc.cc.o"
  "CMakeFiles/kfi_kernel.dir/src_ipc.cc.o.d"
  "CMakeFiles/kfi_kernel.dir/src_kernel.cc.o"
  "CMakeFiles/kfi_kernel.dir/src_kernel.cc.o.d"
  "CMakeFiles/kfi_kernel.dir/src_lib.cc.o"
  "CMakeFiles/kfi_kernel.dir/src_lib.cc.o.d"
  "CMakeFiles/kfi_kernel.dir/src_mm.cc.o"
  "CMakeFiles/kfi_kernel.dir/src_mm.cc.o.d"
  "CMakeFiles/kfi_kernel.dir/src_net.cc.o"
  "CMakeFiles/kfi_kernel.dir/src_net.cc.o.d"
  "libkfi_kernel.a"
  "libkfi_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfi_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
