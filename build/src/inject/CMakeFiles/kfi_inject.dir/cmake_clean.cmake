file(REMOVE_RECURSE
  "CMakeFiles/kfi_inject.dir/campaign.cc.o"
  "CMakeFiles/kfi_inject.dir/campaign.cc.o.d"
  "CMakeFiles/kfi_inject.dir/injector.cc.o"
  "CMakeFiles/kfi_inject.dir/injector.cc.o.d"
  "CMakeFiles/kfi_inject.dir/outcome.cc.o"
  "CMakeFiles/kfi_inject.dir/outcome.cc.o.d"
  "CMakeFiles/kfi_inject.dir/targets.cc.o"
  "CMakeFiles/kfi_inject.dir/targets.cc.o.d"
  "libkfi_inject.a"
  "libkfi_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfi_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
