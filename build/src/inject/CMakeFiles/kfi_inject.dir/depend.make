# Empty dependencies file for kfi_inject.
# This may be replaced when dependencies are built.
