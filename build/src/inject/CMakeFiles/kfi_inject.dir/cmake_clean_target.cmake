file(REMOVE_RECURSE
  "libkfi_inject.a"
)
