# Empty dependencies file for kfi_disk.
# This may be replaced when dependencies are built.
