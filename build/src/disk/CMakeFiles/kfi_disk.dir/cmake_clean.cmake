file(REMOVE_RECURSE
  "CMakeFiles/kfi_disk.dir/disk.cc.o"
  "CMakeFiles/kfi_disk.dir/disk.cc.o.d"
  "libkfi_disk.a"
  "libkfi_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfi_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
