file(REMOVE_RECURSE
  "libkfi_disk.a"
)
