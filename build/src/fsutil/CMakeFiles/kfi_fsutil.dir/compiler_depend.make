# Empty compiler generated dependencies file for kfi_fsutil.
# This may be replaced when dependencies are built.
