file(REMOVE_RECURSE
  "CMakeFiles/kfi_fsutil.dir/kfs.cc.o"
  "CMakeFiles/kfi_fsutil.dir/kfs.cc.o.d"
  "libkfi_fsutil.a"
  "libkfi_fsutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfi_fsutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
