file(REMOVE_RECURSE
  "libkfi_fsutil.a"
)
