# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_kasm[1]_include.cmake")
include("/root/repo/build/tests/test_minic[1]_include.cmake")
include("/root/repo/build/tests/test_fsutil[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_build[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_profile[1]_include.cmake")
include("/root/repo/build/tests/test_inject[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
