file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_build.dir/kernel/build_test.cc.o"
  "CMakeFiles/test_kernel_build.dir/kernel/build_test.cc.o.d"
  "test_kernel_build"
  "test_kernel_build.pdb"
  "test_kernel_build[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
