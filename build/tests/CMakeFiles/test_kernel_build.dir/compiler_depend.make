# Empty compiler generated dependencies file for test_kernel_build.
# This may be replaced when dependencies are built.
