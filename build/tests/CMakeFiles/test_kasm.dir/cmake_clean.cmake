file(REMOVE_RECURSE
  "CMakeFiles/test_kasm.dir/kasm/assembler_test.cc.o"
  "CMakeFiles/test_kasm.dir/kasm/assembler_test.cc.o.d"
  "test_kasm"
  "test_kasm.pdb"
  "test_kasm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
