# Empty dependencies file for test_kasm.
# This may be replaced when dependencies are built.
