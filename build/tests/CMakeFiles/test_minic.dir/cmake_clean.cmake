file(REMOVE_RECURSE
  "CMakeFiles/test_minic.dir/minic/compiler_test.cc.o"
  "CMakeFiles/test_minic.dir/minic/compiler_test.cc.o.d"
  "CMakeFiles/test_minic.dir/minic/minic_negative_test.cc.o"
  "CMakeFiles/test_minic.dir/minic/minic_negative_test.cc.o.d"
  "test_minic"
  "test_minic.pdb"
  "test_minic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
