file(REMOVE_RECURSE
  "CMakeFiles/test_fsutil.dir/fsutil/fsck_repair_test.cc.o"
  "CMakeFiles/test_fsutil.dir/fsutil/fsck_repair_test.cc.o.d"
  "CMakeFiles/test_fsutil.dir/fsutil/kfs_test.cc.o"
  "CMakeFiles/test_fsutil.dir/fsutil/kfs_test.cc.o.d"
  "test_fsutil"
  "test_fsutil.pdb"
  "test_fsutil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
