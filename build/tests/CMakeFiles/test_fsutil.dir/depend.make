# Empty dependencies file for test_fsutil.
# This may be replaced when dependencies are built.
