// kfs tool tests: mkfs/build/read round trips, fsck verdicts for each
// corruption class, and digest stability.
#include "fsutil/kfs.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "fsutil/kfs_format.h"

namespace kfi::fsutil {
namespace {

disk::DiskImage fresh_image() {
  disk::DiskImage image(kDefaultBlocks);
  mkfs(image);
  return image;
}

std::string big_string(std::size_t n, char seed) {
  std::string s(n, '\0');
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = static_cast<char>(seed + (i % 23));
  }
  return s;
}

TEST(Kfs, MkfsProducesCleanFs) {
  const disk::DiskImage image = fresh_image();
  const FsckReport report = fsck(image);
  EXPECT_EQ(report.verdict, FsckVerdict::Clean);
  EXPECT_TRUE(report.issues.empty());
}

TEST(Kfs, FileRoundTrip) {
  disk::DiskImage image = fresh_image();
  ASSERT_NE(add_file(image, "/hello.txt", "hello world"), 0u);
  const auto data = read_file(image, "/hello.txt");
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(std::string(data->begin(), data->end()), "hello world");
}

TEST(Kfs, NestedDirectories) {
  disk::DiskImage image = fresh_image();
  ASSERT_NE(add_dir(image, "/lib/i686"), 0u);
  ASSERT_NE(add_file(image, "/lib/i686/libc.so.6", "ELF..."), 0u);
  EXPECT_NE(lookup(image, "/lib"), 0u);
  EXPECT_NE(lookup(image, "/lib/i686"), 0u);
  const auto data = read_file(image, "/lib/i686/libc.so.6");
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->size(), 6u);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Clean);
}

TEST(Kfs, MultiBlockFile) {
  disk::DiskImage image = fresh_image();
  const std::string contents = big_string(kBlockSize * 3 + 100, 'a');
  ASSERT_NE(add_file(image, "/data", contents), 0u);
  const auto data = read_file(image, "/data");
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(std::string(data->begin(), data->end()), contents);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Clean);
}

TEST(Kfs, MaxFileSizeEnforced) {
  disk::DiskImage image = fresh_image();
  EXPECT_NE(add_file(image, "/ok", big_string(kMaxFileSize, 'x')), 0u);
  EXPECT_EQ(add_file(image, "/too_big", big_string(kMaxFileSize + 1, 'x')),
            0u);
}

TEST(Kfs, MissingPathsReturnNothing) {
  disk::DiskImage image = fresh_image();
  EXPECT_EQ(lookup(image, "/nope"), 0u);
  EXPECT_FALSE(read_file(image, "/nope").has_value());
  EXPECT_FALSE(read_file(image, "/a/b/c").has_value());
}

TEST(Kfs, DuplicateFileRejected) {
  disk::DiskImage image = fresh_image();
  ASSERT_NE(add_file(image, "/x", "1"), 0u);
  EXPECT_EQ(add_file(image, "/x", "2"), 0u);
}

TEST(Kfs, ManyFilesInDirectory) {
  disk::DiskImage image = fresh_image();
  for (int i = 0; i < 60; ++i) {
    ASSERT_NE(add_file(image, "/f" + std::to_string(i),
                       "contents " + std::to_string(i)),
              0u)
        << i;
  }
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Clean);
  const auto f42 = read_file(image, "/f42");
  ASSERT_TRUE(f42.has_value());
  EXPECT_EQ(std::string(f42->begin(), f42->end()), "contents 42");
}

// ---- fsck verdicts per corruption class (the §7.1 severity model) ----

TEST(Fsck, BadMagicIsUnrepairable) {
  disk::DiskImage image = fresh_image();
  image.write32(kSbMagic, 0xDEADBEEF);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Unrepairable);
}

TEST(Fsck, DestroyedRootIsUnrepairable) {
  disk::DiskImage image = fresh_image();
  add_file(image, "/keep", "data");
  // Zero the root inode.
  const std::uint32_t at = kInodeTableBlock * kBlockSize + kRootIno * kInodeSize;
  for (std::uint32_t i = 0; i < kInodeSize; i += 4) image.write32(at + i, 0);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Unrepairable);
}

TEST(Fsck, InsaneGeometryIsUnrepairable) {
  disk::DiskImage image = fresh_image();
  image.write32(kSbDataStart, 0xFFFFFFFF);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Unrepairable);
}

TEST(Fsck, OversizedInodeIsRepairable) {
  disk::DiskImage image = fresh_image();
  const std::uint32_t ino = add_file(image, "/f", "data");
  ASSERT_NE(ino, 0u);
  const std::uint32_t at =
      kInodeTableBlock * kBlockSize + ino * kInodeSize + kInodeSizeOff;
  image.write32(at, kMaxFileSize + 5000);  // inode->i_size corruption
  const FsckReport report = fsck(image);
  EXPECT_EQ(report.verdict, FsckVerdict::Repairable);
  EXPECT_FALSE(report.issues.empty());
}

TEST(Fsck, DanglingDirentIsRepairable) {
  disk::DiskImage image = fresh_image();
  const std::uint32_t ino = add_file(image, "/f", "data");
  ASSERT_NE(ino, 0u);
  // Free the inode behind the dirent's back.
  const std::uint32_t at = kInodeTableBlock * kBlockSize + ino * kInodeSize;
  image.write32(at + kInodeMode, kModeFree);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Repairable);
}

TEST(Fsck, OutOfRangeBlockPointerIsRepairable) {
  disk::DiskImage image = fresh_image();
  const std::uint32_t ino = add_file(image, "/f", "data");
  const std::uint32_t at =
      kInodeTableBlock * kBlockSize + ino * kInodeSize + kInodeBlock0;
  image.write32(at, 0xFFFFF000);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Repairable);
}

TEST(Fsck, CrossLinkedBlocksAreRepairable) {
  disk::DiskImage image = fresh_image();
  const std::uint32_t a = add_file(image, "/a", "aaaa");
  const std::uint32_t b = add_file(image, "/b", "bbbb");
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  const std::uint32_t a_block = image.read32(
      kInodeTableBlock * kBlockSize + a * kInodeSize + kInodeBlock0);
  image.write32(kInodeTableBlock * kBlockSize + b * kInodeSize + kInodeBlock0,
                a_block);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Repairable);
}

TEST(Fsck, LeakedBlockIsRepairable) {
  disk::DiskImage image = fresh_image();
  // Mark a data block used without referencing it anywhere.
  image.bytes()[kBitmapBlock * kBlockSize + (kDefaultDataStart + 7) / 8] |=
      static_cast<std::uint8_t>(1u << ((kDefaultDataStart + 7) % 8));
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Repairable);
}

TEST(Fsck, DirectoryCycleIsUnrepairable) {
  disk::DiskImage image = fresh_image();
  const std::uint32_t sub = add_dir(image, "/sub");
  ASSERT_NE(sub, 0u);
  // Insert root into /sub, creating a cycle.
  // Root's dirent for "sub" exists; add "loop" -> root inside /sub.
  // We do this by hand: find /sub's data block.
  const std::uint32_t at = kInodeTableBlock * kBlockSize + sub * kInodeSize;
  std::uint32_t sub_block = image.read32(at + kInodeBlock0);
  if (sub_block == 0) {
    // Give /sub a data block with one entry pointing at root.
    add_file(image, "/sub/tmp", "x");
    sub_block = image.read32(at + kInodeBlock0);
  }
  ASSERT_NE(sub_block, 0u);
  // Overwrite the first dirent with a link back to root.
  image.write32(sub_block * kBlockSize, kRootIno);
  const char name[] = "loop";
  std::memcpy(image.block(sub_block) + 4, name, sizeof name);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Unrepairable);
}

// ---- digest ----

TEST(Digest, StableAcrossIdenticalBuilds) {
  disk::DiskImage a = fresh_image();
  disk::DiskImage b = fresh_image();
  add_dir(a, "/etc");
  add_file(a, "/etc/passwd", "root:x:0:0");
  add_dir(b, "/etc");
  add_file(b, "/etc/passwd", "root:x:0:0");
  EXPECT_EQ(tree_digest(a), tree_digest(b));
  EXPECT_NE(tree_digest(a), 0u);
}

TEST(Digest, DetectsContentChange) {
  disk::DiskImage a = fresh_image();
  add_file(a, "/f", "AAAA");
  const std::uint64_t before = tree_digest(a);
  // Flip one data byte.
  const std::uint32_t ino = lookup(a, "/f");
  const std::uint32_t block = a.read32(
      kInodeTableBlock * kBlockSize + ino * kInodeSize + kInodeBlock0);
  a.block(block)[0] ^= 0x01;
  EXPECT_NE(tree_digest(a), before);
}

TEST(Digest, DetectsTruncation) {
  disk::DiskImage a = fresh_image();
  const std::uint32_t ino = add_file(a, "/f", "AAAA");
  const std::uint64_t before = tree_digest(a);
  // The paper's Table 5 case 8: inode->i_size reduced.
  a.write32(kInodeTableBlock * kBlockSize + ino * kInodeSize + kInodeSizeOff,
            0);
  EXPECT_NE(tree_digest(a), before);
}

TEST(Digest, BrokenFsHashesToSentinel) {
  disk::DiskImage a = fresh_image();
  a.write32(kSbMagic, 0);
  EXPECT_EQ(tree_digest(a), 0u);
}

// ---- disk device MMIO ----

TEST(DiskDevice, ReadAndWriteBlocks) {
  disk::DiskImage image(64);
  vm::PhysicalMemory memory(1 << 20);
  disk::DiskDevice device(image, memory);

  // Prepare RAM at 0x5000, write it to block 3, clear, read back.
  for (int i = 0; i < 16; ++i) {
    memory.write32(0x5000 + 4 * i, 0xA0A0A000u + static_cast<std::uint32_t>(i));
  }
  device.mmio_write(disk::kRegBlock, 3);
  device.mmio_write(disk::kRegPhys, 0x5000);
  device.mmio_write(disk::kRegCmd, disk::kCmdWrite);
  EXPECT_EQ(device.mmio_read(disk::kRegStatus), 0u);

  memory.fill(0x5000, disk::kBlockSize, 0);
  device.mmio_write(disk::kRegCmd, disk::kCmdRead);
  EXPECT_EQ(device.mmio_read(disk::kRegStatus), 0u);
  EXPECT_EQ(memory.read32(0x5000 + 4 * 7), 0xA0A0A007u);
  EXPECT_EQ(device.reads(), 1u);
  EXPECT_EQ(device.writes(), 1u);
}

TEST(DiskDevice, OutOfRangeBlockErrors) {
  disk::DiskImage image(64);
  vm::PhysicalMemory memory(1 << 20);
  disk::DiskDevice device(image, memory);
  device.mmio_write(disk::kRegBlock, 1000);
  device.mmio_write(disk::kRegPhys, 0x5000);
  device.mmio_write(disk::kRegCmd, disk::kCmdRead);
  EXPECT_EQ(device.mmio_read(disk::kRegStatus), 1u);
}

TEST(DiskDevice, BadPhysicalAddressErrors) {
  disk::DiskImage image(64);
  vm::PhysicalMemory memory(1 << 20);
  disk::DiskDevice device(image, memory);
  device.mmio_write(disk::kRegBlock, 1);
  device.mmio_write(disk::kRegPhys, 0xFFFFFF00);
  device.mmio_write(disk::kRegCmd, disk::kCmdRead);
  EXPECT_EQ(device.mmio_read(disk::kRegStatus), 1u);
}

TEST(DiskDevice, SnapshotRestore) {
  disk::DiskImage image(64);
  image.write32(100, 0x1234);
  const auto snap = image.snapshot();
  image.write32(100, 0x9999);
  image.restore(snap);
  EXPECT_EQ(image.read32(100), 0x1234u);
}

}  // namespace
}  // namespace kfi::fsutil
