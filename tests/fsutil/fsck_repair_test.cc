// fsck_repair: every Repairable corruption class must become Clean
// after a repair pass, with surviving files intact.
#include <gtest/gtest.h>

#include <cstring>

#include "fsutil/kfs.h"
#include "fsutil/kfs_format.h"

namespace kfi::fsutil {
namespace {

disk::DiskImage image_with_files() {
  disk::DiskImage image(kDefaultBlocks);
  mkfs(image);
  add_dir(image, "/etc");
  add_file(image, "/etc/passwd", "root:x:0:0");
  add_file(image, "/a", "AAAAAAAA");
  add_file(image, "/b", "BBBBBBBB");
  return image;
}

std::uint32_t inode_at(const disk::DiskImage& image, const char* path) {
  return lookup(image, path);
}

TEST(FsckRepair, CleanImageNeedsNoRepairs) {
  disk::DiskImage image = image_with_files();
  EXPECT_EQ(fsck_repair(image), 0u);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Clean);
}

TEST(FsckRepair, OversizedInodeClamped) {
  disk::DiskImage image = image_with_files();
  const std::uint32_t ino = inode_at(image, "/a");
  image.write32(kInodeTableBlock * kBlockSize + ino * kInodeSize +
                    kInodeSizeOff,
                kMaxFileSize + 12345);
  ASSERT_EQ(fsck(image).verdict, FsckVerdict::Repairable);
  EXPECT_GT(fsck_repair(image), 0u);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Clean);
}

TEST(FsckRepair, OutOfRangeBlockPointerCleared) {
  disk::DiskImage image = image_with_files();
  const std::uint32_t ino = inode_at(image, "/a");
  image.write32(kInodeTableBlock * kBlockSize + ino * kInodeSize +
                    kInodeBlock0,
                0xFFFF0000);
  ASSERT_EQ(fsck(image).verdict, FsckVerdict::Repairable);
  fsck_repair(image);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Clean);
  // /a lost its data (truncated), but /b is untouched.
  const auto b = read_file(image, "/b");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(std::string(b->begin(), b->end()), "BBBBBBBB");
}

TEST(FsckRepair, CrossLinkedBlockDetached) {
  disk::DiskImage image = image_with_files();
  const std::uint32_t a = inode_at(image, "/a");
  const std::uint32_t b = inode_at(image, "/b");
  const std::uint32_t a_block = image.read32(
      kInodeTableBlock * kBlockSize + a * kInodeSize + kInodeBlock0);
  image.write32(kInodeTableBlock * kBlockSize + b * kInodeSize + kInodeBlock0,
                a_block);
  ASSERT_EQ(fsck(image).verdict, FsckVerdict::Repairable);
  fsck_repair(image);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Clean);
}

TEST(FsckRepair, DanglingDirentRemoved) {
  disk::DiskImage image = image_with_files();
  const std::uint32_t ino = inode_at(image, "/a");
  image.write32(kInodeTableBlock * kBlockSize + ino * kInodeSize + kInodeMode,
                kModeFree);
  ASSERT_EQ(fsck(image).verdict, FsckVerdict::Repairable);
  fsck_repair(image);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Clean);
  EXPECT_EQ(lookup(image, "/a"), 0u) << "the dangling entry is gone";
  EXPECT_NE(lookup(image, "/b"), 0u);
}

TEST(FsckRepair, LeakedBlocksReclaimed) {
  disk::DiskImage image = image_with_files();
  image.bytes()[kBitmapBlock * kBlockSize + (kDefaultDataStart + 9) / 8] |=
      static_cast<std::uint8_t>(1u << ((kDefaultDataStart + 9) % 8));
  ASSERT_EQ(fsck(image).verdict, FsckVerdict::Repairable);
  fsck_repair(image);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Clean);
}

TEST(FsckRepair, InUseButFreeBlockRemarked) {
  disk::DiskImage image = image_with_files();
  const std::uint32_t ino = inode_at(image, "/a");
  const std::uint32_t block = image.read32(
      kInodeTableBlock * kBlockSize + ino * kInodeSize + kInodeBlock0);
  image.bytes()[kBitmapBlock * kBlockSize + block / 8] &=
      static_cast<std::uint8_t>(~(1u << (block % 8)));
  ASSERT_EQ(fsck(image).verdict, FsckVerdict::Repairable);
  fsck_repair(image);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Clean);
  // The file's data is still there.
  const auto a = read_file(image, "/a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(std::string(a->begin(), a->end()), "AAAAAAAA");
}

TEST(FsckRepair, UnrepairableLeftAlone) {
  disk::DiskImage image = image_with_files();
  image.write32(kSbMagic, 0xDEAD);
  EXPECT_EQ(fsck_repair(image), 0u);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Unrepairable);
}

TEST(FsckRepair, CompoundDamageConvergesToClean) {
  disk::DiskImage image = image_with_files();
  const std::uint32_t a = inode_at(image, "/a");
  const std::uint32_t b = inode_at(image, "/b");
  // Oversize one inode, wreck the other's pointer, leak two blocks.
  image.write32(kInodeTableBlock * kBlockSize + a * kInodeSize + kInodeSizeOff,
                kMaxFileSize * 3);
  image.write32(kInodeTableBlock * kBlockSize + b * kInodeSize + kInodeBlock0,
                0xABCDE000);
  image.bytes()[kBitmapBlock * kBlockSize + (kDefaultDataStart + 20) / 8] |=
      static_cast<std::uint8_t>(1u << ((kDefaultDataStart + 20) % 8));
  ASSERT_EQ(fsck(image).verdict, FsckVerdict::Repairable);
  const std::size_t repairs = fsck_repair(image);
  EXPECT_GE(repairs, 3u);
  EXPECT_EQ(fsck(image).verdict, FsckVerdict::Clean);
}

}  // namespace
}  // namespace kfi::fsutil
