// Condition-code semantics: parameterized over all 16 IA-32 conditions.
#include <gtest/gtest.h>

#include "isa/isa.h"

namespace kfi::isa {
namespace {

struct CondCase {
  Cond cond;
  // Expected outcome for a handful of canonical flag states.
  bool after_cmp_equal;     // cmp x,x: ZF=1, SF=OF=CF=0
  bool after_cmp_less;      // cmp 1,2 (signed <): SF=1, OF=0, CF=1
  bool after_cmp_greater;   // cmp 2,1: all clear
};

class CondSemantics : public ::testing::TestWithParam<CondCase> {};

Flags flags_equal() {
  Flags f;
  f.zf = true;
  f.pf = true;
  return f;
}

Flags flags_less() {
  Flags f;
  f.sf = true;
  f.cf = true;
  return f;
}

Flags flags_greater() { return Flags{}; }

TEST_P(CondSemantics, MatchesIa32Truth) {
  const CondCase& c = GetParam();
  EXPECT_EQ(cond_holds(c.cond, flags_equal()), c.after_cmp_equal)
      << cond_name(c.cond) << " after equal compare";
  EXPECT_EQ(cond_holds(c.cond, flags_less()), c.after_cmp_less)
      << cond_name(c.cond) << " after signed-less compare";
  EXPECT_EQ(cond_holds(c.cond, flags_greater()), c.after_cmp_greater)
      << cond_name(c.cond) << " after greater compare";
}

INSTANTIATE_TEST_SUITE_P(
    AllConds, CondSemantics,
    ::testing::Values(
        //        cond      ==     <      >
        CondCase{Cond::O, false, false, false},
        CondCase{Cond::No, true, true, true},
        CondCase{Cond::B, false, true, false},
        CondCase{Cond::Ae, true, false, true},
        CondCase{Cond::E, true, false, false},
        CondCase{Cond::Ne, false, true, true},
        CondCase{Cond::Be, true, true, false},
        CondCase{Cond::A, false, false, true},
        CondCase{Cond::S, false, true, false},
        CondCase{Cond::Ns, true, false, true},
        CondCase{Cond::P, true, false, false},
        CondCase{Cond::Np, false, true, true},
        CondCase{Cond::L, false, true, false},
        CondCase{Cond::Ge, true, false, true},
        CondCase{Cond::Le, true, true, false},
        CondCase{Cond::G, false, false, true}),
    [](const ::testing::TestParamInfo<CondCase>& info) {
      return std::string(cond_name(info.param.cond));
    });

TEST(CondPairs, Bit0AlwaysNegates) {
  for (int cc = 0; cc < 16; cc += 2) {
    for (int mask = 0; mask < 32; ++mask) {
      Flags f;
      f.cf = mask & 1;
      f.zf = mask & 2;
      f.sf = mask & 4;
      f.of = mask & 8;
      f.pf = mask & 16;
      EXPECT_NE(cond_holds(static_cast<Cond>(cc), f),
                cond_holds(static_cast<Cond>(cc + 1), f));
    }
  }
}

TEST(FlagsWord, RoundTrips) {
  Flags f;
  f.cf = true;
  f.sf = true;
  f.intf = false;
  f.of = true;
  const Flags g = Flags::from_word(f.to_word());
  EXPECT_EQ(g.cf, f.cf);
  EXPECT_EQ(g.pf, f.pf);
  EXPECT_EQ(g.zf, f.zf);
  EXPECT_EQ(g.sf, f.sf);
  EXPECT_EQ(g.of, f.of);
  EXPECT_EQ(g.intf, f.intf);
}

TEST(TrapNames, MatchPaperTerminology) {
  EXPECT_EQ(trap_name(Trap::InvalidOpcode), "invalid opcode");
  EXPECT_EQ(trap_name(Trap::GpFault), "general protection fault");
  EXPECT_EQ(trap_name(Trap::DivideError), "divide error");
  EXPECT_EQ(trap_name(Trap::InvalidTss), "invalid TSS");
}

}  // namespace
}  // namespace kfi::isa
