// Property tests: decode(encode(i)) == i across the operand space.
#include <gtest/gtest.h>

#include <vector>

#include "isa/decode.h"
#include "isa/encode.h"

namespace kfi::isa {
namespace {

// Encodes, then decodes, and compares semantic fields (length is set by
// the decoder from the actual byte count).
void expect_roundtrip(Instruction instr) {
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(encode(instr, bytes)) << "not encodable: "
                                    << static_cast<int>(instr.op);
  Instruction decoded;
  ASSERT_EQ(decode(bytes.data(), bytes.size(), decoded), DecodeStatus::Ok);
  instr.length = static_cast<std::uint8_t>(bytes.size());
  EXPECT_TRUE(instr == decoded)
      << "op=" << static_cast<int>(instr.op)
      << " decoded op=" << static_cast<int>(decoded.op);
}

std::vector<Operand> interesting_rm32() {
  std::vector<Operand> ops;
  for (int r = 0; r < kRegCount; ++r) {
    ops.push_back(Operand::make_reg(static_cast<Reg>(r)));
  }
  for (int base = 0; base < kRegCount; ++base) {
    for (const std::int32_t disp : {0, 4, -4, 127, -128, 128, -129, 4096}) {
      MemRef m;
      m.has_base = true;
      m.base = static_cast<Reg>(base);
      m.disp = disp;
      ops.push_back(Operand::make_mem(m));
    }
  }
  MemRef abs;
  abs.has_base = false;
  abs.disp = static_cast<std::int32_t>(0xC0201000);
  ops.push_back(Operand::make_mem(abs));
  return ops;
}

TEST(EncodeRoundtrip, AluRegisterAndMemoryForms) {
  const auto rms = interesting_rm32();
  for (const Op op : {Op::Add, Op::Or, Op::And, Op::Sub, Op::Xor, Op::Cmp}) {
    for (const auto& rm : rms) {
      Instruction instr;
      instr.op = op;
      instr.dst = rm;
      instr.src = Operand::make_reg(Reg::Edx);
      expect_roundtrip(instr);

      if (rm.kind == OperandKind::Mem) {
        Instruction load;
        load.op = op;
        load.dst = Operand::make_reg(Reg::Ecx);
        load.src = rm;
        expect_roundtrip(load);
      }

      for (const std::int32_t imm : {0, 1, -1, 127, -128, 128, 65536}) {
        Instruction immf;
        immf.op = op;
        immf.dst = rm;
        immf.src = Operand::make_imm(imm);
        expect_roundtrip(immf);
      }
    }
  }
}

TEST(EncodeRoundtrip, MovForms) {
  const auto rms = interesting_rm32();
  for (const auto& rm : rms) {
    Instruction store;
    store.op = Op::Mov;
    store.dst = rm;
    store.src = Operand::make_reg(Reg::Esi);
    expect_roundtrip(store);

    if (rm.kind == OperandKind::Mem) {
      Instruction load;
      load.op = Op::Mov;
      load.dst = Operand::make_reg(Reg::Edi);
      load.src = rm;
      expect_roundtrip(load);

      Instruction imm_store;
      imm_store.op = Op::Mov;
      imm_store.dst = rm;
      imm_store.src = Operand::make_imm(0x12345678);
      expect_roundtrip(imm_store);
    }
  }
  for (int r = 0; r < kRegCount; ++r) {
    Instruction imm;
    imm.op = Op::Mov;
    imm.dst = Operand::make_reg(static_cast<Reg>(r));
    imm.src = Operand::make_imm(-1);
    expect_roundtrip(imm);
  }
}

TEST(EncodeRoundtrip, ByteForms) {
  for (int r = 0; r < 4; ++r) {
    MemRef m;
    m.has_base = true;
    m.base = Reg::Esi;
    m.disp = 0x1B;

    Instruction store;
    store.op = Op::Mov;
    store.dst = Operand::make_mem(m, /*byte=*/true);
    store.src = Operand::make_reg8(static_cast<Reg>(r));
    expect_roundtrip(store);

    Instruction load;
    load.op = Op::Mov;
    load.dst = Operand::make_reg8(static_cast<Reg>(r));
    load.src = Operand::make_mem(m, /*byte=*/true);
    expect_roundtrip(load);

    Instruction movzx;
    movzx.op = Op::Movzx8;
    movzx.dst = Operand::make_reg(static_cast<Reg>(r));
    movzx.src = Operand::make_mem(m, /*byte=*/true);
    expect_roundtrip(movzx);
  }
}

TEST(EncodeRoundtrip, StackOps) {
  for (int r = 0; r < kRegCount; ++r) {
    Instruction push;
    push.op = Op::Push;
    push.src = Operand::make_reg(static_cast<Reg>(r));
    expect_roundtrip(push);

    Instruction pop;
    pop.op = Op::Pop;
    pop.dst = Operand::make_reg(static_cast<Reg>(r));
    expect_roundtrip(pop);
  }
  for (const std::int32_t imm : {0, 127, -128, 128, 0x12345678}) {
    Instruction push;
    push.op = Op::Push;
    push.src = Operand::make_imm(imm);
    expect_roundtrip(push);
  }
}

TEST(EncodeRoundtrip, IncDecNotNegMulDiv) {
  const auto rms = interesting_rm32();
  for (const auto& rm : rms) {
    for (const Op op : {Op::Not, Op::Neg}) {
      Instruction instr;
      instr.op = op;
      instr.dst = rm;
      expect_roundtrip(instr);
    }
    for (const Op op : {Op::Mul, Op::Div, Op::Idiv}) {
      Instruction instr;
      instr.op = op;
      instr.src = rm;
      expect_roundtrip(instr);
    }
    Instruction inc;
    inc.op = Op::Inc;
    inc.dst = rm;
    expect_roundtrip(inc);
    Instruction dec;
    dec.op = Op::Dec;
    dec.dst = rm;
    expect_roundtrip(dec);
  }
}

TEST(EncodeRoundtrip, Shifts) {
  for (const Op op : {Op::Shl, Op::Shr, Op::Sar}) {
    for (const std::int32_t count : {1, 2, 12, 31}) {
      Instruction instr;
      instr.op = op;
      instr.dst = Operand::make_reg(Reg::Eax);
      instr.src = Operand::make_imm(count);
      expect_roundtrip(instr);
    }
    Instruction by_cl;
    by_cl.op = op;
    by_cl.dst = Operand::make_reg(Reg::Edx);
    by_cl.src = Operand::make_reg8(Reg::Ecx);
    expect_roundtrip(by_cl);
  }
}

TEST(EncodeRoundtrip, BranchesShortAndLong) {
  for (int cc = 0; cc < 16; ++cc) {
    Instruction shortj;
    shortj.op = Op::Jcc;
    shortj.cond = static_cast<Cond>(cc);
    shortj.rel = 0x10;
    expect_roundtrip(shortj);

    Instruction longj;
    longj.op = Op::Jcc;
    longj.cond = static_cast<Cond>(cc);
    longj.rel = 0x1234;
    expect_roundtrip(longj);
  }
  Instruction jmp_short;
  jmp_short.op = Op::Jmp;
  jmp_short.rel = -2;
  expect_roundtrip(jmp_short);

  Instruction jmp_long;
  jmp_long.op = Op::Jmp;
  jmp_long.rel = 100000;
  expect_roundtrip(jmp_long);

  Instruction call;
  call.op = Op::Call;
  call.rel = -4096;
  expect_roundtrip(call);
}

TEST(EncodeRoundtrip, ForceLongBranchKeepsRoundtrip) {
  Instruction jcc;
  jcc.op = Op::Jcc;
  jcc.cond = Cond::Ne;
  jcc.rel = 4;  // would fit short
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(encode(jcc, bytes, /*force_long_branch=*/true));
  EXPECT_EQ(bytes.size(), 6u);
  Instruction decoded;
  ASSERT_EQ(decode(bytes.data(), bytes.size(), decoded), DecodeStatus::Ok);
  EXPECT_EQ(decoded.op, Op::Jcc);
  EXPECT_EQ(decoded.cond, Cond::Ne);
  EXPECT_EQ(decoded.rel, 4);
}

TEST(EncodeRoundtrip, NullaryOps) {
  for (const Op op : {Op::Ret, Op::Leave, Op::Nop, Op::Cdq, Op::Ud2,
                      Op::Int3, Op::Iret, Op::Lret, Op::In, Op::Hlt,
                      Op::Cli, Op::Sti}) {
    Instruction instr;
    instr.op = op;
    expect_roundtrip(instr);
  }
  Instruction syscall_instr;
  syscall_instr.op = Op::Int;
  syscall_instr.imm8 = 0x80;
  expect_roundtrip(syscall_instr);
}

TEST(EncodeRoundtrip, IndirectCallsAndJumps) {
  const auto rms = interesting_rm32();
  for (const auto& rm : rms) {
    Instruction call;
    call.op = Op::CallInd;
    call.src = rm;
    expect_roundtrip(call);

    Instruction jmp;
    jmp.op = Op::JmpInd;
    jmp.src = rm;
    expect_roundtrip(jmp);
  }
}

TEST(EncodeRoundtrip, LeaAndSetcc) {
  MemRef m;
  m.has_base = true;
  m.base = Reg::Ebp;
  m.disp = -8;
  Instruction lea;
  lea.op = Op::Lea;
  lea.dst = Operand::make_reg(Reg::Eax);
  lea.src = Operand::make_mem(m);
  expect_roundtrip(lea);

  for (int cc = 0; cc < 16; ++cc) {
    Instruction setcc;
    setcc.op = Op::Setcc;
    setcc.cond = static_cast<Cond>(cc);
    setcc.dst = Operand::make_reg8(Reg::Ecx);
    expect_roundtrip(setcc);
  }
}

TEST(EncodeRoundtrip, InvalidIsNotEncodable) {
  Instruction instr;
  instr.op = Op::Invalid;
  std::vector<std::uint8_t> bytes;
  EXPECT_FALSE(encode(instr, bytes));
  EXPECT_TRUE(bytes.empty());
  EXPECT_EQ(encoded_length(instr), 0u);
}

TEST(EncodeRoundtrip, EncodedLengthMatchesEncode) {
  Instruction instr;
  instr.op = Op::Mov;
  instr.dst = Operand::make_reg(Reg::Eax);
  instr.src = Operand::make_imm(7);
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(encode(instr, bytes));
  EXPECT_EQ(encoded_length(instr), bytes.size());
}

}  // namespace
}  // namespace kfi::isa
