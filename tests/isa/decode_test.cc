// Decoder tests anchored on the exact byte sequences the paper's tables
// show, plus structural coverage of every opcode family.
#include "isa/decode.h"

#include <gtest/gtest.h>

#include <vector>

#include "isa/disasm.h"

namespace kfi::isa {
namespace {

Instruction decode_ok(std::initializer_list<std::uint8_t> bytes) {
  std::vector<std::uint8_t> buf(bytes);
  Instruction instr;
  EXPECT_EQ(decode(buf.data(), buf.size(), instr), DecodeStatus::Ok)
      << "bytes failed to decode";
  return instr;
}

DecodeStatus decode_status(std::initializer_list<std::uint8_t> bytes) {
  std::vector<std::uint8_t> buf(bytes);
  Instruction instr;
  return decode(buf.data(), buf.size(), instr);
}

// --- Byte sequences straight from the paper's Tables 6 and 7 ---

TEST(Decode, PaperTable6_JeShort) {
  // "74 56  je" — Table 6 example 1 (original code).
  const Instruction instr = decode_ok({0x74, 0x56});
  EXPECT_EQ(instr.op, Op::Jcc);
  EXPECT_EQ(instr.cond, Cond::E);
  EXPECT_EQ(instr.rel, 0x56);
  EXPECT_EQ(instr.length, 2);
}

TEST(Decode, PaperTable6_JlAfterBitFlip) {
  // "7c 56  jl" — the same instruction after the injected bit flip.
  const Instruction instr = decode_ok({0x7C, 0x56});
  EXPECT_EQ(instr.op, Op::Jcc);
  EXPECT_EQ(instr.cond, Cond::L);
}

TEST(Decode, PaperTable6_JeLong) {
  // "0f 84 ed 00 00 00  je" — Table 6 example 2.
  const Instruction instr = decode_ok({0x0F, 0x84, 0xED, 0x00, 0x00, 0x00});
  EXPECT_EQ(instr.op, Op::Jcc);
  EXPECT_EQ(instr.cond, Cond::E);
  EXPECT_EQ(instr.rel, 0xED);
  EXPECT_EQ(instr.length, 6);
}

TEST(Decode, PaperTable6_JoAfterBitFlip) {
  // "0f 80 ed 00 00 00  jo" — after flipping bit 2 of the second byte.
  const Instruction instr = decode_ok({0x0F, 0x80, 0xED, 0x00, 0x00, 0x00});
  EXPECT_EQ(instr.op, Op::Jcc);
  EXPECT_EQ(instr.cond, Cond::O);
}

TEST(Decode, PaperTable6_XorAlImm8) {
  // "34 56  xor $0x56,%al" — je corrupted into xor (example 3).
  const Instruction instr = decode_ok({0x34, 0x56});
  EXPECT_EQ(instr.op, Op::Xor);
  EXPECT_EQ(instr.dst.kind, OperandKind::Reg8);
  EXPECT_EQ(instr.dst.reg, Reg::Eax);
  EXPECT_EQ(instr.src.imm, 0x56);
}

TEST(Decode, PaperTable7_TestEdxEdx) {
  // "85 d2  test %edx,%edx"
  const Instruction instr = decode_ok({0x85, 0xD2});
  EXPECT_EQ(instr.op, Op::Test);
  EXPECT_EQ(instr.dst.reg, Reg::Edx);
  EXPECT_EQ(instr.src.reg, Reg::Edx);
}

TEST(Decode, PaperTable7_MovzblWithDisp) {
  // "0f b6 42 1b  movzbl 0x1b(%edx),%eax"
  const Instruction instr = decode_ok({0x0F, 0xB6, 0x42, 0x1B});
  EXPECT_EQ(instr.op, Op::Movzx8);
  EXPECT_EQ(instr.dst.reg, Reg::Eax);
  EXPECT_EQ(instr.src.kind, OperandKind::Mem8);
  EXPECT_EQ(instr.src.mem.base, Reg::Edx);
  EXPECT_EQ(instr.src.mem.disp, 0x1B);
}

TEST(Decode, PaperTable7_MovDisp8) {
  // "8b 51 0c  mov 0xc(%ecx),%edx"
  const Instruction instr = decode_ok({0x8B, 0x51, 0x0C});
  EXPECT_EQ(instr.op, Op::Mov);
  EXPECT_EQ(instr.dst.reg, Reg::Edx);
  EXPECT_EQ(instr.src.mem.base, Reg::Ecx);
  EXPECT_EQ(instr.src.mem.disp, 0x0C);
  EXPECT_EQ(instr.length, 3);
}

TEST(Decode, PaperTable7_CorruptedMovShrinksAndResequences) {
  // Table 7 example 2: "8b 51 0c" corrupted to "8b 11" (mov (%ecx),%edx)
  // makes the following bytes decode as different instructions.
  const Instruction instr = decode_ok({0x8B, 0x11});
  EXPECT_EQ(instr.op, Op::Mov);
  EXPECT_EQ(instr.length, 2);
  EXPECT_EQ(instr.src.mem.disp, 0);

  // The displaced byte 0x0c then starts "or $0x39,%al".
  const Instruction next = decode_ok({0x0C, 0x39});
  EXPECT_EQ(next.op, Op::Or);
  EXPECT_EQ(next.dst.kind, OperandKind::Reg8);
  EXPECT_EQ(next.src.imm, 0x39);
}

TEST(Decode, PaperTable7_PopEbp) {
  // "5d  pop %ebp"
  const Instruction instr = decode_ok({0x5D});
  EXPECT_EQ(instr.op, Op::Pop);
  EXPECT_EQ(instr.dst.reg, Reg::Ebp);
  EXPECT_EQ(instr.length, 1);
}

TEST(Decode, PaperTable7_MovCorruptedToLret) {
  // Table 7 example 3: "8b 5d bc" -> "cb" (lret), which raises #GP.
  const Instruction instr = decode_ok({0xCB});
  EXPECT_EQ(instr.op, Op::Lret);
}

TEST(Decode, PaperTable7_Ud2Assertion) {
  // "0f 0b  ud2a" — BUG() body; drives campaign C's invalid-opcode share.
  const Instruction instr = decode_ok({0x0F, 0x0B});
  EXPECT_EQ(instr.op, Op::Ud2);
  EXPECT_EQ(instr.length, 2);
}

// --- Structural coverage ---

TEST(Decode, AllJccShortCondsDecode) {
  for (int cc = 0; cc < 16; ++cc) {
    const Instruction instr =
        decode_ok({static_cast<std::uint8_t>(0x70 + cc), 0x10});
    EXPECT_EQ(instr.op, Op::Jcc);
    EXPECT_EQ(static_cast<int>(instr.cond), cc);
  }
}

TEST(Decode, JccBit0FlipReversesCondition) {
  // The property campaign C relies on: opcode bit 0 negates the condition.
  for (int cc = 0; cc < 16; ++cc) {
    const auto a = decode_ok({static_cast<std::uint8_t>(0x70 + cc), 0x10});
    const auto b =
        decode_ok({static_cast<std::uint8_t>((0x70 + cc) ^ 1), 0x10});
    EXPECT_EQ(static_cast<int>(a.cond) ^ 1, static_cast<int>(b.cond));
    Flags flags;
    for (int mask = 0; mask < 32; ++mask) {
      flags.cf = mask & 1;
      flags.zf = mask & 2;
      flags.sf = mask & 4;
      flags.of = mask & 8;
      flags.pf = mask & 16;
      EXPECT_NE(cond_holds(a.cond, flags), cond_holds(b.cond, flags));
    }
  }
}

TEST(Decode, MovRegImm32) {
  const Instruction instr = decode_ok({0xB8, 0x78, 0x56, 0x34, 0x12});
  EXPECT_EQ(instr.op, Op::Mov);
  EXPECT_EQ(instr.dst.reg, Reg::Eax);
  EXPECT_EQ(instr.src.imm, 0x12345678);
  EXPECT_EQ(instr.length, 5);
}

TEST(Decode, NegativeDisp8SignExtends) {
  // "8b 45 c0  mov -0x40(%ebp),%eax" — frame-local access pattern.
  const Instruction instr = decode_ok({0x8B, 0x45, 0xC0});
  EXPECT_EQ(instr.src.mem.disp, -0x40);
}

TEST(Decode, AbsoluteAddressing) {
  // mod=0, rm=5 -> [disp32].
  const Instruction instr = decode_ok({0x8B, 0x05, 0x00, 0x10, 0x20, 0xC0});
  EXPECT_EQ(instr.src.kind, OperandKind::Mem);
  EXPECT_FALSE(instr.src.mem.has_base);
  EXPECT_EQ(instr.src.mem.disp, static_cast<std::int32_t>(0xC0201000));
}

TEST(Decode, GroupF7) {
  EXPECT_EQ(decode_ok({0xF7, 0xD0}).op, Op::Not);   // /2
  EXPECT_EQ(decode_ok({0xF7, 0xD8}).op, Op::Neg);   // /3
  EXPECT_EQ(decode_ok({0xF7, 0xE1}).op, Op::Mul);   // /4
  EXPECT_EQ(decode_ok({0xF7, 0xF1}).op, Op::Div);   // /6
  EXPECT_EQ(decode_ok({0xF7, 0xF9}).op, Op::Idiv);  // /7
  EXPECT_EQ(decode_status({0xF7, 0xC8}), DecodeStatus::Invalid);  // /1
}

TEST(Decode, GroupFF) {
  EXPECT_EQ(decode_ok({0xFF, 0xC0}).op, Op::Inc);      // /0
  EXPECT_EQ(decode_ok({0xFF, 0xC8}).op, Op::Dec);      // /1
  EXPECT_EQ(decode_ok({0xFF, 0xD0}).op, Op::CallInd);  // /2
  EXPECT_EQ(decode_ok({0xFF, 0xE0}).op, Op::JmpInd);   // /4
  EXPECT_EQ(decode_ok({0xFF, 0xF0}).op, Op::Push);     // /6
  EXPECT_EQ(decode_status({0xFF, 0xD8}), DecodeStatus::Invalid);  // /3
}

TEST(Decode, ImmediateGroup81And83) {
  const Instruction long_form =
      decode_ok({0x81, 0xC3, 0x00, 0x01, 0x00, 0x00});
  EXPECT_EQ(long_form.op, Op::Add);
  EXPECT_EQ(long_form.dst.reg, Reg::Ebx);
  EXPECT_EQ(long_form.src.imm, 256);

  const Instruction short_form = decode_ok({0x83, 0xEB, 0xFC});
  EXPECT_EQ(short_form.op, Op::Sub);
  EXPECT_EQ(short_form.src.imm, -4);
}

TEST(Decode, ShiftForms) {
  EXPECT_EQ(decode_ok({0xD1, 0xE0}).op, Op::Shl);
  EXPECT_EQ(decode_ok({0xD1, 0xE0}).src.imm, 1);
  EXPECT_EQ(decode_ok({0xC1, 0xE8, 0x0C}).op, Op::Shr);
  EXPECT_EQ(decode_ok({0xC1, 0xE8, 0x0C}).src.imm, 12);
  EXPECT_EQ(decode_ok({0xD3, 0xF8}).op, Op::Sar);
  EXPECT_EQ(decode_ok({0xD3, 0xF8}).src.reg, Reg::Ecx);
}

TEST(Decode, LeaRejectsRegisterForm) {
  EXPECT_EQ(decode_status({0x8D, 0xC0}), DecodeStatus::Invalid);
}

TEST(Decode, ControlTransfers) {
  EXPECT_EQ(decode_ok({0xE8, 1, 0, 0, 0}).op, Op::Call);
  EXPECT_EQ(decode_ok({0xE9, 1, 0, 0, 0}).op, Op::Jmp);
  EXPECT_EQ(decode_ok({0xEB, 0xFE}).rel, -2);
  EXPECT_EQ(decode_ok({0xC3}).op, Op::Ret);
  EXPECT_EQ(decode_ok({0xC9}).op, Op::Leave);
  EXPECT_EQ(decode_ok({0xCF}).op, Op::Iret);
}

TEST(Decode, IntImm8) {
  const Instruction instr = decode_ok({0xCD, 0x80});
  EXPECT_EQ(instr.op, Op::Int);
  EXPECT_EQ(instr.imm8, 0x80);
}

TEST(Decode, PrivilegedAndFarOps) {
  EXPECT_EQ(decode_ok({0xF4}).op, Op::Hlt);
  EXPECT_EQ(decode_ok({0xFA}).op, Op::Cli);
  EXPECT_EQ(decode_ok({0xFB}).op, Op::Sti);
  EXPECT_EQ(decode_ok({0xEC}).op, Op::In);
  EXPECT_EQ(decode_ok({0xEA, 0, 0, 0, 0, 0, 0}).op, Op::FarJmp);
  EXPECT_EQ(decode_ok({0x9A, 0, 0, 0, 0, 0, 0}).op, Op::FarCall);
  EXPECT_EQ(decode_ok({0x8E, 0xD8}).op, Op::MovSeg);
}

TEST(Decode, UndefinedBytesAreInvalidNotCrash) {
  for (const std::uint8_t opcode : {0x06, 0x0E, 0x16, 0x26, 0x60, 0x9B,
                                    0xD8, 0xE0, 0xF0, 0xF1}) {
    EXPECT_EQ(decode_status({opcode, 0x00, 0x00, 0x00, 0x00, 0x00}),
              DecodeStatus::Invalid)
        << "opcode " << static_cast<int>(opcode);
  }
}

TEST(Decode, TruncatedInputReportsTruncated) {
  EXPECT_EQ(decode_status({0xB8, 0x01}), DecodeStatus::Truncated);
  EXPECT_EQ(decode_status({0x8B}), DecodeStatus::Truncated);
  EXPECT_EQ(decode_status({0x0F}), DecodeStatus::Truncated);
}

TEST(Decode, ZeroBytesDecodeAsAddNotInvalid) {
  // "00 00  add %al,(%eax)" is valid on IA-32; zeroed memory should not
  // read as invalid opcodes.
  const Instruction instr = decode_ok({0x00, 0x00});
  EXPECT_EQ(instr.op, Op::Add);
  EXPECT_EQ(instr.dst.kind, OperandKind::Mem8);
}

// Property: the decoder is total — every 1..6 byte prefix of random data
// yields Ok, Invalid, or Truncated without misbehaving, and Ok lengths
// never exceed the supplied size.
TEST(Decode, TotalOverRandomBytes) {
  std::uint32_t state = 12345;
  auto next = [&state] {
    state = state * 1664525 + 1013904223;
    return static_cast<std::uint8_t>(state >> 24);
  };
  for (int trial = 0; trial < 20000; ++trial) {
    std::uint8_t buf[12];
    for (auto& b : buf) b = next();
    Instruction instr;
    const DecodeStatus status = decode(buf, sizeof buf, instr);
    if (status == DecodeStatus::Ok) {
      EXPECT_GE(instr.length, 1);
      EXPECT_LE(instr.length, kMaxInstructionLength);
      EXPECT_NE(instr.op, Op::Invalid);
    }
  }
}

}  // namespace
}  // namespace kfi::isa
