#include "isa/disasm.h"

#include <gtest/gtest.h>

#include <vector>

namespace kfi::isa {
namespace {

std::string disasm(std::initializer_list<std::uint8_t> bytes,
                   std::uint32_t pc = 0) {
  std::vector<std::uint8_t> buf(bytes);
  return disassemble_bytes(buf.data(), buf.size(), pc, nullptr);
}

TEST(Disasm, PaperStyleBranch) {
  // Table 6: "74 56  je c01144f4" decoded at c014449c.
  EXPECT_EQ(disasm({0x74, 0x56}, 0xC011449Cu), "je c01144f4");
  EXPECT_EQ(disasm({0x7C, 0x56}, 0xC011449Cu), "jl c01144f4");
}

TEST(Disasm, PaperStyleLongBranch) {
  // Table 6: "0f 84 ed 00 00 00  je c013a9bd" at c013a8ca.
  EXPECT_EQ(disasm({0x0F, 0x84, 0xED, 0x00, 0x00, 0x00}, 0xC013A8CAu),
            "je c013a9bd");
}

TEST(Disasm, AttOperandOrder) {
  // "89 45 c0  mov %eax,-0x40(%ebp)" — source first.
  EXPECT_EQ(disasm({0x89, 0x45, 0xC0}), "mov %eax,-0x40(%ebp)");
  EXPECT_EQ(disasm({0x8B, 0x51, 0x0C}), "mov 0xc(%ecx),%edx");
}

TEST(Disasm, Movzbl) {
  EXPECT_EQ(disasm({0x0F, 0xB6, 0x42, 0x1B}), "movzbl 0x1b(%edx),%eax");
}

TEST(Disasm, TestAndXor) {
  EXPECT_EQ(disasm({0x85, 0xD2}), "test %edx,%edx");
  EXPECT_EQ(disasm({0x31, 0xD2}), "xor %edx,%edx");
  EXPECT_EQ(disasm({0x34, 0x56}), "xor $0x56,%al");
}

TEST(Disasm, Ud2PrintsAsPaperDoes) {
  EXPECT_EQ(disasm({0x0F, 0x0B}), "ud2a");
}

TEST(Disasm, LretAndPop) {
  EXPECT_EQ(disasm({0xCB}), "lret");
  EXPECT_EQ(disasm({0x5D}), "pop %ebp");
}

TEST(Disasm, InInstruction) {
  EXPECT_EQ(disasm({0xEC}), "in (%dx),%al");
}

TEST(Disasm, BadBytes) {
  EXPECT_EQ(disasm({0xF1}), "(bad)");
}

TEST(Disasm, CallAndJmpTargets) {
  // call rel32 = -0x10 from pc 0x1000, next = 0x1005 -> target 0xff5.
  EXPECT_EQ(disasm({0xE8, 0xF0, 0xFF, 0xFF, 0xFF}, 0x1000), "call 00000ff5");
  EXPECT_EQ(disasm({0xEB, 0xFE}, 0x2000), "jmp 00002000");
}

TEST(Disasm, IndirectForms) {
  EXPECT_EQ(disasm({0xFF, 0xD0}), "call *%eax");
  EXPECT_EQ(disasm({0xFF, 0xE3}), "jmp *%ebx");
}

TEST(Disasm, IntSyscall) {
  EXPECT_EQ(disasm({0xCD, 0x80}), "int $0x80");
}

TEST(Disasm, AbsoluteMemOperand) {
  EXPECT_EQ(disasm({0x8B, 0x0D, 0x00, 0x10, 0x20, 0xC0}),
            "mov 0xc0201000,%ecx");
}

TEST(Disasm, LengthOutReportsDecodedLength) {
  const std::uint8_t buf[] = {0xB8, 1, 0, 0, 0};
  std::size_t length = 0;
  disassemble_bytes(buf, sizeof buf, 0, &length);
  EXPECT_EQ(length, 5u);
}

}  // namespace
}  // namespace kfi::isa
