// Differential fuzz battery guarding the engine identity contract.
//
// Every seeded program from the shape generator (program_fuzz.h) runs
// five times — through the stepping engine, the one-block-per-dispatch
// superblock engine, the chained engine, the direct-threaded engine
// with flag-liveness elision, and the memfast engine (data-side D-TLB
// plus conditional-edge trace widening) — and every run-visible
// outcome must be
// bit-identical: registers, the full Flags word at every trap delivery
// and at the end of the run, eip, cpl, cycle count, halt/dead state,
// the trap delivery sequence, every RAM page any engine dirtied, and
// the MMU's TLB-mutation epoch (the chained engine's inline translate
// cache may only skip translations that are provably TLB hits, so fill
// histories must match the stepper's).
//
// The five rigs are reused across seeds: a pristine post-setup
// snapshot is restored before each program (O(dirtied pages), and the
// restore bumps page versions, which invalidates stale cached blocks),
// so the 1600-seed battery stays cheap enough for tier-1.
//
// Failing seeds are appended to chain_fuzz_failures.txt in the working
// directory; CI uploads that file as an artifact on failure so a
// red run is reproducible offline.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "isa/decode.h"
#include "program_fuzz.h"
#include "vm/cpu.h"
#include "vm/hostmap.h"
#include "vm/snapshot.h"

namespace kfi::vm {
namespace {

using isa::Reg;
using isa::Trap;
using isa::fuzz::FuzzProgram;
using isa::fuzz::Shape;

constexpr std::uint32_t kCodeVirt = 0xC0105000;  // page-aligned kernel text
constexpr std::uint32_t kDataVirt = 0xC0200000;
constexpr std::uint32_t kHandlerVirt = 0xC0110000;

enum class Engine { Step, Block, Chained, Threaded, Memfast };

const char* engine_name(Engine e) {
  switch (e) {
    case Engine::Step: return "step";
    case Engine::Block: return "block";
    case Engine::Chained: return "chained";
    case Engine::Threaded: return "threaded";
    case Engine::Memfast: return "memfast";
  }
  return "?";
}

// One reusable differential rig.  Construction (16 MiB zero fill, page
// tables, snapshot capture) happens once per battery; reset() restores
// the pristine image and re-seeds architectural state per program.
struct FuzzRig {
  PhysicalMemory memory;
  Bus bus;
  Cpu cpu;
  Engine engine;
  ChunkedSnapshot pristine;
  std::vector<std::uint64_t> memo;

  explicit FuzzRig(Engine e) : memory(kRamSize), cpu(memory, bus), engine(e) {
    HostMapper mapper(memory, kBootPgdPhys, kKernelPtePhys);
    mapper.map_range(kKernelBase, 0, kRamSize, kPteWrite);
    cpu.mmu().set_cr3(kBootPgdPhys);
    memory.write32(kTssPhys, kBootStackTop);
    for (int v = 0; v < 32; ++v) cpu.set_vector(v, kHandlerVirt);
    cpu.set_vector(0x80, kHandlerVirt);
    cpu.set_vector(0x20, kHandlerVirt);
    memory.fill(phys_of_virt(kHandlerVirt), 64, 0xF4);  // hlt
    cpu.set_chaining(engine == Engine::Chained ||
                     engine == Engine::Threaded ||
                     engine == Engine::Memfast);
    cpu.set_threaded(engine == Engine::Threaded ||
                     engine == Engine::Memfast);
    cpu.set_memfast(engine == Engine::Memfast);
    pristine = memory.snapshot_pages();
  }

  void reset(const std::vector<std::uint8_t>& program) {
    memory.restore_pages(pristine, memo);
    memory.write_block(phys_of_virt(kCodeVirt), program.data(),
                       static_cast<std::uint32_t>(program.size()));
    for (int r = 0; r < isa::kRegCount; ++r) {
      cpu.set_reg(static_cast<Reg>(r), 0);
    }
    cpu.set_reg(Reg::Esp, kBootStackTop);
    cpu.set_eip(kCodeVirt);
    cpu.flags() = isa::Flags{};
    cpu.set_cpl(0);
    cpu.set_cycles(0);
    cpu.reset_fault_state();
  }
};

struct TrapSeen {
  Trap trap;
  std::uint64_t cycle;
  std::uint32_t faulting_eip;
  // Full flags word right after delivery: the threaded engine's elision
  // must never leave a stale flag visible at any trap stop.
  std::uint32_t flags_word;

  bool operator==(const TrapSeen&) const = default;
};

struct Outcome {
  CpuEvent last;
  std::vector<TrapSeen> traps;
};

Outcome run_engine(FuzzRig& rig, std::uint64_t max_cycles) {
  Outcome out;
  while (rig.cpu.cycles() < max_cycles) {
    CpuEvent event;
    if (rig.engine == Engine::Step) {
      event = rig.cpu.step();
    } else if (rig.cpu.run_block(max_cycles - rig.cpu.cycles(), nullptr,
                                 event) == 0) {
      event = rig.cpu.step();
    }
    out.last = event;
    if (event.trap_taken) {
      out.traps.push_back({rig.cpu.last_trap().trap,
                           rig.cpu.last_trap().cycle,
                           rig.cpu.last_trap().faulting_eip,
                           rig.cpu.flags().to_word()});
    }
    if (event.kind != CpuEventKind::Executed) break;
  }
  return out;
}

// Returns "" when rigs a and b agree on every run-visible outcome;
// otherwise a one-line description of the first divergence found.
// `base_*` are the page-version vectors captured right after reset, so
// "dirty" means "written during this program".
std::string compare_rigs(FuzzRig& a, FuzzRig& b, const Outcome& oa,
                         const Outcome& ob,
                         const std::vector<std::uint64_t>& base_a,
                         const std::vector<std::uint64_t>& base_b) {
  char buf[128];
  for (int r = 0; r < isa::kRegCount; ++r) {
    const auto va = a.cpu.reg(static_cast<Reg>(r));
    const auto vb = b.cpu.reg(static_cast<Reg>(r));
    if (va != vb) {
      std::snprintf(buf, sizeof buf, "reg %d: %08x vs %08x", r, va, vb);
      return buf;
    }
  }
  if (a.cpu.eip() != b.cpu.eip()) return "eip diverged";
  if (a.cpu.flags().to_word() != b.cpu.flags().to_word()) {
    return "flags diverged";
  }
  if (a.cpu.cpl() != b.cpu.cpl()) return "cpl diverged";
  if (a.cpu.cycles() != b.cpu.cycles()) {
    std::snprintf(buf, sizeof buf, "cycles: %llu vs %llu",
                  static_cast<unsigned long long>(a.cpu.cycles()),
                  static_cast<unsigned long long>(b.cpu.cycles()));
    return buf;
  }
  if (a.cpu.halted() != b.cpu.halted()) return "halted diverged";
  if (a.cpu.dead() != b.cpu.dead()) return "dead diverged";
  if (oa.last.kind != ob.last.kind) return "terminal event kind diverged";
  if (oa.traps != ob.traps) return "trap sequence diverged";
  if (a.cpu.mmu().epoch() != b.cpu.mmu().epoch()) {
    std::snprintf(buf, sizeof buf, "mmu epoch: %llu vs %llu (TLB fills)",
                  static_cast<unsigned long long>(a.cpu.mmu().epoch()),
                  static_cast<unsigned long long>(b.cpu.mmu().epoch()));
    return buf;
  }
  const auto& va = a.memory.page_versions();
  const auto& vb = b.memory.page_versions();
  for (std::size_t p = 0; p < va.size(); ++p) {
    const bool dirty = va[p] != base_a[p] || vb[p] != base_b[p];
    if (!dirty) continue;
    const std::uint32_t paddr = static_cast<std::uint32_t>(p) * kPageSize;
    if (std::memcmp(a.memory.raw(paddr), b.memory.raw(paddr), kPageSize) !=
        0) {
      std::snprintf(buf, sizeof buf, "RAM page %zu diverged", p);
      return buf;
    }
  }
  return "";
}

void run_battery(Shape shape, int num_seeds) {
  FuzzRig step_rig(Engine::Step);
  FuzzRig block_rig(Engine::Block);
  FuzzRig chain_rig(Engine::Chained);
  FuzzRig thread_rig(Engine::Threaded);
  FuzzRig memfast_rig(Engine::Memfast);
  FuzzRig* rigs[5] = {&step_rig, &block_rig, &chain_rig, &thread_rig,
                      &memfast_rig};

  std::vector<std::uint64_t> failures;
  for (std::uint64_t seed = 1;
       seed <= static_cast<std::uint64_t>(num_seeds); ++seed) {
    const FuzzProgram prog =
        isa::fuzz::generate(shape, seed, kCodeVirt, kDataVirt);
    ASSERT_FALSE(prog.bytes.empty())
        << isa::fuzz::shape_name(shape) << " seed " << seed
        << ": generator produced an unencodable program";
    ASSERT_LT(prog.bytes.size(), 2u * kPageSize);

    Outcome outs[5];
    std::vector<std::uint64_t> base[5];
    for (int i = 0; i < 5; ++i) {
      rigs[i]->reset(prog.bytes);
      base[i] = rigs[i]->memory.page_versions();
      outs[i] = run_engine(*rigs[i], prog.max_cycles);
    }
    for (int i = 1; i < 5; ++i) {
      const std::string err = compare_rigs(step_rig, *rigs[i], outs[0],
                                           outs[i], base[0], base[i]);
      if (!err.empty()) {
        if (failures.empty() || failures.back() != seed) {
          failures.push_back(seed);
        }
        if (failures.size() <= 10) {
          ADD_FAILURE() << isa::fuzz::shape_name(shape) << " seed " << seed
                        << " (step vs " << engine_name(rigs[i]->engine)
                        << "): " << err;
        }
      }
    }
  }

  if (!failures.empty()) {
    // Reproduction list for the CI failure artifact.
    if (std::FILE* f = std::fopen("chain_fuzz_failures.txt", "a")) {
      for (const std::uint64_t seed : failures) {
        std::fprintf(f, "%s %llu\n", isa::fuzz::shape_name(shape),
                     static_cast<unsigned long long>(seed));
      }
      std::fclose(f);
    }
    ADD_FAILURE() << failures.size() << " of " << num_seeds << " "
                  << isa::fuzz::shape_name(shape)
                  << " seeds diverged (list in chain_fuzz_failures.txt)";
  }

  // The battery must actually exercise the machinery it guards.
  EXPECT_GT(block_rig.cpu.block_ops(), 0u);
  EXPECT_GT(chain_rig.cpu.block_ops(), 0u);
  EXPECT_GT(thread_rig.cpu.threaded_ops(), 0u)
      << "threaded rig never dispatched through handler pointers";
  EXPECT_GT(memfast_rig.cpu.threaded_ops(), 0u);
  EXPECT_EQ(step_rig.cpu.block_ops(), 0u);
  // The D-TLB and widening are memfast-only: no other rig may ever
  // touch their counters.
  EXPECT_EQ(thread_rig.cpu.dtlb_hits(), 0u);
  EXPECT_EQ(thread_rig.cpu.dtlb_misses(), 0u);
  EXPECT_EQ(chain_rig.cpu.cond_widened(), 0u);
  EXPECT_EQ(chain_rig.cpu.side_exits(), 0u);
  if (shape == Shape::TightLoops || shape == Shape::BranchLadder ||
      shape == Shape::SmcChain || shape == Shape::DeadFlags ||
      shape == Shape::FlagEdge) {
    EXPECT_GT(chain_rig.cpu.chain_follows(), 0u)
        << "shape never followed a chain link";
  }
  if (shape == Shape::DeadFlags) {
    EXPECT_GT(thread_rig.cpu.flag_elisions(), 0u)
        << "dead-flag runs never tripped the liveness elision";
  }
  if (shape == Shape::MemMix || shape == Shape::TightLoops) {
    EXPECT_GT(memfast_rig.cpu.dtlb_hits(), 0u)
        << "memory-heavy shape never hit the D-TLB";
  }
  if (shape == Shape::CondEdge) {
    EXPECT_GT(memfast_rig.cpu.cond_widened(), 0u)
        << "diamond shape never widened past a conditional edge";
    EXPECT_GT(memfast_rig.cpu.side_exits(), 0u)
        << "alternating branches never forced a side exit";
  }
}

// 10 shapes x 200 seeds = 2000 differential programs in tier-1.
TEST(ChainFuzz, Mixed) { run_battery(Shape::Mixed, 200); }
TEST(ChainFuzz, TightLoops) { run_battery(Shape::TightLoops, 200); }
TEST(ChainFuzz, BranchLadder) { run_battery(Shape::BranchLadder, 200); }
TEST(ChainFuzz, SmcChain) { run_battery(Shape::SmcChain, 200); }
TEST(ChainFuzz, CrossPage) { run_battery(Shape::CrossPage, 200); }
TEST(ChainFuzz, CallRet) { run_battery(Shape::CallRet, 200); }
TEST(ChainFuzz, DeadFlags) { run_battery(Shape::DeadFlags, 200); }
TEST(ChainFuzz, FlagEdge) { run_battery(Shape::FlagEdge, 200); }
TEST(ChainFuzz, MemMix) { run_battery(Shape::MemMix, 200); }
TEST(ChainFuzz, CondEdge) { run_battery(Shape::CondEdge, 200); }

// Generator sanity: every emitted byte stream decodes cleanly end to
// end (padding included), and regenerating a seed is deterministic.
TEST(ChainFuzz, GeneratorEmitsDecodableDeterministicStreams) {
  for (const Shape shape : isa::fuzz::kAllShapes) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      SCOPED_TRACE(std::string(isa::fuzz::shape_name(shape)) + " seed " +
                   std::to_string(seed));
      const FuzzProgram prog =
          isa::fuzz::generate(shape, seed, kCodeVirt, kDataVirt);
      ASSERT_FALSE(prog.bytes.empty());
      std::size_t off = 0;
      while (off < prog.bytes.size()) {
        isa::Instruction instr;
        const isa::DecodeStatus status = isa::decode(
            prog.bytes.data() + off, prog.bytes.size() - off, instr);
        ASSERT_EQ(status, isa::DecodeStatus::Ok) << "at offset " << off;
        ASSERT_NE(instr.op, isa::Op::Invalid) << "at offset " << off;
        off += instr.length;
      }
      EXPECT_EQ(off, prog.bytes.size());
      EXPECT_EQ(isa::fuzz::generate(shape, seed, kCodeVirt, kDataVirt).bytes,
                prog.bytes);
    }
  }
}

}  // namespace
}  // namespace kfi::vm
